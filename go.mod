module github.com/verified-os/vnros

go 1.22
