package main

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/obs"
)

// runNet drives the networked syscall path at production scale: two
// sharded machines on one virtual switch, an echo server parked in
// blocking receives behind the doorbell, and `clients` concurrent
// simulated clients (each one a socket with its own ephemeral port)
// performing `msgs` request/reply round trips. Sends are submitted
// through the ring, so every socket-table transition flows through
// ExecuteBatch on the sharded NR group; the receive half stays
// device-local and wakes through the completion doorbell. Throughput
// and the kernel's net.* counters are reported at the end.
func runNet(cores, clients, msgs int) error {
	const (
		serverAddr  = 0xA
		clientAddr  = 0xB
		serverPort  = 7000
		workers     = 8
		clientProcs = 8
	)
	network := vnros.NewNetwork()
	server, err := vnros.Boot(vnros.Config{
		Cores: cores, NICAddr: serverAddr, Network: network, Shards: 2,
	})
	if err != nil {
		return err
	}
	serverInit, err := server.Init()
	if err != nil {
		return err
	}
	client, err := vnros.Boot(vnros.Config{
		Cores: cores, NICAddr: clientAddr, Network: network, Shards: 2,
	})
	if err != nil {
		return err
	}
	clientInit, err := client.Init()
	if err != nil {
		return err
	}

	obs.Reset()
	obs.Enable()
	defer obs.Disable()

	// Echo server: one socket, `workers` goroutines parked in blocking
	// receives. The receive budget is sized to the worst-case burst
	// (every client with a request in flight) so backpressure never
	// sheds a request the bench is waiting on. Workers drain until the
	// socket is closed out from under them (EBADF).
	var served atomic.Uint64
	stop := make(chan struct{})
	bound := make(chan vnros.Errno, 1)
	if _, err := server.Run(serverInit, "echosrv", func(p *vnros.Process) int {
		sock, e := p.Sys.SockBindBudget(serverPort, uint32(2*clients+workers))
		bound <- e
		if e != vnros.EOK {
			return 1
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					payload, from, fromPort, e := p.Sys.SockRecvBlocking(sock)
					if e != vnros.EOK {
						return // EBADF: socket closed, bench over
					}
					if _, e := p.Sys.SockSend(sock, from, fromPort, payload); e == vnros.EOK {
						served.Add(1)
					}
				}
			}()
		}
		<-stop
		_ = p.Sys.SockClose(sock) // doorbell wakes every parked worker
		wg.Wait()
		return 0
	}); err != nil {
		return err
	}
	if e := <-bound; e != vnros.EOK {
		return fmt.Errorf("server bind: %v", e)
	}

	// Clients: `clients` concurrent goroutine clients spread over
	// `clientProcs` processes. Each owns one ephemeral-port socket and
	// performs `msgs` round trips, submitting the send through the ring
	// and parking in a blocking receive for the reply.
	perProc := (clients + clientProcs - 1) / clientProcs
	errs := make(chan error, clients)
	var done sync.WaitGroup
	t0 := time.Now()
	for cp := 0; cp < clientProcs; cp++ {
		n := perProc
		if rem := clients - cp*perProc; rem < n {
			n = rem
		}
		if n <= 0 {
			break
		}
		done.Add(1)
		if _, err := client.Run(clientInit, fmt.Sprintf("clients%d", cp), func(p *vnros.Process) int {
			defer done.Done()
			var wg sync.WaitGroup
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					sock, e := p.Sys.SockBind(0)
					if e != vnros.EOK {
						errs <- fmt.Errorf("client bind: %v", e)
						return
					}
					defer p.Sys.SockClose(sock)
					req := []byte(fmt.Sprintf("echo %d", g))
					for m := 0; m < msgs; m++ {
						comps, e := p.Sys.SubmitWait([]vnros.Op{
							vnros.OpSockSend(sock, serverAddr, serverPort, req),
						})
						if e != vnros.EOK || comps[0].Errno != vnros.EOK {
							errs <- fmt.Errorf("client send: %v/%v", e, comps)
							return
						}
						reply, _, _, e := p.Sys.SockRecvBlocking(sock)
						if e != vnros.EOK {
							errs <- fmt.Errorf("client recv: %v", e)
							return
						}
						if !bytes.Equal(reply, req) {
							errs <- fmt.Errorf("client %d: reply %q != request %q", g, reply, req)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			return 0
		}); err != nil {
			done.Done()
			return err
		}
	}
	done.Wait()
	dur := time.Since(t0)
	close(stop)
	close(errs)
	for err := range errs {
		return err
	}
	server.WaitAll()
	client.WaitAll()

	for _, s := range []*vnros.Sys{serverInit, clientInit} {
		if err := s.ContractErr(); err != nil {
			return fmt.Errorf("contract violation: %w", err)
		}
	}
	for _, s := range []*vnros.System{server, client} {
		if err := s.CheckReplicaAgreement(); err != nil {
			return err
		}
	}

	total := uint64(clients) * uint64(msgs)
	fmt.Printf("network path: %d concurrent clients x %d round trips, %d cores/machine, 2 shards (contract checking on)\n\n",
		clients, msgs, cores)
	fmt.Printf("  round trips:      %10d (server echoed %d)\n", total, served.Load())
	fmt.Printf("  wall time:        %10.2fs\n", dur.Seconds())
	fmt.Printf("  throughput:       %10.0f msgs/s (%.0f syscalls/s incl. replies)\n\n",
		float64(total)/dur.Seconds(), float64(4*total)/dur.Seconds())

	snap := obs.TakeSnapshot()
	fmt.Println("  net.* counters (both machines):")
	for _, k := range []string{
		"net.tx_frames", "net.rx_delivered", "net.rx_drop_overflow",
		"net.rx_drop_closed", "net.rx_drop_nolistener", "net.recv_parks",
		"net.recv_wakes", "net.sock_binds", "net.sock_closes",
	} {
		fmt.Printf("    %-24s %12d\n", k, snap.Counters[k])
	}
	return nil
}
