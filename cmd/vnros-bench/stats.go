package main

import (
	"fmt"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/sys"
)

// runStats drives a contended multi-process syscall workload with the
// kernel observability subsystem enabled and reports what the combiner
// and the syscall boundary saw: the flat-combining batch-size histogram
// (how much batching the contention actually produced), the combine-pass
// latency, and per-opcode syscall latency percentiles.
func runStats(cores, workers, opsPerWorker int) error {
	system, err := vnros.Boot(vnros.Config{Cores: cores})
	if err != nil {
		return err
	}
	initSys, err := system.Init()
	if err != nil {
		return err
	}

	// Measure the workload only, not boot; record every event (the
	// sampled production default is for always-on overhead, not for a
	// dedicated measurement run).
	obs.Reset()
	obs.SetSampleRate(1)
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.SetSampleRate(obs.DefaultSampleRate)
	}()

	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		_, err := system.Run(initSys, fmt.Sprintf("kstats-worker%d", w), func(p *vnros.Process) int {
			path := fmt.Sprintf("/kstats-%d", p.PID)
			fd, e := p.Sys.Open(path, vnros.OCreate|vnros.ORdWr)
			if e != vnros.EOK {
				errs <- fmt.Errorf("worker open: %v", e)
				return 1
			}
			buf := make([]byte, 64)
			for i := 0; i < opsPerWorker; i++ {
				if _, e := p.Sys.Write(fd, []byte("kstats workload payload\n")); e != vnros.EOK {
					errs <- fmt.Errorf("worker write: %v", e)
					return 1
				}
				if _, e := p.Sys.Seek(fd, 0, vnros.SeekSet); e != vnros.EOK {
					errs <- fmt.Errorf("worker seek: %v", e)
					return 1
				}
				if _, e := p.Sys.Read(fd, buf); e != vnros.EOK {
					errs <- fmt.Errorf("worker read: %v", e)
					return 1
				}
				if i%16 == 0 {
					base, e := p.Sys.MMap(vnros.PageSize)
					if e != vnros.EOK {
						errs <- fmt.Errorf("worker mmap: %v", e)
						return 1
					}
					if e := p.Sys.MemWrite(base, buf[:8]); e != vnros.EOK {
						errs <- fmt.Errorf("worker memwrite: %v", e)
						return 1
					}
					if e := p.Sys.MUnmap(base); e != vnros.EOK {
						errs <- fmt.Errorf("worker munmap: %v", e)
						return 1
					}
				}
			}
			if e := p.Sys.Close(fd); e != vnros.EOK {
				errs <- fmt.Errorf("worker close: %v", e)
				return 1
			}
			errs <- nil
			return 0
		})
		if err != nil {
			return err
		}
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	system.WaitAll()
	for w := 0; w < workers; w++ {
		if _, e := initSys.Wait(); e != vnros.EOK {
			return fmt.Errorf("wait: %v", e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return fmt.Errorf("contract violation: %w", err)
	}
	if err := system.CheckReplicaAgreement(); err != nil {
		return err
	}

	snap := obs.TakeSnapshot()
	fmt.Printf("kstats workload: %d cores, %d kernel replicas, %d workers x %d iterations\n\n",
		cores, system.NumReplicas(), workers, opsPerWorker)
	if h, ok := snap.Hists["nr.batch_size"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}
	if h, ok := snap.Hists["nr.combine_latency"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}
	fmt.Printf("nr.log_full_stalls: %d\n\n", snap.Counters["nr.log_full_stalls"])
	fmt.Print(obs.RenderOps("syscall latency (dispatch boundary, once per call):",
		snap.Ops["syscall"], sys.OpName))
	return nil
}
