package main

import (
	"fmt"
	"time"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/obs"
)

// runRing compares the batched submission ring against the equivalent
// per-call syscall loop — the same ops, once drained through single
// NumBatch crossings and once issued one boundary crossing at a time —
// and reports the throughput of both plus the kernel's batch-size and
// per-batch latency histograms. Contract checking is live on both
// sides.
func runRing(cores, batch, rounds int) error {
	system, err := vnros.Boot(vnros.Config{Cores: cores})
	if err != nil {
		return err
	}
	initSys, err := system.Init()
	if err != nil {
		return err
	}
	fd, e := initSys.Open("/ring", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		return fmt.Errorf("open: %v", e)
	}
	payload := []byte("sixteen bytes!!!")

	obs.Reset()
	obs.SetSampleRate(1)
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.SetSampleRate(obs.DefaultSampleRate)
	}()

	// Ring: one seek plus `batch` writes per submission.
	ops := make([]vnros.Op, 0, batch+1)
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		ops = ops[:0]
		ops = append(ops, vnros.OpSeek(fd, 0, vnros.SeekSet))
		for i := 0; i < batch; i++ {
			ops = append(ops, vnros.OpWrite(fd, payload))
		}
		comps, e := initSys.SubmitWait(ops)
		if e != vnros.EOK {
			return fmt.Errorf("round %d: submit: %v", r, e)
		}
		for i, c := range comps {
			if c.Errno != vnros.EOK {
				return fmt.Errorf("round %d op %d: %v", r, i, c.Errno)
			}
		}
	}
	ringDur := time.Since(t0)

	// Per-call baseline: the identical op sequence, one crossing each.
	t0 = time.Now()
	for r := 0; r < rounds; r++ {
		if _, e := initSys.Seek(fd, 0, vnros.SeekSet); e != vnros.EOK {
			return fmt.Errorf("round %d: seek: %v", r, e)
		}
		for i := 0; i < batch; i++ {
			if _, e := initSys.Write(fd, payload); e != vnros.EOK {
				return fmt.Errorf("round %d: write: %v", r, e)
			}
		}
	}
	callDur := time.Since(t0)

	if err := initSys.ContractErr(); err != nil {
		return fmt.Errorf("contract violation: %w", err)
	}
	if err := system.CheckReplicaAgreement(); err != nil {
		return err
	}

	totalOps := float64(rounds * (batch + 1))
	ringRate := totalOps / ringDur.Seconds()
	callRate := totalOps / callDur.Seconds()
	fmt.Printf("submission ring: %d cores, batch size %d, %d rounds (contract checking on)\n\n",
		cores, batch, rounds)
	fmt.Printf("  ring (Submit):    %10.0f ops/s\n", ringRate)
	fmt.Printf("  per-call loop:    %10.0f ops/s\n", callRate)
	fmt.Printf("  speedup:          %10.2fx\n\n", ringRate/callRate)

	snap := obs.TakeSnapshot()
	if h, ok := snap.Hists["syscall.batch_size"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}
	if h, ok := snap.Hists["syscall.batch_latency"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
	}
	return nil
}
