// Command vnros-bench regenerates the paper's evaluation artifacts:
// Figure 1a (VC time CDF), Figures 1b/1c (map/unmap latency vs cores,
// verified vs unverified), Tables 1 and 2 (with the derived vnros
// column), and the DESIGN.md ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/experiments"
	"github.com/verified-os/vnros/internal/relwork"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1a, 1b, 1c (empty with -all unset: all)")
	table := flag.Int("table", 0, "table to print: 1 or 2")
	ablations := flag.Bool("ablations", false, "run the DESIGN.md ablations")
	stats := flag.Bool("stats", false, "run the kstats workload: combiner batch-size histogram + per-opcode syscall latency percentiles")
	ring := flag.Bool("ring", false, "compare the batched submission ring against the per-call syscall loop")
	walBench := flag.Bool("wal", false, "compare journal group commit against per-op commit, plus recovery-time and shard-scaling series")
	walRounds := flag.Int("walrounds", 500, "commit rounds per configuration for the -wal shard series")
	walJSON := flag.String("waljson", "", "write the -wal shard series (rates, speedups, commit counters, recovery times) to this JSON file")
	shard := flag.Bool("shard", false, "run the read-path scaling series: pcache preads at 1/2/4 shards against single-NR logged reads")
	shardOps := flag.Int("shardops", 400000, "read syscalls per configuration for the -shard series")
	shardJSON := flag.String("shardjson", "", "write the -shard series (rates, speedups, pcache counters) to this JSON file")
	netBench := flag.Bool("net", false, "run the networked syscall-path workload: concurrent echo clients against a sharded two-machine wire")
	netClients := flag.Int("netclients", 1000, "concurrent simulated clients for -net")
	netMsgs := flag.Int("netmsgs", 20, "request/reply round trips per client for -net")
	lat := flag.Bool("lat", false, "run the request-latency workload: mixed open/read/write/sync batches, p50/p99/p999 per wait mode (spin/block/poll)")
	latClients := flag.Int("latclients", 8, "concurrent simulated clients for -lat")
	latReqs := flag.Int("latreqs", 300, "requests per client for -lat")
	all := flag.Bool("all", false, "run everything")
	ops := flag.Int("ops", 200, "operations per core for figures 1b/1c and the kstats workload")
	batch := flag.Int("batch", 32, "submission-queue depth for the -ring comparison")
	cores := flag.String("cores", "1,8,16,24,28", "comma-separated core counts")
	seed := flag.Int64("seed", 2026, "VC seed for figure 1a")
	flag.Parse()

	if *fig == "" && *table == 0 && !*ablations && !*stats && !*ring && !*walBench && !*shard && !*netBench && !*lat {
		*all = true
	}
	coreCounts, err := parseCores(*cores)
	if err != nil {
		fatal(err)
	}

	if *all || *fig == "1a" {
		rep := experiments.Fig1a(core.RegisterAllObligations, *seed)
		fmt.Print(experiments.RenderCDF(rep))
		if len(rep.Failed()) > 0 {
			fatal(fmt.Errorf("%d verification conditions failed", len(rep.Failed())))
		}
		fmt.Println()
	}
	if *all || *fig == "1b" {
		s, err := experiments.Fig1b(coreCounts, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s.Render())
		fmt.Println()
	}
	if *all || *fig == "1c" {
		s, err := experiments.Fig1c(coreCounts, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Print(s.Render())
		fmt.Println()
	}
	if *all || *table == 1 || *table == 2 {
		system, err := vnros.Boot(vnros.Config{Cores: 2})
		if err != nil {
			fatal(err)
		}
		self := system.Components.Derive("vnros")
		if *all || *table == 1 {
			fmt.Print(relwork.RenderTable1(self))
			fmt.Println()
		}
		if *all || *table == 2 {
			fmt.Print(relwork.RenderTable2(self))
			fmt.Println()
		}
	}
	if *all || *ablations {
		out, err := experiments.RenderAblations()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	}
	if *all || *stats {
		// The most contended configuration shows the combiner batching
		// best: one worker per core on the largest requested core count.
		c := coreCounts[len(coreCounts)-1]
		if *all {
			fmt.Println()
		}
		if err := runStats(c, c, *ops); err != nil {
			fatal(err)
		}
	}
	if *all || *ring {
		if *all {
			fmt.Println()
		}
		if err := runRing(2, *batch, 200); err != nil {
			fatal(err)
		}
	}
	if *all || *walBench {
		if *all {
			fmt.Println()
		}
		if err := runWal(2, *batch, 200, *walRounds, *walJSON); err != nil {
			fatal(err)
		}
	}
	if *all || *shard {
		if *all {
			fmt.Println()
		}
		if err := runShard(*shardOps, *shardJSON); err != nil {
			fatal(err)
		}
	}
	if *all || *netBench {
		if *all {
			fmt.Println()
		}
		if err := runNet(4, *netClients, *netMsgs); err != nil {
			fatal(err)
		}
	}
	if *all || *lat {
		if *all {
			fmt.Println()
		}
		if err := runLat(4, *latClients, *latReqs); err != nil {
			fatal(err)
		}
	}
}

func parseCores(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vnros-bench:", err)
	os.Exit(1)
}
