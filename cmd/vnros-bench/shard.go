package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

const (
	shardReaders = 8
	shardWriters = 2
)

// runShard measures read-heavy syscall throughput of the sharded kernel
// against the single-NR monolith, mirroring BenchmarkShardScaling:
// eight reader processes issue MemResolve from node-1 cores while two
// writer processes churn Seek (a logged write) from node-0 cores. On
// the monolith every reader must sync its replica past every writer's
// log entries; on the sharded kernel only readers co-sharded with a
// writer pay that sync — the rest stay on the read fast path.
func runShard(readOps int) error {
	shardCounts := []int{1, 2, 4}
	rates := make([]float64, len(shardCounts))
	var shardSnap obs.Snapshot
	for i, shards := range shardCounts {
		rate, snap, err := shardRun(shards, readOps)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		rates[i] = rate
		if shards == shardCounts[len(shardCounts)-1] {
			shardSnap = snap
		}
	}

	fmt.Printf("shard scaling: %d read syscalls, %d readers (node 1) vs %d writers (node 0), %d cores\n\n",
		readOps, shardReaders, shardWriters, 2*core.CoresPerNode)
	for i, shards := range shardCounts {
		label := fmt.Sprintf("%d shards:", shards)
		if shards == 1 {
			label = "single NR:"
		}
		fmt.Printf("  %-12s %12.0f ops/s   %5.2fx\n", label, rates[i], rates[i]/rates[0])
	}

	if ops := shardSnap.Ops["nr.shard.ops"]; len(ops) > 0 {
		fmt.Println()
		fmt.Print(obs.RenderOps(
			fmt.Sprintf("per-shard ops (%d shards):", shardCounts[len(shardCounts)-1]),
			ops, obs.ShardSlotName))
	}
	return nil
}

// shardRun boots one configuration (shards==1 is the monolithic
// baseline), runs the read workload to completion, and returns the
// aggregate reader throughput plus the run's metric snapshot.
func shardRun(shards, readOps int) (float64, obs.Snapshot, error) {
	var snap obs.Snapshot
	// One OS thread per simulated core, so cross-core synchronization
	// (combiner hand-offs, reader sync convoys) costs wall-clock time.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2 * core.CoresPerNode))
	cfg := core.Config{Cores: 2 * core.CoresPerNode, MemBytes: 256 << 20}
	if shards > 1 {
		cfg.Shards = shards
	}
	s, err := core.Boot(cfg)
	if err != nil {
		return 0, snap, err
	}
	initSys, err := s.Init()
	if err != nil {
		return 0, snap, err
	}
	// Spawn a pool and pick reader PIDs so every shard is covered (a
	// shard written to but never read from node 1 accumulates unbounded
	// writer backlog); writers come from the remainder.
	const pool = 4 * shardReaders
	pids := make([]proc.PID, pool)
	for i := range pids {
		pid, e := initSys.Spawn(fmt.Sprintf("shardbench%d", i))
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("spawn: %v", e)
		}
		pids[i] = pid
	}
	var readers, writers []proc.PID
	if shards > 1 {
		perShard := make(map[int][]proc.PID)
		for _, pid := range pids {
			sh := s.ProcShardOf(pid)
			perShard[sh] = append(perShard[sh], pid)
		}
		for sh := 0; sh < shards && len(readers) < shardReaders; sh++ {
			want := shardReaders / shards
			if len(perShard[sh]) < want {
				want = len(perShard[sh])
			}
			readers = append(readers, perShard[sh][:want]...)
			perShard[sh] = perShard[sh][want:]
		}
		for _, pid := range pids {
			if len(writers) == shardWriters {
				break
			}
			used := false
			for _, r := range readers {
				if r == pid {
					used = true
					break
				}
			}
			if !used {
				writers = append(writers, pid)
			}
		}
	} else {
		readers = pids[:shardReaders]
		writers = pids[shardReaders : shardReaders+shardWriters]
	}
	if len(readers) != shardReaders || len(writers) != shardWriters {
		return 0, snap, fmt.Errorf("role assignment: %d readers, %d writers", len(readers), len(writers))
	}

	// Writers on node-0 cores (replica 0), readers on node-1 cores
	// (replica 1); raw handles so each loop iteration is one syscall.
	type wrk struct {
		sys *sys.Sys
		fd  fs.FD
	}
	ws := make([]wrk, shardWriters)
	for i, pid := range writers {
		S, err := s.RawSysOn(pid, 1+i)
		if err != nil {
			return 0, snap, err
		}
		fd, e := S.Open(fmt.Sprintf("/churn%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("writer open: %v", e)
		}
		ws[i] = wrk{sys: S, fd: fd}
	}
	type rdr struct {
		sys  *sys.Sys
		base mmu.VAddr
	}
	rs := make([]rdr, shardReaders)
	for i, pid := range readers {
		S, err := s.RawSysOn(pid, core.CoresPerNode+i)
		if err != nil {
			return 0, snap, err
		}
		base, e := S.MMap(4096)
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("reader mmap: %v", e)
		}
		rs[i] = rdr{sys: S, base: base}
	}

	// Timing runs with obs disabled: the sharded dispatch records extra
	// per-op shard metrics the monolith doesn't, so live instrumentation
	// would bias the comparison. The per-shard table comes from a short
	// instrumented burst after the clock stops.
	var stop atomic.Bool
	var wwg sync.WaitGroup
	for _, w := range ws {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for !stop.Load() {
				if _, e := w.sys.Seek(w.fd, 0, fs.SeekSet); e != sys.EOK {
					stop.Store(true)
					return
				}
			}
		}()
	}
	// Work-stealing read loop: readers claim ops from a shared counter
	// so aggregate throughput is measured, not the slowest reader's
	// fixed share.
	var claimed atomic.Int64
	errs := make(chan error, shardReaders)
	t0 := time.Now()
	for _, r := range rs {
		r := r
		go func() {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for claimed.Add(1) <= int64(readOps) {
				if _, e := r.sys.MemResolve(r.base); e != sys.EOK {
					errs <- fmt.Errorf("memresolve: %v", e)
					return
				}
			}
			errs <- nil
		}()
	}
	for range rs {
		if err := <-errs; err != nil {
			return 0, snap, err
		}
	}
	dur := time.Since(t0)
	stop.Store(true)
	wwg.Wait()

	if shards > 1 {
		obs.Reset()
		obs.SetSampleRate(1)
		obs.Enable()
		for _, r := range rs {
			for i := 0; i < readOps/(10*shardReaders); i++ {
				if _, e := r.sys.MemResolve(r.base); e != sys.EOK {
					return 0, snap, fmt.Errorf("memresolve (instrumented): %v", e)
				}
			}
		}
		obs.Disable()
		obs.SetSampleRate(obs.DefaultSampleRate)
		snap = obs.TakeSnapshot()
	}

	if err := s.CheckReplicaAgreement(); err != nil {
		return 0, snap, err
	}
	return float64(readOps) / dur.Seconds(), snap, nil
}
