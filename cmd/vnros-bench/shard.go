package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

const (
	shardReaders    = 8
	shardWriters    = 2
	shardChurnBytes = 2048
	shardChurnEvery = 4 // one churn write per this many reads
)

// runShard measures read-heavy syscall throughput, mirroring
// BenchmarkShardScaling: eight reader processes stream 256-byte reads of
// their own warm files from node-1 cores while two writer processes
// churn 2KB logged Writes from node-0 cores, paced at one write per four
// reads. The series compares reads through the operation log (the only
// read path a bare single-NR kernel offers for file bytes — the
// baseline) against the page-cache pread path at 1, 2, and 4 shards,
// where a cache hit is a replica-local descriptor resolve plus an
// epoch-pinned copy that never takes the combiner.
//
// The final configuration rerun is instrumented: it must show a nonzero
// pcache.hit count (the smoke assertion CI relies on), and the whole
// series is optionally written as JSON for trend tracking.
func runShard(readOps int, jsonPath string) error {
	series := []struct {
		path   string
		shards int
	}{
		{"logged", 1},
		{"pread", 1},
		{"pread", 2},
		{"pread", 4},
	}
	rates := make([]float64, len(series))
	var finalSnap obs.Snapshot
	for i, sc := range series {
		rate, snap, err := shardRun(sc.shards, readOps, sc.path == "logged", i == len(series)-1)
		if err != nil {
			return fmt.Errorf("%s/shards=%d: %w", sc.path, sc.shards, err)
		}
		rates[i] = rate
		if i == len(series)-1 {
			finalSnap = snap
		}
	}

	fmt.Printf("read-path scaling: %d read syscalls, %d readers (node 1) vs %d writers (node 0), %d cores\n\n",
		readOps, shardReaders, shardWriters, 2*core.CoresPerNode)
	for i, sc := range series {
		label := fmt.Sprintf("%s, %d shards:", sc.path, sc.shards)
		if sc.shards == 1 {
			label = fmt.Sprintf("%s, single NR:", sc.path)
		}
		fmt.Printf("  %-20s %12.0f ops/s   %5.2fx\n", label, rates[i], rates[i]/rates[0])
	}

	hits := finalSnap.Counters["pcache.hit"]
	misses := finalSnap.Counters["pcache.miss"]
	fmt.Printf("\n  pcache.hit  %12d\n  pcache.miss %12d\n", hits, misses)
	if ops := finalSnap.Ops["nr.shard.ops"]; len(ops) > 0 {
		fmt.Println()
		fmt.Print(obs.RenderOps(
			fmt.Sprintf("per-shard ops (%d shards):", series[len(series)-1].shards),
			ops, obs.ShardSlotName))
	}
	if hits == 0 {
		return fmt.Errorf("pcache.hit = 0 after a warm pread workload: the read path is not hitting the page cache")
	}

	if jsonPath != "" {
		type seriesPoint struct {
			Path    string  `json:"path"`
			Shards  int     `json:"shards"`
			OpsSec  float64 `json:"ops_per_sec"`
			Speedup float64 `json:"speedup_vs_logged"`
		}
		report := struct {
			ReadOps    int           `json:"read_ops"`
			Readers    int           `json:"readers"`
			Writers    int           `json:"writers"`
			Cores      int           `json:"cores"`
			PCacheHit  uint64        `json:"pcache_hit"`
			PCacheMiss uint64        `json:"pcache_miss"`
			Series     []seriesPoint `json:"series"`
		}{
			ReadOps: readOps, Readers: shardReaders, Writers: shardWriters,
			Cores: 2 * core.CoresPerNode, PCacheHit: hits, PCacheMiss: misses,
		}
		for i, sc := range series {
			report.Series = append(report.Series, seriesPoint{
				Path: sc.path, Shards: sc.shards, OpsSec: rates[i], Speedup: rates[i] / rates[0],
			})
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// shardRun boots one configuration (shards==1 is the monolithic
// single-NR kernel), runs the read workload to completion, and returns
// the aggregate reader throughput. When instrument is set, a short
// post-timing burst reruns the reads with metrics on and the snapshot is
// returned (timing always runs with obs disabled: the sharded dispatch
// records extra per-op shard metrics the monolith doesn't, so live
// instrumentation would bias the comparison).
func shardRun(shards, readOps int, logged, instrument bool) (float64, obs.Snapshot, error) {
	var snap obs.Snapshot
	// One OS thread per simulated core, so cross-core synchronization
	// (combiner hand-offs, reader sync convoys) costs wall-clock time.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2 * core.CoresPerNode))
	cfg := core.Config{Cores: 2 * core.CoresPerNode, MemBytes: 256 << 20}
	if shards > 1 {
		cfg.Shards = shards
	}
	s, err := core.Boot(cfg)
	if err != nil {
		return 0, snap, err
	}
	initSys, err := s.Init()
	if err != nil {
		return 0, snap, err
	}
	// Spawn a pool and pick reader PIDs so every shard is covered (a
	// shard written to but never read from node 1 accumulates unbounded
	// writer backlog); writers come from the remainder.
	const pool = 4 * shardReaders
	pids := make([]proc.PID, pool)
	for i := range pids {
		pid, e := initSys.Spawn(fmt.Sprintf("shardbench%d", i))
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("spawn: %v", e)
		}
		pids[i] = pid
	}
	var readers, writers []proc.PID
	if shards > 1 {
		perShard := make(map[int][]proc.PID)
		for _, pid := range pids {
			sh := s.ProcShardOf(pid)
			perShard[sh] = append(perShard[sh], pid)
		}
		for sh := 0; sh < shards && len(readers) < shardReaders; sh++ {
			want := shardReaders / shards
			if len(perShard[sh]) < want {
				want = len(perShard[sh])
			}
			readers = append(readers, perShard[sh][:want]...)
			perShard[sh] = perShard[sh][want:]
		}
		for _, pid := range pids {
			if len(writers) == shardWriters {
				break
			}
			used := false
			for _, r := range readers {
				if r == pid {
					used = true
					break
				}
			}
			if !used {
				writers = append(writers, pid)
			}
		}
	} else {
		readers = pids[:shardReaders]
		writers = pids[shardReaders : shardReaders+shardWriters]
	}
	if len(readers) != shardReaders || len(writers) != shardWriters {
		return 0, snap, fmt.Errorf("role assignment: %d readers, %d writers", len(readers), len(writers))
	}

	// Writers on node-0 cores (replica 0), readers on node-1 cores
	// (replica 1); raw handles so each loop iteration is one syscall.
	type wrk struct {
		sys *sys.Sys
		fd  fs.FD
	}
	churn := make([]byte, shardChurnBytes)
	for i := range churn {
		churn[i] = 0xC5
	}
	ws := make([]wrk, shardWriters)
	for i, pid := range writers {
		S, err := s.RawSysOn(pid, 1+i)
		if err != nil {
			return 0, snap, err
		}
		fd, e := S.Open(fmt.Sprintf("/churn%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("writer open: %v", e)
		}
		ws[i] = wrk{sys: S, fd: fd}
	}
	type rdr struct {
		sys *sys.Sys
		fd  fs.FD
		buf []byte
	}
	hot := make([]byte, pcache.PageSize)
	for i := range hot {
		hot[i] = 0x7E
	}
	rs := make([]rdr, shardReaders)
	for i, pid := range readers {
		S, err := s.RawSysOn(pid, core.CoresPerNode+i)
		if err != nil {
			return 0, snap, err
		}
		fd, e := S.Open(fmt.Sprintf("/hot%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("reader open: %v", e)
		}
		if _, e := S.Write(fd, hot); e != sys.EOK {
			return 0, snap, fmt.Errorf("reader write: %v", e)
		}
		if _, e := S.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
			return 0, snap, fmt.Errorf("reader seek: %v", e)
		}
		rs[i] = rdr{sys: S, fd: fd, buf: make([]byte, 256)}
		// Warm the cache so the timed pread loop hits.
		if n, e := S.Pread(fd, rs[i].buf, 0); e != sys.EOK || n != uint64(len(rs[i].buf)) {
			return 0, snap, fmt.Errorf("reader warmup pread: n=%d %v", n, e)
		}
	}

	// read is one loop iteration of the measured workload.
	read := func(r rdr) error {
		if logged {
			// Sequential reads through the log; rewind at EOF (one Seek
			// per 16 reads of the page-sized file).
			n, e := r.sys.Read(r.fd, r.buf)
			if e != sys.EOK {
				return fmt.Errorf("read: %v", e)
			}
			if n < uint64(len(r.buf)) {
				if _, e := r.sys.Seek(r.fd, 0, fs.SeekSet); e != sys.EOK {
					return fmt.Errorf("rewind: %v", e)
				}
			}
			return nil
		}
		if n, e := r.sys.Pread(r.fd, r.buf, 0); e != sys.EOK || n != uint64(len(r.buf)) {
			return fmt.Errorf("pread: n=%d %v", n, e)
		}
		return nil
	}

	// Churn paced to reader progress — one write per shardChurnEvery
	// claimed reads, arbitrated by CAS on churned — so every variant
	// applies the identical write stream per measured read.
	var stop atomic.Bool
	var claimed, churned atomic.Int64
	var wwg sync.WaitGroup
	for _, w := range ws {
		w := w
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for !stop.Load() {
				k := churned.Load()
				if claimed.Load() < (k+1)*shardChurnEvery || !churned.CompareAndSwap(k, k+1) {
					runtime.Gosched()
					continue
				}
				if _, e := w.sys.Seek(w.fd, 0, fs.SeekSet); e != sys.EOK {
					stop.Store(true)
					return
				}
				if _, e := w.sys.Write(w.fd, churn); e != sys.EOK {
					stop.Store(true)
					return
				}
			}
		}()
	}
	// Work-stealing read loop: readers claim ops from a shared counter
	// so aggregate throughput is measured, not the slowest reader's
	// fixed share.
	errs := make(chan error, shardReaders)
	t0 := time.Now()
	for _, r := range rs {
		r := r
		go func() {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for claimed.Add(1) <= int64(readOps) {
				if err := read(r); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for range rs {
		if err := <-errs; err != nil {
			return 0, snap, err
		}
	}
	dur := time.Since(t0)
	stop.Store(true)
	wwg.Wait()

	if instrument {
		obs.Reset()
		obs.SetSampleRate(1)
		obs.Enable()
		for _, r := range rs {
			for i := 0; i < readOps/(10*shardReaders); i++ {
				if err := read(r); err != nil {
					return 0, snap, fmt.Errorf("instrumented %w", err)
				}
			}
		}
		obs.Disable()
		obs.SetSampleRate(obs.DefaultSampleRate)
		snap = obs.TakeSnapshot()
	}

	if err := s.CheckReplicaAgreement(); err != nil {
		return 0, snap, err
	}
	return float64(readOps) / dur.Seconds(), snap, nil
}
