package main

import (
	"fmt"
	"time"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/wal"
)

// runWal measures the write-ahead journal two ways. First, commit
// strategy: the same stream of file writes made durable once per
// submission-ring batch (one OpSync marker drains the whole batch into
// a single journal flush — group commit) versus once per operation (a
// scalar Sync after every write). Second, recovery: how long journal
// replay takes at boot as a function of how many records the crash left
// in the record area. Contract checking is live throughout.
func runWal(cores, batch, rounds int) error {
	payload := []byte("sixteen bytes!!!")
	totalOps := rounds * batch

	// Group commit: `batch` writes plus one sync marker per submission.
	// obs captures the WAL histograms for this side.
	obs.Reset()
	obs.SetSampleRate(1)
	obs.Enable()
	groupRate, err := walCommitRun(cores, totalOps, func(s *vnros.Sys, fd vnros.FD) error {
		ops := make([]vnros.Op, 0, batch+1)
		for r := 0; r < rounds; r++ {
			ops = ops[:0]
			for i := 0; i < batch; i++ {
				ops = append(ops, vnros.OpWrite(fd, payload))
			}
			ops = append(ops, vnros.OpSync())
			comps, e := s.SubmitWait(ops)
			if e != vnros.EOK {
				return fmt.Errorf("round %d: submit: %v", r, e)
			}
			for i, c := range comps {
				if c.Errno != vnros.EOK {
					return fmt.Errorf("round %d op %d: %v", r, i, c.Errno)
				}
			}
		}
		return nil
	})
	obs.Disable()
	obs.SetSampleRate(obs.DefaultSampleRate)
	if err != nil {
		return err
	}
	snap := obs.TakeSnapshot()

	// Per-op commit: the identical writes, each followed by its own
	// boundary crossing and journal flush.
	perOpRate, err := walCommitRun(cores, totalOps, func(s *vnros.Sys, fd vnros.FD) error {
		for i := 0; i < totalOps; i++ {
			if _, e := s.Write(fd, payload); e != vnros.EOK {
				return fmt.Errorf("write %d: %v", i, e)
			}
			if e := s.Sync(); e != vnros.EOK {
				return fmt.Errorf("sync %d: %v", i, e)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("write-ahead journal: %d cores, batch size %d, %d rounds (contract checking on)\n\n",
		cores, batch, rounds)
	fmt.Printf("  group commit (1 sync/batch): %10.0f ops/s\n", groupRate)
	fmt.Printf("  per-op commit (1 sync/op):   %10.0f ops/s\n", perOpRate)
	fmt.Printf("  speedup:                     %10.2fx\n\n", groupRate/perOpRate)

	if h, ok := snap.Hists["wal.commit_records"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}
	if h, ok := snap.Hists["wal.flush_latency"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}

	// Recovery time vs journal length: crash a system after n journaled
	// records (no checkpoint) and time the replay a rebooting kernel
	// performs.
	fmt.Printf("  recovery time vs journal length:\n")
	for _, n := range []int{64, 256, 1024, 4096} {
		d, replayed, err := walRecoveryRun(n, batch)
		if err != nil {
			return err
		}
		fmt.Printf("    %5d records: replayed %5d in %8s (%6.0f records/ms)\n",
			n, replayed, d.Round(time.Microsecond), float64(replayed)/(float64(d.Microseconds())/1000))
	}
	return nil
}

// walCommitRun boots a journaled system, runs the workload against one
// file, and returns mutation throughput (totalOps / wall time).
func walCommitRun(cores, totalOps int, work func(*vnros.Sys, vnros.FD) error) (float64, error) {
	system, err := vnros.Boot(vnros.Config{Cores: cores, WAL: true})
	if err != nil {
		return 0, err
	}
	initSys, err := system.Init()
	if err != nil {
		return 0, err
	}
	fd, e := initSys.Open("/wal-bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		return 0, fmt.Errorf("open: %v", e)
	}

	// Untimed warmup: touch the write+sync path so neither side pays
	// cold-start costs (combiner spin-up, allocator growth) inside its
	// measured window.
	for i := 0; i < 64; i++ {
		if _, e := initSys.Write(fd, []byte("warmup")); e != vnros.EOK {
			return 0, fmt.Errorf("warmup write: %v", e)
		}
	}
	if e := initSys.Sync(); e != vnros.EOK {
		return 0, fmt.Errorf("warmup sync: %v", e)
	}

	t0 := time.Now()
	if err := work(initSys, fd); err != nil {
		return 0, err
	}
	dur := time.Since(t0)

	if err := initSys.ContractErr(); err != nil {
		return 0, fmt.Errorf("contract violation: %w", err)
	}
	if err := system.CheckReplicaAgreement(); err != nil {
		return 0, err
	}
	return float64(totalOps) / dur.Seconds(), nil
}

// walRecoveryRun journals n 16-byte writes (flushing every `batch`
// records, never checkpointing), abandons the system uncleanly, and
// times a fresh Journal's Recover over the same disk. Returns the
// replay duration and the number of records re-applied.
func walRecoveryRun(n, batch int) (time.Duration, uint64, error) {
	system, err := vnros.Boot(vnros.Config{Cores: 1, WAL: true})
	if err != nil {
		return 0, 0, err
	}
	initSys, err := system.Init()
	if err != nil {
		return 0, 0, err
	}
	fd, e := initSys.Open("/recovery-bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		return 0, 0, fmt.Errorf("open: %v", e)
	}
	payload := []byte("sixteen bytes!!!")
	for i := 0; i < n; i++ {
		if _, e := initSys.Write(fd, payload); e != vnros.EOK {
			return 0, 0, fmt.Errorf("write %d: %v", i, e)
		}
		if (i+1)%batch == 0 {
			if e := initSys.Sync(); e != vnros.EOK {
				return 0, 0, fmt.Errorf("sync at %d: %v", i, e)
			}
		}
	}
	if e := initSys.Sync(); e != vnros.EOK {
		return 0, 0, fmt.Errorf("final sync: %v", e)
	}

	// Reboot: a fresh journal over the crashed disk replays the log.
	j, err := wal.New(system.BlockDev, 0)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	if _, err := j.Recover(); err != nil {
		return 0, 0, err
	}
	d := time.Since(t0)
	replayed := j.DurableSeq()
	return d, replayed, nil
}
