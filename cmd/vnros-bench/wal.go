package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/wal"
	"github.com/verified-os/vnros/internal/walshard"
)

// runWal measures the write-ahead journal three ways. First, commit
// strategy: the same stream of file writes made durable once per
// submission-ring batch (one OpSync marker drains the whole batch into
// a single journal flush — group commit) versus once per operation (a
// scalar Sync after every write). Second, recovery: how long journal
// replay takes at boot as a function of how many records the crash left
// in the record area. Third, the shard-scaling series (walShardSeries):
// the same write-heavy workload against the single-WAL kernel and the
// per-shard WAL at 2 and 4 shards. Contract checking is live for the
// commit-strategy comparison.
func runWal(cores, batch, rounds, shardRounds int, jsonPath string) error {
	payload := []byte("sixteen bytes!!!")
	totalOps := rounds * batch

	// Group commit: `batch` writes plus one sync marker per submission.
	// obs captures the WAL histograms for this side.
	obs.Reset()
	obs.SetSampleRate(1)
	obs.Enable()
	groupRate, err := walCommitRun(cores, totalOps, func(s *vnros.Sys, fd vnros.FD) error {
		ops := make([]vnros.Op, 0, batch+1)
		for r := 0; r < rounds; r++ {
			ops = ops[:0]
			for i := 0; i < batch; i++ {
				ops = append(ops, vnros.OpWrite(fd, payload))
			}
			ops = append(ops, vnros.OpSync())
			comps, e := s.SubmitWait(ops)
			if e != vnros.EOK {
				return fmt.Errorf("round %d: submit: %v", r, e)
			}
			for i, c := range comps {
				if c.Errno != vnros.EOK {
					return fmt.Errorf("round %d op %d: %v", r, i, c.Errno)
				}
			}
		}
		return nil
	})
	obs.Disable()
	obs.SetSampleRate(obs.DefaultSampleRate)
	if err != nil {
		return err
	}
	snap := obs.TakeSnapshot()

	// Per-op commit: the identical writes, each followed by its own
	// boundary crossing and journal flush.
	perOpRate, err := walCommitRun(cores, totalOps, func(s *vnros.Sys, fd vnros.FD) error {
		for i := 0; i < totalOps; i++ {
			if _, e := s.Write(fd, payload); e != vnros.EOK {
				return fmt.Errorf("write %d: %v", i, e)
			}
			if e := s.Sync(); e != vnros.EOK {
				return fmt.Errorf("sync %d: %v", i, e)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	fmt.Printf("write-ahead journal: %d cores, batch size %d, %d rounds (contract checking on)\n\n",
		cores, batch, rounds)
	fmt.Printf("  group commit (1 sync/batch): %10.0f ops/s\n", groupRate)
	fmt.Printf("  per-op commit (1 sync/op):   %10.0f ops/s\n", perOpRate)
	fmt.Printf("  speedup:                     %10.2fx\n\n", groupRate/perOpRate)

	if h, ok := snap.Hists["wal.commit_records"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}
	if h, ok := snap.Hists["wal.flush_latency"]; ok && h.Count > 0 {
		fmt.Print(h.Render())
		fmt.Println()
	}

	// Recovery time vs journal length: crash a system after n journaled
	// records (no checkpoint) and time the replay a rebooting kernel
	// performs.
	fmt.Printf("  recovery time vs journal length:\n")
	for _, n := range []int{64, 256, 1024, 4096} {
		d, replayed, err := walRecoveryRun(n, batch)
		if err != nil {
			return err
		}
		fmt.Printf("    %5d records: replayed %5d in %8s (%6.0f records/ms)\n",
			n, replayed, d.Round(time.Microsecond), float64(replayed)/(float64(d.Microseconds())/1000))
	}

	fmt.Println()
	return walShardSeries(shardRounds, jsonPath)
}

const (
	walShardWriters = 8  // writer processes, one per core
	walShardBatch   = 48 // writes per commit round (one OpSync per round)
)

// walShardSeries is the per-shard WAL scaling comparison: eight writer
// processes each stream batched writes to their own file, closing every
// batch with an OpSync — on the sharded configurations one cross-shard
// group-commit round per batch. The files spread across the fs shards
// by inode, so the monolith funnels every write through one combiner
// and one journal while the sharded kernels spread the same stream over
// per-shard logs. The final configuration reruns instrumented and must
// show commits on at least two shard slots plus a nonzero round count —
// the smoke assertion CI relies on. Recovery replay is timed per shard
// count over an identically-loaded journal set.
func walShardSeries(rounds int, jsonPath string) error {
	shardCounts := []int{1, 2, 4}
	rates := make([]float64, len(shardCounts))
	var finalSnap obs.Snapshot
	for i, n := range shardCounts {
		rate, snap, err := walShardRun(n, rounds, i == len(shardCounts)-1)
		if err != nil {
			return fmt.Errorf("wal shards=%d: %w", n, err)
		}
		rates[i] = rate
		if i == len(shardCounts)-1 {
			finalSnap = snap
		}
	}

	fmt.Printf("per-shard WAL scaling: %d commit rounds x %d writes, %d writers, %d cores\n\n",
		rounds, walShardBatch, walShardWriters, 2*core.CoresPerNode)
	for i, n := range shardCounts {
		label := fmt.Sprintf("%d shards:", n)
		if n == 1 {
			label = "single WAL:"
		}
		fmt.Printf("  %-14s %12.0f writes/s   %5.2fx\n", label, rates[i], rates[i]/rates[0])
	}

	rounds4 := finalSnap.Counters["wal.shard.rounds"]
	commitSlots := 0
	commitOps := finalSnap.Ops["wal.shard.commit"]
	for _, op := range commitOps {
		if op.Count > 0 {
			commitSlots++
		}
	}
	fmt.Printf("\n  wal.shard.rounds %8d   shards with commits: %d\n", rounds4, commitSlots)
	if len(commitOps) > 0 {
		fmt.Println()
		fmt.Print(obs.RenderOps("per-shard prepare flushes (4 shards):", commitOps, obs.ShardSlotName))
	}
	if rounds4 == 0 || commitSlots < 2 {
		return fmt.Errorf("wal.shard.rounds=%d, %d shard slots with commits: the sharded sync path is not reaching the group committer",
			rounds4, commitSlots)
	}

	// Recovery: identical record loads replayed per shard count.
	type recoveryPoint struct {
		Shards   int     `json:"shards"`
		Records  int     `json:"records"`
		Replayed uint64  `json:"replayed"`
		MicroSec float64 `json:"replay_us"`
	}
	var recovery []recoveryPoint
	const recoveryRecords = 2048
	fmt.Printf("\n  recovery time vs shard count (%d records):\n", recoveryRecords)
	for _, n := range shardCounts {
		d, replayed, err := walShardRecovery(n, recoveryRecords)
		if err != nil {
			return fmt.Errorf("recovery shards=%d: %w", n, err)
		}
		fmt.Printf("    %d shards: replayed %5d in %8s (%6.0f records/ms)\n",
			n, replayed, d.Round(time.Microsecond), float64(replayed)/(float64(d.Microseconds())/1000))
		recovery = append(recovery, recoveryPoint{
			Shards: n, Records: recoveryRecords, Replayed: replayed,
			MicroSec: float64(d.Microseconds()),
		})
	}

	if jsonPath != "" {
		type seriesPoint struct {
			Shards    int     `json:"shards"`
			WritesSec float64 `json:"writes_per_sec"`
			Speedup   float64 `json:"speedup_vs_single_wal"`
		}
		report := struct {
			Rounds       int             `json:"commit_rounds"`
			Batch        int             `json:"writes_per_round"`
			Writers      int             `json:"writers"`
			Cores        int             `json:"cores"`
			ShardRounds  uint64          `json:"wal_shard_rounds"`
			CommitShards int             `json:"shards_with_commits"`
			Series       []seriesPoint   `json:"series"`
			Recovery     []recoveryPoint `json:"recovery"`
		}{
			Rounds: rounds, Batch: walShardBatch, Writers: walShardWriters,
			Cores: 2 * core.CoresPerNode, ShardRounds: rounds4,
			CommitShards: commitSlots, Recovery: recovery,
		}
		for i, n := range shardCounts {
			report.Series = append(report.Series, seriesPoint{
				Shards: n, WritesSec: rates[i], Speedup: rates[i] / rates[0],
			})
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// walShardRun boots one configuration (shards==1 is the monolithic
// single-WAL kernel) and runs the write-heavy workload to completion:
// writers claim commit rounds from a shared counter (aggregate
// throughput, not the slowest writer's share), each round a batch of
// cursor writes rewound by a leading seek and committed by a trailing
// OpSync, with a truncate mixed in every eighth round. When instrument
// is set a short post-timing burst reruns with metrics on (timing runs
// with obs off: sharded dispatch records per-shard metrics the monolith
// doesn't, which would bias the comparison).
func walShardRun(shards, rounds int, instrument bool) (float64, obs.Snapshot, error) {
	var snap obs.Snapshot
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2 * core.CoresPerNode))
	cfg := core.Config{Cores: 2 * core.CoresPerNode, WAL: true, MemBytes: 256 << 20}
	if shards > 1 {
		cfg.Shards = shards
	}
	s, err := core.Boot(cfg)
	if err != nil {
		return 0, snap, err
	}
	initSys, err := s.Init()
	if err != nil {
		return 0, snap, err
	}

	payload := []byte("sixteen bytes!!!")
	type writer struct {
		sys *sys.Sys
		fd  fs.FD
	}
	ws := make([]writer, walShardWriters)
	for i := range ws {
		pid, e := initSys.Spawn(fmt.Sprintf("walbench%d", i))
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("spawn: %v", e)
		}
		S, err := s.RawSysOn(pid, i)
		if err != nil {
			return 0, snap, err
		}
		fd, e := S.Open(fmt.Sprintf("/wal%d", i), fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			return 0, snap, fmt.Errorf("writer open: %v", e)
		}
		ws[i] = writer{sys: S, fd: fd}
	}

	// round runs one commit round for writer w: seek, batched writes,
	// every-8th truncate, sync marker.
	round := func(w writer, r int64) error {
		ops := make([]sys.Op, 0, walShardBatch+3)
		ops = append(ops, sys.OpSeek(w.fd, 0, fs.SeekSet))
		for i := 0; i < walShardBatch; i++ {
			ops = append(ops, sys.OpWrite(w.fd, payload))
		}
		if r%8 == 0 {
			ops = append(ops, sys.OpTruncate(w.fd, uint64(len(payload))))
		}
		ops = append(ops, sys.OpSync())
		comps, e := w.sys.SubmitWait(ops)
		if e != sys.EOK {
			return fmt.Errorf("round %d: submit: %v", r, e)
		}
		for i, c := range comps {
			if c.Errno != sys.EOK {
				return fmt.Errorf("round %d op %d: %v", r, i, c.Errno)
			}
		}
		return nil
	}

	// Untimed warmup: one round per writer covers cold-start costs.
	for _, w := range ws {
		if err := round(w, 1); err != nil {
			return 0, snap, fmt.Errorf("warmup %w", err)
		}
	}

	var claimed atomic.Int64
	errs := make(chan error, walShardWriters)
	t0 := time.Now()
	for _, w := range ws {
		w := w
		go func() {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for {
				r := claimed.Add(1)
				if r > int64(rounds) {
					errs <- nil
					return
				}
				if err := round(w, r); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for range ws {
		if err := <-errs; err != nil {
			return 0, snap, err
		}
	}
	dur := time.Since(t0)

	if instrument {
		obs.Reset()
		obs.SetSampleRate(1)
		obs.Enable()
		for _, w := range ws {
			for i := 0; i < 4; i++ {
				if err := round(w, 1); err != nil {
					return 0, snap, fmt.Errorf("instrumented %w", err)
				}
			}
		}
		obs.Disable()
		obs.SetSampleRate(obs.DefaultSampleRate)
		snap = obs.TakeSnapshot()
	}

	if err := s.CheckReplicaAgreement(); err != nil {
		return 0, snap, err
	}
	return float64(rounds*walShardBatch) / dur.Seconds(), snap, nil
}

// walShardRecovery loads per-shard journals (a single wal.Journal for
// shards==1) with `records` write mutations committed in rounds of 64
// and times the replay a rebooting kernel performs: sequential
// RecoverShard over every shard, the order a boot recovers in. Auto
// checkpointing is off so the full load is actually replayed.
func walShardRecovery(shards, records int) (time.Duration, uint64, error) {
	d := fs.NewMemBlockStore(512, 8192)
	payload := []byte("sixteen bytes!!!")
	if shards == 1 {
		j, err := wal.New(d, 0)
		if err != nil {
			return 0, 0, err
		}
		if err := j.Format(); err != nil {
			return 0, 0, err
		}
		j.Record(fs.Mutation{Kind: fs.MutCreate, Path: "/f"})
		for i := 0; i < records-1; i++ {
			j.Record(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 0, Data: payload})
			if j.Pending() >= 64 {
				if err := j.Flush(); err != nil {
					return 0, 0, err
				}
			}
		}
		if err := j.Flush(); err != nil {
			return 0, 0, err
		}
		r, err := wal.New(d, 0)
		if err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		if _, err := r.Recover(); err != nil {
			return 0, 0, err
		}
		return time.Since(t0), r.DurableSeq(), nil
	}

	g, err := walshard.New(d, shards, 0)
	if err != nil {
		return 0, 0, err
	}
	g.SetAutoCheckpoint(false)
	if err := g.Format(); err != nil {
		return 0, 0, err
	}
	for i := 0; i < shards; i++ {
		g.Journal(i).Record(fs.Mutation{Kind: fs.MutCreate, Path: "/f"})
	}
	for i := 0; i < records-shards; i++ {
		g.Journal(i % shards).Record(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 0, Data: payload})
		if (i+1)%64 == 0 {
			if err := g.Commit(); err != nil {
				return 0, 0, err
			}
		}
	}
	if err := g.Commit(); err != nil {
		return 0, 0, err
	}
	r, err := walshard.New(d, shards, 0)
	if err != nil {
		return 0, 0, err
	}
	var replayed uint64
	t0 := time.Now()
	for i := 0; i < shards; i++ {
		if _, err := r.RecoverShard(i); err != nil {
			return 0, 0, err
		}
		replayed += r.Journal(i).DurableSeq()
	}
	return time.Since(t0), replayed, nil
}

// walCommitRun boots a journaled system, runs the workload against one
// file, and returns mutation throughput (totalOps / wall time).
func walCommitRun(cores, totalOps int, work func(*vnros.Sys, vnros.FD) error) (float64, error) {
	system, err := vnros.Boot(vnros.Config{Cores: cores, WAL: true})
	if err != nil {
		return 0, err
	}
	initSys, err := system.Init()
	if err != nil {
		return 0, err
	}
	fd, e := initSys.Open("/wal-bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		return 0, fmt.Errorf("open: %v", e)
	}

	// Untimed warmup: touch the write+sync path so neither side pays
	// cold-start costs (combiner spin-up, allocator growth) inside its
	// measured window.
	for i := 0; i < 64; i++ {
		if _, e := initSys.Write(fd, []byte("warmup")); e != vnros.EOK {
			return 0, fmt.Errorf("warmup write: %v", e)
		}
	}
	if e := initSys.Sync(); e != vnros.EOK {
		return 0, fmt.Errorf("warmup sync: %v", e)
	}

	t0 := time.Now()
	if err := work(initSys, fd); err != nil {
		return 0, err
	}
	dur := time.Since(t0)

	if err := initSys.ContractErr(); err != nil {
		return 0, fmt.Errorf("contract violation: %w", err)
	}
	if err := system.CheckReplicaAgreement(); err != nil {
		return 0, err
	}
	return float64(totalOps) / dur.Seconds(), nil
}

// walRecoveryRun journals n 16-byte writes (flushing every `batch`
// records, never checkpointing), abandons the system uncleanly, and
// times a fresh Journal's Recover over the same disk. Returns the
// replay duration and the number of records re-applied.
func walRecoveryRun(n, batch int) (time.Duration, uint64, error) {
	system, err := vnros.Boot(vnros.Config{Cores: 1, WAL: true})
	if err != nil {
		return 0, 0, err
	}
	initSys, err := system.Init()
	if err != nil {
		return 0, 0, err
	}
	fd, e := initSys.Open("/recovery-bench", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		return 0, 0, fmt.Errorf("open: %v", e)
	}
	payload := []byte("sixteen bytes!!!")
	for i := 0; i < n; i++ {
		if _, e := initSys.Write(fd, payload); e != vnros.EOK {
			return 0, 0, fmt.Errorf("write %d: %v", i, e)
		}
		if (i+1)%batch == 0 {
			if e := initSys.Sync(); e != vnros.EOK {
				return 0, 0, fmt.Errorf("sync at %d: %v", i, e)
			}
		}
	}
	if e := initSys.Sync(); e != vnros.EOK {
		return 0, 0, fmt.Errorf("final sync: %v", e)
	}

	// Reboot: a fresh journal over the crashed disk replays the log.
	j, err := wal.New(system.BlockDev, 0)
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	if _, err := j.Recover(); err != nil {
		return 0, 0, err
	}
	d := time.Since(t0)
	replayed := j.DurableSeq()
	return d, replayed, nil
}
