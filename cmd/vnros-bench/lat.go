package main

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/obs"
)

// runLat measures what the throughput benches don't: end-to-end request
// latency under the completion-driven submission API, per wait mode.
// Each simulated client issues a mixed open/read/write/sync request as
// one ring batch and the measured interval is Submit → reaped — the
// latency a real server's request handler sees. The same workload runs
// once per wait mode:
//
//	spin  — busy-poll the CQ (lowest wake latency, burns the core)
//	block — park on the CQ doorbell, woken by completion posting
//	poll  — never wait; re-poll from the event loop between yields
//
// Journaling is on, so the periodic OpSync inside the mix prices real
// durability group commits into the tail.
func runLat(cores, clients, requests int) error {
	fmt.Printf("request latency: %d cores, %d clients, %d mixed open/read/write/sync requests each (WAL on)\n\n",
		cores, clients, requests)
	type modeResult struct {
		name                string
		p50, p99, p999      time.Duration
		rate                float64
		parks, wakes, spins uint64
	}
	var results []modeResult
	for _, mode := range []struct {
		name string
		wait vnros.WaitMode
	}{{"spin", vnros.WaitSpin}, {"block", vnros.WaitBlock}, {"poll", vnros.WaitPoll}} {
		obs.Reset()
		obs.Enable()
		lats, elapsed, err := latWorkload(cores, clients, requests, mode.wait)
		obs.Disable()
		if err != nil {
			return fmt.Errorf("%s: %w", mode.name, err)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(lats)-1))
			return lats[i]
		}
		results = append(results, modeResult{
			name: mode.name, p50: pct(0.50), p99: pct(0.99), p999: pct(0.999),
			rate:  float64(len(lats)) / elapsed.Seconds(),
			parks: obs.RingWaitParks.Load(), wakes: obs.RingWaitWakes.Load(), spins: obs.RingWaitSpins.Load(),
		})
	}
	fmt.Printf("  %-6s %12s %12s %12s %12s %10s %10s %10s\n",
		"mode", "p50", "p99", "p999", "reqs/s", "parks", "wakes", "spins")
	for _, r := range results {
		fmt.Printf("  %-6s %12v %12v %12v %12.0f %10d %10d %10d\n",
			r.name, r.p50, r.p99, r.p999, r.rate, r.parks, r.wakes, r.spins)
	}
	return nil
}

// latWorkload boots a fresh journaled system and runs the client fleet
// in the given wait mode, returning every request's latency.
func latWorkload(cores, clients, requests int, wait vnros.WaitMode) ([]time.Duration, time.Duration, error) {
	system, err := vnros.Boot(vnros.Config{Cores: cores, MemBytes: 512 << 20, WAL: true})
	if err != nil {
		return nil, 0, err
	}
	initSys, err := system.Init()
	if err != nil {
		return nil, 0, err
	}
	type clientOut struct {
		lats []time.Duration
		err  error
	}
	done := make(chan clientOut, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		_, err := system.Run(initSys, fmt.Sprintf("lat%d", c), func(p *vnros.Process) int {
			fd, e := p.Sys.Open(fmt.Sprintf("/lat%d", c), vnros.OCreate|vnros.ORdWr)
			if e != vnros.EOK {
				done <- clientOut{err: fmt.Errorf("client %d: open: %v", c, e)}
				return 1
			}
			payload := []byte(fmt.Sprintf("client-%d: request payload bytes", c))
			lats := make([]time.Duration, 0, requests)
			for r := 0; r < requests; r++ {
				// The request mix: reposition, two writes, a read-back;
				// every 8th request adds a durability barrier, every 16th
				// opens (and later closes) a side file through the ring.
				ops := []vnros.Op{
					vnros.OpSeek(fd, 0, vnros.SeekSet),
					vnros.OpWrite(fd, payload),
					vnros.OpWrite(fd, payload),
					vnros.OpRead(fd, uint64(len(payload))),
				}
				sideIdx := -1
				if r%16 == 0 {
					sideIdx = len(ops)
					ops = append(ops, vnros.OpOpen(fmt.Sprintf("/lat%d-side", c), vnros.OCreate|vnros.ORdWr))
				}
				if r%8 == 0 {
					ops = append(ops, vnros.OpSync())
				}
				start := time.Now()
				b := p.Sys.SubmitOpts(ops, vnros.SubmitOptions{Wait: wait})
				var comps []vnros.Completion
				var werr error
				for {
					comps, werr = b.Wait()
					if werr == vnros.ErrBatchPending {
						runtime.Gosched() // poll mode: yield and re-enter the event loop
						continue
					}
					break
				}
				lats = append(lats, time.Since(start))
				if werr != nil {
					done <- clientOut{err: fmt.Errorf("client %d req %d: %v", c, r, werr)}
					return 1
				}
				for i, comp := range comps {
					if comp.Errno != vnros.EOK {
						done <- clientOut{err: fmt.Errorf("client %d req %d op %d: %v", c, r, i, comp.Errno)}
						return 1
					}
				}
				// Close the side file so the per-process FD table doesn't
				// grow without bound.
				if sideIdx >= 0 {
					if e := p.Sys.Close(vnros.FD(comps[sideIdx].Val)); e != vnros.EOK {
						done <- clientOut{err: fmt.Errorf("client %d req %d: close side fd: %v", c, r, e)}
						return 1
					}
				}
			}
			done <- clientOut{lats: lats}
			return 0
		})
		if err != nil {
			return nil, 0, err
		}
	}
	var all []time.Duration
	for c := 0; c < clients; c++ {
		out := <-done
		if out.err != nil {
			return nil, 0, out.err
		}
		all = append(all, out.lats...)
	}
	elapsed := time.Since(t0)
	system.WaitAll()
	if err := initSys.ContractErr(); err != nil {
		return nil, 0, fmt.Errorf("contract violation: %w", err)
	}
	if err := system.CheckReplicaAgreement(); err != nil {
		return nil, 0, err
	}
	return all, elapsed, nil
}
