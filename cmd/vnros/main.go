// Command vnros boots the simulated OS, runs a small multi-process
// demo workload against the spec-checked syscall contract, and prints
// the console transcript plus the self-derived Table 1/2 columns.
//
// The `stats` subcommand runs the same workload with the kernel
// observability subsystem (internal/obs) enabled and prints the
// collected kstats: counters, latency histograms, per-opcode syscall
// percentiles, and the tail of the kernel event trace.
package main

import (
	"flag"
	"fmt"
	"os"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sys"
)

func main() {
	cores := flag.Int("cores", 4, "simulated cores")
	shards := flag.Int("shards", 0, "kernel state-machine shards (0 = monolithic single-NR kernel)")
	tables := flag.Bool("tables", false, "print the paper's Tables 1 and 2 with the derived vnros column")
	flag.Parse()

	stats := false
	switch flag.Arg(0) {
	case "":
	case "stats":
		stats = true
	default:
		fmt.Fprintf(os.Stderr, "vnros: unknown subcommand %q (supported: stats)\n", flag.Arg(0))
		os.Exit(2)
	}

	if err := run(*cores, *shards, *tables, stats); err != nil {
		fmt.Fprintln(os.Stderr, "vnros:", err)
		os.Exit(1)
	}
}

func run(cores, shards int, tables, stats bool) error {
	if stats {
		// The demo workload is tiny; record every event rather than the
		// production sampled default.
		obs.SetSampleRate(1)
		obs.Enable()
	}
	system, err := vnros.Boot(vnros.Config{Cores: cores, Shards: shards})
	if err != nil {
		return err
	}
	initSys, err := system.Init()
	if err != nil {
		return err
	}
	if system.Sharded() {
		system.Printf("vnros: booted %d cores, %d kernel replicas, %d shards\n",
			cores, system.NumReplicas(), system.NumShards())
	} else {
		system.Printf("vnros: booted %d cores, %d kernel replicas\n", cores, system.NumReplicas())
	}

	if e := initSys.Mkdir("/home"); e != vnros.EOK {
		return fmt.Errorf("mkdir: %v", e)
	}

	// A writer and a reader process, plus a memory-mapper.
	done := make(chan error, 3)
	_, err = system.Run(initSys, "writer", func(p *vnros.Process) int {
		fd, e := p.Sys.Open("/home/journal", vnros.OCreate|vnros.ORdWr)
		if e != vnros.EOK {
			done <- fmt.Errorf("writer open: %v", e)
			return 1
		}
		for i := 0; i < 5; i++ {
			if _, e := p.Sys.Write(fd, []byte(fmt.Sprintf("entry %d\n", i))); e != vnros.EOK {
				done <- fmt.Errorf("writer write: %v", e)
				return 1
			}
		}
		system.Printf("writer(pid %d): 5 entries written\n", p.PID)
		done <- nil
		return 0
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}

	_, err = system.Run(initSys, "reader", func(p *vnros.Process) int {
		fd, e := p.Sys.Open("/home/journal", vnros.ORdOnly)
		if e != vnros.EOK {
			done <- fmt.Errorf("reader open: %v", e)
			return 1
		}
		buf := make([]byte, 256)
		n, e := p.Sys.Read(fd, buf)
		if e != vnros.EOK {
			done <- fmt.Errorf("reader read: %v", e)
			return 1
		}
		system.Printf("reader(pid %d): read %d bytes\n", p.PID, n)
		done <- nil
		return 0
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}

	_, err = system.Run(initSys, "mapper", func(p *vnros.Process) int {
		base, e := p.Sys.MMap(4 * vnros.PageSize)
		if e != vnros.EOK {
			done <- fmt.Errorf("mapper mmap: %v", e)
			return 1
		}
		if e := p.Sys.MemWrite(base, []byte("virtual memory works")); e != vnros.EOK {
			done <- fmt.Errorf("mapper write: %v", e)
			return 1
		}
		pa, e := p.Sys.MemResolve(base)
		if e != vnros.EOK {
			done <- fmt.Errorf("mapper resolve: %v", e)
			return 1
		}
		system.Printf("mapper(pid %d): va %#x -> pa %#x\n", p.PID, uint64(base), pa)
		_ = p.Sys.MUnmap(base)
		done <- nil
		return 0
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}

	system.WaitAll()
	for i := 0; i < 3; i++ {
		if _, e := initSys.Wait(); e != vnros.EOK {
			return fmt.Errorf("wait: %v", e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return fmt.Errorf("contract violation: %w", err)
	}
	if err := system.CheckReplicaAgreement(); err != nil {
		return err
	}
	system.Printf("vnros: workload complete; contract held; replicas agree\n")

	fmt.Print(system.ConsoleOutput())

	if stats {
		snap := obs.TakeSnapshot()
		fmt.Println()
		fmt.Print(snap.RenderSummary())
		fmt.Println()
		fmt.Print(obs.RenderOps("syscall latency (dispatch boundary, once per call):",
			snap.Ops["syscall"], sys.OpName))
		fmt.Println()
		fmt.Print(obs.RenderOps(
			fmt.Sprintf("kernel applies (once per replica per op; %d replicas):", system.NumReplicas()),
			snap.Ops["kernel.apply"], sys.OpName))
		fmt.Println()
		if ops := snap.Ops["nr.shard.ops"]; len(ops) > 0 {
			fmt.Print(obs.RenderOps(
				fmt.Sprintf("per-shard dispatch (%d shards; proc* keyed by PID, fs* by inode):", system.NumShards()),
				ops, obs.ShardSlotName))
			fmt.Println()
		}
		fmt.Println("kernel trace (last 20 events):")
		fmt.Print(obs.RenderTrace(snap.Traces["kernel"], 20))
	}

	if tables {
		self := system.Components.Derive("vnros")
		fmt.Println()
		fmt.Print(relwork.RenderTable1(self))
		fmt.Println()
		fmt.Print(relwork.RenderTable2(self))
	}
	return nil
}
