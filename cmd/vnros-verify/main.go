// Command vnros-verify runs the full verification-condition suite (the
// repository's analog of the paper's "total time to verify our code"),
// printing the per-module ledger, the Figure 1a CDF, and the §5
// proof-to-code ratio report.
//
// The suite discharges on a worker pool (-j, default GOMAXPROCS); per-VC
// seeds depend only on -seed and the VC's ID, so the ledger is
// byte-identical at every job count. -incremental skips VCs whose
// module's input hash is unchanged since the last green run (advisory —
// CI runs -force); -fuzzbudget scales the sweep VCs' iteration and
// trace counts; -json writes the machine-readable timing ledger.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/verifier"
	"github.com/verified-os/vnros/internal/verifier/loc"
)

func main() {
	seed := flag.Int64("seed", 2026, "seed for randomized verification conditions")
	module := flag.String("module", "", "restrict to one module (e.g. pt, fs)")
	jobs := flag.Int("j", 0, "worker count; 0 means GOMAXPROCS")
	fuzzBudget := flag.Int("fuzzbudget", 1, "iteration/trace multiplier for sweep VCs (clamped to >= 1)")
	incremental := flag.Bool("incremental", false,
		"skip VCs whose module inputs are unchanged since the last green run (advisory)")
	force := flag.Bool("force", false, "ignore the incremental cache and run everything")
	jsonOut := flag.Bool("json", false, "write the per-VC timing ledger as JSON")
	jsonFile := flag.String("jsonfile", "BENCH_verify.json", "path for the -json ledger")
	cdf := flag.Bool("cdf", true, "print the Figure 1a CDF")
	ratio := flag.Bool("ratio", true, "print the proof-to-code ratio report")
	verbose := flag.Bool("v", false, "print each VC as it completes")
	timing := flag.Bool("timing", false, "print per-VC durations sorted descending")
	flag.Parse()

	g := vnros.NewVCRegistry()
	modules := g.Modules()
	if *module != "" && !contains(modules, *module) {
		fmt.Fprintf(os.Stderr, "vnros-verify: no such module %q (have: %s)\n",
			*module, strings.Join(modules, ", "))
		os.Exit(2)
	}

	opts := verifier.Options{Seed: *seed, Module: *module, Jobs: *jobs, FuzzBudget: *fuzzBudget}
	if *verbose {
		opts.Progress = func(r verifier.Result) {
			status := "ok"
			switch {
			case r.Skipped:
				status = "skipped (cached)"
			case r.Err != nil:
				status = "FAIL: " + r.Err.Error()
			}
			fmt.Printf("  [%-15s] %-45s %10v %s\n",
				r.Obligation.Kind, r.Obligation.ID(), r.Duration.Round(1000), status)
		}
	}

	// Incremental skipping: a VC may be elided when its module's input
	// hash (sources of its package plus transitive repo-internal imports)
	// matches the cache of the last green run at the same seed and
	// budget. The skip is advisory; -force clears it.
	var hashes map[string]string
	if *incremental && !*force {
		cache, err := verifier.LoadCache(verifier.CachePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: cache:", err)
			os.Exit(1)
		}
		hashes, err = verifier.ModuleHashes(".", modules)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: hashing module inputs:", err)
			os.Exit(1)
		}
		opts.Skip = func(o verifier.Obligation) bool {
			return cache.Skippable(o.Module, hashes[o.Module], *seed, clampBudget(*fuzzBudget))
		}
	}

	rep := g.Run(opts)

	fmt.Print(rep.Summary())
	fmt.Print(renderFooter(rep))

	if *jsonOut {
		raw, err := rep.LedgerJSON(*seed, clampBudget(*fuzzBudget))
		if err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: ledger:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonFile, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: ledger:", err)
			os.Exit(1)
		}
		fmt.Printf("timing ledger written to %s\n", *jsonFile)
	}

	if failed := rep.Failed(); len(failed) > 0 {
		fmt.Println("\nFAILED verification conditions:")
		for _, f := range failed {
			fmt.Printf("  %s: %v\n", f.Obligation.ID(), f.Err)
		}
		os.Exit(1)
	}

	// A green, unfiltered run refreshes the incremental manifest; module
	// hashes of skipped modules are unchanged by construction, so the
	// cache stays sound whether or not this run skipped anything.
	if *module == "" {
		if hashes == nil {
			var err error
			hashes, err = verifier.ModuleHashes(".", modules)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vnros-verify: hashing module inputs:", err)
				os.Exit(1)
			}
		}
		c := verifier.Cache{Version: 1, Seed: *seed, FuzzBudget: clampBudget(*fuzzBudget), Modules: hashes}
		if err := c.Save(verifier.CachePath); err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: saving cache:", err)
			os.Exit(1)
		}
	}

	if *timing {
		fmt.Println()
		fmt.Print(renderTiming(rep))
	}
	if *cdf {
		fmt.Println()
		fmt.Print(renderCDF(rep))
	}
	if *ratio {
		fmt.Println()
		st, err := loc.Count(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: loc:", err)
			os.Exit(1)
		}
		fmt.Println("Proof-to-code accounting (paper §5):")
		fmt.Print(loc.Render(st))
	}
}

func clampBudget(b int) int {
	if b < 1 {
		return 1
	}
	return b
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// renderFooter prints the run's wall-clock numbers. These live outside
// Summary so the summary stays byte-identical across job counts.
func renderFooter(rep *verifier.Report) string {
	return fmt.Sprintf("total time %v   max single VC %v   jobs: %d   speedup vs serial: %.2fx\n",
		rep.Total.Round(1000), rep.Max().Round(1000), rep.Jobs, rep.Speedup())
}

// renderTiming lists every VC by wall-clock cost, most expensive first —
// the working set for deciding which sweeps to parallelize or trim as
// the suite grows (ROADMAP, "scale the verifier").
func renderTiming(rep *verifier.Report) string {
	results := make([]verifier.Result, 0, len(rep.Results))
	for _, r := range rep.Results {
		if !r.Skipped {
			results = append(results, r)
		}
	}
	sort.SliceStable(results, func(i, j int) bool {
		return results[i].Duration > results[j].Duration
	})
	out := "Per-VC wall-clock durations (descending):\n"
	for _, r := range results {
		out += fmt.Sprintf("  %10v  %-15s %s\n",
			r.Duration.Round(1000), r.Obligation.Kind, r.Obligation.ID())
	}
	return out
}

func renderCDF(rep *verifier.Report) string {
	out := "Figure 1a: CDF of verification condition times\n"
	cdf := rep.CDF()
	if len(cdf) == 0 {
		return out + "  (no verification conditions ran)\n"
	}
	step := len(cdf) / 20
	if step == 0 {
		step = 1
	}
	out += fmt.Sprintf("%14s %10s\n", "time", "fraction")
	for i := 0; i < len(cdf); i += step {
		out += fmt.Sprintf("%14v %10.3f\n", cdf[i].Duration.Round(1000), cdf[i].Fraction)
	}
	last := cdf[len(cdf)-1]
	out += fmt.Sprintf("%14v %10.3f\n", last.Duration.Round(1000), last.Fraction)
	return out
}
