// Command vnros-verify runs the full verification-condition suite (the
// repository's analog of the paper's "total time to verify our code"),
// printing the per-module ledger, the Figure 1a CDF, and the §5
// proof-to-code ratio report.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/verifier"
	"github.com/verified-os/vnros/internal/verifier/loc"
)

func main() {
	seed := flag.Int64("seed", 2026, "seed for randomized verification conditions")
	module := flag.String("module", "", "restrict to one module (e.g. pt, fs)")
	cdf := flag.Bool("cdf", true, "print the Figure 1a CDF")
	ratio := flag.Bool("ratio", true, "print the proof-to-code ratio report")
	verbose := flag.Bool("v", false, "print each VC as it completes")
	timing := flag.Bool("timing", false, "print per-VC durations sorted descending")
	flag.Parse()

	g := vnros.NewVCRegistry()
	opts := verifier.Options{Seed: *seed, Module: *module}
	if *verbose {
		opts.Progress = func(r verifier.Result) {
			status := "ok"
			if r.Err != nil {
				status = "FAIL: " + r.Err.Error()
			}
			fmt.Printf("  [%-15s] %-45s %10v %s\n",
				r.Obligation.Kind, r.Obligation.ID(), r.Duration.Round(1000), status)
		}
	}
	rep := g.Run(opts)

	fmt.Print(rep.Summary())
	if failed := rep.Failed(); len(failed) > 0 {
		fmt.Println("\nFAILED verification conditions:")
		for _, f := range failed {
			fmt.Printf("  %s: %v\n", f.Obligation.ID(), f.Err)
		}
		os.Exit(1)
	}

	if *timing {
		fmt.Println()
		fmt.Print(renderTiming(rep))
	}
	if *cdf {
		fmt.Println()
		fmt.Print(renderCDF(rep))
	}
	if *ratio {
		fmt.Println()
		st, err := loc.Count(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vnros-verify: loc:", err)
			os.Exit(1)
		}
		fmt.Println("Proof-to-code accounting (paper §5):")
		fmt.Print(loc.Render(st))
	}
}

// renderTiming lists every VC by wall-clock cost, most expensive first —
// the working set for deciding which sweeps to parallelize or trim as
// the suite grows (ROADMAP, "scale the verifier").
func renderTiming(rep *verifier.Report) string {
	results := make([]verifier.Result, len(rep.Results))
	copy(results, rep.Results)
	sort.Slice(results, func(i, j int) bool {
		return results[i].Duration > results[j].Duration
	})
	out := "Per-VC wall-clock durations (descending):\n"
	for _, r := range results {
		out += fmt.Sprintf("  %10v  %-15s %s\n",
			r.Duration.Round(1000), r.Obligation.Kind, r.Obligation.ID())
	}
	return out
}

func renderCDF(rep *verifier.Report) string {
	out := "Figure 1a: CDF of verification condition times\n"
	cdf := rep.CDF()
	step := len(cdf) / 20
	if step == 0 {
		step = 1
	}
	out += fmt.Sprintf("%14s %10s\n", "time", "fraction")
	for i := 0; i < len(cdf); i += step {
		out += fmt.Sprintf("%14v %10.3f\n", cdf[i].Duration.Round(1000), cdf[i].Fraction)
	}
	last := cdf[len(cdf)-1]
	out += fmt.Sprintf("%14v %10.3f\n", last.Duration.Round(1000), last.Fraction)
	return out
}
