// Package vnros is the public API of the vnros project: a Go
// reproduction of "Beyond isolation: OS verification as a foundation
// for correct applications" (Brun et al., HotOS '23).
//
// It exposes the composed simulated operating system (a multi-core,
// NR-replicated kernel with a process-centric, spec-checked syscall
// contract), the verification-condition engine that stands in for the
// paper's Verus pipeline, and the experiment harness that regenerates
// the paper's evaluation.
//
// Quick start:
//
//	system, err := vnros.Boot(vnros.Config{Cores: 4})
//	initSys, err := system.Init()
//	system.Run(initSys, "hello", func(p *vnros.Process) int {
//	    fd, _ := p.Sys.Open("/hello.txt", vnros.OCreate|vnros.ORdWr)
//	    p.Sys.Write(fd, []byte("hello from a verified-OS contract"))
//	    return 0
//	})
//
// Every syscall a program issues is checked against the paper's §3
// specification relations (read_spec and friends) through the kernel's
// view abstraction; violations surface via Sys.ContractErr.
package vnros

import (
	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// Core system types.
type (
	// System is a booted instance of the simulated OS.
	System = core.System
	// Config sizes a System.
	Config = core.Config
	// Process is a running user program's handle.
	Process = core.Process
	// Program is a user program body; the return value is its exit code.
	Program = core.Program
	// Sys is the per-process syscall interface (the paper's Sys type).
	Sys = sys.Sys
	// Errno is the syscall error number.
	Errno = sys.Errno
	// FD is a file descriptor.
	FD = fs.FD
	// Stat describes a file.
	Stat = fs.Stat
	// DirEntry is a directory listing entry.
	DirEntry = fs.DirEntry
	// PID identifies a process.
	PID = proc.PID
	// Signal is a POSIX-style signal number.
	Signal = proc.Signal
	// WaitResult is a reaped child.
	WaitResult = proc.WaitResult
	// VAddr is a user virtual address.
	VAddr = mmu.VAddr
	// Network is a virtual switch connecting Systems.
	Network = netstack.Network
)

// Open flags.
const (
	ORdOnly = fs.ORdOnly
	OWrOnly = fs.OWrOnly
	ORdWr   = fs.ORdWr
	OCreate = fs.OCreate
	OTrunc  = fs.OTrunc
	OAppend = fs.OAppend
)

// Seek whence values.
const (
	SeekSet = fs.SeekSet
	SeekCur = fs.SeekCur
	SeekEnd = fs.SeekEnd
)

// Common errnos.
const (
	EOK    = sys.EOK
	ENOENT = sys.ENOENT
	EEXIST = sys.EEXIST
	EBADF  = sys.EBADF
	EAGAIN = sys.EAGAIN
	EINVAL = sys.EINVAL
	EFAULT = sys.EFAULT
	ECHILD = sys.ECHILD
	ENOMEM = sys.ENOMEM
)

// Signals.
const (
	SIGKILL = proc.SIGKILL
	SIGTERM = proc.SIGTERM
	SIGUSR1 = proc.SIGUSR1
	SIGCHLD = proc.SIGCHLD
)

// PageSize is the base page size of the simulated machine.
const PageSize = mmu.L1PageSize

// InitPID is the init process's PID.
const InitPID = proc.InitPID

// Boot builds and starts a simulated OS instance.
func Boot(cfg Config) (*System, error) { return core.Boot(cfg) }

// NewNetwork creates a virtual switch; pass it in Config.Network to
// connect multiple Systems (the blockstore example builds a small
// cluster this way).
func NewNetwork() *Network { return netstack.NewNetwork() }

// Verification re-exports: the VC engine behind "verified" claims.
type (
	// VCRegistry collects verification conditions.
	VCRegistry = verifier.Registry
	// VCReport is a verification run's outcome (Figure 1a's data).
	VCReport = verifier.Report
	// VCOptions configures a run.
	VCOptions = verifier.Options
)

// NewVCRegistry returns a registry pre-loaded with every module's
// verification conditions — the full proof ledger of the system.
func NewVCRegistry() *VCRegistry {
	g := &verifier.Registry{}
	core.RegisterAllObligations(g)
	return g
}

// Verify discharges every verification condition and returns the
// report. A failed VC means a broken invariant, refinement, round-trip
// or linearizability property somewhere in the stack.
func Verify(seed int64) *VCReport {
	return NewVCRegistry().Run(verifier.Options{Seed: seed})
}
