// Package vnros is the public API of the vnros project: a Go
// reproduction of "Beyond isolation: OS verification as a foundation
// for correct applications" (Brun et al., HotOS '23).
//
// It exposes the composed simulated operating system (a multi-core,
// NR-replicated kernel with a process-centric, spec-checked syscall
// contract), the verification-condition engine that stands in for the
// paper's Verus pipeline, and the experiment harness that regenerates
// the paper's evaluation.
//
// Quick start:
//
//	system, err := vnros.Boot(vnros.Config{Cores: 4})
//	initSys, err := system.Init()
//	system.Run(initSys, "hello", func(p *vnros.Process) int {
//	    fd, _ := p.Sys.Open("/hello.txt", vnros.OCreate|vnros.ORdWr)
//	    p.Sys.Write(fd, []byte("hello from a verified-OS contract"))
//	    return 0
//	})
//
// Every syscall a program issues is checked against the paper's §3
// specification relations (read_spec and friends) through the kernel's
// view abstraction; violations surface via Sys.ContractErr.
//
// Batched file ops go through the completion-driven submission ring:
// Sys.SubmitOpts enqueues a vector of Ops on the per-core ring and
// returns a Batch whose Wait/WaitN reap the completion queue under the
// chosen WaitMode — WaitBlock parks on the CQ doorbell, WaitSpin
// busy-polls, WaitPoll returns ErrBatchPending for event loops — with
// an optional OnComplete callback. Sys.Submit and Sys.SubmitWait are
// shorthands over the same path.
//
// Positioned reads (Sys.Pread, OpPread in a batch) are served from a
// sharded page cache with epoch-based snapshots: a cache hit never
// crosses the kernel's operation-log combiner. Sys.PreadMap is the
// zero-copy tier — it maps the cached page read-only into the caller's
// address space and returns the mapping's base VA; release it with
// Sys.PreadUnmap. See DESIGN.md, "The zero-copy read path", for when a
// read returns a mapping versus bytes.
package vnros

import (
	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
	"github.com/verified-os/vnros/internal/verifier/diff"
)

// Core system types.
type (
	// System is a booted instance of the simulated OS.
	System = core.System
	// Config sizes a System.
	Config = core.Config
	// Process is a running user program's handle.
	Process = core.Process
	// Program is a user program body; the return value is its exit code.
	Program = core.Program
	// Sys is the per-process syscall interface (the paper's Sys type).
	Sys = sys.Sys
	// Errno is the syscall error number.
	Errno = sys.Errno
	// FD is a file descriptor.
	FD = fs.FD
	// Stat describes a file.
	Stat = fs.Stat
	// DirEntry is a directory listing entry.
	DirEntry = fs.DirEntry
	// PID identifies a process.
	PID = proc.PID
	// Signal is a POSIX-style signal number.
	Signal = proc.Signal
	// WaitResult is a reaped child.
	WaitResult = proc.WaitResult
	// VAddr is a user virtual address.
	VAddr = mmu.VAddr
	// Network is a virtual switch connecting Systems.
	Network = netstack.Network
	// NetAddr is a machine address on a Network.
	NetAddr = netstack.Addr
	// Ino is an inode number.
	Ino = fs.Ino
	// FileKind distinguishes files from directories in Stat/DirEntry.
	FileKind = fs.Kind

	// OpenFlag is the typed flag set of Sys.Open; invalid combinations
	// are rejected before the boundary crossing.
	OpenFlag = sys.OpenFlag
	// Op is one entry of a batched submission (Sys.Submit).
	Op = sys.Op
	// Batch is an in-flight batched submission; reap it with Wait/WaitN.
	Batch = sys.Batch
	// Completion is one completion-queue entry of a drained batch.
	Completion = sys.Completion
	// SubmitOptions selects the wait mode and completion callback of a
	// submission (Sys.SubmitOpts / Sys.NewBatch).
	SubmitOptions = sys.SubmitOptions
	// WaitMode is a batch's reap discipline: block, spin, or poll.
	WaitMode = sys.WaitMode
	// Port is a typed socket port number.
	Port = sys.Port
	// SockID is a typed socket handle; the zero SockID is never valid.
	SockID = sys.SockID
	// SockFrom is the typed source of a received datagram
	// (Completion.SockFrom).
	SockFrom = sys.SockFrom
)

// Wait modes (SubmitOptions.Wait).
const (
	// WaitBlock parks the waiter on the batch's CQ doorbell (default).
	WaitBlock = sys.WaitBlock
	// WaitSpin busy-polls completions for latency-critical callers.
	WaitSpin = sys.WaitSpin
	// WaitPoll never waits: Wait returns ErrBatchPending while in flight.
	WaitPoll = sys.WaitPoll
)

// Batch lifecycle errors (Batch.Submit/Wait/WaitN).
var (
	ErrBatchEmpty        = sys.ErrBatchEmpty
	ErrBatchNotSubmitted = sys.ErrBatchNotSubmitted
	ErrBatchSubmitted    = sys.ErrBatchSubmitted
	ErrBatchReaped       = sys.ErrBatchReaped
	ErrBatchBusy         = sys.ErrBatchBusy
	ErrBatchPending      = sys.ErrBatchPending
	ErrWaitRange         = sys.ErrWaitRange
)

// Open flags (typed; untyped constant combinations like OCreate|ORdWr
// still convert implicitly).
const (
	ORdOnly = sys.ORdOnly
	OWrOnly = sys.OWrOnly
	ORdWr   = sys.ORdWr
	OCreate = sys.OCreate
	OTrunc  = sys.OTrunc
	OAppend = sys.OAppend
)

// File kinds.
const (
	KindFile = fs.KindFile
	KindDir  = fs.KindDir
)

// Seek whence values.
const (
	SeekSet = fs.SeekSet
	SeekCur = fs.SeekCur
	SeekEnd = fs.SeekEnd
)

// Errnos (the full kernel error ABI; Errno.Err() converts to a nil-on-
// success error).
const (
	EOK        = sys.EOK
	EPERM      = sys.EPERM
	ENOENT     = sys.ENOENT
	ESRCH      = sys.ESRCH
	EBADF      = sys.EBADF
	ECHILD     = sys.ECHILD
	EAGAIN     = sys.EAGAIN
	ENOMEM     = sys.ENOMEM
	EFAULT     = sys.EFAULT
	EBUSY      = sys.EBUSY
	EEXIST     = sys.EEXIST
	ENOTDIR    = sys.ENOTDIR
	EISDIR     = sys.EISDIR
	EINVAL     = sys.EINVAL
	ENFILE     = sys.ENFILE
	ENOSYS     = sys.ENOSYS
	ENOTEMPTY  = sys.ENOTEMPTY
	EADDRINUSE = sys.EADDRINUSE
	EIO        = sys.EIO
)

// Signals.
const (
	SIGKILL = proc.SIGKILL
	SIGTERM = proc.SIGTERM
	SIGUSR1 = proc.SIGUSR1
	SIGCHLD = proc.SIGCHLD
)

// PageSize is the base page size of the simulated machine.
const PageSize = mmu.L1PageSize

// InitPID is the init process's PID.
const InitPID = proc.InitPID

// Boot builds and starts a simulated OS instance.
func Boot(cfg Config) (*System, error) { return core.Boot(cfg) }

// FlagsFromInt converts bare-int open flags (the pre-typed API shape)
// to the typed OpenFlag set.
func FlagsFromInt(flags int) OpenFlag { return sys.FlagsFromInt(flags) }

// Submission-queue entry constructors (see Sys.Submit). Each enqueues
// one syscall; the completion's Val carries the scalar result.
func OpOpen(path string, flags OpenFlag) Op { return sys.OpOpen(path, flags) }
func OpClose(fd FD) Op                      { return sys.OpClose(fd) }
func OpRead(fd FD, n uint64) Op             { return sys.OpRead(fd, n) }
func OpWrite(fd FD, data []byte) Op         { return sys.OpWrite(fd, data) }

// OpPread enqueues a positioned read served from the page cache after
// the batch's logged ops complete; the descriptor offset is untouched.
func OpPread(fd FD, n, off uint64) Op { return sys.OpPread(fd, n, off) }

// OpPreadMap enqueues the zero-copy positioned read: the completion's
// Val is the mapping's base VA (release it with Sys.PreadUnmap).
func OpPreadMap(fd FD, off uint64) Op { return sys.OpPreadMap(fd, off) }
func OpSeek(fd FD, off int64, whence int) Op {
	return sys.OpSeek(fd, off, whence)
}
func OpTruncate(fd FD, size uint64) Op { return sys.OpTruncate(fd, size) }
func OpMkdir(path string) Op           { return sys.OpMkdir(path) }
func OpUnlink(path string) Op          { return sys.OpUnlink(path) }
func OpRmdir(path string) Op           { return sys.OpRmdir(path) }
func OpRename(old, new string) Op      { return sys.OpRename(old, new) }
func OpLink(old, new string) Op        { return sys.OpLink(old, new) }

// OpSync enqueues a durability barrier: placed at the end of a batch it
// turns the whole submission into one group commit — every mutation in
// the batch is journaled and flushed by a single disk write sequence.
func OpSync() Op { return sys.OpSync() }

// Socket submission-queue entries: the networked syscall path batched
// through the same ring. A batched receive is always non-blocking; its
// completion carries the typed sender in Completion.SockFrom.
func OpSockBind(port Port, budget uint32) Op { return sys.OpSockBind(port, budget) }
func OpSockSend(sock SockID, addr NetAddr, port Port, payload []byte) Op {
	return sys.OpSockSend(sock, addr, port, payload)
}
func OpSockRecv(sock SockID) Op  { return sys.OpSockRecv(sock) }
func OpSockClose(sock SockID) Op { return sys.OpSockClose(sock) }

// NewNetwork creates a virtual switch; pass it in Config.Network to
// connect multiple Systems (the blockstore example builds a small
// cluster this way).
func NewNetwork() *Network { return netstack.NewNetwork() }

// Verification re-exports: the VC engine behind "verified" claims.
type (
	// VCRegistry collects verification conditions.
	VCRegistry = verifier.Registry
	// VCReport is a verification run's outcome (Figure 1a's data).
	VCReport = verifier.Report
	// VCOptions configures a run.
	VCOptions = verifier.Options
)

// NewVCRegistry returns a registry pre-loaded with every module's
// verification conditions — the full proof ledger of the system —
// including the differential harness's trace-diff VCs, which sit above
// core (they boot whole kernels) and so register here rather than in
// core.RegisterAllObligations.
func NewVCRegistry() *VCRegistry {
	g := &verifier.Registry{}
	core.RegisterAllObligations(g)
	diff.RegisterObligations(g)
	return g
}

// Verify discharges every verification condition and returns the
// report. A failed VC means a broken invariant, refinement, round-trip
// or linearizability property somewhere in the stack.
func Verify(seed int64) *VCReport {
	return NewVCRegistry().Run(verifier.Options{Seed: seed})
}
