package vnros_test

import (
	"strings"
	"testing"

	vnros "github.com/verified-os/vnros"
)

// TestPublicQuickstart exercises the README's quick-start path through
// the public API only.
func TestPublicQuickstart(t *testing.T) {
	system, err := vnros.Boot(vnros.Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	_, err = system.Run(initSys, "hello", func(p *vnros.Process) int {
		fd, e := p.Sys.Open("/hello.txt", vnros.OCreate|vnros.ORdWr)
		if e != vnros.EOK {
			got <- "open failed"
			return 1
		}
		if _, e := p.Sys.Write(fd, []byte("hello from a verified-OS contract")); e != vnros.EOK {
			got <- "write failed"
			return 1
		}
		if _, e := p.Sys.Seek(fd, 0, vnros.SeekSet); e != vnros.EOK {
			got <- "seek failed"
			return 1
		}
		buf := make([]byte, 5)
		if _, e := p.Sys.Read(fd, buf); e != vnros.EOK {
			got <- "read failed"
			return 1
		}
		got <- string(buf)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg := <-got; msg != "hello" {
		t.Fatalf("program result = %q", msg)
	}
	system.WaitAll()
	res, e := initSys.Wait()
	if e != vnros.EOK || res.ExitCode != 0 {
		t.Fatalf("wait = %+v, %v", res, e)
	}
	if err := initSys.ContractErr(); err != nil {
		t.Fatalf("contract violation: %v", err)
	}
}

// TestPublicReadPath exercises the page-cache read tiers through the
// public API: positioned reads (scalar and batched) and the zero-copy
// mapping lifecycle.
func TestPublicReadPath(t *testing.T) {
	system, err := vnros.Boot(vnros.Config{Cores: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		t.Fatal(err)
	}
	fail := make(chan string, 1)
	_, err = system.Run(initSys, "readpath", func(p *vnros.Process) int {
		fd, e := p.Sys.Open("/hot.dat", vnros.OCreate|vnros.ORdWr)
		if e != vnros.EOK {
			fail <- "open failed"
			return 1
		}
		page := make([]byte, vnros.PageSize)
		for i := range page {
			page[i] = byte('a' + i%26)
		}
		if _, e := p.Sys.Write(fd, page); e != vnros.EOK {
			fail <- "write failed"
			return 1
		}
		// Scalar pread: positioned, descriptor offset untouched.
		buf := make([]byte, 26)
		if n, e := p.Sys.Pread(fd, buf, 26); e != vnros.EOK || n != 26 {
			fail <- "pread failed"
			return 1
		}
		if string(buf) != "abcdefghijklmnopqrstuvwxyz" {
			fail <- "pread bytes: " + string(buf)
			return 1
		}
		// Batched pread observes the same batch's write.
		comps, e := p.Sys.SubmitWait([]vnros.Op{
			vnros.OpWrite(fd, []byte("tail")),
			vnros.OpPread(fd, 4, uint64(vnros.PageSize)),
		})
		if e != vnros.EOK || comps[1].Errno != vnros.EOK || string(comps[1].Data) != "tail" {
			fail <- "batched pread failed"
			return 1
		}
		// Zero-copy tier: map page 0, read through the mapping, release.
		va, sz, e := p.Sys.PreadMap(fd, 0)
		if e != vnros.EOK || sz != vnros.PageSize {
			fail <- "pread_map failed"
			return 1
		}
		mapped := make([]byte, 26)
		if e := p.Sys.MemRead(va, mapped); e != vnros.EOK {
			fail <- "memread failed"
			return 1
		}
		if string(mapped) != string(page[:26]) {
			fail <- "mapped bytes diverge"
			return 1
		}
		if e := p.Sys.PreadUnmap(va); e != vnros.EOK {
			fail <- "pread_unmap failed"
			return 1
		}
		fail <- ""
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg := <-fail; msg != "" {
		t.Fatal(msg)
	}
	system.WaitAll()
	if _, e := initSys.Wait(); e != vnros.EOK {
		t.Fatalf("wait: %v", e)
	}
	if err := initSys.ContractErr(); err != nil {
		t.Fatalf("contract violation: %v", err)
	}
}

// TestPublicNetworkedSystems wires two systems through the exported
// Network type.
func TestPublicNetworkedSystems(t *testing.T) {
	wire := vnros.NewNetwork()
	sa, err := vnros.Boot(vnros.Config{Cores: 2, NICAddr: 1, Network: wire})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := vnros.Boot(vnros.Config{Cores: 2, NICAddr: 2, Network: wire})
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := sa.Init()
	ib, _ := sb.Init()
	ready := make(chan vnros.SockID, 1)
	reply := make(chan string, 1)
	sb.Run(ib, "server", func(p *vnros.Process) int {
		sock, e := p.Sys.SockBind(99)
		if e != vnros.EOK {
			ready <- 0
			return 1
		}
		ready <- sock
		msg, from, port, e := p.Sys.SockRecvBlocking(sock)
		if e != vnros.EOK {
			return 1
		}
		p.Sys.SockSend(sock, from, port, append([]byte("re: "), msg...))
		return 0
	})
	if <-ready == 0 {
		t.Fatal("bind failed")
	}
	sa.Run(ia, "client", func(p *vnros.Process) int {
		sock, e := p.Sys.SockBind(0)
		if e != vnros.EOK {
			reply <- "bind failed"
			return 1
		}
		if _, e := p.Sys.SockSend(sock, 2, 99, []byte("ping")); e != vnros.EOK {
			reply <- "send failed"
			return 1
		}
		msg, _, _, e := p.Sys.SockRecvBlocking(sock)
		if e != vnros.EOK {
			reply <- "recv failed"
			return 1
		}
		reply <- string(msg)
		return 0
	})
	if msg := <-reply; msg != "re: ping" {
		t.Fatalf("reply = %q", msg)
	}
	sa.WaitAll()
	sb.WaitAll()
}

// TestVerifySubset runs one module's VCs through the public entry.
func TestVerifySubset(t *testing.T) {
	g := vnros.NewVCRegistry()
	if g.Len() < 150 {
		t.Fatalf("registry has %d VCs, expected >= 150", g.Len())
	}
	rep := g.Run(vnros.VCOptions{Seed: 1, Module: "marshal"})
	if len(rep.Results) == 0 {
		t.Fatal("no marshal VCs ran")
	}
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
	if !strings.Contains(rep.Summary(), "marshal") {
		t.Error("summary missing module")
	}
}

// TestPersistencePublic checks the BootDisk/RestoreFS path through the
// facade.
func TestPersistencePublic(t *testing.T) {
	s1, err := vnros.Boot(vnros.Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := s1.Init()
	fd, e := i1.Open("/state", vnros.OCreate|vnros.ORdWr)
	if e != vnros.EOK {
		t.Fatal(e)
	}
	if _, e := i1.Write(fd, []byte("survives")); e != vnros.EOK {
		t.Fatal(e)
	}
	if err := s1.SaveFS(); err != nil {
		t.Fatal(err)
	}
	s2, err := vnros.Boot(vnros.Config{Cores: 2, RestoreFS: true, BootDisk: s1.BlockDev})
	if err != nil {
		t.Fatal(err)
	}
	i2, _ := s2.Init()
	st, e := i2.Stat("/state")
	if e != vnros.EOK || st.Size != 8 {
		t.Fatalf("stat after reboot = %+v, %v", st, e)
	}
}
