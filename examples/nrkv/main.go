// nrkv: node replication as a library (§4.1/§4.3 of the paper). A plain
// sequential map becomes a linearizable concurrent store via NR; a
// concurrent history is recorded and checked against the sequential
// model with the Wing–Gong checker — the library-level form of the
// IronSync theorem ("a sequential data structure replicated with NR
// remains linearizable").
package main

import (
	"fmt"
	"log"
	"sync"

	"github.com/verified-os/vnros/internal/lin"
	"github.com/verified-os/vnros/internal/nr"
)

// store is an ordinary sequential map — no locks, no atomics.
type store struct {
	m map[string]string
}

type readOp struct{ key string }

type writeOp struct {
	key, val string
	del      bool
}

type resp struct {
	val string
	ok  bool
}

func newStore() nr.DataStructure[readOp, writeOp, resp] {
	return &store{m: make(map[string]string)}
}

func (s *store) DispatchRead(op readOp) resp {
	v, ok := s.m[op.key]
	return resp{val: v, ok: ok}
}

func (s *store) DispatchWrite(op writeOp) resp {
	if op.del {
		_, ok := s.m[op.key]
		delete(s.m, op.key)
		return resp{ok: ok}
	}
	old, ok := s.m[op.key]
	s.m[op.key] = op.val
	return resp{val: old, ok: ok}
}

func main() {
	// Two replicas (NUMA nodes), four writer threads.
	kv := nr.New(nr.Options{Replicas: 2}, newStore)

	fmt.Println("== concurrent workload over 2 replicas ==")
	var wg sync.WaitGroup
	const threads, opsPer = 4, 2000
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			c := kv.MustRegister(t % 2)
			for i := 0; i < opsPer; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.Execute(writeOp{key: key, val: fmt.Sprintf("t%d-i%d", t, i)})
				if i%3 == 0 {
					c.ExecuteRead(readOp{key: key})
				}
			}
		}(t)
	}
	wg.Wait()
	ops, batches := kv.Replica(0).CombinerStats()
	fmt.Printf("  %d ops done; replica 0 combined %d ops in %d batches (%.1f ops/batch)\n",
		threads*opsPer, ops, batches, float64(ops)/float64(max(batches, 1)))

	// Replicas converge: inspect both.
	sizes := make([]int, 2)
	for i := 0; i < 2; i++ {
		kv.Replica(i).Inspect(func(d nr.DataStructure[readOp, writeOp, resp]) {
			sizes[i] = len(d.(*store).m)
		})
	}
	fmt.Printf("  replica sizes after sync: %d and %d (must match)\n", sizes[0], sizes[1])
	if sizes[0] != sizes[1] {
		log.Fatal("replicas diverged")
	}

	// Linearizability: record a fresh small concurrent history and
	// check it against the sequential model.
	fmt.Println("\n== recorded history checked for linearizability ==")
	kv2 := nr.New(nr.Options{Replicas: 2}, newStore)
	rec := lin.NewRecorder[any, resp]()
	var wg2 sync.WaitGroup
	for t := 0; t < 3; t++ {
		wg2.Add(1)
		go func(t int) {
			defer wg2.Done()
			c := kv2.MustRegister(t % 2)
			for i := 0; i < 6; i++ {
				key := fmt.Sprintf("x%d", i%2)
				if i%2 == 0 {
					w := writeOp{key: key, val: fmt.Sprintf("%d.%d", t, i)}
					p := rec.Invoke(t, w)
					p.Return(c.Execute(w))
				} else {
					r := readOp{key: key}
					p := rec.Invoke(t, r)
					p.Return(c.ExecuteRead(r))
				}
			}
		}(t)
	}
	wg2.Wait()

	model := lin.Model[map[string]string, any, resp]{
		Init: func() map[string]string { return map[string]string{} },
		Apply: func(s map[string]string, in any) (map[string]string, resp) {
			out := make(map[string]string, len(s))
			for k, v := range s {
				out[k] = v
			}
			switch op := in.(type) {
			case writeOp:
				old, ok := out[op.key]
				out[op.key] = op.val
				return out, resp{val: old, ok: ok}
			case readOp:
				v, ok := out[op.key]
				return out, resp{val: v, ok: ok}
			}
			return out, resp{}
		},
		Key: func(s map[string]string) string {
			return fmt.Sprint(s)
		},
		EqualResp: func(a, b resp) bool { return a == b },
	}
	h := rec.History()
	if err := lin.Check(model, h); err != nil {
		log.Fatalf("NOT linearizable: %v", err)
	}
	fmt.Printf("  history of %d concurrent ops is linearizable\n", len(h.Ops))
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
