// Quickstart: boot the simulated OS, spawn a process, write and read a
// file through the spec-checked syscall contract, map some memory, and
// persist the filesystem across a simulated reboot.
package main

import (
	"fmt"
	"log"

	vnros "github.com/verified-os/vnros"
)

func main() {
	// Boot a 4-core machine.
	system, err := vnros.Boot(vnros.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		log.Fatal(err)
	}

	// Run a user program. Every syscall it makes is checked against the
	// paper's §3 specification relations; a kernel bug would surface as
	// a contract violation, not silent corruption.
	result := make(chan string, 1)
	_, err = system.Run(initSys, "greeter", func(p *vnros.Process) int {
		// Errno satisfies error; Err() converts to a nil-on-success
		// error, so errno checks read like ordinary Go error handling.
		fd, e := p.Sys.Open("/greeting.txt", vnros.OCreate|vnros.ORdWr)
		if err := e.Err(); err != nil {
			result <- fmt.Sprintf("open failed: %v", err)
			return 1
		}
		// A vectored write crosses the boundary once for both buffers.
		if _, e := p.Sys.Writev(fd, [][]byte{
			[]byte("hello from pid "),
			[]byte(fmt.Sprint(p.PID)),
		}); e.Err() != nil {
			result <- fmt.Sprintf("writev failed: %v", e.Err())
			return 1
		}
		if _, e := p.Sys.Seek(fd, 0, vnros.SeekSet); e.Err() != nil {
			result <- fmt.Sprintf("seek failed: %v", e.Err())
			return 1
		}
		buf := make([]byte, 64)
		n, e := p.Sys.Read(fd, buf)
		if err := e.Err(); err != nil {
			result <- fmt.Sprintf("read failed: %v", err)
			return 1
		}
		// Virtual memory: map two pages and use them.
		base, e := p.Sys.MMap(2 * vnros.PageSize)
		if err := e.Err(); err != nil {
			result <- fmt.Sprintf("mmap failed: %v", err)
			return 1
		}
		if err := p.Sys.MemWrite(base, buf[:n]).Err(); err != nil {
			result <- fmt.Sprintf("memwrite failed: %v", err)
			return 1
		}
		result <- string(buf[:n])
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program says:", <-result)
	system.WaitAll()
	if _, e := initSys.Wait(); e.Err() != nil {
		log.Fatal("wait: ", e.Err())
	}
	if err := initSys.ContractErr(); err != nil {
		log.Fatal("contract violation: ", err)
	}

	// Persist to the simulated disk, then boot a second machine from
	// the same disk image and read the file back.
	if err := system.SaveFS(); err != nil {
		log.Fatal(err)
	}
	system2, err := vnros.Boot(vnros.Config{Cores: 2, RestoreFS: true, BootDisk: system.BlockDev})
	if err != nil {
		log.Fatal(err)
	}
	init2, err := system2.Init()
	if err != nil {
		log.Fatal(err)
	}
	fd, e := init2.Open("/greeting.txt", vnros.ORdOnly)
	if err := e.Err(); err != nil {
		log.Fatal("open after reboot: ", err)
	}
	buf := make([]byte, 64)
	n, e := init2.Read(fd, buf)
	if err := e.Err(); err != nil {
		log.Fatal("read after reboot: ", err)
	}
	fmt.Println("after reboot:  ", string(buf[:n]))
	fmt.Println("replica agreement:", check(system2.CheckReplicaAgreement()))
	fmt.Println("kernel invariants:", check(system2.CheckKernelInvariants()))
}

func check(err error) string {
	if err != nil {
		return "FAILED: " + err.Error()
	}
	return "ok"
}
