// Quickstart: boot the simulated OS, spawn a process, write and read a
// file through the spec-checked syscall contract, map some memory, and
// persist the filesystem across a simulated reboot.
package main

import (
	"fmt"
	"log"

	vnros "github.com/verified-os/vnros"
)

func main() {
	// Boot a 4-core machine.
	system, err := vnros.Boot(vnros.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	initSys, err := system.Init()
	if err != nil {
		log.Fatal(err)
	}

	// Run a user program. Every syscall it makes is checked against the
	// paper's §3 specification relations; a kernel bug would surface as
	// a contract violation, not silent corruption.
	result := make(chan string, 1)
	_, err = system.Run(initSys, "greeter", func(p *vnros.Process) int {
		fd, e := p.Sys.Open("/greeting.txt", vnros.OCreate|vnros.ORdWr)
		if e != vnros.EOK {
			result <- "open failed: " + e.String()
			return 1
		}
		if _, e := p.Sys.Write(fd, []byte("hello from pid ")); e != vnros.EOK {
			result <- "write failed"
			return 1
		}
		if _, e := p.Sys.Write(fd, []byte(fmt.Sprint(p.PID))); e != vnros.EOK {
			result <- "write failed"
			return 1
		}
		if _, e := p.Sys.Seek(fd, 0, vnros.SeekSet); e != vnros.EOK {
			result <- "seek failed"
			return 1
		}
		buf := make([]byte, 64)
		n, e := p.Sys.Read(fd, buf)
		if e != vnros.EOK {
			result <- "read failed"
			return 1
		}
		// Virtual memory: map two pages and use them.
		base, e := p.Sys.MMap(2 * vnros.PageSize)
		if e != vnros.EOK {
			result <- "mmap failed"
			return 1
		}
		if e := p.Sys.MemWrite(base, buf[:n]); e != vnros.EOK {
			result <- "memwrite failed"
			return 1
		}
		result <- string(buf[:n])
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program says:", <-result)
	system.WaitAll()
	if _, e := initSys.Wait(); e != vnros.EOK {
		log.Fatal("wait: ", e)
	}
	if err := initSys.ContractErr(); err != nil {
		log.Fatal("contract violation: ", err)
	}

	// Persist to the simulated disk, then boot a second machine from
	// the same disk image and read the file back.
	if err := system.SaveFS(); err != nil {
		log.Fatal(err)
	}
	system2, err := vnros.Boot(vnros.Config{Cores: 2, RestoreFS: true, BootDisk: system.BlockDev})
	if err != nil {
		log.Fatal(err)
	}
	init2, err := system2.Init()
	if err != nil {
		log.Fatal(err)
	}
	fd, e := init2.Open("/greeting.txt", vnros.ORdOnly)
	if e != vnros.EOK {
		log.Fatal("open after reboot: ", e)
	}
	buf := make([]byte, 64)
	n, e := init2.Read(fd, buf)
	if e != vnros.EOK {
		log.Fatal("read after reboot: ", e)
	}
	fmt.Println("after reboot:  ", string(buf[:n]))
	fmt.Println("replica agreement:", check(system2.CheckReplicaAgreement()))
	fmt.Println("kernel invariants:", check(system2.CheckKernelInvariants()))
}

func check(err error) string {
	if err != nil {
		return "FAILED: " + err.Error()
	}
	return "ok"
}
