// blockstore: the paper's motivating application (§1) — "the
// data-storage node in a distributed block store like GFS or S3". Three
// simulated machines share a virtual network: a primary storage node,
// a backup it replicates to, and a client. Each storage node runs as a
// user process on the verified-OS contract: blocks are files in the
// node's filesystem (so every read/write is checked against the §3
// read_spec/write_spec relations), requests arrive over the verified
// network stack, and the primary synchronously replicates to the
// backup before acknowledging — then the client verifies it can read
// every block back from either node.
package main

import (
	"fmt"
	"log"

	vnros "github.com/verified-os/vnros"
	"github.com/verified-os/vnros/internal/marshal"
)

// Wire protocol.
const (
	msgPut = iota + 1
	msgGet
	msgAck
	msgData
	msgErr
)

const (
	primaryAddr = 0xA1
	backupAddr  = 0xA2
	clientAddr  = 0xC1
	storePort   = 9000
)

// encodeMsg builds a protocol message.
func encodeMsg(kind uint8, block uint64, payload []byte) []byte {
	e := marshal.NewEncoder(nil)
	e.U8(kind).U64(block).BytesField(payload)
	return e.Bytes()
}

// decodeMsg parses one.
func decodeMsg(p []byte) (kind uint8, block uint64, payload []byte, err error) {
	d := marshal.NewDecoder(p)
	kind = d.U8()
	block = d.U64()
	payload = d.BytesField()
	if e := d.Finish(); e != nil {
		return 0, 0, nil, e
	}
	return kind, block, payload, nil
}

// storageNode is the server program. ready is signalled once the node
// is bound and serving (datagram transports drop packets sent to
// unbound ports, so clients must not start earlier).
func storageNode(name string, replicateTo vnros.NetAddr, ready chan<- struct{}, served chan<- int) vnros.Program {
	return func(p *vnros.Process) int {
		sock, e := p.Sys.SockBind(storePort)
		if e != vnros.EOK {
			log.Printf("%s: bind: %v", name, e)
			served <- -1
			return 1
		}
		if e := p.Sys.Mkdir("/blocks"); e != vnros.EOK {
			served <- -1
			return 1
		}
		close(ready)
		count := 0
		for {
			raw, from, fromPort, e := p.Sys.SockRecvBlocking(sock)
			if e != vnros.EOK {
				break
			}
			kind, block, payload, err := decodeMsg(raw)
			if err != nil {
				continue
			}
			switch kind {
			case msgPut:
				if err := putBlock(p.Sys, block, payload); err != nil {
					_, _ = p.Sys.SockSend(sock, from, fromPort, encodeMsg(msgErr, block, []byte(err.Error())))
					continue
				}
				// Synchronous replication to the backup, if configured.
				if replicateTo != 0 {
					if _, e := p.Sys.SockSend(sock, replicateTo, storePort, encodeMsg(msgPut, block, payload)); e != vnros.EOK {
						_, _ = p.Sys.SockSend(sock, from, fromPort, encodeMsg(msgErr, block, []byte("replicate")))
						continue
					}
					ackRaw, _, _, e := p.Sys.SockRecvBlocking(sock)
					if e != vnros.EOK {
						continue
					}
					if k, b, _, err := decodeMsg(ackRaw); err != nil || k != msgAck || b != block {
						_, _ = p.Sys.SockSend(sock, from, fromPort, encodeMsg(msgErr, block, []byte("backup nack")))
						continue
					}
				}
				_, _ = p.Sys.SockSend(sock, from, fromPort, encodeMsg(msgAck, block, nil))
			case msgGet:
				data, err := getBlock(p.Sys, block)
				if err != nil {
					_, _ = p.Sys.SockSend(sock, from, fromPort, encodeMsg(msgErr, block, []byte(err.Error())))
					continue
				}
				_, _ = p.Sys.SockSend(sock, from, fromPort, encodeMsg(msgData, block, data))
			}
			count++
			if raw == nil {
				break
			}
			// Exit condition delivered out of band via a zero-length
			// "put" to block MaxUint64.
			if kind == msgPut && block == ^uint64(0) {
				break
			}
		}
		served <- count
		return 0
	}
}

// putBlock stores a block as a file and syncs before returning: the
// node acknowledges only durable data. On a journaled node (WAL: true)
// the sync is a group commit of the write-ahead journal, not a full
// snapshot, so an unclean crash after the ack still recovers the block.
func putBlock(s *vnros.Sys, block uint64, data []byte) error {
	path := fmt.Sprintf("/blocks/%016x", block)
	fd, e := s.Open(path, vnros.OCreate|vnros.ORdWr|vnros.OTrunc)
	if err := e.Err(); err != nil {
		return err
	}
	defer s.Close(fd)
	if _, e := s.Write(fd, data); e.Err() != nil {
		return e.Err()
	}
	if e := s.Sync(); e.Err() != nil {
		return e.Err()
	}
	return nil
}

// getBlock reads a stored block.
func getBlock(s *vnros.Sys, block uint64) ([]byte, error) {
	path := fmt.Sprintf("/blocks/%016x", block)
	st, e := s.Stat(path)
	if err := e.Err(); err != nil {
		return nil, err
	}
	fd, e := s.Open(path, vnros.ORdOnly)
	if err := e.Err(); err != nil {
		return nil, err
	}
	defer s.Close(fd)
	buf := make([]byte, st.Size)
	if _, e := s.Read(fd, buf); e.Err() != nil {
		return nil, e.Err()
	}
	return buf, nil
}

func main() {
	wire := vnros.NewNetwork()
	boot := func(addr uint64) (*vnros.System, *vnros.Sys) {
		// WAL: storage nodes persist through the write-ahead journal, so
		// every acknowledged put survives an unclean crash.
		s, err := vnros.Boot(vnros.Config{Cores: 2, NICAddr: addr, Network: wire, WAL: true})
		if err != nil {
			log.Fatal(err)
		}
		init, err := s.Init()
		if err != nil {
			log.Fatal(err)
		}
		return s, init
	}
	primary, initP := boot(primaryAddr)
	backup, initB := boot(backupAddr)
	client, initC := boot(clientAddr)

	servedP := make(chan int, 1)
	servedB := make(chan int, 1)
	readyP := make(chan struct{})
	readyB := make(chan struct{})
	if _, err := primary.Run(initP, "store-primary", storageNode("primary", backupAddr, readyP, servedP)); err != nil {
		log.Fatal(err)
	}
	if _, err := backup.Run(initB, "store-backup", storageNode("backup", 0, readyB, servedB)); err != nil {
		log.Fatal(err)
	}
	<-readyP
	<-readyB

	// Client: PUT 8 blocks to the primary, then GET them from both
	// nodes and verify.
	const blocks = 8
	clientDone := make(chan error, 1)
	_, err := client.Run(initC, "client", func(p *vnros.Process) int {
		sock, e := p.Sys.SockBind(0)
		if e != vnros.EOK {
			clientDone <- fmt.Errorf("bind: %v", e)
			return 1
		}
		mk := func(i int) []byte {
			return []byte(fmt.Sprintf("block-%d: the quick brown fox #%d", i, i*i))
		}
		for i := 0; i < blocks; i++ {
			if _, e := p.Sys.SockSend(sock, primaryAddr, storePort, encodeMsg(msgPut, uint64(i), mk(i))); e != vnros.EOK {
				clientDone <- fmt.Errorf("put send: %v", e)
				return 1
			}
			raw, _, _, e := p.Sys.SockRecvBlocking(sock)
			if e != vnros.EOK {
				clientDone <- fmt.Errorf("put recv: %v", e)
				return 1
			}
			if k, b, _, err := decodeMsg(raw); err != nil || k != msgAck || b != uint64(i) {
				clientDone <- fmt.Errorf("put %d not acked", i)
				return 1
			}
		}
		// Read back from primary and backup alternately.
		for i := 0; i < blocks; i++ {
			target := vnros.NetAddr(primaryAddr)
			if i%2 == 1 {
				target = backupAddr
			}
			if _, e := p.Sys.SockSend(sock, target, storePort, encodeMsg(msgGet, uint64(i), nil)); e != vnros.EOK {
				clientDone <- fmt.Errorf("get send: %v", e)
				return 1
			}
			raw, _, _, e := p.Sys.SockRecvBlocking(sock)
			if e != vnros.EOK {
				clientDone <- fmt.Errorf("get recv: %v", e)
				return 1
			}
			k, b, data, err := decodeMsg(raw)
			if err != nil || k != msgData || b != uint64(i) || string(data) != string(mk(i)) {
				clientDone <- fmt.Errorf("get %d from %#x returned wrong data", i, target)
				return 1
			}
		}
		// Shut the servers down.
		_, _ = p.Sys.SockSend(sock, primaryAddr, storePort, encodeMsg(msgPut, ^uint64(0), nil))
		_, _ = p.Sys.SockSend(sock, backupAddr, storePort, encodeMsg(msgPut, ^uint64(0), nil))
		clientDone <- nil
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := <-clientDone; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: %d blocks written with synchronous replication, read back from both nodes\n", blocks)

	// The contract held on every machine throughout.
	for name, init := range map[string]*vnros.Sys{"primary": initP, "backup": initB, "client": initC} {
		if err := init.ContractErr(); err != nil {
			log.Fatalf("%s contract violation: %v", name, err)
		}
	}
	fmt.Println("syscall contract held on all three machines")

	// Crash + recover: the primary is abandoned with NO clean shutdown
	// and NO snapshot — the only durable state is what its journal group
	// commits wrote at each acknowledged put. A fresh machine booting
	// from the same disk replays the journal and must see every block.
	restarted, err := vnros.Boot(vnros.Config{Cores: 2, NICAddr: 0xA9, Network: wire,
		WAL: true, RestoreFS: true, BootDisk: primary.BlockDev})
	if err != nil {
		log.Fatal(err)
	}
	initR, err := restarted.Init()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		data, err := getBlock(initR, uint64(i))
		if err != nil {
			log.Fatalf("block %d lost across crash: %v", i, err)
		}
		if i == 3 {
			fmt.Printf("after unclean crash + journal replay: block 3 = %q\n", data)
		}
	}
	fmt.Printf("all %d acknowledged blocks survived the crash via WAL replay\n", blocks)
}
