// Paging: the paper's §5 prototype, live. Drives the verified x86-64
// page table (map/unmap/resolve) under the refinement harness — after
// every operation the hardware's interpretation of the page-table bits
// is checked against the high-level spec — then demonstrates why TLB
// shootdown is a correctness obligation by replaying the stale-TLB
// scenario.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/pt"
)

func main() {
	pm := mem.New(256 << 20)
	frames := pt.NewSimpleFrameSource(pm, 0x1000, 64<<20)

	// Wire the address space to a real MMU so unmap performs shootdown.
	var cpu *mmu.MMU
	as, err := pt.NewVerified(pm, frames, func(va mmu.VAddr) { cpu.Invlpg(va) })
	if err != nil {
		log.Fatal(err)
	}
	as.EnableGhostChecks(true)
	cpu = mmu.New(pm)
	cpu.SetRoot(as.Root(), 1)

	// The refinement harness: every operation is checked against the
	// mathematical map through the MMU interpretation function.
	h, err := pt.NewHarness(as, pm)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== explicit operations, each refinement-checked ==")
	ops := []pt.TraceOp{
		{Kind: "map", VA: 0x4000_0000, Frame: 0x80_0000, Size: mmu.L1PageSize,
			Flags: mmu.Flags{Writable: true, User: true}},
		{Kind: "map", VA: 0x4020_0000, Frame: 0x40_0000, Size: mmu.L2PageSize,
			Flags: mmu.Flags{Writable: true}},
		{Kind: "resolve", VA: 0x4000_0123},
		{Kind: "map", VA: 0x4000_0000, Frame: 0x90_0000, Size: mmu.L1PageSize}, // must fail: already mapped
		{Kind: "unmap", VA: 0x4020_0000},
		{Kind: "resolve", VA: 0x4020_0000}, // must miss
	}
	for _, op := range ops {
		if err := h.Apply(op); err != nil {
			log.Fatalf("refinement violated: %v", err)
		}
		fmt.Printf("  %-8s va=%#x ok (abstract state verified)\n", op.Kind, uint64(op.VA))
	}

	fmt.Println("\n== hardware view: translation through the MMU ==")
	msg := []byte("written through the verified mapping")
	if f := cpu.WriteUser(0x4000_0000+64, msg); f != nil {
		log.Fatal(f)
	}
	phys := make([]byte, len(msg))
	if err := pm.Read(0x80_0000+64, phys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  user write at va 0x40000040 landed at pa 0x800040: %q\n", phys)

	fmt.Println("\n== TLB shootdown: why unmap must invalidate ==")
	// Warm the TLB, unmap (which runs Invlpg via the hook), and observe
	// the fault. Then show what a buggy unmap (no shootdown) would do.
	if _, f := cpu.Translate(0x4000_0000, mmu.AccessRead); f != nil {
		log.Fatal(f)
	}
	if _, err := as.Unmap(0x4000_0000); err != nil {
		log.Fatal(err)
	}
	if _, f := cpu.Translate(0x4000_0000, mmu.AccessRead); f == nil {
		log.Fatal("BUG: translation survived unmap")
	}
	fmt.Println("  correct unmap: subsequent access faults, as the spec requires")

	// The buggy variant: clear the PTE directly without invalidation.
	if err := as.Map(0x5000_0000, 0x80_0000, mmu.L1PageSize, mmu.Flags{Writable: true}); err != nil {
		log.Fatal(err)
	}
	if _, f := cpu.Translate(0x5000_0000, mmu.AccessRead); f != nil {
		log.Fatal(f)
	}
	m, _ := as.Resolve(0x5000_0000)
	_ = m
	// Reach into memory the way a buggy kernel would (test-only path).
	w := mmu.Walker{Mem: pm}
	res := w.Walk(as.Root(), 0x5000_0000, mmu.AccessRead)
	leafTable := as.Root()
	for _, e := range res.Path {
		if e.IsLeaf() {
			break
		}
		leafTable = e.Addr()
	}
	if err := pm.Write64(mmu.EntryAddr(leafTable, 0x5000_0000, 1), 0); err != nil {
		log.Fatal(err)
	}
	if _, f := cpu.Translate(0x5000_0000, mmu.AccessRead); f == nil {
		fmt.Println("  buggy unmap (no invlpg): STALE translation still served by the TLB")
	}

	fmt.Println("\n== randomized refinement run ==")
	r := rand.New(rand.NewSource(42))
	if err := pt.RunRandomTrace(r, true, 500); err != nil {
		log.Fatalf("refinement violated: %v", err)
	}
	fmt.Printf("  500 randomized ops refined the high-level spec; %d checked steps total\n", 500)
	fmt.Printf("  page table now holds %d mappings after the demo ops\n", as.MappedPages())
}
