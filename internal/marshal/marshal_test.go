package marshal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/verifier"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.U8(0xab).U16(0xcdef).U32(0xdeadbeef).U64(0x0123456789abcdef).I64(-42).Bool(true).Bool(false)
	d := NewDecoder(e.Bytes())
	if d.U8() != 0xab || d.U16() != 0xcdef || d.U32() != 0xdeadbeef {
		t.Fatal("scalar mismatch")
	}
	if d.U64() != 0x0123456789abcdef || d.I64() != -42 || !d.Bool() || d.Bool() {
		t.Fatal("wide scalar mismatch")
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestWireFormatIsLittleEndian(t *testing.T) {
	e := NewEncoder(nil)
	e.U32(0x01020304)
	want := []byte{4, 3, 2, 1}
	if !bytes.Equal(e.Bytes(), want) {
		t.Fatalf("wire = %x", e.Bytes())
	}
}

func TestBytesAndString(t *testing.T) {
	e := NewEncoder(nil)
	e.BytesField([]byte{1, 2, 3}).String("héllo").BytesField(nil)
	d := NewDecoder(e.Bytes())
	if !bytes.Equal(d.BytesField(), []byte{1, 2, 3}) {
		t.Fatal("bytes mismatch")
	}
	if d.String() != "héllo" {
		t.Fatal("string mismatch")
	}
	if got := d.BytesField(); len(got) != 0 {
		t.Fatalf("nil bytes decoded as %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrorsSticky(t *testing.T) {
	d := NewDecoder([]byte{1})
	_ = d.U64() // fails
	if d.Err() == nil {
		t.Fatal("no error after short read")
	}
	if v := d.U8(); v != 0 {
		t.Fatal("decode after error returned data")
	}
	if !errors.Is(d.Finish(), ErrShortBuffer) {
		t.Fatalf("Finish = %v", d.Finish())
	}
}

func TestTrailingDetected(t *testing.T) {
	e := NewEncoder(nil)
	e.U32(1).U32(2)
	d := NewDecoder(e.Bytes())
	_ = d.U32()
	if !errors.Is(d.Finish(), ErrTrailing) {
		t.Fatalf("Finish = %v", d.Finish())
	}
}

func TestDecodedBytesAreCopies(t *testing.T) {
	e := NewEncoder(nil)
	e.BytesField([]byte("abc"))
	wire := e.Bytes()
	d := NewDecoder(wire)
	got := d.BytesField()
	wire[4] = 'Z' // mutate the wire after decode
	if string(got) != "abc" {
		t.Fatal("decoded bytes alias the wire buffer")
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(a uint64, b []byte, c string, d bool, e uint16) bool {
		if len(b) > 1<<16 {
			b = b[:1<<16]
		}
		enc := NewEncoder(nil)
		enc.U64(a).BytesField(b).String(c).Bool(d).U16(e)
		dec := NewDecoder(enc.Bytes())
		ga := dec.U64()
		gb := dec.BytesField()
		gc := dec.String()
		gd := dec.Bool()
		ge := dec.U16()
		return ga == a && bytes.Equal(gb, b) && gc == c && gd == d && ge == e && dec.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestABIPackUnpack(t *testing.T) {
	f, err := PackArgs(9, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Num != 9 || f.Args[0] != 1 || f.Args[2] != 3 || f.Args[3] != 0 {
		t.Fatalf("frame = %+v", f)
	}
	args, err := UnpackArgs(f, 3)
	if err != nil || len(args) != 3 || args[1] != 2 {
		t.Fatalf("unpack = %v, %v", args, err)
	}
	if _, err := UnpackArgs(f, 7); !errors.Is(err, ErrTooManyArgs) {
		t.Fatal("7-arg unpack accepted")
	}
}

func TestRetFrame(t *testing.T) {
	if !(RetFrame{Value: 5}).OK() {
		t.Error("errno 0 not OK")
	}
	if (RetFrame{Errno: 2}).OK() {
		t.Error("errno 2 reported OK")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 5})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
