// Package marshal implements syscall argument serialization across the
// user/kernel boundary, with the paper's §3 marshalling obligation: "we
// can prove that values correctly round-trip through serialization and
// deserialization so that syscall arguments are consistent between
// user-space and kernel-space".
//
// Wire format: fixed-width little-endian scalars (matching the
// simulated x86-64 ABI), length-prefixed byte strings. The first six
// scalar words of a call travel in the simulated registers (the
// SyscallFrame); overflow and variable-length payloads travel through a
// user buffer whose mapping obligation is discharged by the syscall
// layer (internal/sys).
//
// The round-trip lemmas are registered as round-trip VCs and also run
// as testing/quick properties.
package marshal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Errors.
var (
	// ErrShortBuffer reports a decode past the end of input.
	ErrShortBuffer = errors.New("marshal: short buffer")
	// ErrTooLong reports a byte string exceeding MaxBytes.
	ErrTooLong = errors.New("marshal: byte string too long")
	// ErrTrailing reports leftover bytes after a complete decode.
	ErrTrailing = errors.New("marshal: trailing bytes")
)

// MaxBytes bounds a single length-prefixed byte string (16 MiB), so a
// corrupt length cannot make the kernel allocate unboundedly.
const MaxBytes = 16 << 20

// Encoder appends wire-format values to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder, optionally reusing buf's storage.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Encoder) U8(v uint8) *Encoder { e.buf = append(e.buf, v); return e }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) *Encoder {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
	return e
}

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) *Encoder {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) *Encoder {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	return e
}

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) *Encoder { return e.U64(uint64(v)) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) *Encoder {
	if v {
		return e.U8(1)
	}
	return e.U8(0)
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) BytesField(p []byte) *Encoder {
	if len(p) > MaxBytes {
		// Encode an in-band error marker is worse than failing loudly;
		// encoders are kernel/user library code, so clamp is wrong too.
		// Record as max+1 so decode fails deterministically.
		e.U32(math.MaxUint32)
		return e
	}
	e.U32(uint32(len(p)))
	e.buf = append(e.buf, p...)
	return e
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) *Encoder { return e.BytesField([]byte(s)) }

// Decoder consumes wire-format values from a buffer.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder reads from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decode error.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish verifies the buffer was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d at offset %d of %d", ErrShortBuffer, n, d.off, len(d.buf))
		return nil
	}
	p := d.buf[d.off : d.off+n]
	d.off += n
	return p
}

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Bool reads a boolean; any nonzero byte is true.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// BytesField reads a length-prefixed byte string (copied out).
func (d *Decoder) BytesField() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxBytes {
		d.err = fmt.Errorf("%w: %d", ErrTooLong, n)
		return nil
	}
	p := d.take(int(n))
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// BytesFieldRef reads a length-prefixed byte string without copying:
// the result aliases the decoder's buffer. Safe only when the buffer is
// a per-crossing payload that is never mutated after encoding — the
// syscall codec's Data fields qualify, since every crossing encodes
// into a fresh buffer.
func (d *Decoder) BytesFieldRef() []byte {
	n := d.U32()
	if d.err != nil {
		return nil
	}
	if n > MaxBytes {
		d.err = fmt.Errorf("%w: %d", ErrTooLong, n)
		return nil
	}
	p := d.take(int(n))
	if p == nil {
		return nil
	}
	return p
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.BytesField()) }
