package marshal

import (
	"errors"
	"fmt"
)

// SyscallFrame models the register state transferred by the hardware
// syscall instruction: the syscall number plus the six argument
// registers of the x86-64 SysV syscall convention (rdi, rsi, rdx, r10,
// r8, r9). The paper's §3 notes that "for systems where some of the
// arguments are passed in registers, we would need to model the ABI as
// an assumption of the serialization library, and an unverified shim
// that unpacks the values from registers" — this type is that model,
// and PackArgs/UnpackArgs are the shim, written so the round-trip is a
// checkable lemma rather than an assumption.
type SyscallFrame struct {
	Num  uint64
	Args [6]uint64
}

// ErrTooManyArgs reports more than six register arguments.
var ErrTooManyArgs = errors.New("marshal: more than 6 register arguments")

// PackArgs builds a frame from a syscall number and scalar arguments.
func PackArgs(num uint64, args ...uint64) (SyscallFrame, error) {
	if len(args) > 6 {
		return SyscallFrame{}, fmt.Errorf("%w: %d", ErrTooManyArgs, len(args))
	}
	f := SyscallFrame{Num: num}
	copy(f.Args[:], args)
	return f, nil
}

// UnpackArgs extracts n scalar arguments from the frame.
func UnpackArgs(f SyscallFrame, n int) ([]uint64, error) {
	if n > 6 {
		return nil, fmt.Errorf("%w: %d", ErrTooManyArgs, n)
	}
	out := make([]uint64, n)
	copy(out, f.Args[:n])
	return out, nil
}

// RetFrame models the register state on syscall return: rax (value) and
// a kernel-defined errno word.
type RetFrame struct {
	Value uint64
	Errno uint64
}

// OK reports whether the call succeeded (errno 0).
func (r RetFrame) OK() bool { return r.Errno == 0 }
