package marshal

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of marshalling VCs: codec
// composition (any random sequence of field writes decodes with the
// same schedule), encoder buffer reuse safety, wire-format stability
// (golden bytes), and adversarial-input robustness (random bytes never
// panic and always either decode or error).
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "marshal", Name: "random-schema-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for trial := 0; trial < 300; trial++ {
					// Build a random schema of 1..12 fields.
					n := 1 + r.Intn(12)
					kinds := make([]int, n)
					vals := make([]any, n)
					e := NewEncoder(nil)
					for i := 0; i < n; i++ {
						kinds[i] = r.Intn(6)
						switch kinds[i] {
						case 0:
							v := uint8(r.Uint32())
							vals[i] = v
							e.U8(v)
						case 1:
							v := uint16(r.Uint32())
							vals[i] = v
							e.U16(v)
						case 2:
							v := r.Uint32()
							vals[i] = v
							e.U32(v)
						case 3:
							v := r.Uint64()
							vals[i] = v
							e.U64(v)
						case 4:
							v := make([]byte, r.Intn(64))
							r.Read(v)
							vals[i] = v
							e.BytesField(v)
						default:
							v := r.Intn(2) == 0
							vals[i] = v
							e.Bool(v)
						}
					}
					d := NewDecoder(e.Bytes())
					for i := 0; i < n; i++ {
						var ok bool
						switch kinds[i] {
						case 0:
							ok = d.U8() == vals[i].(uint8)
						case 1:
							ok = d.U16() == vals[i].(uint16)
						case 2:
							ok = d.U32() == vals[i].(uint32)
						case 3:
							ok = d.U64() == vals[i].(uint64)
						case 4:
							ok = bytes.Equal(d.BytesField(), vals[i].([]byte))
						default:
							ok = d.Bool() == vals[i].(bool)
						}
						if !ok {
							return fmt.Errorf("trial %d field %d (kind %d) mismatched", trial, i, kinds[i])
						}
					}
					if err := d.Finish(); err != nil {
						return fmt.Errorf("trial %d: %w", trial, err)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "wire-format-golden-bytes", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// The format is an ABI: these exact bytes must never
				// change, or persisted filesystems and cross-version
				// messages break.
				e := NewEncoder(nil)
				e.U8(0x12).U16(0x3456).U32(0x789abcde).U64(0x0123456789abcdef)
				e.Bool(true).String("ab").BytesField([]byte{0xff})
				want := []byte{
					0x12,       // u8
					0x56, 0x34, // u16 LE
					0xde, 0xbc, 0x9a, 0x78, // u32 LE
					0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01, // u64 LE
					0x01,                   // bool
					0x02, 0x00, 0x00, 0x00, // len("ab")
					'a', 'b',
					0x01, 0x00, 0x00, 0x00, // len(bytes)
					0xff,
				}
				if !bytes.Equal(e.Bytes(), want) {
					return fmt.Errorf("wire format changed:\n got %x\nwant %x", e.Bytes(), want)
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "adversarial-input-never-panics", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) (err error) {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("decoder panicked on random input: %v", p)
					}
				}()
				for trial := 0; trial < 1000; trial++ {
					buf := make([]byte, r.Intn(64))
					r.Read(buf)
					d := NewDecoder(buf)
					// Drain with a random schedule; must terminate and
					// either consume cleanly or set Err.
					for i := 0; i < 10; i++ {
						switch r.Intn(6) {
						case 0:
							d.U8()
						case 1:
							d.U16()
						case 2:
							d.U32()
						case 3:
							d.U64()
						case 4:
							_ = d.BytesField()
						default:
							_ = d.String()
						}
					}
					_ = d.Finish()
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "encoder-reuse-no-aliasing", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Reusing a buffer for a second message must not corrupt
				// a decoded copy of the first.
				e1 := NewEncoder(nil)
				e1.String("first message")
				wire1 := append([]byte(nil), e1.Bytes()...)
				e2 := NewEncoder(e1.Bytes()) // reuse storage
				e2.String("SECOND")
				d := NewDecoder(wire1)
				if got := d.String(); got != "first message" {
					return fmt.Errorf("copied wire corrupted by encoder reuse: %q", got)
				}
				// And decoded byte fields are copies (no aliasing into
				// the wire).
				e3 := NewEncoder(nil)
				e3.BytesField([]byte("payload"))
				wire := e3.Bytes()
				d3 := NewDecoder(wire)
				got := d3.BytesField()
				wire[5] ^= 0xff
				if string(got) != "payload" {
					return fmt.Errorf("decoded bytes alias the wire")
				}
				return nil
			}},
	)
}
