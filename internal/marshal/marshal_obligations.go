package marshal

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the §3 marshalling round-trip lemmas.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "marshal", Name: "scalar-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 5000; i++ {
					a, b16, c32, d64 := uint8(r.Uint32()), uint16(r.Uint32()), r.Uint32(), r.Uint64()
					i64 := int64(r.Uint64())
					bl := r.Intn(2) == 0
					e := NewEncoder(nil)
					e.U8(a).U16(b16).U32(c32).U64(d64).I64(i64).Bool(bl)
					d := NewDecoder(e.Bytes())
					if d.U8() != a || d.U16() != b16 || d.U32() != c32 || d.U64() != d64 ||
						d.I64() != i64 || d.Bool() != bl {
						return fmt.Errorf("scalar round trip mismatch at iter %d", i)
					}
					if err := d.Finish(); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "bytes-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 500; i++ {
					p := make([]byte, r.Intn(4096))
					r.Read(p)
					s := fmt.Sprintf("path-%d-\x00-unicode-✓", r.Intn(100))
					e := NewEncoder(nil)
					e.BytesField(p).String(s)
					d := NewDecoder(e.Bytes())
					if !bytes.Equal(d.BytesField(), p) || d.String() != s {
						return fmt.Errorf("bytes round trip mismatch at iter %d", i)
					}
					if err := d.Finish(); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "decode-rejects-truncation", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				e := NewEncoder(nil)
				e.U64(12345).BytesField([]byte("hello")).U32(7)
				full := e.Bytes()
				for cut := 0; cut < len(full); cut++ {
					d := NewDecoder(full[:cut])
					_ = d.U64()
					_ = d.BytesField()
					_ = d.U32()
					if d.Err() == nil {
						return fmt.Errorf("truncation at %d/%d not detected", cut, len(full))
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "decode-rejects-oversized-length", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// A hostile length prefix must not cause a huge copy.
				e := NewEncoder(nil)
				e.U32(MaxBytes + 1)
				d := NewDecoder(e.Bytes())
				if d.BytesField() != nil || d.Err() == nil {
					return fmt.Errorf("oversized length accepted")
				}
				return nil
			}},
		verifier.Obligation{Module: "marshal", Name: "abi-register-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 2000; i++ {
					n := r.Intn(7)
					args := make([]uint64, n)
					for j := range args {
						args[j] = r.Uint64()
					}
					f, err := PackArgs(uint64(r.Intn(64)), args...)
					if err != nil {
						return err
					}
					got, err := UnpackArgs(f, n)
					if err != nil {
						return err
					}
					for j := range args {
						if got[j] != args[j] {
							return fmt.Errorf("register %d mismatch", j)
						}
					}
				}
				if _, err := PackArgs(1, 1, 2, 3, 4, 5, 6, 7); err == nil {
					return fmt.Errorf("7 register args accepted")
				}
				return nil
			}},
	)
}
