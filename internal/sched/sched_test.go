package sched

import (
	"errors"
	"testing"

	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/verifier"
)

func TestAddPickLifecycle(t *testing.T) {
	q := NewRunQueue()
	if err := q.Add(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(1, 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate add: %v", err)
	}
	tid, err := q.PickNext(2)
	if err != nil || tid != 1 {
		t.Fatalf("pick = %d, %v", tid, err)
	}
	tcb, err := q.Get(1)
	if err != nil || tcb.State != StateRunning || tcb.Core != 2 || tcb.Runs != 1 {
		t.Fatalf("tcb = %+v, %v", tcb, err)
	}
	if _, err := q.PickNext(0); !errors.Is(err, ErrNoRunnable) {
		t.Errorf("pick from empty: %v", err)
	}
	if err := q.Exit(1); err != nil {
		t.Fatal(err)
	}
	if err := q.Reap(1); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestStateTransitionGuards(t *testing.T) {
	q := NewRunQueue()
	_ = q.Add(1, 0)
	if err := q.Yield(1); !errors.Is(err, ErrBadState) {
		t.Errorf("yield ready: %v", err)
	}
	if err := q.Block(1); !errors.Is(err, ErrBadState) {
		t.Errorf("block ready: %v", err)
	}
	if err := q.Wake(1); !errors.Is(err, ErrBadState) {
		t.Errorf("wake ready: %v", err)
	}
	if err := q.Reap(1); !errors.Is(err, ErrBadState) {
		t.Errorf("reap ready: %v", err)
	}
	if _, err := q.Get(99); !errors.Is(err, ErrNoThread) {
		t.Errorf("get missing: %v", err)
	}
	if err := q.Exit(99); !errors.Is(err, ErrNoThread) {
		t.Errorf("exit missing: %v", err)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	q := NewRunQueue()
	for tid := TID(1); tid <= 3; tid++ {
		_ = q.Add(tid, 2)
	}
	var order []TID
	for i := 0; i < 6; i++ {
		tid, err := q.PickNext(0)
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, tid)
		if err := q.Yield(tid); err != nil {
			t.Fatal(err)
		}
	}
	want := []TID{1, 2, 3, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPriorityPreemptsOrder(t *testing.T) {
	q := NewRunQueue()
	_ = q.Add(10, 3)
	_ = q.Add(20, 1)
	tid, _ := q.PickNext(0)
	if tid != 20 {
		t.Fatalf("picked %d", tid)
	}
	// A new high-priority arrival is dispatched before the low one.
	_ = q.Add(30, 0)
	tid, _ = q.PickNext(1)
	if tid != 30 {
		t.Fatalf("picked %d, want 30", tid)
	}
}

func TestSetPriority(t *testing.T) {
	q := NewRunQueue()
	_ = q.Add(1, 3)
	_ = q.Add(2, 3)
	if err := q.SetPriority(2, 0); err != nil {
		t.Fatal(err)
	}
	tid, _ := q.PickNext(0)
	if tid != 2 {
		t.Fatalf("boosted thread not dispatched first: %d", tid)
	}
	if err := q.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if err := q.SetPriority(1, NumPriorities); !errors.Is(err, ErrBadState) {
		t.Errorf("bad priority: %v", err)
	}
}

func TestBlockWake(t *testing.T) {
	q := NewRunQueue()
	_ = q.Add(1, 0)
	_ = q.Add(2, 0)
	tid, _ := q.PickNext(0)
	if err := q.Block(tid); err != nil {
		t.Fatal(err)
	}
	// Only thread 2 is dispatchable now.
	tid2, _ := q.PickNext(0)
	if tid2 != 2 {
		t.Fatalf("picked %d", tid2)
	}
	if err := q.Wake(1); err != nil {
		t.Fatal(err)
	}
	tid3, err := q.PickNext(1)
	if err != nil || tid3 != 1 {
		t.Fatalf("woken pick = %d, %v", tid3, err)
	}
	if err := q.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestNRQueueAdapters(t *testing.T) {
	rep := nr.New(nr.Options{Replicas: 2}, func() nr.DataStructure[SchedRead, SchedWrite, SchedResp] {
		return &NRQueue{Q: NewRunQueue()}
	})
	c := rep.MustRegister(0)
	if resp := c.Execute(SchedWrite{Kind: "add", TID: 7, Pri: 1}); resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp := c.ExecuteRead(SchedRead{Kind: "ready-count"}); resp.Count != 1 {
		t.Fatalf("ready-count = %d", resp.Count)
	}
	c2 := rep.MustRegister(1)
	if resp := c2.Execute(SchedWrite{Kind: "pick", Core: 3}); resp.TID != 7 {
		t.Fatalf("pick via replica 1 = %+v", resp)
	}
	if resp := c.ExecuteRead(SchedRead{Kind: "get", TID: 7}); resp.TCB.State != StateRunning {
		t.Fatalf("get = %+v", resp)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 23})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
