package sched

import "sync"

// WaitQueue is a lost-wakeup-free parking primitive for completion-style
// doorbells: a waiter takes a ticket (Prepare), re-checks its condition,
// and then parks (Wait); a waker rings the bell (Wake). Any Wake after
// Prepare — even one that fires between the re-check and the park —
// advances the sequence number, so Wait returns immediately instead of
// sleeping through it. This is the same prepare/check/park shape the
// futex path uses, packaged for device-fed queues where the waker is an
// interrupt handler rather than another syscall.
type WaitQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	seq  uint64
}

// NewWaitQueue returns an empty queue.
func NewWaitQueue() *WaitQueue {
	w := &WaitQueue{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Prepare registers intent to wait and returns the current sequence
// ticket. The caller must re-check its wakeup condition between Prepare
// and Wait; Wait(ticket) then cannot miss a Wake that raced the check.
func (w *WaitQueue) Prepare() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Wait parks until the sequence has advanced past the ticket. Returns
// immediately if a Wake already fired since Prepare.
func (w *WaitQueue) Wait(ticket uint64) {
	w.mu.Lock()
	for w.seq == ticket {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// Wake advances the sequence and releases every parked waiter. Safe to
// call with no waiters (the ring is remembered via the sequence, not a
// waiter count).
func (w *WaitQueue) Wake() {
	w.mu.Lock()
	w.seq++
	w.mu.Unlock()
	w.cond.Broadcast()
}
