package sched

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the scheduler verification conditions:
// structural invariants under random workloads, FIFO fairness within a
// priority class, strict priority dispatch, and agreement of the
// NR-replicated scheduler with a sequential twin.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "sched", Name: "runqueue-invariant-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				q := NewRunQueue()
				var next TID = 1
				running := map[TID]bool{}
				for i := 0; i < 3000; i++ {
					switch r.Intn(6) {
					case 0:
						_ = q.Add(next, Priority(r.Intn(NumPriorities)))
						next++
					case 1:
						if tid, err := q.PickNext(r.Intn(4)); err == nil {
							running[tid] = true
						}
					case 2:
						for tid := range running {
							_ = q.Yield(tid)
							delete(running, tid)
							break
						}
					case 3:
						for tid := range running {
							_ = q.Block(tid)
							delete(running, tid)
							break
						}
					case 4:
						// Wake any blocked thread.
						for tid, t := range q.Snapshot() {
							if t.State == StateBlocked {
								_ = q.Wake(tid)
								break
							}
						}
					case 5:
						for tid := range running {
							_ = q.Exit(tid)
							_ = q.Reap(tid)
							delete(running, tid)
							break
						}
					}
					if i%100 == 0 {
						if err := q.CheckInvariant(); err != nil {
							return fmt.Errorf("iter %d: %w", i, err)
						}
					}
				}
				return q.CheckInvariant()
			}},
		verifier.Obligation{Module: "sched", Name: "fifo-within-priority", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				q := NewRunQueue()
				for tid := TID(1); tid <= 10; tid++ {
					if err := q.Add(tid, 1); err != nil {
						return err
					}
				}
				for want := TID(1); want <= 10; want++ {
					got, err := q.PickNext(0)
					if err != nil {
						return err
					}
					if got != want {
						return fmt.Errorf("dispatch order %d, want %d", got, want)
					}
					if err := q.Yield(got); err != nil {
						return err
					}
				}
				// After one full rotation the order repeats: no
				// starvation within the class.
				got, err := q.PickNext(0)
				if err != nil || got != 1 {
					return fmt.Errorf("rotation broken: %d, %v", got, err)
				}
				return nil
			}},
		verifier.Obligation{Module: "sched", Name: "strict-priority-dispatch", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				q := NewRunQueue()
				_ = q.Add(1, 3) // low
				_ = q.Add(2, 0) // high
				_ = q.Add(3, 2) // mid
				order := []TID{2, 3, 1}
				for _, want := range order {
					got, err := q.PickNext(0)
					if err != nil || got != want {
						return fmt.Errorf("priority dispatch %d, want %d (%v)", got, want, err)
					}
					_ = q.Block(got)
				}
				return nil
			}},
		verifier.Obligation{Module: "sched", Name: "blocked-never-dispatched", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				q := NewRunQueue()
				_ = q.Add(1, 0)
				tid, _ := q.PickNext(0)
				_ = q.Block(tid)
				if _, err := q.PickNext(0); err == nil {
					return fmt.Errorf("blocked thread dispatched")
				}
				_ = q.Wake(tid)
				if got, err := q.PickNext(0); err != nil || got != tid {
					return fmt.Errorf("woken thread not dispatched: %v", err)
				}
				return nil
			}},
		verifier.Obligation{Module: "sched", Name: "nr-replicated-matches-sequential", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Apply an identical operation stream to a plain
				// RunQueue and an NR-replicated one; every response must
				// match (NR adds concurrency control, not behavior).
				seq := NewRunQueue()
				rep := nr.New(nr.Options{Replicas: 2},
					func() nr.DataStructure[SchedRead, SchedWrite, SchedResp] {
						return &NRQueue{Q: NewRunQueue()}
					})
				c := rep.MustRegister(0)
				var next TID = 1
				for i := 0; i < 500; i++ {
					var op SchedWrite
					switch r.Intn(5) {
					case 0:
						op = SchedWrite{Kind: "add", TID: next, Pri: Priority(r.Intn(NumPriorities))}
						next++
					case 1:
						op = SchedWrite{Kind: "pick", Core: r.Intn(4)}
					case 2:
						op = SchedWrite{Kind: "yield", TID: TID(1 + r.Intn(int(next)))}
					case 3:
						op = SchedWrite{Kind: "block", TID: TID(1 + r.Intn(int(next)))}
					default:
						op = SchedWrite{Kind: "wake", TID: TID(1 + r.Intn(int(next)))}
					}
					want := applySeq(seq, op)
					got := c.Execute(op)
					if got != want {
						return fmt.Errorf("op %d (%+v): NR %+v != sequential %+v", i, op, got, want)
					}
				}
				return nil
			}},
	)
}

// SchedRead is a read-only scheduler operation for NR.
type SchedRead struct {
	Kind string // "get", "ready-count"
	TID  TID
}

// SchedWrite is a mutating scheduler operation for NR.
type SchedWrite struct {
	Kind string // "add", "pick", "yield", "block", "wake", "exit", "reap"
	TID  TID
	Pri  Priority
	Core int
}

// SchedResp is the NR response.
type SchedResp struct {
	TID   TID
	TCB   TCB
	Count int
	Err   string
}

// NRQueue adapts RunQueue to nr.DataStructure.
type NRQueue struct {
	Q *RunQueue
}

// DispatchRead implements nr.DataStructure.
func (n *NRQueue) DispatchRead(op SchedRead) SchedResp {
	switch op.Kind {
	case "get":
		t, err := n.Q.Get(op.TID)
		return SchedResp{TCB: t, Err: errStr(err)}
	case "ready-count":
		return SchedResp{Count: n.Q.ReadyCount()}
	}
	return SchedResp{Err: "unknown read " + op.Kind}
}

// DispatchWrite implements nr.DataStructure.
func (n *NRQueue) DispatchWrite(op SchedWrite) SchedResp {
	return applySeq(n.Q, op)
}

func applySeq(q *RunQueue, op SchedWrite) SchedResp {
	switch op.Kind {
	case "add":
		return SchedResp{Err: errStr(q.Add(op.TID, op.Pri))}
	case "pick":
		tid, err := q.PickNext(op.Core)
		return SchedResp{TID: tid, Err: errStr(err)}
	case "yield":
		return SchedResp{Err: errStr(q.Yield(op.TID))}
	case "block":
		return SchedResp{Err: errStr(q.Block(op.TID))}
	case "wake":
		return SchedResp{Err: errStr(q.Wake(op.TID))}
	case "exit":
		return SchedResp{Err: errStr(q.Exit(op.TID))}
	case "reap":
		return SchedResp{Err: errStr(q.Reap(op.TID))}
	}
	return SchedResp{Err: "unknown write " + op.Kind}
}

func errStr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
