package sched

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of scheduler VCs:
// bounded-waiting within a priority class, priority-change consistency,
// conservation of threads across state transitions, and a work-
// conserving property (PickNext succeeds iff a ready thread exists).
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "sched", Name: "bounded-waiting-within-class", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// With n threads in one class under yield cycling, every
				// thread runs at least once in any window of n dispatches.
				q := NewRunQueue()
				n := 3 + r.Intn(6)
				for tid := TID(1); tid <= TID(n); tid++ {
					if err := q.Add(tid, 1); err != nil {
						return err
					}
				}
				lastRun := make(map[TID]int)
				for step := 0; step < n*20; step++ {
					tid, err := q.PickNext(0)
					if err != nil {
						return err
					}
					if prev, seen := lastRun[tid]; seen && step-prev > n {
						return fmt.Errorf("thread %d waited %d dispatches (class size %d)", tid, step-prev, n)
					}
					lastRun[tid] = step
					if err := q.Yield(tid); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sched", Name: "thread-conservation", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// No transition creates or destroys threads except
				// Add/Reap; state counts always sum to Len().
				q := NewRunQueue()
				var next TID = 1
				running := map[TID]bool{}
				added, reaped := 0, 0
				for i := 0; i < 2000; i++ {
					switch r.Intn(6) {
					case 0:
						if q.Add(next, Priority(r.Intn(NumPriorities))) == nil {
							added++
						}
						next++
					case 1:
						if tid, err := q.PickNext(0); err == nil {
							running[tid] = true
						}
					case 2:
						for tid := range running {
							_ = q.Yield(tid)
							delete(running, tid)
							break
						}
					case 3:
						for tid := range running {
							_ = q.Block(tid)
							delete(running, tid)
							break
						}
					case 4:
						for tid, t := range q.Snapshot() {
							if t.State == StateBlocked {
								_ = q.Wake(tid)
								break
							}
						}
					case 5:
						for tid := range running {
							if q.Exit(tid) == nil && q.Reap(tid) == nil {
								reaped++
							}
							delete(running, tid)
							break
						}
					}
					if q.Len() != added-reaped {
						return fmt.Errorf("len %d != added %d - reaped %d", q.Len(), added, reaped)
					}
					counts := map[State]int{}
					for _, t := range q.Snapshot() {
						counts[t.State]++
					}
					total := counts[StateReady] + counts[StateRunning] + counts[StateBlocked] + counts[StateExited]
					if total != q.Len() {
						return fmt.Errorf("state counts %v sum %d != len %d", counts, total, q.Len())
					}
				}
				return q.CheckInvariant()
			}},
		verifier.Obligation{Module: "sched", Name: "work-conserving", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// PickNext fails exactly when no thread is ready.
				q := NewRunQueue()
				for i := 0; i < 1000; i++ {
					ready := q.ReadyCount()
					tid, err := q.PickNext(0)
					if (err == nil) != (ready > 0) {
						return fmt.Errorf("ready=%d but PickNext err=%v", ready, err)
					}
					if err == nil {
						switch r.Intn(3) {
						case 0:
							_ = q.Yield(tid)
						case 1:
							_ = q.Block(tid)
						default:
							_ = q.Exit(tid)
							_ = q.Reap(tid)
						}
					} else if r.Intn(2) == 0 {
						_ = q.Add(TID(1000+i), Priority(r.Intn(NumPriorities)))
					} else {
						for wtid, t := range q.Snapshot() {
							if t.State == StateBlocked {
								_ = q.Wake(wtid)
								break
							}
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sched", Name: "priority-change-consistent", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				q := NewRunQueue()
				for tid := TID(1); tid <= 20; tid++ {
					if err := q.Add(tid, Priority(r.Intn(NumPriorities))); err != nil {
						return err
					}
				}
				for i := 0; i < 500; i++ {
					tid := TID(1 + r.Intn(20))
					if err := q.SetPriority(tid, Priority(r.Intn(NumPriorities))); err != nil {
						return err
					}
					if err := q.CheckInvariant(); err != nil {
						return fmt.Errorf("iter %d: %w", i, err)
					}
				}
				// Highest priority still dispatched first.
				best := Priority(NumPriorities)
				for _, t := range q.Snapshot() {
					if t.State == StateReady && t.Priority < best {
						best = t.Priority
					}
				}
				tid, err := q.PickNext(0)
				if err != nil {
					return err
				}
				got, err := q.Get(tid)
				if err != nil {
					return err
				}
				if got.Priority != best {
					return fmt.Errorf("dispatched priority %d, best ready was %d", got.Priority, best)
				}
				return nil
			}},
	)
}
