// Package sched implements the kernel scheduler — "a scheduler (to run
// processes)" from the paper's §1 component list. The run queue is a
// sequential data structure (per-priority FIFO queues) designed for NR
// replication (§4.1): all mutating operations are deterministic, and
// the kernel replicates one scheduler instance per node.
//
// The spec (sched_spec.go) defines the abstract scheduling contract:
// every thread is in exactly one state, ready threads of the highest
// occupied priority are dispatched FIFO (so no ready thread starves
// behind its own priority class), and blocked threads only run after an
// explicit wake.
package sched

import (
	"errors"
	"fmt"

	"github.com/verified-os/vnros/internal/obs"
)

// TID is a thread identifier.
type TID uint64

// Priority is a scheduling priority; 0 is highest.
type Priority uint8

// NumPriorities is the number of priority classes.
const NumPriorities = 4

// State is a thread's scheduling state.
type State uint8

// Thread states.
const (
	StateReady State = iota
	StateRunning
	StateBlocked
	StateExited
)

func (s State) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateExited:
		return "exited"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Errors.
var (
	ErrNoThread   = errors.New("sched: no such thread")
	ErrBadState   = errors.New("sched: invalid state transition")
	ErrNoRunnable = errors.New("sched: no runnable thread")
	ErrExists     = errors.New("sched: thread already exists")
)

// TCB is a thread control block.
type TCB struct {
	TID      TID
	Priority Priority
	State    State
	// Core is the core currently running the thread (valid when
	// State == StateRunning).
	Core int
	// Runs counts dispatches, used by the fairness obligations.
	Runs uint64
}

// RunQueue is the sequential scheduler state.
type RunQueue struct {
	threads map[TID]*TCB
	queues  [NumPriorities][]TID // FIFO per priority, ready threads only

	// obsShard stripes this instance's kstat updates (one RunQueue per
	// kernel replica; replicas apply concurrently). Note the sched.*
	// kstats are apply-side: with R replicas each dispatch is counted R
	// times — see the internal/obs package comment.
	obsShard uint32
}

// NewRunQueue returns an empty scheduler.
func NewRunQueue() *RunQueue {
	return &RunQueue{threads: make(map[TID]*TCB), obsShard: obs.NextShard()}
}

// Add registers a new thread in the ready state.
func (q *RunQueue) Add(tid TID, pri Priority) error {
	if pri >= NumPriorities {
		return fmt.Errorf("%w: priority %d", ErrBadState, pri)
	}
	if _, ok := q.threads[tid]; ok {
		return fmt.Errorf("%w: %d", ErrExists, tid)
	}
	q.threads[tid] = &TCB{TID: tid, Priority: pri, State: StateReady}
	q.queues[pri] = append(q.queues[pri], tid)
	return nil
}

// Get returns a copy of the TCB.
func (q *RunQueue) Get(tid TID) (TCB, error) {
	t := q.threads[tid]
	if t == nil {
		return TCB{}, fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	return *t, nil
}

// PickNext dispatches the next ready thread onto core: the FIFO head of
// the highest occupied priority class. It transitions the thread to
// running.
func (q *RunQueue) PickNext(core int) (TID, error) {
	for p := 0; p < NumPriorities; p++ {
		if len(q.queues[p]) > 0 {
			tid := q.queues[p][0]
			q.queues[p] = q.queues[p][1:]
			t := q.threads[tid]
			t.State = StateRunning
			t.Core = core
			t.Runs++
			obs.SchedDispatches.Add(q.obsShard, 1)
			obs.KernelTrace.Emit(obs.KindDispatch, uint64(tid), uint64(core))
			return tid, nil
		}
	}
	return 0, ErrNoRunnable
}

// Yield preempts a running thread back to the tail of its ready queue
// (the timer-interrupt path).
func (q *RunQueue) Yield(tid TID) error {
	t := q.threads[tid]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if t.State != StateRunning {
		return fmt.Errorf("%w: yield of %v thread %d", ErrBadState, t.State, tid)
	}
	t.State = StateReady
	q.queues[t.Priority] = append(q.queues[t.Priority], tid)
	obs.SchedPreempts.Add(q.obsShard, 1)
	obs.KernelTrace.Emit(obs.KindPreempt, uint64(tid), 0)
	return nil
}

// Block parks a running thread (futex wait, I/O wait).
func (q *RunQueue) Block(tid TID) error {
	t := q.threads[tid]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if t.State != StateRunning {
		return fmt.Errorf("%w: block of %v thread %d", ErrBadState, t.State, tid)
	}
	t.State = StateBlocked
	obs.SchedBlocks.Add(q.obsShard, 1)
	return nil
}

// Wake makes a blocked thread ready (futex wake, I/O completion).
func (q *RunQueue) Wake(tid TID) error {
	t := q.threads[tid]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if t.State != StateBlocked {
		return fmt.Errorf("%w: wake of %v thread %d", ErrBadState, t.State, tid)
	}
	t.State = StateReady
	q.queues[t.Priority] = append(q.queues[t.Priority], tid)
	obs.SchedWakes.Add(q.obsShard, 1)
	return nil
}

// Exit terminates a running thread.
func (q *RunQueue) Exit(tid TID) error {
	t := q.threads[tid]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if t.State != StateRunning {
		return fmt.Errorf("%w: exit of %v thread %d", ErrBadState, t.State, tid)
	}
	t.State = StateExited
	return nil
}

// Reap removes an exited thread's TCB.
func (q *RunQueue) Reap(tid TID) error {
	t := q.threads[tid]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if t.State != StateExited {
		return fmt.Errorf("%w: reap of %v thread %d", ErrBadState, t.State, tid)
	}
	delete(q.threads, tid)
	return nil
}

// SetPriority changes a thread's priority; if ready, it moves to the
// tail of the new class.
func (q *RunQueue) SetPriority(tid TID, pri Priority) error {
	if pri >= NumPriorities {
		return fmt.Errorf("%w: priority %d", ErrBadState, pri)
	}
	t := q.threads[tid]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if t.Priority == pri {
		return nil
	}
	if t.State == StateReady {
		q.removeFromQueue(tid, t.Priority)
		q.queues[pri] = append(q.queues[pri], tid)
	}
	t.Priority = pri
	return nil
}

func (q *RunQueue) removeFromQueue(tid TID, pri Priority) {
	l := q.queues[pri]
	for i := range l {
		if l[i] == tid {
			q.queues[pri] = append(l[:i], l[i+1:]...)
			return
		}
	}
}

// Len returns the number of registered threads.
func (q *RunQueue) Len() int { return len(q.threads) }

// ReadyCount returns the number of ready threads.
func (q *RunQueue) ReadyCount() int {
	n := 0
	for p := range q.queues {
		n += len(q.queues[p])
	}
	return n
}

// Snapshot returns all TCBs by value (for specs and tests).
func (q *RunQueue) Snapshot() map[TID]TCB {
	out := make(map[TID]TCB, len(q.threads))
	for tid, t := range q.threads {
		out[tid] = *t
	}
	return out
}

// CheckInvariant validates: every ready thread appears exactly once in
// exactly its priority's queue; no non-ready thread is queued; queue
// membership and TCB state agree.
func (q *RunQueue) CheckInvariant() error {
	seen := make(map[TID]int)
	for p := range q.queues {
		for _, tid := range q.queues[p] {
			t := q.threads[tid]
			if t == nil {
				return fmt.Errorf("sched: queued thread %d has no TCB", tid)
			}
			if t.State != StateReady {
				return fmt.Errorf("sched: %v thread %d in ready queue", t.State, tid)
			}
			if t.Priority != Priority(p) {
				return fmt.Errorf("sched: thread %d (pri %d) in queue %d", tid, t.Priority, p)
			}
			seen[tid]++
			if seen[tid] > 1 {
				return fmt.Errorf("sched: thread %d queued twice", tid)
			}
		}
	}
	for tid, t := range q.threads {
		if t.State == StateReady && seen[tid] != 1 {
			return fmt.Errorf("sched: ready thread %d not queued", tid)
		}
	}
	return nil
}
