package sys

import (
	"testing"
	"time"

	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
)

// The batch lifecycle misuse matrix: every wrong transition fails
// deterministically with its own sentinel, with no waiting and no
// crossing. Run under -race in CI (the concurrent-wait case exercises
// the claim CAS).

func TestBatchMisuseWaitBeforeSubmit(t *testing.T) {
	_, s := newSysPair(t)
	b := s.NewBatch(SubmitOptions{})
	if _, err := b.Wait(); err != ErrBatchEmpty {
		t.Fatalf("wait on empty unsubmitted batch: %v, want ErrBatchEmpty", err)
	}
	b.Add(OpMkdir("/m"))
	if _, err := b.Wait(); err != ErrBatchNotSubmitted {
		t.Fatalf("wait before submit: %v, want ErrBatchNotSubmitted", err)
	}
}

func TestBatchMisuseEmptySubmit(t *testing.T) {
	_, s := newSysPair(t)
	if err := s.NewBatch(SubmitOptions{}).Submit(); err != ErrBatchEmpty {
		t.Fatalf("empty submit: %v, want ErrBatchEmpty", err)
	}
	if comps, err := s.Submit(nil).Wait(); err != ErrBatchEmpty || comps != nil {
		t.Fatalf("empty Submit().Wait() = %v, %v, want ErrBatchEmpty", comps, err)
	}
}

func TestBatchMisuseDoubleSubmitAndWait(t *testing.T) {
	_, s := newSysPair(t)
	fd, e := s.Open("/misuse", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.NewBatch(SubmitOptions{}).Add(OpWrite(fd, []byte("x")))
	if err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(); err != ErrBatchSubmitted {
		t.Fatalf("double submit: %v, want ErrBatchSubmitted", err)
	}
	if comps, err := b.Wait(); err != nil || len(comps) != 1 {
		t.Fatalf("first wait: %v, %v", comps, err)
	}
	if _, err := b.Wait(); err != ErrBatchReaped {
		t.Fatalf("double wait: %v, want ErrBatchReaped", err)
	}
	if _, err := b.WaitN(1); err != ErrBatchReaped {
		t.Fatalf("waitN after reap: %v, want ErrBatchReaped", err)
	}
	if err := b.Submit(); err != ErrBatchReaped {
		t.Fatalf("submit after wait: %v, want ErrBatchReaped", err)
	}
}

func TestBatchMisuseWaitNRange(t *testing.T) {
	_, s := newSysPair(t)
	fd, e := s.Open("/range", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.NewBatch(SubmitOptions{}).Add(OpWrite(fd, []byte("x")))
	if err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WaitN(2); err != ErrWaitRange {
		t.Fatalf("waitN beyond the batch: %v, want ErrWaitRange", err)
	}
	if _, err := b.WaitN(-1); err != ErrWaitRange {
		t.Fatalf("waitN(-1): %v, want ErrWaitRange", err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Two goroutines racing into Wait on the same batch: exactly one wins
// the reaper claim, the loser fails deterministically with
// ErrBatchBusy. The gate holds the batch in flight and the park hook
// signals once the winner holds the claim, so the loser's attempt is
// ordered after it — no timing assumptions.
func TestBatchMisuseConcurrentWait(t *testing.T) {
	k := newTestKernel()
	gate := make(chan struct{}, 1)
	s := NewSys(proc.InitPID, &gatedBatchHandler{inner: &directHandler{k: k}, gate: gate})
	fd, e := s.Open("/conc", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.NewBatch(SubmitOptions{Wait: WaitBlock}).Add(OpWrite(fd, []byte("race")))
	claimed := make(chan struct{})
	var once bool
	b.parkHook = func(stage int) {
		if stage == parkStagePrepared && !once {
			once = true
			close(claimed)
		}
	}
	if err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	winner := make(chan error, 1)
	go func() {
		comps, err := b.Wait()
		if err == nil && len(comps) != 1 {
			err = ErrBatchEmpty
		}
		winner <- err
	}()
	<-claimed // the goroutine holds the reaper claim and is in its park protocol
	if _, err := b.Wait(); err != ErrBatchBusy {
		t.Fatalf("concurrent wait: %v, want ErrBatchBusy", err)
	}
	gate <- struct{}{}
	if err := <-winner; err != nil {
		t.Fatalf("winner: %v", err)
	}
}

// A blocking wait must park on the CQ doorbell, never burn the core:
// with the batch held in flight, the waiter records at least one park
// and zero spin iterations — the scheduler-idle assertion the CI
// wait-mode job keys on.
func TestBlockingWaitParksDoesNotSpin(t *testing.T) {
	obs.Reset()
	obs.Enable()
	defer obs.Disable()
	k := newTestKernel()
	gate := make(chan struct{}, 1)
	s := NewSys(proc.InitPID, &gatedBatchHandler{inner: &directHandler{k: k}, gate: gate})
	fd, e := s.Open("/park", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.NewBatch(SubmitOptions{Wait: WaitBlock}).Add(OpWrite(fd, []byte("zzz")))
	parked := make(chan struct{})
	var signalled bool
	b.parkHook = func(stage int) {
		if stage == parkStageParking && !signalled {
			signalled = true
			close(parked)
		}
	}
	if err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Wait()
		done <- err
	}()
	<-parked // the waiter is past its re-check, committed to parking
	gate <- struct{}{}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if parks := obs.RingWaitParks.Load(); parks == 0 {
		t.Fatal("blocking wait completed without parking on the doorbell")
	}
	if spins := obs.RingWaitSpins.Load(); spins != 0 {
		t.Fatalf("blocking wait burned the core: %d spin iterations", spins)
	}
	if wakes := obs.RingWaitWakes.Load(); wakes == 0 {
		t.Fatal("parked waiter saw no doorbell wake")
	}
}

// Poll mode never waits: while the batch is gated in flight, Wait
// reports ErrBatchPending with whatever has posted; after completion it
// reaps normally.
func TestWaitPollMode(t *testing.T) {
	k := newTestKernel()
	gate := make(chan struct{}, 1)
	s := NewSys(proc.InitPID, &gatedBatchHandler{inner: &directHandler{k: k}, gate: gate})
	fd, e := s.Open("/poll", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.NewBatch(SubmitOptions{Wait: WaitPoll}).Add(OpWrite(fd, []byte("p")))
	if err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	if comps, err := b.Wait(); err != ErrBatchPending || len(comps) != 0 {
		t.Fatalf("poll on gated batch: %v, %v, want ErrBatchPending", comps, err)
	}
	gate <- struct{}{}
	deadline := time.After(5 * time.Second)
	for !b.Done() {
		select {
		case <-deadline:
			t.Fatal("batch never completed")
		default:
		}
	}
	comps, err := b.Wait()
	if err != nil || len(comps) != 1 || comps[0].Errno != EOK {
		t.Fatalf("poll reap after completion: %v, %v", comps, err)
	}
	if _, err := b.Wait(); err != ErrBatchReaped {
		t.Fatalf("second poll reap: %v, want ErrBatchReaped", err)
	}
}

// Spin mode reaps correctly (and is the mode that is allowed to burn
// the core — the latency/efficiency trade the bench quantifies).
func TestWaitSpinMode(t *testing.T) {
	_, s := newSysPair(t)
	fd, e := s.Open("/spin", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.SubmitOpts([]Op{OpWrite(fd, []byte("fast")), OpRead(fd, 4)}, SubmitOptions{Wait: WaitSpin})
	comps, err := b.Wait()
	if err != nil || len(comps) != 2 {
		t.Fatalf("spin wait: %v, %v", comps, err)
	}
	if comps[0].Errno != EOK || comps[0].Val != 4 {
		t.Fatalf("spin write completion: %+v", comps[0])
	}
}

// The completion callback fires exactly once, from the drainer, with
// the full completion queue — and composes with a normal Wait.
func TestSubmitCallback(t *testing.T) {
	_, s := newSysPair(t)
	fd, e := s.Open("/cb", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	got := make(chan int, 2)
	b := s.SubmitOpts([]Op{OpWrite(fd, []byte("one")), OpWrite(fd, []byte("two"))},
		SubmitOptions{OnComplete: func(comps []Completion, err error) {
			if err != nil {
				got <- -1
				return
			}
			got <- len(comps)
		}})
	if comps, err := b.Wait(); err != nil || len(comps) != 2 {
		t.Fatalf("wait: %v, %v", comps, err)
	}
	if n := <-got; n != 2 {
		t.Fatalf("callback saw %d completions, want 2", n)
	}
	select {
	case n := <-got:
		t.Fatalf("callback fired twice (second: %d)", n)
	default:
	}
}

// A validation failure (bad open flags) surfaces through Submit, the
// callback, and Wait consistently — and SubmitWait's legacy Errno
// surface still reports it as EINVAL.
func TestSubmitValidationFailure(t *testing.T) {
	_, s := newSysPair(t)
	bad := []Op{OpOpen("/x", OWrOnly|ORdWr)}
	cbErr := make(chan error, 1)
	b := s.NewBatch(SubmitOptions{OnComplete: func(_ []Completion, err error) { cbErr <- err }}).Add(bad...)
	if err := b.Submit(); err == nil {
		t.Fatal("submit accepted invalid open flags")
	}
	if err := <-cbErr; errnoOf(err) != EINVAL {
		t.Fatalf("callback error: %v, want EINVAL", err)
	}
	if _, err := b.Wait(); errnoOf(err) != EINVAL {
		t.Fatalf("wait error: %v, want EINVAL", err)
	}
	if _, e := s.SubmitWait(bad); e != EINVAL {
		t.Fatalf("SubmitWait: %v, want EINVAL", e)
	}
	// Typed socket boundary validation, same posture: the zero SockID
	// and the ephemeral destination port never cross.
	if _, e := s.SubmitWait([]Op{OpSockSend(0, 0xA, 1, []byte("x"))}); e != EBADF {
		t.Fatalf("zero SockID: %v, want EBADF", e)
	}
	if _, e := s.SubmitWait([]Op{OpSockSend(1, 0xA, 0, []byte("x"))}); e != EINVAL {
		t.Fatalf("port-0 send: %v, want EINVAL", e)
	}
	if _, _, _, e := s.SockRecv(0); e != EBADF {
		t.Fatalf("scalar recv on zero SockID: %v, want EBADF", e)
	}
}

// WaitN returns early on a chunked batch while later chunks are still
// in flight, and the final Wait delivers everything exactly once.
func TestWaitNPartialReap(t *testing.T) {
	k := newTestKernel()
	gate := make(chan struct{}, 1)
	s := NewSys(proc.InitPID, &gatedBatchHandler{inner: &directHandler{k: k}, gate: gate})
	fd, e := s.Open("/partial", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	n := ringChunk + 16
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = OpWrite(fd, []byte{byte(i)})
	}
	b := s.NewBatch(SubmitOptions{Wait: WaitBlock}).Add(ops...)
	if err := b.Submit(); err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // first chunk only
	part, err := b.WaitN(ringChunk)
	if err != nil {
		t.Fatalf("waitN: %v", err)
	}
	if len(part) < ringChunk || len(part) >= n {
		t.Fatalf("waitN(%d) = %d completions on a half-gated %d-op batch", ringChunk, len(part), n)
	}
	gate <- struct{}{}
	all, err := b.Wait()
	if err != nil || len(all) != n {
		t.Fatalf("final wait: %d comps, %v", len(all), err)
	}
}
