package sys

import "github.com/verified-os/vnros/internal/netstack"

// Typed socket identifiers. The wire ABI (WriteOp.Sock/Port/Addr) stays
// bare integers — these types live at the API boundary, where they are
// validated before a frame is built, the same posture as OpenFlag: a
// structurally invalid argument never crosses into the kernel.

// NetAddr is a network-layer address (a netstack wire address).
type NetAddr = netstack.Addr

// Port is a socket port number. Port 0 is the ephemeral request in
// bind (the kernel picks a free port) and never a valid destination.
type Port uint16

// Validate checks p as a send destination: datagrams cannot target the
// ephemeral port.
func (p Port) Validate() Errno {
	if p == 0 {
		return EINVAL
	}
	return EOK
}

// SockID names a bound socket. The kernel allocates ids from 1, so the
// zero SockID is never valid — a zero-value bug is caught at the
// boundary as EBADF instead of crossing as a table miss.
type SockID uint64

// Validate checks that s can name a socket at all.
func (s SockID) Validate() Errno {
	if s == 0 {
		return EBADF
	}
	return EOK
}

// SockFrom is the source of a received datagram.
type SockFrom struct {
	Addr NetAddr
	Port Port
}

// SockFrom unpacks a receive completion's Val into the datagram's
// typed source. Only meaningful on NumSockRecv completions.
func (c Completion) SockFrom() SockFrom {
	return SockFrom{Addr: NetAddr(c.Val >> 16), Port: Port(uint16(c.Val))}
}
