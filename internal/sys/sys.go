package sys

import (
	"fmt"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
)

// Handler is the kernel side of the syscall boundary: internal/core's
// replicated kernel implements it. The two byte slices are the
// marshalled argument and result payloads — nothing else crosses.
type Handler interface {
	Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte)
}

// Viewer exposes the kernel's view() abstraction for contract checking
// (the paper's sys.view()); implemented by the kernel.
type Viewer interface {
	ViewFDs(pid proc.PID) (fs.SpecState, bool)
}

// Sys is the user-space handle encapsulating the syscall interface —
// the paper's `Sys` type. Each process (and in the simulated system,
// each user program goroutine) holds one. When a Viewer is attached,
// every file syscall is checked against its spec relation, making the
// paper's `ensures` clauses executable.
type Sys struct {
	pid proc.PID
	h   Handler

	// core is the core the handle's kernel handler is pinned to (0 when
	// the handler doesn't expose one) — the stripe for ring obs counters
	// and the documentation of the per-core ring placement.
	core uint32
	// ring is this handle's submission ring (see submit.go). The handler
	// pins the handle to one core, so this is the per-core ring.
	ring subRing

	// contract checking (optional). mu guards viewer and cerr: the
	// viewer may be attached by EnableContract after syscall goroutines
	// are already running, so unsynchronized reads would race.
	mu     sync.Mutex
	viewer Viewer
	cerr   error
}

// CorePinned is implemented by handlers that pin the handle to one
// core (internal/core's per-process handler does); the submission ring
// uses it to stripe its observability counters by core.
type CorePinned interface {
	Core() int
}

// NewSys creates a handle for the given process.
func NewSys(pid proc.PID, h Handler) *Sys {
	s := &Sys{pid: pid, h: h}
	if cp, ok := h.(CorePinned); ok {
		s.core = uint32(cp.Core())
	}
	return s
}

// PID returns the owning process.
func (s *Sys) PID() proc.PID { return s.pid }

// EnableContract attaches a Viewer; from now on file syscalls are
// checked against read_spec/write_spec/seek_spec. Safe to call while
// other goroutines are issuing syscalls through this handle: syscalls
// already past their view() snapshot complete unchecked, later ones
// are checked.
func (s *Sys) EnableContract(v Viewer) {
	s.mu.Lock()
	s.viewer = v
	s.mu.Unlock()
}

// ContractErr returns the first recorded contract violation, if any.
func (s *Sys) ContractErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cerr
}

func (s *Sys) recordViolation(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cerr == nil {
		s.cerr = err
	}
}

// callWrite crosses the boundary with a mutating op.
func (s *Sys) callWrite(op WriteOp) Resp {
	op.PID = s.pid
	frame, payload := EncodeWrite(op)
	ret, out := s.h.Syscall(frame, payload)
	r, err := DecodeResp(ret, out)
	if err != nil {
		return Resp{Errno: EINVAL}
	}
	return r
}

// callRead crosses the boundary with a read-only op.
func (s *Sys) callRead(op ReadOp) Resp {
	op.PID = s.pid
	frame, payload := EncodeRead(op)
	ret, out := s.h.Syscall(frame, payload)
	r, err := DecodeResp(ret, out)
	if err != nil {
		return Resp{Errno: EINVAL}
	}
	return r
}

// view snapshots the kernel's abstraction of this process's
// descriptors (contract mode only).
func (s *Sys) view() (fs.SpecState, bool) {
	s.mu.Lock()
	v := s.viewer
	s.mu.Unlock()
	if v == nil {
		return fs.SpecState{}, false
	}
	// ViewFDs runs outside the lock: it crosses into the kernel and
	// must not serialize against recordViolation on other goroutines.
	return v.ViewFDs(s.pid)
}

// Open opens (or with OCreate creates) path. Invalid flag combinations
// are rejected here, before the boundary crossing — the typed OpenFlag
// surface makes "deep in fs" rejection unnecessary.
func (s *Sys) Open(path string, flags OpenFlag) (fs.FD, Errno) {
	if e := flags.Validate(); e != EOK {
		return 0, e
	}
	r := s.callWrite(WriteOp{Num: NumOpen, Path: path, Flags: uint64(flags)})
	return fs.FD(r.Val), r.Errno
}

// Close releases a descriptor.
func (s *Sys) Close(fd fs.FD) Errno {
	return s.callWrite(WriteOp{Num: NumClose, FD: fd}).Errno
}

// Read reads up to len(buffer) bytes at the descriptor's offset,
// returning the count — the paper's worked example. In contract mode
// the call is checked against read_spec through the view abstraction.
func (s *Sys) Read(fd fs.FD, buffer []byte) (uint64, Errno) {
	pre, checking := s.view()
	r := s.callWrite(WriteOp{Num: NumRead, FD: fd, Len: uint64(len(buffer))})
	if r.Errno != EOK {
		return 0, r.Errno
	}
	n := copy(buffer, r.Data)
	if checking {
		post, _ := s.view()
		// The kernel acquires the descriptor lock as the first step of
		// the atomic syscall transition; the spec's precondition sees
		// that intermediate state.
		if f, ok := pre.Files[fd]; ok {
			f.Locked = true
			pre.Files[fd] = f
		}
		if err := fs.ReadSpec(pre, post, fd, uint64(len(buffer)), buffer, r.Val); err != nil {
			s.recordViolation(fmt.Errorf("read(%d): %w", fd, err))
		}
	}
	return uint64(n), EOK
}

// Pread reads up to len(buffer) bytes at the absolute offset off,
// without moving the descriptor's offset. Because it mutates no kernel
// state it travels as a read op: cache hits are served from the sharded
// page cache without crossing the NR combiner. In contract mode the
// result is checked against the pre view's contents (a positioned
// read_spec: same bytes, offset untouched).
func (s *Sys) Pread(fd fs.FD, buffer []byte, off uint64) (uint64, Errno) {
	pre, checking := s.view()
	r := s.callRead(ReadOp{Num: NumPread, FD: fd, Len: uint64(len(buffer)), Off: off})
	if r.Errno != EOK {
		return 0, r.Errno
	}
	n := uint64(copy(buffer, r.Data))
	if checking {
		post, _ := s.view()
		if err := preadCheck(pre, post, fd, off, buffer[:n], r.Val); err != nil {
			s.recordViolation(fmt.Errorf("pread(%d): %w", fd, err))
		}
	}
	return n, EOK
}

// preadCheck is the positioned-read contract: the returned bytes are
// exactly pre.contents[off:off+n], n is min(len(buf), size-off), and the
// descriptor's offset is unchanged. A concurrent writer can move the
// file between the pre snapshot and the read, so the check tolerates a
// post-state match too (the read linearized after the write); only a
// result matching neither snapshot is a violation.
func preadCheck(pre, post fs.SpecState, fd fs.FD, off uint64, got []byte, n uint64) error {
	match := func(st fs.SpecState) bool {
		f, ok := st.Files[fd]
		if !ok {
			return false
		}
		want := uint64(0)
		if off < f.Size() {
			want = f.Size() - off
		}
		if uint64(len(got)) < want {
			want = uint64(len(got))
		}
		if n != want {
			return false
		}
		for i := uint64(0); i < n; i++ {
			if got[i] != f.Contents[off+i] {
				return false
			}
		}
		return true
	}
	if !match(pre) && !match(post) {
		return fmt.Errorf("pread at %d returned %d bytes matching neither pre nor post contents", off, n)
	}
	pf, ok1 := pre.Files[fd]
	qf, ok2 := post.Files[fd]
	if ok1 && ok2 && qf.Offset != pf.Offset {
		return fmt.Errorf("pread moved descriptor offset %d -> %d", pf.Offset, qf.Offset)
	}
	return nil
}

// PreadMap is the zero-copy tier of the positioned read: for a
// page-aligned offset whose page is resident in the page cache, it maps
// the cached frame read-only into the caller's vspace and returns the
// mapping's base address plus the number of valid bytes behind it
// (Stat.Size of the response). The mapping observes exactly the bytes a
// copying Pread would have returned (the read-mapping-refines-copy VC);
// release it with PreadUnmap. EAGAIN means no cached page was available
// — fall back to Pread.
func (s *Sys) PreadMap(fd fs.FD, off uint64) (mmu.VAddr, uint64, Errno) {
	r := s.callWrite(WriteOp{Num: NumPreadMap, FD: fd, Off: int64(off)})
	if r.Errno != EOK {
		return 0, 0, r.Errno
	}
	return mmu.VAddr(r.Val), r.Stat.Size, EOK
}

// PreadUnmap releases a mapping returned by PreadMap, unpinning the
// cached frame. Only pread mappings are accepted (EINVAL otherwise).
func (s *Sys) PreadUnmap(va mmu.VAddr) Errno {
	return s.callWrite(WriteOp{Num: NumPreadUnmap, VA: va}).Errno
}

// Write writes data at the descriptor's offset.
func (s *Sys) Write(fd fs.FD, data []byte) (uint64, Errno) {
	pre, checking := s.view()
	r := s.callWrite(WriteOp{Num: NumWrite, FD: fd, Data: data})
	if r.Errno != EOK {
		return 0, r.Errno
	}
	if checking {
		post, _ := s.view()
		if f, ok := pre.Files[fd]; ok {
			f.Locked = true
			pre.Files[fd] = f
		}
		if err := fs.WriteSpec(pre, post, fd, data, r.Val); err != nil {
			s.recordViolation(fmt.Errorf("write(%d): %w", fd, err))
		}
	}
	return r.Val, EOK
}

// Seek repositions the descriptor offset.
func (s *Sys) Seek(fd fs.FD, off int64, whence int) (uint64, Errno) {
	pre, checking := s.view()
	r := s.callWrite(WriteOp{Num: NumSeek, FD: fd, Off: off, Whence: whence})
	if r.Errno != EOK {
		return 0, r.Errno
	}
	if checking {
		post, _ := s.view()
		if err := fs.SeekSpec(pre, post, fd, off, whence, r.Val); err != nil {
			s.recordViolation(fmt.Errorf("seek(%d): %w", fd, err))
		}
	}
	return r.Val, EOK
}

// Truncate resizes the file behind fd.
func (s *Sys) Truncate(fd fs.FD, size uint64) Errno {
	return s.callWrite(WriteOp{Num: NumTruncate, FD: fd, Len: size}).Errno
}

// Sync is the durability transition: it returns only after every
// filesystem mutation acknowledged before the call is durable on disk
// (one write-ahead journal group commit — or a full snapshot on
// journal-less systems). EIO reports a disk failure; the mutations
// remain applied in memory but their durability is not acknowledged.
func (s *Sys) Sync() Errno {
	return s.callWrite(WriteOp{Num: NumSync}).Errno
}

// Mkdir creates a directory.
func (s *Sys) Mkdir(path string) Errno {
	return s.callWrite(WriteOp{Num: NumMkdir, Path: path}).Errno
}

// Unlink removes a file.
func (s *Sys) Unlink(path string) Errno {
	return s.callWrite(WriteOp{Num: NumUnlink, Path: path}).Errno
}

// Rmdir removes an empty directory.
func (s *Sys) Rmdir(path string) Errno {
	return s.callWrite(WriteOp{Num: NumRmdir, Path: path}).Errno
}

// Rename moves a file or directory.
func (s *Sys) Rename(old, new string) Errno {
	return s.callWrite(WriteOp{Num: NumRename, Path: old, Path2: new}).Errno
}

// Link creates a hard link.
func (s *Sys) Link(old, new string) Errno {
	return s.callWrite(WriteOp{Num: NumLink, Path: old, Path2: new}).Errno
}

// Stat describes the object at path.
func (s *Sys) Stat(path string) (fs.Stat, Errno) {
	r := s.callRead(ReadOp{Num: NumStat, Path: path})
	return r.Stat, r.Errno
}

// ReadDir lists a directory.
func (s *Sys) ReadDir(path string) ([]fs.DirEntry, Errno) {
	r := s.callRead(ReadOp{Num: NumReadDir, Path: path})
	return r.Entries, r.Errno
}

// Spawn creates a child process.
func (s *Sys) Spawn(name string) (proc.PID, Errno) {
	r := s.callWrite(WriteOp{Num: NumSpawn, Name: name})
	return proc.PID(r.Val), r.Errno
}

// Wait reaps one exited child.
func (s *Sys) Wait() (proc.WaitResult, Errno) {
	r := s.callWrite(WriteOp{Num: NumWaitPID})
	return r.Wait, r.Errno
}

// Exit terminates the calling process.
func (s *Sys) Exit(code int) Errno {
	return s.callWrite(WriteOp{Num: NumExit, Code: code}).Errno
}

// Kill sends a signal to target.
func (s *Sys) Kill(target proc.PID, sig proc.Signal) Errno {
	return s.callWrite(WriteOp{Num: NumKill, Target: target, Sig: sig}).Errno
}

// TakeSignal consumes one pending signal.
func (s *Sys) TakeSignal() (proc.Signal, bool, Errno) {
	r := s.callWrite(WriteOp{Num: NumTakeSignal})
	return r.Sig, r.SigOK, r.Errno
}

// GetPID returns the caller's PID (via the kernel, as a sanity check).
func (s *Sys) GetPID() (proc.PID, Errno) {
	r := s.callRead(ReadOp{Num: NumGetPID})
	return proc.PID(r.Val), r.Errno
}

// MMap maps size bytes of fresh memory, returning its base.
func (s *Sys) MMap(size uint64) (mmu.VAddr, Errno) {
	r := s.callWrite(WriteOp{Num: NumMMap, Size: size})
	return mmu.VAddr(r.Val), r.Errno
}

// MUnmap unmaps the region based at va.
func (s *Sys) MUnmap(va mmu.VAddr) Errno {
	return s.callWrite(WriteOp{Num: NumMUnmap, VA: va}).Errno
}

// MemResolve translates a user virtual address (diagnostics).
func (s *Sys) MemResolve(va mmu.VAddr) (uint64, Errno) {
	r := s.callRead(ReadOp{Num: NumMemResolve, VA: va})
	return r.Val, r.Errno
}

// FutexWait blocks while the 32-bit word at va equals expected (the
// §3/§4.1 futex the userspace mutex builds on). Served by core.
func (s *Sys) FutexWait(va mmu.VAddr, expected uint32) Errno {
	return s.callWrite(WriteOp{Num: NumFutexWait, VA: va, Word: expected}).Errno
}

// FutexWake wakes up to n waiters on the word at va, returning the
// number woken.
func (s *Sys) FutexWake(va mmu.VAddr, n uint64) (uint64, Errno) {
	r := s.callWrite(WriteOp{Num: NumFutexWake, VA: va, Len: n})
	return r.Val, r.Errno
}

// MemRead copies process-virtual memory into p — the simulation's
// stand-in for ordinary loads in the §3 execution model.
func (s *Sys) MemRead(va mmu.VAddr, p []byte) Errno {
	r := s.callWrite(WriteOp{Num: NumMemRead, VA: va, Len: uint64(len(p))})
	if r.Errno == EOK {
		copy(p, r.Data)
	}
	return r.Errno
}

// MemWrite copies p into process-virtual memory.
func (s *Sys) MemWrite(va mmu.VAddr, p []byte) Errno {
	return s.callWrite(WriteOp{Num: NumMemWrite, VA: va, Data: p}).Errno
}

// SockBind binds a datagram socket (port 0 picks an ephemeral port),
// returning its handle.
func (s *Sys) SockBind(port Port) (SockID, Errno) {
	return s.SockBindBudget(port, 0)
}

// SockBindBudget binds a socket with an explicit receive budget — the
// queue depth past which incoming datagrams are shed (0 = default). The
// budget is part of the logged bind, so every replica's table agrees on
// the socket's backpressure contract.
func (s *Sys) SockBindBudget(port Port, budget uint32) (SockID, Errno) {
	r := s.callWrite(WriteOp{Num: NumSockBind, Port: uint16(port), Word: budget})
	return SockID(r.Val), r.Errno
}

// SockSend transmits payload to (addr, port) from the given socket,
// returning the accepted byte count like the write path. The socket id
// and destination port are validated before the crossing, like Open's
// flag set.
func (s *Sys) SockSend(sock SockID, addr NetAddr, port Port, payload []byte) (uint64, Errno) {
	if e := sock.Validate(); e != EOK {
		return 0, e
	}
	if e := port.Validate(); e != EOK {
		return 0, e
	}
	r := s.callWrite(WriteOp{Num: NumSockSend, Sock: uint64(sock), Addr: uint64(addr), Port: uint16(port), Data: payload})
	return r.Val, r.Errno
}

// SockRecv receives one datagram without blocking (EAGAIN when empty).
// The source address and port are returned through resp fields.
func (s *Sys) SockRecv(sock SockID) (payload []byte, from NetAddr, fromPort Port, e Errno) {
	if e := sock.Validate(); e != EOK {
		return nil, 0, 0, e
	}
	r := s.callWrite(WriteOp{Num: NumSockRecv, Sock: uint64(sock)})
	if r.Errno != EOK {
		return nil, 0, 0, r.Errno
	}
	return r.Data, NetAddr(r.Val), Port(uint16(r.TID)), EOK
}

// SockRecvBlocking receives one datagram, parking the calling core's
// handler on the socket's delivery doorbell until a datagram arrives or
// the socket closes — a single boundary crossing, not an EAGAIN poll
// loop over every core.
func (s *Sys) SockRecvBlocking(sock SockID) ([]byte, NetAddr, Port, Errno) {
	if e := sock.Validate(); e != EOK {
		return nil, 0, 0, e
	}
	r := s.callWrite(WriteOp{Num: NumSockRecv, Sock: uint64(sock), Flags: SockRecvBlock})
	if r.Errno != EOK {
		return nil, 0, 0, r.Errno
	}
	return r.Data, NetAddr(r.Val), Port(uint16(r.TID)), EOK
}

// SockClose releases a socket.
func (s *Sys) SockClose(sock SockID) Errno {
	if e := sock.Validate(); e != EOK {
		return e
	}
	return s.callWrite(WriteOp{Num: NumSockClose, Sock: uint64(sock)}).Errno
}

// MemCAS32 atomically compares-and-swaps the 32-bit word at va: if it
// equals old it becomes new. It returns the observed value and whether
// the swap happened — the simulation's model of a LOCK CMPXCHG
// instruction, which user-space synchronization (ulib) builds on.
func (s *Sys) MemCAS32(va mmu.VAddr, old, new uint32) (uint32, bool, Errno) {
	r := s.callWrite(WriteOp{Num: NumMemCAS, VA: va, Word: old, Len: uint64(new)})
	if r.Errno != EOK {
		return 0, false, r.Errno
	}
	return uint32(r.Val), r.SigOK, EOK
}
