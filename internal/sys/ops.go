package sys

import (
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sched"
)

// Syscall numbers. These are the wire ABI: the user-side Sys handle
// packs them into marshal.SyscallFrame.Num.
const (
	NumOpen uint64 = iota + 1
	NumClose
	NumRead
	NumWrite
	NumSeek
	NumStat
	NumMkdir
	NumUnlink
	NumRmdir
	NumRename
	NumLink
	NumReadDir
	NumTruncate

	NumSpawn
	NumWaitPID
	NumExit
	NumKill
	NumGetPID
	NumTakeSignal

	NumMMap
	NumMUnmap
	NumMemResolve

	NumThreadAdd
	NumThreadYield
	NumThreadBlock
	NumThreadWake
	NumThreadExit
	NumPickNext

	// Handled outside the replicated kernel state (core):
	NumFutexWait
	NumFutexWake
	NumSockBind
	NumSockSend
	NumSockRecv
	NumSockClose
	NumMemRead
	NumMemWrite
	NumMemCAS

	// NumBatch carries a vector of batchable write ops (the submission
	// ring, Sys.Submit): core decodes it and drains the whole vector
	// through a single NR combiner round.
	NumBatch

	// NumSync is the durability transition: it completes only once
	// every mutation acknowledged before it is durable on disk (a
	// write-ahead journal group commit, or a full snapshot when the
	// system runs without a journal). Served locally by core — the
	// disk lives outside the replicated state machine.
	NumSync

	// NumPread is the positioned read: read Len bytes at absolute
	// offset Off without touching the descriptor's offset. Because it
	// mutates no kernel state it is a ReadOp — core serves it from the
	// sharded page cache (cache hits never cross the combiner) with a
	// replica-local fill on miss.
	NumPread

	// NumPreadMap / NumPreadUnmap are the zero-copy tier: a page-aligned
	// positioned read that maps the cached frame read-only into the
	// caller's vspace and returns the mapping descriptor (VA + valid
	// length) instead of bytes, and the paired unmap that releases it.
	// Both mutate the caller's address space, so they are logged write
	// ops; core intercepts them to coordinate the page-cache pin with
	// the replicated mapping transition.
	NumPreadMap
	NumPreadUnmap

	// ---- Internal cross-shard protocol ops (above the wire ABI) ----
	//
	// Everything below is NOT a syscall: these ops never cross the user
	// boundary (core rejects them at the dispatch entry) and are never
	// marshalled. They are the steps of the sharded kernel's cross-shard
	// protocols (§4.1 composition): when descriptor tables live on a
	// process-state shard and the namespace/contents on filesystem
	// shards, one user syscall becomes an ordered sequence of these
	// single-shard transitions (see internal/core's shard router for the
	// ordering rules). They share the WriteOp/ReadOp/Resp containers so
	// each shard remains one monomorphic NR instantiation.

	// Descriptor-table ops (process shard owning the PID).
	NumFDOpen   // install a descriptor for a resolved inode (Ino, Flags)
	NumFDLock   // lock fd for a data op; returns Ino/Offset/Flags
	NumFDUnlock // unlock fd, setting the absolute offset from Len
	NumFDSeek   // reposition offset; SeekEnd base prefetched in Size

	// Process-tree ops (pinned to process shard 0) and per-process
	// resource ops (process shard owning the PID).
	NumProcSpawn   // tree half of spawn: allocate the child PID
	NumProcUnspawn // roll a spawn back when resource attach fails
	NumProcAttach  // resource half of spawn: vspace, page table, fds
	NumProcDetach  // resource half of exit: unmap, destroy, free
	NumProcExit    // tree half of exit: zombie + reparent + signal

	// Filesystem ops (namespace ops broadcast to every fs shard; data
	// ops routed to the shard owning the inode).
	NumFsCreate   // namespace: create a file (broadcast)
	NumFsWriteAt  // data: write at offset (owner shard)
	NumFsTruncate // data: truncate (owner shard)

	// Page-cache mapping ops (process shard owning the PID): install or
	// remove a read-only alias of a pinned cache frame in the caller's
	// vspace. The frame is pre-pinned by core's page cache; NumPageUnmap
	// returns it in Resp.Unpinned (never Freed — the cache owns it).
	NumPageMap
	NumPageUnmap

	// Internal read-only ops.
	NumFDGet        // descriptor state without locking
	NumFsLookup     // path → inode (any fs shard; namespace replicated)
	NumFsStatIno    // stat by inode (owner shard has the true size)
	NumFsReadAt     // data: read at offset (owner shard)
	NumProcHasTable // does the PID own a descriptor table here

	// Socket-table ops (socktab.go): the replicated half of the network
	// path. Socket *table* state — which (PID, id) owns which port —
	// lives in the kernel state machine so bind/close/ownership get the
	// same logging, batching, and §3 contract checking as the file path,
	// while the interrupt-fed receive queues stay device-local in core
	// behind a doorbell. Table ops route to the process shard owning the
	// PID; the port-namespace pair is pinned to process shard 0 (the
	// global port namespace, like the process tree).
	NumSockTabBind     // install (PID, id=++nextID) → Port; Val = id
	NumSockTabSend     // validate a send against the table; Val = byte count
	NumSockTabClose    // remove the entry, free its port; Val = port
	NumSockPortAcquire // shard 0: reserve Port in the global namespace
	NumSockPortRelease // shard 0: release Port from the global namespace

	// Socket-table read-only op.
	NumSockTabGet // (PID, Sock) → bound port
)

// MaxInternalOpNum is the highest internal (cross-shard protocol) op
// number; the obs opcode space must cover it too.
const MaxInternalOpNum = NumSockTabGet

// SockRecvBlock, set in WriteOp.Flags of a NumSockRecv, asks the kernel
// to park the caller on the socket's doorbell until a datagram arrives
// or the socket closes, instead of returning EAGAIN.
const SockRecvBlock uint64 = 1

// IsInternalOp reports whether num is a cross-shard protocol op — valid
// only inside the kernel composition, never at the user boundary.
func IsInternalOp(num uint64) bool { return num > MaxOpNum && num <= MaxInternalOpNum }

// opNames maps syscall numbers to their display names, for the
// observability layer (obs records by number; tools render names).
var opNames = map[uint64]string{
	NumOpen: "open", NumClose: "close", NumRead: "read", NumWrite: "write",
	NumSeek: "seek", NumStat: "stat", NumMkdir: "mkdir", NumUnlink: "unlink",
	NumRmdir: "rmdir", NumRename: "rename", NumLink: "link",
	NumReadDir: "readdir", NumTruncate: "truncate",
	NumSpawn: "spawn", NumWaitPID: "waitpid", NumExit: "exit", NumKill: "kill",
	NumGetPID: "getpid", NumTakeSignal: "takesignal",
	NumMMap: "mmap", NumMUnmap: "munmap", NumMemResolve: "memresolve",
	NumThreadAdd: "thread_add", NumThreadYield: "thread_yield",
	NumThreadBlock: "thread_block", NumThreadWake: "thread_wake",
	NumThreadExit: "thread_exit", NumPickNext: "picknext",
	NumFutexWait: "futex_wait", NumFutexWake: "futex_wake",
	NumSockBind: "sock_bind", NumSockSend: "sock_send",
	NumSockRecv: "sock_recv", NumSockClose: "sock_close",
	NumMemRead: "mem_read", NumMemWrite: "mem_write", NumMemCAS: "mem_cas",
	NumBatch: "batch", NumSync: "sync",
	NumPread: "pread", NumPreadMap: "pread_map", NumPreadUnmap: "pread_unmap",
	NumPageMap: "page_map", NumPageUnmap: "page_unmap",
	NumFDOpen: "fd_open", NumFDLock: "fd_lock", NumFDUnlock: "fd_unlock",
	NumFDSeek: "fd_seek", NumProcSpawn: "proc_spawn", NumProcUnspawn: "proc_unspawn",
	NumProcAttach: "proc_attach", NumProcDetach: "proc_detach", NumProcExit: "proc_exit",
	NumFsCreate: "fs_create", NumFsWriteAt: "fs_writeat", NumFsTruncate: "fs_truncate",
	NumFDGet: "fd_get", NumFsLookup: "fs_lookup", NumFsStatIno: "fs_statino",
	NumFsReadAt: "fs_readat", NumProcHasTable: "proc_hastable",
	NumSockTabBind: "socktab_bind", NumSockTabSend: "socktab_send",
	NumSockTabClose: "socktab_close", NumSockPortAcquire: "sock_port_acquire",
	NumSockPortRelease: "sock_port_release", NumSockTabGet: "socktab_get",
}

// OpName returns the syscall's display name ("open", "mmap", ...), or
// "sys<N>" for unknown numbers.
func OpName(num uint64) string {
	if s, ok := opNames[num]; ok {
		return s
	}
	return fmt.Sprintf("sys%d", num)
}

// MaxOpNum is the highest assigned syscall number (wire ABI bound; the
// obs opcode space must cover it).
const MaxOpNum = NumPreadUnmap

// WriteOp is a mutating kernel operation — one logged NR entry. A
// single struct (rather than one type per syscall) keeps the NR
// instantiation monomorphic; unused fields are zero.
type WriteOp struct {
	Num uint64
	PID proc.PID

	// File syscalls.
	FD     fs.FD
	Flags  uint64
	Whence int
	Off    int64
	Len    uint64
	Path   string
	Path2  string
	Data   []byte

	// Process syscalls.
	Name   string
	Code   int
	Sig    proc.Signal
	Target proc.PID // kill target

	// Memory syscalls. Frames are pre-allocated by the caller (the
	// shared data-frame allocator lives outside the replicated state;
	// see internal/core) so that applying the op on every replica does
	// not double-allocate shared physical memory.
	VA     mmu.VAddr
	Size   uint64
	Frames []mem.PAddr

	// Scheduler syscalls.
	TID  sched.TID
	Pri  sched.Priority
	Core int

	// Socket and futex syscalls (handled by internal/core outside the
	// replicated state; carried in the same op container so they share
	// the codec and its round-trip obligations).
	Sock uint64
	Addr uint64
	Port uint16
	Word uint32

	// Ino addresses an inode directly — internal cross-shard ops only
	// (the wire codec never carries it; internal ops never cross the
	// boundary).
	Ino fs.Ino
}

// ReadOp is a read-only kernel operation (executes on the local
// replica).
type ReadOp struct {
	Num  uint64
	PID  proc.PID
	FD   fs.FD
	Path string
	VA   mmu.VAddr
	Len  uint64
	TID  sched.TID

	// Off is the absolute offset of a positioned read. NumPread carries
	// it across the wire; the internal cross-shard read ops reuse it.
	Off uint64

	// Internal cross-shard read ops only (never marshalled).
	Ino  fs.Ino
	Sock uint64
}

// Resp is the kernel response for either kind.
type Resp struct {
	Errno Errno
	Val   uint64
	Data  []byte

	Stat    fs.Stat
	Entries []fs.DirEntry
	Wait    proc.WaitResult
	TID     sched.TID
	Sig     proc.Signal
	SigOK   bool

	// Freed frames from munmap/exit, for the caller to return to the
	// shared allocator (only meaningful on one replica's response).
	Freed []mem.PAddr

	// Internal cross-shard protocol results only (never marshalled):
	// the inode/offset a descriptor op resolved to, and the ports a
	// process detach freed (the router releases them from the global
	// namespace on process shard 0).
	Ino   fs.Ino
	Off   uint64
	Ports []uint16

	// Unpinned frames from page_unmap/exit: cache-owned frames whose
	// vspace alias went away. The caller (core) unpins them in the page
	// cache instead of returning them to the allocator — freeing them
	// here would free memory the cache still serves reads from. Never
	// marshalled: mapping teardown is core-internal.
	Unpinned []mem.PAddr
}

// ok returns a success response with a value.
func ok(val uint64) Resp { return Resp{Errno: EOK, Val: val} }

// fail returns an errno response.
func fail(err error) Resp { return Resp{Errno: ErrnoFromError(err)} }
