package sys

import (
	"fmt"
	"math/rand"
	"reflect"

	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerSyncObligations: the Sync syscall's slice of the §3
// marshalling obligation plus its dispatch-classification invariants.
// Sync carries no arguments, but it still crosses the boundary through
// the same frame/payload codec, rides in batches as a group-commit
// marker, and must be classified exactly one way by the dispatch
// predicates — local, not batch-replayed, not read-only.
func registerSyncObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "sys", Name: "sync-op-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				op := WriteOp{Num: NumSync, PID: proc.PID(r.Uint64())}
				frame, payload := EncodeWrite(op)
				got, err := DecodeWrite(frame, payload)
				if err != nil {
					return err
				}
				if !reflect.DeepEqual(normalizeOp(op), normalizeOp(got)) {
					return fmt.Errorf("sync op round trip mismatch:\n  in  %+v\n  out %+v", op, got)
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "sync-batch-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				// A batch whose ops include sync markers must survive the
				// batch codec byte-for-byte, or group commit would sync
				// the wrong prefix.
				for i := 0; i < 200; i++ {
					pid := proc.PID(r.Uint64())
					n := 1 + r.Intn(6)
					ops := make([]WriteOp, n)
					for k := range ops {
						if r.Intn(3) == 0 {
							ops[k] = WriteOp{Num: NumSync, PID: pid}
						} else {
							ops[k] = randomWriteOp(r)
							ops[k].PID = pid
						}
					}
					frame, payload := EncodeBatch(pid, ops)
					got, err := DecodeBatch(frame, payload)
					if err != nil {
						return err
					}
					if len(got) != len(ops) {
						return fmt.Errorf("batch round trip: %d/%d ops", len(got), len(ops))
					}
					for k := range ops {
						if !reflect.DeepEqual(normalizeOp(ops[k]), normalizeOp(got[k])) {
							return fmt.Errorf("batch op %d mismatch:\n  in  %+v\n  out %+v", k, ops[k], got[k])
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "sync-dispatch-classification", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				if !IsLocalOp(NumSync) {
					return fmt.Errorf("sync must be a local op: the journal flush happens once against the device, not per replica")
				}
				if IsBatchableOp(NumSync) {
					return fmt.Errorf("sync must not be batch-replayed through the state machine")
				}
				if IsReadOp(NumSync) {
					return fmt.Errorf("sync is not a read-only op")
				}
				if OpName(NumSync) != "sync" {
					return fmt.Errorf("sync has no display name")
				}
				if MaxOpNum < NumSync {
					return fmt.Errorf("MaxOpNum %d does not cover NumSync %d", MaxOpNum, NumSync)
				}
				// Pin MaxOpNum to the last wire op so adding a syscall
				// without moving it fails loudly.
				if MaxOpNum != NumPreadUnmap {
					return fmt.Errorf("MaxOpNum %d is not the last wire op (NumPreadUnmap %d)", MaxOpNum, NumPreadUnmap)
				}
				if MaxOpNum >= obs.MaxSyscallOps {
					return fmt.Errorf("obs opcode space %d does not cover MaxOpNum %d", obs.MaxSyscallOps, MaxOpNum)
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "internal-op-classification", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// The cross-shard protocol ops live strictly above the wire
				// ABI: every one must be recognized by IsInternalOp, have a
				// display name, fit the obs opcode space, and never be
				// classified as a wire-reachable local/batchable op. No
				// wire op may fall in the internal range.
				if MaxInternalOpNum <= MaxOpNum {
					return fmt.Errorf("internal op space %d must sit above the wire ABI %d", MaxInternalOpNum, MaxOpNum)
				}
				if MaxInternalOpNum >= obs.MaxSyscallOps {
					return fmt.Errorf("obs opcode space %d does not cover MaxInternalOpNum %d", obs.MaxSyscallOps, MaxInternalOpNum)
				}
				for num := uint64(1); num <= MaxOpNum; num++ {
					if IsInternalOp(num) {
						return fmt.Errorf("wire op %s (%d) classified as internal", OpName(num), num)
					}
				}
				for num := MaxOpNum + 1; num <= MaxInternalOpNum; num++ {
					if !IsInternalOp(num) {
						return fmt.Errorf("op %d inside the internal range not classified as internal", num)
					}
					if IsLocalOp(num) || IsBatchableOp(num) {
						return fmt.Errorf("internal op %s (%d) must not be wire-classified", OpName(num), num)
					}
					if _, named := opNames[num]; !named {
						return fmt.Errorf("internal op %d has no display name", num)
					}
				}
				if IsInternalOp(MaxInternalOpNum + 1) {
					return fmt.Errorf("IsInternalOp open above MaxInternalOpNum")
				}
				return nil
			}},
	)
}
