package sys

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
)

// batchableOps returns one representative Op per batch-encodable
// syscall, exercising every field each op carries on the wire.
func batchableOps() []Op {
	return []Op{
		OpOpen("/ring/a.txt", OCreate|ORdWr),
		OpClose(7),
		OpRead(3, 4096),
		OpWrite(4, []byte("submission queue payload")),
		OpSeek(5, -12, fs.SeekEnd),
		OpTruncate(6, 1<<20),
		OpMkdir("/ring"),
		OpUnlink("/ring/old"),
		OpRmdir("/ring/empty"),
		OpRename("/ring/a", "/ring/b"),
		OpLink("/ring/b", "/ring/c"),
	}
}

func TestBatchCodecRoundTripEveryOp(t *testing.T) {
	ops := batchableOps()
	ws := make([]WriteOp, len(ops))
	for i, op := range ops {
		if !IsBatchableOp(op.Num()) {
			t.Fatalf("constructor produced non-batchable op %s", OpName(op.Num()))
		}
		ws[i] = op.w
		ws[i].PID = 42
	}
	frame, payload := EncodeBatch(42, ws)
	got, err := DecodeBatch(frame, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ws) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ws))
	}
	for i := range ws {
		if !reflect.DeepEqual(normalizeOp(got[i]), normalizeOp(ws[i])) {
			t.Errorf("op %d (%s) round trip:\n got %+v\nwant %+v",
				i, OpName(ws[i].Num), got[i], ws[i])
		}
	}
}

func TestBatchCodecStampsFramePID(t *testing.T) {
	// The PID travels once in the frame; whatever the payload claimed,
	// decoded ops carry the frame's identity.
	ws := []WriteOp{{Num: NumWrite, PID: 999, FD: 3, Data: []byte("x")}}
	frame, payload := EncodeBatch(7, ws)
	got, err := DecodeBatch(frame, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].PID != 7 {
		t.Errorf("decoded PID = %d, want frame PID 7", got[0].PID)
	}
}

func TestBatchCodecRejectsCorruptCounts(t *testing.T) {
	frame, payload := EncodeBatch(1, []WriteOp{{Num: NumClose, FD: 3}})
	frame.Args[1] = 5 // frame/payload count mismatch
	if _, err := DecodeBatch(frame, payload); err == nil {
		t.Error("count mismatch decoded without error")
	}
	frame2, payload2 := EncodeBatch(1, []WriteOp{{Num: NumClose, FD: 3}})
	if _, err := DecodeBatch(frame2, payload2[:len(payload2)-3]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeBatch(marshal.SyscallFrame{Num: NumWrite}, nil); err == nil {
		t.Error("non-batch frame decoded as batch")
	}
}

func TestBatchRespCodecRoundTrip(t *testing.T) {
	comps := []Completion{
		{Op: NumOpen, Errno: EOK, Val: 3},
		{Op: NumRead, Errno: EOK, Val: 5, Data: []byte("hello")},
		{Op: NumWrite, Errno: EBADF},
		{Op: NumBatch, Errno: ENOSYS},
	}
	ret, payload := EncodeBatchResp(comps, EOK)
	got, errno, err := DecodeBatchResp(ret, payload)
	if err != nil || errno != EOK {
		t.Fatalf("decode: %v errno %v", err, errno)
	}
	for i := range comps {
		want := comps[i]
		if len(want.Data) == 0 {
			want.Data = nil
		}
		g := got[i]
		if len(g.Data) == 0 {
			g.Data = nil
		}
		if !reflect.DeepEqual(g, want) {
			t.Errorf("completion %d round trip: got %+v want %+v", i, g, want)
		}
	}
	// Batch-level errno survives with an empty queue.
	ret2, p2 := EncodeBatchResp(nil, EINVAL)
	got2, errno2, err := DecodeBatchResp(ret2, p2)
	if err != nil || errno2 != EINVAL || len(got2) != 0 {
		t.Errorf("empty queue: %v %v %v", got2, errno2, err)
	}
}

func TestSubmitBatchFlow(t *testing.T) {
	_, s := newSysPair(t)
	comps, e := s.SubmitWait([]Op{
		OpMkdir("/ring"),
		OpOpen("/ring/f", OCreate|ORdWr),
	})
	if e != EOK {
		t.Fatal(e)
	}
	fd := fs.FD(comps[1].Val)
	if comps[0].Errno != EOK || comps[1].Errno != EOK {
		t.Fatalf("setup completions: %+v", comps)
	}

	comps, e = s.SubmitWait([]Op{
		OpWrite(fd, []byte("hello ")),
		OpWrite(fd, []byte("ring")),
		OpSeek(fd, 0, fs.SeekSet),
		OpRead(fd, 10),
		OpTruncate(fd, 5),
		OpClose(fd),
	})
	if e != EOK {
		t.Fatal(e)
	}
	wantVals := []uint64{6, 4, 0, 10, 0, 0}
	for i, c := range comps {
		if c.Errno != EOK {
			t.Fatalf("completion %d (%s): %v", i, OpName(c.Op), c.Errno)
		}
		if c.Val != wantVals[i] {
			t.Errorf("completion %d (%s): val %d, want %d", i, OpName(c.Op), c.Val, wantVals[i])
		}
	}
	if string(comps[3].Data) != "hello ring" {
		t.Errorf("batched read data = %q", comps[3].Data)
	}
	if err := s.ContractErr(); err != nil {
		t.Fatalf("contract violation on a correct kernel: %v", err)
	}
}

func TestSubmitEmptyAndAsync(t *testing.T) {
	_, s := newSysPair(t)
	if comps, err := s.Submit(nil).Wait(); err != ErrBatchEmpty || comps != nil {
		t.Errorf("empty submit = %v, %v (want ErrBatchEmpty)", comps, err)
	}
	// Async: the caller may do work between Submit and Wait.
	fd, e := s.Open("/async", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	b := s.Submit([]Op{OpWrite(fd, []byte("deferred"))})
	comps, err := b.Wait()
	if err != nil || comps[0].Errno != EOK || comps[0].Val != 8 {
		t.Fatalf("async batch: %+v %v", comps, err)
	}
	if err := s.ContractErr(); err != nil {
		t.Fatal(err)
	}
}

func TestWritevReadv(t *testing.T) {
	_, s := newSysPair(t)
	fd, e := s.Open("/vec", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	n, e := s.Writev(fd, [][]byte{[]byte("alpha "), []byte("beta "), []byte("gamma")})
	if e != EOK || n != 16 {
		t.Fatalf("writev = %d, %v", n, e)
	}
	if _, e := s.Seek(fd, 0, fs.SeekSet); e != EOK {
		t.Fatal(e)
	}
	bufs := [][]byte{make([]byte, 6), make([]byte, 5), make([]byte, 32)}
	n, e = s.Readv(fd, bufs)
	if e != EOK || n != 16 {
		t.Fatalf("readv = %d, %v", n, e)
	}
	if got := string(bufs[0]) + string(bufs[1]) + string(bufs[2][:5]); got != "alpha beta gamma" {
		t.Errorf("readv bytes = %q", got)
	}
	if err := s.ContractErr(); err != nil {
		t.Fatal(err)
	}
}

// batchCorruptingHandler flips a byte in the k-th completion's read
// data — a kernel that corrupts exactly one op inside a batch.
type batchCorruptingHandler struct {
	directHandler
	corruptIdx int
}

func (h *batchCorruptingHandler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	ret, out := h.directHandler.Syscall(frame, payload)
	if frame.Num != NumBatch {
		return ret, out
	}
	comps, errno, err := DecodeBatchResp(ret, out)
	if err != nil || errno != EOK || h.corruptIdx >= len(comps) {
		return ret, out
	}
	if c := &comps[h.corruptIdx]; len(c.Data) > 0 {
		c.Data[0] ^= 0xff
	}
	return EncodeBatchResp(comps, errno)
}

func TestBatchContractViolationDoesNotCorruptNeighbours(t *testing.T) {
	// Regression: a contract violation on op k must be detected AND the
	// completions for ops != k must come back untouched.
	k := newTestKernel()
	h := &batchCorruptingHandler{directHandler: directHandler{k: k}, corruptIdx: 2}
	s := NewSys(proc.InitPID, h)
	s.EnableContract(k)

	fd, e := s.Open("/victim", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	if _, e := s.Write(fd, []byte("abcdefgh")); e != EOK {
		t.Fatal(e)
	}
	if _, e := s.Seek(fd, 0, fs.SeekSet); e != EOK {
		t.Fatal(e)
	}
	if err := s.ContractErr(); err != nil {
		t.Fatalf("violation before the batch: %v", err)
	}

	comps, e := s.SubmitWait([]Op{
		OpRead(fd, 2), // "ab"
		OpRead(fd, 2), // "cd"
		OpRead(fd, 2), // "ef" -> corrupted to xf
		OpRead(fd, 2), // "gh"
	})
	if e != EOK {
		t.Fatal(e)
	}
	if err := s.ContractErr(); err == nil {
		t.Fatal("corrupted batched read passed the contract check")
	}
	want := []string{"ab", "cd", "", "gh"}
	for i, c := range comps {
		if i == 2 {
			continue // the corrupted op
		}
		if c.Errno != EOK || string(c.Data) != want[i] {
			t.Errorf("completion %d corrupted by neighbour's violation: %+v", i, c)
		}
	}
	if !bytes.Equal(comps[2].Data, []byte{'e' ^ 0xff, 'f'}) {
		t.Errorf("corrupted completion data = %q", comps[2].Data)
	}
}

func TestBatchChecksCleanKernelAcrossShapes(t *testing.T) {
	// Mixed batches on a correct kernel never trip the checker, even the
	// degraded shapes (mid-batch opens, namespace ops, aliasing).
	_, s := newSysPair(t)
	if e := s.Mkdir("/d"); e != EOK {
		t.Fatal(e)
	}
	fd, e := s.Open("/d/f", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	comps, e := s.SubmitWait([]Op{
		OpWrite(fd, []byte("0123456789")),
		OpOpen("/d/f", ORdOnly), // mid-batch open: alias of fd
		OpSeek(fd, 2, fs.SeekSet),
		OpRead(fd, 4),
		OpLink("/d/f", "/d/g"),
		OpRename("/d/g", "/d/h"),
		OpUnlink("/d/h"),
	})
	if e != EOK {
		t.Fatal(e)
	}
	for i, c := range comps {
		if c.Errno != EOK {
			t.Fatalf("completion %d (%s): %v", i, OpName(c.Op), c.Errno)
		}
	}
	if string(comps[3].Data) != "2345" {
		t.Errorf("read after seek = %q", comps[3].Data)
	}
	if e := s.Close(fs.FD(comps[1].Val)); e != EOK {
		t.Fatal(e)
	}
	if err := s.ContractErr(); err != nil {
		t.Fatalf("false positive on a correct kernel: %v", err)
	}
}

func TestSubmitValidatesOpenFlags(t *testing.T) {
	_, s := newSysPair(t)
	if _, e := s.SubmitWait([]Op{OpOpen("/x", OWrOnly|ORdWr)}); e != EINVAL {
		t.Errorf("batched open with contradictory modes: %v, want EINVAL", e)
	}
}

func TestOpenFlagValidate(t *testing.T) {
	cases := []struct {
		f    OpenFlag
		want Errno
	}{
		{ORdOnly, EOK},
		{OCreate | ORdWr, EOK},
		{OCreate | ORdWr | OTrunc, EOK},
		{OWrOnly | OAppend, EOK},
		{OTrunc | OAppend, EOK},
		{OWrOnly | ORdWr, EINVAL},
		{ORdOnly | OTrunc, EINVAL},
		{OpenFlag(1 << 20), EINVAL},
	}
	for _, c := range cases {
		if got := c.f.Validate(); got != c.want {
			t.Errorf("Validate(%#x) = %v, want %v", uint64(c.f), got, c.want)
		}
	}
	_, s := newSysPair(t)
	if _, e := s.Open("/x", OWrOnly|ORdWr); e != EINVAL {
		t.Errorf("Sys.Open accepted contradictory modes: %v", e)
	}
	// Kernel-side validation catches hand-rolled frames that skip the
	// user-side check.
	k := newTestKernel()
	r := k.DispatchWrite(WriteOp{Num: NumOpen, PID: proc.InitPID, Path: "/x",
		Flags: uint64(ORdOnly | OTrunc)})
	if r.Errno != EINVAL {
		t.Errorf("kernel accepted ORdOnly|OTrunc: %v", r.Errno)
	}
	if FlagsFromInt(int(fs.OCreate|fs.ORdWr)) != OCreate|ORdWr {
		t.Error("FlagsFromInt does not preserve bits")
	}
}

func TestErrnoErr(t *testing.T) {
	if err := EOK.Err(); err != nil {
		t.Errorf("EOK.Err() = %v", err)
	}
	err := ENOENT.Err()
	if err == nil {
		t.Fatal("ENOENT.Err() = nil")
	}
	var e Errno
	if !errorsAs(err, &e) || e != ENOENT {
		t.Errorf("Err() lost the errno: %v", err)
	}
}

// errorsAs is errors.As without importing errors in this file twice —
// kept tiny and local.
func errorsAs(err error, target *Errno) bool {
	e, ok := err.(Errno)
	if ok {
		*target = e
	}
	return ok
}

func TestSubmitConcurrentWithScalars(t *testing.T) {
	// One Sys handle, scalar calls and async batches in flight together:
	// handler-level serialization (lockedHandler here, ctxMu in core)
	// must keep this safe. The -race CI lane runs this package.
	k := newTestKernel()
	h := &lockedHandler{h: directHandler{k: k}}
	s := NewSys(proc.InitPID, h)
	s.EnableContract(h)
	fd, e := s.Open("/conc", OCreate|ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ops := []Op{
					OpWrite(fd, []byte(fmt.Sprintf("g%d-%d", g, i))),
					OpSeek(fd, 0, fs.SeekEnd),
				}
				if _, e := s.SubmitWait(ops); e != EOK {
					t.Errorf("goroutine %d batch %d: %v", g, i, e)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if e := s.Close(fd); e != EOK {
		t.Fatal(e)
	}
}
