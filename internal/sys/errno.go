// Package sys implements the paper's §3 client application contract:
// the syscall surface of the OS as (1) a sequential kernel state
// machine (Kernel) whose operations are the syscalls, designed for NR
// replication by internal/core; (2) the user-space Sys handle whose
// methods marshal arguments across the simulated user/kernel boundary
// (the §3 marshalling obligation, via internal/marshal); and (3) the
// contract checker, which validates every call against the high-level
// spec relations through the view abstraction — the executable form of
// the paper's `ensures read_spec(old(sys).view(), sys.view(), ...)`.
package sys

import (
	"errors"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/mm"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
)

// Errno is the kernel error number crossing the syscall boundary.
type Errno uint64

// Errno values (subset of POSIX, plus simulation-specific ones).
const (
	EOK        Errno = 0
	EPERM      Errno = 1
	ENOENT     Errno = 2
	ESRCH      Errno = 3
	EIO        Errno = 5
	EBADF      Errno = 9
	ECHILD     Errno = 10
	EAGAIN     Errno = 11
	ENOMEM     Errno = 12
	EFAULT     Errno = 14
	EBUSY      Errno = 16
	EEXIST     Errno = 17
	ENOTDIR    Errno = 20
	EISDIR     Errno = 21
	EINVAL     Errno = 22
	ENFILE     Errno = 23
	ENOSYS     Errno = 38
	ENOTEMPTY  Errno = 39
	EADDRINUSE Errno = 98
)

func (e Errno) String() string {
	switch e {
	case EOK:
		return "OK"
	case EPERM:
		return "EPERM"
	case ENOENT:
		return "ENOENT"
	case ESRCH:
		return "ESRCH"
	case EIO:
		return "EIO"
	case EBADF:
		return "EBADF"
	case ECHILD:
		return "ECHILD"
	case EAGAIN:
		return "EAGAIN"
	case ENOMEM:
		return "ENOMEM"
	case EFAULT:
		return "EFAULT"
	case EBUSY:
		return "EBUSY"
	case EEXIST:
		return "EEXIST"
	case ENOTDIR:
		return "ENOTDIR"
	case EISDIR:
		return "EISDIR"
	case EINVAL:
		return "EINVAL"
	case ENFILE:
		return "ENFILE"
	case ENOSYS:
		return "ENOSYS"
	case ENOTEMPTY:
		return "ENOTEMPTY"
	case EADDRINUSE:
		return "EADDRINUSE"
	}
	return "errno(" + itoa(uint64(e)) + ")"
}

// Error makes Errno usable as an error; EOK must never be returned as
// an error value.
func (e Errno) Error() string { return "sys: " + e.String() }

// Err converts an errno to the idiomatic Go error shape: nil on
// success, the Errno itself otherwise. `if err := e.Err(); err != nil`
// replaces the `if e != EOK` comparison at call sites that propagate
// errors rather than branch on specific errno values.
func (e Errno) Err() error {
	if e == EOK {
		return nil
	}
	return e
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// ErrnoFromError folds subsystem errors into errnos — the kernel's
// error ABI.
func ErrnoFromError(err error) Errno {
	switch {
	case err == nil:
		return EOK
	case errors.Is(err, fs.ErrNotExist):
		return ENOENT
	case errors.Is(err, fs.ErrExist):
		return EEXIST
	case errors.Is(err, fs.ErrNotDir):
		return ENOTDIR
	case errors.Is(err, fs.ErrIsDir):
		return EISDIR
	case errors.Is(err, fs.ErrNotEmpty):
		return ENOTEMPTY
	case errors.Is(err, fs.ErrBadFD), errors.Is(err, fs.ErrNotLocked):
		return EBADF
	case errors.Is(err, fs.ErrPermission):
		return EPERM
	case errors.Is(err, fs.ErrInval), errors.Is(err, fs.ErrNameTooLong):
		return EINVAL
	case errors.Is(err, fs.ErrBlockRange), errors.Is(err, fs.ErrBlockSize):
		return EIO
	case errors.Is(err, proc.ErrNoProcess):
		return ESRCH
	case errors.Is(err, proc.ErrNoChildren):
		return ECHILD
	case errors.Is(err, proc.ErrWouldBlock):
		return EAGAIN
	case errors.Is(err, proc.ErrZombie), errors.Is(err, proc.ErrInit):
		return EPERM
	case errors.Is(err, pt.ErrAlreadyMapped), errors.Is(err, pt.ErrHugeConflict):
		return EEXIST
	case errors.Is(err, pt.ErrNotMapped):
		return EFAULT
	case errors.Is(err, pt.ErrMisaligned), errors.Is(err, pt.ErrNonCanonical),
		errors.Is(err, pt.ErrBadPageSize):
		return EINVAL
	case errors.Is(err, pt.ErrOutOfMemory), errors.Is(err, mm.ErrNoMemory),
		errors.Is(err, mm.ErrVSpaceFull):
		return ENOMEM
	case errors.Is(err, mm.ErrVSpaceOverlap):
		return EEXIST
	case errors.Is(err, mm.ErrVSpaceBadRange), errors.Is(err, mm.ErrBadOrder):
		return EINVAL
	case errors.Is(err, netstack.ErrPortInUse):
		return EADDRINUSE
	case errors.Is(err, netstack.ErrWouldBlock):
		return EAGAIN
	case errors.Is(err, netstack.ErrTooBig):
		return EINVAL
	case errors.Is(err, netstack.ErrNoSocket):
		return EBADF
	default:
		return EINVAL
	}
}
