package sys

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of syscall-layer VCs:
// descriptor isolation between processes, kernel determinism (two
// replicas fed the same op log stay bit-equal — the NR requirement),
// the write/seek spec relations on the full path, process lifecycle
// accounting, and errno totality.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "sys", Name: "fd-isolation-between-processes", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				spawn := func() proc.PID {
					return proc.PID(k.DispatchWrite(WriteOp{Num: NumSpawn, PID: proc.InitPID, Name: "p"}).Val)
				}
				p1, p2 := spawn(), spawn()
				// p1 opens a file; p2 must not be able to use p1's fd
				// value (each process has its own table, so the same
				// numeric fd either fails or refers to p2's own files).
				r1 := k.DispatchWrite(WriteOp{Num: NumOpen, PID: p1, Path: "/secret", Flags: fs.OCreate | fs.ORdWr})
				if r1.Errno != EOK {
					return fmt.Errorf("open: %v", r1.Errno)
				}
				k.DispatchWrite(WriteOp{Num: NumWrite, PID: p1, FD: fs.FD(r1.Val), Data: []byte("p1 only")})
				leak := k.DispatchWrite(WriteOp{Num: NumRead, PID: p2, FD: fs.FD(r1.Val), Len: 16})
				if leak.Errno == EOK && len(leak.Data) > 0 {
					return fmt.Errorf("process %d read through process %d's descriptor", p2, p1)
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "kernel-replica-determinism", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// The NR requirement stated on Kernel's doc comment,
				// checked directly: identical op logs yield identical
				// responses and states on two independent replicas.
				kA := newTestKernel()
				kB := newTestKernel()
				var pids []proc.PID
				pids = append(pids, proc.InitPID)
				for i := 0; i < 800; i++ {
					op := randomKernelOp(r, pids)
					ra := kA.DispatchWrite(op)
					rb := kB.DispatchWrite(op)
					if ra.Errno != rb.Errno || ra.Val != rb.Val {
						return fmt.Errorf("op %d (%d) diverged: (%v,%d) vs (%v,%d)",
							i, op.Num, ra.Errno, ra.Val, rb.Errno, rb.Val)
					}
					if op.Num == NumSpawn && ra.Errno == EOK {
						pids = append(pids, proc.PID(ra.Val))
					}
				}
				if !fs.Equal(kA.FS(), kB.FS()) {
					return fmt.Errorf("filesystems diverged after identical logs")
				}
				if kA.Procs().Len() != kB.Procs().Len() {
					return fmt.Errorf("process tables diverged")
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "write-seek-specs-full-path", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				s := NewSys(proc.InitPID, &directHandler{k: k})
				s.EnableContract(k)
				fd, e := s.Open("/wss", fs.OCreate|fs.ORdWr)
				if e != EOK {
					return fmt.Errorf("open: %v", e)
				}
				for i := 0; i < 300; i++ {
					switch r.Intn(3) {
					case 0:
						data := make([]byte, r.Intn(200))
						r.Read(data)
						if _, e := s.Write(fd, data); e != EOK {
							return fmt.Errorf("write: %v", e)
						}
					case 1:
						if _, e := s.Seek(fd, int64(r.Intn(400))-100, r.Intn(3)); e != EOK && e != EINVAL {
							return fmt.Errorf("seek: %v", e)
						}
					default:
						if _, e := s.Read(fd, make([]byte, r.Intn(200))); e != EOK {
							return fmt.Errorf("read: %v", e)
						}
					}
				}
				return s.ContractErr()
			}},
		verifier.Obligation{Module: "sys", Name: "process-lifecycle-accounting", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				live := map[proc.PID]bool{}
				for i := 0; i < 400; i++ {
					switch r.Intn(3) {
					case 0:
						resp := k.DispatchWrite(WriteOp{Num: NumSpawn, PID: proc.InitPID, Name: "x"})
						if resp.Errno == EOK {
							live[proc.PID(resp.Val)] = true
						}
					case 1:
						for pid := range live {
							if k.DispatchWrite(WriteOp{Num: NumExit, PID: pid}).Errno != EOK {
								return fmt.Errorf("exit(%d) failed", pid)
							}
							delete(live, pid)
							break
						}
					default:
						resp := k.DispatchWrite(WriteOp{Num: NumWaitPID, PID: proc.InitPID})
						if resp.Errno != EOK && resp.Errno != EAGAIN && resp.Errno != ECHILD {
							return fmt.Errorf("wait: %v", resp.Errno)
						}
					}
					if err := k.Procs().CheckInvariant(); err != nil {
						return fmt.Errorf("iter %d: %w", i, err)
					}
				}
				// Every live process has an address space and fd table.
				for pid := range live {
					if _, ok := k.Root(pid); !ok {
						return fmt.Errorf("live pid %d has no address space", pid)
					}
					if _, ok := k.ViewFDs(pid); !ok {
						return fmt.Errorf("live pid %d has no fd table", pid)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "errno-mapping-total", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Every subsystem error folds to a non-OK errno, and nil
				// folds to EOK.
				if ErrnoFromError(nil) != EOK {
					return fmt.Errorf("nil -> %v", ErrnoFromError(nil))
				}
				errs := []error{
					fs.ErrNotExist, fs.ErrExist, fs.ErrNotDir, fs.ErrIsDir,
					fs.ErrNotEmpty, fs.ErrBadFD, fs.ErrNotLocked, fs.ErrPermission,
					fs.ErrInval, fs.ErrNameTooLong,
					proc.ErrNoProcess, proc.ErrNoChildren, proc.ErrWouldBlock,
					proc.ErrZombie, proc.ErrInit,
					fmt.Errorf("wrapped: %w", fs.ErrNotExist),
					fmt.Errorf("opaque error"),
				}
				for _, err := range errs {
					if ErrnoFromError(err) == EOK {
						return fmt.Errorf("error %v folded to EOK", err)
					}
				}
				if ErrnoFromError(fmt.Errorf("x: %w", fs.ErrNotExist)) != ENOENT {
					return fmt.Errorf("wrapped ErrNotExist not ENOENT")
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "mmap-regions-never-overlap", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				pid := proc.PID(k.DispatchWrite(WriteOp{Num: NumSpawn, PID: proc.InitPID, Name: "m"}).Val)
				type region struct {
					base mmu.VAddr
					size uint64
				}
				var regions []region
				for i := 0; i < 200; i++ {
					if r.Intn(2) == 0 || len(regions) == 0 {
						pages := uint64(1 + r.Intn(8))
						resp := k.DispatchWrite(WriteOp{Num: NumMMap, PID: pid,
							Size: pages * mmu.L1PageSize, Frames: testFrames(k, int(pages))})
						if resp.Errno != EOK {
							return fmt.Errorf("mmap: %v", resp.Errno)
						}
						regions = append(regions, region{mmu.VAddr(resp.Val), pages * mmu.L1PageSize})
					} else {
						j := r.Intn(len(regions))
						resp := k.DispatchWrite(WriteOp{Num: NumMUnmap, PID: pid, VA: regions[j].base})
						if resp.Errno != EOK {
							return fmt.Errorf("munmap: %v", resp.Errno)
						}
						regions = append(regions[:j], regions[j+1:]...)
					}
					for a := 0; a < len(regions); a++ {
						for b := a + 1; b < len(regions); b++ {
							ra, rb := regions[a], regions[b]
							if uint64(ra.base) < uint64(rb.base)+rb.size &&
								uint64(rb.base) < uint64(ra.base)+ra.size {
								return fmt.Errorf("regions overlap: %#x+%#x and %#x+%#x",
									uint64(ra.base), ra.size, uint64(rb.base), rb.size)
							}
						}
					}
				}
				return nil
			}},
	)
}

// randomKernelOp builds a random deterministic kernel op over known
// pids (no local ops, no frame-carrying ops).
func randomKernelOp(r *rand.Rand, pids []proc.PID) WriteOp {
	pid := pids[r.Intn(len(pids))]
	paths := []string{"/a", "/b", "/d/x", "/d"}
	switch r.Intn(8) {
	case 0:
		return WriteOp{Num: NumOpen, PID: pid, Path: paths[r.Intn(len(paths))], Flags: fs.OCreate | fs.ORdWr}
	case 1:
		data := make([]byte, r.Intn(64))
		r.Read(data)
		return WriteOp{Num: NumWrite, PID: pid, FD: fs.FD(3 + r.Intn(4)), Data: data}
	case 2:
		return WriteOp{Num: NumRead, PID: pid, FD: fs.FD(3 + r.Intn(4)), Len: uint64(r.Intn(64))}
	case 3:
		return WriteOp{Num: NumSeek, PID: pid, FD: fs.FD(3 + r.Intn(4)), Off: int64(r.Intn(100)), Whence: r.Intn(3)}
	case 4:
		return WriteOp{Num: NumMkdir, PID: pid, Path: paths[r.Intn(len(paths))]}
	case 5:
		return WriteOp{Num: NumUnlink, PID: pid, Path: paths[r.Intn(len(paths))]}
	case 6:
		return WriteOp{Num: NumSpawn, PID: pid, Name: "child"}
	default:
		return WriteOp{Num: NumClose, PID: pid, FD: fs.FD(3 + r.Intn(4))}
	}
}
