package sys

import (
	"sort"

	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
)

// The replicated socket table: the kernel-state half of the network
// path. The table owns what must be agreed on and logged — which
// (PID, socket id) exists, which port it holds, the port-uniqueness
// invariant, and the receive budget — while the device half (NIC
// transmit, interrupt-fed receive queues) stays in core. Applying the
// same socktab op log to two replicas yields identical tables: the one
// non-deterministic input, the ephemeral port, is resolved device-side
// by core *before* the bind is logged, the same idiom mmap uses for
// data frames.
//
// Sharded composition: table ops route to the process shard owning the
// PID, whose table covers only its own processes. Port uniqueness is
// then global state, so the port *namespace* (portNS) is pinned to
// process shard 0 — like the process tree — and core's router acquires
// the port there before logging the bind on the owner shard, releasing
// it on close/exit. In the monolithic kernel the local port check alone
// is global, and the namespace half goes unused.

// sockEntry is one socket's replicated state.
type sockEntry struct {
	Port   uint16
	Budget uint32 // receive budget (0 = stack default); informational for view()
}

// sockOwner records which socket holds a port in this kernel's table.
type sockOwner struct {
	PID proc.PID
	ID  uint64
}

// sockTab is the socket table of one kernel replica.
type sockTab struct {
	socks  map[proc.PID]map[uint64]sockEntry
	ports  map[uint16]sockOwner // ports owned by sockets in this table
	portNS map[uint16]proc.PID  // global namespace reservations (shard 0)
	nextID uint64
}

func newSockTab() *sockTab {
	return &sockTab{
		socks:  make(map[proc.PID]map[uint64]sockEntry),
		ports:  make(map[uint16]sockOwner),
		portNS: make(map[uint16]proc.PID),
	}
}

// dispatchSockWrite serves the socket-table mutating ops.
func (k *Kernel) dispatchSockWrite(op WriteOp) Resp {
	t := k.socks
	switch op.Num {
	case NumSockTabBind:
		// op.Port is the device-resolved concrete port (never 0: core
		// resolves ephemeral binds against the stack before logging).
		if op.Port == 0 {
			return Resp{Errno: EINVAL}
		}
		if _, used := t.ports[op.Port]; used {
			return Resp{Errno: EADDRINUSE}
		}
		t.nextID++
		id := t.nextID
		if t.socks[op.PID] == nil {
			t.socks[op.PID] = make(map[uint64]sockEntry)
		}
		t.socks[op.PID][id] = sockEntry{Port: op.Port, Budget: op.Word}
		t.ports[op.Port] = sockOwner{PID: op.PID, ID: id}
		return ok(id)

	case NumSockTabSend:
		ent, okE := t.socks[op.PID][op.Sock]
		if !okE {
			return Resp{Errno: EBADF}
		}
		if op.Len > uint64(netstack.MaxPayload) {
			return Resp{Errno: EINVAL}
		}
		_ = ent
		// The accepted byte count is the logged verdict, like the write
		// path — the device transmit in core is fire-and-forget (UDP
		// semantics; loss is the network's business, not the table's).
		return ok(op.Len)

	case NumSockTabClose:
		ent, okE := t.socks[op.PID][op.Sock]
		if !okE {
			// Double close: the entry is already gone. Well-defined EBADF,
			// never a panic and never another socket's teardown.
			return Resp{Errno: EBADF}
		}
		delete(t.socks[op.PID], op.Sock)
		if len(t.socks[op.PID]) == 0 {
			delete(t.socks, op.PID)
		}
		if own, used := t.ports[ent.Port]; used && own.PID == op.PID && own.ID == op.Sock {
			delete(t.ports, ent.Port)
		}
		return ok(uint64(ent.Port))

	case NumSockPortAcquire:
		if op.Port == 0 {
			return Resp{Errno: EINVAL}
		}
		if _, used := t.portNS[op.Port]; used {
			return Resp{Errno: EADDRINUSE}
		}
		t.portNS[op.Port] = op.PID
		return ok(uint64(op.Port))

	case NumSockPortRelease:
		delete(t.portNS, op.Port)
		return ok(0)
	}
	return Resp{Errno: ENOSYS}
}

// dispatchSockRead serves the socket-table read-only ops.
func (k *Kernel) dispatchSockRead(op ReadOp) Resp {
	switch op.Num {
	case NumSockTabGet:
		ent, okE := k.socks.socks[op.PID][op.Sock]
		if !okE {
			return Resp{Errno: EBADF}
		}
		return Resp{Errno: EOK, Val: uint64(ent.Port), Off: uint64(ent.Budget)}
	}
	return Resp{Errno: ENOSYS}
}

// detachSocks tears down a PID's socket-table state (the socket half of
// exit/detach), returning the freed ports so the router can release
// their global-namespace reservations on process shard 0 and core can
// close the device sockets.
func (t *sockTab) detachSocks(pid proc.PID) []uint16 {
	entries := t.socks[pid]
	if len(entries) == 0 {
		return nil
	}
	ports := make([]uint16, 0, len(entries))
	for id, ent := range entries {
		if own, used := t.ports[ent.Port]; used && own.PID == pid && own.ID == id {
			delete(t.ports, ent.Port)
			ports = append(ports, ent.Port)
		}
	}
	delete(t.socks, pid)
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return ports
}

// SockTabView is the §3 view() abstraction of the socket table for the
// contract checker and the refinement obligations.
type SockTabView struct {
	// Socks maps socket id → bound port for one PID.
	Socks map[uint64]uint16
	// Ports is every port owned in this kernel's table, with its owner.
	Ports map[uint16]struct {
		PID proc.PID
		ID  uint64
	}
}

// ViewSockTab snapshots the socket table for a PID (plus the full port
// ownership map) — the replicated-state side of the socket refinement.
func (k *Kernel) ViewSockTab(pid proc.PID) SockTabView {
	v := SockTabView{
		Socks: make(map[uint64]uint16),
		Ports: make(map[uint16]struct {
			PID proc.PID
			ID  uint64
		}),
	}
	for id, ent := range k.socks.socks[pid] {
		v.Socks[id] = ent.Port
	}
	for port, own := range k.socks.ports {
		v.Ports[port] = struct {
			PID proc.PID
			ID  uint64
		}{own.PID, own.ID}
	}
	return v
}
