package sys

import (
	"fmt"
	"math/rand"
	"reflect"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/verifier"
)

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// registerRingObligations: the batched submission ring discharges the
// same §3 marshalling obligation as the scalar path (batch vectors
// round-trip exactly), and batching is a pure amortization — a batch
// crossing is observationally identical to issuing its ops one by one.
func registerRingObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "sys", Name: "batch-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 200; i++ {
					pid := proc.PID(r.Uint64())
					n := 1 + r.Intn(48)
					ops := make([]WriteOp, n)
					for j := range ops {
						ops[j] = randomWriteOp(r)
						ops[j].PID = pid
					}
					frame, payload := EncodeBatch(pid, ops)
					got, err := DecodeBatch(frame, payload)
					if err != nil {
						return err
					}
					if len(got) != n {
						return fmt.Errorf("batch round trip: %d ops in, %d out", n, len(got))
					}
					for j := range ops {
						if !reflect.DeepEqual(normalizeOp(ops[j]), normalizeOp(got[j])) {
							return fmt.Errorf("batch op %d mismatch:\n  in  %+v\n  out %+v",
								j, ops[j], got[j])
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "batch-resp-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 200; i++ {
					n := r.Intn(48)
					comps := make([]Completion, n)
					for j := range comps {
						comps[j] = Completion{
							Op:    uint64(r.Intn(int(MaxOpNum) + 1)),
							Errno: Errno(r.Intn(100)),
							Val:   r.Uint64(),
						}
						if r.Intn(2) == 0 {
							comps[j].Data = randBytes(r, r.Intn(64))
						}
					}
					errno := Errno(r.Intn(3))
					ret, payload := EncodeBatchResp(comps, errno)
					got, gotErrno, err := DecodeBatchResp(ret, payload)
					if err != nil {
						return err
					}
					if gotErrno != errno || len(got) != n {
						return fmt.Errorf("batch resp header: errno %v/%v count %d/%d",
							gotErrno, errno, len(got), n)
					}
					for j := range comps {
						a, b := comps[j], got[j]
						if len(a.Data) == 0 {
							a.Data = nil
						}
						if len(b.Data) == 0 {
							b.Data = nil
						}
						if !reflect.DeepEqual(a, b) {
							return fmt.Errorf("completion %d mismatch: %+v vs %+v", j, a, b)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "batch-refines-sequential", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Two identical kernels: one drains random file-op
				// batches through the NumBatch crossing, the other
				// dispatches the same ops one by one. Completions and
				// the resulting FD views must coincide — batching is an
				// amortization, never a semantic change.
				for trial := 0; trial < 25; trial++ {
					kBatch, kSeq := newTestKernel(), newTestKernel()
					sBatch := NewSys(proc.InitPID, &directHandler{k: kBatch})
					ops := randomFileOps(r, 1+r.Intn(32))

					comps, e := sBatch.SubmitWait(ops)
					if e != EOK {
						return fmt.Errorf("batch submit: %v", e)
					}
					for i, op := range ops {
						w := op.w
						w.PID = proc.InitPID
						want := BatchCompletion(w, kSeq.DispatchWrite(w))
						got := comps[i]
						if len(want.Data) == 0 {
							want.Data = nil
						}
						if len(got.Data) == 0 {
							got.Data = nil
						}
						if !reflect.DeepEqual(got, want) {
							return fmt.Errorf("trial %d op %d (%s): batch %+v, sequential %+v",
								trial, i, OpName(w.Num), got, want)
						}
					}
					vb, okb := kBatch.ViewFDs(proc.InitPID)
					vs, oks := kSeq.ViewFDs(proc.InitPID)
					if okb != oks || !reflect.DeepEqual(vb, vs) {
						return fmt.Errorf("trial %d: FD views diverge after batch vs sequential", trial)
					}
				}
				return nil
			}},
	)
}

// randomFileOps builds a random batch over a tiny path set so opens,
// writes, and namespace ops collide interestingly.
func randomFileOps(r *rand.Rand, n int) []Op {
	paths := []string{"/a", "/b", "/c", "/d/x", "/d"}
	path := func() string { return paths[r.Intn(len(paths))] }
	fd := func() fs.FD { return fs.FD(3 + r.Intn(6)) }
	ops := make([]Op, n)
	for i := range ops {
		switch r.Intn(11) {
		case 0:
			ops[i] = OpOpen(path(), OCreate|ORdWr)
		case 1:
			ops[i] = OpClose(fd())
		case 2:
			ops[i] = OpRead(fd(), uint64(r.Intn(32)))
		case 3:
			ops[i] = OpWrite(fd(), randBytes(r, r.Intn(32)))
		case 4:
			ops[i] = OpSeek(fd(), int64(r.Intn(16)), r.Intn(3))
		case 5:
			ops[i] = OpTruncate(fd(), uint64(r.Intn(64)))
		case 6:
			ops[i] = OpMkdir(path())
		case 7:
			ops[i] = OpUnlink(path())
		case 8:
			ops[i] = OpRmdir(path())
		case 9:
			ops[i] = OpRename(path(), path())
		default:
			ops[i] = OpLink(path(), path())
		}
	}
	return ops
}
