package sys

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/verifier"
)

// gatedBatchHandler wraps a handler and holds every NumBatch crossing
// until a token arrives on gate — the instrument that places a
// completion post at a chosen point of a waiter's park protocol (and
// that tests reuse to freeze batches in flight deterministically).
type gatedBatchHandler struct {
	inner Handler
	gate  chan struct{}
}

func (g *gatedBatchHandler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	if frame.Num == NumBatch {
		<-g.gate
	}
	return g.inner.Syscall(frame, payload)
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

// registerRingObligations: the batched submission ring discharges the
// same §3 marshalling obligation as the scalar path (batch vectors
// round-trip exactly), and batching is a pure amortization — a batch
// crossing is observationally identical to issuing its ops one by one.
func registerRingObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "sys", Name: "batch-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 200; i++ {
					pid := proc.PID(r.Uint64())
					n := 1 + r.Intn(48)
					ops := make([]WriteOp, n)
					for j := range ops {
						ops[j] = randomWriteOp(r)
						ops[j].PID = pid
					}
					frame, payload := EncodeBatch(pid, ops)
					got, err := DecodeBatch(frame, payload)
					if err != nil {
						return err
					}
					if len(got) != n {
						return fmt.Errorf("batch round trip: %d ops in, %d out", n, len(got))
					}
					for j := range ops {
						if !reflect.DeepEqual(normalizeOp(ops[j]), normalizeOp(got[j])) {
							return fmt.Errorf("batch op %d mismatch:\n  in  %+v\n  out %+v",
								j, ops[j], got[j])
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "batch-resp-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 200; i++ {
					n := r.Intn(48)
					comps := make([]Completion, n)
					for j := range comps {
						comps[j] = Completion{
							Op:    uint64(r.Intn(int(MaxOpNum) + 1)),
							Errno: Errno(r.Intn(100)),
							Val:   r.Uint64(),
						}
						if r.Intn(2) == 0 {
							comps[j].Data = randBytes(r, r.Intn(64))
						}
					}
					errno := Errno(r.Intn(3))
					ret, payload := EncodeBatchResp(comps, errno)
					got, gotErrno, err := DecodeBatchResp(ret, payload)
					if err != nil {
						return err
					}
					if gotErrno != errno || len(got) != n {
						return fmt.Errorf("batch resp header: errno %v/%v count %d/%d",
							gotErrno, errno, len(got), n)
					}
					for j := range comps {
						a, b := comps[j], got[j]
						if len(a.Data) == 0 {
							a.Data = nil
						}
						if len(b.Data) == 0 {
							b.Data = nil
						}
						if !reflect.DeepEqual(a, b) {
							return fmt.Errorf("completion %d mismatch: %+v vs %+v", j, a, b)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "batch-refines-sequential", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Two identical kernels: one drains random file-op
				// batches through the NumBatch crossing, the other
				// dispatches the same ops one by one. Completions and
				// the resulting FD views must coincide — batching is an
				// amortization, never a semantic change.
				for trial := 0; trial < 25; trial++ {
					kBatch, kSeq := newTestKernel(), newTestKernel()
					sBatch := NewSys(proc.InitPID, &directHandler{k: kBatch})
					ops := randomFileOps(r, 1+r.Intn(32))

					comps, e := sBatch.SubmitWait(ops)
					if e != EOK {
						return fmt.Errorf("batch submit: %v", e)
					}
					for i, op := range ops {
						w := op.w
						w.PID = proc.InitPID
						want := BatchCompletion(w, kSeq.DispatchWrite(w))
						got := comps[i]
						if len(want.Data) == 0 {
							want.Data = nil
						}
						if len(got.Data) == 0 {
							got.Data = nil
						}
						if !reflect.DeepEqual(got, want) {
							return fmt.Errorf("trial %d op %d (%s): batch %+v, sequential %+v",
								trial, i, OpName(w.Num), got, want)
						}
					}
					vb, okb := kBatch.ViewFDs(proc.InitPID)
					vs, oks := kSeq.ViewFDs(proc.InitPID)
					if okb != oks || !reflect.DeepEqual(vb, vs) {
						return fmt.Errorf("trial %d: FD views diverge after batch vs sequential", trial)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "ring-wait-no-lost-wakeup", Kind: verifier.KindModelCheck,
			Check: func(r *rand.Rand) error {
				// The CQ doorbell's lost-wakeup obligation, checked as an
				// explicit interleaving sweep: drive the completion post
				// into every window of the park protocol —
				//
				//   postStage -1: before the waiter calls Wait at all
				//   parkStagePrepared: after the doorbell ticket is taken,
				//     before the ready re-check
				//   parkStageParking: after the re-check said "not ready",
				//     immediately before the park
				//
				// — and require that Wait always returns the full
				// completion queue. The parking window is the classic
				// lost-wakeup race; the WaitQueue ticket protocol must
				// make the park a no-op when the post already rang the
				// bell. Exactly-once delivery rides along: every op
				// completes once, and a second reap is refused.
				for _, postStage := range []int{-1, parkStagePrepared, parkStageParking} {
					if err := ringWaitSweep(r, postStage); err != nil {
						return fmt.Errorf("post at stage %d: %w", postStage, err)
					}
				}
				return ringWaitChunked(r)
			}},
	)
}

// ringWaitSweep runs one park/post interleaving: a gated kernel holds
// the batch in flight, the waiter advances to the target stage of its
// park protocol, the gate opens and the completion post fully runs,
// and only then does the waiter proceed.
func ringWaitSweep(r *rand.Rand, postStage int) error {
	k := newTestKernel()
	gate := make(chan struct{}, 1)
	s := NewSys(proc.InitPID, &gatedBatchHandler{inner: &directHandler{k: k}, gate: gate})

	fd, e := s.Open("/doorbell", OCreate|ORdWr)
	if e != EOK {
		return fmt.Errorf("open: %v", e)
	}
	n := 1 + r.Intn(8)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = OpWrite(fd, randBytes(r, 1+r.Intn(16)))
	}

	posted := make(chan struct{})
	b := s.NewBatch(SubmitOptions{Wait: WaitBlock, OnComplete: func([]Completion, error) { close(posted) }}).Add(ops...)
	release := func() {
		gate <- struct{}{}
		<-posted // the post (completions + doorbell ring) has fully run
	}
	var once sync.Once
	if postStage >= 0 {
		b.parkHook = func(stage int) {
			if stage == postStage {
				once.Do(release)
			}
		}
	}
	if err := b.Submit(); err != nil {
		return fmt.Errorf("submit: %v", err)
	}
	if postStage < 0 {
		once.Do(release)
	}

	comps, err := b.Wait()
	if err != nil {
		return fmt.Errorf("wait: %v", err)
	}
	if len(comps) != n {
		return fmt.Errorf("wait returned %d of %d completions", len(comps), n)
	}
	for i, c := range comps {
		if c.Errno != EOK || c.Val != uint64(len(ops[i].w.Data)) {
			return fmt.Errorf("completion %d: errno %v val %d, want %d bytes written", i, c.Errno, c.Val, len(ops[i].w.Data))
		}
	}
	if _, err := b.Wait(); err != ErrBatchReaped {
		return fmt.Errorf("second reap: %v, want ErrBatchReaped", err)
	}
	return nil
}

// ringWaitChunked checks the mid-batch doorbell: on a batch longer than
// one submission chunk, a WaitN for the first chunk must return as soon
// as that chunk posts — while the rest of the batch is still gated —
// and the final Wait must deliver every completion exactly once.
func ringWaitChunked(r *rand.Rand) error {
	k := newTestKernel()
	gate := make(chan struct{}, 1)
	s := NewSys(proc.InitPID, &gatedBatchHandler{inner: &directHandler{k: k}, gate: gate})

	fd, e := s.Open("/chunks", OCreate|ORdWr)
	if e != EOK {
		return fmt.Errorf("open: %v", e)
	}
	n := ringChunk + 1 + r.Intn(ringChunk-1)
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = OpWrite(fd, []byte{byte(i)})
	}
	b := s.NewBatch(SubmitOptions{Wait: WaitBlock}).Add(ops...)
	if err := b.Submit(); err != nil {
		return fmt.Errorf("submit: %v", err)
	}

	gate <- struct{}{} // first chunk only; the second crossing stays held
	comps, err := b.WaitN(ringChunk)
	if err != nil {
		return fmt.Errorf("waitN: %v", err)
	}
	if len(comps) < ringChunk || len(comps) >= n {
		return fmt.Errorf("waitN(%d) returned %d completions on a gated %d-op batch", ringChunk, len(comps), n)
	}
	if b.Done() {
		return fmt.Errorf("batch done with its second chunk still gated")
	}

	gate <- struct{}{}
	all, err := b.Wait()
	if err != nil {
		return fmt.Errorf("final wait: %v", err)
	}
	if len(all) != n {
		return fmt.Errorf("final wait returned %d of %d completions", len(all), n)
	}
	for i, c := range all {
		if c.Errno != EOK || c.Val != 1 {
			return fmt.Errorf("completion %d: errno %v val %d", i, c.Errno, c.Val)
		}
	}
	if _, err := b.WaitN(1); err != ErrBatchReaped {
		return fmt.Errorf("waitN after reap: %v, want ErrBatchReaped", err)
	}
	return nil
}

// randomFileOps builds a random batch over a tiny path set so opens,
// writes, and namespace ops collide interestingly.
func randomFileOps(r *rand.Rand, n int) []Op {
	paths := []string{"/a", "/b", "/c", "/d/x", "/d"}
	path := func() string { return paths[r.Intn(len(paths))] }
	fd := func() fs.FD { return fs.FD(3 + r.Intn(6)) }
	ops := make([]Op, n)
	for i := range ops {
		switch r.Intn(11) {
		case 0:
			ops[i] = OpOpen(path(), OCreate|ORdWr)
		case 1:
			ops[i] = OpClose(fd())
		case 2:
			ops[i] = OpRead(fd(), uint64(r.Intn(32)))
		case 3:
			ops[i] = OpWrite(fd(), randBytes(r, r.Intn(32)))
		case 4:
			ops[i] = OpSeek(fd(), int64(r.Intn(16)), r.Intn(3))
		case 5:
			ops[i] = OpTruncate(fd(), uint64(r.Intn(64)))
		case 6:
			ops[i] = OpMkdir(path())
		case 7:
			ops[i] = OpUnlink(path())
		case 8:
			ops[i] = OpRmdir(path())
		case 9:
			ops[i] = OpRename(path(), path())
		default:
			ops[i] = OpLink(path(), path())
		}
	}
	return ops
}
