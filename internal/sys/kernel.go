package sys

import (
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/mm"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/sched"
)

// User virtual address-space layout.
const (
	UserVABase = mmu.VAddr(0x0000_1000_0000)
	UserVATop  = mmu.VAddr(0x0000_7000_0000_0000)
)

// preadMapTag marks vspace regions whose frame is owned by the page
// cache (zero-copy pread mappings). Teardown reports such frames in
// Resp.Unpinned — the cache drops its map pin — never in Resp.Freed:
// buddy-freeing a cache-owned frame while a reader holds an epoch pin
// on it would be a use-after-free.
const preadMapTag = "pread"

// Kernel is one replica of the kernel state machine: the sequential
// data structure NrOS-style node replication scales across cores
// (§4.1). All operations are deterministic; applying the same WriteOp
// log to two replicas yields identical states (the NR requirement),
// because every non-deterministic input — data-frame addresses, PIDs of
// interest — is carried inside the ops.
type Kernel struct {
	fs     *fs.FS
	fds    map[proc.PID]*fs.FDTable
	procs  *proc.Table
	rq     *sched.RunQueue
	vs     map[proc.PID]*mm.VSpace
	spaces map[proc.PID]*pt.Verified
	socks  *sockTab

	// pmem is the machine's shared physical memory; tables is this
	// replica's private page-table frame source.
	pmem   *mem.PhysMem
	tables pt.FrameSource

	// obsShard stripes this replica's kstat updates away from its
	// peers' (assigned at construction; replicas apply concurrently).
	obsShard uint32
}

// NewKernel creates a kernel replica. The init process (PID 1) exists
// with a descriptor table but no address space (it is the kernel's
// caretaker process).
func NewKernel(pmem *mem.PhysMem, tables pt.FrameSource) *Kernel {
	k := &Kernel{
		fs:       fs.New(),
		fds:      make(map[proc.PID]*fs.FDTable),
		procs:    proc.NewTable(),
		rq:       sched.NewRunQueue(),
		vs:       make(map[proc.PID]*mm.VSpace),
		spaces:   make(map[proc.PID]*pt.Verified),
		socks:    newSockTab(),
		pmem:     pmem,
		tables:   tables,
		obsShard: obs.NextShard(),
	}
	k.fds[proc.InitPID] = fs.NewFDTable(k.fs)
	return k
}

// FS exposes the filesystem for persistence snapshots (core only).
func (k *Kernel) FS() *fs.FS { return k.fs }

// Procs exposes the process table for invariant checks (tests only).
func (k *Kernel) Procs() *proc.Table { return k.procs }

// RunQueue exposes the scheduler (core's dispatcher).
func (k *Kernel) RunQueue() *sched.RunQueue { return k.rq }

// Root returns the page-table root of a process's address space.
func (k *Kernel) Root(pid proc.PID) (mem.PAddr, bool) {
	as, ok := k.spaces[pid]
	if !ok {
		return 0, false
	}
	return as.Root(), true
}

// ViewFDs is the §3 view() abstraction for the contract checker.
func (k *Kernel) ViewFDs(pid proc.PID) (fs.SpecState, bool) {
	t, ok := k.fds[pid]
	if !ok {
		return fs.SpecState{}, false
	}
	return fs.AbstractFDs(t), true
}

// fdTable returns the descriptor table for pid.
func (k *Kernel) fdTable(pid proc.PID) (*fs.FDTable, Errno) {
	t, ok := k.fds[pid]
	if !ok {
		return nil, ESRCH
	}
	return t, EOK
}

// DispatchWrite implements nr.DataStructure: the mutating syscalls.
// The kernel.apply kstat counts once per replica per logged op (R× the
// syscall count with R replicas) — the ratio against the syscall-level
// counts is exactly the replication amplification.
func (k *Kernel) DispatchWrite(op WriteOp) Resp {
	obs.KernelApplies.Count(op.Num, k.obsShard)
	switch op.Num {
	case NumOpen:
		// Re-validate the flag set kernel-side: Sys.Open already rejects
		// bad combinations, but a hand-rolled frame reaches this switch
		// directly. The check is pure, so every replica decides alike.
		if e := OpenFlag(op.Flags).Validate(); e != EOK {
			return Resp{Errno: e}
		}
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		fd, err := t.Open(op.Path, int(op.Flags))
		if err != nil {
			return fail(err)
		}
		return ok(uint64(fd))

	case NumClose:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		if err := t.Close(op.FD); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumRead:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		// The §3 data-race-freedom obligation: the descriptor is locked
		// for the duration of the call, so no concurrent syscall can
		// observe or mutate the offset mid-read. Within one replica the
		// NR combiner already serializes ops; the lock makes the
		// protocol explicit and is what the read_spec precondition
		// refers to.
		if err := t.Lock(op.FD); err != nil {
			return fail(err)
		}
		buf := make([]byte, op.Len)
		n, err := t.Read(op.FD, buf)
		if uerr := t.Unlock(op.FD); uerr != nil && err == nil {
			err = uerr
		}
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: n, Data: buf[:n]}

	case NumWrite:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		if err := t.Lock(op.FD); err != nil {
			return fail(err)
		}
		n, err := t.Write(op.FD, op.Data)
		if uerr := t.Unlock(op.FD); uerr != nil && err == nil {
			err = uerr
		}
		if err != nil {
			return fail(err)
		}
		return ok(n)

	case NumSeek:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		pos, err := t.Seek(op.FD, op.Off, op.Whence)
		if err != nil {
			return fail(err)
		}
		return ok(pos)

	case NumMkdir:
		if _, err := k.fs.Mkdir(op.Path); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumUnlink:
		if err := k.fs.Unlink(op.Path); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumRmdir:
		if err := k.fs.Rmdir(op.Path); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumRename:
		if err := k.fs.Rename(op.Path, op.Path2); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumLink:
		if err := k.fs.Link(op.Path, op.Path2); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumTruncate:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		of, err := t.Get(op.FD)
		if err != nil {
			return fail(err)
		}
		if err := k.fs.Truncate(of.Ino, op.Len); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumSpawn:
		return k.spawn(op)

	case NumWaitPID:
		res, err := k.procs.Wait(op.PID)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(res.PID), Wait: res}

	case NumExit:
		return k.exit(op)

	case NumKill:
		// SIGKILL tears down the target like exit.
		if op.Sig == proc.SIGKILL {
			if op.Target == proc.InitPID {
				return Resp{Errno: EPERM}
			}
			target := op
			target.PID = op.Target
			target.Code = 128 + int(proc.SIGKILL)
			return k.exit(target)
		}
		if err := k.procs.Kill(op.Target, op.Sig); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumTakeSignal:
		sig, got, err := k.procs.TakeSignal(op.PID)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Sig: sig, SigOK: got}

	case NumMMap:
		return k.mmap(op)

	case NumMUnmap:
		return k.munmap(op)

	case NumThreadAdd:
		if err := k.rq.Add(op.TID, op.Pri); err != nil {
			return fail(err)
		}
		return ok(uint64(op.TID))

	case NumThreadYield:
		if err := k.rq.Yield(op.TID); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumThreadBlock:
		if err := k.rq.Block(op.TID); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumThreadWake:
		if err := k.rq.Wake(op.TID); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumThreadExit:
		if err := k.rq.Exit(op.TID); err != nil {
			return fail(err)
		}
		if err := k.rq.Reap(op.TID); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumPickNext:
		tid, err := k.rq.PickNext(op.Core)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(tid), TID: tid}
	case NumSockTabBind, NumSockTabSend, NumSockTabClose,
		NumSockPortAcquire, NumSockPortRelease:
		return k.dispatchSockWrite(op)
	}
	// Internal cross-shard protocol ops (sharded composition; shard.go).
	return k.dispatchShardWrite(op)
}

// spawn creates the process plus its kernel resources.
func (k *Kernel) spawn(op WriteOp) Resp {
	pid, err := k.procs.Spawn(op.PID, op.Name)
	if err != nil {
		return fail(err)
	}
	vs, err := mm.NewVSpace(UserVABase, UserVATop)
	if err != nil {
		return fail(err)
	}
	as, err := pt.NewVerified(k.pmem, k.tables, nil)
	if err != nil {
		// Roll back the process entry to keep replicas consistent (the
		// same failure happens deterministically on every replica).
		_ = k.procs.Exit(pid, -1)
		_, _ = k.procs.Wait(op.PID)
		return fail(err)
	}
	k.fds[pid] = fs.NewFDTable(k.fs)
	k.vs[pid] = vs
	k.spaces[pid] = as
	return ok(uint64(pid))
}

// exit tears down a process: descriptors, mappings, page table. Frames
// behind pread mappings are cache-owned and go out via Unpinned, not
// Freed (see preadMapTag).
func (k *Kernel) exit(op WriteOp) Resp {
	pid := op.PID
	freed, unpinned := k.teardownVSpace(pid)
	if as := k.spaces[pid]; as != nil {
		if err := as.Destroy(); err != nil {
			return fail(err)
		}
	}
	delete(k.spaces, pid)
	delete(k.vs, pid)
	delete(k.fds, pid)
	ports := k.socks.detachSocks(pid)
	if err := k.procs.Exit(pid, op.Code); err != nil {
		return fail(err)
	}
	return Resp{Errno: EOK, Freed: freed, Unpinned: unpinned, Ports: ports}
}

// teardownVSpace unmaps and releases every region of pid's address
// space, splitting the recovered frames by ownership: process-owned
// data frames (freed) versus cache-owned pread mapping frames
// (unpinned).
func (k *Kernel) teardownVSpace(pid proc.PID) (freed, unpinned []mem.PAddr) {
	vs := k.vs[pid]
	if vs == nil {
		return nil, nil
	}
	as := k.spaces[pid]
	for _, region := range vs.Regions() {
		for off := uint64(0); off < region.Len; off += mmu.L1PageSize {
			if frame, err := as.Unmap(region.Base + mmu.VAddr(off)); err == nil {
				if region.Tag == preadMapTag {
					unpinned = append(unpinned, frame)
				} else {
					freed = append(freed, frame)
				}
			}
		}
		_, _ = vs.Release(region.Base)
	}
	return freed, unpinned
}

// mmap reserves virtual space and maps the caller-provided frames.
func (k *Kernel) mmap(op WriteOp) Resp {
	vs := k.vs[op.PID]
	as := k.spaces[op.PID]
	if vs == nil || as == nil {
		return Resp{Errno: ESRCH}
	}
	if op.Size == 0 || op.Size%mmu.L1PageSize != 0 {
		return Resp{Errno: EINVAL}
	}
	pages := op.Size / mmu.L1PageSize
	if uint64(len(op.Frames)) != pages {
		return Resp{Errno: EINVAL}
	}
	base, err := vs.Reserve(op.Size, "mmap")
	if err != nil {
		return fail(err)
	}
	for i := uint64(0); i < pages; i++ {
		err := as.Map(base+mmu.VAddr(i*mmu.L1PageSize), op.Frames[i], mmu.L1PageSize,
			mmu.Flags{Writable: true, User: true, NoExec: true})
		if err != nil {
			// Unwind the partial mapping.
			for j := uint64(0); j < i; j++ {
				_, _ = as.Unmap(base + mmu.VAddr(j*mmu.L1PageSize))
			}
			_, _ = vs.Release(base)
			return fail(err)
		}
	}
	return ok(uint64(base))
}

// munmap removes a region, returning its data frames in Freed. Pread
// mappings are not munmap-able: their frames belong to the page cache,
// and only PreadUnmap knows to return them as Unpinned rather than
// Freed.
func (k *Kernel) munmap(op WriteOp) Resp {
	vs := k.vs[op.PID]
	as := k.spaces[op.PID]
	if vs == nil || as == nil {
		return Resp{Errno: ESRCH}
	}
	if r, found := vs.Lookup(op.VA); found && r.Tag == preadMapTag {
		return Resp{Errno: EINVAL}
	}
	region, err := vs.Release(op.VA)
	if err != nil {
		return fail(err)
	}
	var freed []mem.PAddr
	for off := uint64(0); off < region.Len; off += mmu.L1PageSize {
		frame, err := as.Unmap(region.Base + mmu.VAddr(off))
		if err != nil {
			return fail(fmt.Errorf("munmap: %w", err))
		}
		freed = append(freed, frame)
	}
	return Resp{Errno: EOK, Freed: freed}
}

// DispatchRead implements nr.DataStructure: the read-only syscalls.
func (k *Kernel) DispatchRead(op ReadOp) Resp {
	obs.KernelApplies.Count(op.Num, k.obsShard)
	switch op.Num {
	case NumPread:
		// Positioned read: no descriptor lock and no offset mutation —
		// that independence from descriptor state is what lets the core
		// serve it via ExecuteRead plus the page cache instead of the
		// write log.
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		of, err := t.Get(op.FD)
		if err != nil {
			return fail(err)
		}
		if of.Flags&fs.OWrOnly != 0 {
			return fail(fs.ErrPermission)
		}
		buf := make([]byte, op.Len)
		n, err := k.fs.ReadAt(of.Ino, op.Off, buf)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(n), Data: buf[:n]}

	case NumStat:
		st, err := k.fs.StatPath(op.Path)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Stat: st, Val: st.Size}

	case NumReadDir:
		ents, err := k.fs.ReadDir(op.Path)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Entries: ents}

	case NumGetPID:
		if _, err := k.procs.Get(op.PID); err != nil {
			return fail(err)
		}
		return ok(uint64(op.PID))

	case NumMemResolve:
		as := k.spaces[op.PID]
		if as == nil {
			return Resp{Errno: ESRCH}
		}
		m, found := as.Resolve(op.VA)
		if !found {
			return Resp{Errno: EFAULT}
		}
		return Resp{Errno: EOK, Val: uint64(m.Frame) + uint64(op.VA)%m.PageSize}

	case NumSockTabGet:
		return k.dispatchSockRead(op)
	}
	// Internal cross-shard protocol ops (sharded composition; shard.go).
	return k.dispatchShardRead(op)
}

// UserRead copies process-virtual memory into p through the hardware
// translation path with user permissions — the §3 execution model's
// "process experiences virtualized memory". Core calls it on the
// replica owned by the accessing core.
func (k *Kernel) UserRead(pid proc.PID, va mmu.VAddr, p []byte) Errno {
	return k.userAccess(pid, va, p, false)
}

// UserWrite copies p into process-virtual memory.
func (k *Kernel) UserWrite(pid proc.PID, va mmu.VAddr, p []byte) Errno {
	return k.userAccess(pid, va, p, true)
}

func (k *Kernel) userAccess(pid proc.PID, va mmu.VAddr, p []byte, write bool) Errno {
	as := k.spaces[pid]
	if as == nil {
		return ESRCH
	}
	w := mmu.Walker{Mem: k.pmem}
	kind := mmu.AccessUserRead
	if write {
		kind = mmu.AccessUserWrite
	}
	for n := 0; n < len(p); {
		res := w.Walk(as.Root(), va+mmu.VAddr(n), kind)
		if res.Fault != nil {
			return EFAULT
		}
		tr := res.Translation
		remain := int(tr.PageSize - (uint64(va)+uint64(n))%tr.PageSize)
		chunk := len(p) - n
		if chunk > remain {
			chunk = remain
		}
		var err error
		if write {
			err = k.pmem.Write(tr.PAddr, p[n:n+chunk])
		} else {
			err = k.pmem.Read(tr.PAddr, p[n:n+chunk])
		}
		if err != nil {
			return EFAULT
		}
		n += chunk
	}
	return EOK
}

// NewKernelWithFS creates a kernel replica whose filesystem is restored
// from a snapshot (each replica deserializes its own copy of the same
// image, keeping replicas bit-identical at boot).
func NewKernelWithFS(pmem *mem.PhysMem, tables pt.FrameSource, f *fs.FS) *Kernel {
	k := NewKernel(pmem, tables)
	k.fs = f
	k.fds[proc.InitPID] = fs.NewFDTable(f)
	return k
}
