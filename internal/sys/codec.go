package sys

import (
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sched"
)

// This file is the syscall wire codec: ops travel as a register frame
// (the scalar arguments that fit the six argument registers of the
// simulated ABI) plus a marshalled overflow/variable-length payload.
// The §3 marshalling obligation — arguments and results round-trip
// exactly — is discharged for this codec by VCs in sys_obligations.go.

// IsReadOp reports whether a syscall number is a read-only operation
// (executed replica-locally rather than through the log).
func IsReadOp(num uint64) bool {
	switch num {
	case NumStat, NumReadDir, NumGetPID, NumMemResolve:
		return true
	}
	return false
}

// IsLocalOp reports whether a syscall is handled by the composition
// layer (internal/core) outside the replicated kernel state: blocking
// primitives (futex) and device-fed state (sockets), plus raw user
// memory access, which is not a kernel-state transition at all.
func IsLocalOp(num uint64) bool {
	switch num {
	case NumFutexWait, NumFutexWake, NumSockBind, NumSockSend,
		NumSockRecv, NumSockClose, NumMemRead, NumMemWrite, NumMemCAS:
		return true
	}
	return false
}

// EncodeWrite packs a WriteOp for the boundary crossing.
func EncodeWrite(op WriteOp) (marshal.SyscallFrame, []byte) {
	frame := marshal.SyscallFrame{Num: op.Num}
	frame.Args[0] = uint64(op.PID)
	frame.Args[1] = uint64(op.FD)
	frame.Args[2] = uint64(op.VA)
	frame.Args[3] = op.Len
	frame.Args[4] = op.Size
	frame.Args[5] = uint64(op.TID)

	e := marshal.NewEncoder(nil)
	e.U64(op.Flags)
	e.I64(int64(op.Whence))
	e.I64(op.Off)
	e.I64(int64(op.Code))
	e.U8(uint8(op.Sig))
	e.U64(uint64(op.Target))
	e.U8(uint8(op.Pri))
	e.I64(int64(op.Core))
	e.String(op.Path)
	e.String(op.Path2)
	e.String(op.Name)
	e.BytesField(op.Data)
	e.U64(op.Sock)
	e.U64(op.Addr)
	e.U16(op.Port)
	e.U32(op.Word)
	e.U32(uint32(len(op.Frames)))
	for _, f := range op.Frames {
		e.U64(uint64(f))
	}
	return frame, e.Bytes()
}

// DecodeWrite unpacks a WriteOp on the kernel side.
func DecodeWrite(frame marshal.SyscallFrame, payload []byte) (WriteOp, error) {
	op := WriteOp{
		Num:  frame.Num,
		PID:  proc.PID(frame.Args[0]),
		FD:   fs.FD(frame.Args[1]),
		VA:   mmu.VAddr(frame.Args[2]),
		Len:  frame.Args[3],
		Size: frame.Args[4],
		TID:  sched.TID(frame.Args[5]),
	}
	d := marshal.NewDecoder(payload)
	op.Flags = d.U64()
	op.Whence = int(d.I64())
	op.Off = d.I64()
	op.Code = int(d.I64())
	op.Sig = proc.Signal(d.U8())
	op.Target = proc.PID(d.U64())
	op.Pri = sched.Priority(d.U8())
	op.Core = int(d.I64())
	op.Path = d.String()
	op.Path2 = d.String()
	op.Name = d.String()
	op.Data = d.BytesField()
	op.Sock = d.U64()
	op.Addr = d.U64()
	op.Port = d.U16()
	op.Word = d.U32()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		op.Frames = append(op.Frames, mem.PAddr(d.U64()))
	}
	if err := d.Finish(); err != nil {
		return WriteOp{}, fmt.Errorf("sys: write op decode: %w", err)
	}
	return op, nil
}

// EncodeRead packs a ReadOp.
func EncodeRead(op ReadOp) (marshal.SyscallFrame, []byte) {
	frame := marshal.SyscallFrame{Num: op.Num}
	frame.Args[0] = uint64(op.PID)
	frame.Args[1] = uint64(op.FD)
	frame.Args[2] = uint64(op.VA)
	frame.Args[3] = op.Len
	frame.Args[4] = uint64(op.TID)
	e := marshal.NewEncoder(nil)
	e.String(op.Path)
	return frame, e.Bytes()
}

// DecodeRead unpacks a ReadOp.
func DecodeRead(frame marshal.SyscallFrame, payload []byte) (ReadOp, error) {
	op := ReadOp{
		Num: frame.Num,
		PID: proc.PID(frame.Args[0]),
		FD:  fs.FD(frame.Args[1]),
		VA:  mmu.VAddr(frame.Args[2]),
		Len: frame.Args[3],
		TID: sched.TID(frame.Args[4]),
	}
	d := marshal.NewDecoder(payload)
	op.Path = d.String()
	if err := d.Finish(); err != nil {
		return ReadOp{}, fmt.Errorf("sys: read op decode: %w", err)
	}
	return op, nil
}

// EncodeResp packs a Resp for the return crossing.
func EncodeResp(r Resp) (marshal.RetFrame, []byte) {
	ret := marshal.RetFrame{Value: r.Val, Errno: uint64(r.Errno)}
	e := marshal.NewEncoder(nil)
	e.BytesField(r.Data)
	e.U64(uint64(r.Stat.Ino)).U8(uint8(r.Stat.Kind)).U64(r.Stat.Size).I64(int64(r.Stat.Nlink))
	e.U32(uint32(len(r.Entries)))
	for _, ent := range r.Entries {
		e.String(ent.Name)
		e.U64(uint64(ent.Ino))
		e.U8(uint8(ent.Kind))
	}
	e.U64(uint64(r.Wait.PID)).I64(int64(r.Wait.ExitCode))
	e.U64(uint64(r.TID))
	e.U8(uint8(r.Sig))
	e.Bool(r.SigOK)
	e.U32(uint32(len(r.Freed)))
	for _, f := range r.Freed {
		e.U64(uint64(f))
	}
	return ret, e.Bytes()
}

// DecodeResp unpacks a Resp on the user side.
func DecodeResp(ret marshal.RetFrame, payload []byte) (Resp, error) {
	r := Resp{Errno: Errno(ret.Errno), Val: ret.Value}
	d := marshal.NewDecoder(payload)
	r.Data = d.BytesField()
	r.Stat = fs.Stat{
		Ino:   fs.Ino(d.U64()),
		Kind:  fs.Kind(d.U8()),
		Size:  d.U64(),
		Nlink: int(d.I64()),
	}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		r.Entries = append(r.Entries, fs.DirEntry{
			Name: d.String(),
			Ino:  fs.Ino(d.U64()),
			Kind: fs.Kind(d.U8()),
		})
	}
	r.Wait = proc.WaitResult{PID: proc.PID(d.U64()), ExitCode: int(d.I64())}
	r.TID = sched.TID(d.U64())
	r.Sig = proc.Signal(d.U8())
	r.SigOK = d.Bool()
	fn := d.U32()
	for i := uint32(0); i < fn && d.Err() == nil; i++ {
		r.Freed = append(r.Freed, mem.PAddr(d.U64()))
	}
	if err := d.Finish(); err != nil {
		return Resp{}, fmt.Errorf("sys: resp decode: %w", err)
	}
	return r, nil
}
