package sys

import (
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sched"
)

// This file is the syscall wire codec: ops travel as a register frame
// (the scalar arguments that fit the six argument registers of the
// simulated ABI) plus a marshalled overflow/variable-length payload.
// The §3 marshalling obligation — arguments and results round-trip
// exactly — is discharged for this codec by VCs in sys_obligations.go.

// IsReadOp reports whether a syscall number is a read-only operation
// (executed replica-locally rather than through the log).
func IsReadOp(num uint64) bool {
	switch num {
	case NumStat, NumReadDir, NumGetPID, NumMemResolve, NumPread:
		return true
	}
	return false
}

// IsLocalOp reports whether a syscall is handled by the composition
// layer (internal/core) outside the replicated kernel state: blocking
// primitives (futex) plus raw user memory access, which is not a
// kernel-state transition at all.
func IsLocalOp(num uint64) bool {
	switch num {
	case NumFutexWait, NumFutexWake, NumMemRead, NumMemWrite, NumMemCAS,
		NumSync:
		// NumSync is local because durability is a device effect: the
		// journal flush happens once, against the one disk, not once
		// per replica inside the state machine.
		return true
	}
	return false
}

// IsSockOp reports whether a syscall is a socket operation. The socket
// path is split: the *table* transition (bind/close/ownership) is
// logged through the replicated state machine as a socktab op, while
// the device effect (NIC transmit, interrupt-fed receive queues) stays
// in core. The core dispatcher intercepts these before local and
// replicated dispatch and sequences both halves (netops.go).
func IsSockOp(num uint64) bool {
	switch num {
	case NumSockBind, NumSockSend, NumSockRecv, NumSockClose:
		return true
	}
	return false
}

// IsBatchableOp reports whether a syscall number may ride in a NumBatch
// submission. Batchable ops are the file-state transitions: they have
// no core-side special handling (no frame allocation, no process
// lifecycle, no blocking) and their effects are fully covered by the
// fs spec relations the batch contract check replays.
func IsBatchableOp(num uint64) bool {
	switch num {
	case NumOpen, NumClose, NumRead, NumWrite, NumSeek,
		NumTruncate, NumMkdir, NumUnlink, NumRmdir, NumRename, NumLink:
		return true
	}
	return false
}

// EncodeWrite packs a WriteOp for the boundary crossing.
func EncodeWrite(op WriteOp) (marshal.SyscallFrame, []byte) {
	frame := marshal.SyscallFrame{Num: op.Num}
	frame.Args[0] = uint64(op.PID)
	frame.Args[1] = uint64(op.FD)
	frame.Args[2] = uint64(op.VA)
	frame.Args[3] = op.Len
	frame.Args[4] = op.Size
	frame.Args[5] = uint64(op.TID)

	e := marshal.NewEncoder(make([]byte, 0, writeTailSize(&op)))
	encodeWriteTail(e, &op)
	return frame, e.Bytes()
}

// writeTailSize bounds the encoded size of encodeWriteTail's output so
// encoders can be presized (exact for the fixed fields, exact for the
// variable ones).
func writeTailSize(op *WriteOp) int {
	return 76 + // fixed-width fields
		4 + len(op.Path) + 4 + len(op.Path2) + 4 + len(op.Name) +
		4 + len(op.Data) + 8*len(op.Frames)
}

// encodeWriteTail appends the overflow/variable-length fields of a
// WriteOp — everything that does not fit the six-register frame. The
// scalar syscall path and the batch path share it so the two encodings
// cannot drift.
func encodeWriteTail(e *marshal.Encoder, op *WriteOp) {
	e.U64(op.Flags)
	e.I64(int64(op.Whence))
	e.I64(op.Off)
	e.I64(int64(op.Code))
	e.U8(uint8(op.Sig))
	e.U64(uint64(op.Target))
	e.U8(uint8(op.Pri))
	e.I64(int64(op.Core))
	e.String(op.Path)
	e.String(op.Path2)
	e.String(op.Name)
	e.BytesField(op.Data)
	e.U64(op.Sock)
	e.U64(op.Addr)
	e.U16(op.Port)
	e.U32(op.Word)
	e.U32(uint32(len(op.Frames)))
	for _, f := range op.Frames {
		e.U64(uint64(f))
	}
}

// decodeWriteTail is the inverse of encodeWriteTail. It does not call
// Finish — the caller decides when the payload must be exhausted.
func decodeWriteTail(d *marshal.Decoder, op *WriteOp) {
	op.Flags = d.U64()
	op.Whence = int(d.I64())
	op.Off = d.I64()
	op.Code = int(d.I64())
	op.Sig = proc.Signal(d.U8())
	op.Target = proc.PID(d.U64())
	op.Pri = sched.Priority(d.U8())
	op.Core = int(d.I64())
	op.Path = d.String()
	op.Path2 = d.String()
	op.Name = d.String()
	op.Data = d.BytesFieldRef()
	op.Sock = d.U64()
	op.Addr = d.U64()
	op.Port = d.U16()
	op.Word = d.U32()
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		op.Frames = append(op.Frames, mem.PAddr(d.U64()))
	}
}

// DecodeWrite unpacks a WriteOp on the kernel side.
func DecodeWrite(frame marshal.SyscallFrame, payload []byte) (WriteOp, error) {
	op := WriteOp{
		Num:  frame.Num,
		PID:  proc.PID(frame.Args[0]),
		FD:   fs.FD(frame.Args[1]),
		VA:   mmu.VAddr(frame.Args[2]),
		Len:  frame.Args[3],
		Size: frame.Args[4],
		TID:  sched.TID(frame.Args[5]),
	}
	d := marshal.NewDecoder(payload)
	decodeWriteTail(d, &op)
	if err := d.Finish(); err != nil {
		return WriteOp{}, fmt.Errorf("sys: write op decode: %w", err)
	}
	return op, nil
}

// EncodeRead packs a ReadOp.
func EncodeRead(op ReadOp) (marshal.SyscallFrame, []byte) {
	frame := marshal.SyscallFrame{Num: op.Num}
	frame.Args[0] = uint64(op.PID)
	frame.Args[1] = uint64(op.FD)
	frame.Args[2] = uint64(op.VA)
	frame.Args[3] = op.Len
	frame.Args[4] = uint64(op.TID)
	e := marshal.NewEncoder(nil)
	e.String(op.Path)
	e.U64(op.Off)
	return frame, e.Bytes()
}

// DecodeRead unpacks a ReadOp.
func DecodeRead(frame marshal.SyscallFrame, payload []byte) (ReadOp, error) {
	op := ReadOp{
		Num: frame.Num,
		PID: proc.PID(frame.Args[0]),
		FD:  fs.FD(frame.Args[1]),
		VA:  mmu.VAddr(frame.Args[2]),
		Len: frame.Args[3],
		TID: sched.TID(frame.Args[4]),
	}
	d := marshal.NewDecoder(payload)
	op.Path = d.String()
	op.Off = d.U64()
	if err := d.Finish(); err != nil {
		return ReadOp{}, fmt.Errorf("sys: read op decode: %w", err)
	}
	return op, nil
}

// EncodeResp packs a Resp for the return crossing.
func EncodeResp(r Resp) (marshal.RetFrame, []byte) {
	ret := marshal.RetFrame{Value: r.Val, Errno: uint64(r.Errno)}
	e := marshal.NewEncoder(nil)
	e.BytesField(r.Data)
	e.U64(uint64(r.Stat.Ino)).U8(uint8(r.Stat.Kind)).U64(r.Stat.Size).I64(int64(r.Stat.Nlink))
	e.U32(uint32(len(r.Entries)))
	for _, ent := range r.Entries {
		e.String(ent.Name)
		e.U64(uint64(ent.Ino))
		e.U8(uint8(ent.Kind))
	}
	e.U64(uint64(r.Wait.PID)).I64(int64(r.Wait.ExitCode))
	e.U64(uint64(r.TID))
	e.U8(uint8(r.Sig))
	e.Bool(r.SigOK)
	e.U32(uint32(len(r.Freed)))
	for _, f := range r.Freed {
		e.U64(uint64(f))
	}
	return ret, e.Bytes()
}

// EncodeBatch packs a submission vector for one NumBatch crossing. The
// process identity travels once in the frame — DecodeBatch stamps it
// onto every op, so a batch cannot smuggle operations on behalf of
// another process.
func EncodeBatch(pid proc.PID, ops []WriteOp) (marshal.SyscallFrame, []byte) {
	frame := marshal.SyscallFrame{Num: NumBatch}
	frame.Args[0] = uint64(pid)
	frame.Args[1] = uint64(len(ops))
	size := 4
	for i := range ops {
		size += 48 + writeTailSize(&ops[i])
	}
	e := marshal.NewEncoder(make([]byte, 0, size))
	e.U32(uint32(len(ops)))
	for i := range ops {
		op := &ops[i]
		e.U64(op.Num)
		e.U64(uint64(op.FD))
		e.U64(uint64(op.VA))
		e.U64(op.Len)
		e.U64(op.Size)
		e.U64(uint64(op.TID))
		encodeWriteTail(e, op)
	}
	return frame, e.Bytes()
}

// DecodeBatch unpacks a NumBatch submission on the kernel side.
func DecodeBatch(frame marshal.SyscallFrame, payload []byte) ([]WriteOp, error) {
	if frame.Num != NumBatch {
		return nil, fmt.Errorf("sys: batch decode: frame num %d is not NumBatch", frame.Num)
	}
	pid := proc.PID(frame.Args[0])
	d := marshal.NewDecoder(payload)
	n := d.U32()
	if uint64(n) != frame.Args[1] {
		return nil, fmt.Errorf("sys: batch decode: frame count %d != payload count %d",
			frame.Args[1], n)
	}
	if uint64(n) > uint64(len(payload)) {
		// Every encoded op occupies well over one byte; a count beyond
		// the payload length is corrupt, not merely truncated.
		return nil, fmt.Errorf("sys: batch decode: count %d exceeds payload", n)
	}
	ops := make([]WriteOp, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		op := &ops[i]
		op.PID = pid
		op.Num = d.U64()
		op.FD = fs.FD(d.U64())
		op.VA = mmu.VAddr(d.U64())
		op.Len = d.U64()
		op.Size = d.U64()
		op.TID = sched.TID(d.U64())
		decodeWriteTail(d, op)
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("sys: batch decode: %w", err)
	}
	return ops, nil
}

// EncodeBatchResp packs the completion queue for the return crossing.
// errno reports batch-level failure (decode error, kernel refusal);
// per-op results travel in their completions.
func EncodeBatchResp(comps []Completion, errno Errno) (marshal.RetFrame, []byte) {
	ret := marshal.RetFrame{Value: uint64(len(comps)), Errno: uint64(errno)}
	size := 4
	for i := range comps {
		size += 28 + len(comps[i].Data)
	}
	e := marshal.NewEncoder(make([]byte, 0, size))
	e.U32(uint32(len(comps)))
	for i := range comps {
		c := &comps[i]
		e.U64(c.Op)
		e.U64(uint64(c.Errno))
		e.U64(c.Val)
		e.BytesField(c.Data)
	}
	return ret, e.Bytes()
}

// DecodeBatchResp unpacks the completion queue on the user side.
func DecodeBatchResp(ret marshal.RetFrame, payload []byte) ([]Completion, Errno, error) {
	errno := Errno(ret.Errno)
	d := marshal.NewDecoder(payload)
	n := d.U32()
	if uint64(n) != ret.Value {
		return nil, errno, fmt.Errorf("sys: batch resp decode: ret count %d != payload count %d",
			ret.Value, n)
	}
	if uint64(n) > uint64(len(payload)) {
		return nil, errno, fmt.Errorf("sys: batch resp decode: count %d exceeds payload", n)
	}
	comps := make([]Completion, 0, n)
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		comps = append(comps, Completion{
			Op:    d.U64(),
			Errno: Errno(d.U64()),
			Val:   d.U64(),
			Data:  d.BytesFieldRef(),
		})
	}
	if err := d.Finish(); err != nil {
		return nil, errno, fmt.Errorf("sys: batch resp decode: %w", err)
	}
	return comps, errno, nil
}

// DecodeResp unpacks a Resp on the user side.
func DecodeResp(ret marshal.RetFrame, payload []byte) (Resp, error) {
	r := Resp{Errno: Errno(ret.Errno), Val: ret.Value}
	d := marshal.NewDecoder(payload)
	r.Data = d.BytesFieldRef()
	r.Stat = fs.Stat{
		Ino:   fs.Ino(d.U64()),
		Kind:  fs.Kind(d.U8()),
		Size:  d.U64(),
		Nlink: int(d.I64()),
	}
	n := d.U32()
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		r.Entries = append(r.Entries, fs.DirEntry{
			Name: d.String(),
			Ino:  fs.Ino(d.U64()),
			Kind: fs.Kind(d.U8()),
		})
	}
	r.Wait = proc.WaitResult{PID: proc.PID(d.U64()), ExitCode: int(d.I64())}
	r.TID = sched.TID(d.U64())
	r.Sig = proc.Signal(d.U8())
	r.SigOK = d.Bool()
	fn := d.U32()
	for i := uint32(0); i < fn && d.Err() == nil; i++ {
		r.Freed = append(r.Freed, mem.PAddr(d.U64()))
	}
	if err := d.Finish(); err != nil {
		return Resp{}, fmt.Errorf("sys: resp decode: %w", err)
	}
	return r, nil
}
