package sys

import (
	"bytes"
	"fmt"

	"github.com/verified-os/vnros/internal/fs"
)

// This file is the user half of the batched syscall submission ring —
// an io_uring-shaped surface over the NR combiner. A program enqueues N
// encoded ops (the submission queue), crosses the boundary once with a
// NumBatch frame, the kernel drains the whole vector through a single
// NR combiner round (one log reservation, one combine pass), and the
// completions come back as an ordered completion queue.
//
// Contract checking stays on: instead of two view() snapshots per call,
// the batch takes one pre and one post snapshot and *replays* the §3
// spec relations op by op against a model it evolves from the pre view
// — each ReadSpec/WriteSpec/SeekSpec is checked against the model's
// rolling state, and the model's endpoint must coincide with the real
// post view. See checkBatch for the precise argument and its two
// documented degradations.

// Op is one submission-queue entry. Ops are built by the Op*
// constructors only — the wrapped WriteOp stays unexported so every Op
// that can exist is batchable and well-formed. The byte and string
// payloads are borrowed until the batch completes.
type Op struct {
	w WriteOp
}

// Num returns the syscall number the entry encodes.
func (o Op) Num() uint64 { return o.w.Num }

// OpOpen enqueues open(path, flags). The flag set is validated at
// submission, like Sys.Open.
func OpOpen(path string, flags OpenFlag) Op {
	return Op{w: WriteOp{Num: NumOpen, Path: path, Flags: uint64(flags)}}
}

// OpClose enqueues close(fd).
func OpClose(fd fs.FD) Op { return Op{w: WriteOp{Num: NumClose, FD: fd}} }

// OpRead enqueues read(fd, n); the bytes come back in the completion's
// Data.
func OpRead(fd fs.FD, n uint64) Op { return Op{w: WriteOp{Num: NumRead, FD: fd, Len: n}} }

// OpWrite enqueues write(fd, data).
func OpWrite(fd fs.FD, data []byte) Op { return Op{w: WriteOp{Num: NumWrite, FD: fd, Data: data}} }

// OpPread enqueues pread(fd, n, off): a positioned read that leaves the
// descriptor offset untouched. In a batch the kernel serves it from the
// page cache after the batch's logged ops complete, so it observes every
// write in the same batch (earlier or later — positioned reads carry no
// submission-order guarantee against their own batch's writes).
func OpPread(fd fs.FD, n, off uint64) Op {
	return Op{w: WriteOp{Num: NumPread, FD: fd, Len: n, Off: int64(off)}}
}

// OpPreadMap enqueues the zero-copy positioned read: the completion's
// Val is the mapping's base VA (release it with Sys.PreadUnmap).
// EAGAIN completes the entry when no cached page is available.
func OpPreadMap(fd fs.FD, off uint64) Op {
	return Op{w: WriteOp{Num: NumPreadMap, FD: fd, Off: int64(off)}}
}

// OpSeek enqueues seek(fd, off, whence).
func OpSeek(fd fs.FD, off int64, whence int) Op {
	return Op{w: WriteOp{Num: NumSeek, FD: fd, Off: off, Whence: whence}}
}

// OpTruncate enqueues truncate(fd, size).
func OpTruncate(fd fs.FD, size uint64) Op {
	return Op{w: WriteOp{Num: NumTruncate, FD: fd, Len: size}}
}

// OpMkdir enqueues mkdir(path).
func OpMkdir(path string) Op { return Op{w: WriteOp{Num: NumMkdir, Path: path}} }

// OpUnlink enqueues unlink(path).
func OpUnlink(path string) Op { return Op{w: WriteOp{Num: NumUnlink, Path: path}} }

// OpRmdir enqueues rmdir(path).
func OpRmdir(path string) Op { return Op{w: WriteOp{Num: NumRmdir, Path: path}} }

// OpRename enqueues rename(old, new).
func OpRename(old, new string) Op { return Op{w: WriteOp{Num: NumRename, Path: old, Path2: new}} }

// OpLink enqueues link(old, new).
func OpLink(old, new string) Op { return Op{w: WriteOp{Num: NumLink, Path: old, Path2: new}} }

// OpSync enqueues sync(). In a batch it acts as a group-commit marker:
// the kernel applies every op of the batch, then makes the whole batch
// durable with one journal flush before completing the sync entries.
func OpSync() Op { return Op{w: WriteOp{Num: NumSync}} }

// OpSockBind enqueues sock_bind(port) with a receive budget (0 =
// default); the completion's Val is the socket id. Port 0 requests an
// ephemeral port.
func OpSockBind(port Port, budget uint32) Op {
	return Op{w: WriteOp{Num: NumSockBind, Port: uint16(port), Word: budget}}
}

// OpSockSend enqueues sock_send(sock → addr:port); the completion's Val
// is the accepted byte count. The socket id and destination port are
// validated at submission, like open flags.
func OpSockSend(sock SockID, addr NetAddr, port Port, payload []byte) Op {
	return Op{w: WriteOp{Num: NumSockSend, Sock: uint64(sock), Addr: uint64(addr), Port: uint16(port), Data: payload}}
}

// OpSockRecv enqueues a non-blocking receive; the completion's Data is
// the datagram payload and Completion.SockFrom carries the source.
// EAGAIN completes the entry when the queue is empty.
func OpSockRecv(sock SockID) Op { return Op{w: WriteOp{Num: NumSockRecv, Sock: uint64(sock)}} }

// OpSockClose enqueues sock_close(sock); the completion's Val is the
// released port.
func OpSockClose(sock SockID) Op { return Op{w: WriteOp{Num: NumSockClose, Sock: uint64(sock)}} }

// validate is the boundary check run at batch submission: a
// structurally invalid op fails the whole submission before a frame is
// built, mirroring the scalar syscalls' argument validation.
func (o Op) validate() Errno {
	switch o.w.Num {
	case NumOpen:
		return OpenFlag(o.w.Flags).Validate()
	case NumSockSend:
		if e := SockID(o.w.Sock).Validate(); e != EOK {
			return e
		}
		return Port(o.w.Port).Validate()
	case NumSockRecv, NumSockClose:
		return SockID(o.w.Sock).Validate()
	}
	return EOK
}

// Completion is one completion-queue entry, in submission order.
type Completion struct {
	Op    uint64 // syscall number of the submitted op
	Errno Errno
	Val   uint64 // the op's scalar result (fd, count, offset, ...)
	Data  []byte // read payload, when the op returns bytes
}

// Err returns nil for a successful completion, the Errno otherwise.
func (c Completion) Err() error { return c.Errno.Err() }

// BatchCompletion projects a kernel response onto the completion-queue
// entry for the given submitted op (the kernel side of the CQ).
func BatchCompletion(op WriteOp, r Resp) Completion {
	return Completion{Op: op.Num, Errno: r.Errno, Val: r.Val, Data: r.Data}
}

// submitChunk carries one submission-queue segment across the boundary
// in a single NumBatch frame and checks the §3 contract over it with
// one pre/post snapshot pair. Ops are assumed boundary-validated (see
// Batch.Submit); the ring drainer in submit.go feeds segments of at
// most ringChunk ops through here.
//
// The chunk's contract check snapshots the process view once around the
// whole segment, so — like the per-call checker — it assumes no
// concurrent syscall on the same process mutates the descriptors the
// segment touches while it is in flight.
func (s *Sys) submitChunk(ops []Op) ([]Completion, Errno) {
	ws := make([]WriteOp, len(ops))
	for i, op := range ops {
		ws[i] = op.w
		ws[i].PID = s.pid
	}
	pre, checking := s.view()
	frame, payload := EncodeBatch(s.pid, ws)
	ret, out := s.h.Syscall(frame, payload)
	comps, errno, err := DecodeBatchResp(ret, out)
	if err != nil {
		return nil, EINVAL
	}
	if errno != EOK {
		return comps, errno
	}
	if len(comps) != len(ws) {
		s.recordViolation(fmt.Errorf("batch: %d completions for %d submitted ops", len(comps), len(ws)))
		return comps, EINVAL
	}
	if checking {
		post, _ := s.view()
		if err := checkBatch(pre, post, ws, comps); err != nil {
			s.recordViolation(err)
		}
	}
	return comps, EOK
}

// Writev writes the buffers in order through one batch submission,
// returning the total byte count. It stops at the first failing buffer.
func (s *Sys) Writev(fd fs.FD, bufs [][]byte) (uint64, Errno) {
	ops := make([]Op, len(bufs))
	for i, b := range bufs {
		ops[i] = OpWrite(fd, b)
	}
	comps, e := s.SubmitWait(ops)
	if e != EOK {
		return 0, e
	}
	var total uint64
	for _, c := range comps {
		if c.Errno != EOK {
			return total, c.Errno
		}
		total += c.Val
	}
	return total, EOK
}

// Readv fills the buffers in order through one batch submission,
// returning the total byte count. A short read (EOF inside a buffer)
// ends the vector without error, matching the scalar Read contract.
func (s *Sys) Readv(fd fs.FD, bufs [][]byte) (uint64, Errno) {
	ops := make([]Op, len(bufs))
	for i, b := range bufs {
		ops[i] = OpRead(fd, uint64(len(b)))
	}
	comps, e := s.SubmitWait(ops)
	if e != EOK {
		return 0, e
	}
	var total uint64
	for i, c := range comps {
		if c.Errno != EOK {
			return total, c.Errno
		}
		total += uint64(copy(bufs[i], c.Data))
		if c.Val < uint64(len(bufs[i])) {
			break
		}
	}
	return total, EOK
}

// batchFD is the model's state for one descriptor during replay.
type batchFD struct {
	ino fs.Ino
	off uint64
	// app mirrors the descriptor's OAppend flag: writes resolve their
	// offset at the model's EOF, which only trusted contents can name.
	app bool
	// tracked is false for descriptors the batch itself opened: their
	// pre-state is not in the snapshot, so ops on them go unchecked.
	tracked bool
}

// checkBatch validates a drained batch against the §3 spec relations
// with one pre/post snapshot pair for the whole batch.
//
// The argument: seed a model from the pre view (per-inode contents, so
// aliased descriptors stay coherent, plus per-descriptor offsets).
// For op k, construct the model's pre state, apply the op's *expected*
// transition to get the model's post state, and check the real
// completion against the actual relation (ReadSpec/WriteSpec/SeekSpec)
// over that model pair. Inductively, if every per-op relation holds and
// the model's endpoint equals the real post view, the batch behaved as
// the sequential composition of the specified transitions.
//
// Two documented degradations keep the check free of false positives:
// descriptors opened inside the batch are untracked (their prior
// contents are unknowable from the snapshot), and a successful
// namespace mutation (unlink/rename, or open-with-OTrunc whose target
// inode the model cannot name) marks contents untrusted — from there on
// only offset evolution is checked.
func checkBatch(pre, post fs.SpecState, ops []WriteOp, comps []Completion) error {
	model := make(map[fs.FD]*batchFD, len(pre.Files))
	contents := make(map[fs.Ino][]byte, len(pre.Files))
	for fd, f := range pre.Files {
		model[fd] = &batchFD{ino: f.Ino, off: f.Offset, app: f.Append, tracked: true}
		if _, ok := contents[f.Ino]; !ok {
			c := make([]byte, len(f.Contents))
			copy(c, f.Contents)
			contents[f.Ino] = c
		}
	}
	trusted := true

	// Pread completions are validated against the batch's *final*
	// contents, not the model state at their position: the kernel serves
	// them from the page cache after every logged op of the batch has
	// applied (see OpPread), so their bytes reflect the batch endpoint.
	type preadEntry struct {
		i    int
		ino  fs.Ino
		off  uint64
		n    uint64 // requested length
		val  uint64
		data []byte
	}
	var preads []preadEntry

	// Socket replay: the per-connection state machine for sockets the
	// batch itself binds (bound → closed; sends only while bound; the
	// accepted count equals the payload length; double close fails).
	// Sockets bound before the batch are untracked — their table state
	// is not in the fs snapshot — so only the count identity is checked.
	type batchSock struct{ closed bool }
	socks := make(map[uint64]*batchSock)

	// The per-op spec calls each need a one-descriptor pre and post
	// state; two reused maps keep the replay loop allocation-free.
	preM := make(map[fs.FD]fs.SpecFile, 1)
	postM := make(map[fs.FD]fs.SpecFile, 1)
	single := func(m map[fs.FD]fs.SpecFile, fd fs.FD, data []byte, off uint64, locked, app bool) fs.SpecState {
		clear(m)
		m[fd] = fs.SpecFile{Contents: data, Offset: off, Locked: locked, Append: app}
		return fs.SpecState{Files: m}
	}

	for i, op := range ops {
		c := comps[i]
		if c.Op != op.Num {
			return fmt.Errorf("batch op %d: completion for %s, submitted %s",
				i, OpName(c.Op), OpName(op.Num))
		}
		if c.Errno != EOK {
			if op.Num == NumSockSend || op.Num == NumSockRecv {
				if bs := socks[op.Sock]; bs != nil && !bs.closed && c.Errno == EBADF {
					return fmt.Errorf("batch op %d: EBADF for socket %d bound in this batch", i, op.Sock)
				}
			}
			// Failed transitions leave the abstract state unchanged; the
			// endpoint comparison below catches a kernel that mutated
			// state on a reported failure.
			continue
		}
		switch op.Num {
		case NumSockBind:
			socks[c.Val] = &batchSock{}
		case NumSockSend:
			if c.Val != uint64(len(op.Data)) {
				return fmt.Errorf("batch op %d (sock_send): accepted %d bytes for a %d-byte payload",
					i, c.Val, len(op.Data))
			}
			if bs := socks[op.Sock]; bs != nil && bs.closed {
				return fmt.Errorf("batch op %d: send succeeded on socket %d closed earlier in the batch",
					i, op.Sock)
			}
		case NumSockRecv:
			if bs := socks[op.Sock]; bs != nil && bs.closed {
				return fmt.Errorf("batch op %d: recv succeeded on socket %d closed earlier in the batch",
					i, op.Sock)
			}
		case NumSockClose:
			if bs := socks[op.Sock]; bs != nil {
				if bs.closed {
					return fmt.Errorf("batch op %d: double close of socket %d reported success", i, op.Sock)
				}
				bs.closed = true
			}
		}
		switch op.Num {
		case NumOpen:
			model[fs.FD(c.Val)] = &batchFD{}
			if OpenFlag(op.Flags)&OTrunc != 0 {
				trusted = false
			}
		case NumClose:
			delete(model, op.FD)
		case NumPread:
			m := model[op.FD]
			if m == nil || !m.tracked {
				continue
			}
			if uint64(len(c.Data)) != c.Val {
				return fmt.Errorf("batch op %d (pread fd %d): %d payload bytes for count %d",
					i, op.FD, len(c.Data), c.Val)
			}
			// A positioned read mutates nothing: the descriptor offset
			// must not move (checked at the endpoint) and the bytes are
			// validated against the final contents after the replay.
			preads = append(preads, preadEntry{i: i, ino: m.ino, off: uint64(op.Off), n: op.Len, val: c.Val, data: c.Data})
		case NumRead:
			m := model[op.FD]
			if m == nil || !m.tracked {
				continue
			}
			if uint64(len(c.Data)) != c.Val {
				return fmt.Errorf("batch op %d (read fd %d): %d payload bytes for count %d",
					i, op.FD, len(c.Data), c.Val)
			}
			if trusted {
				preS := single(preM, op.FD, contents[m.ino], m.off, true, false)
				postS := single(postM, op.FD, contents[m.ino], m.off+c.Val, false, false)
				if err := fs.ReadSpec(preS, postS, op.FD, op.Len, c.Data, c.Val); err != nil {
					return fmt.Errorf("batch op %d: %w", i, err)
				}
			}
			m.off += c.Val
		case NumWrite:
			m := model[op.FD]
			if m == nil || !m.tracked {
				continue
			}
			if !trusted && m.app {
				// An append write lands at EOF, which untrusted contents
				// cannot name — the descriptor's offset evolution is
				// unknowable from here on.
				m.tracked = false
				continue
			}
			wOff := m.off
			if trusted {
				cur := contents[m.ino]
				if m.app {
					wOff = uint64(len(cur)) // append resolves at the model's EOF
				}
				next := spliceWrite(cur, wOff, op.Data)
				preS := single(preM, op.FD, cur, m.off, true, m.app)
				postS := single(postM, op.FD, next, wOff+c.Val, false, m.app)
				if err := fs.WriteSpec(preS, postS, op.FD, op.Data, c.Val); err != nil {
					return fmt.Errorf("batch op %d: %w", i, err)
				}
				contents[m.ino] = next
			}
			m.off = wOff + c.Val
		case NumSeek:
			m := model[op.FD]
			if m == nil || !m.tracked {
				continue
			}
			if trusted {
				preS := single(preM, op.FD, contents[m.ino], m.off, false, false)
				postS := single(postM, op.FD, contents[m.ino], c.Val, false, false)
				if err := fs.SeekSpec(preS, postS, op.FD, op.Off, op.Whence, c.Val); err != nil {
					return fmt.Errorf("batch op %d: %w", i, err)
				}
			}
			m.off = c.Val
		case NumTruncate:
			m := model[op.FD]
			if m == nil || !m.tracked {
				continue
			}
			if trusted {
				cur := contents[m.ino]
				next := make([]byte, op.Len)
				copy(next, cur)
				contents[m.ino] = next
			}
		case NumUnlink, NumRename:
			// The model cannot map paths to inodes; the mutated inode
			// may alias a tracked descriptor, so contents become
			// untrusted (offsets remain exact).
			trusted = false
		}
	}

	if trusted {
		for _, pr := range preads {
			data := contents[pr.ino]
			want := uint64(0)
			if pr.off < uint64(len(data)) {
				want = uint64(len(data)) - pr.off
			}
			if pr.n < want {
				want = pr.n
			}
			if pr.val != want {
				return fmt.Errorf("batch op %d (pread): count %d, want %d against final contents", pr.i, pr.val, want)
			}
			if pr.val > 0 && !bytes.Equal(pr.data, data[pr.off:pr.off+pr.val]) {
				return fmt.Errorf("batch op %d (pread): data diverges from final contents at offset %d", pr.i, pr.off)
			}
		}
	}

	// Endpoint: every tracked, still-open descriptor of the model must
	// coincide with the real post view.
	for fd, m := range model {
		if !m.tracked {
			continue
		}
		qf, ok := post.Files[fd]
		if !ok {
			return fmt.Errorf("batch endpoint: fd %d open in model but absent from post view", fd)
		}
		if qf.Offset != m.off {
			return fmt.Errorf("batch endpoint: fd %d offset %d, model expects %d", fd, qf.Offset, m.off)
		}
		if trusted && !bytes.Equal(qf.Contents, contents[m.ino]) {
			return fmt.Errorf("batch endpoint: fd %d contents diverge from model (%d vs %d bytes)",
				fd, len(qf.Contents), len(contents[m.ino]))
		}
	}
	return nil
}

// spliceWrite applies WriteSpec's expected contents transition: data
// lands at off, zero-filling any gap beyond old EOF. The model owns cur
// (it is seeded as a private copy and truncate replaces it wholesale),
// so the splice mutates in place, reallocating only on growth past
// capacity — the pre-state slice header the caller still holds keeps
// the correct old length either way.
func spliceWrite(cur []byte, off uint64, data []byte) []byte {
	end := off + uint64(len(data))
	switch {
	case end <= uint64(len(cur)):
		// Overwrite within the current extent.
	case end <= uint64(cap(cur)):
		grown := cur[:end]
		for i := len(cur); uint64(i) < off; i++ {
			grown[i] = 0 // gap beyond old EOF zero-fills
		}
		cur = grown
	default:
		next := make([]byte, end, end+end/2)
		copy(next, cur)
		cur = next
	}
	copy(cur[off:], data)
	return cur
}
