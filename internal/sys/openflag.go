package sys

import "github.com/verified-os/vnros/internal/fs"

// OpenFlag is the typed flag set of Sys.Open. The values are the fs
// layer's bits, re-declared as a defined type so that invalid
// combinations are rejected at the API surface (Validate) and so that
// user programs cannot pass an arbitrary int where a flag set is
// expected. Untyped constant expressions like OCreate|ORdWr convert
// implicitly, so existing call sites keep compiling; code holding bare
// int flags migrates through FlagsFromInt.
type OpenFlag uint64

const (
	ORdOnly OpenFlag = fs.ORdOnly
	OWrOnly OpenFlag = fs.OWrOnly
	ORdWr   OpenFlag = fs.ORdWr
	OCreate OpenFlag = fs.OCreate
	OTrunc  OpenFlag = fs.OTrunc
	OAppend OpenFlag = fs.OAppend
)

// openFlagMask is every bit with a defined meaning.
const openFlagMask = ORdOnly | OWrOnly | ORdWr | OCreate | OTrunc | OAppend

// Validate reports EINVAL for flag combinations no kernel transition
// accepts: unknown bits, contradictory access modes, and truncation of
// a descriptor that could never write. It is checked both user-side
// (Sys.Open, before the crossing) and kernel-side (DispatchWrite, so a
// hand-rolled frame cannot bypass it).
func (f OpenFlag) Validate() Errno {
	if f&^openFlagMask != 0 {
		return EINVAL
	}
	if f&OWrOnly != 0 && f&ORdWr != 0 {
		return EINVAL
	}
	// OAppend counts as a write mode: the descriptor layer accepts
	// writes through it (fs.FDTable.Write).
	if f&OTrunc != 0 && f&(OWrOnly|ORdWr|OAppend) == 0 {
		return EINVAL
	}
	return EOK
}

// FlagsFromInt is the compatibility shim for callers still holding the
// pre-typed bare-int flags.
func FlagsFromInt(flags int) OpenFlag { return OpenFlag(flags) }
