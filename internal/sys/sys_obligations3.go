package sys

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations: read-only syscalls are observationally
// pure, stat agrees with the write history, and readdir reflects
// exactly the created names.
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "sys", Name: "read-ops-are-pure", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				s := NewSys(proc.InitPID, &directHandler{k: k})
				if e := s.Mkdir("/d"); e != EOK {
					return fmt.Errorf("mkdir: %v", e)
				}
				fd, e := s.Open("/d/f", fs.OCreate|fs.ORdWr)
				if e != EOK {
					return fmt.Errorf("open: %v", e)
				}
				if _, e := s.Write(fd, []byte("stable")); e != EOK {
					return fmt.Errorf("write: %v", e)
				}
				pre, _ := k.ViewFDs(proc.InitPID)
				for i := 0; i < 200; i++ {
					switch r.Intn(3) {
					case 0:
						_, _ = s.Stat("/d/f")
					case 1:
						_, _ = s.ReadDir("/d")
					default:
						_, _ = s.GetPID()
					}
				}
				post, _ := k.ViewFDs(proc.InitPID)
				if len(pre.Files) != len(post.Files) {
					return fmt.Errorf("read ops changed descriptor table")
				}
				for fdk, f := range pre.Files {
					g2 := post.Files[fdk]
					if f.Offset != g2.Offset || string(f.Contents) != string(g2.Contents) {
						return fmt.Errorf("read ops mutated fd %d state", fdk)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "stat-tracks-write-history", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				s := NewSys(proc.InitPID, &directHandler{k: k})
				fd, e := s.Open("/grow", fs.OCreate|fs.ORdWr)
				if e != EOK {
					return fmt.Errorf("open: %v", e)
				}
				var size, offset uint64
				for i := 0; i < 300; i++ {
					switch r.Intn(3) {
					case 0:
						n := uint64(r.Intn(100))
						data := make([]byte, n)
						if _, e := s.Write(fd, data); e != EOK {
							return fmt.Errorf("write: %v", e)
						}
						offset += n
						if offset > size {
							size = offset
						}
					case 1:
						target := uint64(r.Intn(300))
						if _, e := s.Seek(fd, int64(target), fs.SeekSet); e != EOK {
							return fmt.Errorf("seek: %v", e)
						}
						offset = target
					default:
						st, e := s.Stat("/grow")
						if e != EOK {
							return fmt.Errorf("stat: %v", e)
						}
						if st.Size != size {
							return fmt.Errorf("iter %d: stat size %d, model %d", i, st.Size, size)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "readdir-reflects-creates", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				s := NewSys(proc.InitPID, &directHandler{k: k})
				if e := s.Mkdir("/dir"); e != EOK {
					return fmt.Errorf("mkdir: %v", e)
				}
				want := map[string]bool{}
				for i := 0; i < 100; i++ {
					name := fmt.Sprintf("e%02d", r.Intn(40))
					path := "/dir/" + name
					if r.Intn(2) == 0 {
						if _, e := s.Open(path, fs.OCreate); e == EOK && !want[name] {
							want[name] = true
						}
					} else if want[name] {
						if e := s.Unlink(path); e != EOK {
							return fmt.Errorf("unlink: %v", e)
						}
						delete(want, name)
					}
					ents, e := s.ReadDir("/dir")
					if e != EOK {
						return fmt.Errorf("readdir: %v", e)
					}
					if len(ents) != len(want) {
						return fmt.Errorf("iter %d: %d entries, model %d", i, len(ents), len(want))
					}
					for _, ent := range ents {
						if !want[ent.Name] {
							return fmt.Errorf("phantom entry %q", ent.Name)
						}
					}
				}
				return nil
			}},
	)
}
