package sys

import (
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
)

// lockedHandler serializes kernel dispatch, standing in for the NR
// combiner's exclusion so concurrent syscalls through one Sys handle
// are legal (the kernel itself is a sequential structure).
type lockedHandler struct {
	mu sync.Mutex
	h  directHandler
}

func (l *lockedHandler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Syscall(frame, payload)
}

// ViewFDs implements Viewer under the same lock, mirroring how core's
// replicaViewer snapshots through Replica.Inspect (which holds the
// replica read lock against the combiner).
func (l *lockedHandler) ViewFDs(pid proc.PID) (fs.SpecState, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.k.ViewFDs(pid)
}

// TestEnableContractConcurrentWithSyscalls is the regression test for
// the unsynchronized viewer write: EnableContract used to store
// s.viewer with plain assignment while concurrent syscalls read it in
// view(), a data race once a contract is attached after goroutines
// start. Run under -race.
func TestEnableContractConcurrentWithSyscalls(t *testing.T) {
	k := newTestKernel()
	h := &lockedHandler{h: directHandler{k: k}}
	s := NewSys(proc.InitPID, h)

	fd, e := s.Open("/race.txt", fs.OCreate|fs.ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	if _, e := s.Write(fd, []byte("contract race regression")); e != EOK {
		t.Fatal(e)
	}

	const workers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 8)
			<-start
			for i := 0; i < 200; i++ {
				if _, e := s.Seek(fd, 0, fs.SeekSet); e != EOK {
					t.Errorf("seek: %v", e)
					return
				}
				if _, e := s.Read(fd, buf); e != EOK {
					t.Errorf("read: %v", e)
					return
				}
			}
		}()
	}
	close(start)
	// Attach (and re-attach) the contract while syscalls are in flight.
	for i := 0; i < 100; i++ {
		s.EnableContract(h)
	}
	wg.Wait()
	if err := s.ContractErr(); err != nil {
		t.Fatalf("contract violation: %v", err)
	}
}

// TestSyscallOpcodeSpaceCoversABI pins the obs opcode bound to the wire
// ABI: if a syscall number outgrows obs.MaxSyscallOps, its stats would
// silently clamp onto the last opcode.
func TestSyscallOpcodeSpaceCoversABI(t *testing.T) {
	if MaxOpNum >= obs.MaxSyscallOps {
		t.Fatalf("sys.MaxOpNum = %d >= obs.MaxSyscallOps = %d; grow the opcode space",
			MaxOpNum, obs.MaxSyscallOps)
	}
	if OpName(NumOpen) != "open" || OpName(NumMemCAS) != "mem_cas" {
		t.Fatalf("OpName mapping broken: %q %q", OpName(NumOpen), OpName(NumMemCAS))
	}
	if OpName(99) != "sys99" {
		t.Fatalf("OpName fallback = %q", OpName(99))
	}
}
