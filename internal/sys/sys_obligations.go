package sys

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/sched"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the syscall-layer verification
// conditions: codec round trips (the §3 marshalling obligation for the
// actual syscall ABI), transparency of the boundary (marshalled calls
// behave exactly like direct dispatch), the read_spec contract on the
// full path, and memory-mapping semantics.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	registerEvenMoreObligations(g)
	registerRingObligations(g)
	registerSyncObligations(g)
	g.Register(
		verifier.Obligation{Module: "sys", Name: "writeop-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 1000; i++ {
					op := randomWriteOp(r)
					frame, payload := EncodeWrite(op)
					got, err := DecodeWrite(frame, payload)
					if err != nil {
						return err
					}
					if !reflect.DeepEqual(normalizeOp(op), normalizeOp(got)) {
						return fmt.Errorf("write op round trip mismatch:\n  in  %+v\n  out %+v", op, got)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "readop-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 1000; i++ {
					op := ReadOp{
						Num:  uint64(r.Intn(40)),
						PID:  proc.PID(r.Uint64()),
						FD:   fs.FD(r.Uint64()),
						VA:   mmu.VAddr(r.Uint64()),
						Len:  r.Uint64(),
						TID:  sched.TID(r.Uint64()),
						Path: randPath(r),
						Off:  r.Uint64(),
					}
					frame, payload := EncodeRead(op)
					got, err := DecodeRead(frame, payload)
					if err != nil {
						return err
					}
					if got != op {
						return fmt.Errorf("read op round trip mismatch")
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "resp-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 1000; i++ {
					resp := randomResp(r)
					ret, payload := EncodeResp(resp)
					got, err := DecodeResp(ret, payload)
					if err != nil {
						return err
					}
					if !reflect.DeepEqual(normalizeResp(resp), normalizeResp(got)) {
						return fmt.Errorf("resp round trip mismatch:\n  in  %+v\n  out %+v", resp, got)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "boundary-transparent", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// The same op stream through (a) direct kernel dispatch
				// and (b) the marshalled Sys boundary must produce
				// identical results.
				kA := newTestKernel()
				kB := newTestKernel()
				h := &directHandler{k: kB}
				s := NewSys(proc.InitPID, h)

				if _, err := kA.fs.Create("/f"); err != nil {
					return err
				}
				if e := s.Mkdir("/tmp"); e != EOK {
					return fmt.Errorf("mkdir via boundary: %v", e)
				}
				if _, err := kA.fs.Mkdir("/tmp"); err != nil {
					return err
				}
				fdB, e := s.Open("/data", fs.OCreate|fs.ORdWr)
				if e != EOK {
					return fmt.Errorf("open: %v", e)
				}
				respA := kA.DispatchWrite(WriteOp{Num: NumOpen, PID: proc.InitPID, Path: "/data", Flags: fs.OCreate | fs.ORdWr})
				if respA.Errno != EOK || fs.FD(respA.Val) != fdB {
					return fmt.Errorf("fd diverged: %v vs %v", respA.Val, fdB)
				}
				payload := make([]byte, 100+r.Intn(400))
				r.Read(payload)
				if n, e := s.Write(fdB, payload); e != EOK || n != uint64(len(payload)) {
					return fmt.Errorf("write: %d, %v", n, e)
				}
				kA.DispatchWrite(WriteOp{Num: NumWrite, PID: proc.InitPID, FD: fs.FD(respA.Val), Data: payload})
				if _, e := s.Seek(fdB, 0, fs.SeekSet); e != EOK {
					return fmt.Errorf("seek: %v", e)
				}
				kA.DispatchWrite(WriteOp{Num: NumSeek, PID: proc.InitPID, FD: fs.FD(respA.Val), Whence: fs.SeekSet})
				buf := make([]byte, len(payload))
				if _, e := s.Read(fdB, buf); e != EOK || !bytes.Equal(buf, payload) {
					return fmt.Errorf("read through boundary diverged")
				}
				// Final kernel states agree (B additionally created /f? no
				// — A created /f directly; mirror it through the boundary).
				stA, _ := kA.fs.StatPath("/data")
				stB, e := s.Stat("/data")
				if e != EOK || stA.Size != stB.Size || stA.Kind != stB.Kind {
					return fmt.Errorf("stat diverged: %+v vs %+v", stA, stB)
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "read-contract-full-path", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				s := NewSys(proc.InitPID, &directHandler{k: k})
				s.EnableContract(k)
				fd, e := s.Open("/c", fs.OCreate|fs.ORdWr)
				if e != EOK {
					return fmt.Errorf("open: %v", e)
				}
				for i := 0; i < 200; i++ {
					switch r.Intn(3) {
					case 0:
						data := make([]byte, r.Intn(100))
						r.Read(data)
						if _, e := s.Write(fd, data); e != EOK {
							return fmt.Errorf("write: %v", e)
						}
					case 1:
						if _, e := s.Read(fd, make([]byte, r.Intn(100))); e != EOK {
							return fmt.Errorf("read: %v", e)
						}
					default:
						if _, e := s.Seek(fd, int64(r.Intn(200))-50, r.Intn(3)); e != EOK && e != EINVAL {
							return fmt.Errorf("seek: %v", e)
						}
					}
				}
				return s.ContractErr()
			}},
		verifier.Obligation{Module: "sys", Name: "contract-catches-broken-kernel", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				h := &corruptingHandler{directHandler{k: k}}
				s := NewSys(proc.InitPID, h)
				s.EnableContract(k)
				fd, e := s.Open("/x", fs.OCreate|fs.ORdWr)
				if e != EOK {
					return fmt.Errorf("open: %v", e)
				}
				if _, e := s.Write(fd, []byte("sensitive")); e != EOK {
					return fmt.Errorf("write: %v", e)
				}
				if _, e := s.Seek(fd, 0, fs.SeekSet); e != EOK {
					return fmt.Errorf("seek: %v", e)
				}
				buf := make([]byte, 9)
				_, _ = s.Read(fd, buf)
				if s.ContractErr() == nil {
					return fmt.Errorf("contract checker missed corrupted read data")
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "mmap-memory-semantics", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				s := NewSys(proc.InitPID, &directHandler{k: k})
				pidResp := k.DispatchWrite(WriteOp{Num: NumSpawn, PID: proc.InitPID, Name: "user"})
				if pidResp.Errno != EOK {
					return fmt.Errorf("spawn: %v", pidResp.Errno)
				}
				pid := proc.PID(pidResp.Val)
				su := NewSys(pid, &directHandler{k: k})
				_ = s

				// mmap 4 pages with caller-provided frames (as core does).
				frames := testFrames(k, 4)
				resp := k.DispatchWrite(WriteOp{Num: NumMMap, PID: pid, Size: 4 * mmu.L1PageSize, Frames: frames})
				if resp.Errno != EOK {
					return fmt.Errorf("mmap: %v", resp.Errno)
				}
				base := mmu.VAddr(resp.Val)

				// The process's view: write then read through the MMU path.
				blob := make([]byte, 3*mmu.L1PageSize)
				r.Read(blob)
				if e := k.UserWrite(pid, base+100, blob); e != EOK {
					return fmt.Errorf("user write: %v", e)
				}
				got := make([]byte, len(blob))
				if e := k.UserRead(pid, base+100, got); e != EOK {
					return fmt.Errorf("user read: %v", e)
				}
				if !bytes.Equal(got, blob) {
					return fmt.Errorf("user memory round trip mismatch")
				}
				// Resolve agrees with the walk.
				if _, e := su.MemResolve(base); e != EOK {
					return fmt.Errorf("resolve: %v", e)
				}
				// munmap returns all frames and unmaps.
				resp = k.DispatchWrite(WriteOp{Num: NumMUnmap, PID: pid, VA: base})
				if resp.Errno != EOK || len(resp.Freed) != 4 {
					return fmt.Errorf("munmap: %v, freed %d", resp.Errno, len(resp.Freed))
				}
				if e := k.UserRead(pid, base, make([]byte, 8)); e != EFAULT {
					return fmt.Errorf("read after munmap: %v, want EFAULT", e)
				}
				return nil
			}},
		verifier.Obligation{Module: "sys", Name: "exit-reclaims-process-memory", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				k := newTestKernel()
				pidResp := k.DispatchWrite(WriteOp{Num: NumSpawn, PID: proc.InitPID, Name: "leaky"})
				pid := proc.PID(pidResp.Val)
				frames := testFrames(k, 8)
				resp := k.DispatchWrite(WriteOp{Num: NumMMap, PID: pid, Size: 8 * mmu.L1PageSize, Frames: frames})
				if resp.Errno != EOK {
					return fmt.Errorf("mmap: %v", resp.Errno)
				}
				resp = k.DispatchWrite(WriteOp{Num: NumExit, PID: pid, Code: 0})
				if resp.Errno != EOK {
					return fmt.Errorf("exit: %v", resp.Errno)
				}
				if len(resp.Freed) != 8 {
					return fmt.Errorf("exit freed %d frames, want 8", len(resp.Freed))
				}
				if _, ok := k.Root(pid); ok {
					return fmt.Errorf("address space survived exit")
				}
				return nil
			}},
	)
}

// newTestKernel builds a kernel over fresh memory with a simple frame
// source.
func newTestKernel() *Kernel {
	pmem := mem.New(128 << 20)
	tables := pt.NewSimpleFrameSource(pmem, 0x10_0000, 16<<20)
	return NewKernel(pmem, tables)
}

// testFrames allocates n data frames from a region above the table
// area (standing in for core's shared data allocator).
var testFrameNext = map[*Kernel]mem.PAddr{}

func testFrames(k *Kernel, n int) []mem.PAddr {
	next, ok := testFrameNext[k]
	if !ok {
		next = 32 << 20
	}
	var out []mem.PAddr
	for i := 0; i < n; i++ {
		out = append(out, next)
		next += mem.PageSize
	}
	testFrameNext[k] = next
	return out
}

// directHandler dispatches through the codec to a single kernel.
type directHandler struct {
	k *Kernel
}

// Syscall implements Handler.
func (h *directHandler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	if frame.Num == NumBatch {
		ops, err := DecodeBatch(frame, payload)
		if err != nil {
			return EncodeBatchResp(nil, EINVAL)
		}
		comps := make([]Completion, len(ops))
		for i, op := range ops {
			if !IsBatchableOp(op.Num) {
				comps[i] = Completion{Op: op.Num, Errno: ENOSYS}
				continue
			}
			comps[i] = BatchCompletion(op, h.k.DispatchWrite(op))
		}
		return EncodeBatchResp(comps, EOK)
	}
	if IsReadOp(frame.Num) {
		op, err := DecodeRead(frame, payload)
		if err != nil {
			return EncodeResp(Resp{Errno: EINVAL})
		}
		return EncodeResp(h.k.DispatchRead(op))
	}
	op, err := DecodeWrite(frame, payload)
	if err != nil {
		return EncodeResp(Resp{Errno: EINVAL})
	}
	return EncodeResp(h.k.DispatchWrite(op))
}

// corruptingHandler flips a byte in read results — the broken kernel
// the contract checker must catch.
type corruptingHandler struct {
	directHandler
}

func (h *corruptingHandler) Syscall(frame marshal.SyscallFrame, payload []byte) (marshal.RetFrame, []byte) {
	ret, out := h.directHandler.Syscall(frame, payload)
	if frame.Num == NumRead && ret.Errno == 0 {
		resp, err := DecodeResp(ret, out)
		if err == nil && len(resp.Data) > 0 {
			resp.Data[0] ^= 0xff
			return EncodeResp(resp)
		}
	}
	return ret, out
}

func randomWriteOp(r *rand.Rand) WriteOp {
	op := WriteOp{
		Num:    uint64(r.Intn(40)),
		PID:    proc.PID(r.Uint64()),
		FD:     fs.FD(r.Uint64()),
		VA:     mmu.VAddr(r.Uint64()),
		Len:    r.Uint64(),
		Size:   r.Uint64(),
		TID:    sched.TID(r.Uint64()),
		Flags:  r.Uint64(),
		Whence: int(int64(r.Uint32())),
		Off:    int64(r.Uint64()),
		Code:   int(int32(r.Uint32())),
		Sig:    proc.Signal(r.Intn(256)),
		Target: proc.PID(r.Uint64()),
		Pri:    sched.Priority(r.Intn(256)),
		Core:   int(int32(r.Uint32())),
		Path:   randPath(r),
		Path2:  randPath(r),
		Name:   randPath(r),
		Sock:   r.Uint64(),
		Addr:   r.Uint64(),
		Port:   uint16(r.Uint32()),
		Word:   r.Uint32(),
	}
	if r.Intn(2) == 0 {
		op.Data = make([]byte, r.Intn(256))
		r.Read(op.Data)
	}
	for i := 0; i < r.Intn(5); i++ {
		op.Frames = append(op.Frames, mem.PAddr(r.Uint64()))
	}
	return op
}

func randomResp(r *rand.Rand) Resp {
	resp := Resp{
		Errno: Errno(r.Intn(100)),
		Val:   r.Uint64(),
		Stat: fs.Stat{Ino: fs.Ino(r.Uint64()), Kind: fs.Kind(r.Intn(2)),
			Size: r.Uint64(), Nlink: r.Intn(10)},
		Wait:  proc.WaitResult{PID: proc.PID(r.Uint64()), ExitCode: int(int32(r.Uint32()))},
		TID:   sched.TID(r.Uint64()),
		Sig:   proc.Signal(r.Intn(256)),
		SigOK: r.Intn(2) == 0,
	}
	if r.Intn(2) == 0 {
		resp.Data = make([]byte, r.Intn(256))
		r.Read(resp.Data)
	}
	for i := 0; i < r.Intn(4); i++ {
		resp.Entries = append(resp.Entries, fs.DirEntry{
			Name: randPath(r), Ino: fs.Ino(r.Uint64()), Kind: fs.Kind(r.Intn(2))})
	}
	for i := 0; i < r.Intn(4); i++ {
		resp.Freed = append(resp.Freed, mem.PAddr(r.Uint64()))
	}
	return resp
}

func randPath(r *rand.Rand) string {
	const chars = "abcdefghij/._-"
	n := r.Intn(30)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[r.Intn(len(chars))]
	}
	return string(b)
}

// normalizeOp maps nil and empty slices to a canonical form for
// comparison (the wire format does not distinguish them).
func normalizeOp(op WriteOp) WriteOp {
	if len(op.Data) == 0 {
		op.Data = nil
	}
	if len(op.Frames) == 0 {
		op.Frames = nil
	}
	return op
}

func normalizeResp(r Resp) Resp {
	if len(r.Data) == 0 {
		r.Data = nil
	}
	if len(r.Entries) == 0 {
		r.Entries = nil
	}
	if len(r.Freed) == 0 {
		r.Freed = nil
	}
	return r
}
