package sys

import (
	"bytes"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/verifier"
)

func newSysPair(t *testing.T) (*Kernel, *Sys) {
	t.Helper()
	k := newTestKernel()
	s := NewSys(proc.InitPID, &directHandler{k: k})
	s.EnableContract(k)
	return k, s
}

func TestFileSyscallFlow(t *testing.T) {
	_, s := newSysPair(t)
	if e := s.Mkdir("/home"); e != EOK {
		t.Fatal(e)
	}
	fd, e := s.Open("/home/notes.txt", fs.OCreate|fs.ORdWr)
	if e != EOK {
		t.Fatal(e)
	}
	n, e := s.Write(fd, []byte("hello vnros"))
	if e != EOK || n != 11 {
		t.Fatalf("write = %d, %v", n, e)
	}
	if _, e := s.Seek(fd, 0, fs.SeekSet); e != EOK {
		t.Fatal(e)
	}
	buf := make([]byte, 5)
	n, e = s.Read(fd, buf)
	if e != EOK || n != 5 || string(buf) != "hello" {
		t.Fatalf("read = %d %q %v", n, buf, e)
	}
	st, e := s.Stat("/home/notes.txt")
	if e != EOK || st.Size != 11 || st.Kind != fs.KindFile {
		t.Fatalf("stat = %+v, %v", st, e)
	}
	ents, e := s.ReadDir("/home")
	if e != EOK || len(ents) != 1 || ents[0].Name != "notes.txt" {
		t.Fatalf("readdir = %+v, %v", ents, e)
	}
	if e := s.Close(fd); e != EOK {
		t.Fatal(e)
	}
	if _, e := s.Read(fd, buf); e != EBADF {
		t.Fatalf("read closed fd: %v", e)
	}
	if e := s.ContractErr(); e != nil {
		t.Fatalf("contract violation: %v", e)
	}
}

func TestFileErrnos(t *testing.T) {
	_, s := newSysPair(t)
	if _, e := s.Open("/missing", 0); e != ENOENT {
		t.Errorf("open missing: %v", e)
	}
	if e := s.Mkdir("/d"); e != EOK {
		t.Fatal(e)
	}
	if e := s.Mkdir("/d"); e != EEXIST {
		t.Errorf("mkdir dup: %v", e)
	}
	if e := s.Unlink("/d"); e != EISDIR {
		t.Errorf("unlink dir: %v", e)
	}
	if e := s.Rmdir("/missing"); e != ENOENT {
		t.Errorf("rmdir missing: %v", e)
	}
	if _, e := s.Stat("relative"); e != EINVAL {
		t.Errorf("relative path: %v", e)
	}
}

func TestRenameAndLink(t *testing.T) {
	_, s := newSysPair(t)
	fd, _ := s.Open("/a", fs.OCreate|fs.ORdWr)
	if _, e := s.Write(fd, []byte("x")); e != EOK {
		t.Fatal(e)
	}
	if e := s.Link("/a", "/b"); e != EOK {
		t.Fatal(e)
	}
	if e := s.Rename("/a", "/c"); e != EOK {
		t.Fatal(e)
	}
	if _, e := s.Stat("/a"); e != ENOENT {
		t.Errorf("old name: %v", e)
	}
	st, e := s.Stat("/b")
	if e != EOK || st.Nlink != 2 {
		t.Errorf("link stat = %+v, %v", st, e)
	}
}

func TestProcessSyscalls(t *testing.T) {
	_, s := newSysPair(t)
	pid, e := s.Spawn("child")
	if e != EOK {
		t.Fatal(e)
	}
	child := NewSys(pid, s.h)
	gotPID, e := child.GetPID()
	if e != EOK || gotPID != pid {
		t.Fatalf("getpid = %d, %v", gotPID, e)
	}
	if e := s.Kill(pid, proc.SIGUSR1); e != EOK {
		t.Fatal(e)
	}
	sig, got, e := child.TakeSignal()
	if e != EOK || !got || sig != proc.SIGUSR1 {
		t.Fatalf("take = %v %t %v", sig, got, e)
	}
	if e := child.Exit(7); e != EOK {
		t.Fatal(e)
	}
	res, e := s.Wait()
	if e != EOK || res.PID != pid || res.ExitCode != 7 {
		t.Fatalf("wait = %+v, %v", res, e)
	}
	if _, e := s.Wait(); e != ECHILD {
		t.Errorf("wait with no children: %v", e)
	}
}

func TestKillSIGKILLTearsDown(t *testing.T) {
	k, s := newSysPair(t)
	pid, _ := s.Spawn("victim")
	frames := testFrames(k, 2)
	resp := k.DispatchWrite(WriteOp{Num: NumMMap, PID: pid, Size: 2 * mmu.L1PageSize, Frames: frames})
	if resp.Errno != EOK {
		t.Fatal(resp.Errno)
	}
	if e := s.Kill(pid, proc.SIGKILL); e != EOK {
		t.Fatal(e)
	}
	p, err := k.Procs().Get(pid)
	if err != nil || p.State != proc.StateZombie || p.ExitCode != 128+int(proc.SIGKILL) {
		t.Fatalf("after SIGKILL: %+v, %v", p, err)
	}
	if _, ok := k.Root(pid); ok {
		t.Error("address space survived SIGKILL")
	}
}

func TestMMapThroughSys(t *testing.T) {
	k, s := newSysPair(t)
	pid, _ := s.Spawn("mapper")
	su := NewSys(pid, s.h)
	// Sys.MMap without frames fails EINVAL (core provides frames); the
	// kernel-level path is exercised in the obligations. Here: the
	// direct op with frames.
	if _, e := su.MMap(mmu.L1PageSize); e != EINVAL {
		t.Fatalf("frameless mmap: %v", e)
	}
	frames := testFrames(k, 1)
	resp := k.DispatchWrite(WriteOp{Num: NumMMap, PID: pid, Size: mmu.L1PageSize, Frames: frames})
	if resp.Errno != EOK {
		t.Fatal(resp.Errno)
	}
	base := mmu.VAddr(resp.Val)
	if base < UserVABase {
		t.Fatalf("base = %v", base)
	}
	pa, e := su.MemResolve(base + 42)
	if e != EOK || pa != uint64(frames[0])+42 {
		t.Fatalf("resolve = %#x, %v", pa, e)
	}
	if e := su.MUnmap(base); e != EOK {
		t.Fatal(e)
	}
	if _, e := su.MemResolve(base); e != EFAULT {
		t.Fatalf("resolve after munmap: %v", e)
	}
}

func TestUserMemoryIsolation(t *testing.T) {
	k, s := newSysPair(t)
	p1, _ := s.Spawn("a")
	p2, _ := s.Spawn("b")
	f1 := testFrames(k, 1)
	f2 := testFrames(k, 1)
	r1 := k.DispatchWrite(WriteOp{Num: NumMMap, PID: p1, Size: mmu.L1PageSize, Frames: f1})
	r2 := k.DispatchWrite(WriteOp{Num: NumMMap, PID: p2, Size: mmu.L1PageSize, Frames: f2})
	if r1.Errno != EOK || r2.Errno != EOK {
		t.Fatal(r1.Errno, r2.Errno)
	}
	// Same virtual base in both (first-fit from identical layouts) yet
	// distinct physical frames: writes do not leak across.
	if e := k.UserWrite(p1, mmu.VAddr(r1.Val), []byte("AAAA")); e != EOK {
		t.Fatal(e)
	}
	if e := k.UserWrite(p2, mmu.VAddr(r2.Val), []byte("BBBB")); e != EOK {
		t.Fatal(e)
	}
	b1 := make([]byte, 4)
	b2 := make([]byte, 4)
	if e := k.UserRead(p1, mmu.VAddr(r1.Val), b1); e != EOK {
		t.Fatal(e)
	}
	if e := k.UserRead(p2, mmu.VAddr(r2.Val), b2); e != EOK {
		t.Fatal(e)
	}
	if string(b1) != "AAAA" || string(b2) != "BBBB" {
		t.Fatalf("isolation broken: %q %q", b1, b2)
	}
}

func TestThreadOps(t *testing.T) {
	k, _ := newSysPair(t)
	if r := k.DispatchWrite(WriteOp{Num: NumThreadAdd, TID: 1, Pri: 0}); r.Errno != EOK {
		t.Fatal(r.Errno)
	}
	r := k.DispatchWrite(WriteOp{Num: NumPickNext, Core: 0})
	if r.Errno != EOK || r.TID != 1 {
		t.Fatalf("pick = %+v", r)
	}
	if r := k.DispatchWrite(WriteOp{Num: NumThreadBlock, TID: 1}); r.Errno != EOK {
		t.Fatal(r.Errno)
	}
	if r := k.DispatchWrite(WriteOp{Num: NumThreadWake, TID: 1}); r.Errno != EOK {
		t.Fatal(r.Errno)
	}
	r = k.DispatchWrite(WriteOp{Num: NumPickNext, Core: 1})
	if r.Errno != EOK || r.TID != 1 {
		t.Fatalf("re-pick = %+v", r)
	}
	if r := k.DispatchWrite(WriteOp{Num: NumThreadExit, TID: 1}); r.Errno != EOK {
		t.Fatal(r.Errno)
	}
	if r := k.DispatchWrite(WriteOp{Num: NumPickNext, Core: 0}); r.Errno == EOK {
		t.Fatal("pick from empty queue succeeded")
	}
}

func TestUnknownSyscall(t *testing.T) {
	k, _ := newSysPair(t)
	if r := k.DispatchWrite(WriteOp{Num: 9999}); r.Errno != ENOSYS {
		t.Fatalf("unknown write: %v", r.Errno)
	}
	if r := k.DispatchRead(ReadOp{Num: 9999}); r.Errno != ENOSYS {
		t.Fatalf("unknown read: %v", r.Errno)
	}
}

func TestTruncateThroughSys(t *testing.T) {
	_, s := newSysPair(t)
	fd, _ := s.Open("/t", fs.OCreate|fs.ORdWr)
	if _, e := s.Write(fd, bytes.Repeat([]byte("x"), 100)); e != EOK {
		t.Fatal(e)
	}
	if e := s.Truncate(fd, 10); e != EOK {
		t.Fatal(e)
	}
	st, _ := s.Stat("/t")
	if st.Size != 10 {
		t.Fatalf("size = %d", st.Size)
	}
}

func TestErrnoStrings(t *testing.T) {
	if EOK.String() != "OK" || ENOENT.String() != "ENOENT" {
		t.Fatal("errno strings broken")
	}
	if Errno(77).String() != "errno(77)" {
		t.Fatalf("unknown errno = %q", Errno(77).String())
	}
	if ENOENT.Error() == "" {
		t.Fatal("Error() empty")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 61})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
