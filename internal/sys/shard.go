package sys

import (
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/mm"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
)

// This file is the kernel half of the sharded composition (§4.1): the
// op → shard-key classification the router dispatches by, and the
// DispatchWrite/DispatchRead cases for the internal cross-shard
// protocol ops declared in ops.go. Each internal op touches exactly one
// shard's slice of the state (descriptor tables, the process tree,
// per-process memory, or the filesystem), which is what the
// shard-isolation obligation checks.

// ShardTarget classifies where an operation's footprint lives when the
// kernel is sharded.
type ShardTarget int

const (
	// TargetLocal: served outside the replicated state (futex, sockets,
	// raw memory, sync) — same as the monolithic kernel.
	TargetLocal ShardTarget = iota
	// TargetProcKey: one op on the process shard owning op.PID
	// (descriptor close, mmap/munmap, memresolve).
	TargetProcKey
	// TargetProcTree: one op on process shard 0, which holds the global
	// process tree and the run queue (waitpid, signals, thread ops).
	TargetProcTree
	// TargetFsNS: a namespace mutation, broadcast to every filesystem
	// shard in ascending shard order under the router's namespace mutex
	// — the total order that keeps the replicated namespaces identical.
	TargetFsNS
	// TargetFsPath: a read-only namespace op; the namespace is
	// replicated, so any filesystem shard can serve it.
	TargetFsPath
	// TargetCompose: a multi-step cross-shard protocol (open, read,
	// write, seek, truncate, stat, spawn, exit, kill) — the router
	// sequences internal ops per the documented ordering rules.
	TargetCompose
)

// ClassifyWrite maps a mutating syscall to its shard target. Wire-level
// socket ops classify local defensively: the dispatcher intercepts them
// before routing and sequences their table half (socktab ops on the
// owner shard) and device half itself.
func ClassifyWrite(num uint64) ShardTarget {
	switch {
	case IsLocalOp(num) || IsSockOp(num) || num == NumSync:
		return TargetLocal
	}
	switch num {
	case NumClose, NumMMap, NumMUnmap, NumPageMap, NumPageUnmap:
		return TargetProcKey
	case NumWaitPID, NumTakeSignal,
		NumThreadAdd, NumThreadYield, NumThreadBlock, NumThreadWake, NumThreadExit, NumPickNext:
		return TargetProcTree
	case NumMkdir, NumUnlink, NumRmdir, NumRename, NumLink:
		return TargetFsNS
	}
	return TargetCompose
}

// ClassifyRead maps a read-only syscall to its shard target.
func ClassifyRead(num uint64) ShardTarget {
	switch num {
	case NumReadDir:
		return TargetFsPath
	case NumGetPID:
		return TargetProcTree
	case NumMemResolve:
		return TargetProcKey
	}
	return TargetCompose // NumStat: lookup on a namespace replica, stat on the data owner
}

// dispatchShardWrite serves the internal mutating protocol ops
// (DispatchWrite's default arm).
func (k *Kernel) dispatchShardWrite(op WriteOp) Resp {
	switch op.Num {
	case NumFDOpen:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		return ok(uint64(t.Attach(op.Ino, int(op.Flags))))

	case NumFDLock:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		of, err := t.Get(op.FD)
		if err != nil {
			return fail(err)
		}
		if of.Locked {
			// Another core holds the descriptor across its two-step data
			// op; the router retries. Deterministic: the lock state is a
			// function of this shard's log prefix.
			return Resp{Errno: EAGAIN}
		}
		of.Locked = true
		return Resp{Errno: EOK, Ino: of.Ino, Off: of.Offset, Val: uint64(of.Flags)}

	case NumFDUnlock:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		of, err := t.Get(op.FD)
		if err != nil {
			return fail(err)
		}
		if !of.Locked {
			return fail(fs.ErrNotLocked)
		}
		of.Offset = op.Len
		of.Locked = false
		return ok(0)

	case NumFDSeek:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		of, err := t.Get(op.FD)
		if err != nil {
			return fail(err)
		}
		var base uint64
		switch op.Whence {
		case fs.SeekSet:
			base = 0
		case fs.SeekCur:
			base = of.Offset
		case fs.SeekEnd:
			base = op.Size // prefetched from the data owner by the router
		default:
			return fail(fs.ErrInval)
		}
		n := int64(base) + op.Off
		if n < 0 {
			return fail(fs.ErrInval)
		}
		of.Offset = uint64(n)
		return ok(of.Offset)

	case NumProcSpawn:
		pid, err := k.procs.Spawn(op.PID, op.Name)
		if err != nil {
			return fail(err)
		}
		return ok(uint64(pid))

	case NumProcUnspawn:
		// Roll back a spawn whose resource attach failed elsewhere —
		// the same exit+reap pair the monolithic spawn uses.
		_ = k.procs.Exit(op.Target, -1)
		_, _ = k.procs.Wait(op.PID)
		return ok(0)

	case NumProcAttach:
		pid := op.Target
		vs, err := mm.NewVSpace(UserVABase, UserVATop)
		if err != nil {
			return fail(err)
		}
		as, err := pt.NewVerified(k.pmem, k.tables, nil)
		if err != nil {
			return fail(err)
		}
		k.fds[pid] = fs.NewFDTable(k.fs)
		k.vs[pid] = vs
		k.spaces[pid] = as
		return ok(uint64(pid))

	case NumProcDetach:
		// The resource half of exit: identical teardown to the
		// monolithic exit, minus the process-tree transition.
		detach := op
		detach.PID = op.Target
		return k.detach(detach)

	case NumProcExit:
		if err := k.procs.Exit(op.PID, op.Code); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumFsCreate:
		ino, err := k.fs.Create(op.Path)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(ino), Ino: ino}

	case NumFsWriteAt:
		off := uint64(op.Off)
		if op.Flags&fs.OAppend != 0 {
			// Append resolves EOF at apply time on the data owner — the
			// one place the size is authoritative — so concurrent
			// appends through different descriptors cannot overlap.
			st, err := k.fs.StatIno(op.Ino)
			if err != nil {
				return fail(err)
			}
			off = st.Size
		}
		n, err := k.fs.WriteAt(op.Ino, off, op.Data)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(n), Off: off + uint64(n)}

	case NumFsTruncate:
		if err := k.fs.Truncate(op.Ino, op.Len); err != nil {
			return fail(err)
		}
		return ok(0)

	case NumPageMap:
		// Map one cache-owned frame read-only into the caller's address
		// space (the zero-copy pread tier). The frame address rides in
		// the op so every replica maps the identical physical page, and
		// Reserve is deterministic, so every replica picks the same va.
		vs := k.vs[op.PID]
		as := k.spaces[op.PID]
		if vs == nil || as == nil {
			return Resp{Errno: ESRCH}
		}
		if len(op.Frames) != 1 {
			return Resp{Errno: EINVAL}
		}
		base, err := vs.Reserve(mmu.L1PageSize, preadMapTag)
		if err != nil {
			return fail(err)
		}
		err = as.Map(base, op.Frames[0], mmu.L1PageSize,
			mmu.Flags{User: true, NoExec: true}) // read-only: no Writable
		if err != nil {
			_, _ = vs.Release(base)
			return fail(err)
		}
		return ok(uint64(base))

	case NumPageUnmap:
		vs := k.vs[op.PID]
		as := k.spaces[op.PID]
		if vs == nil || as == nil {
			return Resp{Errno: ESRCH}
		}
		r, found := vs.Lookup(op.VA)
		if !found || r.Base != op.VA || r.Tag != preadMapTag {
			return Resp{Errno: EINVAL}
		}
		if _, err := vs.Release(op.VA); err != nil {
			return fail(err)
		}
		frame, err := as.Unmap(op.VA)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Unpinned: []mem.PAddr{frame}}
	}
	return Resp{Errno: ENOSYS}
}

// detach tears down a process's per-shard resources (descriptors,
// mappings, page table) without touching the process tree. Like exit,
// frames behind pread mappings travel in Unpinned, not Freed.
func (k *Kernel) detach(op WriteOp) Resp {
	pid := op.PID
	freed, unpinned := k.teardownVSpace(pid)
	if as := k.spaces[pid]; as != nil {
		if err := as.Destroy(); err != nil {
			return fail(err)
		}
	}
	delete(k.spaces, pid)
	delete(k.vs, pid)
	delete(k.fds, pid)
	ports := k.socks.detachSocks(pid)
	return Resp{Errno: EOK, Freed: freed, Unpinned: unpinned, Ports: ports}
}

// SnapshotFDs returns a value copy of a process's descriptor table, or
// ok=false if this kernel holds no table for the PID. The sharded
// contract viewer composes it with contents fetched from the owning
// filesystem shards (§3 view() across the shard cut).
func (k *Kernel) SnapshotFDs(pid proc.PID) (map[fs.FD]fs.OpenFile, bool) {
	t, okT := k.fds[pid]
	if !okT {
		return nil, false
	}
	return t.Snapshot(), true
}

// dispatchShardRead serves the internal read-only protocol ops
// (DispatchRead's default arm).
func (k *Kernel) dispatchShardRead(op ReadOp) Resp {
	switch op.Num {
	case NumFDGet:
		t, e := k.fdTable(op.PID)
		if e != EOK {
			return Resp{Errno: e}
		}
		of, err := t.Get(op.FD)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Ino: of.Ino, Off: of.Offset, Val: uint64(of.Flags)}

	case NumFsLookup:
		ino, err := k.fs.Lookup(op.Path)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(ino), Ino: ino}

	case NumFsStatIno:
		st, err := k.fs.StatIno(op.Ino)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Stat: st, Val: st.Size}

	case NumFsReadAt:
		buf := make([]byte, op.Len)
		n, err := k.fs.ReadAt(op.Ino, op.Off, buf)
		if err != nil {
			return fail(err)
		}
		return Resp{Errno: EOK, Val: uint64(n), Data: buf[:n]}

	case NumProcHasTable:
		if _, ok := k.fds[op.PID]; !ok {
			return Resp{Errno: ESRCH}
		}
		return ok(0)
	}
	return Resp{Errno: ENOSYS}
}
