package sys

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/sched"
)

// This file is the completion-driven half of the submission ring: the
// per-core submission queue, the CQ doorbell, and the redesigned async
// API (SubmitOptions, Batch.Wait/WaitN, completion callbacks).
//
// Placement: each Sys handle's kernel handler is pinned to one core
// (core's newHandler round-robins processes over cores and registers
// the NR thread context on that core's replica), so the submission ring
// embedded in the Sys handle *is* a per-core ring — batches queue up
// core-locally and only the ring's drainer crosses into the NR combiner.
// Submission never migrates to another core before the combiner sees it.
//
// Reaping: completions post through a CQ doorbell built on
// sched.WaitQueue — the same lost-wakeup-free prepare/re-check/park
// discipline the futex path and the socket receive doorbell use. A
// blocking Wait parks the calling thread; the drainer rings the bell as
// it posts each completion chunk, so the waiter is event-woken, never
// polling. WaitSpin busy-polls for latency-critical callers that would
// rather burn the core than take a wakeup, and WaitPoll never waits at
// all (Wait/WaitN report ErrBatchPending while the batch is in flight).

// WaitMode selects how a batch's completions are reaped.
type WaitMode uint8

const (
	// WaitBlock parks the waiting thread on the batch's CQ doorbell and
	// is woken by completion posting — the default: no busy-spin, the
	// core is free for other work while the kernel drains the batch.
	WaitBlock WaitMode = iota
	// WaitSpin busy-polls the completion count, yielding the processor
	// between checks. Lowest wake-to-return latency, burns the core.
	WaitSpin
	// WaitPoll never waits: Wait/WaitN return ErrBatchPending (with the
	// completions posted so far) while the batch is in flight. For
	// latency-critical event loops that interleave reaping with work.
	WaitPoll
)

// SubmitOptions configures a submission.
type SubmitOptions struct {
	// Wait is the reap discipline for Wait/WaitN (default WaitBlock).
	Wait WaitMode
	// OnComplete, when set, is invoked exactly once from the ring's
	// drainer after the batch completes — every completion posted, or a
	// batch-level failure (the error mirrors what Wait would return).
	// The slice aliases the batch's completion queue; treat it as
	// read-only.
	OnComplete func([]Completion, error)
}

// Batch misuse and flow-control errors. Misuses fail deterministically:
// every wrong lifecycle transition has one defined error, checked
// before any waiting happens.
var (
	// ErrBatchEmpty: the batch has no ops (Submit and Wait on an empty
	// batch both report it).
	ErrBatchEmpty = errors.New("sys: batch has no ops")
	// ErrBatchNotSubmitted: Wait before Submit.
	ErrBatchNotSubmitted = errors.New("sys: batch not submitted")
	// ErrBatchSubmitted: Submit called twice.
	ErrBatchSubmitted = errors.New("sys: batch already submitted")
	// ErrBatchReaped: the batch was already reaped by Wait (double Wait,
	// or Submit after Wait).
	ErrBatchReaped = errors.New("sys: batch already reaped")
	// ErrBatchBusy: two goroutines raced into Wait/WaitN on the same
	// batch; exactly one wins, the loser gets this.
	ErrBatchBusy = errors.New("sys: concurrent wait on the same batch")
	// ErrBatchPending (WaitPoll only): the batch is still in flight.
	ErrBatchPending = errors.New("sys: batch still in flight")
	// ErrWaitRange: WaitN called with n < 0 or n > len(ops).
	ErrWaitRange = errors.New("sys: wait count out of range")
)

// Batch lifecycle states.
const (
	batchBuilding uint32 = iota
	batchSubmitted
	batchDone
)

// park-hook stages, for the ring-wait-no-lost-wakeup interleaving sweep
// (ring_obligations.go): the two windows a completion post can race
// into.
const (
	parkStagePrepared = iota // doorbell ticket taken, condition not yet re-checked
	parkStageParking         // re-check said "not ready", about to park
)

// ringChunk bounds the ops per boundary crossing when the drainer
// serves a batch: completions post (and the doorbell rings) after every
// chunk, so WaitN reapers make progress on long batches instead of
// waiting for the last op. Batches up to ringChunk ops still cross the
// boundary exactly once. The chunk is also the granularity of the §3
// batch contract check (one pre/post view pair per chunk) — sound
// because a batch is specified as the sequential composition of its
// ops (the batch-refines-sequential obligation), so any chunking of
// that composition must satisfy the same per-op relations.
const ringChunk = 64

// subRing is the per-core submission queue: batches a process submits
// queue here, in order, and one drainer goroutine (spawned on demand,
// exiting when the queue empties — the receive-pump lifecycle) carries
// them across the boundary. One submission stream per Sys handle, and
// each handle is pinned to one core, so nothing crosses cores before
// the NR combiner.
type subRing struct {
	mu      sync.Mutex
	q       []*Batch
	running bool
}

// Batch is an in-flight submission: a submission-queue segment plus its
// completion queue and CQ doorbell. Build it with NewBatch/Add/Submit
// (or the Submit/SubmitOpts conveniences) and reap it with Wait/WaitN.
//
// A Batch is not safe for concurrent building; after Submit, any number
// of goroutines may attempt to reap it but exactly one Wait succeeds.
type Batch struct {
	s          *Sys
	mode       WaitMode
	onComplete func([]Completion, error)
	ops        []Op

	state  atomic.Uint32 // batchBuilding → batchSubmitted → batchDone
	posted atomic.Uint64 // completions posted so far (release-stores)
	comps  []Completion  // filled [0, posted) by the drainer
	err    error         // batch-level failure; read only after batchDone
	cq     *sched.WaitQueue

	waiting atomic.Bool // one reaper at a time
	reaped  atomic.Bool // a Wait consumed the batch

	parkHook func(stage int) // test/VC instrumentation of the park window
}

// NewBatch returns an empty batch bound to this handle's submission
// ring. Add ops, then Submit.
func (s *Sys) NewBatch(opts SubmitOptions) *Batch {
	return &Batch{s: s, mode: opts.Wait, onComplete: opts.OnComplete, cq: sched.NewWaitQueue()}
}

// Add appends ops to an unsubmitted batch (chainable). Ops added after
// Submit are discarded: the submitted segment is immutable.
func (b *Batch) Add(ops ...Op) *Batch {
	if b.state.Load() == batchBuilding {
		b.ops = append(b.ops, ops...)
	}
	return b
}

// Len returns the number of ops in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Submit validates the batch and enqueues it on the handle's per-core
// submission ring; the drainer crosses the boundary asynchronously. Ops
// and their payloads are borrowed until the batch completes. Misuse
// (empty batch, double submit, submit after Wait) and boundary
// validation failures (bad open flags, like Sys.Open) are reported
// here, before anything is enqueued.
func (b *Batch) Submit() error {
	if err := b.prepare(); err != nil {
		return err
	}
	b.s.ringEnqueue(b)
	return nil
}

// prepare runs the building→submitted transition: lifecycle checks,
// boundary validation, completion-queue allocation.
func (b *Batch) prepare() error {
	if b.reaped.Load() {
		return ErrBatchReaped
	}
	if len(b.ops) == 0 {
		return ErrBatchEmpty
	}
	if !b.state.CompareAndSwap(batchBuilding, batchSubmitted) {
		return ErrBatchSubmitted
	}
	for _, op := range b.ops {
		if e := op.validate(); e != EOK {
			b.finish(e)
			return e
		}
	}
	b.comps = make([]Completion, len(b.ops))
	return nil
}

// finish marks the batch complete (err != nil: batch-level failure),
// rings the doorbell, and fires the completion callback.
func (b *Batch) finish(errno Errno) {
	if errno != EOK {
		b.err = errno
	}
	b.state.Store(batchDone)
	b.cq.Wake()
	if b.onComplete != nil {
		b.onComplete(b.comps[:b.posted.Load()], b.err)
	}
}

// Done reports whether the batch has completed — the poll-mode fast
// check (no claim taken, callable from any goroutine).
func (b *Batch) Done() bool { return b.state.Load() == batchDone }

// Wait reaps the whole completion queue: it waits (per the batch's
// WaitMode) until every completion has posted, consumes the batch, and
// returns the completions in submission order. A non-nil error is a
// batch-level failure (boundary error or lifecycle misuse) — per-op
// failures live in the completions. Exactly one Wait can consume a
// batch: a second Wait returns ErrBatchReaped, a concurrent one
// ErrBatchBusy. Under WaitPoll, Wait returns ErrBatchPending (without
// consuming the batch) while the kernel is still draining it.
func (b *Batch) Wait() ([]Completion, error) { return b.wait(len(b.ops), true) }

// WaitN waits until at least n completions have posted and returns
// everything posted so far (at least n entries, in submission order)
// without consuming the batch — partial reaping for pipelines that
// start work on early completions while the kernel drains the rest.
// Call Wait (or WaitN(Len())) for the full queue.
func (b *Batch) WaitN(n int) ([]Completion, error) { return b.wait(n, false) }

func (b *Batch) wait(n int, reap bool) ([]Completion, error) {
	if b.reaped.Load() {
		return nil, ErrBatchReaped
	}
	if b.state.Load() == batchBuilding {
		if len(b.ops) == 0 {
			return nil, ErrBatchEmpty
		}
		return nil, ErrBatchNotSubmitted
	}
	if n < 0 || n > len(b.ops) {
		return nil, ErrWaitRange
	}
	if !b.waiting.CompareAndSwap(false, true) {
		return nil, ErrBatchBusy
	}
	defer b.waiting.Store(false)
	if b.reaped.Load() { // lost the race to a Wait that just finished
		return nil, ErrBatchReaped
	}

	core := b.s.core
	for !b.readyFor(n) {
		switch b.mode {
		case WaitSpin:
			obs.RingWaitSpins.Add(core, 1)
			runtime.Gosched()
		case WaitPoll:
			return b.comps[:b.posted.Load()], ErrBatchPending
		default: // WaitBlock: prepare → re-check → park on the CQ doorbell
			ticket := b.cq.Prepare()
			if b.parkHook != nil {
				b.parkHook(parkStagePrepared)
			}
			if b.readyFor(n) {
				continue
			}
			if b.parkHook != nil {
				b.parkHook(parkStageParking)
			}
			obs.RingWaitParks.Add(core, 1)
			b.cq.Wait(ticket)
			obs.RingWaitWakes.Add(core, 1)
		}
	}

	if reap {
		b.reaped.Store(true)
	}
	comps := b.comps[:b.posted.Load()]
	if b.state.Load() == batchDone && b.err != nil {
		return comps, b.err
	}
	return comps, nil
}

// readyFor reports whether a wait for n completions can return: enough
// posted, or the batch finished (completion or batch-level failure).
func (b *Batch) readyFor(n int) bool {
	return b.posted.Load() >= uint64(n) || b.state.Load() == batchDone
}

// ringEnqueue queues a prepared batch on the per-core submission ring,
// starting the drainer if it is idle. The drainer exits when the queue
// empties (no idle goroutine per process), and a new submission
// restarts it — the same on-demand lifecycle as the receive pump.
func (s *Sys) ringEnqueue(b *Batch) {
	s.ring.mu.Lock()
	s.ring.q = append(s.ring.q, b)
	if !s.ring.running {
		s.ring.running = true
		go s.ringDrain()
	}
	s.ring.mu.Unlock()
}

// ringDrain serves the submission queue in order: one batch at a time,
// one goroutine per ring, so a process's batches execute in submission
// order and the boundary crossing always happens from the handle's own
// (per-core) submission stream.
func (s *Sys) ringDrain() {
	for {
		s.ring.mu.Lock()
		if len(s.ring.q) == 0 {
			s.ring.running = false
			s.ring.mu.Unlock()
			return
		}
		b := s.ring.q[0]
		s.ring.q = s.ring.q[1:]
		s.ring.mu.Unlock()
		s.drain(b)
	}
}

// drain carries one batch across the boundary in ringChunk-sized
// submission-queue segments, posting completions and ringing the CQ
// doorbell after each chunk — the combiner-drain side of the doorbell
// protocol. A batch-level failure stops the drain; completions already
// posted stay readable.
func (s *Sys) drain(b *Batch) {
	n := len(b.ops)
	for off := 0; off < n; off += ringChunk {
		end := off + ringChunk
		if end > n {
			end = n
		}
		comps, errno := s.submitChunk(b.ops[off:end])
		copy(b.comps[off:], comps)
		if errno != EOK {
			b.posted.Store(uint64(off + len(comps)))
			b.finish(errno)
			return
		}
		b.posted.Store(uint64(end))
		if end < n {
			obs.RingChunksPosted.Add(s.core, 1)
			b.cq.Wake()
		}
	}
	b.finish(EOK)
}

// Submit enqueues ops with default options (blocking reap) and crosses
// the boundary asynchronously; reap the returned Batch with Wait. Kept
// as the PR-2 API shape: a thin wrapper over NewBatch/Add/Submit.
func (s *Sys) Submit(ops []Op) *Batch { return s.SubmitOpts(ops, SubmitOptions{}) }

// SubmitOpts is Submit with explicit options (wait mode, completion
// callback). Submission errors are deferred to Wait, which reports them
// as the batch-level error.
func (s *Sys) SubmitOpts(ops []Op, opts SubmitOptions) *Batch {
	b := s.NewBatch(opts).Add(ops...)
	if len(ops) == 0 {
		return b // Wait reports ErrBatchEmpty
	}
	_ = b.Submit() // a failed Submit finishes the batch; Wait reports it
	return b
}

// SubmitWait is the synchronous form: submit and reap on the calling
// goroutine, skipping the ring handoff (the cheaper path when nothing
// overlaps the batch). Kept with the PR-2 signature — the batch-level
// error surfaces as an Errno — as a thin wrapper over the new API.
func (s *Sys) SubmitWait(ops []Op) ([]Completion, Errno) {
	if len(ops) == 0 {
		return nil, EOK
	}
	b := s.NewBatch(SubmitOptions{}).Add(ops...)
	if err := b.prepare(); err != nil {
		return nil, errnoOf(err)
	}
	s.drain(b)
	comps, err := b.Wait() // already done: returns without waiting
	return comps, errnoOf(err)
}

// errnoOf projects a batch-level error onto the legacy Errno surface.
func errnoOf(err error) Errno {
	if err == nil {
		return EOK
	}
	var e Errno
	if errors.As(err, &e) {
		return e
	}
	return EINVAL
}
