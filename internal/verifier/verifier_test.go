package verifier

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func okObl(mod, name string, kind Kind) Obligation {
	return Obligation{Module: mod, Name: name, Kind: kind,
		Check: func(r *rand.Rand) error { return nil }}
}

func TestRegisterAndRun(t *testing.T) {
	g := &Registry{}
	g.Register(
		okObl("pt", "a", KindInvariant),
		okObl("pt", "b", KindRefinement),
		okObl("fs", "c", KindInvariant),
	)
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	rep := g.Run(Options{Seed: 1})
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if len(rep.Failed()) != 0 {
		t.Fatalf("failures: %v", rep.Failed())
	}
	byMod := rep.ByModule()
	if byMod["pt"].Passed != 2 || byMod["fs"].Passed != 1 {
		t.Errorf("ByModule = %v", byMod)
	}
}

func TestDuplicateIDPanics(t *testing.T) {
	g := &Registry{}
	g.Register(okObl("m", "x", KindSafety))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	g.Register(okObl("m", "x", KindSafety))
}

func TestNilCheckPanics(t *testing.T) {
	g := &Registry{}
	defer func() {
		if recover() == nil {
			t.Fatal("nil Check did not panic")
		}
	}()
	g.Register(Obligation{Module: "m", Name: "bad"})
}

func TestFailureAndPanicCaptured(t *testing.T) {
	g := &Registry{}
	g.Register(
		Obligation{Module: "m", Name: "fail", Kind: KindSafety,
			Check: func(r *rand.Rand) error { return errors.New("nope") }},
		Obligation{Module: "m", Name: "panic", Kind: KindSafety,
			Check: func(r *rand.Rand) error { panic("boom") }},
		okObl("m", "ok", KindSafety),
	)
	rep := g.Run(Options{})
	failed := rep.Failed()
	if len(failed) != 2 {
		t.Fatalf("failed = %d, want 2", len(failed))
	}
	for _, f := range failed {
		if f.Obligation.Name == "panic" && !strings.Contains(f.Err.Error(), "boom") {
			t.Errorf("panic not captured: %v", f.Err)
		}
	}
}

func TestSeedsAreDeterministicAndPerVC(t *testing.T) {
	var seen1, seen2 []int64
	g := &Registry{}
	g.Register(
		Obligation{Module: "m", Name: "r1", Kind: KindRoundTrip,
			Check: func(r *rand.Rand) error { seen1 = append(seen1, r.Int63()); return nil }},
		Obligation{Module: "m", Name: "r2", Kind: KindRoundTrip,
			Check: func(r *rand.Rand) error { seen2 = append(seen2, r.Int63()); return nil }},
	)
	g.Run(Options{Seed: 42})
	g.Run(Options{Seed: 42})
	if seen1[0] != seen1[1] || seen2[0] != seen2[1] {
		t.Error("same seed must reproduce the same VC randomness")
	}
	if seen1[0] == seen2[0] {
		t.Error("distinct VCs must get distinct randomness")
	}
}

func TestModuleFilter(t *testing.T) {
	g := &Registry{}
	g.Register(okObl("a", "x", KindSafety), okObl("b", "y", KindSafety))
	rep := g.Run(Options{Module: "a"})
	if len(rep.Results) != 1 || rep.Results[0].Obligation.Module != "a" {
		t.Fatalf("filter broken: %+v", rep.Results)
	}
}

func TestCDFMonotone(t *testing.T) {
	g := &Registry{}
	for i := 0; i < 20; i++ {
		g.Register(okObl("m", string(rune('a'+i)), KindSafety))
	}
	rep := g.Run(Options{})
	cdf := rep.CDF()
	if len(cdf) != 20 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Duration < cdf[i-1].Duration {
			t.Fatal("durations not sorted")
		}
		if cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("fractions not strictly increasing")
		}
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatal("CDF must end at 1")
	}
}

func TestSummaryRenders(t *testing.T) {
	g := &Registry{}
	g.Register(okObl("pt", "a", KindInvariant))
	rep := g.Run(Options{})
	s := rep.Summary()
	for _, want := range []string{"module", "pt", "total", "verification conditions: 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	g := &Registry{}
	g.Register(okObl("m", "a", KindSafety), okObl("m", "b", KindSafety))
	var ids []string
	g.Run(Options{Jobs: 1, Progress: func(r Result) { ids = append(ids, r.Obligation.ID()) }})
	if len(ids) != 2 || ids[0] != "m:a" || ids[1] != "m:b" {
		t.Fatalf("progress = %v", ids)
	}
}

func TestObligationsSorted(t *testing.T) {
	g := &Registry{}
	g.Register(okObl("z", "z", KindSafety), okObl("a", "a", KindSafety))
	obls := g.Obligations()
	if obls[0].ID() != "a:a" || obls[1].ID() != "z:z" {
		t.Fatalf("not sorted: %v, %v", obls[0].ID(), obls[1].ID())
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &Registry{}
	RegisterObligations(g)
	rep := g.Run(Options{Seed: 113})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
