package verifier

import (
	"os"
	"path/filepath"
	"testing"
)

// fakeRepo builds a minimal module tree for hashing tests:
//
//	internal/alpha   imports internal/beta
//	internal/beta    (leaf)
//	internal/gamma   (leaf, independent)
func fakeRepo(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example.com/fake\n\ngo 1.22\n")
	write("internal/alpha/alpha.go",
		"package alpha\n\nimport \"example.com/fake/internal/beta\"\n\nvar _ = beta.B\n")
	write("internal/alpha/alpha_test.go",
		"package alpha\n\n// test files are not inputs\n")
	write("internal/beta/beta.go", "package beta\n\nconst B = 1\n")
	write("internal/gamma/gamma.go", "package gamma\n\nconst G = 1\n")
	return root
}

func TestModuleHashesInvalidation(t *testing.T) {
	root := fakeRepo(t)
	mods := []string{"alpha", "beta", "gamma", "missing"}
	h1, err := ModuleHashes(root, mods)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h1["missing"]; ok {
		t.Fatal("unresolvable module got a hash (and would be skippable)")
	}
	for _, m := range []string{"alpha", "beta", "gamma"} {
		if h1[m] == "" {
			t.Fatalf("no hash for %s", m)
		}
	}

	// Editing a transitive dependency must invalidate the importer.
	if err := os.WriteFile(filepath.Join(root, "internal/beta/beta.go"),
		[]byte("package beta\n\nconst B = 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := ModuleHashes(root, mods)
	if err != nil {
		t.Fatal(err)
	}
	if h2["beta"] == h1["beta"] {
		t.Fatal("beta's hash unchanged after edit")
	}
	if h2["alpha"] == h1["alpha"] {
		t.Fatal("alpha's hash unchanged after a dependency edit")
	}
	if h2["gamma"] != h1["gamma"] {
		t.Fatal("gamma's hash changed without any input change")
	}

	// Test files are not inputs.
	if err := os.WriteFile(filepath.Join(root, "internal/alpha/alpha_test.go"),
		[]byte("package alpha\n\n// edited\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	h3, err := ModuleHashes(root, mods)
	if err != nil {
		t.Fatal(err)
	}
	if h3["alpha"] != h2["alpha"] {
		t.Fatal("test-file edit changed a module hash")
	}
}

func TestCacheSaveLoadAndSkippable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "cache.json")

	// Missing file: empty cache, nothing skippable.
	c, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Skippable("m", "h", 1, 1) {
		t.Fatal("empty cache skipped something")
	}

	c = &Cache{Version: 1, Seed: 42, FuzzBudget: 2, Modules: map[string]string{"m": "hash-m"}}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCache(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.FuzzBudget != 2 || got.Modules["m"] != "hash-m" {
		t.Fatalf("round trip lost data: %+v", got)
	}

	if !got.Skippable("m", "hash-m", 42, 2) {
		t.Fatal("matching module not skippable")
	}
	for _, bad := range []struct {
		name string
		ok   bool
	}{{"hash mismatch", got.Skippable("m", "other", 42, 2)},
		{"seed mismatch", got.Skippable("m", "hash-m", 43, 2)},
		{"budget mismatch", got.Skippable("m", "hash-m", 42, 3)},
		{"unknown module", got.Skippable("n", "hash-n", 42, 2)},
		{"empty hash", got.Skippable("m", "", 42, 2)}} {
		if bad.ok {
			t.Fatalf("%s was skippable", bad.name)
		}
	}
}

func TestLoadCacheCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCache(path); err == nil {
		t.Fatal("corrupt cache loaded silently")
	}
}

// TestRepoModuleHashes runs the hasher against this repository itself:
// every registered module except the known virtual ones must resolve.
func TestRepoModuleHashes(t *testing.T) {
	root := repoRoot(t)
	hashes, err := ModuleHashes(root, []string{"fs", "core", "diff", "verifier"})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"fs", "core", "diff", "verifier"} {
		if hashes[m] == "" {
			t.Errorf("module %s did not resolve against the real tree", m)
		}
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test dir")
		}
		dir = parent
	}
}
