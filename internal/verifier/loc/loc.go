// Package loc measures proof-to-code ratios: the §5 evaluation metric
// ("our results show that the proof-to-code ratio is 10:1").
//
// In this repository, "proof" is executable specification and checking
// code: *_spec.go, *_refine.go, *_obligations.go and *_inv.go files, plus
// everything under internal/spec and internal/verifier (the framework
// itself). "Code" is the remaining non-test implementation. Tests are
// counted separately — the paper's ratios exclude test harnesses too.
package loc

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Category classifies a source file.
type Category int

// File categories.
const (
	CategoryImpl Category = iota
	CategoryProof
	CategoryTest
)

func (c Category) String() string {
	switch c {
	case CategoryImpl:
		return "impl"
	case CategoryProof:
		return "proof"
	case CategoryTest:
		return "test"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// ModuleStats is the per-module line breakdown.
type ModuleStats struct {
	Impl  int
	Proof int
	Test  int
}

// Ratio returns the proof-to-code ratio (proof lines per impl line).
func (m ModuleStats) Ratio() float64 {
	if m.Impl == 0 {
		return 0
	}
	return float64(m.Proof) / float64(m.Impl)
}

// Stats is a whole-tree accounting.
type Stats struct {
	PerModule map[string]ModuleStats
}

// Totals sums every module.
func (s Stats) Totals() ModuleStats {
	var t ModuleStats
	for _, m := range s.PerModule {
		t.Impl += m.Impl
		t.Proof += m.Proof
		t.Test += m.Test
	}
	return t
}

// Module returns the stats for one module (zero value if absent).
func (s Stats) Module(name string) ModuleStats { return s.PerModule[name] }

// proofPattern marks files that carry specification or refinement
// content rather than implementation: *_spec.go, *_refine.go,
// *_inv.go, and *_obligations*.go (obligation waves are numbered).
var proofPattern = regexp.MustCompile(`_(spec|refine|inv|obligations[0-9]*)\.go$`)

// proofDirs are packages that are wholly specification/verification
// framework.
var proofDirs = []string{
	filepath.Join("internal", "spec"),
	filepath.Join("internal", "verifier"),
	filepath.Join("internal", "lin"),
}

// Classify returns the category for a file path relative to the module
// root.
func Classify(rel string) Category {
	base := filepath.Base(rel)
	if strings.HasSuffix(base, "_test.go") {
		return CategoryTest
	}
	for _, d := range proofDirs {
		if strings.HasPrefix(rel, d+string(filepath.Separator)) || rel == d {
			return CategoryProof
		}
	}
	if proofPattern.MatchString(base) {
		return CategoryProof
	}
	return CategoryImpl
}

// moduleOf maps a relative path to its module name: the package directly
// under internal/ (or internal/hw/...), the cmd name, "examples", or
// "root".
func moduleOf(rel string) string {
	parts := strings.Split(filepath.ToSlash(rel), "/")
	switch {
	case len(parts) >= 2 && parts[0] == "internal":
		if len(parts) >= 3 && (parts[1] == "hw" || parts[1] == "spec") {
			return parts[1] + "/" + parts[2]
		}
		return parts[1]
	case len(parts) >= 2 && (parts[0] == "cmd" || parts[0] == "examples"):
		return parts[0] + "/" + parts[1]
	default:
		return "root"
	}
}

// CountFile counts the non-blank, non-comment lines of a Go file. It
// recognizes line comments, general comments, and avoids treating
// comment markers inside string or rune literals as comments.
func CountFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	n := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		code := lineHasCode(line, &inBlock)
		if code {
			n++
		}
	}
	return n, sc.Err()
}

// lineHasCode reports whether the line contains any code outside
// comments, updating the block-comment state.
func lineHasCode(line string, inBlock *bool) bool {
	i := 0
	has := false
	for i < len(line) {
		if *inBlock {
			end := strings.Index(line[i:], "*/")
			if end < 0 {
				return has
			}
			i += end + 2
			*inBlock = false
			continue
		}
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '/' && i+1 < len(line) && line[i+1] == '/':
			return has
		case c == '/' && i+1 < len(line) && line[i+1] == '*':
			*inBlock = true
			i += 2
		case c == '"' || c == '\'' || c == '`':
			has = true
			i = skipString(line, i)
		default:
			has = true
			i++
		}
	}
	return has
}

// skipString advances past a string/rune literal starting at i. Raw
// strings spanning lines are treated approximately (the remainder of the
// line is consumed), which is fine for line counting.
func skipString(line string, i int) int {
	quote := line[i]
	i++
	for i < len(line) {
		if line[i] == '\\' && quote != '`' {
			i += 2
			continue
		}
		if line[i] == quote {
			return i + 1
		}
		i++
	}
	return i
}

// Count walks the module tree rooted at root and produces per-module
// line statistics for all Go files.
func Count(root string) (Stats, error) {
	st := Stats{PerModule: make(map[string]ModuleStats)}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		n, err := CountFile(path)
		if err != nil {
			return err
		}
		mod := moduleOf(rel)
		ms := st.PerModule[mod]
		switch Classify(rel) {
		case CategoryTest:
			ms.Test += n
		case CategoryProof:
			ms.Proof += n
		default:
			ms.Impl += n
		}
		st.PerModule[mod] = ms
		return nil
	})
	return st, err
}

// PublishedRatio is a literature data point from §5 of the paper.
type PublishedRatio struct {
	System string
	Ratio  float64
	Note   string
}

// PublishedRatios are the proof-to-code ratios the paper compares
// against.
func PublishedRatios() []PublishedRatio {
	return []PublishedRatio{
		{System: "vnros page table (paper)", Ratio: 10, Note: "this paper's prototype"},
		{System: "seL4", Ratio: 19, Note: "approximate"},
		{System: "CertiKOS", Ratio: 20, Note: "approximate"},
		{System: "SeKVM (weak memory)", Ratio: 10, Note: "excludes framework"},
		{System: "Verve", Ratio: 3, Note: "verifies less extensive properties"},
	}
}

// Render prints the per-module table plus the published comparison.
func Render(st Stats) string {
	var b strings.Builder
	mods := make([]string, 0, len(st.PerModule))
	for m := range st.PerModule {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %8s\n", "module", "impl", "proof", "test", "p:c")
	for _, m := range mods {
		ms := st.PerModule[m]
		fmt.Fprintf(&b, "%-16s %8d %8d %8d %8.1f\n", m, ms.Impl, ms.Proof, ms.Test, ms.Ratio())
	}
	t := st.Totals()
	fmt.Fprintf(&b, "%-16s %8d %8d %8d %8.1f\n", "total", t.Impl, t.Proof, t.Test, t.Ratio())
	b.WriteString("\npublished comparisons (paper §5):\n")
	for _, p := range PublishedRatios() {
		fmt.Fprintf(&b, "  %-28s %4.0f:1  (%s)\n", p.System, p.Ratio, p.Note)
	}
	return b.String()
}
