package loc

import (
	"os"
	"path/filepath"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		rel  string
		want Category
	}{
		{"internal/pt/map.go", CategoryImpl},
		{"internal/pt/map_test.go", CategoryTest},
		{"internal/pt/pt_spec.go", CategoryProof},
		{"internal/pt/pt_refine.go", CategoryProof},
		{"internal/pt/pt_obligations.go", CategoryProof},
		{"internal/pt/pt_inv.go", CategoryProof},
		{filepath.Join("internal", "spec", "sm", "sm.go"), CategoryProof},
		{filepath.Join("internal", "verifier", "verifier.go"), CategoryProof},
		{filepath.Join("internal", "lin", "lin.go"), CategoryProof},
		{"cmd/vnros/main.go", CategoryImpl},
	}
	for _, c := range cases {
		if got := Classify(c.rel); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.rel, got, c.want)
		}
	}
}

func TestModuleOf(t *testing.T) {
	cases := []struct {
		rel, want string
	}{
		{"internal/pt/map.go", "pt"},
		{"internal/hw/mmu/walk.go", "hw/mmu"},
		{"internal/spec/sm/sm.go", "spec/sm"},
		{"cmd/vnros/main.go", "cmd/vnros"},
		{"examples/quickstart/main.go", "examples/quickstart"},
		{"vnros.go", "root"},
	}
	for _, c := range cases {
		if got := moduleOf(c.rel); got != c.want {
			t.Errorf("moduleOf(%q) = %q, want %q", c.rel, got, c.want)
		}
	}
}

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCountFileSkipsCommentsAndBlanks(t *testing.T) {
	dir := t.TempDir()
	src := `// Package x does things.
package x

/* block
   comment */
func F() int { // trailing comment
	s := "// not a comment"
	return len(s) /* inline */ + 1
}

/* another */ var G = 2
`
	writeFile(t, dir, "x.go", src)
	n, err := CountFile(filepath.Join(dir, "x.go"))
	if err != nil {
		t.Fatal(err)
	}
	// Code lines: package x, func F(), s := ..., return ..., }, var G = 2.
	if n != 6 {
		t.Errorf("count = %d, want 6", n)
	}
}

func TestCountTree(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "internal/pt/map.go", "package pt\nfunc A() {}\nfunc B() {}\n")
	writeFile(t, dir, "internal/pt/pt_spec.go", "package pt\nvar Spec = 1\n")
	writeFile(t, dir, "internal/pt/map_test.go", "package pt\nimport \"testing\"\nfunc TestA(t *testing.T) {}\n")
	writeFile(t, dir, "internal/nr/log.go", "package nr\nvar X = 0\n")
	writeFile(t, dir, ".git/objects/junk.go", "not counted")

	st, err := Count(dir)
	if err != nil {
		t.Fatal(err)
	}
	pt := st.Module("pt")
	if pt.Impl != 3 || pt.Proof != 2 || pt.Test != 3 {
		t.Errorf("pt stats = %+v", pt)
	}
	if st.Module("nr").Impl != 2 {
		t.Errorf("nr stats = %+v", st.Module("nr"))
	}
	tot := st.Totals()
	if tot.Impl != 5 || tot.Proof != 2 || tot.Test != 3 {
		t.Errorf("totals = %+v", tot)
	}
	if pt.Ratio() < 0.6 || pt.Ratio() > 0.7 {
		t.Errorf("ratio = %f", pt.Ratio())
	}
}

func TestRenderIncludesPublished(t *testing.T) {
	st := Stats{PerModule: map[string]ModuleStats{"pt": {Impl: 100, Proof: 1000}}}
	out := Render(st)
	for _, want := range []string{"seL4", "CertiKOS", "Verve", "pt", "10.0"} {
		if !containsStr(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestCountOnThisRepo(t *testing.T) {
	// Smoke test against the real tree: must not error and must find
	// both impl and proof lines.
	root := "../../.."
	st, err := Count(root)
	if err != nil {
		t.Fatal(err)
	}
	tot := st.Totals()
	if tot.Impl == 0 || tot.Proof == 0 {
		t.Errorf("suspicious totals on real repo: %+v", tot)
	}
}
