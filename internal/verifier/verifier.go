// Package verifier is the verification-condition engine: the repo's
// executable stand-in for the Verus/SMT pipeline of the paper.
//
// Every module registers named obligations — invariant preservation,
// refinement simulations, serialization round-trip lemmas,
// linearizability of NR histories — and the runner discharges each one,
// individually timed. The per-VC timing distribution regenerates
// Figure 1a; the pass/fail ledger is what this repository means by
// "verified".
//
// Obligations must be deterministic: randomized checks derive their
// randomness from the obligation's seeded source so that a failure
// reproduces. The seed of each VC depends only on Options.Seed and the
// VC's ID — never on execution order — which is what makes the worker
// pool sound: a parallel run (Options.Jobs > 1) discharges the same
// obligations with the same randomness as a serial run, and the report
// collects results in ID order, so the pass/fail ledger is identical at
// every job count.
package verifier

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies an obligation, mirroring the proof categories in the
// paper's methodology (§4.3–§4.4, §5).
type Kind string

// Obligation kinds.
const (
	KindInvariant       Kind = "invariant"       // state invariant preservation
	KindRefinement      Kind = "refinement"      // impl ⊑ spec simulation
	KindRoundTrip       Kind = "round-trip"      // marshalling lemmas (§3)
	KindLinearizability Kind = "linearizability" // NR histories (§4.3)
	KindModelCheck      Kind = "model-check"     // explicit-state exploration
	KindSafety          Kind = "safety"          // memory-safety / bounds probes
	KindDifferential    Kind = "differential"    // randomized trace diffed across kernels
)

// Obligation is one verification condition.
type Obligation struct {
	// Module is the subsystem the VC belongs to, e.g. "pt" or "fs".
	Module string
	// Name identifies the VC within the module, e.g. "map-refines-spec".
	Name string
	Kind Kind
	// Check discharges the VC. It receives a deterministically seeded
	// random source for randomized lemmas.
	Check func(r *rand.Rand) error
	// Budget, if non-nil, is the budgeted form of the VC and is used
	// instead of Check: it additionally receives the run's fuzz budget
	// (Options.FuzzBudget clamped to >= 1) and scales its iteration or
	// trace counts linearly with it. The expensive sweep VCs (crash-point
	// sweeps, interleaving sweeps, differential traces) register through
	// this hook so `vnros-verify -fuzzbudget N` buys proportionally more
	// coverage. An obligation may set Budget without Check.
	Budget func(r *rand.Rand, budget int) error
}

// ID returns the fully qualified VC name.
func (o Obligation) ID() string { return o.Module + ":" + o.Name }

// Registry collects obligations from all modules. The zero value is
// ready to use.
type Registry struct {
	mu   sync.Mutex
	obls []Obligation
	seen map[string]bool
}

// Register adds obligations, panicking on duplicate IDs (a duplicate is
// a programming error in module wiring, caught at init/test time).
func (g *Registry) Register(obls ...Obligation) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen == nil {
		g.seen = make(map[string]bool)
	}
	for _, o := range obls {
		if o.Check == nil && o.Budget == nil {
			panic("verifier: obligation " + o.ID() + " has nil Check and nil Budget")
		}
		if g.seen[o.ID()] {
			panic("verifier: duplicate obligation " + o.ID())
		}
		g.seen[o.ID()] = true
		g.obls = append(g.obls, o)
	}
}

// Obligations returns the registered obligations sorted by ID.
func (g *Registry) Obligations() []Obligation {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Obligation, len(g.obls))
	copy(out, g.obls)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Len returns the number of registered obligations.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.obls)
}

// Modules returns the sorted set of modules with registered obligations.
func (g *Registry) Modules() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	set := make(map[string]bool)
	for _, o := range g.obls {
		set[o.Module] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Result is the outcome of discharging one obligation.
type Result struct {
	Obligation Obligation
	Duration   time.Duration
	Err        error
	// Skipped marks a VC elided by the incremental cache (Options.Skip):
	// its module's inputs are unchanged since the last green run. A
	// skipped VC is neither passed nor failed.
	Skipped bool
}

// Report is the outcome of a full verification run — the data behind
// Figure 1a and the §5 "total time to verify" numbers. Results are in
// obligation-ID order regardless of the job count or completion order.
type Report struct {
	Results []Result
	// Total is the wall-clock time of the run.
	Total time.Duration
	// Jobs is the worker count the run used.
	Jobs int
}

// Failed returns the failed results.
func (r *Report) Failed() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// Skipped returns the results elided by the incremental cache.
func (r *Report) Skipped() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Skipped {
			out = append(out, res)
		}
	}
	return out
}

// Max returns the slowest VC duration (the paper: "all functions are
// individually verified in at most 11 seconds").
func (r *Report) Max() time.Duration {
	var m time.Duration
	for _, res := range r.Results {
		if res.Duration > m {
			m = res.Duration
		}
	}
	return m
}

// SerialTime is the sum of the individual VC durations — what the run
// would have cost at Jobs=1 (modulo scheduling noise). The run footer's
// "speedup vs serial" is SerialTime over Total.
func (r *Report) SerialTime() time.Duration {
	var s time.Duration
	for _, res := range r.Results {
		s += res.Duration
	}
	return s
}

// Speedup is the parallel speedup over a serial discharge of the same
// obligations: SerialTime / Total. 0 when nothing ran.
func (r *Report) Speedup() float64 {
	if r.Total <= 0 {
		return 0
	}
	return float64(r.SerialTime()) / float64(r.Total)
}

// CDFPoint is one point of the verification-time CDF.
type CDFPoint struct {
	Duration time.Duration
	Fraction float64 // cumulative fraction of VCs at or below Duration
}

// CDF returns the cumulative distribution of VC times, the series
// plotted in Figure 1a. Skipped VCs are excluded — their zero durations
// are cache hits, not verification times. Empty when no VC ran.
func (r *Report) CDF() []CDFPoint {
	ds := make([]time.Duration, 0, len(r.Results))
	for _, res := range r.Results {
		if res.Skipped {
			continue
		}
		ds = append(ds, res.Duration)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	out := make([]CDFPoint, len(ds))
	for i, d := range ds {
		out[i] = CDFPoint{Duration: d, Fraction: float64(i+1) / float64(len(ds))}
	}
	return out
}

// ModuleTally is one module's row of the summary ledger.
type ModuleTally struct{ Passed, Failed, Skipped int }

// ByModule groups result counts per module for the summary table.
func (r *Report) ByModule() map[string]ModuleTally {
	out := make(map[string]ModuleTally)
	for _, res := range r.Results {
		e := out[res.Obligation.Module]
		switch {
		case res.Skipped:
			e.Skipped++
		case res.Err != nil:
			e.Failed++
		default:
			e.Passed++
		}
		out[res.Obligation.Module] = e
	}
	return out
}

// Options configures a verification run.
type Options struct {
	// Seed is the base seed for randomized obligations. Each VC derives
	// its own source from Seed and its ID so runs are order-independent.
	Seed int64
	// Module, if non-empty, restricts the run to one module.
	Module string
	// Jobs is the worker count; <= 0 means runtime.GOMAXPROCS(0).
	// Results are collected in ID order, so the report's ledger is
	// byte-identical at every job count.
	Jobs int
	// FuzzBudget scales the iteration/trace counts of obligations with a
	// Budget hook; values < 1 are clamped to 1 (the standard sweep).
	FuzzBudget int
	// Skip, if non-nil, elides obligations for which it returns true,
	// recording them as Skipped — the incremental cache's hook.
	Skip func(Obligation) bool
	// Progress, if non-nil, is called after each VC completes, in
	// completion order (serialized; never concurrently).
	Progress func(Result)
}

// Run discharges every registered obligation on Options.Jobs workers
// and returns the report. Each VC's randomness derives from
// (Seed, ID) only, so the results are independent of worker count and
// scheduling; Results are collected in ID order.
func (g *Registry) Run(opts Options) *Report {
	var obls []Obligation
	for _, o := range g.Obligations() {
		if opts.Module != "" && o.Module != opts.Module {
			continue
		}
		obls = append(obls, o)
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(obls) && len(obls) > 0 {
		jobs = len(obls)
	}
	budget := opts.FuzzBudget
	if budget < 1 {
		budget = 1
	}

	results := make([]Result, len(obls))
	start := time.Now()
	var progMu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				o := obls[i]
				if opts.Skip != nil && opts.Skip(o) {
					results[i] = Result{Obligation: o, Skipped: true}
				} else {
					src := rand.New(rand.NewSource(opts.Seed ^ int64(hashID(o.ID()))))
					t0 := time.Now()
					err := safeCheck(o, src, budget)
					results[i] = Result{Obligation: o, Duration: time.Since(t0), Err: err}
				}
				if opts.Progress != nil {
					progMu.Lock()
					opts.Progress(results[i])
					progMu.Unlock()
				}
			}
		}()
	}
	for i := range obls {
		idx <- i
	}
	close(idx)
	wg.Wait()

	return &Report{Results: results, Total: time.Since(start), Jobs: jobs}
}

// safeCheck converts a panicking obligation into a failure rather than
// tearing down the whole verification run.
func safeCheck(o Obligation, src *rand.Rand, budget int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("obligation panicked: %v", p)
		}
	}()
	if o.Budget != nil {
		return o.Budget(src, budget)
	}
	return o.Check(src)
}

// hashID is a small FNV-1a so VC seeds differ per obligation.
func hashID(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Summary renders the pass/fail/skipped ledger. It contains only
// deterministic fields (no wall-clock times), so a serial and a
// parallel run of the same registry and seed produce byte-identical
// summaries; timing belongs in the run footer (Total, Max, Speedup).
func (r *Report) Summary() string {
	var b strings.Builder
	byMod := r.ByModule()
	mods := make([]string, 0, len(byMod))
	for m := range byMod {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "module", "passed", "failed", "skipped")
	totP, totF, totS := 0, 0, 0
	for _, m := range mods {
		e := byMod[m]
		fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", m, e.Passed, e.Failed, e.Skipped)
		totP += e.Passed
		totF += e.Failed
		totS += e.Skipped
	}
	fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", "total", totP, totF, totS)
	fmt.Fprintf(&b, "verification conditions: %d   passed: %d   failed: %d   skipped: %d\n",
		len(r.Results), totP, totF, totS)
	return b.String()
}

// Default is the process-wide registry modules register into from their
// RegisterObligations functions.
var Default = &Registry{}
