// Package verifier is the verification-condition engine: the repo's
// executable stand-in for the Verus/SMT pipeline of the paper.
//
// Every module registers named obligations — invariant preservation,
// refinement simulations, serialization round-trip lemmas,
// linearizability of NR histories — and the runner discharges each one,
// individually timed. The per-VC timing distribution regenerates
// Figure 1a; the pass/fail ledger is what this repository means by
// "verified".
//
// Obligations must be deterministic: randomized checks derive their
// randomness from the obligation's seeded source so that a failure
// reproduces.
package verifier

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies an obligation, mirroring the proof categories in the
// paper's methodology (§4.3–§4.4, §5).
type Kind string

// Obligation kinds.
const (
	KindInvariant       Kind = "invariant"       // state invariant preservation
	KindRefinement      Kind = "refinement"      // impl ⊑ spec simulation
	KindRoundTrip       Kind = "round-trip"      // marshalling lemmas (§3)
	KindLinearizability Kind = "linearizability" // NR histories (§4.3)
	KindModelCheck      Kind = "model-check"     // explicit-state exploration
	KindSafety          Kind = "safety"          // memory-safety / bounds probes
)

// Obligation is one verification condition.
type Obligation struct {
	// Module is the subsystem the VC belongs to, e.g. "pt" or "fs".
	Module string
	// Name identifies the VC within the module, e.g. "map-refines-spec".
	Name string
	Kind Kind
	// Check discharges the VC. It receives a deterministically seeded
	// random source for randomized lemmas.
	Check func(r *rand.Rand) error
}

// ID returns the fully qualified VC name.
func (o Obligation) ID() string { return o.Module + ":" + o.Name }

// Registry collects obligations from all modules. The zero value is
// ready to use.
type Registry struct {
	mu   sync.Mutex
	obls []Obligation
	seen map[string]bool
}

// Register adds obligations, panicking on duplicate IDs (a duplicate is
// a programming error in module wiring, caught at init/test time).
func (g *Registry) Register(obls ...Obligation) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.seen == nil {
		g.seen = make(map[string]bool)
	}
	for _, o := range obls {
		if o.Check == nil {
			panic("verifier: obligation " + o.ID() + " has nil Check")
		}
		if g.seen[o.ID()] {
			panic("verifier: duplicate obligation " + o.ID())
		}
		g.seen[o.ID()] = true
		g.obls = append(g.obls, o)
	}
}

// Obligations returns the registered obligations sorted by ID.
func (g *Registry) Obligations() []Obligation {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Obligation, len(g.obls))
	copy(out, g.obls)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// Len returns the number of registered obligations.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.obls)
}

// Result is the outcome of discharging one obligation.
type Result struct {
	Obligation Obligation
	Duration   time.Duration
	Err        error
}

// Report is the outcome of a full verification run — the data behind
// Figure 1a and the §5 "total time to verify" numbers.
type Report struct {
	Results []Result
	Total   time.Duration
}

// Failed returns the failed results.
func (r *Report) Failed() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.Err != nil {
			out = append(out, res)
		}
	}
	return out
}

// Max returns the slowest VC duration (the paper: "all functions are
// individually verified in at most 11 seconds").
func (r *Report) Max() time.Duration {
	var m time.Duration
	for _, res := range r.Results {
		if res.Duration > m {
			m = res.Duration
		}
	}
	return m
}

// CDFPoint is one point of the verification-time CDF.
type CDFPoint struct {
	Duration time.Duration
	Fraction float64 // cumulative fraction of VCs at or below Duration
}

// CDF returns the cumulative distribution of VC times, the series
// plotted in Figure 1a.
func (r *Report) CDF() []CDFPoint {
	ds := make([]time.Duration, len(r.Results))
	for i, res := range r.Results {
		ds[i] = res.Duration
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	out := make([]CDFPoint, len(ds))
	for i, d := range ds {
		out[i] = CDFPoint{Duration: d, Fraction: float64(i+1) / float64(len(ds))}
	}
	return out
}

// ByModule groups result counts per module for the summary table.
func (r *Report) ByModule() map[string]struct{ Passed, Failed int } {
	out := make(map[string]struct{ Passed, Failed int })
	for _, res := range r.Results {
		e := out[res.Obligation.Module]
		if res.Err != nil {
			e.Failed++
		} else {
			e.Passed++
		}
		out[res.Obligation.Module] = e
	}
	return out
}

// Options configures a verification run.
type Options struct {
	// Seed is the base seed for randomized obligations. Each VC derives
	// its own source from Seed and its ID so runs are order-independent.
	Seed int64
	// Module, if non-empty, restricts the run to one module.
	Module string
	// Progress, if non-nil, is called after each VC completes.
	Progress func(Result)
}

// Run discharges every registered obligation sequentially (the paper
// also reports single-job verification time) and returns the report.
func (g *Registry) Run(opts Options) *Report {
	rep := &Report{}
	start := time.Now()
	for _, o := range g.Obligations() {
		if opts.Module != "" && o.Module != opts.Module {
			continue
		}
		src := rand.New(rand.NewSource(opts.Seed ^ int64(hashID(o.ID()))))
		t0 := time.Now()
		err := safeCheck(o, src)
		res := Result{Obligation: o, Duration: time.Since(t0), Err: err}
		rep.Results = append(rep.Results, res)
		if opts.Progress != nil {
			opts.Progress(res)
		}
	}
	rep.Total = time.Since(start)
	return rep
}

// safeCheck converts a panicking obligation into a failure rather than
// tearing down the whole verification run.
func safeCheck(o Obligation, src *rand.Rand) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("obligation panicked: %v", p)
		}
	}()
	return o.Check(src)
}

// hashID is a small FNV-1a so VC seeds differ per obligation.
func hashID(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Summary renders a human-readable pass/fail table.
func (r *Report) Summary() string {
	var b strings.Builder
	byMod := r.ByModule()
	mods := make([]string, 0, len(byMod))
	for m := range byMod {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	fmt.Fprintf(&b, "%-12s %8s %8s\n", "module", "passed", "failed")
	totP, totF := 0, 0
	for _, m := range mods {
		e := byMod[m]
		fmt.Fprintf(&b, "%-12s %8d %8d\n", m, e.Passed, e.Failed)
		totP += e.Passed
		totF += e.Failed
	}
	fmt.Fprintf(&b, "%-12s %8d %8d\n", "total", totP, totF)
	fmt.Fprintf(&b, "verification conditions: %d   total time: %v   max single VC: %v\n",
		len(r.Results), r.Total.Round(time.Millisecond), r.Max().Round(time.Microsecond))
	return b.String()
}

// Default is the process-wide registry modules register into from their
// RegisterObligations functions.
var Default = &Registry{}
