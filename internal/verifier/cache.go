package verifier

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Incremental verification: a VC's inputs are the Go sources of the
// package its module maps to plus everything that package (transitively)
// imports inside this repository — exactly the code whose behavior the
// VC pins. ModuleHashes computes one content hash per module over that
// closure; a cache (.vnros-verify/cache.json) records the hashes of the
// last fully green run, and `vnros-verify -incremental` skips VCs whose
// module hash is unchanged.
//
// Invalidation rules (see DESIGN.md, "Scaling the verifier"):
//   - any non-test .go file in the module's package dir or a transitive
//     repo-internal import changes → the module's hash changes → run;
//   - the run seed or fuzz budget differs from the cached run → the
//     cached randomness doesn't cover this run → run everything;
//   - a module with no resolvable package dir is never skippable;
//   - the cache is written only after a green, unfiltered run.
//
// The skip is advisory — a scheduling aid for local iteration. CI
// always passes -force and discharges every obligation.

// CachePath is the on-disk location of the incremental manifest,
// relative to the repo root.
const CachePath = ".vnros-verify/cache.json"

// Cache is the persisted manifest of the last green run.
type Cache struct {
	Version    int               `json:"version"`
	Seed       int64             `json:"seed"`
	FuzzBudget int               `json:"fuzzbudget"`
	Modules    map[string]string `json:"modules"`
}

// LoadCache reads the manifest at path; a missing file is an empty
// cache (nothing skippable), not an error.
func LoadCache(path string) (*Cache, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Cache{Version: 1, Modules: map[string]string{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var c Cache
	if err := json.Unmarshal(raw, &c); err != nil {
		return nil, fmt.Errorf("verifier: corrupt cache %s: %w", path, err)
	}
	if c.Modules == nil {
		c.Modules = map[string]string{}
	}
	return &c, nil
}

// Save writes the manifest atomically (write-then-rename), creating the
// cache directory if needed.
func (c *Cache) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Skippable reports whether a module's VCs may be skipped: the cached
// run used the same seed and budget, and the module's input hash is
// unchanged.
func (c *Cache) Skippable(module, hash string, seed int64, fuzzBudget int) bool {
	if c.Seed != seed || c.FuzzBudget != fuzzBudget || hash == "" {
		return false
	}
	return c.Modules[module] == hash
}

// extraModuleDeps names input edges the import graph cannot see: these
// modules' obligations are registered with an environment constructed
// by another package (ulib's env boots core systems), so that package's
// sources are part of their inputs.
var extraModuleDeps = map[string][]string{
	"ulib": {"internal/core"},
}

// ModuleHashes computes the content hash of every module's input
// closure under root (the repo root, containing go.mod). Modules whose
// package dir cannot be resolved are absent from the result — and
// therefore never skippable.
func ModuleHashes(root string, modules []string) (map[string]string, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	closures := newImportWalker(root, modPath)
	out := make(map[string]string, len(modules))
	for _, m := range modules {
		dir, ok := moduleDir(root, m)
		if !ok {
			continue
		}
		dirs, err := closures.closure(dir)
		if err != nil {
			return nil, fmt.Errorf("verifier: module %s: %w", m, err)
		}
		for _, extra := range extraModuleDeps[m] {
			more, err := closures.closure(extra)
			if err != nil {
				return nil, fmt.Errorf("verifier: module %s extra dep: %w", m, err)
			}
			dirs = append(dirs, more...)
		}
		h, err := hashDirs(root, dedupe(dirs))
		if err != nil {
			return nil, fmt.Errorf("verifier: module %s: %w", m, err)
		}
		out[m] = h
	}
	return out, nil
}

// moduleDir maps an obligation module name to its repo-relative package
// dir: internal/<module>, falling back to internal/verifier/<module>
// (the differential harness lives under the verifier).
func moduleDir(root, module string) (string, bool) {
	for _, rel := range []string{
		filepath.Join("internal", filepath.FromSlash(module)),
		filepath.Join("internal", "verifier", filepath.FromSlash(module)),
	} {
		if st, err := os.Stat(filepath.Join(root, rel)); err == nil && st.IsDir() {
			return filepath.ToSlash(rel), true
		}
	}
	return "", false
}

// modulePath reads the module line of go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// importWalker memoizes the transitive repo-internal import closure of
// package dirs (repo-relative, slash-separated).
type importWalker struct {
	root    string
	modPath string
	imports map[string][]string // dir → direct repo-internal import dirs
}

func newImportWalker(root, modPath string) *importWalker {
	return &importWalker{root: root, modPath: modPath, imports: map[string][]string{}}
}

// closure returns dir plus every repo-internal package dir it
// transitively imports.
func (w *importWalker) closure(dir string) ([]string, error) {
	seen := map[string]bool{}
	var visit func(d string) error
	visit = func(d string) error {
		if seen[d] {
			return nil
		}
		seen[d] = true
		deps, err := w.directImports(d)
		if err != nil {
			return err
		}
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(dir); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// directImports parses the non-test .go files of one package dir
// (imports only) and returns the repo-internal packages they import.
func (w *importWalker) directImports(dir string) ([]string, error) {
	if deps, ok := w.imports[dir]; ok {
		return deps, nil
	}
	files, err := goFiles(filepath.Join(w.root, filepath.FromSlash(dir)))
	if err != nil {
		return nil, err
	}
	depSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, f := range files {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", f, err)
		}
		for _, imp := range parsed.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if rel, ok := strings.CutPrefix(path, w.modPath+"/"); ok {
				depSet[rel] = true
			}
		}
	}
	deps := make([]string, 0, len(depSet))
	for d := range depSet {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	w.imports[dir] = deps
	return deps, nil
}

// goFiles lists a dir's non-test .go files, sorted.
func goFiles(absDir string) ([]string, error) {
	ents, err := os.ReadDir(absDir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(absDir, name))
	}
	sort.Strings(out)
	return out, nil
}

// hashDirs hashes the contents of every non-test .go file under the
// given package dirs (names and bytes, in sorted order).
func hashDirs(root string, dirs []string) (string, error) {
	h := sha256.New()
	for _, dir := range dirs {
		files, err := goFiles(filepath.Join(root, filepath.FromSlash(dir)))
		if err != nil {
			return "", err
		}
		for _, f := range files {
			raw, err := os.ReadFile(f)
			if err != nil {
				return "", err
			}
			rel, err := filepath.Rel(root, f)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", filepath.ToSlash(rel), len(raw))
			h.Write(raw)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func dedupe(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}
