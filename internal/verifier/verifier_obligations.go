package verifier

import (
	"errors"
	"fmt"
	"math/rand"
)

// RegisterObligations registers the VC engine's self-checks: seeds are
// deterministic and per-VC, failures and panics are captured rather
// than aborting the run, the module filter is exact, and the CDF is a
// valid distribution function. The engine's own soundness underpins
// every other "verified" claim in the tree.
func RegisterObligations(g *Registry) {
	g.Register(
		Obligation{Module: "verifier", Name: "seeds-deterministic-per-vc", Kind: KindSafety,
			Check: func(r *rand.Rand) error {
				inner := &Registry{}
				var a1, a2, b1 int64
				inner.Register(
					Obligation{Module: "m", Name: "a", Kind: KindSafety,
						Check: func(rr *rand.Rand) error {
							if a1 == 0 {
								a1 = rr.Int63()
							} else {
								a2 = rr.Int63()
							}
							return nil
						}},
					Obligation{Module: "m", Name: "b", Kind: KindSafety,
						Check: func(rr *rand.Rand) error {
							if b1 == 0 {
								b1 = rr.Int63()
							}
							return nil
						}},
				)
				inner.Run(Options{Seed: 7})
				inner.Run(Options{Seed: 7})
				if a1 != a2 {
					return fmt.Errorf("same seed produced different VC randomness")
				}
				if a1 == b1 {
					return fmt.Errorf("distinct VCs share randomness")
				}
				return nil
			}},
		Obligation{Module: "verifier", Name: "failures-isolated", Kind: KindSafety,
			Check: func(r *rand.Rand) error {
				inner := &Registry{}
				ran := 0
				inner.Register(
					Obligation{Module: "m", Name: "boom", Kind: KindSafety,
						Check: func(rr *rand.Rand) error { panic("boom") }},
					Obligation{Module: "m", Name: "fail", Kind: KindSafety,
						Check: func(rr *rand.Rand) error { return errors.New("no") }},
					Obligation{Module: "m", Name: "after", Kind: KindSafety,
						Check: func(rr *rand.Rand) error { ran++; return nil }},
				)
				rep := inner.Run(Options{})
				if ran != 1 {
					return fmt.Errorf("VC after a panic did not run")
				}
				if len(rep.Failed()) != 2 {
					return fmt.Errorf("failed = %d, want 2", len(rep.Failed()))
				}
				return nil
			}},
		Obligation{Module: "verifier", Name: "cdf-is-distribution", Kind: KindInvariant,
			Check: func(r *rand.Rand) error {
				inner := &Registry{}
				n := 5 + r.Intn(30)
				for i := 0; i < n; i++ {
					name := fmt.Sprintf("vc%d", i)
					inner.Register(Obligation{Module: "m", Name: name, Kind: KindSafety,
						Check: func(rr *rand.Rand) error {
							// Busy-work of random size so durations vary.
							k := rr.Intn(2000)
							s := 0
							for j := 0; j < k; j++ {
								s += j
							}
							_ = s
							return nil
						}})
				}
				rep := inner.Run(Options{Seed: r.Int63()})
				cdf := rep.CDF()
				if len(cdf) != n {
					return fmt.Errorf("cdf has %d points for %d VCs", len(cdf), n)
				}
				for i := 1; i < len(cdf); i++ {
					if cdf[i].Duration < cdf[i-1].Duration || cdf[i].Fraction <= cdf[i-1].Fraction {
						return fmt.Errorf("cdf not monotone at %d", i)
					}
				}
				if cdf[len(cdf)-1].Fraction != 1 {
					return fmt.Errorf("cdf ends at %f", cdf[len(cdf)-1].Fraction)
				}
				if rep.Max() != cdf[len(cdf)-1].Duration {
					return fmt.Errorf("Max() disagrees with cdf tail")
				}
				return nil
			}},
		Obligation{Module: "verifier", Name: "pool-order-independent", Kind: KindSafety,
			Check: func(r *rand.Rand) error {
				// The worker-pool soundness claim, self-applied: the same
				// inner registry at Jobs=1 and Jobs=8 produces identical
				// error sets and a byte-identical summary.
				build := func() *Registry {
					inner := &Registry{}
					for i := 0; i < 24; i++ {
						i := i
						inner.Register(Obligation{Module: fmt.Sprintf("m%d", i%3),
							Name: fmt.Sprintf("vc%02d", i), Kind: KindSafety,
							Check: func(rr *rand.Rand) error {
								if rr.Intn(3) == 0 {
									return fmt.Errorf("seeded failure")
								}
								return nil
							}})
					}
					return inner
				}
				seed := r.Int63()
				a := build().Run(Options{Seed: seed, Jobs: 1})
				b := build().Run(Options{Seed: seed, Jobs: 8})
				if a.Summary() != b.Summary() {
					return fmt.Errorf("summary differs between Jobs=1 and Jobs=8")
				}
				for i := range a.Results {
					ra, rb := a.Results[i], b.Results[i]
					if ra.Obligation.ID() != rb.Obligation.ID() {
						return fmt.Errorf("result order differs at %d", i)
					}
					if (ra.Err == nil) != (rb.Err == nil) {
						return fmt.Errorf("VC %s verdict differs across job counts", ra.Obligation.ID())
					}
				}
				return nil
			}},
		Obligation{Module: "verifier", Name: "fuzz-budget-plumbed", Kind: KindSafety,
			Check: func(r *rand.Rand) error {
				var got []int
				inner := &Registry{}
				inner.Register(Obligation{Module: "m", Name: "b", Kind: KindSafety,
					Budget: func(rr *rand.Rand, budget int) error {
						got = append(got, budget)
						return nil
					}})
				want := 1 + r.Intn(8)
				inner.Run(Options{FuzzBudget: want})
				inner.Run(Options{FuzzBudget: -1})
				if len(got) != 2 || got[0] != want || got[1] != 1 {
					return fmt.Errorf("budgets = %v, want [%d 1]", got, want)
				}
				return nil
			}},
		Obligation{Module: "verifier", Name: "module-filter-exact", Kind: KindSafety,
			Check: func(r *rand.Rand) error {
				inner := &Registry{}
				inner.Register(
					Obligation{Module: "aa", Name: "x", Kind: KindSafety,
						Check: func(rr *rand.Rand) error { return nil }},
					Obligation{Module: "aab", Name: "y", Kind: KindSafety,
						Check: func(rr *rand.Rand) error { return nil }},
				)
				rep := inner.Run(Options{Module: "aa"})
				if len(rep.Results) != 1 || rep.Results[0].Obligation.Module != "aa" {
					return fmt.Errorf("module filter matched prefixes: %d results", len(rep.Results))
				}
				return nil
			}},
	)
}
