package verifier

import (
	"encoding/json"
	"sort"
)

// LedgerEntry is one VC's row of the machine-readable timing ledger
// (BENCH_verify.json) — the verification-time trajectory is tracked in
// CI like the perf benches.
type LedgerEntry struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	DurationNs int64  `json:"duration_ns"`
	Skipped    bool   `json:"skipped"`
	Pass       bool   `json:"pass"`
	Err        string `json:"err,omitempty"`
}

// Ledger is the JSON shape of a verification run: the headline numbers
// (wall clock, serial-equivalent cost, speedup) plus the per-VC rows
// sorted by descending duration, mirroring `vnros-verify -timing`.
type Ledger struct {
	Jobs       int           `json:"jobs"`
	Seed       int64         `json:"seed"`
	FuzzBudget int           `json:"fuzzbudget"`
	VCs        int           `json:"vcs"`
	Passed     int           `json:"passed"`
	Failed     int           `json:"failed"`
	Skipped    int           `json:"skipped"`
	TotalNs    int64         `json:"total_ns"`
	SerialNs   int64         `json:"serial_ns"`
	MaxNs      int64         `json:"max_ns"`
	Speedup    float64       `json:"speedup"`
	Entries    []LedgerEntry `json:"entries"`
}

// Ledger builds the machine-readable run ledger. Seed and fuzz budget
// are run inputs the report doesn't carry; the caller passes them back
// in so the artifact reproduces the run.
func (r *Report) Ledger(seed int64, fuzzBudget int) Ledger {
	l := Ledger{
		Jobs:       r.Jobs,
		Seed:       seed,
		FuzzBudget: fuzzBudget,
		VCs:        len(r.Results),
		TotalNs:    r.Total.Nanoseconds(),
		SerialNs:   r.SerialTime().Nanoseconds(),
		MaxNs:      r.Max().Nanoseconds(),
		Speedup:    r.Speedup(),
		Entries:    make([]LedgerEntry, 0, len(r.Results)),
	}
	for _, res := range r.Results {
		e := LedgerEntry{
			ID:         res.Obligation.ID(),
			Kind:       string(res.Obligation.Kind),
			DurationNs: res.Duration.Nanoseconds(),
			Skipped:    res.Skipped,
			Pass:       !res.Skipped && res.Err == nil,
		}
		if res.Err != nil {
			e.Err = res.Err.Error()
		}
		switch {
		case res.Skipped:
			l.Skipped++
		case res.Err != nil:
			l.Failed++
		default:
			l.Passed++
		}
		l.Entries = append(l.Entries, e)
	}
	sort.SliceStable(l.Entries, func(i, j int) bool {
		return l.Entries[i].DurationNs > l.Entries[j].DurationNs
	})
	return l
}

// LedgerJSON renders the run ledger as indented JSON.
func (r *Report) LedgerJSON(seed int64, fuzzBudget int) ([]byte, error) {
	return json.MarshalIndent(r.Ledger(seed, fuzzBudget), "", "  ")
}
