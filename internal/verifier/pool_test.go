package verifier

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// stressRegistry builds a registry mixing passing, failing, panicking,
// randomized, and slow obligations — the worker pool's worst customers.
func stressRegistry(n int) *Registry {
	g := &Registry{}
	for i := 0; i < n; i++ {
		i := i
		var check func(r *rand.Rand) error
		switch i % 5 {
		case 0:
			check = func(r *rand.Rand) error { return nil }
		case 1:
			check = func(r *rand.Rand) error { return fmt.Errorf("deterministic failure %d", i) }
		case 2:
			check = func(r *rand.Rand) error { panic(fmt.Sprintf("panic %d", i)) }
		case 3:
			// Randomized: fails iff the VC's seeded source says so — the
			// outcome must be identical at every job count.
			check = func(r *rand.Rand) error {
				if r.Intn(2) == 0 {
					return errors.New("seeded coin came up tails")
				}
				return nil
			}
		default:
			check = func(r *rand.Rand) error { time.Sleep(time.Millisecond); return nil }
		}
		g.Register(Obligation{Module: fmt.Sprintf("m%d", i%7), Name: fmt.Sprintf("vc%03d", i),
			Kind: KindSafety, Check: check})
	}
	return g
}

func errStrings(rep *Report) []string {
	var out []string
	for _, r := range rep.Results {
		if r.Err != nil {
			out = append(out, r.Obligation.ID()+": "+r.Err.Error())
		}
	}
	sort.Strings(out)
	return out
}

// TestParallelMatchesSerial is the soundness claim of the pool: the same
// seed at Jobs=1 and Jobs=8 produces identical error sets, identical
// result ordering, and a byte-identical Summary.
func TestParallelMatchesSerial(t *testing.T) {
	g := stressRegistry(60)
	serial := g.Run(Options{Seed: 2026, Jobs: 1})
	parallel := g.Run(Options{Seed: 2026, Jobs: 8})

	if serial.Jobs != 1 || parallel.Jobs != 8 {
		t.Fatalf("jobs recorded as %d / %d", serial.Jobs, parallel.Jobs)
	}
	se, pe := errStrings(serial), errStrings(parallel)
	if len(se) == 0 {
		t.Fatal("stress registry produced no failures — the comparison is vacuous")
	}
	if len(se) != len(pe) {
		t.Fatalf("error counts differ: serial %d, parallel %d", len(se), len(pe))
	}
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("error %d differs:\n  serial:   %s\n  parallel: %s", i, se[i], pe[i])
		}
	}
	for i := range serial.Results {
		if serial.Results[i].Obligation.ID() != parallel.Results[i].Obligation.ID() {
			t.Fatalf("result %d out of order: %s vs %s",
				i, serial.Results[i].Obligation.ID(), parallel.Results[i].Obligation.ID())
		}
	}
	if s, p := serial.Summary(), parallel.Summary(); s != p {
		t.Fatalf("summaries differ across job counts:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}
}

// TestParallelStress hammers the pool with every job count under the
// race detector lane: all obligations complete exactly once and the
// progress callback is serialized.
func TestParallelStress(t *testing.T) {
	for _, jobs := range []int{1, 2, 4, 8, 16} {
		g := stressRegistry(80)
		var inProgress, calls int32
		rep := g.Run(Options{Seed: int64(jobs), Jobs: jobs, Progress: func(r Result) {
			if atomic.AddInt32(&inProgress, 1) != 1 {
				t.Error("progress callback ran concurrently")
			}
			atomic.AddInt32(&calls, 1)
			atomic.AddInt32(&inProgress, -1)
		}})
		if len(rep.Results) != 80 || calls != 80 {
			t.Fatalf("jobs=%d: %d results, %d progress calls", jobs, len(rep.Results), calls)
		}
		for i, r := range rep.Results {
			if r.Obligation.ID() == "" || (i > 0 && rep.Results[i-1].Obligation.ID() >= r.Obligation.ID()) {
				t.Fatalf("jobs=%d: results not in strict ID order at %d", jobs, i)
			}
		}
	}
}

// TestPoolOverlapsBlockedVCs pins the wall-clock property: obligations
// that block (here: sleep) overlap on the pool, so the run completes in
// roughly max-duration rather than sum-of-durations. Sleeping keeps the
// test meaningful on single-CPU machines where CPU-bound VCs cannot
// physically speed up.
func TestPoolOverlapsBlockedVCs(t *testing.T) {
	g := &Registry{}
	const n, nap = 8, 60 * time.Millisecond
	for i := 0; i < n; i++ {
		g.Register(Obligation{Module: "m", Name: fmt.Sprintf("sleep%d", i), Kind: KindSafety,
			Check: func(r *rand.Rand) error { time.Sleep(nap); return nil }})
	}
	rep := g.Run(Options{Jobs: n})
	if rep.Total >= n*nap/2 {
		t.Fatalf("pool did not overlap: %d sleeping VCs of %v took %v", n, nap, rep.Total)
	}
	if sp := rep.Speedup(); sp < 2 {
		t.Fatalf("speedup = %.2fx, want >= 2x for fully overlapping VCs", sp)
	}
}

// TestSkipHook checks the incremental hook: skipped VCs are recorded as
// Skipped (not passed, not failed, excluded from the CDF) and their
// checks never run.
func TestSkipHook(t *testing.T) {
	g := &Registry{}
	ran := map[string]bool{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		g.Register(Obligation{Module: "m", Name: name, Kind: KindSafety,
			Check: func(r *rand.Rand) error { ran[name] = true; return nil }})
	}
	rep := g.Run(Options{Jobs: 1, Skip: func(o Obligation) bool { return o.Name == "b" }})
	if ran["b"] {
		t.Fatal("skipped VC ran anyway")
	}
	if !ran["a"] || !ran["c"] {
		t.Fatal("unskipped VCs did not run")
	}
	if sk := rep.Skipped(); len(sk) != 1 || sk[0].Obligation.Name != "b" {
		t.Fatalf("Skipped() = %+v", sk)
	}
	if got := rep.ByModule()["m"]; got != (ModuleTally{Passed: 2, Skipped: 1}) {
		t.Fatalf("tally = %+v", got)
	}
	if pts := rep.CDF(); len(pts) != 2 {
		t.Fatalf("CDF counts skipped VCs: %d points", len(pts))
	}
}

// TestBudgetHook checks the fuzz-budget plumbing: Budget is preferred
// over Check, receives the clamped budget, and <1 clamps to 1.
func TestBudgetHook(t *testing.T) {
	var got []int
	checkRan := false
	g := &Registry{}
	g.Register(Obligation{Module: "m", Name: "budgeted", Kind: KindSafety,
		Check:  func(r *rand.Rand) error { checkRan = true; return nil },
		Budget: func(r *rand.Rand, budget int) error { got = append(got, budget); return nil }})
	g.Run(Options{FuzzBudget: 5})
	g.Run(Options{FuzzBudget: 0})
	g.Run(Options{FuzzBudget: -3})
	if checkRan {
		t.Fatal("Check ran despite a Budget hook")
	}
	if len(got) != 3 || got[0] != 5 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("budgets = %v, want [5 1 1]", got)
	}
}

// TestEmptyReportSafe pins the empty-report paths: CDF, Summary, Max,
// Speedup and the ledger must all handle zero results (e.g. a module
// filter matching nothing).
func TestEmptyReportSafe(t *testing.T) {
	g := &Registry{}
	g.Register(okObl("m", "x", KindSafety))
	rep := g.Run(Options{Module: "does-not-exist"})
	if len(rep.CDF()) != 0 {
		t.Fatal("CDF non-empty for empty report")
	}
	if rep.Max() != 0 || rep.SerialTime() != 0 {
		t.Fatal("Max/SerialTime non-zero for empty report")
	}
	_ = rep.Speedup()
	if s := rep.Summary(); s == "" {
		t.Fatal("empty summary")
	}
	l := rep.Ledger(1, 1)
	if l.VCs != 0 || len(l.Entries) != 0 {
		t.Fatalf("ledger = %+v", l)
	}
}

// TestLedgerShape checks the BENCH_verify.json rows carry the fields CI
// tracks and are sorted by descending duration.
func TestLedgerShape(t *testing.T) {
	g := stressRegistry(20)
	rep := g.Run(Options{Seed: 9, Jobs: 4, Skip: func(o Obligation) bool { return o.Name == "vc000" }})
	l := rep.Ledger(9, 3)
	if l.Seed != 9 || l.FuzzBudget != 3 || l.Jobs != 4 || l.VCs != 20 {
		t.Fatalf("header = %+v", l)
	}
	if l.Passed+l.Failed+l.Skipped != 20 || l.Skipped != 1 {
		t.Fatalf("tallies = %d/%d/%d", l.Passed, l.Failed, l.Skipped)
	}
	for i, e := range l.Entries {
		if e.ID == "" || e.Kind == "" {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
		if i > 0 && e.DurationNs > l.Entries[i-1].DurationNs {
			t.Fatalf("entries not sorted by descending duration at %d", i)
		}
		if e.Pass && e.Err != "" {
			t.Fatalf("entry %d passed with an error: %+v", i, e)
		}
	}
	raw, err := rep.LedgerJSON(9, 3)
	if err != nil || len(raw) == 0 {
		t.Fatalf("LedgerJSON: %v", err)
	}
}
