package diff

import (
	"strings"
	"testing"
)

// TestGenerateDeterministic pins the property a failing differential
// trace depends on: the trace is reproducible from its seed alone.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42, 50), Generate(42, 50)
	if err := DiffLines("a", renderOps(a.Ops), "b", renderOps(b.Ops)); err != nil {
		t.Fatalf("same seed generated different traces: %v", err)
	}
	c := Generate(43, 50)
	if DiffLines("a", renderOps(a.Ops), "c", renderOps(c.Ops)) == nil {
		t.Fatal("distinct seeds generated identical traces")
	}
}

// TestOneTraceDifferential runs the full kernel matrix (monolith,
// sharded, both crash-recovered) on a handful of fixed seeds.
func TestOneTraceDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7919, 39595} {
		if err := oneTraceDifferential(seed, 40); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDiffLinesDetects exercises the differ on every divergence shape:
// changed line, extra tail, missing tail, equal inputs.
func TestDiffLinesDetects(t *testing.T) {
	base := []string{"x", "y", "z"}
	if err := DiffLines("a", base, "b", []string{"x", "y", "z"}); err != nil {
		t.Fatalf("equal inputs diffed: %v", err)
	}
	cases := [][]string{
		{"x", "Y", "z"},      // changed line
		{"x", "y", "z", "w"}, // extra tail
		{"x", "y"},           // missing tail
	}
	for i, c := range cases {
		err := DiffLines("a", base, "b", c)
		if err == nil {
			t.Fatalf("case %d: divergence missed", i)
		}
		if !strings.Contains(err.Error(), "diverge") {
			t.Fatalf("case %d: unhelpful divergence report: %v", i, err)
		}
	}
}

// TestReplayCapturesState checks the replayer produces a non-trivial
// observation log and state capture, and that recovery reproduces the
// live durable file state on a monolithic kernel.
func TestReplayCapturesState(t *testing.T) {
	tr := Generate(7, 30)
	rep, sys, err := Run(kernelConfig(0), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Log) == 0 || len(rep.State) == 0 {
		t.Fatalf("empty observations: %d log, %d state lines", len(rep.Log), len(rep.State))
	}
	rec, err := RecoverFiles(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := DiffLines("live", rep.Files, "recovered", rec); err != nil {
		t.Fatalf("synced file state did not survive recovery: %v", err)
	}
}
