// Package diff is the differential verification harness: it generates
// randomized syscall traces and replays each one against multiple
// implementations of the same kernel specification — the monolithic
// single-NR kernel, the sharded kernel, and their WAL-crash-recovered
// reboots — then diffs every observable: per-op results, the file tree
// and contents, the caller's descriptor table, the reaped process tree,
// and the bound-port table. Any divergence is a refinement violation
// caught end-to-end, converting the per-subsystem refinement VCs into
// one continuously fuzzed whole-system property (the separation-kernel
// survey's cross-implementation differential checking, applied to our
// own kernels).
//
// Traces are pure data: the generator consumes randomness, the replayer
// consumes none, so the same Trace replays bit-identically on every
// kernel. Every trace ends with a Sync, making the final file state
// durable — which is what licenses diffing a crash-recovered kernel
// against the live ones.
package diff

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/sys"
)

// OpKind is one trace operation's kind.
type OpKind int

// Trace op kinds. Socket pings pair a self-addressed send with a
// blocking receive so datagram delivery (interrupt-fed, asynchronous)
// never makes the observation timing-dependent.
const (
	OpOpen OpKind = iota
	OpClose
	OpRead
	OpWrite
	OpSeek
	OpPread
	OpTruncate
	OpMkdir
	OpUnlink
	OpRename
	OpSync
	OpSpawn // run Child ops in a spawned process, exit Code, reap it
	OpSockBind
	OpSockPing // send to the slot's own bound port, then blocking-recv
	OpSockClose
)

var opNames = map[OpKind]string{
	OpOpen: "open", OpClose: "close", OpRead: "read", OpWrite: "write",
	OpSeek: "seek", OpPread: "pread", OpTruncate: "truncate",
	OpMkdir: "mkdir", OpUnlink: "unlink", OpRename: "rename",
	OpSync: "sync", OpSpawn: "spawn", OpSockBind: "sockbind",
	OpSockPing: "sockping", OpSockClose: "sockclose",
}

func (k OpKind) String() string { return opNames[k] }

// Op is one step of a trace. Slots are virtual registers: Open/SockBind
// store the returned handle in Slot, later ops use whatever the slot
// holds (a never-assigned slot holds an invalid handle, so the op's
// errno — EBADF — is itself part of the diffed observation).
type Op struct {
	Kind   OpKind
	Slot   int
	Path   string
	Path2  string
	Data   []byte
	N      uint64       // read/pread length
	Off    int64        // seek offset / pread offset / truncate size
	Whence int          // seek whence
	Flags  sys.OpenFlag // open flags
	Port   sys.Port     // sockbind port
	Code   int          // spawn: child exit code
	Child  []Op         // spawn: the child's script (no nested spawns)
}

// Trace is one generated syscall script plus the slot/port geometry the
// replayer and the state capture need.
type Trace struct {
	Seed    int64
	Ops     []Op
	FDSlots int
	SkSlots int
	Ports   []sys.Port // the port pool; the capture probes each
}

// Generation geometry: a handful of paths, fd slots, and ports so that
// collisions (EEXIST, EADDRINUSE, EBADF) happen often enough to diff
// the error paths too.
const (
	genFDSlots = 5
	genSkSlots = 3
	genDirs    = 2
	genFiles   = 6
)

func genPorts() []sys.Port { return []sys.Port{7300, 7301, 7302} }

// Generate builds a randomized trace of about n ops from seed. The
// trace always ends with a Sync so its file state is durable.
func Generate(seed int64, n int) Trace {
	r := rand.New(rand.NewSource(seed))
	tr := Trace{Seed: seed, FDSlots: genFDSlots, SkSlots: genSkSlots, Ports: genPorts()}
	// A deterministic preamble so most ops land on existing objects.
	for d := 0; d < genDirs; d++ {
		tr.Ops = append(tr.Ops, Op{Kind: OpMkdir, Path: dirPath(d)})
	}
	tr.Ops = append(tr.Ops, genOps(r, n, true)...)
	tr.Ops = append(tr.Ops, Op{Kind: OpSync})
	return tr
}

func dirPath(d int) string            { return fmt.Sprintf("/d%d", d) }
func filePath(r *rand.Rand) string    { return fmt.Sprintf("%s/f%d", dirPath(r.Intn(genDirs)), r.Intn(genFiles)) }
func payload(r *rand.Rand, n int) []byte {
	p := make([]byte, 1+r.Intn(n))
	r.Read(p)
	return p
}

// genOps emits about n random ops; spawn is only allowed at the top
// level (children get a flat file-op script of their own).
func genOps(r *rand.Rand, n int, allowSpawn bool) []Op {
	var ops []Op
	for i := 0; i < n; i++ {
		switch k := r.Intn(20); {
		case k < 4: // open
			flags := sys.ORdWr
			if r.Intn(2) == 0 {
				flags |= sys.OCreate
			}
			if r.Intn(6) == 0 {
				flags |= sys.OTrunc
			}
			if r.Intn(8) == 0 {
				flags |= sys.OAppend
			}
			ops = append(ops, Op{Kind: OpOpen, Slot: r.Intn(genFDSlots), Path: filePath(r), Flags: flags})
		case k < 8: // write
			ops = append(ops, Op{Kind: OpWrite, Slot: r.Intn(genFDSlots), Data: payload(r, 600)})
		case k < 11: // read
			ops = append(ops, Op{Kind: OpRead, Slot: r.Intn(genFDSlots), N: uint64(1 + r.Intn(400))})
		case k < 13: // seek
			ops = append(ops, Op{Kind: OpSeek, Slot: r.Intn(genFDSlots),
				Off: int64(r.Intn(300)) - 100, Whence: r.Intn(3)})
		case k < 15: // pread
			ops = append(ops, Op{Kind: OpPread, Slot: r.Intn(genFDSlots),
				N: uint64(1 + r.Intn(300)), Off: int64(r.Intn(500))})
		case k == 15: // close
			ops = append(ops, Op{Kind: OpClose, Slot: r.Intn(genFDSlots)})
		case k == 16: // namespace churn
			switch r.Intn(4) {
			case 0:
				ops = append(ops, Op{Kind: OpTruncate, Slot: r.Intn(genFDSlots), Off: int64(r.Intn(400))})
			case 1:
				ops = append(ops, Op{Kind: OpUnlink, Path: filePath(r)})
			case 2:
				ops = append(ops, Op{Kind: OpRename, Path: filePath(r), Path2: filePath(r)})
			default:
				ops = append(ops, Op{Kind: OpMkdir, Path: fmt.Sprintf("/d%d", r.Intn(genDirs+2))})
			}
		case k == 17: // sync mid-trace
			ops = append(ops, Op{Kind: OpSync})
		case k == 18 && allowSpawn: // spawn a child with its own script
			ops = append(ops, Op{Kind: OpSpawn, Code: r.Intn(64),
				Child: genOps(r, 3+r.Intn(6), false)})
		default: // socket ops
			slot := r.Intn(genSkSlots)
			switch r.Intn(3) {
			case 0:
				ports := genPorts()
				ops = append(ops, Op{Kind: OpSockBind, Slot: slot, Port: ports[r.Intn(len(ports))]})
			case 1:
				ops = append(ops, Op{Kind: OpSockPing, Slot: slot, Data: payload(r, 64)})
			default:
				ops = append(ops, Op{Kind: OpSockClose, Slot: slot})
			}
		}
	}
	return ops
}

// Render prints a trace op compactly for divergence reports.
func (o Op) Render() string {
	switch o.Kind {
	case OpOpen:
		return fmt.Sprintf("open[%d] %s flags=%#x", o.Slot, o.Path, int(o.Flags))
	case OpSpawn:
		return fmt.Sprintf("spawn code=%d ops=%d", o.Code, len(o.Child))
	case OpSockBind:
		return fmt.Sprintf("sockbind[%d] port=%d", o.Slot, o.Port)
	default:
		return fmt.Sprintf("%s[%d] path=%s n=%d off=%d", o.Kind, o.Slot, o.Path, o.N, o.Off)
	}
}
