package diff

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// tracesPerBudget is the base trace count of one differential run;
// Options.FuzzBudget scales it linearly.
const tracesPerBudget = 3

// RegisterObligations registers the differential VC class. These are
// wired from the facade's NewVCRegistry (not core.RegisterAllObligations)
// because the harness sits above core: it boots whole kernels.
//
//   - trace-mono-vs-sharded-vs-wal-recovered: the centerpiece. Each
//     randomized trace replays on the monolithic and the sharded WAL
//     kernel; per-op observations and final observable state must be
//     identical. Both kernels then "lose power" and reboot through WAL
//     recovery; the recovered durable state must equal the live file
//     state (the trace ends with a Sync) on both, and agree with each
//     other.
//   - trace-generator-deterministic: same seed, same trace — a failing
//     differential trace must be reproducible from its logged seed.
//   - harness-detects-divergence: the differ is not vacuous — a
//     synthetically perturbed observation is reported as a divergence.
func RegisterObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "diff", Name: "trace-mono-vs-sharded-vs-wal-recovered",
			Kind: verifier.KindDifferential,
			Budget: func(r *rand.Rand, budget int) error {
				for t := 0; t < tracesPerBudget*budget; t++ {
					if err := oneTraceDifferential(r.Int63(), 30+r.Intn(30)); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "diff", Name: "trace-generator-deterministic",
			Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				seed := r.Int63()
				a, b := Generate(seed, 40), Generate(seed, 40)
				if err := DiffLines("gen-a", renderOps(a.Ops), "gen-b", renderOps(b.Ops)); err != nil {
					return fmt.Errorf("same seed generated different traces: %w", err)
				}
				c := Generate(seed+1, 40)
				if DiffLines("gen-a", renderOps(a.Ops), "gen-c", renderOps(c.Ops)) == nil {
					return fmt.Errorf("distinct seeds generated identical traces")
				}
				return nil
			}},
		verifier.Obligation{Module: "diff", Name: "harness-detects-divergence",
			Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				tr := Generate(r.Int63(), 12)
				rep, _, err := Run(kernelConfig(0), tr)
				if err != nil {
					return err
				}
				if len(rep.State) == 0 || len(rep.Log) == 0 {
					return fmt.Errorf("replay captured no observations")
				}
				// Perturb one state line: the differ must call it out.
				mutated := append([]string(nil), rep.State...)
				i := r.Intn(len(mutated))
				mutated[i] += " PERTURBED"
				if DiffLines("real", rep.State, "mutated", mutated) == nil {
					return fmt.Errorf("differ missed an injected state divergence")
				}
				return nil
			}},
	)
}

// oneTraceDifferential replays one trace across the kernel matrix and
// diffs every observable.
func oneTraceDifferential(seed int64, n int) error {
	tr := Generate(seed, n)

	mono, monoSys, err := Run(kernelConfig(0), tr)
	if err != nil {
		return fmt.Errorf("monolith replay: %w", err)
	}
	shard, shardSys, err := Run(kernelConfig(2), tr)
	if err != nil {
		return fmt.Errorf("sharded replay: %w", err)
	}

	// Live-kernel equivalence: every per-op observation and the full
	// final state (fds, files, ports).
	if err := DiffLines("monolith", mono.Log, "sharded", shard.Log); err != nil {
		return fmt.Errorf("trace seed %d: op log diverged: %w", seed, err)
	}
	if err := DiffLines("monolith", mono.State, "sharded", shard.State); err != nil {
		return fmt.Errorf("trace seed %d: final state diverged: %w", seed, err)
	}

	// Crash both kernels (no shutdown — the disk is simply frozen) and
	// reboot through WAL recovery: the durable file state must survive
	// byte-for-byte (the trace ends with a Sync) and agree across
	// implementations.
	monoRec, err := RecoverFiles(monoSys, 0)
	if err != nil {
		return fmt.Errorf("trace seed %d: monolith recovery: %w", seed, err)
	}
	if err := DiffLines("monolith-live", mono.Files, "monolith-recovered", monoRec); err != nil {
		return fmt.Errorf("trace seed %d: synced state lost or ghosted across monolith crash: %w", seed, err)
	}
	shardRec, err := RecoverFiles(shardSys, 2)
	if err != nil {
		return fmt.Errorf("trace seed %d: sharded recovery: %w", seed, err)
	}
	if err := DiffLines("sharded-live", shard.Files, "sharded-recovered", shardRec); err != nil {
		return fmt.Errorf("trace seed %d: synced state lost or ghosted across sharded crash: %w", seed, err)
	}
	if err := DiffLines("monolith-recovered", monoRec, "sharded-recovered", shardRec); err != nil {
		return fmt.Errorf("trace seed %d: recovered kernels disagree: %w", seed, err)
	}
	return nil
}

func renderOps(ops []Op) []string {
	out := make([]string, len(ops))
	for i, o := range ops {
		out[i] = fmt.Sprintf("%s %x", o.Render(), sum(o.Data))
	}
	return out
}
