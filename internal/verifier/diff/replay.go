package diff

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/verified-os/vnros/internal/core"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/sys"
)

// diffNICAddr is the machine address every differential kernel boots
// with (each on its own private switch), so self-addressed datagrams
// loop back identically everywhere.
const diffNICAddr = 0xD1F

// invalidFD is the slot sentinel for "never opened / closed": large
// enough that every kernel rejects it with EBADF, making the error path
// itself a diffed observation.
const invalidFD = fs.FD(1 << 20)

// Replay is one kernel's full observation of a trace: the per-op log,
// the final observable state (file tree + contents, fd offsets, port
// table), and the durable subset (files only — what must survive a
// crash given the trace's trailing Sync).
type Replay struct {
	Log   []string
	State []string
	Files []string
}

// kernelConfig builds the boot config for one differential kernel:
// WAL on (so Sync means the same thing on the monolith and the sharded
// kernel, and so the disk is crash-recoverable), private switch, fixed
// NIC address.
func kernelConfig(shards int) core.Config {
	return core.Config{
		Cores:    2,
		MemBytes: 256 << 20,
		Shards:   shards,
		WAL:      true,
		NICAddr:  diffNICAddr,
		Network:  netstack.NewNetwork(),
	}
}

// Run boots a kernel, replays the trace, captures the observable state,
// and runs the kernel's own self-checks (contract, replica agreement,
// structural invariants). The returned System is still live — the
// caller may "crash" it by booting a recovery kernel from its disk.
func Run(cfg core.Config, tr Trace) (*Replay, *core.System, error) {
	s, err := core.Boot(cfg)
	if err != nil {
		return nil, nil, err
	}
	initSys, err := s.Init()
	if err != nil {
		return nil, nil, err
	}
	rep := &Replay{}
	st := &replayState{
		fds:   make([]fs.FD, tr.FDSlots),
		socks: make([]sys.SockID, tr.SkSlots),
		ports: make([]sys.Port, tr.SkSlots),
	}
	for i := range st.fds {
		st.fds[i] = invalidFD
	}
	for i, op := range tr.Ops {
		if err := replayOp(s, initSys, st, rep, op); err != nil {
			return nil, nil, fmt.Errorf("trace seed %d op %d (%s): %w", tr.Seed, i, op.Render(), err)
		}
	}
	if err := captureState(s, initSys, st, tr, rep); err != nil {
		return nil, nil, fmt.Errorf("trace seed %d capture: %w", tr.Seed, err)
	}
	if err := initSys.ContractErr(); err != nil {
		return nil, nil, fmt.Errorf("trace seed %d: contract: %w", tr.Seed, err)
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return nil, nil, fmt.Errorf("trace seed %d: replica agreement: %w", tr.Seed, err)
	}
	if err := s.CheckKernelInvariants(); err != nil {
		return nil, nil, fmt.Errorf("trace seed %d: kernel invariants: %w", tr.Seed, err)
	}
	return rep, s, nil
}

// RecoverFiles "reboots" a crashed kernel from disk (WAL replay) and
// captures the durable file state.
func RecoverFiles(crashed *core.System, shards int) ([]string, error) {
	cfg := kernelConfig(shards)
	cfg.RestoreFS = true
	cfg.BootDisk = crashed.BlockDev
	s, err := core.Boot(cfg)
	if err != nil {
		return nil, fmt.Errorf("recovery boot: %w", err)
	}
	initSys, err := s.Init()
	if err != nil {
		return nil, err
	}
	files, err := walkFiles(initSys)
	if err != nil {
		return nil, err
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return nil, fmt.Errorf("recovered kernel replica agreement: %w", err)
	}
	if err := s.CheckKernelInvariants(); err != nil {
		return nil, fmt.Errorf("recovered kernel invariants: %w", err)
	}
	return files, nil
}

// replayState is the mutable slot file of one replay.
type replayState struct {
	fds   []fs.FD
	socks []sys.SockID
	ports []sys.Port // port each socket slot bound (valid while socks[i] != 0)
}

// replayOp executes one trace op against initSys, appending the
// observation to the log. Only harness errors (spawn plumbing) return a
// non-nil error; syscall errnos are observations, not failures.
func replayOp(s *core.System, initSys *sys.Sys, st *replayState, rep *Replay, op Op) error {
	logf := func(format string, args ...any) {
		rep.Log = append(rep.Log, fmt.Sprintf(format, args...))
	}
	switch op.Kind {
	case OpOpen:
		fd, e := initSys.Open(op.Path, op.Flags)
		if e == sys.EOK {
			st.fds[op.Slot] = fd
		}
		logf("open[%d] %s: fd=%d %v", op.Slot, op.Path, fd, e)
	case OpClose:
		e := initSys.Close(st.fds[op.Slot])
		st.fds[op.Slot] = invalidFD
		logf("close[%d]: %v", op.Slot, e)
	case OpRead:
		buf := make([]byte, op.N)
		n, e := initSys.Read(st.fds[op.Slot], buf)
		logf("read[%d] %d: n=%d sum=%x %v", op.Slot, op.N, n, sum(buf[:n]), e)
	case OpWrite:
		n, e := initSys.Write(st.fds[op.Slot], op.Data)
		logf("write[%d] %d: n=%d %v", op.Slot, len(op.Data), n, e)
	case OpSeek:
		pos, e := initSys.Seek(st.fds[op.Slot], op.Off, op.Whence)
		logf("seek[%d] %d,%d: pos=%d %v", op.Slot, op.Off, op.Whence, pos, e)
	case OpPread:
		buf := make([]byte, op.N)
		n, e := initSys.Pread(st.fds[op.Slot], buf, uint64(op.Off))
		logf("pread[%d] %d@%d: n=%d sum=%x %v", op.Slot, op.N, op.Off, n, sum(buf[:n]), e)
	case OpTruncate:
		e := initSys.Truncate(st.fds[op.Slot], uint64(op.Off))
		logf("truncate[%d] %d: %v", op.Slot, op.Off, e)
	case OpMkdir:
		logf("mkdir %s: %v", op.Path, initSys.Mkdir(op.Path))
	case OpUnlink:
		logf("unlink %s: %v", op.Path, initSys.Unlink(op.Path))
	case OpRename:
		logf("rename %s %s: %v", op.Path, op.Path2, initSys.Rename(op.Path, op.Path2))
	case OpSync:
		logf("sync: %v", initSys.Sync())
	case OpSpawn:
		return replaySpawn(s, initSys, rep, op)
	case OpSockBind:
		id, e := initSys.SockBind(op.Port)
		if e == sys.EOK {
			st.socks[op.Slot] = id
			st.ports[op.Slot] = op.Port
		}
		logf("sockbind[%d] %d: ok=%v %v", op.Slot, op.Port, id != 0, e)
	case OpSockPing:
		// Self-addressed datagram: if the send is accepted, the slot's
		// socket owns the target port (sequential replay, socket still
		// open), so a blocking receive must observe exactly this payload.
		id := st.socks[op.Slot]
		n, e := initSys.SockSend(id, diffNICAddr, st.ports[op.Slot], op.Data)
		logf("sockping[%d] send %d: n=%d %v", op.Slot, len(op.Data), n, e)
		if e == sys.EOK {
			pay, from, port, re := initSys.SockRecvBlocking(id)
			logf("sockping[%d] recv: n=%d sum=%x from=%x:%d %v", op.Slot, len(pay), sum(pay), from, port, re)
		}
	case OpSockClose:
		e := initSys.SockClose(st.socks[op.Slot])
		st.socks[op.Slot] = 0
		logf("sockclose[%d]: %v", op.Slot, e)
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// replaySpawn runs the child script in a spawned process (its own fd
// slots), waits for it, and reaps it — sequentially, so PIDs, exit
// codes, and all child observations are deterministic.
func replaySpawn(s *core.System, initSys *sys.Sys, rep *Replay, op Op) error {
	logf := func(format string, args ...any) {
		rep.Log = append(rep.Log, fmt.Sprintf(format, args...))
	}
	done := make(chan struct{})
	_, err := s.Run(initSys, "difftracechild", func(p *core.Process) int {
		defer close(done)
		cfds := make([]fs.FD, genFDSlots)
		for i := range cfds {
			cfds[i] = invalidFD
		}
		for _, c := range op.Child {
			switch c.Kind {
			case OpOpen:
				fd, e := p.Sys.Open(c.Path, c.Flags)
				if e == sys.EOK {
					cfds[c.Slot] = fd
				}
				logf("child open[%d] %s: fd=%d %v", c.Slot, c.Path, fd, e)
			case OpClose:
				e := p.Sys.Close(cfds[c.Slot])
				cfds[c.Slot] = invalidFD
				logf("child close[%d]: %v", c.Slot, e)
			case OpRead:
				buf := make([]byte, c.N)
				n, e := p.Sys.Read(cfds[c.Slot], buf)
				logf("child read[%d] %d: n=%d sum=%x %v", c.Slot, c.N, n, sum(buf[:n]), e)
			case OpWrite:
				n, e := p.Sys.Write(cfds[c.Slot], c.Data)
				logf("child write[%d] %d: n=%d %v", c.Slot, len(c.Data), n, e)
			case OpSeek:
				pos, e := p.Sys.Seek(cfds[c.Slot], c.Off, c.Whence)
				logf("child seek[%d] %d,%d: pos=%d %v", c.Slot, c.Off, c.Whence, pos, e)
			case OpPread:
				buf := make([]byte, c.N)
				n, e := p.Sys.Pread(cfds[c.Slot], buf, uint64(c.Off))
				logf("child pread[%d] %d@%d: n=%d sum=%x %v", c.Slot, c.N, c.Off, n, sum(buf[:n]), e)
			case OpTruncate:
				logf("child truncate[%d] %d: %v", c.Slot, c.Off, p.Sys.Truncate(cfds[c.Slot], uint64(c.Off)))
			case OpMkdir:
				logf("child mkdir %s: %v", c.Path, p.Sys.Mkdir(c.Path))
			case OpUnlink:
				logf("child unlink %s: %v", c.Path, p.Sys.Unlink(c.Path))
			case OpRename:
				logf("child rename %s %s: %v", c.Path, c.Path2, p.Sys.Rename(c.Path, c.Path2))
			case OpSync:
				logf("child sync: %v", p.Sys.Sync())
			default:
				// Generator never puts spawn/socket ops in children.
			}
		}
		return op.Code
	})
	if err != nil {
		return fmt.Errorf("spawn: %w", err)
	}
	<-done
	s.WaitAll()
	res, e := initSys.Wait()
	logf("wait: pid=%d code=%d %v", res.PID, res.ExitCode, e)
	return nil
}

// captureState renders the final observable state: every fd slot's
// cursor, the full file tree with contents, and the port table.
func captureState(s *core.System, initSys *sys.Sys, st *replayState, tr Trace, rep *Replay) error {
	// Descriptor table: probe each slot's cursor with a no-op seek.
	for i, fd := range st.fds {
		pos, e := initSys.Seek(fd, 0, fs.SeekCur)
		rep.State = append(rep.State, fmt.Sprintf("fdslot %d: pos=%d %v", i, pos, e))
	}
	// Durable file tree.
	files, err := walkFiles(initSys)
	if err != nil {
		return err
	}
	rep.Files = files
	rep.State = append(rep.State, files...)
	// Port table: a probe bind tells bound (EADDRINUSE) from free (EOK).
	seen := map[sys.Port]bool{}
	for _, port := range tr.Ports {
		if seen[port] {
			continue
		}
		seen[port] = true
		id, e := initSys.SockBind(port)
		if e == sys.EOK {
			if ce := initSys.SockClose(id); ce != sys.EOK {
				return fmt.Errorf("port probe close %d: %v", port, ce)
			}
		}
		rep.State = append(rep.State, fmt.Sprintf("port %d: probe=%v", port, e))
	}
	return nil
}

// walkFiles renders the file tree rooted at "/" — path, kind, size,
// link count, and a content checksum per regular file — in sorted
// order. Inode numbers are deliberately excluded: allocation order is
// an implementation detail the spec does not fix across kernels.
func walkFiles(initSys *sys.Sys) ([]string, error) {
	var out []string
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, e := initSys.ReadDir(dir)
		if e != sys.EOK {
			return fmt.Errorf("readdir %s: %v", dir, e)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		for _, ent := range ents {
			path := dir + "/" + ent.Name
			if dir == "/" {
				path = "/" + ent.Name
			}
			st, e := initSys.Stat(path)
			if e != sys.EOK {
				return fmt.Errorf("stat %s: %v", path, e)
			}
			if ent.Kind == fs.KindDir {
				out = append(out, fmt.Sprintf("dir  %s nlink=%d", path, st.Nlink))
				if err := walk(path); err != nil {
					return err
				}
				continue
			}
			ck, err := checksumFile(initSys, path, st.Size)
			if err != nil {
				return err
			}
			out = append(out, fmt.Sprintf("file %s size=%d nlink=%d sum=%x", path, st.Size, st.Nlink, ck))
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return nil, err
	}
	return out, nil
}

// checksumFile reads a file's contents through a probe descriptor.
func checksumFile(initSys *sys.Sys, path string, size uint64) (uint64, error) {
	fd, e := initSys.Open(path, sys.ORdOnly)
	if e != sys.EOK {
		return 0, fmt.Errorf("probe open %s: %v", path, e)
	}
	defer initSys.Close(fd)
	h := fnv.New64a()
	buf := make([]byte, 4096)
	var got uint64
	for {
		n, e := initSys.Read(fd, buf)
		if e != sys.EOK {
			return 0, fmt.Errorf("probe read %s: %v", path, e)
		}
		if n == 0 {
			break
		}
		h.Write(buf[:n])
		got += n
	}
	if got != size {
		return 0, fmt.Errorf("probe read %s: %d bytes, stat says %d", path, got, size)
	}
	return h.Sum64(), nil
}

// sum is the content checksum used in per-op observations.
func sum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// DiffLines compares two observation renderings line by line and
// reports the first divergence loudly, with context for reproduction.
func DiffLines(aName string, a []string, bName string, b []string) error {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Errorf("divergence at line %d:\n  %s: %s\n  %s: %s",
				i, aName, a[i], bName, b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Errorf("observation lengths diverge: %s has %d lines, %s has %d",
			aName, len(a), bName, len(b))
	}
	return nil
}
