package netstack

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of network VCs: FIFO
// delivery per flow, ephemeral-port uniqueness, queue-overflow drops
// (never blocking the interrupt path), close-wakes-receivers, and
// loss-model accounting.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "netstack", Name: "per-flow-fifo-delivery", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				net := NewNetwork()
				da, db := newLoopDevice(1), newLoopDevice(2)
				net.Attach(da)
				net.Attach(db)
				sa, sb := NewStack(da), NewStack(db)
				src, err := sa.Bind(10)
				if err != nil {
					return err
				}
				dst, err := sb.Bind(20)
				if err != nil {
					return err
				}
				// Stay below the receive-queue cap so nothing drops.
				const n = DefaultSocketQueue - 16
				for i := 0; i < n; i++ {
					if err := src.SendTo(2, 20, []byte{byte(i >> 8), byte(i)}); err != nil {
						return err
					}
				}
				for i := 0; i < n; i++ {
					got, err := dst.TryRecv()
					if err != nil {
						return fmt.Errorf("at %d: %w", i, err)
					}
					seq := int(got.Payload[0])<<8 | int(got.Payload[1])
					if seq != i {
						return fmt.Errorf("reordered: got %d at position %d", seq, i)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "ephemeral-ports-unique", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				st := NewStack(newLoopDevice(1))
				seen := map[uint16]bool{}
				for i := 0; i < 500; i++ {
					s, err := st.Bind(0)
					if err != nil {
						return err
					}
					if seen[s.Port()] {
						return fmt.Errorf("ephemeral port %d reused while bound", s.Port())
					}
					seen[s.Port()] = true
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "queue-overflow-drops-not-blocks", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				net := NewNetwork()
				da, db := newLoopDevice(1), newLoopDevice(2)
				net.Attach(da)
				net.Attach(db)
				sa, sb := NewStack(da), NewStack(db)
				src, err := sa.Bind(1)
				if err != nil {
					return err
				}
				dst, err := sb.Bind(2)
				if err != nil {
					return err
				}
				// Overfill the receive queue; sends must complete (the
				// input path never blocks) and the queue must cap.
				for i := 0; i < DefaultSocketQueue+100; i++ {
					if err := src.SendTo(2, 2, []byte{1}); err != nil {
						return err
					}
				}
				n := 0
				for {
					if _, err := dst.TryRecv(); err != nil {
						break
					}
					n++
				}
				if n != DefaultSocketQueue {
					return fmt.Errorf("queued %d, want cap %d", n, DefaultSocketQueue)
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "close-wakes-blocked-receivers", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				st := NewStack(newLoopDevice(1))
				s, err := st.Bind(5)
				if err != nil {
					return err
				}
				const waiters = 4
				var wg sync.WaitGroup
				results := make(chan error, waiters)
				for i := 0; i < waiters; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, err := s.Recv()
						results <- err
					}()
				}
				if err := s.Close(); err != nil {
					return err
				}
				wg.Wait()
				for i := 0; i < waiters; i++ {
					if err := <-results; !errors.Is(err, ErrNoSocket) {
						return fmt.Errorf("waiter %d got %v, want ErrNoSocket", i, err)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "loss-model-accounting", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// With dropEvery=k, exactly floor(n/k) of n frames vanish
				// and the rest arrive intact.
				k := uint64(2 + r.Intn(5))
				net := NewNetwork()
				net.SetLoss(k)
				da, db := newLoopDevice(1), newLoopDevice(2)
				net.Attach(da)
				net.Attach(db)
				sa, sb := NewStack(da), NewStack(db)
				src, err := sa.Bind(1)
				if err != nil {
					return err
				}
				dst, err := sb.Bind(2)
				if err != nil {
					return err
				}
				const n = 200
				for i := 0; i < n; i++ {
					if err := src.SendTo(2, 2, []byte{byte(i)}); err != nil {
						return err
					}
				}
				got := 0
				for {
					if _, err := dst.TryRecv(); err != nil {
						break
					}
					got++
				}
				want := n - n/int(k)
				if got != want {
					return fmt.Errorf("delivered %d of %d with 1/%d loss, want %d", got, n, k, want)
				}
				return nil
			}},
	)
}
