package netstack

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/verifier"
)

func TestFrameEncodeDecode(t *testing.T) {
	f := Frame{Dst: 5, Src: 9, Type: TypeDatagram, Payload: []byte("data")}
	got, err := DecodeFrame(EncodeFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != 5 || got.Src != 9 || got.Type != TypeDatagram || string(got.Payload) != "data" {
		t.Fatalf("got = %+v", got)
	}
	if _, err := DecodeFrame([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short frame: %v", err)
	}
}

func TestDatagramChecksum(t *testing.T) {
	g := Datagram{SrcPort: 10, DstPort: 20, Payload: []byte("hello")}
	wire := EncodeDatagram(g)
	got, err := DecodeDatagram(wire)
	if err != nil || !bytes.Equal(got.Payload, g.Payload) {
		t.Fatalf("decode = %+v, %v", got, err)
	}
	wire[len(wire)-1] ^= 0xff
	if _, err := DecodeDatagram(wire); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corruption: %v", err)
	}
	// Length mismatch detected before checksum.
	wire2 := EncodeDatagram(g)
	if _, err := DecodeDatagram(wire2[:len(wire2)-1]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncation: %v", err)
	}
}

func TestBindAndPorts(t *testing.T) {
	st := NewStack(newLoopDevice(1))
	s1, err := st.Bind(80)
	if err != nil || s1.Port() != 80 {
		t.Fatal(err)
	}
	if _, err := st.Bind(80); !errors.Is(err, ErrPortInUse) {
		t.Errorf("double bind: %v", err)
	}
	eph, err := st.Bind(0)
	if err != nil || eph.Port() < 49152 {
		t.Fatalf("ephemeral = %d, %v", eph.Port(), err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bind(80); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestEndToEndOverSwitch(t *testing.T) {
	net := NewNetwork()
	da, db := newLoopDevice(1), newLoopDevice(2)
	net.Attach(da)
	net.Attach(db)
	sa, sb := NewStack(da), NewStack(db)

	client, err := sa.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	server, err := sb.Bind(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendTo(2, 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	req, err := server.Recv()
	if err != nil || string(req.Payload) != "ping" {
		t.Fatalf("server got %+v, %v", req, err)
	}
	if req.From != 1 || req.FromPort != client.Port() {
		t.Fatalf("source info = %+v", req)
	}
	if err := server.SendTo(req.From, req.FromPort, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Recv()
	if err != nil || string(resp.Payload) != "pong" {
		t.Fatalf("client got %+v, %v", resp, err)
	}
}

func TestBroadcast(t *testing.T) {
	net := NewNetwork()
	var socks []*Socket
	for i := 1; i <= 3; i++ {
		d := newLoopDevice(uint64(i))
		net.Attach(d)
		st := NewStack(d)
		s, err := st.Bind(9)
		if err != nil {
			t.Fatal(err)
		}
		socks = append(socks, s)
	}
	if err := socks[0].SendTo(Broadcast, 9, []byte("hello all")); err != nil {
		t.Fatal(err)
	}
	// Hosts 2 and 3 receive; host 1 (sender) does not.
	for i := 1; i < 3; i++ {
		r, err := socks[i].TryRecv()
		if err != nil || string(r.Payload) != "hello all" {
			t.Fatalf("host %d: %+v, %v", i+1, r, err)
		}
	}
	if _, err := socks[0].TryRecv(); !errors.Is(err, ErrWouldBlock) {
		t.Error("sender received its own broadcast")
	}
}

func TestRecvBlocksUntilSendOrClose(t *testing.T) {
	net := NewNetwork()
	da, db := newLoopDevice(1), newLoopDevice(2)
	net.Attach(da)
	net.Attach(db)
	sa, sb := NewStack(da), NewStack(db)
	src, _ := sa.Bind(1)
	dst, _ := sb.Bind(2)

	var wg sync.WaitGroup
	wg.Add(1)
	var got Received
	var rerr error
	go func() {
		defer wg.Done()
		got, rerr = dst.Recv()
	}()
	if err := src.SendTo(2, 2, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if rerr != nil || string(got.Payload) != "wake" {
		t.Fatalf("recv = %+v, %v", got, rerr)
	}

	// Closed socket unblocks receivers with an error.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, rerr = dst.Recv()
	}()
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !errors.Is(rerr, ErrNoSocket) {
		t.Fatalf("recv after close: %v", rerr)
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	st := NewStack(newLoopDevice(1))
	s, _ := st.Bind(1)
	if err := s.SendTo(2, 2, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized: %v", err)
	}
	if err := s.SendTo(2, 2, make([]byte, MaxPayload)); err != nil {
		t.Fatalf("max-size: %v", err)
	}
}

func TestLossInjection(t *testing.T) {
	net := NewNetwork()
	net.SetLoss(2) // drop every 2nd frame
	da, db := newLoopDevice(1), newLoopDevice(2)
	net.Attach(da)
	net.Attach(db)
	sa, sb := NewStack(da), NewStack(db)
	src, _ := sa.Bind(1)
	dst, _ := sb.Bind(2)
	for i := 0; i < 10; i++ {
		if err := src.SendTo(2, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for {
		if _, err := dst.TryRecv(); err != nil {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("delivered %d/10 with 50%% loss", n)
	}
}

// TestOverRealNIC runs the stack over the machine NIC + dev driver path
// end to end.
func TestOverRealNIC(t *testing.T) {
	// Import cycle avoidance: drive machine.NIC directly via a minimal
	// adapter identical to dev.NICDriver's surface.
	ma := machine.New(machine.Config{NICAddr: 0xa})
	mb := machine.New(machine.Config{NICAddr: 0xb})
	net := NewNetwork()
	net.Attach(ma.NIC)
	net.Attach(mb.NIC)

	da := &nicAdapter{m: ma}
	db := &nicAdapter{m: mb}
	sa, sb := NewStack(da), NewStack(db)
	src, _ := sa.Bind(5)
	dst, _ := sb.Bind(6)
	if err := src.SendTo(0xb, 6, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	db.pump() // deliver pending RX interrupts
	r, err := dst.TryRecv()
	if err != nil || string(r.Payload) != "over the wire" {
		t.Fatalf("recv = %+v, %v", r, err)
	}
}

// nicAdapter pumps machine.NIC receive queues into the stack (the role
// dev.NICDriver plays in the kernel).
type nicAdapter struct {
	m *machine.Machine
	h func([]byte)
}

func (a *nicAdapter) Addr() uint64              { return a.m.NIC.Addr() }
func (a *nicAdapter) Send(f []byte) error       { return a.m.NIC.TX(f) }
func (a *nicAdapter) SetHandler(h func([]byte)) { a.h = h }

func (a *nicAdapter) pump() {
	for {
		f, ok := a.m.NIC.RX()
		if !ok {
			return
		}
		if a.h != nil {
			a.h(f)
		}
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 47})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
