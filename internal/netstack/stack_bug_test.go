package netstack

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestEchoReplyWire pins the echo wire behavior: a TypeEcho frame is
// answered with a TypeEchoReply frame carrying the identical opaque
// payload, and the reply is consumed (counted), never re-reflected or
// re-typed as a datagram.
func TestEchoReplyWire(t *testing.T) {
	d := newLoopDevice(2)
	st := NewStack(d)
	sock, err := st.Bind(9)
	if err != nil {
		t.Fatal(err)
	}
	var replies [][]byte
	d.AttachWire(func(raw []byte) { replies = append(replies, raw) })

	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01} // not datagram-encoded
	d.Deliver(EncodeFrame(Frame{Dst: 2, Src: 1, Type: TypeEcho, Payload: payload}))

	if len(replies) != 1 {
		t.Fatalf("echo produced %d frames, want 1", len(replies))
	}
	f, err := DecodeFrame(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeEchoReply {
		t.Fatalf("reply type = %#x, want TypeEchoReply %#x", f.Type, TypeEchoReply)
	}
	if f.Dst != 1 || f.Src != 2 || string(f.Payload) != string(payload) {
		t.Fatalf("reply = %+v", f)
	}
	// The opaque payload must not have been parsed as a datagram.
	if _, err := sock.TryRecv(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("echo leaked into datagram path: %v", err)
	}
	if _, _, badSums := st.Stats(); badSums != 0 {
		t.Fatalf("echo miscounted as %d checksum failures", badSums)
	}

	// A received reply is consumed, not answered again.
	replies = replies[:0]
	d.Deliver(EncodeFrame(Frame{Dst: 2, Src: 1, Type: TypeEchoReply, Payload: payload}))
	if len(replies) != 0 {
		t.Fatalf("echo reply re-reflected: %d frames", len(replies))
	}
	if n := st.StatsDetail().RxEchoReplies.Load(); n != 1 {
		t.Fatalf("RxEchoReplies = %d, want 1", n)
	}
}

// TestDropAccounting pins the satellite fix: every shed frame lands in
// a drop counter — overflow, delivered-after-close, and no-listener —
// and delivered counts only actual deliveries.
func TestDropAccounting(t *testing.T) {
	d := newLoopDevice(1)
	st := NewStack(d)
	sock, err := st.BindBudget(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	dg := func(dstPort uint16) []byte {
		g := EncodeDatagram(Datagram{SrcPort: 1, DstPort: dstPort, Payload: []byte("x")})
		return EncodeFrame(Frame{Dst: 1, Src: 9, Type: TypeDatagram, Payload: g})
	}

	// 6 frames into a budget of 4: 4 delivered, 2 shed as overflow.
	for i := 0; i < 6; i++ {
		d.Deliver(dg(7))
	}
	det := st.StatsDetail()
	if got := det.RxDelivered.Load(); got != 4 {
		t.Fatalf("RxDelivered = %d, want 4", got)
	}
	if got := det.RxDropOverflow.Load(); got != 2 {
		t.Fatalf("RxDropOverflow = %d, want 2", got)
	}

	// No listener on the port: counted as a drop, not a delivery.
	d.Deliver(dg(555))
	if got := det.RxDropNoListener.Load(); got != 1 {
		t.Fatalf("RxDropNoListener = %d, want 1", got)
	}

	// After close: the late frame is a counted drop.
	if err := sock.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the port, so a late frame is now a no-listener
	// drop; re-create the closed-socket window explicitly.
	closed := &Socket{st: st, port: 7, cap: 4}
	closed.cond = sync.NewCond(&closed.mu)
	closed.closed = true
	closed.deliver(Received{From: 9, FromPort: 1, Payload: []byte("x")})
	if got := det.RxDropClosed.Load(); got != 1 {
		t.Fatalf("RxDropClosed = %d, want 1", got)
	}

	frames, drops, _ := st.Stats()
	if frames != 4 || drops != 4 {
		t.Fatalf("Stats = frames %d drops %d, want 4/4", frames, drops)
	}
}

// TestCloseIdempotentAndPortReuse pins the close/bind satellite fix:
// double close is a well-defined no-op, the port is reusable the moment
// Close returns, and a duplicate close never tears down a successor
// socket that rebound the same port.
func TestCloseIdempotentAndPortReuse(t *testing.T) {
	st := NewStack(newLoopDevice(1))
	s1, err := st.Bind(80)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	s2, err := st.Bind(80)
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	// Duplicate close of the dead socket must not unbind s2.
	if err := s1.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := st.Bind(80); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("successor socket lost its port: %v", err)
	}
	if _, err := s2.TryRecv(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("successor socket dead: %v", err)
	}
}

// TestBindCloseStress is the -race stress for the port-reuse window:
// concurrent bind/send/recv/close on a small set of contended ports.
// Every bind failure must be a true conflict (ErrPortInUse with a live
// owner), and closes must never make a port permanently unusable.
func TestBindCloseStress(t *testing.T) {
	net := NewNetwork()
	da, db := newLoopDevice(1), newLoopDevice(2)
	net.Attach(da)
	net.Attach(db)
	sa, sb := NewStack(da), NewStack(db)

	const (
		workers = 8
		iters   = 300
		ports   = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				port := uint16(100 + (w+i)%ports)
				s, err := sb.Bind(port)
				if err != nil {
					if !errors.Is(err, ErrPortInUse) {
						t.Errorf("bind %d: %v", port, err)
						return
					}
					continue
				}
				src, err := sa.Bind(0)
				if err != nil {
					t.Errorf("client bind: %v", err)
					return
				}
				_ = src.SendTo(2, port, []byte(fmt.Sprintf("w%d-%d", w, i)))
				_, _ = s.TryRecv() // may race another worker's close cycle
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
					return
				}
				if err := s.Close(); err != nil {
					t.Errorf("double close: %v", err)
					return
				}
				if err := src.Close(); err != nil {
					t.Errorf("client close: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: every contended port must be bindable again.
	for p := uint16(100); p < 100+ports; p++ {
		s, err := sb.Bind(p)
		if err != nil {
			t.Fatalf("port %d unusable after stress: %v", p, err)
		}
		_ = s.Close()
	}
}

// TestRecvBudgetShedding pins the backpressure contract: a socket's
// budget bounds its queue, the excess is shed with accounting, and
// raising the budget admits more.
func TestRecvBudgetShedding(t *testing.T) {
	net := NewNetwork()
	da, db := newLoopDevice(1), newLoopDevice(2)
	net.Attach(da)
	net.Attach(db)
	sa, sb := NewStack(da), NewStack(db)
	src, _ := sa.Bind(1)
	dst, err := sb.BindBudget(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := src.SendTo(2, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for {
		if _, err := dst.TryRecv(); err != nil {
			break
		}
		n++
	}
	if n != 8 {
		t.Fatalf("queued %d, want budget 8", n)
	}
	if got := sb.StatsDetail().RxDropOverflow.Load(); got != 12 {
		t.Fatalf("RxDropOverflow = %d, want 12", got)
	}
	dst.SetRecvBudget(16)
	for i := 0; i < 20; i++ {
		_ = src.SendTo(2, 2, []byte{byte(i)})
	}
	n = 0
	for {
		if _, err := dst.TryRecv(); err != nil {
			break
		}
		n++
	}
	if n != 16 {
		t.Fatalf("queued %d after budget raise, want 16", n)
	}
}

// TestDoorbell pins the completion-style wakeup: the doorbell rings
// once per delivery and once on close, outside the socket lock.
func TestDoorbell(t *testing.T) {
	net := NewNetwork()
	da, db := newLoopDevice(1), newLoopDevice(2)
	net.Attach(da)
	net.Attach(db)
	sa, sb := NewStack(da), NewStack(db)
	src, _ := sa.Bind(1)
	dst, _ := sb.Bind(2)

	rings := 0
	dst.SetDoorbell(func() {
		rings++
		// Re-entering socket methods from the doorbell must not
		// deadlock (it is rung outside the lock).
		_, _ = dst.TryRecv()
	})
	for i := 0; i < 3; i++ {
		if err := src.SendTo(2, 2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if rings != 3 {
		t.Fatalf("doorbell rang %d times for 3 deliveries", rings)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if rings != 4 {
		t.Fatalf("doorbell rang %d times after close, want 4", rings)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	if rings != 4 {
		t.Fatalf("duplicate close re-rang the doorbell: %d", rings)
	}
}
