package netstack

import (
	"sync"
)

// Network is the virtual switch: it connects Ports (NIC-like endpoints)
// and forwards frames by destination address, flooding broadcasts. It
// can inject loss and corruption for the fault-injection obligations.
type Network struct {
	mu    sync.Mutex
	ports map[Addr]func(frame []byte)

	// fault injection (0 disables). dropEvery drops every Nth frame;
	// corruptEvery flips a bit in every Nth frame.
	dropEvery    uint64
	corruptEvery uint64
	counter      uint64
}

// NewNetwork returns an empty switch.
func NewNetwork() *Network {
	return &Network{ports: make(map[Addr]func([]byte))}
}

// AttachFunc connects a raw delivery function at addr. Most callers use
// Attach with a machine NIC; tests use this directly.
func (n *Network) AttachFunc(addr Addr, deliver func(frame []byte)) func(frame []byte) {
	n.mu.Lock()
	n.ports[addr] = deliver
	n.mu.Unlock()
	return func(frame []byte) { n.forward(addr, frame) }
}

// NICLike is the subset of machine.NIC the switch needs; declared here
// to avoid importing hw from the protocol layer.
type NICLike interface {
	Addr() uint64
	AttachWire(func(frame []byte))
	Deliver(frame []byte)
}

// Attach wires a NIC into the switch.
func (n *Network) Attach(nic NICLike) {
	tx := n.AttachFunc(Addr(nic.Addr()), nic.Deliver)
	nic.AttachWire(tx)
}

// SetLoss configures frame dropping: every dropEvery-th forwarded frame
// is discarded (0 disables).
func (n *Network) SetLoss(dropEvery uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dropEvery = dropEvery
}

// SetCorruption flips one bit in every corruptEvery-th frame (0
// disables).
func (n *Network) SetCorruption(corruptEvery uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.corruptEvery = corruptEvery
}

// forward routes one frame from src.
func (n *Network) forward(src Addr, frame []byte) {
	f, err := DecodeFrame(frame)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.counter++
	if n.dropEvery != 0 && n.counter%n.dropEvery == 0 {
		n.mu.Unlock()
		return
	}
	if n.corruptEvery != 0 && n.counter%n.corruptEvery == 0 && len(frame) > frameHeaderLen {
		frame[frameHeaderLen+(len(frame)-frameHeaderLen)/2] ^= 0x10
	}
	var dests []func([]byte)
	if f.Dst == Broadcast {
		for a, d := range n.ports {
			if a != src {
				dests = append(dests, d)
			}
		}
	} else if d, ok := n.ports[f.Dst]; ok {
		dests = append(dests, d)
	}
	n.mu.Unlock()
	for _, d := range dests {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		d(cp)
	}
}

// Ports returns the number of attached endpoints.
func (n *Network) Ports() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.ports)
}
