// Package netstack implements the network stack of the simulated OS —
// the §1 "some network stack for communication" component, which the
// paper notes no verified OS provides (Table 2's all-✗ row). It is a
// UDP-like datagram stack over the simulated NIC: a link-layer frame
// header, a datagram header with ports and a checksum, per-socket
// receive queues, and a virtual switch (Network) connecting machines.
//
// The wire format round-trip and end-to-end delivery properties are
// registered as VCs; the blockstore example runs its replication
// protocol over this stack.
package netstack

import (
	"errors"
	"fmt"

	"github.com/verified-os/vnros/internal/marshal"
)

// Addr is a flat link-layer address (the NIC's address).
type Addr uint64

// Broadcast is delivered to every attached NIC except the sender.
const Broadcast Addr = ^Addr(0)

// EtherType values.
const (
	TypeDatagram  uint16 = 0x0800
	TypeEcho      uint16 = 0x0806 // link-layer ping, used by self-tests
	TypeEchoReply uint16 = 0x0807 // answer to TypeEcho; carries the request payload back
)

// Header sizes (fixed by the encoders below).
const (
	frameHeaderLen = 8 + 8 + 2
	dgramHeaderLen = 2 + 2 + 4 + 4
	// MaxPayload is the largest datagram payload that fits one frame.
	MaxPayload = 1514 - frameHeaderLen - dgramHeaderLen
)

// Errors.
var (
	ErrTooBig     = errors.New("netstack: payload exceeds MTU")
	ErrBadFrame   = errors.New("netstack: malformed frame")
	ErrChecksum   = errors.New("netstack: checksum mismatch")
	ErrPortInUse  = errors.New("netstack: port in use")
	ErrNoSocket   = errors.New("netstack: socket closed or unbound")
	ErrWouldBlock = errors.New("netstack: no datagram available")
)

// Frame is the link-layer header.
type Frame struct {
	Dst, Src Addr
	Type     uint16
	Payload  []byte
}

// EncodeFrame serializes a frame for the NIC.
func EncodeFrame(f Frame) []byte {
	e := marshal.NewEncoder(nil)
	e.U64(uint64(f.Dst)).U64(uint64(f.Src)).U16(f.Type)
	out := append(e.Bytes(), f.Payload...)
	return out
}

// DecodeFrame parses a NIC frame.
func DecodeFrame(p []byte) (Frame, error) {
	if len(p) < frameHeaderLen {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(p))
	}
	d := marshal.NewDecoder(p[:frameHeaderLen])
	f := Frame{
		Dst:  Addr(d.U64()),
		Src:  Addr(d.U64()),
		Type: d.U16(),
	}
	if d.Err() != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, d.Err())
	}
	f.Payload = p[frameHeaderLen:]
	return f, nil
}

// Datagram is the transport header plus payload.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// EncodeDatagram serializes a datagram with its checksum.
func EncodeDatagram(g Datagram) []byte {
	e := marshal.NewEncoder(nil)
	e.U16(g.SrcPort).U16(g.DstPort).U32(uint32(len(g.Payload))).U32(checksum(g))
	return append(e.Bytes(), g.Payload...)
}

// DecodeDatagram parses and verifies a datagram.
func DecodeDatagram(p []byte) (Datagram, error) {
	if len(p) < dgramHeaderLen {
		return Datagram{}, fmt.Errorf("%w: datagram %d bytes", ErrBadFrame, len(p))
	}
	d := marshal.NewDecoder(p[:dgramHeaderLen])
	g := Datagram{SrcPort: d.U16(), DstPort: d.U16()}
	length := d.U32()
	sum := d.U32()
	if d.Err() != nil {
		return Datagram{}, fmt.Errorf("%w: %v", ErrBadFrame, d.Err())
	}
	if int(length) != len(p)-dgramHeaderLen {
		return Datagram{}, fmt.Errorf("%w: length %d vs %d", ErrBadFrame, length, len(p)-dgramHeaderLen)
	}
	g.Payload = p[dgramHeaderLen:]
	if checksum(g) != sum {
		return Datagram{}, ErrChecksum
	}
	return g, nil
}

// checksum covers ports, length and payload (an internet-checksum-like
// integrity check; the threat model is corruption, not adversaries).
func checksum(g Datagram) uint32 {
	var a, b uint32 = 1, 0
	mix := func(v byte) {
		a = (a + uint32(v)) % 65521
		b = (b + a) % 65521
	}
	mix(byte(g.SrcPort >> 8))
	mix(byte(g.SrcPort))
	mix(byte(g.DstPort >> 8))
	mix(byte(g.DstPort))
	mix(byte(len(g.Payload) >> 8))
	mix(byte(len(g.Payload)))
	for _, c := range g.Payload {
		mix(c)
	}
	return b<<16 | a
}
