package netstack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/obs"
)

// Device is the link the stack drives — implemented by dev.NICDriver
// (production) and by test doubles.
type Device interface {
	Addr() uint64
	Send(frame []byte) error
	SetHandler(func([]byte))
}

// Received is one delivered datagram with its source.
type Received struct {
	From     Addr
	FromPort uint16
	Payload  []byte
}

// Socket is a bound datagram endpoint.
type Socket struct {
	st     *Stack
	port   uint16
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Received
	closed bool
	// cap is the receive budget: the queue bound past which incoming
	// datagrams are shed (UDP semantics, counted in RxDropOverflow).
	cap int
	// doorbell, when set, is rung after every delivery and on close —
	// the completion-style wakeup the kernel's blocking receive parks
	// on instead of polling.
	doorbell func()
}

// Stack is one machine's network stack.
type Stack struct {
	dev      Device
	obsShard uint32

	mu      sync.Mutex
	sockets map[uint16]*Socket
	nextEph uint16

	// Receive/transmit counters. Atomic (not under mu): the interrupt
	// path and Stats readers must not contend with socket teardown.
	stats StatsDetail
}

// StatsDetail is the full receive/transmit accounting. Every frame
// that reaches the stack lands in exactly one bucket: delivered, or one
// of the drop reasons — nothing is shed silently.
type StatsDetail struct {
	RxDelivered      atomic.Uint64 // datagrams handed to a socket queue
	RxDropBadFrame   atomic.Uint64 // undecodable frame or datagram header
	RxDropBadSum     atomic.Uint64 // checksum mismatch
	RxDropNoListener atomic.Uint64 // no socket bound on the dst port
	RxDropOverflow   atomic.Uint64 // socket queue at its receive budget
	RxDropClosed     atomic.Uint64 // delivered after the socket closed
	RxEchoes         atomic.Uint64 // echo requests answered
	RxEchoReplies    atomic.Uint64 // echo replies received
	TxFrames         atomic.Uint64 // frames handed to the device
}

// DefaultSocketQueue is the default per-socket receive queue depth (the
// receive budget when Bind does not set one).
const DefaultSocketQueue = 256

// NewStack binds a stack to a device.
func NewStack(dev Device) *Stack {
	s := &Stack{dev: dev, obsShard: uint32(dev.Addr()), sockets: make(map[uint16]*Socket), nextEph: 49152}
	dev.SetHandler(s.input)
	return s
}

// Addr returns the stack's link address.
func (s *Stack) Addr() Addr { return Addr(s.dev.Addr()) }

// Bind creates a socket on the given port (0 picks an ephemeral port).
func (s *Stack) Bind(port uint16) (*Socket, error) {
	return s.BindBudget(port, 0)
}

// BindBudget creates a socket with an explicit receive budget: the
// queue depth past which incoming datagrams are shed. 0 means
// DefaultSocketQueue. The budget is the stack's backpressure contract —
// a slow receiver bounds its own memory and sheds load instead of
// stalling the interrupt path.
func (s *Stack) BindBudget(port uint16, budget int) (*Socket, error) {
	if budget <= 0 {
		budget = DefaultSocketQueue
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		for i := 0; i < 1<<14; i++ {
			cand := s.nextEph
			s.nextEph++
			if s.nextEph == 0 {
				s.nextEph = 49152
			}
			if _, used := s.sockets[cand]; !used && cand != 0 {
				port = cand
				break
			}
		}
		if port == 0 {
			return nil, fmt.Errorf("%w: no ephemeral ports", ErrPortInUse)
		}
	} else if _, used := s.sockets[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	sock := &Socket{st: s, port: port, cap: budget}
	sock.cond = sync.NewCond(&sock.mu)
	s.sockets[port] = sock
	return sock, nil
}

// BoundPorts returns the currently bound ports (diagnostics and the
// socket-table refinement obligation).
func (s *Stack) BoundPorts() []uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint16, 0, len(s.sockets))
	for p := range s.sockets {
		out = append(out, p)
	}
	return out
}

// input is the device receive path.
func (s *Stack) input(raw []byte) {
	f, err := DecodeFrame(raw)
	if err != nil {
		s.stats.RxDropBadFrame.Add(1)
		obs.NetRxDropBadFrame.Add(s.obsShard, 1)
		return
	}
	if f.Dst != s.Addr() && f.Dst != Broadcast {
		return // not ours; a real NIC filters in hardware
	}
	switch f.Type {
	case TypeEcho:
		// Answer link-layer pings with a proper echo reply: the same raw
		// payload under TypeEchoReply. The payload is opaque here — it is
		// NOT datagram-encoded, so it must never be reflected as
		// TypeDatagram (the receiver would run DecodeDatagram over bytes
		// that were never datagram-encoded).
		if f.Src != s.Addr() {
			s.stats.RxEchoes.Add(1)
			s.send(Frame{Dst: f.Src, Src: s.Addr(), Type: TypeEchoReply, Payload: f.Payload})
		}
		return
	case TypeEchoReply:
		s.stats.RxEchoReplies.Add(1)
		return
	case TypeDatagram:
	default:
		return
	}
	g, err := DecodeDatagram(f.Payload)
	if err != nil {
		if err == ErrChecksum {
			s.stats.RxDropBadSum.Add(1)
			obs.NetRxDropBadSum.Add(s.obsShard, 1)
		} else {
			s.stats.RxDropBadFrame.Add(1)
			obs.NetRxDropBadFrame.Add(s.obsShard, 1)
		}
		return
	}
	s.mu.Lock()
	sock := s.sockets[g.DstPort]
	s.mu.Unlock()
	if sock == nil {
		// No listener: shed, as UDP does — but account for it.
		s.stats.RxDropNoListener.Add(1)
		obs.NetRxDropNoListener.Add(s.obsShard, 1)
		return
	}
	payload := make([]byte, len(g.Payload))
	copy(payload, g.Payload)
	sock.deliver(Received{From: f.Src, FromPort: g.SrcPort, Payload: payload})
}

// send transmits one frame, counting it.
func (s *Stack) send(f Frame) error {
	s.stats.TxFrames.Add(1)
	obs.NetTxFrames.Add(s.obsShard, 1)
	return s.dev.Send(EncodeFrame(f))
}

// deliver queues one datagram on the socket, shedding (with accounting)
// on overflow or when the socket has closed, and rings the doorbell on
// success and on the closed-drop (a closed socket's waiters must
// re-check and observe the close).
func (k *Socket) deliver(r Received) {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		k.st.stats.RxDropClosed.Add(1)
		obs.NetRxDropClosed.Add(k.st.obsShard, 1)
		return
	}
	if len(k.q) >= k.cap {
		k.mu.Unlock()
		k.st.stats.RxDropOverflow.Add(1)
		obs.NetRxDropOverflow.Add(k.st.obsShard, 1)
		return
	}
	k.q = append(k.q, r)
	k.cond.Signal()
	db := k.doorbell
	k.mu.Unlock()
	k.st.stats.RxDelivered.Add(1)
	obs.NetRxDelivered.Add(k.st.obsShard, 1)
	if db != nil {
		db()
	}
}

// Port returns the bound port.
func (k *Socket) Port() uint16 { return k.port }

// SetDoorbell installs the delivery/close wakeup hook. The doorbell is
// rung outside the socket lock after each successful delivery and once
// when the socket closes; it must be cheap and non-blocking (the
// kernel's hook wakes parked receivers).
func (k *Socket) SetDoorbell(f func()) {
	k.mu.Lock()
	k.doorbell = f
	k.mu.Unlock()
}

// SetRecvBudget adjusts the receive budget (queue bound) of a live
// socket; n <= 0 restores the default.
func (k *Socket) SetRecvBudget(n int) {
	if n <= 0 {
		n = DefaultSocketQueue
	}
	k.mu.Lock()
	k.cap = n
	k.mu.Unlock()
}

// SendTo transmits payload to (dst, dstPort).
func (k *Socket) SendTo(dst Addr, dstPort uint16, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, len(payload))
	}
	k.mu.Lock()
	closed := k.closed
	k.mu.Unlock()
	if closed {
		return ErrNoSocket
	}
	g := EncodeDatagram(Datagram{SrcPort: k.port, DstPort: dstPort, Payload: payload})
	return k.st.send(Frame{Dst: dst, Src: k.st.Addr(), Type: TypeDatagram, Payload: g})
}

// Recv blocks until a datagram arrives or the socket closes.
func (k *Socket) Recv() (Received, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for len(k.q) == 0 && !k.closed {
		k.cond.Wait()
	}
	if len(k.q) == 0 {
		return Received{}, ErrNoSocket
	}
	r := k.q[0]
	k.q = k.q[1:]
	return r, nil
}

// TryRecv returns a datagram without blocking.
func (k *Socket) TryRecv() (Received, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return Received{}, ErrNoSocket
	}
	if len(k.q) == 0 {
		return Received{}, ErrWouldBlock
	}
	r := k.q[0]
	k.q = k.q[1:]
	return r, nil
}

// Close unbinds the socket and wakes blocked receivers. Close is
// idempotent (a second close is a no-op) and atomic with respect to the
// port table: the port is released before the socket is marked closed,
// so a concurrent Bind on the same port never observes ErrPortInUse for
// a socket that is already dead. The map entry is removed only if it
// still points at this socket — a rebind that won the port must not be
// torn down by a late duplicate close.
func (k *Socket) Close() error {
	k.st.mu.Lock()
	if k.st.sockets[k.port] == k {
		delete(k.st.sockets, k.port)
	}
	k.st.mu.Unlock()

	k.mu.Lock()
	already := k.closed
	k.closed = true
	k.cond.Broadcast()
	db := k.doorbell
	k.mu.Unlock()
	if db != nil && !already {
		db()
	}
	return nil
}

// Stats reports the aggregate receive-path counters: frames is the
// delivered datagram count, drops the sum of every drop reason, and
// badSums the checksum-failure subset of drops.
func (s *Stack) Stats() (frames, drops, badSums uint64) {
	d := &s.stats
	badSums = d.RxDropBadSum.Load()
	drops = d.RxDropBadFrame.Load() + badSums + d.RxDropNoListener.Load() +
		d.RxDropOverflow.Load() + d.RxDropClosed.Load()
	return d.RxDelivered.Load(), drops, badSums
}

// StatsDetail exposes the per-reason counters (read with .Load()).
func (s *Stack) StatsDetail() *StatsDetail { return &s.stats }
