package netstack

import (
	"fmt"
	"sync"
)

// Device is the link the stack drives — implemented by dev.NICDriver
// (production) and by test doubles.
type Device interface {
	Addr() uint64
	Send(frame []byte) error
	SetHandler(func([]byte))
}

// Received is one delivered datagram with its source.
type Received struct {
	From     Addr
	FromPort uint16
	Payload  []byte
}

// Socket is a bound datagram endpoint.
type Socket struct {
	st     *Stack
	port   uint16
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Received
	closed bool
	// cap bounds the receive queue; overflow drops (UDP semantics).
	cap int
}

// Stack is one machine's network stack.
type Stack struct {
	dev Device

	mu      sync.Mutex
	sockets map[uint16]*Socket
	nextEph uint16

	// stats
	rxFrames, rxDrops, rxBadSum uint64
}

// DefaultSocketQueue is the default per-socket receive queue depth.
const DefaultSocketQueue = 256

// NewStack binds a stack to a device.
func NewStack(dev Device) *Stack {
	s := &Stack{dev: dev, sockets: make(map[uint16]*Socket), nextEph: 49152}
	dev.SetHandler(s.input)
	return s
}

// Addr returns the stack's link address.
func (s *Stack) Addr() Addr { return Addr(s.dev.Addr()) }

// Bind creates a socket on the given port (0 picks an ephemeral port).
func (s *Stack) Bind(port uint16) (*Socket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		for i := 0; i < 1<<14; i++ {
			cand := s.nextEph
			s.nextEph++
			if s.nextEph == 0 {
				s.nextEph = 49152
			}
			if _, used := s.sockets[cand]; !used && cand != 0 {
				port = cand
				break
			}
		}
		if port == 0 {
			return nil, fmt.Errorf("%w: no ephemeral ports", ErrPortInUse)
		}
	} else if _, used := s.sockets[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	sock := &Socket{st: s, port: port, cap: DefaultSocketQueue}
	sock.cond = sync.NewCond(&sock.mu)
	s.sockets[port] = sock
	return sock, nil
}

// input is the device receive path.
func (s *Stack) input(raw []byte) {
	f, err := DecodeFrame(raw)
	if err != nil {
		s.mu.Lock()
		s.rxDrops++
		s.mu.Unlock()
		return
	}
	if f.Dst != s.Addr() && f.Dst != Broadcast {
		return // not ours; a real NIC filters in hardware
	}
	switch f.Type {
	case TypeEcho:
		// Reflect echoes (unless we sent it).
		if f.Src != s.Addr() {
			_ = s.dev.Send(EncodeFrame(Frame{Dst: f.Src, Src: s.Addr(), Type: TypeDatagram, Payload: f.Payload}))
		}
		return
	case TypeDatagram:
	default:
		return
	}
	g, err := DecodeDatagram(f.Payload)
	if err != nil {
		s.mu.Lock()
		if err == ErrChecksum {
			s.rxBadSum++
		}
		s.rxDrops++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.rxFrames++
	sock := s.sockets[g.DstPort]
	s.mu.Unlock()
	if sock == nil {
		return // no listener: dropped, as UDP does
	}
	payload := make([]byte, len(g.Payload))
	copy(payload, g.Payload)
	sock.deliver(Received{From: f.Src, FromPort: g.SrcPort, Payload: payload})
}

func (k *Socket) deliver(r Received) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed || len(k.q) >= k.cap {
		return
	}
	k.q = append(k.q, r)
	k.cond.Signal()
}

// Port returns the bound port.
func (k *Socket) Port() uint16 { return k.port }

// SendTo transmits payload to (dst, dstPort).
func (k *Socket) SendTo(dst Addr, dstPort uint16, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, len(payload))
	}
	k.mu.Lock()
	closed := k.closed
	k.mu.Unlock()
	if closed {
		return ErrNoSocket
	}
	g := EncodeDatagram(Datagram{SrcPort: k.port, DstPort: dstPort, Payload: payload})
	return k.st.dev.Send(EncodeFrame(Frame{Dst: dst, Src: k.st.Addr(), Type: TypeDatagram, Payload: g}))
}

// Recv blocks until a datagram arrives or the socket closes.
func (k *Socket) Recv() (Received, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for len(k.q) == 0 && !k.closed {
		k.cond.Wait()
	}
	if len(k.q) == 0 {
		return Received{}, ErrNoSocket
	}
	r := k.q[0]
	k.q = k.q[1:]
	return r, nil
}

// TryRecv returns a datagram without blocking.
func (k *Socket) TryRecv() (Received, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return Received{}, ErrNoSocket
	}
	if len(k.q) == 0 {
		return Received{}, ErrWouldBlock
	}
	r := k.q[0]
	k.q = k.q[1:]
	return r, nil
}

// Close unbinds the socket and wakes blocked receivers.
func (k *Socket) Close() error {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return ErrNoSocket
	}
	k.closed = true
	k.cond.Broadcast()
	k.mu.Unlock()

	k.st.mu.Lock()
	delete(k.st.sockets, k.port)
	k.st.mu.Unlock()
	return nil
}

// Stats reports receive-path counters.
func (s *Stack) Stats() (frames, drops, badSums uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rxFrames, s.rxDrops, s.rxBadSum
}
