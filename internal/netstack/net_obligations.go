package netstack

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the network-stack verification
// conditions: header round trips, checksum detection, end-to-end
// delivery with no cross-talk, and loss tolerance of the drop path.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	registerEvenMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "netstack", Name: "frame-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 2000; i++ {
					f := Frame{
						Dst:  Addr(r.Uint64()),
						Src:  Addr(r.Uint64()),
						Type: uint16(r.Uint32()),
					}
					f.Payload = make([]byte, r.Intn(256))
					r.Read(f.Payload)
					got, err := DecodeFrame(EncodeFrame(f))
					if err != nil {
						return err
					}
					if got.Dst != f.Dst || got.Src != f.Src || got.Type != f.Type ||
						!bytes.Equal(got.Payload, f.Payload) {
						return fmt.Errorf("frame round trip mismatch at %d", i)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "datagram-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 2000; i++ {
					gm := Datagram{SrcPort: uint16(r.Uint32()), DstPort: uint16(r.Uint32())}
					gm.Payload = make([]byte, r.Intn(512))
					r.Read(gm.Payload)
					got, err := DecodeDatagram(EncodeDatagram(gm))
					if err != nil {
						return err
					}
					if got.SrcPort != gm.SrcPort || got.DstPort != gm.DstPort ||
						!bytes.Equal(got.Payload, gm.Payload) {
						return fmt.Errorf("datagram round trip mismatch at %d", i)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "checksum-detects-corruption", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				for i := 0; i < 500; i++ {
					gm := Datagram{SrcPort: 1, DstPort: 2, Payload: make([]byte, 16+r.Intn(64))}
					r.Read(gm.Payload)
					wire := EncodeDatagram(gm)
					// Flip a payload bit (header length corruption is
					// caught by the length check instead).
					wire[dgramHeaderLen+r.Intn(len(wire)-dgramHeaderLen)] ^= 1 << uint(r.Intn(8))
					if _, err := DecodeDatagram(wire); err == nil {
						return fmt.Errorf("payload corruption undetected at %d", i)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "end-to-end-no-crosstalk", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// 3 hosts, 2 sockets each; random sends; every datagram
				// arrives exactly at its addressed socket.
				net := NewNetwork()
				var stacks []*Stack
				socks := make(map[[2]int]*Socket)
				for h := 0; h < 3; h++ {
					d := newLoopDevice(uint64(h + 1))
					net.Attach(d)
					st := NewStack(d)
					stacks = append(stacks, st)
					for p := 0; p < 2; p++ {
						s, err := st.Bind(uint16(1000 + p))
						if err != nil {
							return err
						}
						socks[[2]int{h, p}] = s
					}
				}
				type expect struct{ host, port, seq int }
				sent := map[expect]bool{}
				for i := 0; i < 200; i++ {
					fromH, toH := r.Intn(3), r.Intn(3)
					toP := r.Intn(2)
					payload := []byte(fmt.Sprintf("msg-%d", i))
					if err := socks[[2]int{fromH, 0}].SendTo(Addr(toH+1), uint16(1000+toP), payload); err != nil {
						return err
					}
					sent[expect{toH, toP, i}] = true
				}
				// Drain every socket; check each message landed where
				// addressed.
				got := 0
				for h := 0; h < 3; h++ {
					for p := 0; p < 2; p++ {
						for {
							rcv, err := socks[[2]int{h, p}].TryRecv()
							if errors.Is(err, ErrWouldBlock) {
								break
							}
							if err != nil {
								return err
							}
							var seq int
							if _, err := fmt.Sscanf(string(rcv.Payload), "msg-%d", &seq); err != nil {
								return fmt.Errorf("garbled payload %q", rcv.Payload)
							}
							if !sent[expect{h, p, seq}] {
								return fmt.Errorf("msg %d crossed to host %d port %d", seq, h, p)
							}
							delete(sent, expect{h, p, seq})
							got++
						}
					}
				}
				if got != 200 || len(sent) != 0 {
					return fmt.Errorf("delivered %d/200, %d missing", got, len(sent))
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "corrupted-frames-dropped-not-delivered", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				net := NewNetwork()
				net.SetCorruption(3) // every 3rd frame corrupted
				da := newLoopDevice(1)
				db := newLoopDevice(2)
				net.Attach(da)
				net.Attach(db)
				sa := NewStack(da)
				sb := NewStack(db)
				src, err := sa.Bind(100)
				if err != nil {
					return err
				}
				dst, err := sb.Bind(200)
				if err != nil {
					return err
				}
				for i := 0; i < 90; i++ {
					if err := src.SendTo(2, 200, []byte(fmt.Sprintf("payload-%04d", i))); err != nil {
						return err
					}
				}
				delivered := 0
				for {
					rcv, err := dst.TryRecv()
					if errors.Is(err, ErrWouldBlock) {
						break
					}
					if err != nil {
						return err
					}
					// Every delivered payload must be intact.
					var seq int
					if _, err := fmt.Sscanf(string(rcv.Payload), "payload-%04d", &seq); err != nil {
						return fmt.Errorf("corrupt payload delivered: %q", rcv.Payload)
					}
					delivered++
				}
				_, _, badSums := sb.Stats()
				if badSums == 0 {
					return fmt.Errorf("no checksum failures recorded despite corruption")
				}
				if delivered+int(badSums) != 90 {
					return fmt.Errorf("delivered %d + bad %d != 90", delivered, badSums)
				}
				return nil
			}},
	)
}

// loopDevice is an in-process Device for obligations and tests.
type loopDevice struct {
	addr uint64
	mu   sync.Mutex
	h    func([]byte)
	tx   func([]byte)
}

func newLoopDevice(addr uint64) *loopDevice { return &loopDevice{addr: addr} }

func (d *loopDevice) Addr() uint64 { return d.addr }

func (d *loopDevice) Send(frame []byte) error {
	d.mu.Lock()
	tx := d.tx
	d.mu.Unlock()
	if tx != nil {
		tx(frame)
	}
	return nil
}

func (d *loopDevice) SetHandler(h func([]byte)) {
	d.mu.Lock()
	d.h = h
	d.mu.Unlock()
}

// AttachWire implements NICLike.
func (d *loopDevice) AttachWire(tx func([]byte)) {
	d.mu.Lock()
	d.tx = tx
	d.mu.Unlock()
}

// Deliver implements NICLike.
func (d *loopDevice) Deliver(frame []byte) {
	d.mu.Lock()
	h := d.h
	d.mu.Unlock()
	if h != nil {
		h(frame)
	}
}
