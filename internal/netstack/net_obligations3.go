package netstack

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations: link-layer echo reflection, addressing
// (frames for other hosts are ignored even when physically delivered),
// and rebinding semantics.
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "netstack", Name: "echo-frames-reflected", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				net := NewNetwork()
				da, db := newLoopDevice(1), newLoopDevice(2)
				net.Attach(da)
				net.Attach(db)
				sa, sb := NewStack(da), NewStack(db)
				_ = sb
				s, err := sa.Bind(9)
				if err != nil {
					return err
				}
				// Hand-craft a link-layer echo to host 2; its stack
				// reflects it back as a datagram to our port.
				payload := EncodeDatagram(Datagram{SrcPort: 9, DstPort: 9, Payload: []byte("echo me")})
				frame := EncodeFrame(Frame{Dst: 2, Src: 1, Type: TypeEcho, Payload: payload})
				if err := da.Send(frame); err != nil {
					return err
				}
				got, err := s.TryRecv()
				if err != nil {
					return fmt.Errorf("echo not reflected: %w", err)
				}
				if string(got.Payload) != "echo me" || got.From != 2 {
					return fmt.Errorf("echo payload = %q from %d", got.Payload, got.From)
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "foreign-frames-ignored", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// A frame addressed to host 3, delivered to host 2's NIC
				// (e.g. by a hub), must not reach host 2's sockets.
				d := newLoopDevice(2)
				st := NewStack(d)
				s, err := st.Bind(7)
				if err != nil {
					return err
				}
				payload := EncodeDatagram(Datagram{SrcPort: 7, DstPort: 7, Payload: []byte("not yours")})
				d.Deliver(EncodeFrame(Frame{Dst: 3, Src: 1, Type: TypeDatagram, Payload: payload}))
				if _, err := s.TryRecv(); err == nil {
					return fmt.Errorf("foreign frame delivered to socket")
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "rebind-after-close", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				st := NewStack(newLoopDevice(1))
				for i := 0; i < 200; i++ {
					port := uint16(1 + r.Intn(1000))
					s, err := st.Bind(port)
					if err != nil {
						return fmt.Errorf("bind %d (iter %d): %v", port, i, err)
					}
					if _, err := st.Bind(port); err == nil {
						return fmt.Errorf("double bind of %d accepted", port)
					}
					if err := s.Close(); err != nil {
						return err
					}
				}
				return nil
			}},
	)
}
