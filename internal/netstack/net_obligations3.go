package netstack

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations: link-layer echo reflection, addressing
// (frames for other hosts are ignored even when physically delivered),
// and rebinding semantics.
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "netstack", Name: "echo-frames-reflected", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				net := NewNetwork()
				da, db := newLoopDevice(1), newLoopDevice(2)
				net.Attach(da)
				net.Attach(db)
				sa, sb := NewStack(da), NewStack(db)
				s, err := sa.Bind(9)
				if err != nil {
					return err
				}
				// A link-layer echo carries an opaque payload — here raw
				// bytes that are deliberately NOT datagram-encoded. The
				// peer must answer with TypeEchoReply (never re-typed as
				// TypeDatagram: the receiver would then run DecodeDatagram
				// over bytes that were never datagram-encoded).
				payload := make([]byte, 8+r.Intn(32))
				r.Read(payload)
				frame := EncodeFrame(Frame{Dst: 2, Src: 1, Type: TypeEcho, Payload: payload})
				if err := da.Send(frame); err != nil {
					return err
				}
				if n := sb.StatsDetail().RxEchoes.Load(); n != 1 {
					return fmt.Errorf("peer answered %d echoes, want 1", n)
				}
				if n := sa.StatsDetail().RxEchoReplies.Load(); n != 1 {
					return fmt.Errorf("got %d echo replies, want 1", n)
				}
				// The reply must not leak into datagram delivery, and the
				// opaque payload must not register as a checksum failure.
				if _, err := s.TryRecv(); err == nil {
					return fmt.Errorf("echo reply delivered to a datagram socket")
				}
				if _, _, badSums := sa.Stats(); badSums != 0 {
					return fmt.Errorf("echo reply miscounted as %d checksum failures", badSums)
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "foreign-frames-ignored", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// A frame addressed to host 3, delivered to host 2's NIC
				// (e.g. by a hub), must not reach host 2's sockets.
				d := newLoopDevice(2)
				st := NewStack(d)
				s, err := st.Bind(7)
				if err != nil {
					return err
				}
				payload := EncodeDatagram(Datagram{SrcPort: 7, DstPort: 7, Payload: []byte("not yours")})
				d.Deliver(EncodeFrame(Frame{Dst: 3, Src: 1, Type: TypeDatagram, Payload: payload}))
				if _, err := s.TryRecv(); err == nil {
					return fmt.Errorf("foreign frame delivered to socket")
				}
				return nil
			}},
		verifier.Obligation{Module: "netstack", Name: "rebind-after-close", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				st := NewStack(newLoopDevice(1))
				for i := 0; i < 200; i++ {
					port := uint16(1 + r.Intn(1000))
					s, err := st.Bind(port)
					if err != nil {
						return fmt.Errorf("bind %d (iter %d): %v", port, i, err)
					}
					if _, err := st.Bind(port); err == nil {
						return fmt.Errorf("double bind of %d accepted", port)
					}
					if err := s.Close(); err != nil {
						return err
					}
				}
				return nil
			}},
	)
}
