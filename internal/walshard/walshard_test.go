package walshard

import (
	"fmt"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/verifier"
	"github.com/verified-os/vnros/internal/wal"
)

const (
	testBlockSize = 512
	testRegion    = 160
	testJournal   = 48
)

func newTestGroup(t *testing.T, nshards int) (*Group, *fs.MemBlockStore) {
	t.Helper()
	disk := fs.NewMemBlockStore(testBlockSize, uint64(stampSlots+nshards*testRegion))
	g, err := New(disk, nshards, testJournal)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Format(); err != nil {
		t.Fatal(err)
	}
	return g, disk
}

// wireShards returns one journal-wired FS per shard.
func wireShards(g *Group) []*fs.FS {
	fss := make([]*fs.FS, g.NumShards())
	for i := range fss {
		fss[i] = fs.New()
		fss[i].SetJournal(g.Journal(i))
	}
	return fss
}

// broadcast applies a namespace mutation to every shard, like the
// sharded kernel's nsBroadcast.
func broadcast(t *testing.T, fss []*fs.FS, m fs.Mutation) {
	t.Helper()
	for i, f := range fss {
		if err := f.Apply(m); err != nil {
			t.Fatalf("broadcast %s %q on shard %d: %v", m.Kind, m.Path, i, err)
		}
	}
}

func reopen(t *testing.T, disk *fs.MemBlockStore, nshards int) (*Group, []*fs.FS) {
	t.Helper()
	g, err := New(disk, nshards, testJournal)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*fs.FS, nshards)
	for i := range recs {
		recs[i], err = g.RecoverShard(i)
		if err != nil {
			t.Fatalf("recover shard %d: %v", i, err)
		}
	}
	return g, recs
}

// TestPrepareWithoutCommitRollsBack is the headline recovery edge case:
// a prepare chunk lands on shard 0 (round stamped, never committed),
// and recovery must roll the round back on ALL shards — including the
// shard whose prepare never reached its journal.
func TestPrepareWithoutCommitRollsBack(t *testing.T) {
	g, disk := newTestGroup(t, 2)
	fss := wireShards(g)

	// Batch 1: committed on both shards.
	broadcast(t, fss, fs.Mutation{Kind: fs.MutCreate, Path: "/a"}) // ino 2, owner 0
	broadcast(t, fss, fs.Mutation{Kind: fs.MutCreate, Path: "/b"}) // ino 3, owner 1
	if err := fss[0].Apply(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Data: []byte("committed")}); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	golden := []*fs.FS{fs.New(), fs.New()}
	for i := range golden {
		for _, m := range []fs.Mutation{{Kind: fs.MutCreate, Path: "/a"}, {Kind: fs.MutCreate, Path: "/b"}} {
			if err := golden[i].Apply(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := golden[0].Apply(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Data: []byte("committed")}); err != nil {
		t.Fatal(err)
	}

	// Batch 2: recorded on both shards, but only shard 0's prepare is
	// flushed — the coordinator "crashed" before shard 1's prepare and
	// before the commit stamp.
	if err := fss[0].Apply(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 9, Data: []byte(" torn")}); err != nil {
		t.Fatal(err)
	}
	if err := fss[1].Apply(fs.Mutation{Kind: fs.MutWrite, Ino: 3, Data: []byte("torn too")}); err != nil {
		t.Fatal(err)
	}
	if err := g.Journal(0).FlushRound(g.CommittedRound() + 1); err != nil {
		t.Fatal(err)
	}

	// Reboot twice: rollback must happen and must be idempotent.
	for pass := 0; pass < 2; pass++ {
		g2, recs := reopen(t, disk, 2)
		for i := range recs {
			if !fs.Equal(recs[i], golden[i]) {
				t.Fatalf("pass %d: shard %d did not roll back to the committed batch", pass, i)
			}
		}
		if got := g2.CommittedRound(); got != 1 {
			t.Fatalf("pass %d: committed round %d, want 1", pass, got)
		}
	}

	// The journal must keep working after a rollback: commit a new
	// round on the reopened group and recover it.
	g3, recs := reopen(t, disk, 2)
	for i := range recs {
		recs[i].SetJournal(g3.Journal(i))
	}
	if err := recs[0].Apply(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 9, Data: []byte(" again")}); err != nil {
		t.Fatal(err)
	}
	if err := g3.Commit(); err != nil {
		t.Fatal(err)
	}
	_, recs2 := reopen(t, disk, 2)
	want, _ := recs[0].Contents(2)
	got, ok := recs2[0].Contents(2)
	if !ok || string(got) != string(want) {
		t.Fatalf("post-rollback commit lost: got %q want %q", got, want)
	}
}

// TestEmptyShardParticipates covers a cross-shard batch where one
// shard has nothing pending: it must not block the round, and its
// (empty) journal must recover cleanly against a stamp that is far
// ahead of anything it has logged.
func TestEmptyShardParticipates(t *testing.T) {
	g, disk := newTestGroup(t, 3)
	fss := wireShards(g)

	broadcast(t, fss, fs.Mutation{Kind: fs.MutCreate, Path: "/only"}) // ino 2, owner 2
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	// Several rounds touching only shard 2 (ino 2's owner): shards 0
	// and 1 never flush again.
	for r := 0; r < 5; r++ {
		m := fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: uint64(r * 4), Data: []byte("data")}
		if err := fss[2].Apply(m); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.CommittedRound(); got != 6 {
		t.Fatalf("committed round %d, want 6", got)
	}

	_, recs := reopen(t, disk, 3)
	for i := range recs {
		if !fs.NamespaceEqual(recs[i], fss[i]) {
			t.Fatalf("shard %d namespace lost", i)
		}
	}
	want, _ := fss[2].Contents(2)
	got, ok := recs[2].Contents(2)
	if !ok || string(got) != string(want) {
		t.Fatalf("owner shard contents: got %q want %q", got, want)
	}
	for _, i := range []int{0, 1} {
		if n := len(recs[i].InodesWithData()); n != 0 {
			t.Fatalf("empty-journal shard %d recovered %d data inodes", i, n)
		}
	}
}

// TestCheckpointRacesGroupCommit hammers concurrent commits, explicit
// checkpoints, and the background worker under -race: per-shard writer
// goroutines append to their own files while checkpoints compact the
// committed prefix mid-stream. Afterwards everything committed must
// survive recovery.
func TestCheckpointRacesGroupCommit(t *testing.T) {
	const nshards = 2
	mem := fs.NewMemBlockStore(testBlockSize, uint64(stampSlots+nshards*testRegion))
	// FaultStore with injection disabled = a mutex-guarded store, so
	// concurrent shard flushes exercise the device path safely.
	disk := wal.NewFaultStore(mem, wal.FaultCrash, -1)
	g, err := New(disk, nshards, testJournal)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Format(); err != nil {
		t.Fatal(err)
	}
	fss := wireShards(g)
	// Namespace setup up front; the racing phase uses content writes
	// only, so each shard's FS has a single mutator goroutine.
	for i := 0; i < 4; i++ {
		broadcast(t, fss, fs.Mutation{Kind: fs.MutCreate, Path: fmt.Sprintf("/f%d", i)}) // inos 2..5
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, nshards+1)
	for s := 0; s < nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				for ino := fs.Ino(2); ino <= 5; ino++ {
					if int(ino)%nshards != s {
						continue
					}
					m := fs.Mutation{Kind: fs.MutWrite, Ino: ino, Off: uint64(r % 7 * 16), Data: []byte("racing-roundxx")}
					if err := fss[s].Apply(m); err != nil {
						errCh <- err
						return
					}
				}
				if err := g.Commit(); err != nil {
					errCh <- err
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 30; r++ {
			if err := g.CheckpointShard(r % nshards); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	g.Drain()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	g.Drain()

	_, recs := reopen(t, mem, nshards)
	for i := range recs {
		if !fs.Equal(recs[i], fss[i]) {
			t.Fatalf("shard %d: recovered state diverges from live state after racing checkpoints", i)
		}
	}
}

// TestBackgroundCheckpointCompacts drives enough committed rounds to
// cross the half-full high-water mark and checks the worker actually
// compacts the log — and that compaction loses nothing.
func TestBackgroundCheckpointCompacts(t *testing.T) {
	g, disk := newTestGroup(t, 2)
	fss := wireShards(g)
	broadcast(t, fss, fs.Mutation{Kind: fs.MutCreate, Path: "/big"}) // ino 2, owner 0
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 3*testBlockSize)
	for i := range blob {
		blob[i] = byte(i)
	}
	for r := 0; r < 12; r++ {
		if err := fss[0].Apply(fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: uint64(r * len(blob)), Data: blob}); err != nil {
			t.Fatal(err)
		}
		if err := g.Commit(); err != nil {
			t.Fatal(err)
		}
		g.Drain()
	}
	j := g.Journal(0)
	if j.TailBlocks()*2 >= j.RecordBlocks() {
		t.Fatalf("background worker never compacted: tail %d of %d", j.TailBlocks(), j.RecordBlocks())
	}
	_, recs := reopen(t, disk, 2)
	for i := range recs {
		if !fs.Equal(recs[i], fss[i]) {
			t.Fatalf("shard %d state lost across background compaction", i)
		}
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 71, Module: "walshard"})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
	if len(rep.Results) < 2 {
		t.Fatalf("only %d walshard VCs ran", len(rep.Results))
	}
}
