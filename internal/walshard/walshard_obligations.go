package walshard

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/verifier"
	"github.com/verified-os/vnros/internal/wal"
)

// RegisterObligations registers the cross-shard durability VCs — the
// paper's §4.3 composition step: each shard journal discharges the
// single-log obligations of internal/wal unchanged, so this package
// owes exactly the cross-shard ordering obligations.
//
//   - cross-shard-commit-atomic: for a scripted multi-shard workload, a
//     crash is injected at EVERY block write (dropped/torn/short) and
//     recovery must land all shards on ONE common batch boundary — a
//     torn cross-shard commit rolls back atomically on every shard,
//     and no acknowledged batch is lost. Swept at 1 (monolith-
//     degenerate), 2, and 3 shards.
//   - shard-wal-refines-single-wal: the sharded group recovering any
//     committed batch prefix is observably equal to a single
//     internal/wal journal fed the same mutation sequence — same
//     namespace on every shard, same file contents on each owner.
func RegisterObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "walshard", Name: "cross-shard-commit-atomic", Kind: verifier.KindRefinement,
			Budget: func(r *rand.Rand, budget int) error {
				// The sweep is deterministic, so extra budget widens the
				// shard-count frontier instead of repeating it.
				shardCounts := []int{1, 2, 3}
				for n := 4; n < 4+budget-1; n++ {
					shardCounts = append(shardCounts, n)
				}
				for _, nshards := range shardCounts {
					for _, mode := range []wal.FaultMode{wal.FaultCrash, wal.FaultTorn, wal.FaultShort} {
						if err := sweepGroupCrashPoints(nshards, mode); err != nil {
							return err
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "walshard", Name: "shard-wal-refines-single-wal", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return shardRefinesSingle() }},
	)
}

// Group-sweep geometry: per-shard regions sized so each hosts a full
// wal journal (snapshot slots + header + record area) and the scripted
// workload can overflow a record area into the checkpoint escalation.
const (
	gSweepBlockSize = 512
	gSweepRegion    = 160
	gSweepJournal   = 48
)

// Step kinds of the scripted cross-shard workload.
const (
	gMut    = iota // one mutation (namespace-broadcast or owner-content)
	gCommit        // cross-shard group commit (the batch boundary)
	gCkpt          // explicit checkpoint of one shard
)

// groupStep is one step: a mutation (ns == true broadcasts it to every
// shard's filesystem, otherwise it applies to Ino's owner shard only —
// exactly the sharded kernel's namespace/content split), a commit, or
// a checkpoint of shard `shard` (taken modulo the shard count).
type groupStep struct {
	kind  int
	m     fs.Mutation
	ns    bool
	shard int
}

// groupScript is the crash-sweep workload. Inode numbers are
// deterministic (root is 1): /a=2, /d=3, /d/c=4, /b=5. Every batch
// touches more than one shard at 2+ shards (the namespace broadcasts
// participate everywhere; content writes land on ino%nshards), so
// crash points land inside multi-shard prepare fans, the commit stamp
// write, checkpoint snapshots, and the uncommitted tail.
func groupScript() []groupStep {
	return []groupStep{
		// batch 1
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutCreate, Path: "/a"}},
		{kind: gMut, m: fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 0, Data: []byte("hello group")}},
		{kind: gCommit},
		// batch 2
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutMkdir, Path: "/d"}},
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutCreate, Path: "/d/c"}},
		{kind: gMut, m: fs.Mutation{Kind: fs.MutWrite, Ino: 4, Off: 0, Data: []byte("nested file payload")}},
		{kind: gCommit},
		{kind: gCkpt, shard: 0},
		// batch 3
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutCreate, Path: "/b"}},
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutLink, Path: "/b", Path2: "/d/blink"}},
		{kind: gMut, m: fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 6, Data: []byte("rewritten tail")}},
		{kind: gMut, m: fs.Mutation{Kind: fs.MutWrite, Ino: 5, Off: 0, Data: []byte("fifth file")}},
		{kind: gCommit},
		{kind: gCkpt, shard: 1},
		// batch 4
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutUnlink, Path: "/d/blink"}},
		{kind: gMut, ns: true, m: fs.Mutation{Kind: fs.MutRename, Path: "/d/c", Path2: "/d/e"}},
		{kind: gMut, m: fs.Mutation{Kind: fs.MutTruncate, Ino: 2, Size: 5}},
		{kind: gMut, m: fs.Mutation{Kind: fs.MutWrite, Ino: 4, Off: 19, Data: []byte(" appended")}},
		{kind: gCommit},
		// uncommitted tail: must never replay
		{kind: gMut, m: fs.Mutation{Kind: fs.MutWrite, Ino: 5, Off: 0, Data: []byte("never committed")}},
	}
}

// applyStep applies one mutation step to the per-shard filesystems:
// namespace mutations broadcast (in shard order, like nsBroadcast),
// content mutations go to the owner shard only.
func applyStep(fss []*fs.FS, s groupStep) error {
	if s.ns {
		for i, f := range fss {
			if err := f.Apply(s.m); err != nil {
				return fmt.Errorf("ns apply %s %q on shard %d: %w", s.m.Kind, s.m.Path, i, err)
			}
		}
		return nil
	}
	owner := int(s.m.Ino) % len(fss)
	if err := fss[owner].Apply(s.m); err != nil {
		return fmt.Errorf("content apply %s ino %d on shard %d: %w", s.m.Kind, s.m.Ino, owner, err)
	}
	return nil
}

// goldenShardStates returns golden[b][i] = shard i's filesystem after
// the first b committed batches, for b in [0, batches]. Each prefix is
// built independently. Steps after the last commit (the uncommitted
// tail) are excluded from every golden.
func goldenShardStates(nshards int, steps []groupStep) ([][]*fs.FS, error) {
	batches := 0
	for _, s := range steps {
		if s.kind == gCommit {
			batches++
		}
	}
	out := make([][]*fs.FS, 0, batches+1)
	for b := 0; b <= batches; b++ {
		fss := make([]*fs.FS, nshards)
		for i := range fss {
			fss[i] = fs.New()
		}
		done := 0
		for _, s := range steps {
			if done == b {
				break
			}
			switch s.kind {
			case gCommit:
				done++
			case gMut:
				if err := applyStep(fss, s); err != nil {
					return nil, fmt.Errorf("golden prefix %d: %w", b, err)
				}
			}
		}
		out = append(out, fss)
	}
	return out, nil
}

// runGroupWorkload drives the script against a group on d, returning
// how many batches were acknowledged (committed) when the run ended —
// by completing, or at the first disk error (the crash). Background
// checkpointing is disabled so the block-write sequence is identical
// between the probe run and every swept run.
func runGroupWorkload(d fs.BlockStore, nshards int, steps []groupStep) (acked int, _ error) {
	g, err := New(d, nshards, gSweepJournal)
	if err != nil {
		return 0, err
	}
	g.SetAutoCheckpoint(false)
	if err := g.Format(); err != nil {
		return 0, nil // crashed formatting: nothing acked
	}
	fss := make([]*fs.FS, nshards)
	for i := range fss {
		fss[i] = fs.New()
		fss[i].SetJournal(g.Journal(i))
	}
	for _, s := range steps {
		switch s.kind {
		case gCommit:
			if err := g.Commit(); err != nil {
				return acked, nil // crash: the batch was never acknowledged
			}
			acked++
		case gCkpt:
			if err := g.CheckpointShard(s.shard % nshards); err != nil {
				return acked, nil
			}
		default:
			if err := applyStep(fss, s); err != nil {
				return acked, err
			}
		}
	}
	return acked, nil
}

// sweepGroupCrashPoints is the cross-shard crash sweep: one run per
// possible crash point under the given fault mode, recovery of every
// shard on the frozen disk, and the atomic-cut check — there must be a
// SINGLE batch count B, no smaller than the acknowledged count, such
// that every shard equals its golden state at B. A shard pair matching
// different batch counts is exactly a torn cross-shard commit.
func sweepGroupCrashPoints(nshards int, mode wal.FaultMode) error {
	steps := groupScript()
	golden, err := goldenShardStates(nshards, steps)
	if err != nil {
		return err
	}
	blocks := uint64(stampSlots + nshards*gSweepRegion)

	probe := wal.NewFaultStore(fs.NewMemBlockStore(gSweepBlockSize, blocks), mode, -1)
	if _, err := runGroupWorkload(probe, nshards, steps); err != nil {
		return fmt.Errorf("probe run (%d shards): %v", nshards, err)
	}
	totalWrites := probe.Writes()
	if totalWrites < 8 {
		return fmt.Errorf("probe run made only %d writes; script too small to sweep", totalWrites)
	}

	for k := 0; k < totalWrites; k++ {
		disk := fs.NewMemBlockStore(gSweepBlockSize, blocks)
		faulty := wal.NewFaultStore(disk, mode, k)
		acked, err := runGroupWorkload(faulty, nshards, steps)
		if err != nil {
			return fmt.Errorf("%d shards, mode %s, crash@%d: %v", nshards, mode, k, err)
		}
		// Reboot on the raw device (writable again, frozen at the crash).
		g, err := New(disk, nshards, gSweepJournal)
		if err != nil {
			return err
		}
		recs := make([]*fs.FS, nshards)
		for i := range recs {
			if recs[i], err = g.RecoverShard(i); err != nil {
				return fmt.Errorf("%d shards, mode %s, crash@%d: recover shard %d: %v", nshards, mode, k, i, err)
			}
			if err := recs[i].CheckInvariant(); err != nil {
				return fmt.Errorf("%d shards, mode %s, crash@%d: shard %d invariant: %v", nshards, mode, k, i, err)
			}
		}
		// The atomic cut: one common B for ALL shards.
		matched := -1
		for b := acked; b < len(golden); b++ {
			all := true
			for i := range recs {
				if !fs.Equal(recs[i], golden[b][i]) {
					all = false
					break
				}
			}
			if all {
				matched = b
				break
			}
		}
		if matched < 0 {
			// Diagnose: per-shard best match, to tell "torn cut" from
			// "lost acked batch".
			per := make([]int, nshards)
			for i := range recs {
				per[i] = -1
				for b := 0; b < len(golden); b++ {
					if fs.Equal(recs[i], golden[b][i]) {
						per[i] = b
						break
					}
				}
			}
			return fmt.Errorf("%d shards, mode %s, crash@%d: no common batch cut in [%d, %d] (per-shard matches %v) — torn cross-shard commit or lost acknowledged batch",
				nshards, mode, k, acked, len(golden)-1, per)
		}
		// Namespace replication must also survive recovery.
		for i := 1; i < nshards; i++ {
			if !fs.NamespaceEqual(recs[i], recs[0]) {
				return fmt.Errorf("%d shards, mode %s, crash@%d: namespace diverges between shard 0 and %d", nshards, mode, k, i)
			}
		}
	}
	return nil
}

// shardRefinesSingle checks the refinement against the single-journal
// spec: for every committed batch prefix, the sharded group's recovered
// state is observably the single wal.Journal's recovered state — equal
// namespaces on every shard, and each file's contents live on exactly
// its owner shard, equal to the single journal's contents.
func shardRefinesSingle() error {
	const nshards = 2
	steps := groupScript()
	batches := 0
	for _, s := range steps {
		if s.kind == gCommit {
			batches++
		}
	}
	for b := 0; b <= batches; b++ {
		// Truncate the script after the b-th commit.
		var prefix []groupStep
		done := 0
		for _, s := range steps {
			if done == b {
				break
			}
			prefix = append(prefix, s)
			if s.kind == gCommit {
				done++
			}
		}

		// Sharded run + recovery.
		blocks := uint64(stampSlots + nshards*gSweepRegion)
		diskS := fs.NewMemBlockStore(gSweepBlockSize, blocks)
		if _, err := runGroupWorkload(diskS, nshards, prefix); err != nil {
			return fmt.Errorf("prefix %d: sharded run: %v", b, err)
		}
		g, err := New(diskS, nshards, gSweepJournal)
		if err != nil {
			return err
		}
		recs := make([]*fs.FS, nshards)
		for i := range recs {
			if recs[i], err = g.RecoverShard(i); err != nil {
				return fmt.Errorf("prefix %d: recover shard %d: %v", b, i, err)
			}
		}

		// Single-journal run + recovery: same mutations, one log, one FS.
		diskM := fs.NewMemBlockStore(gSweepBlockSize, 256)
		j, err := wal.New(diskM, 64)
		if err != nil {
			return err
		}
		if err := j.Format(); err != nil {
			return err
		}
		f := fs.New()
		f.SetJournal(j)
		for _, s := range prefix {
			switch s.kind {
			case gCommit:
				if err := j.Flush(); err != nil {
					return fmt.Errorf("prefix %d: single flush: %v", b, err)
				}
			case gCkpt:
				if err := j.Checkpoint(f); err != nil {
					return fmt.Errorf("prefix %d: single checkpoint: %v", b, err)
				}
			default:
				if err := f.Apply(s.m); err != nil {
					return fmt.Errorf("prefix %d: single apply: %v", b, err)
				}
			}
		}
		j2, err := wal.New(diskM, 64)
		if err != nil {
			return err
		}
		single, err := j2.Recover()
		if err != nil {
			return fmt.Errorf("prefix %d: single recovery: %v", b, err)
		}

		// Observable equality.
		for i := range recs {
			if !fs.NamespaceEqual(recs[i], single) {
				return fmt.Errorf("prefix %d: shard %d namespace differs from single-journal recovery", b, i)
			}
		}
		for _, ino := range single.InodesWithData() {
			owner := int(ino) % nshards
			got, ok := recs[owner].Contents(ino)
			want, _ := single.Contents(ino)
			if !ok || string(got) != string(want) {
				return fmt.Errorf("prefix %d: ino %d contents on owner shard %d diverge from single-journal recovery", b, ino, owner)
			}
		}
		for i := range recs {
			for _, ino := range recs[i].InodesWithData() {
				if int(ino)%nshards != i {
					return fmt.Errorf("prefix %d: shard %d holds contents for ino %d it does not own", b, i, ino)
				}
				want, ok := single.Contents(ino)
				got, _ := recs[i].Contents(ino)
				if !ok || string(got) != string(want) {
					return fmt.Errorf("prefix %d: shard %d ino %d contents not present in single-journal recovery", b, i, ino)
				}
			}
		}
	}
	return nil
}
