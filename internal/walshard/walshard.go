// Package walshard composes per-shard write-ahead journals into one
// crash-consistent durability domain — the subsystem that removes the
// single WAL as the serial chokepoint on the durability path once the
// kernel itself is sharded (§4.1), while keeping the paper's §4.3
// compose-per-service story: each shard's journal discharges the
// single-log crash obligations of internal/wal unchanged, and this
// package adds exactly one cross-shard ordering obligation
// (cross-shard-commit-atomic, walshard_obligations.go).
//
// Layout: the group partitions the device. Two leading blocks are the
// A/B commit-stamp slots; the rest is split into nshards contiguous
// regions, each hosting a complete internal/wal journal (its own
// snapshot slots, header, and record area) behind a range-view store:
//
//	[0]                      commit stamp slot A (even rounds)
//	[1]                      commit stamp slot B (odd rounds)
//	[2+i*per .. 2+(i+1)*per) shard i's journal region
//
// Commit protocol (two-phase, coordinator = Commit under g.mu):
//
//  1. Prepare: every shard with pending records flushes them as one
//     chunk stamped with round G = committed+1 (wal.FlushRound). The
//     flushes run concurrently — the regions are disjoint. A shard
//     whose record area is full compacts its committed prefix first
//     (wal.CheckpointCommitted) and retries; that is safe mid-round
//     because the compaction replays only on-disk chunks, and the
//     shard's own round-G chunk is not on disk yet.
//  2. Commit stamp: one block write to slot G%2 publishes G. This is
//     the round's single commit point.
//
// Recovery reads both stamp slots, takes the valid one with the
// highest round, and recovers each shard against that cut
// (wal.RecoverCommitted): a chunk whose round exceeds the stamp is a
// prepare that never committed — it is rolled back AND physically
// invalidated on every shard, which is exactly the atomic-abort half
// of "a torn cross-shard commit rolls back atomically on all shards".
// The A/B slot alternation makes the stamp write itself crash-safe: a
// torn stamp damages only the slot being written, and the other slot
// still holds the previous committed round.
//
// Background checkpointing: after each commit, any shard whose record
// area is more than half full gets a compaction goroutine (one per
// shard at a time). The worker serializes with commits on g.mu but
// never touches live filesystem state — combiner rounds and Record
// never wait on a checkpoint.
package walshard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/wal"
)

// Group errors.
var (
	ErrBadGeometry = errors.New("walshard: device too small for per-shard journal layout")
	ErrBadShards   = errors.New("walshard: shard count out of range")
)

// stampMagic marks a commit-stamp slot ("vnrstamp").
const stampMagic = 0x76_6e_72_73_74_61_6d_70

// stampSlots is the number of leading commit-stamp blocks (A/B).
const stampSlots = 2

// Group is a cross-shard group-commit coordinator over per-shard
// journals. All methods are safe for concurrent use; the zero value is
// not usable — construct with New.
type Group struct {
	d       fs.BlockStore
	bs      int
	nshards int
	per     uint64 // blocks per shard region

	js []*wal.Journal

	// mu serializes commit rounds, checkpoints, and recovery — the
	// coordinator lock. While it is held no unstamped prepare chunk can
	// appear or disappear under a checkpoint.
	mu    sync.Mutex
	round uint64 // last committed round (mirrors the on-disk stamp)

	// auto enables the background checkpoint worker; ckptBusy gates one
	// worker per shard, wg tracks them for Drain.
	auto     bool
	ckptBusy []atomic.Bool
	wg       sync.WaitGroup
}

// New lays a shard group over d: stamp slots plus nshards equal journal
// regions. journalBlocks is the per-shard journal size within its
// region (0 picks the wal default of 1/8 of the region). No disk access
// happens here; call Format for a fresh device or RecoverShard per
// shard to reopen one.
func New(d fs.BlockStore, nshards int, journalBlocks uint64) (*Group, error) {
	if nshards < 1 || nshards > obs.MaxShards {
		return nil, fmt.Errorf("%w: %d", ErrBadShards, nshards)
	}
	n := d.NumBlocks()
	if n < stampSlots+uint64(nshards) {
		return nil, fmt.Errorf("%w: %d blocks for %d shards", ErrBadGeometry, n, nshards)
	}
	per := (n - stampSlots) / uint64(nshards)
	g := &Group{
		d:        d,
		bs:       d.BlockSize(),
		nshards:  nshards,
		per:      per,
		js:       make([]*wal.Journal, nshards),
		auto:     true,
		ckptBusy: make([]atomic.Bool, nshards),
	}
	for i := 0; i < nshards; i++ {
		view := &rangeStore{d: d, base: stampSlots + uint64(i)*per, n: per}
		j, err := wal.New(view, journalBlocks)
		if err != nil {
			return nil, fmt.Errorf("walshard: shard %d region (%d blocks): %w", i, per, err)
		}
		g.js[i] = j
	}
	return g, nil
}

// rangeStore exposes blocks [base, base+n) of a store as its own
// device — the per-shard journal region view.
type rangeStore struct {
	d    fs.BlockStore
	base uint64
	n    uint64
}

func (v *rangeStore) BlockSize() int    { return v.d.BlockSize() }
func (v *rangeStore) NumBlocks() uint64 { return v.n }

func (v *rangeStore) ReadBlock(i uint64, p []byte) error {
	if err := fs.CheckBlockAccess(v, "read", i, p); err != nil {
		return err
	}
	return v.d.ReadBlock(v.base+i, p)
}

func (v *rangeStore) WriteBlock(i uint64, p []byte) error {
	if err := fs.CheckBlockAccess(v, "write", i, p); err != nil {
		return err
	}
	return v.d.WriteBlock(v.base+i, p)
}

// NumShards returns the number of shard journals.
func (g *Group) NumShards() int { return g.nshards }

// Journal returns shard i's journal — the fs.Journal sink to attach to
// that shard's replica filesystems.
func (g *Group) Journal(i int) *wal.Journal { return g.js[i] }

// CommittedRound returns the last committed commit-stamp round.
func (g *Group) CommittedRound() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.round
}

// SetAutoCheckpoint enables or disables the background checkpoint
// worker (on by default). The deterministic crash-sweep harness turns
// it off so the write sequence is reproducible across sweeps; explicit
// CheckpointShard calls stay available.
func (g *Group) SetAutoCheckpoint(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.auto = on
}

// Format initializes a fresh group: round 0 in stamp slot A, slot B
// invalidated (a stale slot from a previous incarnation must not claim
// a higher round), and every shard journal formatted.
func (g *Group) Format() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.writeStampLocked(0); err != nil {
		return err
	}
	if err := g.d.WriteBlock(1, make([]byte, g.bs)); err != nil {
		return err
	}
	for i, j := range g.js {
		if err := j.Format(); err != nil {
			return fmt.Errorf("walshard: format shard %d: %w", i, err)
		}
	}
	g.round = 0
	return nil
}

// writeStampLocked publishes round as committed: one block write to
// the slot the round's parity selects.
func (g *Group) writeStampLocked(round uint64) error {
	e := marshal.NewEncoder(make([]byte, 0, 24))
	e.U64(stampMagic).U64(round)
	e.U64(fletcher64(e.Bytes()))
	blk := make([]byte, g.bs)
	copy(blk, e.Bytes())
	return g.d.WriteBlock(round%stampSlots, blk)
}

// readStampLocked returns the highest committed round across the two
// stamp slots — 0 when neither slot is valid (fresh or never-committed
// device; round 0 commits nothing).
func (g *Group) readStampLocked() (uint64, error) {
	var best uint64
	blk := make([]byte, g.bs)
	for s := uint64(0); s < stampSlots; s++ {
		if err := g.d.ReadBlock(s, blk); err != nil {
			return 0, err
		}
		d := marshal.NewDecoder(blk[:24])
		magic, round, sum := d.U64(), d.U64(), d.U64()
		e := marshal.NewEncoder(make([]byte, 0, 16))
		e.U64(magic).U64(round)
		if d.Err() != nil || magic != stampMagic || fletcher64(e.Bytes()) != sum {
			continue // torn or never written; the other slot decides
		}
		if round > best {
			best = round
		}
	}
	return best, nil
}

// Commit makes every recorded-but-unflushed mutation on every shard
// durable as one atomic round: prepare chunks on each participating
// shard, then the commit stamp. Shards with nothing pending do not
// participate (Sync fans out to participating shards only). On success
// the round either fully replays or fully rolls back at any crash
// point. After the stamp, shards past the checkpoint high-water mark
// get background compaction.
//
// An error means the round did NOT commit (the stamp was not written,
// or its write failed); in the crash model a failed disk write is a
// crash, and recovery rolls the round back everywhere.
func (g *Group) Commit() error {
	g.mu.Lock()
	err := g.commitLocked()
	auto := g.auto
	g.mu.Unlock()
	if err == nil && auto {
		g.maybeCheckpoint()
	}
	return err
}

func (g *Group) commitLocked() error {
	var parts []int
	for i, j := range g.js {
		if j.Pending() > 0 {
			parts = append(parts, i)
		}
	}
	if len(parts) == 0 {
		return nil
	}
	next := g.round + 1

	// Phase 1 — prepare: flush each participant's pending records as a
	// round-stamped chunk. Regions are disjoint, so the flushes run
	// concurrently when more than one shard participates.
	prepare := func(i int) error {
		t0 := obs.Start()
		err := g.js[i].FlushRound(next)
		if errors.Is(err, wal.ErrJournalFull) {
			// Compact this shard's committed prefix and retry. Safe
			// mid-round: the compaction touches only on-disk chunks, and
			// this shard has no round-`next` chunk on disk yet. If the
			// pending buffer exceeds the whole record area even after
			// compaction, the full error propagates (EIO to the caller).
			if err = g.js[i].CheckpointCommitted(); err == nil {
				obs.WalShardCheckpoints.Add(0, 1)
				err = g.js[i].FlushRound(next)
			}
		}
		if err == nil {
			obs.WalShardCommits.Observe(obs.FsShardSlot(i), 0, t0)
		}
		return err
	}
	if len(parts) == 1 {
		if err := prepare(parts[0]); err != nil {
			return err
		}
	} else {
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for k, i := range parts {
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				errs[k] = prepare(i)
			}(k, i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	// Phase 2 — the commit point: publish the round stamp.
	if err := g.writeStampLocked(next); err != nil {
		return err
	}
	g.round = next
	obs.WalShardRounds.Add(0, 1)
	g.recordGaugesLocked()
	return nil
}

func (g *Group) recordGaugesLocked() {
	if !obs.Enabled() {
		return
	}
	for i, j := range g.js {
		obs.WalShardLogTail[i].Set(j.TailBlocks())
		obs.WalShardCkptLag[i].Set(j.SnapLag())
	}
}

// maybeCheckpoint spawns background compaction for every shard whose
// record area crossed the half-full high-water mark, at most one
// worker per shard. Workers serialize with commit rounds on g.mu; the
// caller (a Sync) never waits for them.
func (g *Group) maybeCheckpoint() {
	for i := range g.js {
		if g.js[i].TailBlocks()*2 < g.js[i].RecordBlocks() {
			continue
		}
		if !g.ckptBusy[i].CompareAndSwap(false, true) {
			continue
		}
		g.wg.Add(1)
		go func(i int) {
			defer g.wg.Done()
			defer g.ckptBusy[i].Store(false)
			g.mu.Lock()
			defer g.mu.Unlock()
			// Recheck under the coordinator lock: a commit-path
			// escalation may have compacted this shard already.
			if g.js[i].TailBlocks()*2 < g.js[i].RecordBlocks() {
				return
			}
			if err := g.js[i].CheckpointCommitted(); err == nil {
				obs.WalShardCheckpoints.Add(0, 1)
				g.recordGaugesLocked()
			}
		}(i)
	}
}

// Drain waits for all in-flight background checkpoint workers — for
// tests and orderly shutdown; normal operation never needs it.
func (g *Group) Drain() { g.wg.Wait() }

// CheckpointShard commits any pending records (so the snapshot covers
// everything recorded), then compacts shard i's journal. Callers that
// run cross-shard namespace broadcasts must exclude them for the
// commit half, exactly as for Commit.
func (g *Group) CheckpointShard(i int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.commitLocked(); err != nil {
		return err
	}
	if err := g.js[i].CheckpointCommitted(); err != nil {
		return err
	}
	obs.WalShardCheckpoints.Add(0, 1)
	g.recordGaugesLocked()
	return nil
}

// CheckpointAll is CheckpointShard over every shard in one coordinator
// critical section — the sharded SaveFS.
func (g *Group) CheckpointAll() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.commitLocked(); err != nil {
		return err
	}
	for i, j := range g.js {
		if err := j.CheckpointCommitted(); err != nil {
			return fmt.Errorf("walshard: checkpoint shard %d: %w", i, err)
		}
		obs.WalShardCheckpoints.Add(0, 1)
	}
	g.recordGaugesLocked()
	return nil
}

// RecoverShard rebuilds shard i's filesystem against the group's
// committed cut: the commit stamp decides which rounds replay, and any
// prepare past the stamp is rolled back and invalidated. Idempotent;
// call once per kernel replica of the shard. Each call returns an
// independently owned *fs.FS.
func (g *Group) RecoverShard(i int) (*fs.FS, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	committed, err := g.readStampLocked()
	if err != nil {
		return nil, err
	}
	g.round = committed
	return g.js[i].RecoverCommitted(committed)
}

// fletcher64 matches the snapshot/journal checksum (torn writes, not
// adversaries).
func fletcher64(p []byte) uint64 {
	var a, b uint64 = 1, 0
	for _, c := range p {
		a = (a + uint64(c)) % 0xffffffff
		b = (b + a) % 0xffffffff
	}
	return b<<32 | a
}
