package sm

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations adds framework self-checks: exploration is
// deterministic (same spec, same counts), the Allows fast path agrees
// with Next-derived checking, and invariant failures in CheckRefinement
// are attributed to the abstraction, not the implementation step.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "spec/sm", Name: "explore-deterministic", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				max := 5 + r.Intn(40)
				a, err := Explore(oblSpec(max), 1_000_000)
				if err != nil {
					return err
				}
				b, err := Explore(oblSpec(max), 1_000_000)
				if err != nil {
					return err
				}
				if a != b {
					return fmt.Errorf("exploration nondeterministic: %+v vs %+v", a, b)
				}
				if a.States != max+1 || a.Transitions != 2*max {
					return fmt.Errorf("counts = %+v, want %d states %d transitions", a, max+1, 2*max)
				}
				return nil
			}},
		verifier.Obligation{Module: "spec/sm", Name: "allows-agrees-with-next", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// A spec with both Next and a hand-written Allows: the
				// derived decision procedure must agree on random
				// triples.
				max := 20
				sp := oblSpec(max)
				withAllows := *sp
				withAllows.Allows = func(from int, ev Event, to int) bool {
					switch ev {
					case "inc":
						return from < max && to == from+1
					case "dec":
						return from > 0 && to == from-1
					}
					return false
				}
				derived := *sp // Next-only
				for i := 0; i < 2000; i++ {
					from := r.Intn(max + 1)
					to := r.Intn(max + 1)
					ev := Event("inc")
					if r.Intn(2) == 0 {
						ev = "dec"
					}
					if withAllows.allows(from, ev, to) != derived.allows(from, ev, to) {
						return fmt.Errorf("allows disagreement at %d --%s--> %d", from, ev, to)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "spec/sm", Name: "refinement-checks-abstraction-invariant", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// The checker must evaluate the spec invariant on the
				// abstraction of every reachable impl state.
				bound := 5 + r.Intn(10)
				sp := oblSpec(100)
				sp.Invariant = func(s int) error {
					if s > bound {
						return fmt.Errorf("over %d", bound)
					}
					return nil
				}
				_, err := CheckRefinement(oblImpl(100), sp, 1_000_000)
				if err == nil {
					return fmt.Errorf("invariant violation beyond %d not surfaced", bound)
				}
				return nil
			}},
	)
}
