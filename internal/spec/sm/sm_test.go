package sm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/verified-os/vnros/internal/verifier"
)

// counterSpec is a bounded counter: inc/dec events, value stays in
// [0, max]. Used as the reference spec in these tests.
func counterSpec(max int) *Spec[int] {
	return &Spec[int]{
		Name: "counter",
		Init: func() []int { return []int{0} },
		Next: func(s int) []Step[int] {
			var out []Step[int]
			if s < max {
				out = append(out, Step[int]{Event: "inc", To: s + 1})
			}
			if s > 0 {
				out = append(out, Step[int]{Event: "dec", To: s - 1})
			}
			return out
		},
		Equal: func(a, b int) bool { return a == b },
		Key:   func(s int) string { return fmt.Sprint(s) },
		Invariant: func(s int) error {
			if s < 0 || s > max {
				return fmt.Errorf("counter %d out of [0,%d]", s, max)
			}
			return nil
		},
	}
}

func TestExploreCountsStates(t *testing.T) {
	res, err := Explore(counterSpec(5), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 6 {
		t.Errorf("states = %d, want 6", res.States)
	}
	if res.Truncated {
		t.Error("should not truncate")
	}
	// inc transitions: 5, dec transitions: 5.
	if res.Transitions != 10 {
		t.Errorf("transitions = %d, want 10", res.Transitions)
	}
}

func TestExploreFindsInvariantViolation(t *testing.T) {
	sp := counterSpec(5)
	sp.Invariant = func(s int) error {
		if s >= 3 {
			return fmt.Errorf("reached %d", s)
		}
		return nil
	}
	_, err := Explore(sp, 1000)
	var re *RefinementError
	if !errors.As(err, &re) || re.Phase != "invariant" {
		t.Fatalf("err = %v, want invariant RefinementError", err)
	}
}

func TestExploreTruncates(t *testing.T) {
	res, err := Explore(counterSpec(1_000_000), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("expected truncation")
	}
}

func TestTraceCheckerAcceptsLegalTrace(t *testing.T) {
	tc := &TraceChecker[int]{Spec: counterSpec(3)}
	if err := tc.Start(0); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		ev   Event
		next int
	}{
		{"inc", 1}, {"inc", 2}, {"dec", 1}, {Stutter, 1}, {"inc", 2}, {"inc", 3},
	}
	for i, s := range steps {
		if err := tc.Step(s.ev, s.next); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if tc.Steps() != len(steps) {
		t.Errorf("Steps = %d", tc.Steps())
	}
	if tc.Current() != 3 {
		t.Errorf("Current = %d", tc.Current())
	}
}

func TestTraceCheckerRejectsBadInit(t *testing.T) {
	tc := &TraceChecker[int]{Spec: counterSpec(3)}
	err := tc.Start(2)
	var re *RefinementError
	if !errors.As(err, &re) || re.Phase != "init" {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceCheckerRejectsIllegalTransition(t *testing.T) {
	tc := &TraceChecker[int]{Spec: counterSpec(3)}
	if err := tc.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := tc.Step("inc", 2); err == nil {
		t.Fatal("double increment accepted")
	}
}

func TestTraceCheckerRejectsMutatingStutter(t *testing.T) {
	tc := &TraceChecker[int]{Spec: counterSpec(3)}
	if err := tc.Start(0); err != nil {
		t.Fatal(err)
	}
	err := tc.Step(Stutter, 1)
	if err == nil || !strings.Contains(err.Error(), "stutter") {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceCheckerStepBeforeStart(t *testing.T) {
	tc := &TraceChecker[int]{Spec: counterSpec(3)}
	if err := tc.Step("inc", 1); err == nil {
		t.Fatal("Step before Start accepted")
	}
}

func TestTraceCheckerUsesAllowsFastPath(t *testing.T) {
	sp := &Spec[int]{
		Name:   "allows-only",
		Equal:  func(a, b int) bool { return a == b },
		Allows: func(from int, ev Event, to int) bool { return ev == "jump" && to == from+10 },
	}
	tc := &TraceChecker[int]{Spec: sp}
	if err := tc.Start(5); err != nil {
		t.Fatal(err) // no Init enumerated: any start accepted
	}
	if err := tc.Step("jump", 15); err != nil {
		t.Fatal(err)
	}
	if err := tc.Step("jump", 16); err == nil {
		t.Fatal("bad jump accepted")
	}
}

// implCounter is a concrete machine: a pair (lo, hi) representing the
// counter as hi*10+lo in a contrived way, to exercise a non-identity
// abstraction function.
type implCounter struct{ lo, hi int }

func implCounterMachine(max int) *Impl[implCounter, int] {
	abs := func(c implCounter) int { return c.hi*10 + c.lo }
	return &Impl[implCounter, int]{
		Name: "impl-counter",
		Init: func() []implCounter { return []implCounter{{0, 0}} },
		Next: func(c implCounter) []Step[implCounter] {
			var out []Step[implCounter]
			v := abs(c)
			if v < max {
				n := v + 1
				out = append(out, Step[implCounter]{Event: "inc", To: implCounter{n % 10, n / 10}})
			}
			if v > 0 {
				n := v - 1
				out = append(out, Step[implCounter]{Event: "dec", To: implCounter{n % 10, n / 10}})
			}
			return out
		},
		Abs: abs,
		Key: func(c implCounter) string { return fmt.Sprintf("%d/%d", c.hi, c.lo) },
	}
}

func TestCheckRefinementHolds(t *testing.T) {
	res, err := CheckRefinement(implCounterMachine(25), counterSpec(25), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 26 {
		t.Errorf("states = %d, want 26", res.States)
	}
}

func TestCheckRefinementCatchesBug(t *testing.T) {
	impl := implCounterMachine(25)
	good := impl.Next
	impl.Next = func(c implCounter) []Step[implCounter] {
		steps := good(c)
		// Inject: from 7, "inc" jumps to 9.
		if impl.Abs(c) == 7 {
			for i := range steps {
				if steps[i].Event == "inc" {
					steps[i].To = implCounter{9, 0}
				}
			}
		}
		return steps
	}
	_, err := CheckRefinement(impl, counterSpec(25), 10_000)
	var re *RefinementError
	if !errors.As(err, &re) || re.Phase != "step" {
		t.Fatalf("err = %v, want step refinement failure", err)
	}
}

func TestCheckRefinementCatchesBadStutter(t *testing.T) {
	impl := implCounterMachine(5)
	good := impl.Next
	impl.Next = func(c implCounter) []Step[implCounter] {
		steps := good(c)
		if impl.Abs(c) == 2 {
			steps = append(steps, Step[implCounter]{Event: Stutter, To: implCounter{3, 0}})
		}
		return steps
	}
	_, err := CheckRefinement(impl, counterSpec(5), 10_000)
	if err == nil || !strings.Contains(err.Error(), "stutter") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckRefinementBadInit(t *testing.T) {
	impl := implCounterMachine(5)
	impl.Init = func() []implCounter { return []implCounter{{3, 0}} }
	_, err := CheckRefinement(impl, counterSpec(5), 10_000)
	var re *RefinementError
	if !errors.As(err, &re) || re.Phase != "init" {
		t.Fatalf("err = %v", err)
	}
}

func TestEventf(t *testing.T) {
	if Eventf("map(%#x)=%t", 0x1000, true) != Event("map(0x1000)=true") {
		t.Error("Eventf formatting wrong")
	}
}

func TestRefinementErrorMessages(t *testing.T) {
	e := &RefinementError{Spec: "pt", Phase: "step", Event: "map", Detail: "boom"}
	if !strings.Contains(e.Error(), "pt") || !strings.Contains(e.Error(), "map") {
		t.Errorf("message = %q", e.Error())
	}
	e2 := &RefinementError{Spec: "pt", Phase: "invariant", Detail: "boom"}
	if strings.Contains(e2.Error(), "event") {
		t.Errorf("stutter message should omit event: %q", e2.Error())
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 103})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
