// Package sm is the state-machine specification framework the rest of
// the repository writes its specs in — the Go analog of Verus's
// state-machine and refinement reasoning (§3, §4.4 of the paper).
//
// A Spec is a labeled transition system: states, initial states, and
// transitions tagged with externally visible Events. An implementation
// refines a spec through an abstraction function; the checkers in this
// package discharge the refinement obligation either by explicit-state
// exploration (finite instances) or by checking concrete execution
// traces step by step (infinite-state systems such as the page table,
// where the abstraction function is the MMU interpretation).
//
// "Refinement" here is the paper's §4.4 statement: for every behavior of
// the implementation there exists a corresponding execution of the
// abstract model with the same visible events. The checkers establish
// this for the explored/executed behaviors; the VC engine
// (internal/verifier) runs them as named verification conditions.
package sm

import (
	"errors"
	"fmt"
)

// Event is the externally visible label of a transition, e.g.
// "map(va=0x1000,pa=0x9000)=ok". The empty event is a stutter step:
// invisible to the spec, it must leave the abstract state unchanged.
type Event string

// Stutter is the invisible event.
const Stutter Event = ""

// Eventf builds an event label.
func Eventf(format string, args ...any) Event {
	return Event(fmt.Sprintf(format, args...))
}

// Step is one outgoing transition of a machine.
type Step[S any] struct {
	Event Event
	To    S
}

// Spec is an abstract state machine. Next enumerates transitions (used
// by the explicit-state explorer); Allows decides whether a specific
// (from, event, to) triple is a transition (used by the trace checker —
// for infinite-state specs it is usually much easier to write than
// Next). At least one of the two must be set for the corresponding
// checker to be usable.
type Spec[S any] struct {
	Name string
	// Init enumerates the initial states.
	Init func() []S
	// Next enumerates the transitions from s. Optional.
	Next func(s S) []Step[S]
	// Allows reports whether from --ev--> to is a legal transition.
	// Optional; derived from Next when nil.
	Allows func(from S, ev Event, to S) bool
	// Equal compares abstract states. Required.
	Equal func(a, b S) bool
	// Key returns a canonical fingerprint of a state for visited sets.
	// Required for exploration; %#v is a reasonable default choice for
	// small states.
	Key func(s S) string
	// Invariant, if set, must hold in every reachable state.
	Invariant func(s S) error
}

// allows resolves the Allows decision procedure, deriving it from Next
// if necessary.
func (sp *Spec[S]) allows(from S, ev Event, to S) bool {
	if sp.Allows != nil {
		return sp.Allows(from, ev, to)
	}
	if sp.Next == nil {
		return false
	}
	for _, st := range sp.Next(from) {
		if st.Event == ev && sp.Equal(st.To, to) {
			return true
		}
	}
	return false
}

// RefinementError reports a failed obligation with enough context to
// debug the counterexample.
type RefinementError struct {
	Spec   string
	Phase  string // "init", "step", "invariant"
	Event  Event
	Detail string
}

func (e *RefinementError) Error() string {
	if e.Event != Stutter {
		return fmt.Sprintf("sm: %s refinement failed in %s on event %q: %s", e.Spec, e.Phase, string(e.Event), e.Detail)
	}
	return fmt.Sprintf("sm: %s refinement failed in %s: %s", e.Spec, e.Phase, e.Detail)
}

// ErrLimit is wrapped by exploration results that hit the state limit
// without finding a violation; callers may treat it as success with
// bounded coverage or raise the limit.
var ErrLimit = errors.New("sm: state limit reached")

// TraceChecker incrementally verifies that a concrete execution refines
// a spec: the caller feeds it the abstraction of the implementation
// state after each operation, together with the operation's event.
//
// This is the workhorse for infinite-state refinement (the page table,
// the file system, the syscall layer): the implementation runs for real,
// the abstraction function is applied after every step, and the spec's
// transition relation is checked between successive abstract states.
type TraceChecker[S any] struct {
	Spec    *Spec[S]
	cur     S
	started bool
	steps   int
}

// Start seeds the checker with the abstraction of the initial
// implementation state and checks it is a legal initial state (when the
// spec enumerates them) and satisfies the invariant.
func (tc *TraceChecker[S]) Start(a S) error {
	sp := tc.Spec
	if sp.Init != nil {
		ok := false
		for _, s0 := range sp.Init() {
			if sp.Equal(s0, a) {
				ok = true
				break
			}
		}
		if !ok {
			return &RefinementError{Spec: sp.Name, Phase: "init",
				Detail: fmt.Sprintf("abstract state %v is not an initial state", any(a))}
		}
	}
	if sp.Invariant != nil {
		if err := sp.Invariant(a); err != nil {
			return &RefinementError{Spec: sp.Name, Phase: "invariant", Detail: err.Error()}
		}
	}
	tc.cur = a
	tc.started = true
	return nil
}

// Step checks one transition: the implementation performed an operation
// with visible event ev and its new abstraction is next.
func (tc *TraceChecker[S]) Step(ev Event, next S) error {
	sp := tc.Spec
	if !tc.started {
		return &RefinementError{Spec: sp.Name, Phase: "step", Event: ev, Detail: "Step before Start"}
	}
	tc.steps++
	if ev == Stutter {
		if !sp.Equal(tc.cur, next) {
			return &RefinementError{Spec: sp.Name, Phase: "step", Event: ev,
				Detail: fmt.Sprintf("stutter step changed abstract state at step %d", tc.steps)}
		}
	} else if !sp.allows(tc.cur, ev, next) {
		return &RefinementError{Spec: sp.Name, Phase: "step", Event: ev,
			Detail: fmt.Sprintf("spec does not allow transition at step %d: %v -> %v", tc.steps, any(tc.cur), any(next))}
	}
	if sp.Invariant != nil {
		if err := sp.Invariant(next); err != nil {
			return &RefinementError{Spec: sp.Name, Phase: "invariant", Event: ev, Detail: err.Error()}
		}
	}
	tc.cur = next
	return nil
}

// Steps returns the number of checked steps.
func (tc *TraceChecker[S]) Steps() int { return tc.steps }

// Current returns the current abstract state.
func (tc *TraceChecker[S]) Current() S { return tc.cur }

// ExploreResult summarizes an explicit-state exploration.
type ExploreResult struct {
	States      int
	Transitions int
	Truncated   bool // hit the state limit
}

// Explore exhaustively enumerates the reachable states of a spec (up to
// limit states) and checks the invariant everywhere. It is used to
// validate the specs themselves — a spec whose own invariant breaks is
// not a usable verification target.
func Explore[S any](sp *Spec[S], limit int) (ExploreResult, error) {
	var res ExploreResult
	if sp.Init == nil || sp.Next == nil || sp.Key == nil {
		return res, fmt.Errorf("sm: spec %s is not explorable (needs Init, Next, Key)", sp.Name)
	}
	visited := make(map[string]bool)
	var queue []S
	for _, s := range sp.Init() {
		k := sp.Key(s)
		if !visited[k] {
			visited[k] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		res.States++
		if sp.Invariant != nil {
			if err := sp.Invariant(s); err != nil {
				return res, &RefinementError{Spec: sp.Name, Phase: "invariant", Detail: err.Error()}
			}
		}
		if res.States >= limit {
			res.Truncated = true
			return res, nil
		}
		for _, st := range sp.Next(s) {
			res.Transitions++
			k := sp.Key(st.To)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, st.To)
			}
		}
	}
	return res, nil
}

// Impl describes a concrete, explorable implementation machine together
// with its abstraction function into spec states.
type Impl[C any, A any] struct {
	Name string
	Init func() []C
	Next func(c C) []Step[C]
	Abs  func(c C) A
	Key  func(c C) string
}

// CheckRefinement explores the implementation machine (up to limit
// states) and checks the forward simulation: every implementation
// transition maps to a spec transition on the same event, or is a
// stutter that leaves the abstraction unchanged. This is the paper's
// refinement theorem, discharged by explicit-state model checking on
// finite instances.
func CheckRefinement[C any, A any](impl *Impl[C, A], sp *Spec[A], limit int) (ExploreResult, error) {
	var res ExploreResult
	if impl.Init == nil || impl.Next == nil || impl.Abs == nil || impl.Key == nil {
		return res, fmt.Errorf("sm: impl %s is not explorable", impl.Name)
	}
	visited := make(map[string]bool)
	var queue []C
	for _, c := range impl.Init() {
		a := impl.Abs(c)
		if sp.Init != nil {
			ok := false
			for _, s0 := range sp.Init() {
				if sp.Equal(s0, a) {
					ok = true
					break
				}
			}
			if !ok {
				return res, &RefinementError{Spec: sp.Name, Phase: "init",
					Detail: fmt.Sprintf("impl initial state %v abstracts to non-initial %v", any(c), any(a))}
			}
		}
		k := impl.Key(c)
		if !visited[k] {
			visited[k] = true
			queue = append(queue, c)
		}
	}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		res.States++
		a := impl.Abs(c)
		if sp.Invariant != nil {
			if err := sp.Invariant(a); err != nil {
				return res, &RefinementError{Spec: sp.Name, Phase: "invariant", Detail: err.Error()}
			}
		}
		if res.States >= limit {
			res.Truncated = true
			return res, nil
		}
		for _, st := range impl.Next(c) {
			res.Transitions++
			a2 := impl.Abs(st.To)
			if st.Event == Stutter {
				if !sp.Equal(a, a2) {
					return res, &RefinementError{Spec: sp.Name, Phase: "step", Event: st.Event,
						Detail: fmt.Sprintf("impl stutter changed abstraction: %v -> %v", any(a), any(a2))}
				}
			} else if !sp.allows(a, st.Event, a2) {
				return res, &RefinementError{Spec: sp.Name, Phase: "step", Event: st.Event,
					Detail: fmt.Sprintf("no matching spec transition: %v -> %v", any(a), any(a2))}
			}
			k := impl.Key(st.To)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, st.To)
			}
		}
	}
	return res, nil
}
