package sm

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the spec framework's self-checks: the
// refinement checker must accept correct simulations and reject planted
// bugs — a checker that accepts everything would make every downstream
// "verified" claim vacuous, so its own discrimination is a VC.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "spec/sm", Name: "checker-accepts-valid-refinement", Kind: verifier.KindModelCheck,
			Check: func(r *rand.Rand) error {
				max := 10 + r.Intn(30)
				res, err := CheckRefinement(oblImpl(max), oblSpec(max), 100_000)
				if err != nil {
					return err
				}
				if res.States != max+1 {
					return fmt.Errorf("explored %d states, want %d", res.States, max+1)
				}
				return nil
			}},
		verifier.Obligation{Module: "spec/sm", Name: "checker-rejects-planted-bug", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				max := 10 + r.Intn(20)
				bugAt := 1 + r.Intn(max-2)
				impl := oblImpl(max)
				good := impl.Next
				impl.Next = func(c [2]int) []Step[[2]int] {
					steps := good(c)
					if impl.Abs(c) == bugAt {
						for i := range steps {
							if steps[i].Event == "inc" {
								n := bugAt + 2 // skips a state
								steps[i].To = [2]int{n / 7, n % 7}
							}
						}
					}
					return steps
				}
				if _, err := CheckRefinement(impl, oblSpec(max), 100_000); err == nil {
					return fmt.Errorf("planted double-increment at %d not caught", bugAt)
				}
				return nil
			}},
		verifier.Obligation{Module: "spec/sm", Name: "trace-checker-discriminates", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				sp := oblSpec(50)
				tc := &TraceChecker[int]{Spec: sp}
				if err := tc.Start(0); err != nil {
					return err
				}
				cur := 0
				for i := 0; i < 300; i++ {
					if r.Intn(2) == 0 && cur < 50 {
						cur++
						if err := tc.Step("inc", cur); err != nil {
							return err
						}
					} else if cur > 0 {
						cur--
						if err := tc.Step("dec", cur); err != nil {
							return err
						}
					}
				}
				// Now a bad step must be rejected.
				if err := tc.Step("inc", cur+2); err == nil {
					return fmt.Errorf("illegal transition accepted")
				}
				return nil
			}},
		verifier.Obligation{Module: "spec/sm", Name: "explore-finds-invariant-violations", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				bound := 5 + r.Intn(20)
				sp := oblSpec(100)
				sp.Invariant = func(s int) error {
					if s > bound {
						return fmt.Errorf("exceeded %d", bound)
					}
					return nil
				}
				if _, err := Explore(sp, 1_000_000); err == nil {
					return fmt.Errorf("reachable violation at %d not found", bound+1)
				}
				return nil
			}},
	)
}

// oblSpec is the bounded counter used by the self-checks.
func oblSpec(max int) *Spec[int] {
	return &Spec[int]{
		Name: "obl-counter",
		Init: func() []int { return []int{0} },
		Next: func(s int) []Step[int] {
			var out []Step[int]
			if s < max {
				out = append(out, Step[int]{Event: "inc", To: s + 1})
			}
			if s > 0 {
				out = append(out, Step[int]{Event: "dec", To: s - 1})
			}
			return out
		},
		Equal: func(a, b int) bool { return a == b },
		Key:   func(s int) string { return fmt.Sprint(s) },
	}
}

// oblImpl is a correct implementation of the counter with a non-trivial
// state representation.
func oblImpl(max int) *Impl[[2]int, int] {
	abs := func(c [2]int) int { return c[0]*7 + c[1] }
	return &Impl[[2]int, int]{
		Name: "obl-counter-impl",
		Init: func() [][2]int { return [][2]int{{0, 0}} },
		Next: func(c [2]int) []Step[[2]int] {
			v := abs(c)
			var out []Step[[2]int]
			if v < max {
				n := v + 1
				out = append(out, Step[[2]int]{Event: "inc", To: [2]int{n / 7, n % 7}})
			}
			if v > 0 {
				n := v - 1
				out = append(out, Step[[2]int]{Event: "dec", To: [2]int{n / 7, n % 7}})
			}
			return out
		},
		Abs: abs,
		Key: func(c [2]int) string { return fmt.Sprint(c) },
	}
}
