package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/verifier"
)

func TestAlignmentHelpers(t *testing.T) {
	cases := []struct {
		addr      PAddr
		base      PAddr
		off       uint64
		pageAlign bool
		wordAlign bool
	}{
		{0, 0, 0, true, true},
		{1, 0, 1, false, false},
		{8, 0, 8, false, true},
		{4095, 0, 4095, false, false},
		{4096, 4096, 0, true, true},
		{0x12345, 0x12000, 0x345, false, false},
	}
	for _, c := range cases {
		if got := c.addr.FrameBase(); got != c.base {
			t.Errorf("FrameBase(%v) = %v, want %v", c.addr, got, c.base)
		}
		if got := c.addr.FrameOffset(); got != c.off {
			t.Errorf("FrameOffset(%v) = %d, want %d", c.addr, got, c.off)
		}
		if got := c.addr.IsPageAligned(); got != c.pageAlign {
			t.Errorf("IsPageAligned(%v) = %v, want %v", c.addr, got, c.pageAlign)
		}
		if got := c.addr.IsWordAligned(); got != c.wordAlign {
			t.Errorf("IsWordAligned(%v) = %v, want %v", c.addr, got, c.wordAlign)
		}
	}
}

func TestReadsAsZeroBeforeWrite(t *testing.T) {
	m := New(1 << 20)
	v, err := m.Read64(0x1000)
	if err != nil {
		t.Fatalf("Read64: %v", err)
	}
	if v != 0 {
		t.Fatalf("untouched memory read %#x, want 0", v)
	}
	buf := make([]byte, 100)
	for i := range buf {
		buf[i] = 0xff
	}
	if err := m.Read(0x2fff, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestWrite64ReadBack(t *testing.T) {
	m := New(1 << 20)
	if err := m.Write64(0x3008, 0xdeadbeefcafef00d); err != nil {
		t.Fatalf("Write64: %v", err)
	}
	v, err := m.Read64(0x3008)
	if err != nil {
		t.Fatalf("Read64: %v", err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("read back %#x", v)
	}
	// Little-endian byte view.
	b := make([]byte, 8)
	if err := m.Read(0x3008, b); err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := []byte{0x0d, 0xf0, 0xfe, 0xca, 0xef, 0xbe, 0xad, 0xde}
	if !bytes.Equal(b, want) {
		t.Fatalf("bytes = %x, want %x", b, want)
	}
}

func TestUnalignedAccessRejected(t *testing.T) {
	m := New(1 << 20)
	if _, err := m.Read64(3); err == nil {
		t.Error("unaligned Read64 succeeded")
	}
	if err := m.Write64(4, 1); err == nil {
		t.Error("word write at 4-byte alignment succeeded (must be 8)")
	}
	var ae *AccessError
	_, err := m.Read64(1)
	if !errors.As(err, &ae) {
		t.Fatalf("error type = %T, want *AccessError", err)
	}
	if ae.Reason != "unaligned" {
		t.Errorf("reason = %q", ae.Reason)
	}
}

func TestOutOfBoundsRejected(t *testing.T) {
	m := New(1 << 16) // 64 KiB
	if err := m.Write64(1<<16, 1); err == nil {
		t.Error("write past end succeeded")
	}
	if err := m.Write64((1<<16)-8, 1); err != nil {
		t.Errorf("last word write failed: %v", err)
	}
	// Overflowing length.
	if err := m.Read((1<<16)-4, make([]byte, 8)); err == nil {
		t.Error("read straddling end succeeded")
	}
	// Address wraparound.
	if err := m.Read(PAddr(^uint64(0))-4, make([]byte, 16)); err == nil {
		t.Error("wraparound read succeeded")
	}
}

func TestCrossFrameReadWrite(t *testing.T) {
	m := New(1 << 20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 31)
	}
	// Start mid-frame so the write straddles four frames.
	start := PAddr(PageSize/2 + PageSize)
	if err := m.Write(start, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := m.Read(start, got); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-frame round trip mismatch")
	}
}

func TestZeroFrame(t *testing.T) {
	m := New(1 << 20)
	if err := m.Write64(0x5000, 42); err != nil {
		t.Fatal(err)
	}
	if err := m.ZeroFrame(0x5000); err != nil {
		t.Fatalf("ZeroFrame: %v", err)
	}
	v, err := m.Read64(0x5000)
	if err != nil || v != 0 {
		t.Fatalf("after ZeroFrame read %#x, err %v", v, err)
	}
	if err := m.ZeroFrame(0x5004); err == nil {
		t.Error("unaligned ZeroFrame succeeded")
	}
	if m.TouchedFrames() != 0 {
		t.Errorf("TouchedFrames = %d, want 0 (zeroed frame should be reclaimed)", m.TouchedFrames())
	}
}

func TestStatsCount(t *testing.T) {
	m := New(1 << 20)
	before := m.Stats()
	_ = m.Write64(0, 7)
	_, _ = m.Read64(0)
	_, _ = m.Read64(8)
	after := m.Stats()
	if after.Writes-before.Writes != 1 {
		t.Errorf("writes delta = %d, want 1", after.Writes-before.Writes)
	}
	if after.Reads-before.Reads != 2 {
		t.Errorf("reads delta = %d, want 2", after.Reads-before.Reads)
	}
}

func TestSizeRounding(t *testing.T) {
	m := New(PageSize + 1)
	if m.Size() != 2*PageSize {
		t.Errorf("Size = %d, want %d", m.Size(), 2*PageSize)
	}
}

// Property: any word written at any aligned in-bounds address reads back
// identically, and neighbours are unaffected.
func TestQuickWordRoundTrip(t *testing.T) {
	m := New(1 << 24) // 16 MiB
	f := func(slot uint32, v, sentinel uint64) bool {
		addr := PAddr(slot%((1<<24)/8-2)+1) * 8
		if err := m.Write64(addr-8, sentinel); err != nil {
			return false
		}
		if err := m.Write64(addr, v); err != nil {
			return false
		}
		got, err := m.Read64(addr)
		if err != nil || got != v {
			return false
		}
		prev, err := m.Read64(addr - 8)
		return err == nil && prev == sentinel
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: byte-level Write/Read round-trips arbitrary payloads at
// arbitrary in-bounds offsets.
func TestQuickBufferRoundTrip(t *testing.T) {
	m := New(1 << 22)
	f := func(off uint32, payload []byte) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		addr := PAddr(off % (1<<22 - 1<<16 - 1))
		if err := m.Write(addr, payload); err != nil {
			return false
		}
		got := make([]byte, len(payload))
		if err := m.Read(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	m := New(1 << 20)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			base := PAddr(g * PageSize)
			for i := 0; i < 200; i++ {
				_ = m.Write64(base, uint64(i))
				_, _ = m.Read64(base)
				_, _ = m.Read64(0)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 89})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
