package mem

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the physical-memory model's
// verification conditions: equivalence with a flat reference model
// under random access streams, bounds/alignment enforcement (the
// simulated machine-check), zero-fill semantics, and frame reclaim.
func RegisterObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "hw/mem", Name: "matches-flat-reference", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				const size = 1 << 16
				m := New(size)
				ref := make([]byte, size)
				for i := 0; i < 2000; i++ {
					switch r.Intn(4) {
					case 0: // word write
						a := PAddr(r.Intn(size/8)) * 8
						v := r.Uint64()
						if err := m.Write64(a, v); err != nil {
							return err
						}
						for j := 0; j < 8; j++ {
							ref[int(a)+j] = byte(v >> (8 * j))
						}
					case 1: // word read
						a := PAddr(r.Intn(size/8)) * 8
						v, err := m.Read64(a)
						if err != nil {
							return err
						}
						var want uint64
						for j := 7; j >= 0; j-- {
							want = want<<8 | uint64(ref[int(a)+j])
						}
						if v != want {
							return fmt.Errorf("read64(%v) = %#x, ref %#x", a, v, want)
						}
					case 2: // byte-range write
						n := r.Intn(300)
						a := r.Intn(size - n)
						p := make([]byte, n)
						r.Read(p)
						if err := m.Write(PAddr(a), p); err != nil {
							return err
						}
						copy(ref[a:], p)
					default: // byte-range read
						n := r.Intn(300)
						a := r.Intn(size - n)
						p := make([]byte, n)
						if err := m.Read(PAddr(a), p); err != nil {
							return err
						}
						if !bytes.Equal(p, ref[a:a+n]) {
							return fmt.Errorf("range read at %#x diverged from reference", a)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mem", Name: "bounds-and-alignment-enforced", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := New(1 << 16)
				for i := 0; i < 500; i++ {
					// Unaligned word accesses must machine-check.
					a := PAddr(r.Intn(1 << 16))
					if a%8 != 0 {
						if _, err := m.Read64(a); err == nil {
							return fmt.Errorf("unaligned read64 at %v accepted", a)
						}
						if err := m.Write64(a, 1); err == nil {
							return fmt.Errorf("unaligned write64 at %v accepted", a)
						}
					}
					// Out-of-bounds must machine-check, in-bounds must not.
					past := PAddr(1<<16) + PAddr(r.Intn(1<<20))*8
					if _, err := m.Read64(past &^ 7); err == nil {
						return fmt.Errorf("OOB read64 at %v accepted", past)
					}
				}
				// Wraparound length.
				if err := m.Read(PAddr(^uint64(0))-3, make([]byte, 8)); err == nil {
					return fmt.Errorf("wraparound read accepted")
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mem", Name: "untouched-reads-zero", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := New(1 << 20)
				for i := 0; i < 200; i++ {
					a := PAddr(r.Intn(1<<20/8)) * 8
					v, err := m.Read64(a)
					if err != nil {
						return err
					}
					if v != 0 {
						return fmt.Errorf("pristine RAM at %v reads %#x", a, v)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mem", Name: "zero-frame-reclaims", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := New(1 << 20)
				var frames []PAddr
				for i := 0; i < 50; i++ {
					f := PAddr(r.Intn(1<<20/PageSize)) * PageSize
					if err := m.Write64(f+8, r.Uint64()|1); err != nil {
						return err
					}
					frames = append(frames, f)
				}
				touched := m.TouchedFrames()
				if touched == 0 {
					return fmt.Errorf("no frames materialized")
				}
				for _, f := range frames {
					if err := m.ZeroFrame(f); err != nil {
						return err
					}
					v, err := m.Read64(f + 8)
					if err != nil || v != 0 {
						return fmt.Errorf("frame %v not zeroed: %#x, %v", f, v, err)
					}
				}
				if m.TouchedFrames() != 0 {
					return fmt.Errorf("%d frames still materialized after zeroing", m.TouchedFrames())
				}
				return nil
			}},
	)
}
