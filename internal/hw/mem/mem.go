// Package mem models the physical memory of the simulated machine.
//
// It is the lowest layer of the hardware specification from §5 of the
// paper: a sparse array of 4 KiB frames addressed by physical address.
// The page-table implementation (internal/pt) stores real x86-64 page
// table bits in this memory, and the MMU model (internal/hw/mmu) reads
// them back out, exactly as hardware would.
//
// All accesses are bounds- and alignment-checked; a violation is a
// simulated machine-check (returned as an error, never a panic) so that
// verification conditions can probe illegal behaviour.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// PAddr is a physical byte address in the simulated machine.
type PAddr uint64

// Architectural constants for the simulated x86-64 machine.
const (
	// PageSize is the base frame size (4 KiB).
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
	// WordSize is the width of a machine word in bytes.
	WordSize = 8
	// MaxPhysBits is the number of implemented physical address bits
	// (52 on contemporary x86-64 parts).
	MaxPhysBits = 52
	// MaxPAddr is one past the largest representable physical address.
	MaxPAddr PAddr = 1 << MaxPhysBits
)

// FrameBase returns the base address of the frame containing a.
func (a PAddr) FrameBase() PAddr { return a &^ (PageSize - 1) }

// FrameOffset returns the offset of a within its frame.
func (a PAddr) FrameOffset() uint64 { return uint64(a) & (PageSize - 1) }

// IsPageAligned reports whether a is 4 KiB aligned.
func (a PAddr) IsPageAligned() bool { return a&(PageSize-1) == 0 }

// IsWordAligned reports whether a is 8-byte aligned.
func (a PAddr) IsWordAligned() bool { return a&(WordSize-1) == 0 }

func (a PAddr) String() string { return fmt.Sprintf("pa:%#x", uint64(a)) }

// AccessError is the simulated machine-check raised by an illegal
// physical memory access.
type AccessError struct {
	Op     string // "read64", "write64", "read", "write"
	Addr   PAddr
	Len    int
	Reason string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: illegal %s at %v len=%d: %s", e.Op, e.Addr, e.Len, e.Reason)
}

// PhysMem is the sparse simulated physical memory: a map from frame base
// address to the frame's backing bytes. Frames are materialized lazily on
// first touch and read as zero before that, matching how the simulated
// firmware hands the OS zeroed RAM.
//
// PhysMem is safe for concurrent use; each access takes a read or write
// lock. The page-table benchmarks stay on the lock-free fast path of the
// owning replica, so this coarse lock models DRAM without dominating the
// measured NR contention.
//
// The zero value is a memory of size 0; use New.
type PhysMem struct {
	mu     sync.RWMutex
	frames map[PAddr][]byte
	size   PAddr // one past the last valid address

	// reads and writes are monotonically increasing access counters,
	// used by the hardware-spec verification conditions to assert that
	// the MMU model really touched memory the expected number of times.
	reads  atomic.Uint64
	writes atomic.Uint64
}

// Stats counts accesses to physical memory.
type Stats struct {
	Reads  uint64
	Writes uint64
}

// New returns a physical memory of the given byte size. The size is
// rounded up to a whole number of frames.
func New(size PAddr) *PhysMem {
	if size > MaxPAddr {
		size = MaxPAddr
	}
	rounded := (size + PageSize - 1) &^ (PageSize - 1)
	return &PhysMem{
		frames: make(map[PAddr][]byte),
		size:   rounded,
	}
}

// Size returns one past the largest valid physical address.
func (m *PhysMem) Size() PAddr { return m.size }

// Stats returns a snapshot of the access counters.
func (m *PhysMem) Stats() Stats {
	return Stats{Reads: m.reads.Load(), Writes: m.writes.Load()}
}

func (m *PhysMem) check(op string, addr PAddr, n int) error {
	if n < 0 {
		return &AccessError{Op: op, Addr: addr, Len: n, Reason: "negative length"}
	}
	end := uint64(addr) + uint64(n)
	if end < uint64(addr) || PAddr(end) > m.size {
		return &AccessError{Op: op, Addr: addr, Len: n, Reason: "out of bounds"}
	}
	return nil
}

// frameFor returns the backing slice for the frame containing addr,
// materializing it if needed. Callers must hold mu for writing when
// create is true, and at least for reading otherwise.
func (m *PhysMem) frameFor(addr PAddr, create bool) []byte {
	base := addr.FrameBase()
	f := m.frames[base]
	if f == nil && create {
		f = make([]byte, PageSize)
		m.frames[base] = f
	}
	return f
}

// Read64 reads the 8-byte little-endian word at addr, which must be
// word-aligned. This is the access the MMU performs during a page walk.
func (m *PhysMem) Read64(addr PAddr) (uint64, error) {
	if !addr.IsWordAligned() {
		return 0, &AccessError{Op: "read64", Addr: addr, Len: 8, Reason: "unaligned"}
	}
	if err := m.check("read64", addr, 8); err != nil {
		return 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.reads.Add(1)
	f := m.frameFor(addr, false)
	if f == nil {
		return 0, nil // untouched RAM reads as zero
	}
	off := addr.FrameOffset()
	return binary.LittleEndian.Uint64(f[off : off+8]), nil
}

// Write64 stores an 8-byte little-endian word at addr, which must be
// word-aligned.
func (m *PhysMem) Write64(addr PAddr, v uint64) error {
	if !addr.IsWordAligned() {
		return &AccessError{Op: "write64", Addr: addr, Len: 8, Reason: "unaligned"}
	}
	if err := m.check("write64", addr, 8); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes.Add(1)
	f := m.frameFor(addr, true)
	off := addr.FrameOffset()
	binary.LittleEndian.PutUint64(f[off:off+8], v)
	return nil
}

// Read copies len(p) bytes starting at addr into p.
func (m *PhysMem) Read(addr PAddr, p []byte) error {
	if err := m.check("read", addr, len(p)); err != nil {
		return err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.reads.Add(1)
	for n := 0; n < len(p); {
		off := (addr + PAddr(n)).FrameOffset()
		chunk := PageSize - int(off)
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		f := m.frameFor(addr+PAddr(n), false)
		if f == nil {
			for i := 0; i < chunk; i++ {
				p[n+i] = 0
			}
		} else {
			copy(p[n:n+chunk], f[off:off+uint64(chunk)])
		}
		n += chunk
	}
	return nil
}

// Write copies p into physical memory starting at addr.
func (m *PhysMem) Write(addr PAddr, p []byte) error {
	if err := m.check("write", addr, len(p)); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes.Add(1)
	for n := 0; n < len(p); {
		off := (addr + PAddr(n)).FrameOffset()
		chunk := PageSize - int(off)
		if rem := len(p) - n; chunk > rem {
			chunk = rem
		}
		f := m.frameFor(addr+PAddr(n), true)
		copy(f[off:off+uint64(chunk)], p[n:n+chunk])
		n += chunk
	}
	return nil
}

// ZeroFrame clears the frame at the page-aligned address base. The
// allocator uses it to hand out clean frames, as required by the
// page-table correctness argument (stale PTE bits in a fresh directory
// frame would be interpreted by the MMU).
func (m *PhysMem) ZeroFrame(base PAddr) error {
	if !base.IsPageAligned() {
		return &AccessError{Op: "write", Addr: base, Len: PageSize, Reason: "unaligned frame"}
	}
	if err := m.check("write", base, PageSize); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writes.Add(1)
	// Dropping the backing restores the "reads as zero" lazy state.
	delete(m.frames, base)
	return nil
}

// TouchedFrames returns the number of frames that have been materialized.
func (m *PhysMem) TouchedFrames() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.frames)
}
