package machine

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the platform-device verification
// conditions: interrupt conservation (no lost or duplicated IRQs),
// timer arithmetic, disk DMA against a flat reference, and NIC frame
// isolation.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "hw/machine", Name: "irq-conservation", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				const cores = 3
				ic := NewInterruptController(cores)
				raised := 0
				for i := 0; i < 500; i++ {
					if r.Intn(3) > 0 {
						ic.Raise(IRQDisk)
						raised++
					}
					if r.Intn(4) == 0 {
						for c := 0; c < cores; c++ {
							for ic.Pending(c) >= 0 {
								raised--
							}
						}
					}
				}
				for c := 0; c < cores; c++ {
					for ic.Pending(c) >= 0 {
						raised--
					}
				}
				// Same-line IRQs coalesce per core while pending (level-
				// triggered semantics): at most `cores` can be absorbed
				// per drain epoch, so the residue can be positive but the
				// drained count can never exceed the raised count
				// (raised >= 0) and never go negative.
				if raised < 0 {
					return fmt.Errorf("delivered %d more IRQs than raised", -raised)
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "irq-priority-order", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				ic := NewInterruptController(1)
				lines := []int{IRQNIC, IRQTimer, IRQDisk, IRQSerial}
				for _, l := range lines {
					ic.RaiseOn(0, l)
				}
				prev := -1
				for {
					irq := ic.Pending(0)
					if irq < 0 {
						break
					}
					if irq <= prev {
						return fmt.Errorf("IRQ %d delivered after %d", irq, prev)
					}
					prev = irq
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "timer-interval-arithmetic", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				m := New(Config{Cores: 1})
				interval := uint64(1 + r.Intn(1000))
				m.Timer.Program(interval)
				var advanced uint64
				for i := 0; i < 200; i++ {
					n := uint64(r.Intn(3000))
					m.Timer.Advance(n)
					advanced += n
				}
				if got, want := m.Timer.Ticks(), advanced/interval; got != want {
					return fmt.Errorf("ticks = %d, want %d (advanced %d, interval %d)",
						got, want, advanced, interval)
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "disk-dma-matches-reference", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				m := New(Config{DiskBlocks: 128, MemBytes: 16 << 20})
				ref := make(map[uint64][]byte)
				dma := mem.PAddr(0x8000)
				for i := 0; i < 300; i++ {
					block := uint64(r.Intn(130)) // sometimes out of range
					if r.Intn(2) == 0 {
						p := make([]byte, DiskBlockSize)
						r.Read(p)
						if err := m.Mem.Write(dma, p); err != nil {
							return err
						}
						m.Disk.Submit(true, block, dma)
						c, okC := m.Disk.Complete()
						if !okC {
							return fmt.Errorf("write completion lost")
						}
						if block < 128 {
							if c.Err != "" {
								return fmt.Errorf("in-range write failed: %s", c.Err)
							}
							ref[block] = append([]byte(nil), p...)
						} else if c.Err == "" {
							return fmt.Errorf("out-of-range write succeeded")
						}
					} else {
						m.Disk.Submit(false, block, dma)
						c, okC := m.Disk.Complete()
						if !okC {
							return fmt.Errorf("read completion lost")
						}
						if block >= 128 {
							if c.Err == "" {
								return fmt.Errorf("out-of-range read succeeded")
							}
							continue
						}
						if c.Err != "" {
							return fmt.Errorf("in-range read failed: %s", c.Err)
						}
						got := make([]byte, DiskBlockSize)
						if err := m.Mem.Read(dma, got); err != nil {
							return err
						}
						want := ref[block]
						if want == nil {
							want = make([]byte, DiskBlockSize)
						}
						if !bytes.Equal(got, want) {
							return fmt.Errorf("block %d diverged from reference", block)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "nic-frames-isolated", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				a := New(Config{NICAddr: 1})
				b := New(Config{NICAddr: 2})
				a.NIC.AttachWire(b.NIC.Deliver)
				// Transmit, then mutate the source buffer; the delivered
				// frame must be unaffected (DMA copies, no aliasing).
				src := []byte("immutable in flight")
				if err := a.NIC.TX(src); err != nil {
					return err
				}
				src[0] = 'X'
				f, okF := b.NIC.RX()
				if !okF || string(f) != "immutable in flight" {
					return fmt.Errorf("frame aliased sender buffer: %q", f)
				}
				// And mutating the received frame must not affect a
				// second delivery of the same content.
				if err := a.NIC.TX([]byte("second")); err != nil {
					return err
				}
				f2, _ := b.NIC.RX()
				f2[0] = 'Z'
				if err := a.NIC.TX([]byte("second")); err != nil {
					return err
				}
				f3, _ := b.NIC.RX()
				if string(f3) != "second" {
					return fmt.Errorf("receive buffer aliased: %q", f3)
				}
				return nil
			}},
	)
}
