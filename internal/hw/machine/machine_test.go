package machine

import (
	"testing"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/verifier"
)

func TestNewDefaults(t *testing.T) {
	m := New(Config{})
	if len(m.Cores) != 1 || m.Mem.Size() == 0 || m.Disk.NumBlocks() == 0 {
		t.Fatalf("defaults wrong: cores=%d", len(m.Cores))
	}
	if m.Cores[0].MMU == nil {
		t.Fatal("core has no MMU")
	}
}

func TestInterruptRoundRobinAndPriority(t *testing.T) {
	ic := NewInterruptController(2)
	ic.Raise(IRQDisk) // core 0
	ic.Raise(IRQDisk) // core 1
	if got := ic.Pending(0); got != IRQDisk {
		t.Fatalf("core 0 pending = %d", got)
	}
	if got := ic.Pending(1); got != IRQDisk {
		t.Fatalf("core 1 pending = %d", got)
	}
	if got := ic.Pending(0); got != -1 {
		t.Fatalf("spurious pending = %d", got)
	}
	// Lowest IRQ number delivered first.
	ic.RaiseOn(0, IRQNIC)
	ic.RaiseOn(0, IRQTimer)
	if got := ic.Pending(0); got != IRQTimer {
		t.Fatalf("priority pending = %d", got)
	}
	if got := ic.Pending(0); got != IRQNIC {
		t.Fatalf("second pending = %d", got)
	}
}

func TestInterruptMasking(t *testing.T) {
	ic := NewInterruptController(1)
	ic.Mask(IRQSerial)
	ic.Raise(IRQSerial)
	if got := ic.Pending(0); got != -1 {
		t.Fatalf("masked IRQ delivered: %d", got)
	}
	ic.Unmask(IRQSerial)
	ic.Raise(IRQSerial)
	if got := ic.Pending(0); got != IRQSerial {
		t.Fatalf("unmasked IRQ lost: %d", got)
	}
}

func TestTimerTicksAllCores(t *testing.T) {
	m := New(Config{Cores: 2})
	m.Timer.Program(100)
	m.Timer.Advance(250) // 2 full intervals, 50 left over
	if m.Timer.Ticks() != 2 {
		t.Fatalf("ticks = %d", m.Timer.Ticks())
	}
	for c := 0; c < 2; c++ {
		if got := m.IC.Pending(c); got != IRQTimer {
			t.Fatalf("core %d pending = %d", c, got)
		}
	}
	m.Timer.Advance(50) // completes the third interval
	if m.Timer.Ticks() != 3 {
		t.Fatalf("ticks = %d", m.Timer.Ticks())
	}
	// Disabled timer never fires.
	m.Timer.Program(0)
	m.Timer.Advance(10_000)
	if m.Timer.Ticks() != 3 {
		t.Fatal("disabled timer fired")
	}
}

func TestSerialEcho(t *testing.T) {
	m := New(Config{})
	for _, b := range []byte("boot: ok\n") {
		m.Serial.TX(b)
	}
	if m.Serial.Output() != "boot: ok\n" {
		t.Fatalf("output = %q", m.Serial.Output())
	}
	m.Serial.InjectInput([]byte("hi"))
	if got := m.IC.Pending(0); got != IRQSerial {
		t.Fatalf("no serial IRQ: %d", got)
	}
	b, ok := m.Serial.RX()
	if !ok || b != 'h' {
		t.Fatalf("rx = %c %t", b, ok)
	}
	b, _ = m.Serial.RX()
	if b != 'i' {
		t.Fatalf("rx2 = %c", b)
	}
	if _, ok := m.Serial.RX(); ok {
		t.Fatal("phantom input")
	}
}

func TestDiskDMARoundTrip(t *testing.T) {
	m := New(Config{DiskBlocks: 64})
	src := mem.PAddr(0x1000)
	dst := mem.PAddr(0x2000)
	payload := make([]byte, DiskBlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := m.Mem.Write(src, payload); err != nil {
		t.Fatal(err)
	}
	id1 := m.Disk.Submit(true, 7, src)
	if got := m.IC.Pending(0); got != IRQDisk {
		t.Fatalf("no disk IRQ: %d", got)
	}
	c, ok := m.Disk.Complete()
	if !ok || c.ID != id1 || c.Err != "" || !c.Write || c.Block != 7 {
		t.Fatalf("completion = %+v %t", c, ok)
	}
	m.Disk.Submit(false, 7, dst)
	if c, ok = m.Disk.Complete(); !ok || c.Err != "" {
		t.Fatalf("read completion = %+v", c)
	}
	got := make([]byte, DiskBlockSize)
	if err := m.Mem.Read(dst, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestDiskErrors(t *testing.T) {
	m := New(Config{DiskBlocks: 8})
	m.Disk.Submit(false, 99, 0x1000)
	c, ok := m.Disk.Complete()
	if !ok || c.Err == "" {
		t.Fatalf("out-of-range read completed clean: %+v", c)
	}
	// Unwritten blocks read as zero.
	if err := m.Mem.Write(0x3000, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	m.Disk.Submit(false, 3, 0x3000)
	_, _ = m.Disk.Complete()
	v, _ := m.Mem.Read64(0x3000)
	if v != 0 {
		t.Fatalf("unwritten block read %#x", v)
	}
}

func TestNICLoop(t *testing.T) {
	a := New(Config{NICAddr: 1})
	b := New(Config{NICAddr: 2})
	// Cross-connect the two NICs.
	a.NIC.AttachWire(b.NIC.Deliver)
	b.NIC.AttachWire(a.NIC.Deliver)

	if err := a.NIC.TX([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if got := b.IC.Pending(0); got != IRQNIC {
		t.Fatalf("no NIC IRQ on b: %d", got)
	}
	f, ok := b.NIC.RX()
	if !ok || string(f) != "ping" {
		t.Fatalf("rx = %q %t", f, ok)
	}
	// Mutating the received frame must not affect a retransmit.
	f[0] = 'X'
	if err := b.NIC.TX([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	g, _ := a.NIC.RX()
	if string(g) != "pong" {
		t.Fatalf("reply = %q", g)
	}
}

func TestNICDrops(t *testing.T) {
	m := New(Config{})
	// No wire attached: TX drops silently.
	if err := m.NIC.TX([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if m.NIC.Drops() != 1 {
		t.Fatalf("drops = %d", m.NIC.Drops())
	}
	// Oversized frames rejected.
	if err := m.NIC.TX(make([]byte, MaxFrameLen+1)); err == nil {
		t.Fatal("jumbo frame accepted")
	}
	m.NIC.Deliver(make([]byte, MaxFrameLen+1))
	if _, ok := m.NIC.RX(); ok {
		t.Fatal("oversized frame delivered")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 101})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
