package machine

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the third platform wave: serial FIFO
// ordering, IRQ masking windows, per-core IPI targeting, and disk
// completion-queue ordering.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "hw/machine", Name: "serial-fifo-order", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := New(Config{})
				var want []byte
				for i := 0; i < 500; i++ {
					b := byte(r.Intn(256))
					if b == 0 {
						b = 1
					}
					m.Serial.InjectInput([]byte{b})
					want = append(want, b)
				}
				for i, w := range want {
					got, ok := m.Serial.RX()
					if !ok || got != w {
						return fmt.Errorf("byte %d = %#x/%t, want %#x (FIFO broken)", i, got, ok, w)
					}
				}
				if _, ok := m.Serial.RX(); ok {
					return fmt.Errorf("phantom input byte")
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "irq-mask-window", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				ic := NewInterruptController(1)
				// Raised-while-masked interrupts are lost at the line
				// level (edge semantics); raised-after-unmask arrive.
				ic.Mask(IRQDisk)
				ic.Raise(IRQDisk)
				if got := ic.Pending(0); got != -1 {
					return fmt.Errorf("masked IRQ delivered: %d", got)
				}
				ic.Unmask(IRQDisk)
				if got := ic.Pending(0); got != -1 {
					return fmt.Errorf("unmask replayed a lost edge: %d", got)
				}
				ic.Raise(IRQDisk)
				if got := ic.Pending(0); got != IRQDisk {
					return fmt.Errorf("post-unmask IRQ lost: %d", got)
				}
				// Masking one line never affects another.
				ic.Mask(IRQNIC)
				ic.Raise(IRQTimer)
				if got := ic.Pending(0); got != IRQTimer {
					return fmt.Errorf("unrelated mask suppressed timer: %d", got)
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "ipi-targets-exact-core", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				const cores = 4
				ic := NewInterruptController(cores)
				for trial := 0; trial < 100; trial++ {
					target := r.Intn(cores)
					ic.RaiseOn(target, IRQTimer)
					for c := 0; c < cores; c++ {
						got := ic.Pending(c)
						if c == target && got != IRQTimer {
							return fmt.Errorf("target core %d missed IPI: %d", c, got)
						}
						if c != target && got != -1 {
							return fmt.Errorf("core %d received stray IPI: %d", c, got)
						}
					}
				}
				// Out-of-range targets are ignored, not misrouted.
				ic.RaiseOn(-1, IRQTimer)
				ic.RaiseOn(cores, IRQTimer)
				for c := 0; c < cores; c++ {
					if got := ic.Pending(c); got != -1 {
						return fmt.Errorf("out-of-range IPI landed on core %d", c)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/machine", Name: "disk-completions-in-order", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := New(Config{DiskBlocks: 32})
				var ids []uint64
				for i := 0; i < 50; i++ {
					ids = append(ids, m.Disk.Submit(r.Intn(2) == 0, uint64(r.Intn(32)), 0x8000))
				}
				for i, want := range ids {
					c, ok := m.Disk.Complete()
					if !ok {
						return fmt.Errorf("completion %d missing", i)
					}
					if c.ID != want {
						return fmt.Errorf("completion %d has id %d, want %d (reordered)", i, c.ID, want)
					}
				}
				if _, ok := m.Disk.Complete(); ok {
					return fmt.Errorf("phantom completion")
				}
				return nil
			}},
	)
}
