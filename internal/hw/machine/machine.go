// Package machine models the rest of the simulated hardware platform:
// cores with MMUs, an interrupt controller, a programmable timer, a
// serial console, a DMA block-storage controller, and a network
// interface. These are the devices behind the paper's §1 "device
// drivers (network controller, disk controllers, interrupt controller,
// timer, serial/graphical output)" component list; the drivers
// themselves live in internal/dev.
//
// The devices follow real-hardware idioms scaled down: MMIO-style
// register access methods, DMA into simulated physical memory, and
// completion interrupts routed through the interrupt controller.
package machine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
)

// IRQ numbers on the simulated platform.
const (
	IRQTimer  = 0
	IRQSerial = 4
	IRQDisk   = 14
	IRQNIC    = 11
	NumIRQs   = 32
)

// Machine is the whole simulated platform.
type Machine struct {
	Mem    *mem.PhysMem
	Cores  []*Core
	IC     *InterruptController
	Timer  *Timer
	Serial *Serial
	Disk   *Disk
	NIC    *NIC
}

// Config sizes a machine.
type Config struct {
	Cores      int
	MemBytes   mem.PAddr
	DiskBlocks uint64
	// NICAddr is the simulated MAC-like address (0 = derived default).
	NICAddr uint64
}

// New builds a machine.
func New(cfg Config) *Machine {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 256 << 20
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 16
	}
	if cfg.NICAddr == 0 {
		cfg.NICAddr = 0x02_00_00_00_00_01
	}
	m := &Machine{Mem: mem.New(cfg.MemBytes)}
	m.IC = NewInterruptController(cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		m.Cores = append(m.Cores, &Core{ID: i, MMU: mmu.New(m.Mem)})
	}
	m.Timer = &Timer{ic: m.IC}
	m.Serial = &Serial{ic: m.IC}
	m.Disk = NewDisk(m.Mem, m.IC, cfg.DiskBlocks)
	m.NIC = NewNIC(m.Mem, m.IC, cfg.NICAddr)
	return m
}

// Core is one CPU with its private MMU (and therefore TLB).
type Core struct {
	ID  int
	MMU *mmu.MMU
}

// InterruptController routes device interrupts to cores: a per-core
// pending bitmask with round-robin delivery of device IRQs.
type InterruptController struct {
	mu      sync.Mutex
	pending []uint32 // per-core bitmask
	next    int      // round-robin cursor for device IRQs
	masked  uint32   // globally masked IRQ lines

	// npend counts pending IRQ bits across all cores, maintained under
	// mu but readable without it: HasPending is the hot-path "anything
	// to deliver anywhere?" probe the syscall entry uses to decide
	// whether a full per-core drain sweep is worth taking.
	npend atomic.Int32
}

// NewInterruptController creates a controller for n cores.
func NewInterruptController(n int) *InterruptController {
	return &InterruptController{pending: make([]uint32, n)}
}

// Raise asserts an IRQ line; it is delivered to one core (round-robin),
// unless masked.
func (ic *InterruptController) Raise(irq int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if irq < 0 || irq >= NumIRQs || ic.masked&(1<<uint(irq)) != 0 {
		return
	}
	core := ic.next % len(ic.pending)
	ic.next++
	if ic.pending[core]&(1<<uint(irq)) == 0 {
		ic.npend.Add(1)
	}
	ic.pending[core] |= 1 << uint(irq)
}

// RaiseOn asserts an IRQ on a specific core (IPIs, timer per-core
// ticks).
func (ic *InterruptController) RaiseOn(core, irq int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if irq < 0 || irq >= NumIRQs || core < 0 || core >= len(ic.pending) {
		return
	}
	if ic.masked&(1<<uint(irq)) != 0 {
		return
	}
	if ic.pending[core]&(1<<uint(irq)) == 0 {
		ic.npend.Add(1)
	}
	ic.pending[core] |= 1 << uint(irq)
}

// HasPending reports whether any core has an undelivered IRQ. One
// atomic load, no lock: the syscall path polls only the calling core
// and takes the all-core sweep only when this returns true, so an IRQ
// parked on an idle core is still delivered without every syscall
// paying a cores-length locked scan.
func (ic *InterruptController) HasPending() bool { return ic.npend.Load() > 0 }

// Pending returns and clears the highest-priority (lowest-numbered)
// pending IRQ for a core, or -1.
func (ic *InterruptController) Pending(core int) int {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if core < 0 || core >= len(ic.pending) {
		return -1
	}
	p := ic.pending[core]
	if p == 0 {
		return -1
	}
	for irq := 0; irq < NumIRQs; irq++ {
		if p&(1<<uint(irq)) != 0 {
			ic.pending[core] &^= 1 << uint(irq)
			ic.npend.Add(-1)
			return irq
		}
	}
	return -1
}

// Mask disables an IRQ line platform-wide.
func (ic *InterruptController) Mask(irq int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if irq >= 0 && irq < NumIRQs {
		ic.masked |= 1 << uint(irq)
	}
}

// Unmask re-enables an IRQ line.
func (ic *InterruptController) Unmask(irq int) {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if irq >= 0 && irq < NumIRQs {
		ic.masked &^= 1 << uint(irq)
	}
}

// Timer is the platform timer: the simulation advances it explicitly
// (there is no wall clock in the model), and every `interval` ticks it
// raises IRQTimer on every core — the preemption heartbeat.
type Timer struct {
	mu       sync.Mutex
	ic       *InterruptController
	interval uint64
	count    uint64
	ticks    uint64
}

// Program sets the tick interval (0 disables).
func (t *Timer) Program(interval uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.interval = interval
	t.count = 0
}

// Advance moves simulated time forward by n cycles, raising timer
// interrupts as intervals elapse.
func (t *Timer) Advance(n uint64) {
	t.mu.Lock()
	interval := t.interval
	if interval == 0 {
		t.mu.Unlock()
		return
	}
	t.count += n
	fired := t.count / interval
	t.count %= interval
	t.ticks += fired
	cores := len(t.ic.pending)
	t.mu.Unlock()
	for ; fired > 0; fired-- {
		for c := 0; c < cores; c++ {
			t.ic.RaiseOn(c, IRQTimer)
		}
	}
}

// Ticks returns the number of intervals that have fired.
func (t *Timer) Ticks() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ticks
}

// Serial is the console UART: an output log plus an input queue that
// raises IRQSerial on arrival.
type Serial struct {
	mu  sync.Mutex
	ic  *InterruptController
	out []byte
	in  []byte
}

// TX writes one byte to the console.
func (s *Serial) TX(b byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out = append(s.out, b)
}

// Output returns everything written so far.
func (s *Serial) Output() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.out)
}

// InjectInput simulates typed input, raising the serial interrupt.
func (s *Serial) InjectInput(p []byte) {
	s.mu.Lock()
	s.in = append(s.in, p...)
	s.mu.Unlock()
	s.ic.Raise(IRQSerial)
}

// RX reads one input byte; ok is false when the queue is empty.
func (s *Serial) RX() (byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.in) == 0 {
		return 0, false
	}
	b := s.in[0]
	s.in = s.in[1:]
	return b, true
}

// DiskBlockSize is the device's sector size.
const DiskBlockSize = 512

// Disk is the DMA block-storage controller: requests name a block
// number and a physical DMA address; completion raises IRQDisk and
// queues a completion record.
type Disk struct {
	mu     sync.Mutex
	m      *mem.PhysMem
	ic     *InterruptController
	blocks [][]byte
	comps  []DiskCompletion
	nextID uint64
}

// DiskCompletion describes one finished request.
type DiskCompletion struct {
	ID    uint64
	Write bool
	Block uint64
	Err   string
}

// ErrDiskRange reports an out-of-range block.
var ErrDiskRange = errors.New("machine: disk block out of range")

// NewDisk creates a disk with n blocks.
func NewDisk(m *mem.PhysMem, ic *InterruptController, n uint64) *Disk {
	return &Disk{m: m, ic: ic, blocks: make([][]byte, n)}
}

// NumBlocks returns the capacity.
func (d *Disk) NumBlocks() uint64 { return uint64(len(d.blocks)) }

// Submit queues a request: DMA between block `block` and physical
// memory at dma. The simulated controller completes it immediately but
// asynchronously from the driver's perspective: the result is only
// observable after the completion interrupt.
func (d *Disk) Submit(write bool, block uint64, dma mem.PAddr) uint64 {
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	comp := DiskCompletion{ID: id, Write: write, Block: block}
	if block >= uint64(len(d.blocks)) {
		comp.Err = ErrDiskRange.Error()
	} else if write {
		buf := make([]byte, DiskBlockSize)
		if err := d.m.Read(dma, buf); err != nil {
			comp.Err = err.Error()
		} else {
			d.blocks[block] = buf
		}
	} else {
		buf := d.blocks[block]
		if buf == nil {
			buf = make([]byte, DiskBlockSize)
		}
		if err := d.m.Write(dma, buf); err != nil {
			comp.Err = err.Error()
		}
	}
	d.comps = append(d.comps, comp)
	d.mu.Unlock()
	d.ic.Raise(IRQDisk)
	return id
}

// Complete pops the oldest completion record, if any.
func (d *Disk) Complete() (DiskCompletion, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.comps) == 0 {
		return DiskCompletion{}, false
	}
	c := d.comps[0]
	d.comps = d.comps[1:]
	return c, true
}

// MaxFrameLen bounds one network frame.
const MaxFrameLen = 1514

// NIC is the network interface: TX hands frames to the attached wire;
// RX queues inbound frames and raises IRQNIC. Frames are byte slices
// (the netstack defines the on-wire format).
type NIC struct {
	mu   sync.Mutex
	m    *mem.PhysMem
	ic   *InterruptController
	addr uint64
	rx   [][]byte
	wire func(frame []byte) // attached by the virtual network
	// drops counts frames discarded for length or missing wire.
	drops uint64
}

// NewNIC creates a NIC with the given address.
func NewNIC(m *mem.PhysMem, ic *InterruptController, addr uint64) *NIC {
	return &NIC{m: m, ic: ic, addr: addr}
}

// Addr returns the interface address.
func (n *NIC) Addr() uint64 { return n.addr }

// AttachWire connects the NIC's transmit side; the virtual network
// (internal/netstack) calls Deliver on the peer.
func (n *NIC) AttachWire(wire func(frame []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wire = wire
}

// TX transmits one frame.
func (n *NIC) TX(frame []byte) error {
	if len(frame) > MaxFrameLen {
		n.mu.Lock()
		n.drops++
		n.mu.Unlock()
		return fmt.Errorf("machine: frame of %d bytes exceeds MTU", len(frame))
	}
	n.mu.Lock()
	wire := n.wire
	if wire == nil {
		n.drops++
	}
	n.mu.Unlock()
	if wire == nil {
		return nil // cable unplugged: silently dropped, like hardware
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	wire(cp)
	return nil
}

// Deliver queues an inbound frame (called by the virtual network) and
// raises the receive interrupt.
func (n *NIC) Deliver(frame []byte) {
	if len(frame) > MaxFrameLen {
		n.mu.Lock()
		n.drops++
		n.mu.Unlock()
		return
	}
	cp := make([]byte, len(frame))
	copy(cp, frame)
	n.mu.Lock()
	n.rx = append(n.rx, cp)
	n.mu.Unlock()
	n.ic.Raise(IRQNIC)
}

// RX pops the oldest received frame.
func (n *NIC) RX() ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.rx) == 0 {
		return nil, false
	}
	f := n.rx[0]
	n.rx = n.rx[1:]
	return f, true
}

// Drops returns the number of dropped frames.
func (n *NIC) Drops() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.drops
}
