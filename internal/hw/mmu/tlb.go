package mmu

import (
	"sync"

	"github.com/verified-os/vnros/internal/hw/mem"
)

// TLB models a translation lookaside buffer: a bounded cache of page
// translations keyed by (address-space tag, virtual page base). It
// captures the property that matters for correctness arguments — a
// translation may be served from the TLB until explicitly invalidated —
// rather than any particular associativity.
//
// The unmap path of the page-table implementation must invalidate before
// it can assume the mapping is gone; the hardware-spec VCs include a
// "stale TLB" scenario showing the MMU really does keep serving cached
// translations after the PTE bits are cleared.
type TLB struct {
	mu      sync.Mutex
	cap     int
	entries map[tlbKey]*tlbEntry
	clock   uint64 // for FIFO-ish eviction

	hits   uint64
	misses uint64
}

type tlbKey struct {
	asid uint16
	base VAddr
}

type tlbEntry struct {
	tr    Translation
	stamp uint64
}

// DefaultTLBSize is the default number of cached translations, roughly a
// contemporary L2 STLB.
const DefaultTLBSize = 1536

// NewTLB returns a TLB holding at most capacity translations.
// A non-positive capacity selects DefaultTLBSize.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		capacity = DefaultTLBSize
	}
	return &TLB{cap: capacity, entries: make(map[tlbKey]*tlbEntry)}
}

// Lookup returns the cached translation covering va in the given address
// space, if any. The caller must still perform permission checks; the
// TLB caches the translation including its permission bits, as hardware
// does.
func (t *TLB) Lookup(asid uint16, va VAddr) (Translation, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Probe each supported page size: hardware probes set-indexed by
	// page size; three map probes model that faithfully enough.
	for _, size := range []uint64{L1PageSize, L2PageSize, L3PageSize} {
		if e, ok := t.entries[tlbKey{asid, va.PageBase(size)}]; ok && e.tr.PageSize == size {
			t.hits++
			tr := e.tr
			tr.PAddr = tr.Frame + mem.PAddr(va.PageOffset(size))
			return tr, true
		}
	}
	t.misses++
	return Translation{}, false
}

// Insert caches a translation for the given address space.
func (t *TLB) Insert(asid uint16, tr Translation) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) >= t.cap {
		t.evictLocked()
	}
	t.clock++
	t.entries[tlbKey{asid, tr.Base}] = &tlbEntry{tr: tr, stamp: t.clock}
}

// evictLocked removes the oldest entry.
func (t *TLB) evictLocked() {
	var victim tlbKey
	var oldest uint64 = ^uint64(0)
	for k, e := range t.entries {
		if e.stamp < oldest {
			oldest = e.stamp
			victim = k
		}
	}
	delete(t.entries, victim)
}

// Invalidate drops any cached translation covering va in the given
// address space (the invlpg instruction).
func (t *TLB) Invalidate(asid uint16, va VAddr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, size := range []uint64{L1PageSize, L2PageSize, L3PageSize} {
		delete(t.entries, tlbKey{asid, va.PageBase(size)})
	}
}

// InvalidateASID drops all non-global translations for one address space
// (a CR3 write without PCID preservation).
func (t *TLB) InvalidateASID(asid uint16) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, e := range t.entries {
		if k.asid == asid && !e.tr.Global {
			delete(t.entries, k)
		}
	}
}

// Flush drops everything, including global entries (CR4.PGE toggle).
func (t *TLB) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = make(map[tlbKey]*tlbEntry)
}

// Len returns the number of cached translations.
func (t *TLB) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// HitRate returns hits and misses since creation.
func (t *TLB) HitRate() (hits, misses uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}
