// Package mmu is the hardware specification of the simulated x86-64
// memory management unit (§5 of the paper).
//
// It defines the architectural page-table entry bit layout, a 4-level
// page-walk interpreter that reads page-table bits out of simulated
// physical memory exactly as the hardware would, and a TLB model with
// explicit invalidation. The page-table implementation in internal/pt is
// proven (by the refinement obligations in internal/pt and the VC engine)
// to produce memory states that this interpreter decodes to the intended
// abstract map from virtual addresses to page mappings.
package mmu

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
)

// VAddr is a virtual byte address.
type VAddr uint64

// Virtual address geometry for 4-level (48-bit) x86-64 paging.
const (
	// Levels is the depth of the page-table tree (PML4, PDPT, PD, PT).
	Levels = 4
	// IndexBits is the number of virtual address bits consumed per level.
	IndexBits = 9
	// EntriesPerTable is the number of entries in one table frame.
	EntriesPerTable = 1 << IndexBits
	// VABits is the number of translated virtual address bits.
	VABits = 48
	// L1PageSize is the bytes mapped by one level-1 (PT) entry: 4 KiB.
	L1PageSize = 1 << 12
	// L2PageSize is the bytes mapped by one level-2 (PD) huge entry: 2 MiB.
	L2PageSize = 1 << 21
	// L3PageSize is the bytes mapped by one level-3 (PDPT) huge entry: 1 GiB.
	L3PageSize = 1 << 30
)

// PageSizeAtLevel returns the bytes mapped by a leaf entry at the given
// level (1, 2 or 3). Level 4 entries can never be leaves.
func PageSizeAtLevel(level int) uint64 {
	switch level {
	case 1:
		return L1PageSize
	case 2:
		return L2PageSize
	case 3:
		return L3PageSize
	}
	panic(fmt.Sprintf("mmu: no leaf pages at level %d", level))
}

// Index returns the 9-bit table index used at the given level (4 = PML4
// down to 1 = PT), mirroring the hardware's bit slicing.
func (v VAddr) Index(level int) uint64 {
	shift := uint(12 + IndexBits*(level-1))
	return (uint64(v) >> shift) & (EntriesPerTable - 1)
}

// PageOffset returns the offset of v within a page of the given size.
func (v VAddr) PageOffset(pageSize uint64) uint64 { return uint64(v) & (pageSize - 1) }

// PageBase returns v rounded down to a multiple of pageSize.
func (v VAddr) PageBase(pageSize uint64) VAddr { return v &^ VAddr(pageSize-1) }

// IsCanonical reports whether v is a canonical 48-bit virtual address:
// bits 63..47 must all equal bit 47. Non-canonical addresses fault in
// hardware before translation begins.
func (v VAddr) IsCanonical() bool {
	top := uint64(v) >> (VABits - 1)
	return top == 0 || top == (1<<(64-VABits+1))-1
}

func (v VAddr) String() string { return fmt.Sprintf("va:%#x", uint64(v)) }

// Access is the kind of memory access being translated; it selects which
// permission bits the MMU checks.
type Access int

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
	AccessUserRead
	AccessUserWrite
	AccessUserExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	case AccessUserRead:
		return "user-read"
	case AccessUserWrite:
		return "user-write"
	case AccessUserExec:
		return "user-exec"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// isUser reports whether the access originates from CPL 3.
func (a Access) isUser() bool { return a >= AccessUserRead }

// isWrite reports whether the access stores to memory.
func (a Access) isWrite() bool { return a == AccessWrite || a == AccessUserWrite }

// isExec reports whether the access fetches an instruction.
func (a Access) isExec() bool { return a == AccessExec || a == AccessUserExec }

// Fault is a simulated page fault: the architectural error information
// the CPU would push for this failed translation.
type Fault struct {
	Addr    VAddr
	Access  Access
	Present bool // fault on a present entry (permission) vs non-present
	Reason  string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: page fault at %v during %v (present=%t): %s",
		f.Addr, f.Access, f.Present, f.Reason)
}

// Translation is the successful result of a page walk: the physical
// address plus the mapping's page geometry and effective permissions, as
// cached by the TLB.
type Translation struct {
	PAddr    mem.PAddr // translated physical address for the probed VAddr
	Base     VAddr     // virtual base of the containing page
	Frame    mem.PAddr // physical base of the containing page
	PageSize uint64
	Writable bool
	User     bool
	NoExec   bool
	Global   bool
	// Dirty records whether the hardware has already set the leaf's
	// dirty bit for this cached translation; a write through a clean
	// cached translation forces a re-walk to set it, as hardware does.
	Dirty bool
}
