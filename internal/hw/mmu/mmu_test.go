package mmu

import (
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/verifier"
)

// buildTables hand-constructs a minimal 4-level page table in physical
// memory mapping va -> frame with the given flags, without using the
// page-table implementation under test elsewhere. Returns the root.
func buildTables(t *testing.T, m *mem.PhysMem, va VAddr, frame mem.PAddr, f Flags) mem.PAddr {
	t.Helper()
	// Fixed frames for the four levels.
	root := mem.PAddr(0x1000)
	l3 := mem.PAddr(0x2000)
	l2 := mem.PAddr(0x3000)
	l1 := mem.PAddr(0x4000)
	mustWrite := func(a mem.PAddr, v uint64) {
		t.Helper()
		if err := m.Write64(a, v); err != nil {
			t.Fatalf("Write64(%v): %v", a, err)
		}
	}
	mustWrite(EntryAddr(root, va, 4), MakeTable(4, l3).Raw)
	mustWrite(EntryAddr(l3, va, 3), MakeTable(3, l2).Raw)
	mustWrite(EntryAddr(l2, va, 2), MakeTable(2, l1).Raw)
	mustWrite(EntryAddr(l1, va, 1), MakeLeaf(1, frame, f).Raw)
	return root
}

func TestIndexSlicing(t *testing.T) {
	// va = PML4 idx 1, PDPT idx 2, PD idx 3, PT idx 4, offset 5.
	va := VAddr(1<<39 | 2<<30 | 3<<21 | 4<<12 | 5)
	if got := va.Index(4); got != 1 {
		t.Errorf("Index(4) = %d, want 1", got)
	}
	if got := va.Index(3); got != 2 {
		t.Errorf("Index(3) = %d, want 2", got)
	}
	if got := va.Index(2); got != 3 {
		t.Errorf("Index(2) = %d, want 3", got)
	}
	if got := va.Index(1); got != 4 {
		t.Errorf("Index(1) = %d, want 4", got)
	}
	if got := va.PageOffset(L1PageSize); got != 5 {
		t.Errorf("PageOffset = %d, want 5", got)
	}
}

func TestCanonical(t *testing.T) {
	cases := []struct {
		va VAddr
		ok bool
	}{
		{0, true},
		{0x7fff_ffff_ffff, true},       // top of lower half
		{0x8000_0000_0000, false},      // just past
		{0xffff_8000_0000_0000, true},  // bottom of upper half
		{0xffff_ffff_ffff_ffff, true},  // -1
		{0x0000_f000_0000_0000, false}, // stray bit 47..? actually bit 47 set but 48+ clear
		{0xfff0_0000_0000_0000, false}, // bits 63.. set but 47 clear
	}
	for _, c := range cases {
		if got := c.va.IsCanonical(); got != c.ok {
			t.Errorf("IsCanonical(%v) = %v, want %v", c.va, got, c.ok)
		}
	}
}

func TestWalkSuccess(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_7f12_3456_7000) + 0xabc
	frame := mem.PAddr(0x9000)
	root := buildTables(t, m, va, frame, Flags{Writable: true, User: true})

	w := Walker{Mem: m}
	res := w.Walk(root, va, AccessUserWrite)
	if res.Fault != nil {
		t.Fatalf("walk faulted: %v", res.Fault)
	}
	tr := res.Translation
	if tr.PAddr != frame+0xabc {
		t.Errorf("PAddr = %v, want %v", tr.PAddr, frame+0xabc)
	}
	if tr.Base != va.PageBase(L1PageSize) || tr.Frame != frame || tr.PageSize != L1PageSize {
		t.Errorf("geometry wrong: %+v", tr)
	}
	if !tr.Writable || !tr.User || tr.NoExec {
		t.Errorf("flags wrong: %+v", tr)
	}
	if len(res.Path) != 4 {
		t.Errorf("path length = %d, want 4", len(res.Path))
	}
}

func TestWalkNotPresent(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x1000)
	root := buildTables(t, m, va, 0x9000, Flags{})
	w := Walker{Mem: m}
	res := w.Walk(root, va+L1PageSize, AccessRead) // neighbouring page unmapped
	if res.Fault == nil {
		t.Fatal("expected fault for unmapped page")
	}
	if res.Fault.Present {
		t.Error("fault should be non-present")
	}
}

func TestWalkPermissionFaults(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_1234_5600_0000)
	root := buildTables(t, m, va, 0x9000, Flags{Writable: false, User: false, NoExec: true})
	w := Walker{Mem: m}

	if res := w.Walk(root, va, AccessRead); res.Fault != nil {
		t.Errorf("supervisor read should succeed: %v", res.Fault)
	}
	if res := w.Walk(root, va, AccessWrite); res.Fault == nil || !res.Fault.Present {
		t.Error("write to read-only page should present-fault")
	}
	if res := w.Walk(root, va, AccessUserRead); res.Fault == nil {
		t.Error("user read of supervisor page should fault")
	}
	if res := w.Walk(root, va, AccessExec); res.Fault == nil {
		t.Error("exec of XD page should fault")
	}
}

func TestWalkNonCanonicalFaults(t *testing.T) {
	m := mem.New(1 << 24)
	w := Walker{Mem: m}
	res := w.Walk(0x1000, VAddr(0x8000_0000_0000), AccessRead)
	if res.Fault == nil || len(res.Path) != 0 {
		t.Fatal("non-canonical address must fault before any load")
	}
}

func TestHugePageWalk(t *testing.T) {
	m := mem.New(1 << 24)
	root := mem.PAddr(0x1000)
	l3 := mem.PAddr(0x2000)
	l2 := mem.PAddr(0x3000)
	va := VAddr(3 << 21) // third 2 MiB page
	frame := mem.PAddr(0x40_0000)
	if err := m.Write64(EntryAddr(root, va, 4), MakeTable(4, l3).Raw); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(EntryAddr(l3, va, 3), MakeTable(3, l2).Raw); err != nil {
		t.Fatal(err)
	}
	if err := m.Write64(EntryAddr(l2, va, 2), MakeLeaf(2, frame, Flags{Writable: true}).Raw); err != nil {
		t.Fatal(err)
	}
	w := Walker{Mem: m}
	res := w.Walk(root, va+0x12345, AccessRead)
	if res.Fault != nil {
		t.Fatalf("huge walk faulted: %v", res.Fault)
	}
	if res.Translation.PageSize != L2PageSize {
		t.Errorf("page size = %d, want %d", res.Translation.PageSize, L2PageSize)
	}
	if res.Translation.PAddr != frame+0x12345 {
		t.Errorf("PAddr = %v", res.Translation.PAddr)
	}
	if len(res.Path) != 3 {
		t.Errorf("path length = %d, want 3", len(res.Path))
	}
}

func TestMisalignedHugeLeafIsMalformed(t *testing.T) {
	e := Entry{Raw: BitPresent | BitPageSize | 0x1000, Level: 2} // 4K-aligned base for 2M page
	if e.Valid() {
		t.Error("misaligned 2 MiB leaf should be invalid")
	}
	if MakeLeaf(2, 0x40_0000, Flags{}).Valid() != true {
		t.Error("aligned 2 MiB leaf should be valid")
	}
}

func TestLevel4PSIsMalformed(t *testing.T) {
	e := Entry{Raw: BitPresent | BitPageSize, Level: 4}
	if e.Valid() {
		t.Error("PML4E with PS set must be invalid")
	}
}

func TestEntryRoundTrip(t *testing.T) {
	f := func(frame uint32, w, u, nx, g bool) bool {
		fr := mem.PAddr(frame) << 12 // any 4K-aligned frame
		fl := Flags{Writable: w, User: u, NoExec: nx, Global: g}
		e := MakeLeaf(1, fr, fl)
		return e.Present() && e.IsLeaf() && e.Addr() == fr && e.LeafFlags() == fl && e.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMMUTranslateAndTLBHit(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_0042_0000_0000)
	root := buildTables(t, m, va, 0x9000, Flags{Writable: true, User: true})
	u := New(m)
	u.SetRoot(root, 1)

	if _, f := u.Translate(va, AccessRead); f != nil {
		t.Fatalf("translate: %v", f)
	}
	hits0, misses0 := u.TLB().HitRate()
	if _, f := u.Translate(va+8, AccessRead); f != nil {
		t.Fatalf("second translate: %v", f)
	}
	hits1, _ := u.TLB().HitRate()
	if hits1 != hits0+1 {
		t.Errorf("expected TLB hit (hits %d -> %d, misses0 %d)", hits0, hits1, misses0)
	}
}

// TestStaleTLBServesOldTranslation is the hardware-spec scenario that
// justifies the unmap path's invalidation obligation: clearing the PTE
// bits alone does NOT stop the MMU from translating.
func TestStaleTLBServesOldTranslation(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_0100_0000_0000)
	root := buildTables(t, m, va, 0x9000, Flags{Writable: true, User: true})
	u := New(m)
	u.SetRoot(root, 1)

	if _, f := u.Translate(va, AccessRead); f != nil {
		t.Fatalf("translate: %v", f)
	}
	// Clear the leaf PTE directly, as a buggy unmap (no invlpg) would.
	l1 := mem.PAddr(0x4000)
	if err := m.Write64(EntryAddr(l1, va, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, f := u.Translate(va, AccessRead); f != nil {
		t.Fatal("MMU must still serve the stale cached translation")
	}
	u.Invlpg(va)
	if _, f := u.Translate(va, AccessRead); f == nil {
		t.Fatal("after invlpg the unmapped page must fault")
	}
}

func TestADBitsSet(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_0007_0000_0000)
	root := buildTables(t, m, va, 0x9000, Flags{Writable: true})
	u := NewWithTLB(m, NewTLB(1)) // tiny TLB, but first access walks anyway
	u.SetRoot(root, 0)

	if _, f := u.Translate(va, AccessRead); f != nil {
		t.Fatalf("translate: %v", f)
	}
	l1 := mem.PAddr(0x4000)
	raw, _ := m.Read64(EntryAddr(l1, va, 1))
	e := Entry{Raw: raw, Level: 1}
	if !e.Accessed() {
		t.Error("accessed bit not set after read")
	}
	if e.Dirty() {
		t.Error("dirty bit set after read-only access")
	}

	if _, f := u.Translate(va, AccessWrite); f != nil {
		t.Fatalf("translate write: %v", f)
	}
	raw, _ = m.Read64(EntryAddr(l1, va, 1))
	if !(Entry{Raw: raw, Level: 1}).Dirty() {
		t.Error("dirty bit not set after write")
	}
}

func TestMMUReadWriteVirtual(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_0009_0000_0000)
	root := buildTables(t, m, va, 0x9000, Flags{Writable: true, User: true})
	u := New(m)
	u.SetRoot(root, 1)

	msg := []byte("hello, verified world")
	if f := u.Write(va+100, msg); f != nil {
		t.Fatalf("virtual write: %v", f)
	}
	got := make([]byte, len(msg))
	if f := u.Read(va+100, got); f != nil {
		t.Fatalf("virtual read: %v", f)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip = %q", got)
	}
	// The bytes must be physically at frame+100.
	phys := make([]byte, len(msg))
	if err := m.Read(0x9000+100, phys); err != nil {
		t.Fatal(err)
	}
	if string(phys) != string(msg) {
		t.Fatalf("physical bytes = %q", phys)
	}
}

func TestUserAccessToSupervisorPageFaults(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_000a_0000_0000)
	root := buildTables(t, m, va, 0x9000, Flags{Writable: true, User: false})
	u := New(m)
	u.SetRoot(root, 1)
	if f := u.ReadUser(va, make([]byte, 8)); f == nil {
		t.Fatal("user read of supervisor page must fault")
	}
	if f := u.Read(va, make([]byte, 8)); f != nil {
		t.Fatalf("supervisor read should pass: %v", f)
	}
}

func TestInterpretMatchesWalk(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0x0000_7f12_3456_7000)
	frame := mem.PAddr(0x9000)
	root := buildTables(t, m, va, frame, Flags{Writable: true, User: true})

	w := Walker{Mem: m}
	abs, err := w.Interpret(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 1 {
		t.Fatalf("interpretation has %d entries, want 1", len(abs))
	}
	tr, ok := abs[va.PageBase(L1PageSize)]
	if !ok {
		t.Fatalf("no entry for %v; got %v", va.PageBase(L1PageSize), abs)
	}
	if tr.Frame != frame || tr.PageSize != L1PageSize || !tr.Writable {
		t.Errorf("interpretation wrong: %+v", tr)
	}
}

func TestInterpretCanonicalizesUpperHalf(t *testing.T) {
	m := mem.New(1 << 24)
	va := VAddr(0xffff_8000_0000_0000) // first upper-half address
	root := buildTables(t, m, va, 0x9000, Flags{Writable: true})
	w := Walker{Mem: m}
	abs, err := w.Interpret(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := abs[va]; !ok {
		t.Fatalf("upper-half mapping missing; got keys %v", keysOf(abs))
	}
}

func keysOf(m map[VAddr]Translation) []VAddr {
	out := make([]VAddr, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTLBEviction(t *testing.T) {
	tlb := NewTLB(2)
	mk := func(base VAddr) Translation {
		return Translation{Base: base, Frame: 0x1000, PageSize: L1PageSize}
	}
	tlb.Insert(0, mk(0x1000))
	tlb.Insert(0, mk(0x2000))
	tlb.Insert(0, mk(0x3000)) // evicts 0x1000 (oldest)
	if tlb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tlb.Len())
	}
	if _, ok := tlb.Lookup(0, 0x1000); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, ok := tlb.Lookup(0, 0x3000); !ok {
		t.Error("newest entry missing")
	}
}

func TestTLBASIDIsolation(t *testing.T) {
	tlb := NewTLB(8)
	tr := Translation{Base: 0x1000, Frame: 0x2000, PageSize: L1PageSize}
	tlb.Insert(1, tr)
	if _, ok := tlb.Lookup(2, 0x1000); ok {
		t.Error("translation leaked across ASIDs")
	}
	g := tr
	g.Global = true
	g.Base = 0x5000
	tlb.Insert(1, g)
	tlb.InvalidateASID(1)
	if _, ok := tlb.Lookup(1, 0x1000); ok {
		t.Error("non-global entry survived ASID invalidation")
	}
	if _, ok := tlb.Lookup(1, 0x5000); !ok {
		t.Error("global entry must survive ASID invalidation")
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Error("flush must drop everything")
	}
}

// Property: for random virtual pages and frames, walk(buildTables(va)) ==
// frame mapping with correct offset arithmetic.
func TestQuickWalkRoundTrip(t *testing.T) {
	f := func(pageIdx uint32, off uint16, frameIdx uint16) bool {
		m := mem.New(1 << 24)
		va := VAddr(uint64(pageIdx)%(1<<(VABits-13))) << 12 // lower half only
		frame := mem.PAddr(0x9000)
		_ = frameIdx
		root := mem.PAddr(0x1000)
		l3, l2, l1 := mem.PAddr(0x2000), mem.PAddr(0x3000), mem.PAddr(0x4000)
		if m.Write64(EntryAddr(root, va, 4), MakeTable(4, l3).Raw) != nil {
			return false
		}
		if m.Write64(EntryAddr(l3, va, 3), MakeTable(3, l2).Raw) != nil {
			return false
		}
		if m.Write64(EntryAddr(l2, va, 2), MakeTable(2, l1).Raw) != nil {
			return false
		}
		if m.Write64(EntryAddr(l1, va, 1), MakeLeaf(1, frame, Flags{Writable: true}).Raw) != nil {
			return false
		}
		w := Walker{Mem: m}
		probe := va + VAddr(off)%L1PageSize
		res := w.Walk(root, probe, AccessRead)
		if res.Fault != nil {
			return false
		}
		return res.Translation.PAddr == frame+mem.PAddr(uint64(probe)-uint64(va))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 97})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
