package mmu

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the third hardware-spec wave: virtual
// read/write through the MMU against a reference, CR3/ASID switch
// semantics, cross-page access splitting, and canonicalization of the
// interpretation function.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "hw/mmu", Name: "virtual-rw-matches-physical", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 24)
				va := VAddr(0x4000_0000)
				frame := mem.PAddr(0x20_0000)
				root := buildFourLevel(m, va, frame, Flags{Writable: true, User: true})
				// Map the next page too, for cross-page accesses.
				l1 := mem.PAddr(0x4000)
				if err := m.Write64(EntryAddr(l1, va+L1PageSize, 1),
					MakeLeaf(1, frame+L1PageSize, Flags{Writable: true, User: true}).Raw); err != nil {
					return err
				}
				u := New(m)
				u.SetRoot(root, 1)
				for i := 0; i < 200; i++ {
					off := VAddr(r.Intn(2*L1PageSize - 600))
					p := make([]byte, 1+r.Intn(512))
					r.Read(p)
					if f := u.Write(va+off, p); f != nil {
						return fmt.Errorf("virtual write at +%#x: %v", uint64(off), f)
					}
					phys := make([]byte, len(p))
					if err := m.Read(frame+mem.PAddr(off), phys); err != nil {
						return err
					}
					if !bytes.Equal(phys, p) {
						return fmt.Errorf("virtual write landed wrong at +%#x", uint64(off))
					}
					back := make([]byte, len(p))
					if f := u.Read(va+off, back); f != nil {
						return fmt.Errorf("virtual read: %v", f)
					}
					if !bytes.Equal(back, p) {
						return fmt.Errorf("virtual read diverged at +%#x", uint64(off))
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "cr3-switch-isolates-spaces", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Two address spaces mapping the same VA to different
				// frames; switching CR3 with distinct ASIDs must route
				// accesses to the right frame, including TLB-warm paths.
				m := mem.New(1 << 24)
				va := VAddr(0x4000_0000)
				rootA := buildFourLevel(m, va, 0x20_0000, Flags{Writable: true})
				// Second space at different table frames.
				rootB := mem.PAddr(0x8000)
				l3, l2, l1 := mem.PAddr(0x9000), mem.PAddr(0xa000), mem.PAddr(0xb000)
				_ = m.Write64(EntryAddr(rootB, va, 4), MakeTable(4, l3).Raw)
				_ = m.Write64(EntryAddr(l3, va, 3), MakeTable(3, l2).Raw)
				_ = m.Write64(EntryAddr(l2, va, 2), MakeTable(2, l1).Raw)
				_ = m.Write64(EntryAddr(l1, va, 1), MakeLeaf(1, 0x30_0000, Flags{Writable: true}).Raw)

				u := New(m)
				for i := 0; i < 50; i++ {
					u.SetRoot(rootA, 1)
					tr, f := u.Translate(va, AccessRead)
					if f != nil || tr.Frame != 0x20_0000 {
						return fmt.Errorf("space A translated to %v (%v)", tr.Frame, f)
					}
					u.SetRoot(rootB, 2)
					tr, f = u.Translate(va, AccessRead)
					if f != nil || tr.Frame != 0x30_0000 {
						return fmt.Errorf("space B translated to %v (%v)", tr.Frame, f)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "interpret-canonicalizes-upper-half", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 24)
				va := VAddr(0xffff_8000_0000_0000 + uint64(r.Intn(1024))*L1PageSize)
				root := buildFourLevel(m, va, 0x20_0000, Flags{Writable: true})
				w := Walker{Mem: m}
				abs, err := w.Interpret(root)
				if err != nil {
					return err
				}
				tr, ok := abs[va]
				if !ok {
					return fmt.Errorf("upper-half mapping %v missing from interpretation", va)
				}
				if !tr.Base.IsCanonical() {
					return fmt.Errorf("interpretation key %v not canonical", tr.Base)
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "fault-reports-access-kind", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 24)
				va := VAddr(0x4000_0000)
				root := buildFourLevel(m, va, 0x20_0000, Flags{Writable: false, User: false})
				w := Walker{Mem: m}
				for _, a := range []Access{AccessWrite, AccessUserRead, AccessUserWrite} {
					res := w.Walk(root, va, a)
					if res.Fault == nil {
						return fmt.Errorf("%v did not fault on RO supervisor page", a)
					}
					if res.Fault.Access != a || res.Fault.Addr != va || !res.Fault.Present {
						return fmt.Errorf("fault info wrong for %v: %+v", a, res.Fault)
					}
				}
				res := w.Walk(root, va+L1PageSize, AccessRead)
				if res.Fault == nil || res.Fault.Present {
					return fmt.Errorf("non-present fault misreported: %+v", res.Fault)
				}
				return nil
			}},
	)
}
