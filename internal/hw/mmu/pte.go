package mmu

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
)

// Architectural x86-64 page-table entry bits. These are the real bit
// positions from the Intel SDM; the page-table implementation writes
// them and this package interprets them.
const (
	BitPresent   uint64 = 1 << 0  // P: entry is valid
	BitWritable  uint64 = 1 << 1  // R/W: writes allowed
	BitUser      uint64 = 1 << 2  // U/S: user-mode access allowed
	BitPWT       uint64 = 1 << 3  // page-level write-through
	BitPCD       uint64 = 1 << 4  // page-level cache disable
	BitAccessed  uint64 = 1 << 5  // A: set by hardware on access
	BitDirty     uint64 = 1 << 6  // D: set by hardware on write (leaf only)
	BitPageSize  uint64 = 1 << 7  // PS: leaf at level 2/3 (huge page)
	BitGlobal    uint64 = 1 << 8  // G: not flushed on CR3 switch (leaf only)
	BitNoExecute uint64 = 1 << 63 // XD: instruction fetches disallowed

	// addrMask extracts the 52-bit physical frame base from an entry.
	addrMask uint64 = ((1 << 52) - 1) &^ ((1 << 12) - 1)
)

// Entry is a raw 64-bit page-table entry at a known level. The level is
// needed to decide whether BitPageSize means "huge leaf" (levels 2, 3) or
// is reserved (level 1 interprets bit 7 as PAT, which we do not model;
// level 4 entries with PS set are architecture-invalid).
type Entry struct {
	Raw   uint64
	Level int // 4 = PML4E, 3 = PDPTE, 2 = PDE, 1 = PTE
}

// Present reports whether the entry is valid.
func (e Entry) Present() bool { return e.Raw&BitPresent != 0 }

// Writable reports the R/W bit.
func (e Entry) Writable() bool { return e.Raw&BitWritable != 0 }

// User reports the U/S bit.
func (e Entry) User() bool { return e.Raw&BitUser != 0 }

// NoExec reports the XD bit.
func (e Entry) NoExec() bool { return e.Raw&BitNoExecute != 0 }

// Global reports the G bit (meaningful on leaves only).
func (e Entry) Global() bool { return e.Raw&BitGlobal != 0 }

// Accessed reports the A bit.
func (e Entry) Accessed() bool { return e.Raw&BitAccessed != 0 }

// Dirty reports the D bit.
func (e Entry) Dirty() bool { return e.Raw&BitDirty != 0 }

// IsLeaf reports whether the present entry maps a page directly rather
// than pointing at a lower-level table. Level-1 entries are always
// leaves; level-2/3 entries are leaves when PS is set; level-4 entries
// are never leaves.
func (e Entry) IsLeaf() bool {
	if !e.Present() {
		return false
	}
	switch e.Level {
	case 1:
		return true
	case 2, 3:
		return e.Raw&BitPageSize != 0
	default:
		return false
	}
}

// Addr returns the physical address payload: the mapped frame base for a
// leaf, or the next-level table base otherwise.
func (e Entry) Addr() mem.PAddr { return mem.PAddr(e.Raw & addrMask) }

// Valid reports whether a present entry is architecturally well formed:
// the payload address must be aligned to the mapped page size for leaves
// (the hardware treats misaligned huge-page bases as reserved-bit
// faults), and level-4 entries must not set PS.
func (e Entry) Valid() bool {
	if !e.Present() {
		return true // non-present entries are ignored entirely
	}
	if e.Level == 4 && e.Raw&BitPageSize != 0 {
		return false
	}
	if e.IsLeaf() {
		size := PageSizeAtLevel(e.Level)
		return uint64(e.Addr())%size == 0
	}
	return true
}

func (e Entry) String() string {
	if !e.Present() {
		return fmt.Sprintf("L%d[not present]", e.Level)
	}
	flags := ""
	for _, f := range []struct {
		bit  uint64
		name string
	}{
		{BitWritable, "W"}, {BitUser, "U"}, {BitAccessed, "A"},
		{BitDirty, "D"}, {BitPageSize, "PS"}, {BitGlobal, "G"},
		{BitNoExecute, "XD"},
	} {
		if e.Raw&f.bit != 0 {
			flags += f.name
		}
	}
	return fmt.Sprintf("L%d[%v %s]", e.Level, e.Addr(), flags)
}

// Flags is the portable permission set used by the page-table API; the
// implementation encodes it into architectural bits and the walk decodes
// it back.
type Flags struct {
	Writable bool
	User     bool
	NoExec   bool
	Global   bool
}

// MakeLeaf builds a present leaf entry at the given level mapping the
// (suitably aligned) frame with the given flags.
func MakeLeaf(level int, frame mem.PAddr, f Flags) Entry {
	raw := uint64(frame) & addrMask
	raw |= BitPresent
	if level == 2 || level == 3 {
		raw |= BitPageSize
	}
	if f.Writable {
		raw |= BitWritable
	}
	if f.User {
		raw |= BitUser
	}
	if f.NoExec {
		raw |= BitNoExecute
	}
	if f.Global {
		raw |= BitGlobal
	}
	return Entry{Raw: raw, Level: level}
}

// MakeTable builds a present non-leaf entry at the given level pointing
// at a lower-level table frame. Directory entries are maximally
// permissive (writable + user); effective permissions are the AND along
// the walk, so leaves carry the real policy. This matches how NrOS
// builds its tables and keeps the interpretation function simple.
func MakeTable(level int, table mem.PAddr) Entry {
	raw := uint64(table) & addrMask
	raw |= BitPresent | BitWritable | BitUser
	return Entry{Raw: raw, Level: level}
}

// LeafFlags extracts the portable flags from a leaf entry.
func (e Entry) LeafFlags() Flags {
	return Flags{
		Writable: e.Writable(),
		User:     e.User(),
		NoExec:   e.NoExec(),
		Global:   e.Global(),
	}
}
