package mmu

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the hardware-spec verification
// conditions for the MMU model: the permission matrix, entry encoding
// bijectivity, walk/interpret agreement, canonical-address handling,
// TLB staleness and invalidation semantics, and accessed/dirty bits —
// the facts the page-table refinement proof assumes about the hardware.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "hw/mmu", Name: "entry-encoding-bijective", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				// All 16 flag combinations at every leaf level, random
				// aligned frames: encode→decode is the identity, and
				// distinct inputs give distinct raw entries.
				seen := make(map[uint64]bool)
				for level := 1; level <= 2; level++ {
					size := PageSizeAtLevel(level)
					for bits := 0; bits < 16; bits++ {
						fl := Flags{
							Writable: bits&1 != 0, User: bits&2 != 0,
							NoExec: bits&4 != 0, Global: bits&8 != 0,
						}
						frame := mem.PAddr(uint64(1+r.Intn(1024)) * size)
						e := MakeLeaf(level, frame, fl)
						if !e.Valid() || !e.IsLeaf() || e.Addr() != frame || e.LeafFlags() != fl {
							return fmt.Errorf("leaf round trip failed: level %d flags %+v", level, fl)
						}
						key := e.Raw ^ uint64(level)<<60
						if seen[key] {
							return fmt.Errorf("entry encoding collision at level %d bits %d", level, bits)
						}
						seen[key] = true
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "permission-matrix", Kind: verifier.KindModelCheck,
			Check: func(r *rand.Rand) error {
				// Exhaustive: every (flags, access kind) pair behaves per
				// the architectural rules (supervisor ignores U/S for
				// data, honors XD; user requires U; writes require W).
				accesses := []Access{AccessRead, AccessWrite, AccessExec,
					AccessUserRead, AccessUserWrite, AccessUserExec}
				for bits := 0; bits < 8; bits++ {
					fl := Flags{Writable: bits&1 != 0, User: bits&2 != 0, NoExec: bits&4 != 0}
					m := mem.New(1 << 24)
					root := buildFourLevel(m, 0x4000_0000, 0x9000, fl)
					w := Walker{Mem: m}
					for _, a := range accesses {
						res := w.Walk(root, 0x4000_0000, a)
						wantFault := false
						if a.isUser() && !fl.User {
							wantFault = true
						}
						if a.isWrite() && !fl.Writable {
							wantFault = true
						}
						if a.isExec() && fl.NoExec {
							wantFault = true
						}
						if (res.Fault != nil) != wantFault {
							return fmt.Errorf("flags %+v access %v: fault=%v want %v",
								fl, a, res.Fault, wantFault)
						}
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "walk-interpret-agreement", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Build random multi-entry tables; the interpretation
				// function and individual walks must agree everywhere.
				m := mem.New(1 << 24)
				fl := Flags{Writable: true, User: true}
				var vas []VAddr
				root := mem.PAddr(0x1000)
				next := mem.PAddr(0x2000)
				alloc := func() mem.PAddr { a := next; next += mem.PageSize; return a }
				tables := map[string]mem.PAddr{} // path key -> table frame
				for i := 0; i < 24; i++ {
					va := VAddr(uint64(r.Intn(1<<20)) * L1PageSize)
					if uint64(va)&(1<<(VABits-1)) != 0 {
						continue
					}
					// Build/reuse the path.
					table := root
					okPath := true
					for level := Levels; level > 1; level-- {
						key := fmt.Sprintf("%d/%d", level, va.Index(level))
						slotAddr := EntryAddr(table, va, level)
						raw, err := m.Read64(slotAddr)
						if err != nil {
							return err
						}
						e := Entry{Raw: raw, Level: level}
						if !e.Present() {
							sub, okT := tables[key]
							if !okT {
								sub = alloc()
								tables[key] = sub
							}
							if err := m.Write64(slotAddr, MakeTable(level, sub).Raw); err != nil {
								return err
							}
							table = sub
						} else if e.IsLeaf() {
							okPath = false
							break
						} else {
							table = e.Addr()
						}
					}
					if !okPath {
						continue
					}
					frame := mem.PAddr(uint64(0x100+r.Intn(256))) * mem.PageSize
					if err := m.Write64(EntryAddr(table, va, 1), MakeLeaf(1, frame, fl).Raw); err != nil {
						return err
					}
					vas = append(vas, va)
				}
				w := Walker{Mem: m}
				abs, err := w.Interpret(root)
				if err != nil {
					return err
				}
				walked := 0
				for _, va := range vas {
					res := w.Walk(root, va, AccessRead)
					if res.Fault != nil {
						continue // overwritten by a later iteration reusing the slot
					}
					walked++
					tr, okA := abs[va]
					if !okA {
						return fmt.Errorf("walkable %v missing from interpretation", va)
					}
					if tr.Frame != res.Translation.Frame {
						return fmt.Errorf("interpretation frame %v != walk frame %v at %v",
							tr.Frame, res.Translation.Frame, va)
					}
				}
				if walked == 0 {
					return fmt.Errorf("degenerate test: nothing walkable")
				}
				// Reverse inclusion: everything interpreted must walk.
				for va := range abs {
					if res := w.Walk(root, va, AccessRead); res.Fault != nil {
						return fmt.Errorf("interpreted %v does not walk: %v", va, res.Fault)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "non-canonical-always-faults", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 20)
				w := Walker{Mem: m}
				for i := 0; i < 300; i++ {
					// Random address with bits 48..62 not matching bit 47.
					va := VAddr(r.Uint64())
					if va.IsCanonical() {
						continue
					}
					res := w.Walk(0x1000, va, AccessRead)
					if res.Fault == nil || len(res.Path) != 0 {
						return fmt.Errorf("non-canonical %v did not fault pre-walk", va)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "tlb-staleness-and-invalidation", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 24)
				va := VAddr(uint64(1+r.Intn(1<<18)) * L1PageSize)
				root := buildFourLevel(m, va, 0x9000, Flags{Writable: true, User: true})
				u := New(m)
				u.SetRoot(root, 1)
				if _, f := u.Translate(va, AccessRead); f != nil {
					return fmt.Errorf("initial translate: %v", f)
				}
				// Clear the leaf behind the MMU's back.
				w := Walker{Mem: m}
				res := w.Walk(root, va, AccessRead)
				table := root
				for _, e := range res.Path {
					if e.IsLeaf() {
						break
					}
					table = e.Addr()
				}
				if err := m.Write64(EntryAddr(table, va, 1), 0); err != nil {
					return err
				}
				if _, f := u.Translate(va, AccessRead); f != nil {
					return fmt.Errorf("TLB did not serve stale translation (model too strong)")
				}
				u.Invlpg(va)
				if _, f := u.Translate(va, AccessRead); f == nil {
					return fmt.Errorf("translation survived invlpg")
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "accessed-dirty-bits", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 24)
				va := VAddr(0x7000_0000)
				root := buildFourLevel(m, va, 0x9000, Flags{Writable: true})
				u := New(m)
				u.SetRoot(root, 0)
				leafSlot := leafSlotOf(m, root, va)
				if _, f := u.Translate(va, AccessRead); f != nil {
					return fmt.Errorf("read translate: %v", f)
				}
				raw, _ := m.Read64(leafSlot)
				e := Entry{Raw: raw, Level: 1}
				if !e.Accessed() || e.Dirty() {
					return fmt.Errorf("after read: A=%t D=%t", e.Accessed(), e.Dirty())
				}
				if _, f := u.Translate(va, AccessWrite); f != nil {
					return fmt.Errorf("write translate: %v", f)
				}
				raw, _ = m.Read64(leafSlot)
				if !(Entry{Raw: raw, Level: 1}).Dirty() {
					return fmt.Errorf("dirty bit not set by write")
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "huge-page-offset-arithmetic", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				m := mem.New(1 << 24)
				root := mem.PAddr(0x1000)
				l3 := mem.PAddr(0x2000)
				va := VAddr(uint64(r.Intn(256)) * L2PageSize)
				frame := mem.PAddr(uint64(2+r.Intn(30)) * L2PageSize)
				if err := m.Write64(EntryAddr(root, va, 4), MakeTable(4, l3).Raw); err != nil {
					return err
				}
				l2 := mem.PAddr(0x3000)
				if err := m.Write64(EntryAddr(l3, va, 3), MakeTable(3, l2).Raw); err != nil {
					return err
				}
				if err := m.Write64(EntryAddr(l2, va, 2), MakeLeaf(2, frame, Flags{Writable: true}).Raw); err != nil {
					return err
				}
				w := Walker{Mem: m}
				for i := 0; i < 200; i++ {
					off := uint64(r.Intn(L2PageSize))
					res := w.Walk(root, va+VAddr(off), AccessRead)
					if res.Fault != nil {
						return fmt.Errorf("huge walk at +%#x: %v", off, res.Fault)
					}
					if res.Translation.PAddr != frame+mem.PAddr(off) {
						return fmt.Errorf("huge offset %#x -> %v, want %v",
							off, res.Translation.PAddr, frame+mem.PAddr(off))
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "hw/mmu", Name: "tlb-asid-isolation", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Translations cached for one address space must never
				// serve another (unless Global).
				tlb := NewTLB(64)
				tr := Translation{Base: 0x1000, Frame: 0x5000, PageSize: L1PageSize}
				tlb.Insert(1, tr)
				if _, hit := tlb.Lookup(2, 0x1000); hit {
					return fmt.Errorf("translation leaked across ASIDs")
				}
				gl := tr
				gl.Base = 0x9000
				gl.Global = true
				tlb.Insert(1, gl)
				tlb.InvalidateASID(1)
				if _, hit := tlb.Lookup(1, 0x1000); hit {
					return fmt.Errorf("non-global survived ASID flush")
				}
				if _, hit := tlb.Lookup(1, 0x9000); !hit {
					return fmt.Errorf("global entry lost on ASID flush")
				}
				return nil
			}},
	)
}

// buildFourLevel hand-builds a 4-level path mapping va -> frame.
func buildFourLevel(m *mem.PhysMem, va VAddr, frame mem.PAddr, fl Flags) mem.PAddr {
	root := mem.PAddr(0x1000)
	l3, l2, l1 := mem.PAddr(0x2000), mem.PAddr(0x3000), mem.PAddr(0x4000)
	_ = m.Write64(EntryAddr(root, va, 4), MakeTable(4, l3).Raw)
	_ = m.Write64(EntryAddr(l3, va, 3), MakeTable(3, l2).Raw)
	_ = m.Write64(EntryAddr(l2, va, 2), MakeTable(2, l1).Raw)
	_ = m.Write64(EntryAddr(l1, va, 1), MakeLeaf(1, frame, fl).Raw)
	return root
}

// leafSlotOf finds the physical slot of va's leaf entry.
func leafSlotOf(m *mem.PhysMem, root mem.PAddr, va VAddr) mem.PAddr {
	w := Walker{Mem: m}
	res := w.Walk(root, va, AccessRead)
	table := root
	for _, e := range res.Path {
		if e.IsLeaf() {
			return EntryAddr(table, va, e.Level)
		}
		table = e.Addr()
	}
	return 0
}
