package mmu

import (
	"github.com/verified-os/vnros/internal/hw/mem"
)

// Walker performs architectural page walks against simulated physical
// memory. It is pure interpretation: it never mutates the tables (we do
// not model hardware A/D bit setting during the walk itself; the MMU
// front-end does that explicitly so the effect is visible to specs).
type Walker struct {
	Mem *mem.PhysMem
}

// WalkResult describes one completed walk, successful or not, including
// the path of entries the hardware visited. The path is exposed so the
// refinement obligations can relate every step of the hardware
// interpretation to the implementation's tree.
type WalkResult struct {
	Translation *Translation // nil if the walk did not reach a leaf
	Path        []Entry      // entries visited, highest level first
	Fault       *Fault       // nil on success
}

// EntryAddr returns the physical address of the entry slot consulted at
// the given level for va, given that level's table frame base.
func EntryAddr(table mem.PAddr, va VAddr, level int) mem.PAddr {
	return table + mem.PAddr(va.Index(level)*8)
}

// Walk translates va starting from the PML4 frame root. It performs the
// same loads the hardware would and applies the same validity rules:
// non-canonical addresses fault before the walk; a non-present or
// malformed entry aborts the walk; permissions are accumulated as the
// AND of the bits along the path and checked against the access kind.
func (w *Walker) Walk(root mem.PAddr, va VAddr, access Access) WalkResult {
	var res WalkResult
	if !va.IsCanonical() {
		res.Fault = &Fault{Addr: va, Access: access, Reason: "non-canonical address"}
		return res
	}
	if !root.IsPageAligned() {
		res.Fault = &Fault{Addr: va, Access: access, Reason: "CR3 not page aligned"}
		return res
	}

	table := root
	writable, user := true, true
	noExec := false
	for level := Levels; level >= 1; level-- {
		slot := EntryAddr(table, va, level)
		raw, err := w.Mem.Read64(slot)
		if err != nil {
			res.Fault = &Fault{Addr: va, Access: access, Reason: "walk load failed: " + err.Error()}
			return res
		}
		e := Entry{Raw: raw, Level: level}
		res.Path = append(res.Path, e)

		if !e.Present() {
			res.Fault = &Fault{Addr: va, Access: access, Present: false, Reason: "entry not present"}
			return res
		}
		if !e.Valid() {
			res.Fault = &Fault{Addr: va, Access: access, Present: true, Reason: "reserved bits / malformed entry"}
			return res
		}

		writable = writable && e.Writable()
		user = user && e.User()
		noExec = noExec || e.NoExec()

		if e.IsLeaf() {
			size := PageSizeAtLevel(level)
			tr := &Translation{
				Base:     va.PageBase(size),
				Frame:    e.Addr(),
				PAddr:    e.Addr() + mem.PAddr(va.PageOffset(size)),
				PageSize: size,
				Writable: writable,
				User:     user,
				NoExec:   noExec,
				Global:   e.Global(),
			}
			if f := checkPermissions(va, access, tr); f != nil {
				res.Fault = f
				return res
			}
			res.Translation = tr
			return res
		}
		table = e.Addr()
	}
	// A present, valid level-1 entry is always a leaf, so this is
	// unreachable; keep a fault for defense in depth.
	res.Fault = &Fault{Addr: va, Access: access, Reason: "walk exhausted levels"}
	return res
}

// checkPermissions applies the architectural permission rules to a
// completed translation. We model supervisor accesses with SMAP/SMEP
// off: the kernel may read and write user pages but we still honour XD.
func checkPermissions(va VAddr, access Access, tr *Translation) *Fault {
	if access.isUser() && !tr.User {
		return &Fault{Addr: va, Access: access, Present: true, Reason: "supervisor page"}
	}
	if access.isWrite() && !tr.Writable {
		return &Fault{Addr: va, Access: access, Present: true, Reason: "read-only page"}
	}
	if access.isExec() && tr.NoExec {
		return &Fault{Addr: va, Access: access, Present: true, Reason: "execute disabled"}
	}
	return nil
}

// Interpret builds the abstract view of an entire page-table tree: the
// finite map from mapped virtual page bases to (frame, size, flags).
// This is the paper's "MMU interpretation function" — the bridge between
// the bits in memory and the high-level spec's mathematical map. It
// enumerates table entries rather than probing every address, so it
// terminates quickly even for sparse 48-bit spaces.
//
// Malformed subtrees (invalid entries) are skipped; the refinement
// obligations separately require that the implementation never creates
// them.
func (w *Walker) Interpret(root mem.PAddr) (map[VAddr]Translation, error) {
	out := make(map[VAddr]Translation)
	err := w.interpretTable(root, Levels, 0, true, true, false, out)
	return out, err
}

func (w *Walker) interpretTable(table mem.PAddr, level int, base VAddr,
	writable, user, noExec bool, out map[VAddr]Translation) error {
	span := uint64(1) << (12 + IndexBits*(level-1)) // bytes covered per entry
	for i := uint64(0); i < EntriesPerTable; i++ {
		slot := table + mem.PAddr(i*8)
		raw, err := w.Mem.Read64(slot)
		if err != nil {
			return err
		}
		e := Entry{Raw: raw, Level: level}
		if !e.Present() || !e.Valid() {
			continue
		}
		evaBase := base + VAddr(i*span)
		ew := writable && e.Writable()
		eu := user && e.User()
		ex := noExec || e.NoExec()
		if e.IsLeaf() {
			size := PageSizeAtLevel(level)
			out[canonicalize(evaBase)] = Translation{
				Base:     canonicalize(evaBase),
				Frame:    e.Addr(),
				PAddr:    e.Addr(),
				PageSize: size,
				Writable: ew,
				User:     eu,
				NoExec:   ex,
				Global:   e.Global(),
			}
			continue
		}
		if level > 1 {
			if err := w.interpretTable(e.Addr(), level-1, evaBase, ew, eu, ex, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// canonicalize sign-extends bit 47 into bits 63..48, turning the raw
// 48-bit walk offset into the canonical virtual address the hardware
// would report.
func canonicalize(v VAddr) VAddr {
	if uint64(v)&(1<<(VABits-1)) != 0 {
		const signExt = 0xffff_0000_0000_0000 // bits 63..48 set
		return v | VAddr(signExt)
	}
	return v
}
