package mmu

import (
	"github.com/verified-os/vnros/internal/hw/mem"
)

// MMU is the per-core translation front-end: a TLB backed by the page
// walker. Translate is the single hardware-spec transition the paper's
// refinement proof cares about: given the page-table bits currently in
// physical memory, which physical address (if any) does a virtual access
// reach?
//
// The MMU also models the hardware's accessed/dirty bit updates, which
// the paper's hardware spec must expose because the OS reads those bits
// back (e.g. for page reclamation).
type MMU struct {
	walker Walker
	tlb    *TLB

	// root is the current CR3 value and asid the current PCID tag.
	root mem.PAddr
	asid uint16
}

// New returns an MMU translating against the given physical memory with
// a default-sized TLB.
func New(m *mem.PhysMem) *MMU {
	return &MMU{walker: Walker{Mem: m}, tlb: NewTLB(0)}
}

// NewWithTLB returns an MMU with an explicit TLB (tests use tiny or
// disabled TLBs; the TLB ablation bench uses capacity 1).
func NewWithTLB(m *mem.PhysMem, tlb *TLB) *MMU {
	return &MMU{walker: Walker{Mem: m}, tlb: tlb}
}

// SetRoot loads CR3 with a new page-table root and address-space tag.
// Loading CR3 invalidates non-global entries for the previous ASID only
// when the tag is reused (as with PCIDs); switching tags preserves
// cached entries, which is why unmap must invalidate explicitly.
func (u *MMU) SetRoot(root mem.PAddr, asid uint16) {
	if u.asid == asid && u.root != root {
		u.tlb.InvalidateASID(asid)
	}
	u.root = root
	u.asid = asid
}

// Root returns the current CR3 value.
func (u *MMU) Root() mem.PAddr { return u.root }

// ASID returns the current address-space tag.
func (u *MMU) ASID() uint16 { return u.asid }

// TLB exposes the TLB for invalidation (the invlpg path) and stats.
func (u *MMU) TLB() *TLB { return u.tlb }

// Walker exposes the raw walker, used by the interpretation function and
// the refinement obligations.
func (u *MMU) Walker() *Walker { return &u.walker }

// Translate translates va for the given access kind, consulting the TLB
// first and walking the tables on a miss. On a successful walk the
// translation is cached and the accessed (and, for writes, dirty) bits
// are set on the leaf entry, as hardware does.
func (u *MMU) Translate(va VAddr, access Access) (Translation, *Fault) {
	if tr, ok := u.tlb.Lookup(u.asid, va); ok {
		if f := checkPermissions(va, access, &tr); f != nil {
			return Translation{}, f
		}
		if !access.isWrite() || tr.Dirty {
			return tr, nil
		}
		// Hardware re-walks to set the dirty bit on the first write
		// through a clean cached translation; fall through to the walk.
	}

	res := u.walker.Walk(u.root, va, access)
	if res.Fault != nil {
		return Translation{}, res.Fault
	}
	u.setADBits(va, access, res)
	if access.isWrite() {
		res.Translation.Dirty = true
	}
	u.tlb.Insert(u.asid, *res.Translation)
	return *res.Translation, nil
}

// setADBits sets the accessed bit on every entry of the walk path and
// the dirty bit on the leaf for write accesses, mirroring hardware.
func (u *MMU) setADBits(va VAddr, access Access, res WalkResult) {
	table := u.root
	for _, e := range res.Path {
		slot := EntryAddr(table, va, e.Level)
		raw := e.Raw | BitAccessed
		if access.isWrite() && e.IsLeaf() {
			raw |= BitDirty
		}
		if raw != e.Raw {
			// Ignore the error: the slot was readable moments ago and
			// physical memory cannot shrink.
			_ = u.walker.Mem.Write64(slot, raw)
		}
		if e.IsLeaf() {
			break
		}
		table = e.Addr()
	}
}

// Invlpg invalidates any cached translation for va in the current
// address space.
func (u *MMU) Invlpg(va VAddr) { u.tlb.Invalidate(u.asid, va) }

// Read reads len(p) bytes of virtual memory at va, translating each page
// it touches. It fails with the first fault encountered.
func (u *MMU) Read(va VAddr, p []byte) *Fault {
	return u.access(va, p, AccessRead, func(pa mem.PAddr, chunk []byte) error {
		return u.walker.Mem.Read(pa, chunk)
	})
}

// Write writes p to virtual memory at va.
func (u *MMU) Write(va VAddr, p []byte) *Fault {
	return u.access(va, p, AccessWrite, func(pa mem.PAddr, chunk []byte) error {
		return u.walker.Mem.Write(pa, chunk)
	})
}

// ReadUser and WriteUser are the CPL-3 variants used to model user-space
// programs touching their own memory.
func (u *MMU) ReadUser(va VAddr, p []byte) *Fault {
	return u.access(va, p, AccessUserRead, func(pa mem.PAddr, chunk []byte) error {
		return u.walker.Mem.Read(pa, chunk)
	})
}

// WriteUser writes p to user virtual memory at va with CPL-3 checks.
func (u *MMU) WriteUser(va VAddr, p []byte) *Fault {
	return u.access(va, p, AccessUserWrite, func(pa mem.PAddr, chunk []byte) error {
		return u.walker.Mem.Write(pa, chunk)
	})
}

func (u *MMU) access(va VAddr, p []byte, kind Access, op func(mem.PAddr, []byte) error) *Fault {
	for n := 0; n < len(p); {
		tr, fault := u.Translate(va+VAddr(n), kind)
		if fault != nil {
			return fault
		}
		// Stay within this page.
		remainInPage := int(tr.PageSize - (uint64(va)+uint64(n))%tr.PageSize)
		chunk := len(p) - n
		if chunk > remainInPage {
			chunk = remainInPage
		}
		if err := op(tr.PAddr, p[n:n+chunk]); err != nil {
			return &Fault{Addr: va + VAddr(n), Access: kind, Present: true,
				Reason: "physical access failed: " + err.Error()}
		}
		n += chunk
	}
	return nil
}
