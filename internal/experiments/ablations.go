package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/pt"
)

// This file implements the ablation benches DESIGN.md commits to:
//
//  1. NR flat combining vs a naive global mutex around the same
//     sequential structure — why NrOS's design produces Fig. 1b/1c's
//     shape.
//  2. TLB caching on/off in the MMU model.
//  3. Sharded NR (multiple logs) vs a single log.
//  4. Verified page table with runtime ghost checks on vs off — the
//     "verification artifacts are free at runtime" claim.

// mutexAS is the naive baseline: one address space behind one mutex.
type mutexAS struct {
	mu sync.Mutex
	as pt.AddressSpace
}

// AblationNRvsMutex compares per-op map latency of the NR-replicated
// address space against a global-mutex one at the given core count.
func AblationNRvsMutex(cores, opsPerCore int) (nrMean, mutexMean time.Duration, err error) {
	p, err := MapLatency(pt.VariantVerified, cores, opsPerCore)
	if err != nil {
		return 0, 0, err
	}
	nrMean = p.Mean

	pm := mem.New(512 << 20)
	src := pt.NewSimpleFrameSource(pm, 0x1000, 128<<20)
	as, err := pt.NewVerified(pm, src, nil)
	if err != nil {
		return 0, 0, err
	}
	m := &mutexAS{as: as}
	var wg sync.WaitGroup
	errs := make(chan error, cores)
	elapsed := make([]time.Duration, cores)
	start := make(chan struct{})
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := mmu.VAddr(0x0000_0300_0000_0000 + uint64(c)<<32)
			<-start
			t0 := time.Now()
			for i := 0; i < opsPerCore; i++ {
				va := base + mmu.VAddr(uint64(i)*mmu.L1PageSize)
				m.mu.Lock()
				e := m.as.Map(va, 0x200_0000, mmu.L1PageSize, mmu.Flags{Writable: true})
				m.mu.Unlock()
				if e != nil {
					errs <- e
					return
				}
			}
			elapsed[c] = time.Since(t0)
			errs <- nil
		}(c)
	}
	close(start)
	wg.Wait()
	for c := 0; c < cores; c++ {
		if e := <-errs; e != nil {
			return 0, 0, e
		}
	}
	var total time.Duration
	for _, e := range elapsed {
		total += e
	}
	mutexMean = total / time.Duration(cores*opsPerCore)
	return nrMean, mutexMean, nil
}

// AblationTLB measures translation latency with the TLB enabled vs a
// 1-entry TLB that thrashes, over a strided access pattern.
func AblationTLB(translations int) (warm, cold time.Duration, err error) {
	run := func(tlbSize int) (time.Duration, error) {
		pm := mem.New(256 << 20)
		src := pt.NewSimpleFrameSource(pm, 0x1000, 64<<20)
		as, err := pt.NewVerified(pm, src, nil)
		if err != nil {
			return 0, err
		}
		const pages = 32
		base := mmu.VAddr(0x4000_0000)
		for i := 0; i < pages; i++ {
			if err := as.Map(base+mmu.VAddr(i*mmu.L1PageSize), mem.PAddr(0x100_0000+i*mmu.L1PageSize),
				mmu.L1PageSize, mmu.Flags{Writable: true}); err != nil {
				return 0, err
			}
		}
		u := mmu.NewWithTLB(pm, mmu.NewTLB(tlbSize))
		u.SetRoot(as.Root(), 1)
		t0 := time.Now()
		for i := 0; i < translations; i++ {
			va := base + mmu.VAddr((i%pages)*mmu.L1PageSize) + mmu.VAddr(i%4096)
			if _, f := u.Translate(va, mmu.AccessRead); f != nil {
				return 0, fmt.Errorf("translate: %v", f)
			}
		}
		return time.Duration(int64(time.Since(t0)) / int64(translations)), nil
	}
	if warm, err = run(mmu.DefaultTLBSize); err != nil {
		return
	}
	cold, err = run(1)
	return
}

// kvDS is a trivial NR payload for the sharding ablation.
type kvDS struct{ m map[uint64]uint64 }

type kvW struct{ k, v uint64 }

func newKVDS() nr.DataStructure[uint64, kvW, uint64] {
	return &kvDS{m: make(map[uint64]uint64)}
}

func (d *kvDS) DispatchRead(k uint64) uint64 { return d.m[k] }
func (d *kvDS) DispatchWrite(w kvW) uint64   { d.m[w.k] = w.v; return w.v }

// AblationSharding compares write throughput of 1 NR log vs `shards`
// independent logs, with `threads` writers over a partitionable key
// space.
func AblationSharding(threads, shards, opsPerThread int) (single, sharded float64, err error) {
	run := func(nshards int) (float64, error) {
		s := nr.NewSharded(nshards, nr.Options{Replicas: 1}, newKVDS)
		var wg sync.WaitGroup
		errs := make(chan error, threads)
		start := make(chan struct{})
		t0 := time.Now()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				th, err := s.Register(0)
				if err != nil {
					errs <- err
					return
				}
				<-start
				for i := 0; i < opsPerThread; i++ {
					key := uint64(t)<<32 | uint64(i)
					th.Execute(key, kvW{k: key, v: uint64(i)})
				}
				errs <- nil
			}(t)
		}
		close(start)
		wg.Wait()
		for t := 0; t < threads; t++ {
			if e := <-errs; e != nil {
				return 0, e
			}
		}
		dt := time.Since(t0).Seconds()
		return float64(threads*opsPerThread) / dt, nil
	}
	if single, err = run(1); err != nil {
		return
	}
	sharded, err = run(shards)
	return
}

// AblationGhostChecks measures the verified page table's map latency
// with runtime ghost checking off (the shipped configuration) vs on
// (the debug/verification configuration) — single-threaded, isolating
// the cost of the checks themselves.
func AblationGhostChecks(ops int) (off, on time.Duration, err error) {
	run := func(ghost bool) (time.Duration, error) {
		pm := mem.New(512 << 20)
		src := pt.NewSimpleFrameSource(pm, 0x1000, 128<<20)
		as, err := pt.NewVerified(pm, src, nil)
		if err != nil {
			return 0, err
		}
		as.EnableGhostChecks(ghost)
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			va := mmu.VAddr(0x4000_0000 + uint64(i)*mmu.L1PageSize)
			if err := as.Map(va, 0x200_0000, mmu.L1PageSize, mmu.Flags{Writable: true}); err != nil {
				return 0, err
			}
		}
		return time.Duration(int64(time.Since(t0)) / int64(ops)), nil
	}
	if off, err = run(false); err != nil {
		return
	}
	on, err = run(true)
	return
}

// RenderAblations runs all four at modest sizes and prints a summary.
func RenderAblations() (string, error) {
	var b strings.Builder
	b.WriteString("Ablations (design choices from DESIGN.md)\n")

	nrMean, muMean, err := AblationNRvsMutex(8, 300)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  1. map @8 cores: NR %.2fus/op vs global mutex %.2fus/op\n",
		us(nrMean), us(muMean))

	warm, cold, err := AblationTLB(20000)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  2. translate: TLB %.3fus vs 1-entry TLB %.3fus (%.1fx)\n",
		us(warm), us(cold), float64(cold)/float64(warm))

	single, sharded, err := AblationSharding(4, 4, 3000)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  3. kv writes: 1 log %.0f ops/s vs 4 logs %.0f ops/s (%.2fx)\n",
		single, sharded, sharded/single)

	off, on, err := AblationGhostChecks(2000)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  4. verified map: ghost checks off %.2fus vs on %.2fus (%.1fx)\n",
		us(off), us(on), float64(on)/float64(off))

	one, two, err := AblationReadScaling(4, 20000)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  5. reads @4 threads: 1 replica %.0f ops/s vs 2 replicas %.0f ops/s (%.2fx)\n",
		one, two, two/one)
	return b.String(), nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

// AblationReadScaling measures read throughput against a single NR
// instance as reader count grows, with replicas = 1 vs readers pinned
// across 2 replicas — NR's read-concurrency mechanism (§4.1: replicas
// serve reads locally under a readers-writer lock).
func AblationReadScaling(readers, opsPerReader int) (oneReplica, twoReplicas float64, err error) {
	run := func(replicas int) (float64, error) {
		n := nr.New(nr.Options{Replicas: replicas}, newKVDS)
		seed := n.MustRegister(0)
		for k := uint64(0); k < 64; k++ {
			seed.Execute(kvW{k: k, v: k})
		}
		var wg sync.WaitGroup
		errs := make(chan error, readers)
		start := make(chan struct{})
		t0 := time.Now()
		for t := 0; t < readers; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				c, err := n.Register(t % replicas)
				if err != nil {
					errs <- err
					return
				}
				<-start
				for i := 0; i < opsPerReader; i++ {
					c.ExecuteRead(uint64(i % 64))
				}
				errs <- nil
			}(t)
		}
		close(start)
		wg.Wait()
		for t := 0; t < readers; t++ {
			if e := <-errs; e != nil {
				return 0, e
			}
		}
		return float64(readers*opsPerReader) / time.Since(t0).Seconds(), nil
	}
	if oneReplica, err = run(1); err != nil {
		return
	}
	twoReplicas, err = run(2)
	return
}
