// Package experiments regenerates every table and figure from the
// paper's evaluation (§5), plus the ablations DESIGN.md calls out. Both
// cmd/vnros-bench and the root benchmark suite drive these functions,
// so the printed rows and the testing.B numbers come from the same
// code.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/verifier"
)

// PaperCores is the core counts of Figures 1b/1c (the authors' 2×14
// testbed).
var PaperCores = []int{1, 8, 16, 24, 28}

// CoresPerNode mirrors the testbed topology for replica derivation.
const CoresPerNode = 14

// LatencyPoint is one x,y of Figures 1b/1c.
type LatencyPoint struct {
	Cores   int
	Mean    time.Duration // mean per-operation latency
	OpsDone uint64
}

// MapLatency measures Figure 1b: each of n "cores" (goroutine threads
// pinned to NR replicas, one replica per 14 cores) repeatedly maps
// fresh 4 KiB frames into the shared, NR-replicated address space; the
// mean map syscall latency is reported.
func MapLatency(variant pt.Variant, cores int, opsPerCore int) (LatencyPoint, error) {
	ras, err := pt.NewReplicated(pt.ReplicatedOptions{
		Variant:       variant,
		Replicas:      1 + (cores-1)/CoresPerNode,
		MemPerReplica: 512 << 20,
	})
	if err != nil {
		return LatencyPoint{}, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, cores)
	start := make(chan struct{})
	elapsed := make([]time.Duration, cores)
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, err := ras.Register((c / CoresPerNode) % ras.NR.NumReplicas())
			if err != nil {
				errs <- err
				return
			}
			// Worker-private VA region; frames in a shared window (the
			// paper maps the same frame repeatedly — physical reuse is
			// fine, the page table does not dedupe).
			base := mmu.VAddr(0x0000_0100_0000_0000 + uint64(c)<<32)
			frame := mem.PAddr(0x200_0000)
			<-start
			t0 := time.Now()
			for i := 0; i < opsPerCore; i++ {
				va := base + mmu.VAddr(uint64(i)*mmu.L1PageSize)
				resp := ctx.Execute(pt.ASWrite{Kind: "map", VA: va, Frame: frame,
					Size: mmu.L1PageSize, Flags: mmu.Flags{Writable: true, User: true}})
				if resp.Outcome != pt.OutcomeOK {
					errs <- fmt.Errorf("map failed on core %d op %d: %s", c, i, resp.Outcome)
					return
				}
			}
			elapsed[c] = time.Since(t0)
			errs <- nil
		}(c)
	}
	close(start)
	wg.Wait()
	for c := 0; c < cores; c++ {
		if err := <-errs; err != nil {
			return LatencyPoint{}, err
		}
	}
	var total time.Duration
	for _, e := range elapsed {
		total += e
	}
	ops := uint64(cores * opsPerCore)
	return LatencyPoint{Cores: cores, Mean: total / time.Duration(ops), OpsDone: ops}, nil
}

// UnmapLatency measures Figure 1c: each core pre-maps a window of
// frames, then the timed phase repeatedly unmaps (and remaps, untimed
// bookkeeping folded in as in the paper's "map frames and unmap a
// frame" loop) — reported is the mean unmap syscall latency.
func UnmapLatency(variant pt.Variant, cores int, opsPerCore int) (LatencyPoint, error) {
	ras, err := pt.NewReplicated(pt.ReplicatedOptions{
		Variant:       variant,
		Replicas:      1 + (cores-1)/CoresPerNode,
		MemPerReplica: 512 << 20,
	})
	if err != nil {
		return LatencyPoint{}, err
	}
	var wg sync.WaitGroup
	errs := make(chan error, cores)
	start := make(chan struct{})
	elapsed := make([]time.Duration, cores)
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx, err := ras.Register((c / CoresPerNode) % ras.NR.NumReplicas())
			if err != nil {
				errs <- err
				return
			}
			base := mmu.VAddr(0x0000_0200_0000_0000 + uint64(c)<<32)
			frame := mem.PAddr(0x200_0000)
			mapOne := func(i int) error {
				va := base + mmu.VAddr(uint64(i)*mmu.L1PageSize)
				resp := ctx.Execute(pt.ASWrite{Kind: "map", VA: va, Frame: frame,
					Size: mmu.L1PageSize, Flags: mmu.Flags{Writable: true}})
				if resp.Outcome != pt.OutcomeOK {
					return fmt.Errorf("pre-map: %s", resp.Outcome)
				}
				return nil
			}
			// Pre-map the working window.
			const window = 64
			for i := 0; i < window; i++ {
				if err := mapOne(i); err != nil {
					errs <- err
					return
				}
			}
			<-start
			var timed time.Duration
			for i := 0; i < opsPerCore; i++ {
				va := base + mmu.VAddr(uint64(i%window)*mmu.L1PageSize)
				t0 := time.Now()
				resp := ctx.Execute(pt.ASWrite{Kind: "unmap", VA: va})
				timed += time.Since(t0)
				if resp.Outcome != pt.OutcomeOK {
					errs <- fmt.Errorf("unmap failed on core %d op %d: %s", c, i, resp.Outcome)
					return
				}
				// Remap outside the timed section to keep the window full.
				if err := mapOne(i % window); err != nil {
					errs <- err
					return
				}
			}
			elapsed[c] = timed
			errs <- nil
		}(c)
	}
	close(start)
	wg.Wait()
	for c := 0; c < cores; c++ {
		if err := <-errs; err != nil {
			return LatencyPoint{}, err
		}
	}
	var total time.Duration
	for _, e := range elapsed {
		total += e
	}
	ops := uint64(cores * opsPerCore)
	return LatencyPoint{Cores: cores, Mean: total / time.Duration(ops), OpsDone: ops}, nil
}

// Series runs one figure's sweep for both variants.
type Series struct {
	Title      string
	Cores      []int
	Verified   []LatencyPoint
	Unverified []LatencyPoint
}

// Fig1b produces the map-latency series.
func Fig1b(cores []int, opsPerCore int) (Series, error) {
	return runSeries("Figure 1b: Map Latency", cores, opsPerCore, MapLatency)
}

// Fig1c produces the unmap-latency series.
func Fig1c(cores []int, opsPerCore int) (Series, error) {
	return runSeries("Figure 1c: Unmap Latency", cores, opsPerCore, UnmapLatency)
}

func runSeries(title string, cores []int, ops int,
	f func(pt.Variant, int, int) (LatencyPoint, error)) (Series, error) {
	s := Series{Title: title, Cores: cores}
	for _, c := range cores {
		pu, err := f(pt.VariantUnverified, c, ops)
		if err != nil {
			return s, err
		}
		pv, err := f(pt.VariantVerified, c, ops)
		if err != nil {
			return s, err
		}
		s.Unverified = append(s.Unverified, pu)
		s.Verified = append(s.Verified, pv)
	}
	return s, nil
}

// Render prints a series in the paper's row form.
func (s Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%8s %22s %22s %8s\n", "# Cores", "NrOS Unverified", "NrOS Verified", "V/U")
	for i := range s.Cores {
		u, v := s.Unverified[i], s.Verified[i]
		ratio := float64(v.Mean) / float64(u.Mean)
		fmt.Fprintf(&b, "%8d %20.2fus %20.2fus %8.2f\n",
			s.Cores[i],
			float64(u.Mean.Nanoseconds())/1000,
			float64(v.Mean.Nanoseconds())/1000,
			ratio)
	}
	return b.String()
}

// Fig1a runs the full VC suite and returns the report whose CDF is the
// figure.
func Fig1a(register func(*verifier.Registry), seed int64) *verifier.Report {
	g := &verifier.Registry{}
	register(g)
	return g.Run(verifier.Options{Seed: seed})
}

// RenderCDF prints the Figure 1a series: cumulative fraction of VCs
// verified within each duration.
func RenderCDF(rep *verifier.Report) string {
	var b strings.Builder
	b.WriteString("Figure 1a: CDF of verification condition times\n")
	fmt.Fprintf(&b, "verification conditions: %d, total: %v, max: %v\n",
		len(rep.Results), rep.Total.Round(time.Millisecond), rep.Max().Round(time.Microsecond))
	fmt.Fprintf(&b, "%14s %10s\n", "time", "fraction")
	cdf := rep.CDF()
	if len(cdf) == 0 {
		b.WriteString("  (no verification conditions ran)\n")
		return b.String()
	}
	// Print ~20 evenly spaced points plus the max.
	step := len(cdf) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(cdf); i += step {
		fmt.Fprintf(&b, "%14v %10.3f\n", cdf[i].Duration.Round(time.Microsecond), cdf[i].Fraction)
	}
	last := cdf[len(cdf)-1]
	fmt.Fprintf(&b, "%14v %10.3f\n", last.Duration.Round(time.Microsecond), last.Fraction)
	return b.String()
}
