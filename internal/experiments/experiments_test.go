package experiments

import (
	"strings"
	"testing"

	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/verifier"
)

func TestMapLatencySmall(t *testing.T) {
	p, err := MapLatency(pt.VariantVerified, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.OpsDone != 100 || p.Mean <= 0 {
		t.Fatalf("point = %+v", p)
	}
}

func TestUnmapLatencySmall(t *testing.T) {
	p, err := UnmapLatency(pt.VariantUnverified, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.OpsDone != 100 || p.Mean <= 0 {
		t.Fatalf("point = %+v", p)
	}
}

func TestSeriesRender(t *testing.T) {
	s, err := Fig1b([]int{1, 2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Render()
	for _, want := range []string{"Figure 1b", "# Cores", "NrOS Unverified", "NrOS Verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if len(s.Verified) != 2 || len(s.Unverified) != 2 {
		t.Fatalf("series sizes wrong")
	}
}

func TestFig1aCDF(t *testing.T) {
	rep := Fig1a(func(g *verifier.Registry) {
		pt.RegisterObligations(g)
	}, 7)
	if len(rep.Failed()) != 0 {
		t.Fatalf("failures: %v", rep.Failed())
	}
	out := RenderCDF(rep)
	if !strings.Contains(out, "Figure 1a") || !strings.Contains(out, "1.000") {
		t.Errorf("cdf render:\n%s", out)
	}
}

func TestAblationNRvsMutex(t *testing.T) {
	nrMean, muMean, err := AblationNRvsMutex(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if nrMean <= 0 || muMean <= 0 {
		t.Fatalf("means = %v, %v", nrMean, muMean)
	}
}

func TestAblationTLB(t *testing.T) {
	warm, cold, err := AblationTLB(2000)
	if err != nil {
		t.Fatal(err)
	}
	if cold <= warm/2 {
		// The thrashing TLB forces a 4-level walk per access; it cannot
		// plausibly be faster than the warm path by 2x.
		t.Fatalf("warm %v vs cold %v implausible", warm, cold)
	}
}

func TestAblationSharding(t *testing.T) {
	single, sharded, err := AblationSharding(2, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if single <= 0 || sharded <= 0 {
		t.Fatalf("throughputs = %f, %f", single, sharded)
	}
}

func TestAblationGhostChecks(t *testing.T) {
	off, on, err := AblationGhostChecks(200)
	if err != nil {
		t.Fatal(err)
	}
	if on < off {
		t.Logf("ghost-on (%v) unexpectedly faster than off (%v); noisy box", on, off)
	}
	if off <= 0 || on <= 0 {
		t.Fatal("non-positive latencies")
	}
}

func TestAblationReadScaling(t *testing.T) {
	one, two, err := AblationReadScaling(2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if one <= 0 || two <= 0 {
		t.Fatalf("throughputs = %f, %f", one, two)
	}
}

func TestRenderAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite is slow")
	}
	out, err := RenderAblations()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1.", "2.", "3.", "4.", "5."} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations output missing %q:\n%s", want, out)
		}
	}
}
