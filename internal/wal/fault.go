package wal

import (
	"errors"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
)

// ErrCrashed is returned by every write after a FaultStore's injected
// crash point — the simulated machine has lost power; nothing further
// reaches the disk.
var ErrCrashed = errors.New("wal: simulated crash")

// FaultMode selects what happens at the injected crash point.
type FaultMode int

// Fault modes, from cleanest to nastiest.
const (
	// FaultCrash drops the write entirely: the target block keeps its
	// old contents (power lost just before the write).
	FaultCrash FaultMode = iota
	// FaultTorn lands a corrupted version of the write: the first half
	// of the block is new data, the second half is bit-flipped garbage
	// (power lost mid-sector-transfer).
	FaultTorn
	// FaultShort lands only the first half of the write; the second
	// half of the block keeps its previous contents.
	FaultShort
)

func (m FaultMode) String() string {
	switch m {
	case FaultCrash:
		return "crash"
	case FaultTorn:
		return "torn"
	case FaultShort:
		return "short"
	}
	return "unknown"
}

// FaultStore wraps a BlockStore and injects one crash at the Nth write
// (counting from 0). After the crash every subsequent write fails with
// ErrCrashed while reads keep working — recovery code reads the frozen
// post-crash disk exactly like a real reboot would.
//
// The crash-sweep obligations construct one FaultStore per (mode, write
// index) pair and run a scripted workload to completion or crash; a
// probe run with the fault disabled (failAt < 0) measures the total
// write count first.
type FaultStore struct {
	mu      sync.Mutex
	d       fs.BlockStore
	mode    FaultMode
	failAt  int // write index that faults; < 0 disables injection
	writes  int
	crashed bool
}

// NewFaultStore wraps d, crashing at write index failAt with the given
// mode. failAt < 0 disables injection (probe mode).
func NewFaultStore(d fs.BlockStore, mode FaultMode, failAt int) *FaultStore {
	return &FaultStore{d: d, mode: mode, failAt: failAt}
}

// BlockSize implements fs.BlockStore.
func (f *FaultStore) BlockSize() int { return f.d.BlockSize() }

// NumBlocks implements fs.BlockStore.
func (f *FaultStore) NumBlocks() uint64 { return f.d.NumBlocks() }

// Writes returns how many writes were attempted (including the faulted
// one) — the sweep bound for probe runs.
func (f *FaultStore) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Crashed reports whether the injected crash has fired.
func (f *FaultStore) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// ReadBlock implements fs.BlockStore. Reads always succeed: after the
// crash they observe the frozen disk state, which is exactly what
// recovery sees after a reboot.
func (f *FaultStore) ReadBlock(i uint64, p []byte) error {
	return f.d.ReadBlock(i, p)
}

// WriteBlock implements fs.BlockStore, applying the fault at the
// configured write index.
func (f *FaultStore) WriteBlock(i uint64, p []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	idx := f.writes
	f.writes++
	if f.failAt < 0 || idx != f.failAt {
		return f.d.WriteBlock(i, p)
	}
	f.crashed = true
	switch f.mode {
	case FaultCrash:
		// Nothing lands.
	case FaultTorn:
		torn := make([]byte, len(p))
		copy(torn, p)
		for j := len(torn) / 2; j < len(torn); j++ {
			torn[j] ^= 0xA5
		}
		if err := f.d.WriteBlock(i, torn); err != nil {
			return err
		}
	case FaultShort:
		half := make([]byte, len(p))
		if err := f.d.ReadBlock(i, half); err != nil {
			return err
		}
		copy(half[:len(p)/2], p[:len(p)/2])
		if err := f.d.WriteBlock(i, half); err != nil {
			return err
		}
	}
	return ErrCrashed
}
