// Package wal is the write-ahead journal of the simulated OS — the
// crash-consistency subsystem that turns the snapshot-only persistence
// of internal/fs into a durability transition applications can reason
// against (the paper's §3 contract extended with Sync).
//
// The crash specification is a state machine over disk states: after a
// crash at any point, recovery must produce a filesystem equal to
// applying some prefix of the recorded mutation sequence, and that
// prefix must include every mutation acknowledged by a completed
// Sync ("disk state = a prefix-closed linearization of acknowledged
// mutations"). The registered verification conditions discharge this by
// exhaustively sweeping crash points of scripted workloads through
// FaultStore (fault.go) and checking recovery against golden prefix
// states (wal_obligations.go).
//
// Layout: the journal partitions the device. The leading blocks remain
// the A/B snapshot region of fs.Save/Load (exposed to it through a
// sub-view store, so its slot arithmetic is untouched); the trailing
// region holds one journal header block followed by the record area.
//
//	[0 .. snapBlocks)                 fs snapshot (header + A/B slots)
//	[snapBlocks]                      journal header (magic, epoch)
//	[snapBlocks+1 .. NumBlocks)       record area: group-commit chunks
//
// Group commit: Record buffers encoded mutations in memory; Flush
// writes them as ONE chunk — header, concatenated records, trailing
// checksum — starting at a fresh block boundary. Acknowledged blocks
// are never rewritten within an epoch, so a torn flush can only damage
// the unacknowledged chunk it was writing; the per-chunk checksum plus
// epoch and sequence continuity make replay stop exactly at the first
// damaged or stale chunk (the prefix-closed property).
//
// Checkpoint: the filesystem is snapshotted into the A/B region with
// the covered sequence number as the header stamp (fs.SaveStamped); the
// snapshot header write is the checkpoint's single commit point. The
// journal header is then rewritten with a bumped epoch, logically
// truncating the record area (stale chunks fail the epoch check). A
// crash between the two writes is safe: the stamp already covers every
// on-disk chunk, so replay skips them all.
package wal

import (
	"errors"
	"fmt"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/obs"
)

// Journal errors.
var (
	ErrJournalFull  = errors.New("wal: journal record area full")
	ErrBadGeometry  = errors.New("wal: device too small for journal layout")
	ErrCorruptChunk = errors.New("wal: corrupt journal chunk")
)

// On-disk magics ("vnroswal" / "walchunk1" truncated to 8 bytes).
const (
	headerMagic = 0x76_6e_72_6f_73_77_61_6c // "vnroswal"
	chunkMagic  = 0x77_61_6c_63_68_75_6e_6b // "walchunk"
)

// chunkHdrSize is the encoded chunk prefix: magic, epoch, firstSeq,
// round (u64 each), count and payload length (u32 each). The trailing
// checksum adds 8 more bytes after the payload. The round is the
// cross-shard group-commit stamp (internal/walshard): a monolithic
// journal flushes round 0 and replays unconditionally, a shard journal
// flushes the coordinator's round and replays only rounds covered by
// the group's commit stamp.
const chunkHdrSize = 8 + 8 + 8 + 8 + 4 + 4

// Journal is a write-ahead journal over one BlockStore. All methods are
// safe for concurrent use; Record is designed to be called from the
// kernel's apply path (fs.Journal), everything else from the core's
// sync/checkpoint/boot paths.
type Journal struct {
	mu sync.Mutex
	d  fs.BlockStore
	bs int

	snapBlocks uint64 // snapshot view size; journal header lives here
	recBase    uint64 // first record-area block
	recBlocks  uint64 // record-area size in blocks

	epoch      uint64 // current journal epoch (bumped by checkpoints)
	snapSeq    uint64 // seq covered by the on-disk snapshot stamp
	nextSeq    uint64 // seq the next recorded mutation receives
	flushedSeq uint64 // last seq durably on disk (in a chunk or snapshot)
	tail       uint64 // next free record-area block, relative to recBase

	// pending is the in-memory group-commit buffer: encoded records
	// awaiting the next Flush.
	pending      []byte
	pendingFirst uint64
	pendingCount uint32

	shard uint32
}

// New lays a journal of journalBlocks blocks over the tail of d (the
// geometry above). journalBlocks == 0 picks a default of 1/8 of the
// device. No disk access happens here; call Format, Recover, or use an
// open journal's state.
func New(d fs.BlockStore, journalBlocks uint64) (*Journal, error) {
	n := d.NumBlocks()
	if journalBlocks == 0 {
		journalBlocks = n / 8
		if journalBlocks < 8 {
			journalBlocks = 8
		}
	}
	// The snapshot view needs its header block plus two non-empty A/B
	// slots; the journal needs its header plus at least one record
	// block.
	if journalBlocks < 2 || n < journalBlocks+3 {
		return nil, fmt.Errorf("%w: %d blocks, journal wants %d", ErrBadGeometry, n, journalBlocks)
	}
	return &Journal{
		d:          d,
		bs:         d.BlockSize(),
		snapBlocks: n - journalBlocks,
		recBase:    n - journalBlocks + 1,
		recBlocks:  journalBlocks - 1,
		epoch:      1,
		nextSeq:    1,
		shard:      obs.NextShard(),
	}, nil
}

// SnapshotView returns the sub-view BlockStore the checkpoint snapshots
// are saved into — the device minus the journal region. fs.Save/Load
// against this view see a smaller disk and keep their A/B layout.
func (j *Journal) SnapshotView() fs.BlockStore {
	return &subStore{d: j.d, n: j.snapBlocks}
}

// subStore exposes the leading n blocks of a store.
type subStore struct {
	d fs.BlockStore
	n uint64
}

func (v *subStore) BlockSize() int    { return v.d.BlockSize() }
func (v *subStore) NumBlocks() uint64 { return v.n }

func (v *subStore) ReadBlock(i uint64, p []byte) error {
	if err := fs.CheckBlockAccess(v, "read", i, p); err != nil {
		return err
	}
	return v.d.ReadBlock(i, p)
}

func (v *subStore) WriteBlock(i uint64, p []byte) error {
	if err := fs.CheckBlockAccess(v, "write", i, p); err != nil {
		return err
	}
	return v.d.WriteBlock(i, p)
}

// Format initializes a fresh journal on the device: epoch 1, empty
// record area. Existing journal and snapshot contents are logically
// discarded (stale chunks fail the epoch/sequence checks; the snapshot
// region is left to the next checkpoint).
func (j *Journal) Format() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.formatLocked()
}

func (j *Journal) formatLocked() error {
	j.epoch = 1
	j.snapSeq = 0
	j.nextSeq = 1
	j.flushedSeq = 0
	j.tail = 0
	j.pending = nil
	j.pendingFirst = 0
	j.pendingCount = 0
	return j.writeHeader()
}

// writeHeader writes the journal header block: magic, epoch, checksum.
// The epoch is the only mutable field; which mutations a recovery
// replays is governed by the snapshot stamp, not the header.
func (j *Journal) writeHeader() error {
	e := marshal.NewEncoder(make([]byte, 0, 24))
	e.U64(headerMagic).U64(j.epoch)
	sum := fletcher64(e.Bytes())
	e.U64(sum)
	hb := make([]byte, j.bs)
	copy(hb, e.Bytes())
	return j.d.WriteBlock(j.snapBlocks, hb)
}

// readHeader returns the on-disk epoch, or an error for a missing/torn
// header.
func (j *Journal) readHeader() (uint64, error) {
	hb := make([]byte, j.bs)
	if err := j.d.ReadBlock(j.snapBlocks, hb); err != nil {
		return 0, err
	}
	d := marshal.NewDecoder(hb[:24])
	magic, epoch, sum := d.U64(), d.U64(), d.U64()
	e := marshal.NewEncoder(make([]byte, 0, 16))
	e.U64(magic).U64(epoch)
	if d.Err() != nil || magic != headerMagic || fletcher64(e.Bytes()) != sum {
		return 0, fmt.Errorf("wal: no valid journal header")
	}
	return epoch, nil
}

// Record implements fs.Journal: append one mutation to the group-commit
// buffer. The mutation is encoded immediately (Data is borrowed from
// the caller and must not be retained), so the buffer owns everything
// it will flush.
func (j *Journal) Record(m fs.Mutation) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pendingCount == 0 {
		j.pendingFirst = j.nextSeq
	}
	// Encode into a fresh encoder and append: NewEncoder(buf) reuses
	// buf's storage from offset 0, which would overwrite earlier
	// records.
	e := marshal.NewEncoder(nil)
	encodeMutation(e, m)
	j.pending = append(j.pending, e.Bytes()...)
	j.pendingCount++
	j.nextSeq++
	obs.WALAppends.Add(j.shard, 1)
}

// Pending returns the number of recorded, not-yet-durable mutations.
func (j *Journal) Pending() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return int(j.pendingCount)
}

// DurableSeq returns the last sequence number that is durable on disk
// (flushed in a chunk or covered by a checkpoint snapshot).
func (j *Journal) DurableSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushedSeq
}

// Flush writes the pending record buffer as one chunk — the group
// commit. On success every previously recorded mutation is durable.
// Returns ErrJournalFull when the chunk does not fit the record area;
// the caller checkpoints (which absorbs the pending records into the
// snapshot) and needs no retry.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked(0)
}

// FlushRound is Flush with an explicit commit-round stamp in the chunk
// header — the prepare half of internal/walshard's two-phase cross-shard
// commit. The chunk is durable but conditional: RecoverCommitted
// replays it only once the group's commit stamp covers the round.
func (j *Journal) FlushRound(round uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushLocked(round)
}

func (j *Journal) flushLocked(round uint64) error {
	if j.pendingCount == 0 {
		return nil
	}
	t0 := obs.Start()

	// Chunk: header fields, payload, trailing checksum over both.
	e := marshal.NewEncoder(make([]byte, 0, chunkHdrSize+len(j.pending)+8))
	e.U64(chunkMagic).U64(j.epoch).U64(j.pendingFirst).U64(round)
	e.U32(j.pendingCount).U32(uint32(len(j.pending)))
	buf := append(e.Bytes(), j.pending...)
	se := marshal.NewEncoder(nil)
	se.U64(fletcher64(buf))
	buf = append(buf, se.Bytes()...)

	nb := (uint64(len(buf)) + uint64(j.bs) - 1) / uint64(j.bs)
	if j.tail+nb > j.recBlocks {
		return ErrJournalFull
	}
	blk := make([]byte, j.bs)
	for i := uint64(0); i < nb; i++ {
		lo := i * uint64(j.bs)
		hi := lo + uint64(j.bs)
		if hi > uint64(len(buf)) {
			hi = uint64(len(buf))
		}
		copy(blk, buf[lo:hi])
		for z := hi - lo; z < uint64(j.bs); z++ {
			blk[z] = 0
		}
		if err := j.d.WriteBlock(j.recBase+j.tail+i, blk); err != nil {
			return err
		}
	}

	first := j.pendingFirst
	j.flushedSeq = j.pendingFirst + uint64(j.pendingCount) - 1
	j.tail += nb
	obs.WALCommits.Add(j.shard, 1)
	obs.WALCommitRecords.Record(j.shard, uint64(j.pendingCount))
	obs.WALFlushLatency.Since(j.shard, t0)
	obs.KernelTrace.Emit(obs.KindWALCommit, first, uint64(j.pendingCount))
	j.pending = nil
	j.pendingFirst = 0
	j.pendingCount = 0
	return nil
}

// Checkpoint snapshots f into the A/B region (stamped with the highest
// recorded sequence number — f must already contain every recorded
// mutation, which holds for the replica FS the journal is attached to)
// and truncates the record area by bumping the epoch. Pending records
// are absorbed by the snapshot, so a checkpoint is also a durability
// point: after it returns, everything recorded is durable.
func (j *Journal) Checkpoint(f *fs.FS) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.nextSeq - 1
	view := &subStore{d: j.d, n: j.snapBlocks}
	if err := fs.SaveStamped(f, view, seq); err != nil {
		return err
	}
	// Snapshot header is durable — the commit point has passed. The
	// journal header rewrite only reclaims record-area space; a crash
	// before it leaves stale chunks that the stamp already covers.
	j.epoch++
	if err := j.writeHeader(); err != nil {
		return err
	}
	j.snapSeq = seq
	j.flushedSeq = seq
	j.tail = 0
	j.pending = nil
	j.pendingFirst = 0
	j.pendingCount = 0
	obs.WALCheckpoints.Add(j.shard, 1)
	return nil
}

// CheckpointCommitted compacts the journal without touching the live
// filesystem or the pending buffer: it reconstructs the durable state
// purely from disk (snapshot + every valid on-disk chunk), snapshots
// that into the A/B region, and truncates the record area. Pending
// records stay in memory for the next flush.
//
// This is the checkpoint internal/walshard uses — both for background
// compaction and for the ErrJournalFull escalation inside a commit
// round. Because it covers exactly the on-disk chunk prefix, it can
// never make half of an unstamped cross-shard round durable the way
// Checkpoint's live-FS snapshot would. The caller must guarantee every
// chunk on disk is committed (walshard holds the coordinator lock, so
// no unstamped prepare chunk exists while this runs).
func (j *Journal) CheckpointCommitted() error {
	j.mu.Lock()
	defer j.mu.Unlock()

	view := &subStore{d: j.d, n: j.snapBlocks}
	f, stamp, err := fs.LoadStamped(view)
	if err != nil {
		if !errors.Is(err, fs.ErrNoSnapshot) {
			return err
		}
		f, stamp = fs.New(), 0
	}
	seq := stamp
	tail := uint64(0)
	for tail < j.tail {
		recs, first, _, count, nb, err := j.readChunk(tail, j.epoch)
		if err != nil {
			break
		}
		last := first + uint64(count) - 1
		if last > seq {
			if first != seq+1 {
				break
			}
			for _, m := range recs {
				if err := f.Apply(m); err != nil {
					return fmt.Errorf("wal: checkpoint replay seq %d (%s %q): %w", first, m.Kind, m.Path, err)
				}
			}
			seq = last
		}
		tail += nb
	}

	if err := fs.SaveStamped(f, view, seq); err != nil {
		return err
	}
	j.epoch++
	if err := j.writeHeader(); err != nil {
		return err
	}
	j.snapSeq = seq
	j.flushedSeq = seq
	j.tail = 0
	obs.WALCheckpoints.Add(j.shard, 1)
	return nil
}

// TailBlocks returns the current record-area tail (blocks used by
// flushed chunks) — the checkpoint worker's pressure signal.
func (j *Journal) TailBlocks() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tail
}

// RecordBlocks returns the record-area capacity in blocks.
func (j *Journal) RecordBlocks() uint64 { return j.recBlocks }

// SnapLag returns how many flushed records the on-disk snapshot is
// behind — the checkpoint-lag gauge.
func (j *Journal) SnapLag() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.flushedSeq - j.snapSeq
}

// Recover rebuilds the filesystem from disk: load the checkpoint
// snapshot (empty filesystem if none), then replay every journal chunk
// that passes the validity checks — magic, checksum, current epoch,
// records beyond the snapshot stamp, exact sequence continuity — and
// stop at the first chunk that fails any of them. The journal's
// in-memory state is reset to continue appending after the replayed
// tail, so Recover is idempotent and may be called once per kernel
// replica; each call returns an independently owned *fs.FS.
//
// A device without a valid journal header (fresh disk, or a header torn
// mid-checkpoint) recovers from the snapshot region alone and the
// journal is re-formatted — safe because the only path that rewrites
// the header after Format is Checkpoint, whose snapshot is durable
// before the header write starts.
func (j *Journal) Recover() (*fs.FS, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recoverLocked(^uint64(0), false)
}

// RecoverCommitted is Recover with a cross-shard commit cut: replay
// stops at the first chunk whose round exceeds committed (the group's
// durable commit stamp, internal/walshard), and that rolled-back chunk
// is physically invalidated — its first block is zeroed — so it can
// never resurrect when the stamp later advances past its round. The
// in-memory tail is left at the rollback point, so new chunks overwrite
// the rolled-back one. Like Recover, it is idempotent (re-zeroing an
// already-zeroed block) and may be called once per kernel replica.
func (j *Journal) RecoverCommitted(committed uint64) (*fs.FS, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recoverLocked(committed, true)
}

func (j *Journal) recoverLocked(committed uint64, invalidate bool) (*fs.FS, error) {
	epoch, hdrErr := j.readHeader()
	view := &subStore{d: j.d, n: j.snapBlocks}
	f, stamp, err := fs.LoadStamped(view)
	if err != nil {
		if !errors.Is(err, fs.ErrNoSnapshot) {
			return nil, err
		}
		f, stamp = fs.New(), 0
	}
	if hdrErr != nil {
		// No journal to replay; start a fresh one over the recovered
		// snapshot.
		seq := stamp
		j.epoch = 1
		j.snapSeq = stamp
		j.nextSeq = seq + 1
		j.flushedSeq = seq
		j.tail = 0
		j.pending = nil
		j.pendingFirst = 0
		j.pendingCount = 0
		if err := j.writeHeader(); err != nil {
			return nil, err
		}
		return f, nil
	}

	j.epoch = epoch
	j.snapSeq = stamp
	seq := stamp // last applied (or snapshot-covered) sequence
	tail := uint64(0)
	for tail < j.recBlocks {
		recs, first, round, count, nb, err := j.readChunk(tail, epoch)
		if err != nil {
			break // first invalid/stale chunk ends the valid prefix
		}
		if round > committed {
			// A prepare that never got its commit stamp: the round must
			// roll back on every shard. Invalidate the chunk physically
			// so a later stamp advance cannot revalidate it.
			if invalidate {
				if err := j.d.WriteBlock(j.recBase+tail, make([]byte, j.bs)); err != nil {
					return nil, err
				}
				obs.WALRoundRollbacks.Add(j.shard, 1)
			}
			break
		}
		last := first + uint64(count) - 1
		switch {
		case last <= seq:
			// Fully covered by the snapshot (chunks flushed before the
			// checkpoint whose header write did not land). Skip.
		case first == seq+1:
			for _, m := range recs {
				if err := f.Apply(m); err != nil {
					return nil, fmt.Errorf("wal: replay seq %d (%s %q): %w", first, m.Kind, m.Path, err)
				}
			}
			obs.WALReplayedRecords.Add(j.shard, uint64(count))
			seq = last
		default:
			// Sequence gap: a stale chunk from before a crash-interrupted
			// checkpoint. The valid prefix ends here.
			tail = j.recBlocks
		}
		if tail == j.recBlocks {
			break
		}
		tail += nb
	}

	j.nextSeq = seq + 1
	j.flushedSeq = seq
	j.tail = tail
	j.pending = nil
	j.pendingFirst = 0
	j.pendingCount = 0
	return f, nil
}

// readChunk parses and validates the chunk at record-area block `at`,
// returning its decoded records, first sequence, commit round, count,
// and size in blocks. Any validation failure — bad magic, wrong epoch,
// bad checksum, truncated encoding — returns an error; a chunk that
// looked like one (magic matched) but failed integrity is counted as
// torn.
func (j *Journal) readChunk(at uint64, epoch uint64) ([]fs.Mutation, uint64, uint64, uint32, uint64, error) {
	bs := uint64(j.bs)
	blk := make([]byte, j.bs)
	if err := j.d.ReadBlock(j.recBase+at, blk); err != nil {
		return nil, 0, 0, 0, 0, err
	}
	d := marshal.NewDecoder(blk[:chunkHdrSize])
	magic, ep, first, round := d.U64(), d.U64(), d.U64(), d.U64()
	count, plen := d.U32(), d.U32()
	if d.Err() != nil || magic != chunkMagic {
		return nil, 0, 0, 0, 0, fmt.Errorf("%w: no chunk at block %d", ErrCorruptChunk, at)
	}
	if ep != epoch {
		// A stale chunk from a previous epoch: not torn, just truncated
		// away by a checkpoint.
		return nil, 0, 0, 0, 0, fmt.Errorf("%w: epoch %d at block %d, journal at %d", ErrCorruptChunk, ep, at, epoch)
	}
	total := uint64(chunkHdrSize) + uint64(plen) + 8
	nb := (total + bs - 1) / bs
	if at+nb > j.recBlocks || count == 0 {
		obs.WALTornChunks.Add(j.shard, 1)
		return nil, 0, 0, 0, 0, fmt.Errorf("%w: chunk at block %d overruns record area", ErrCorruptChunk, at)
	}
	buf := make([]byte, nb*bs)
	copy(buf, blk)
	for i := uint64(1); i < nb; i++ {
		if err := j.d.ReadBlock(j.recBase+at+i, buf[i*bs:(i+1)*bs]); err != nil {
			return nil, 0, 0, 0, 0, err
		}
	}
	body := buf[:uint64(chunkHdrSize)+uint64(plen)]
	sumDec := marshal.NewDecoder(buf[len(body) : len(body)+8])
	if sum := sumDec.U64(); fletcher64(body) != sum {
		obs.WALTornChunks.Add(j.shard, 1)
		return nil, 0, 0, 0, 0, fmt.Errorf("%w: checksum mismatch at block %d", ErrCorruptChunk, at)
	}
	recs := make([]fs.Mutation, 0, count)
	rd := marshal.NewDecoder(body[chunkHdrSize:])
	for i := uint32(0); i < count; i++ {
		recs = append(recs, decodeMutation(rd))
	}
	if err := rd.Finish(); err != nil {
		obs.WALTornChunks.Add(j.shard, 1)
		return nil, 0, 0, 0, 0, fmt.Errorf("%w: record decode at block %d: %v", ErrCorruptChunk, at, err)
	}
	return recs, first, round, count, nb, nil
}

// encodeMutation appends one record to the encoder (the journal wire
// format; decodeMutation is the inverse, with the round-trip VC in
// wal_obligations.go).
func encodeMutation(e *marshal.Encoder, m fs.Mutation) {
	e.U8(uint8(m.Kind))
	e.U64(uint64(m.Ino))
	e.U64(m.Off)
	e.U64(m.Size)
	e.String(m.Path)
	e.String(m.Path2)
	e.BytesField(m.Data)
}

// decodeMutation reads one record; the returned Data is an owned copy.
func decodeMutation(d *marshal.Decoder) fs.Mutation {
	return fs.Mutation{
		Kind:  fs.MutKind(d.U8()),
		Ino:   fs.Ino(d.U64()),
		Off:   d.U64(),
		Size:  d.U64(),
		Path:  d.String(),
		Path2: d.String(),
		Data:  d.BytesField(),
	}
}

// fletcher64 is the same position-dependent checksum internal/fs uses
// for snapshots (the threat model is torn writes, not adversaries).
func fletcher64(p []byte) uint64 {
	var a, b uint64 = 1, 0
	for _, c := range p {
		a = (a + uint64(c)) % 0xffffffff
		b = (b + a) % 0xffffffff
	}
	return b<<32 | a
}
