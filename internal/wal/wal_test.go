package wal

import (
	"errors"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/verifier"
)

func newTestJournal(t *testing.T, disk *fs.MemBlockStore) *Journal {
	t.Helper()
	j, err := New(disk, 64)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// runSteps applies mutations through a journal-wired FS and returns it.
func runSteps(t *testing.T, j *Journal, ms []fs.Mutation) *fs.FS {
	t.Helper()
	f := fs.New()
	f.SetJournal(j)
	for _, m := range ms {
		if err := f.Apply(m); err != nil {
			t.Fatalf("apply %s %q: %v", m.Kind, m.Path, err)
		}
	}
	return f
}

func TestRecoveryEmptyDevice(t *testing.T) {
	disk := fs.NewMemBlockStore(512, 256)
	j := newTestJournal(t, disk)
	f, err := j.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Equal(f, fs.New()) {
		t.Fatal("recovery from an empty device is not the empty filesystem")
	}
	if got := j.DurableSeq(); got != 0 {
		t.Fatalf("durable seq %d on empty device", got)
	}
}

func TestRecoveryReplaysFlushedRecords(t *testing.T) {
	disk := fs.NewMemBlockStore(512, 256)
	j := newTestJournal(t, disk)
	if err := j.Format(); err != nil {
		t.Fatal(err)
	}
	f := runSteps(t, j, []fs.Mutation{
		{Kind: fs.MutCreate, Path: "/x"},
		{Kind: fs.MutWrite, Ino: 2, Data: []byte("payload")},
		{Kind: fs.MutMkdir, Path: "/dir"},
	})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	j2 := newTestJournal(t, disk)
	rec, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Equal(rec, f) {
		t.Fatal("recovered filesystem differs from the flushed one")
	}
	if j2.DurableSeq() != 3 {
		t.Fatalf("durable seq %d, want 3", j2.DurableSeq())
	}
}

func TestRecoveryDropsUnflushedTail(t *testing.T) {
	disk := fs.NewMemBlockStore(512, 256)
	j := newTestJournal(t, disk)
	if err := j.Format(); err != nil {
		t.Fatal(err)
	}
	f := runSteps(t, j, []fs.Mutation{{Kind: fs.MutCreate, Path: "/kept"}})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(fs.Mutation{Kind: fs.MutCreate, Path: "/lost"}); err != nil {
		t.Fatal(err)
	}
	// No flush: /lost was never acknowledged.

	rec, err := newTestJournal(t, disk).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Lookup("/kept"); err != nil {
		t.Fatalf("acknowledged file lost: %v", err)
	}
	if _, err := rec.Lookup("/lost"); err == nil {
		t.Fatal("unacknowledged mutation resurrected by recovery")
	}
}

func TestRecoveryTornTail(t *testing.T) {
	disk := fs.NewMemBlockStore(512, 256)
	j := newTestJournal(t, disk)
	if err := j.Format(); err != nil {
		t.Fatal(err)
	}
	f := runSteps(t, j, []fs.Mutation{{Kind: fs.MutCreate, Path: "/a"}})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	firstChunkEnd := j.tail
	if err := f.Apply(fs.Mutation{Kind: fs.MutCreate, Path: "/b"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	// Tear the second chunk: corrupt its header/payload bytes (the
	// zero padding after the checksum is legitimately not covered).
	blk := make([]byte, 512)
	if err := disk.ReadBlock(j.recBase+firstChunkEnd, blk); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 40; i++ {
		blk[i] = 0xFF
	}
	if err := disk.WriteBlock(j.recBase+firstChunkEnd, blk); err != nil {
		t.Fatal(err)
	}

	rec, err := newTestJournal(t, disk).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Lookup("/a"); err != nil {
		t.Fatalf("intact chunk lost: %v", err)
	}
	if _, err := rec.Lookup("/b"); err == nil {
		t.Fatal("torn chunk was replayed")
	}
}

func TestRecoveryAfterCheckpoint(t *testing.T) {
	disk := fs.NewMemBlockStore(512, 256)
	j := newTestJournal(t, disk)
	if err := j.Format(); err != nil {
		t.Fatal(err)
	}
	f := runSteps(t, j, []fs.Mutation{
		{Kind: fs.MutCreate, Path: "/pre"},
	})
	if err := j.Checkpoint(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Apply(fs.Mutation{Kind: fs.MutCreate, Path: "/post"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	j2 := newTestJournal(t, disk)
	rec, err := j2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Equal(rec, f) {
		t.Fatal("recovery after checkpoint + flush diverged")
	}
	if j2.DurableSeq() != j.DurableSeq() {
		t.Fatalf("durable seq %d, want %d", j2.DurableSeq(), j.DurableSeq())
	}
}

func TestJournalFullCheckpoint(t *testing.T) {
	// Tiny journal: 1 header + 3 record blocks.
	disk := fs.NewMemBlockStore(512, 64)
	j, err := New(disk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Format(); err != nil {
		t.Fatal(err)
	}
	f := fs.New()
	f.SetJournal(j)
	big := make([]byte, 3*512) // one flush cannot fit the record area
	if _, err := f.Create("/big"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(2, 0, big); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("flush of oversized chunk: %v, want ErrJournalFull", err)
	}
	// The contract: a full journal checkpoints instead, which absorbs
	// the pending records.
	if err := j.Checkpoint(f); err != nil {
		t.Fatal(err)
	}
	rec, err := newTestJournal2(t, disk, 4).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Equal(rec, f) {
		t.Fatal("state lost across journal-full checkpoint")
	}
}

func newTestJournal2(t *testing.T, disk *fs.MemBlockStore, jb uint64) *Journal {
	t.Helper()
	j, err := New(disk, jb)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestBadGeometry(t *testing.T) {
	disk := fs.NewMemBlockStore(512, 4)
	if _, err := New(disk, 4); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("New on a too-small device: %v, want ErrBadGeometry", err)
	}
}

func TestFaultStoreModes(t *testing.T) {
	for _, mode := range []FaultMode{FaultCrash, FaultTorn, FaultShort} {
		disk := fs.NewMemBlockStore(512, 8)
		fsStore := NewFaultStore(disk, mode, 1)
		p := make([]byte, 512)
		for i := range p {
			p[i] = 0x11
		}
		if err := fsStore.WriteBlock(0, p); err != nil {
			t.Fatalf("%s: pre-crash write: %v", mode, err)
		}
		if err := fsStore.WriteBlock(1, p); !errors.Is(err, ErrCrashed) {
			t.Fatalf("%s: crash write returned %v", mode, err)
		}
		if err := fsStore.WriteBlock(2, p); !errors.Is(err, ErrCrashed) {
			t.Fatalf("%s: post-crash write returned %v", mode, err)
		}
		got := make([]byte, 512)
		if err := fsStore.ReadBlock(1, got); err != nil {
			t.Fatalf("%s: post-crash read: %v", mode, err)
		}
		switch mode {
		case FaultCrash:
			if got[0] != 0 || got[511] != 0 {
				t.Fatalf("crash mode landed data: %x %x", got[0], got[511])
			}
		case FaultTorn:
			if got[0] != 0x11 || got[511] == 0x11 {
				t.Fatalf("torn mode halves wrong: %x %x", got[0], got[511])
			}
		case FaultShort:
			if got[0] != 0x11 || got[511] != 0 {
				t.Fatalf("short mode halves wrong: %x %x", got[0], got[511])
			}
		}
		// Post-crash attempts are rejected before being counted.
		if fsStore.Writes() != 2 || !fsStore.Crashed() {
			t.Fatalf("%s: writes=%d crashed=%t", mode, fsStore.Writes(), fsStore.Crashed())
		}
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 71, Module: "wal"})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
	if len(rep.Results) < 5 {
		t.Fatalf("only %d wal VCs ran", len(rep.Results))
	}
}
