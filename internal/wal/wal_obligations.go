package wal

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the journal's verification conditions.
// The centerpiece is the crash-refinement sweep: for a scripted
// workload, a simulated crash is injected at EVERY block write (in
// every fault mode — dropped, torn, short), recovery runs on the frozen
// disk, and the recovered filesystem must equal some prefix of the
// workload's mutation sequence no shorter than the acknowledged prefix.
// That is exactly the crash state machine of the package doc: disk
// state refines "a prefix-closed linearization of acknowledged
// mutations" — no acked (post-Sync) mutation lost, no torn record
// replayed.
func RegisterObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "wal", Name: "crash-sweep-refines-spec", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				for _, mode := range []FaultMode{FaultCrash, FaultTorn, FaultShort} {
					if err := sweepCrashPoints(mode); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "wal", Name: "torn-record-never-replayed", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error { return tornChunkCheck(r) }},
		verifier.Obligation{Module: "wal", Name: "record-encoding-roundtrip", Kind: verifier.KindRoundTrip,
			Budget: func(r *rand.Rand, budget int) error { return recordRoundTrip(r, 500*budget) }},
		verifier.Obligation{Module: "wal", Name: "checkpoint-preserves-state", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return checkpointPreservesState(r) }},
		verifier.Obligation{Module: "wal", Name: "recovery-idempotent", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error { return recoveryIdempotent() }},
	)
}

// walStep is one step of the scripted crash workload: exactly one of a
// mutation, a Sync (group-commit flush), or an explicit checkpoint.
type walStep struct {
	m    fs.Mutation
	sync bool
	ckpt bool
}

// walScript covers every mutation kind with sync points between groups
// and a mid-script checkpoint, so crash points land inside record
// flushes, snapshot payload writes, both header writes, and the
// unsynced tail. Inode numbers are deterministic (fs assigns next++,
// root is 1): /a=2, /d=3, /d/c=4, /b=5.
func walScript() []walStep {
	return []walStep{
		{m: fs.Mutation{Kind: fs.MutCreate, Path: "/a"}},
		{m: fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 0, Data: []byte("hello wal")}},
		{sync: true},
		{m: fs.Mutation{Kind: fs.MutMkdir, Path: "/d"}},
		{m: fs.Mutation{Kind: fs.MutCreate, Path: "/d/c"}},
		{m: fs.Mutation{Kind: fs.MutWrite, Ino: 4, Off: 0, Data: []byte("nested file payload")}},
		{sync: true},
		{ckpt: true},
		{m: fs.Mutation{Kind: fs.MutCreate, Path: "/b"}},
		{m: fs.Mutation{Kind: fs.MutLink, Path: "/b", Path2: "/d/blink"}},
		{m: fs.Mutation{Kind: fs.MutWrite, Ino: 2, Off: 6, Data: []byte("rewritten tail")}},
		{sync: true},
		{m: fs.Mutation{Kind: fs.MutUnlink, Path: "/d/blink"}},
		{m: fs.Mutation{Kind: fs.MutRename, Path: "/d/c", Path2: "/d/e"}},
		{m: fs.Mutation{Kind: fs.MutTruncate, Ino: 2, Size: 5}},
		{sync: true},
		{m: fs.Mutation{Kind: fs.MutWrite, Ino: 5, Off: 0, Data: []byte("never synced")}},
	}
}

// scriptMutations extracts just the mutations of a script, in order.
func scriptMutations(steps []walStep) []fs.Mutation {
	var ms []fs.Mutation
	for _, s := range steps {
		if !s.sync && !s.ckpt {
			ms = append(ms, s.m)
		}
	}
	return ms
}

// goldenStates returns golden[S] = a fresh filesystem with the first S
// script mutations applied, for S in [0, len(mutations)].
func goldenStates(ms []fs.Mutation) ([]*fs.FS, error) {
	out := make([]*fs.FS, 0, len(ms)+1)
	// Each prefix is derived independently so the snapshots share no
	// state.
	for s := 0; s <= len(ms); s++ {
		g := fs.New()
		for _, m := range ms[:s] {
			if err := g.Apply(m); err != nil {
				return nil, fmt.Errorf("golden prefix %d: %w", s, err)
			}
		}
		out = append(out, g)
	}
	return out, nil
}

// runWorkload drives the script against a journal on d: mutations are
// applied to an in-memory FS wired to the journal, sync steps Flush
// (checkpointing when the record area fills), ckpt steps Checkpoint. It
// returns how many mutations were acknowledged as durable when the run
// ended — by completing, or by the first disk error (the crash).
func runWorkload(d fs.BlockStore, steps []walStep, journalBlocks uint64) (acked int, _ error) {
	j, err := New(d, journalBlocks)
	if err != nil {
		return 0, err
	}
	if err := j.Format(); err != nil {
		return 0, nil // crashed formatting: nothing acked
	}
	f := fs.New()
	f.SetJournal(j)
	applied := 0
	for _, s := range steps {
		switch {
		case s.sync:
			err := j.Flush()
			if errors.Is(err, ErrJournalFull) {
				err = j.Checkpoint(f)
			}
			if err != nil {
				return acked, nil // crash: the sync was never acknowledged
			}
			acked = applied
		case s.ckpt:
			if err := j.Checkpoint(f); err != nil {
				return acked, nil
			}
			acked = applied
		default:
			if err := f.Apply(s.m); err != nil {
				return acked, fmt.Errorf("wal workload apply %s %q: %w", s.m.Kind, s.m.Path, err)
			}
			applied++
		}
	}
	return acked, nil
}

const (
	sweepBlockSize = 512
	sweepBlocks    = 256
	sweepJournal   = 64
)

// sweepCrashPoints runs the scripted workload once per possible crash
// point (every block write, under the given fault mode), recovers from
// the frozen disk, and checks refinement: recovered state ==
// golden[S] for some S with acked ≤ S ≤ total, and the fs invariant
// holds.
func sweepCrashPoints(mode FaultMode) error {
	steps := walScript()
	ms := scriptMutations(steps)
	golden, err := goldenStates(ms)
	if err != nil {
		return err
	}

	// Probe run: count total writes with injection disabled.
	probe := NewFaultStore(fs.NewMemBlockStore(sweepBlockSize, sweepBlocks), mode, -1)
	if _, err := runWorkload(probe, steps, sweepJournal); err != nil {
		return fmt.Errorf("probe run: %v", err)
	}
	totalWrites := probe.Writes()
	if totalWrites < 8 {
		return fmt.Errorf("probe run made only %d writes; script too small to sweep", totalWrites)
	}

	for k := 0; k < totalWrites; k++ {
		disk := fs.NewMemBlockStore(sweepBlockSize, sweepBlocks)
		faulty := NewFaultStore(disk, mode, k)
		acked, err := runWorkload(faulty, steps, sweepJournal)
		if err != nil {
			return fmt.Errorf("mode %s crash@%d: %v", mode, k, err)
		}
		// Reboot: recover on the raw device (writable again, contents
		// frozen at the crash point).
		j, err := New(disk, sweepJournal)
		if err != nil {
			return err
		}
		rec, err := j.Recover()
		if err != nil {
			return fmt.Errorf("mode %s crash@%d: recovery failed: %v", mode, k, err)
		}
		if err := rec.CheckInvariant(); err != nil {
			return fmt.Errorf("mode %s crash@%d: recovered fs invariant: %v", mode, k, err)
		}
		matched := -1
		for s := acked; s <= len(ms); s++ {
			if fs.Equal(rec, golden[s]) {
				matched = s
				break
			}
		}
		if matched < 0 {
			return fmt.Errorf("mode %s crash@%d: recovered state matches no prefix in [%d, %d] — an acknowledged mutation was lost or a torn record replayed",
				mode, k, acked, len(ms))
		}
	}
	return nil
}

// tornChunkCheck flushes three chunks, corrupts the middle one directly
// (simulating a torn multi-chunk region), and checks recovery replays
// exactly the chunks before the tear — the torn chunk and everything
// after it are discarded, never partially applied.
func tornChunkCheck(r *rand.Rand) error {
	disk := fs.NewMemBlockStore(sweepBlockSize, sweepBlocks)
	j, err := New(disk, sweepJournal)
	if err != nil {
		return err
	}
	if err := j.Format(); err != nil {
		return err
	}
	f := fs.New()
	f.SetJournal(j)

	var ms []fs.Mutation
	apply := func(m fs.Mutation) error {
		ms = append(ms, m)
		return f.Apply(m)
	}
	chunkStarts := []uint64{j.tail}
	if err := apply(fs.Mutation{Kind: fs.MutCreate, Path: "/one"}); err != nil {
		return err
	}
	if err := j.Flush(); err != nil {
		return err
	}
	afterFirst := len(ms)
	chunkStarts = append(chunkStarts, j.tail)
	if err := apply(fs.Mutation{Kind: fs.MutCreate, Path: "/two"}); err != nil {
		return err
	}
	if err := apply(fs.Mutation{Kind: fs.MutWrite, Ino: 3, Data: []byte("second chunk")}); err != nil {
		return err
	}
	if err := j.Flush(); err != nil {
		return err
	}
	chunkStarts = append(chunkStarts, j.tail)
	if err := apply(fs.Mutation{Kind: fs.MutCreate, Path: "/three"}); err != nil {
		return err
	}
	if err := j.Flush(); err != nil {
		return err
	}

	// Tear the middle chunk: flip one random bit inside its checksummed
	// region (header past the magic, or the start of the payload — a
	// chunk with a record has well over 40 meaningful bytes).
	blk := make([]byte, sweepBlockSize)
	tornAt := j.recBase + chunkStarts[1]
	if err := disk.ReadBlock(tornAt, blk); err != nil {
		return err
	}
	blk[8+r.Intn(32)] ^= 1 << uint(r.Intn(8))
	if err := disk.WriteBlock(tornAt, blk); err != nil {
		return err
	}

	j2, err := New(disk, sweepJournal)
	if err != nil {
		return err
	}
	rec, err := j2.Recover()
	if err != nil {
		return fmt.Errorf("recovery over torn chunk: %v", err)
	}
	want := fs.New()
	for _, m := range ms[:afterFirst] {
		if err := want.Apply(m); err != nil {
			return err
		}
	}
	if !fs.Equal(rec, want) {
		return fmt.Errorf("recovery did not stop at the torn chunk: replayed state diverges from the pre-tear prefix")
	}
	return nil
}

// recordRoundTrip checks encodeMutation/decodeMutation is the identity
// on random mutations — the journal's marshalling lemma.
func recordRoundTrip(r *rand.Rand, iters int) error {
	for i := 0; i < iters; i++ {
		m := fs.Mutation{
			Kind: fs.MutKind(r.Intn(10)),
			Ino:  fs.Ino(r.Uint64()),
			Off:  r.Uint64(),
			Size: r.Uint64(),
		}
		if r.Intn(2) == 0 {
			m.Path = randPath(r)
		}
		if r.Intn(2) == 0 {
			m.Path2 = randPath(r)
		}
		if r.Intn(2) == 0 {
			m.Data = make([]byte, r.Intn(300))
			r.Read(m.Data)
		}
		e := marshal.NewEncoder(nil)
		encodeMutation(e, m)
		d := marshal.NewDecoder(e.Bytes())
		got := decodeMutation(d)
		if err := d.Finish(); err != nil {
			return fmt.Errorf("record %d: %v", i, err)
		}
		if got.Kind != m.Kind || got.Ino != m.Ino || got.Off != m.Off || got.Size != m.Size ||
			got.Path != m.Path || got.Path2 != m.Path2 || string(got.Data) != string(m.Data) {
			return fmt.Errorf("record %d: round trip diverged: %+v != %+v", i, got, m)
		}
	}
	return nil
}

func randPath(r *rand.Rand) string {
	const chars = "abcdefgh"
	p := "/"
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		if i > 0 {
			p += "/"
		}
		p += string(chars[r.Intn(len(chars))])
	}
	return p
}

// checkpointPreservesState runs a random mutation workload, checkpoints,
// and recovers: the recovered filesystem must equal the live one, and
// the journal must be empty (nothing left to replay).
func checkpointPreservesState(r *rand.Rand) error {
	disk := fs.NewMemBlockStore(sweepBlockSize, 1024)
	j, err := New(disk, 128)
	if err != nil {
		return err
	}
	if err := j.Format(); err != nil {
		return err
	}
	f := fs.New()
	f.SetJournal(j)
	for i := 0; i < 40; i++ {
		path := fmt.Sprintf("/f%d", i)
		ino, err := f.Create(path)
		if err != nil {
			return err
		}
		blob := make([]byte, r.Intn(2000))
		r.Read(blob)
		if _, err := f.WriteAt(ino, 0, blob); err != nil {
			return err
		}
		if r.Intn(4) == 0 {
			if err := j.Flush(); err != nil {
				return err
			}
		}
	}
	if err := j.Checkpoint(f); err != nil {
		return err
	}
	j2, err := New(disk, 128)
	if err != nil {
		return err
	}
	rec, err := j2.Recover()
	if err != nil {
		return err
	}
	if !fs.Equal(rec, f) {
		return fmt.Errorf("recovered state differs from checkpointed state")
	}
	if got := j2.DurableSeq(); got != j.DurableSeq() {
		return fmt.Errorf("recovered durable seq %d, want %d", got, j.DurableSeq())
	}
	return nil
}

// recoveryIdempotent recovers the same crashed disk several times (as a
// multi-replica boot does, once per replica) and checks every recovery
// yields the same state and the journal continues from the same
// sequence number.
func recoveryIdempotent() error {
	steps := walScript()
	disk := fs.NewMemBlockStore(sweepBlockSize, sweepBlocks)
	// Crash roughly mid-workload.
	probe := NewFaultStore(fs.NewMemBlockStore(sweepBlockSize, sweepBlocks), FaultCrash, -1)
	if _, err := runWorkload(probe, steps, sweepJournal); err != nil {
		return err
	}
	faulty := NewFaultStore(disk, FaultCrash, probe.Writes()/2)
	if _, err := runWorkload(faulty, steps, sweepJournal); err != nil {
		return err
	}
	var first *fs.FS
	var firstSeq uint64
	for i := 0; i < 3; i++ {
		j, err := New(disk, sweepJournal)
		if err != nil {
			return err
		}
		rec, err := j.Recover()
		if err != nil {
			return fmt.Errorf("recovery %d: %v", i, err)
		}
		if i == 0 {
			first, firstSeq = rec, j.DurableSeq()
			continue
		}
		if !fs.Equal(rec, first) {
			return fmt.Errorf("recovery %d produced a different state", i)
		}
		if j.DurableSeq() != firstSeq {
			return fmt.Errorf("recovery %d durable seq %d, want %d", i, j.DurableSeq(), firstSeq)
		}
	}
	return nil
}
