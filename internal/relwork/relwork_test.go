package relwork

import (
	"strings"
	"testing"

	"github.com/verified-os/vnros/internal/verifier"
)

// TestPublishedMatchesPaper spot-checks the transcription of Tables 1
// and 2 against the paper.
func TestPublishedMatchesPaper(t *testing.T) {
	byName := map[string]Project{}
	for _, p := range Published() {
		byName[p.Name] = p
	}
	if len(byName) != 5 {
		t.Fatalf("projects = %d", len(byName))
	}
	// Table 1 spot checks.
	if byName["seL4"].Table1["Multi-processor support"] != No {
		t.Error("seL4 multiprocessor should be ✗")
	}
	if byName["CertiKOS"].Table1["Security properties"] != Partial {
		t.Error("CertiKOS security should be (✓)")
	}
	if byName["CertiKOS"].Table1["Multi-processor support"] != Yes {
		t.Error("CertiKOS multiprocessor should be ✓")
	}
	for _, p := range Published() {
		if p.Table1["Process-centric spec"] != No {
			t.Errorf("%s process-centric spec should be ✗ (the paper's whole point)", p.Name)
		}
		if p.Table1["Kernel memory safety"] != Yes || p.Table1["Specification refinement"] != Yes {
			t.Errorf("%s first two rows should be ✓", p.Name)
		}
		// Table 2: network stack and system libraries are ✗ everywhere.
		if p.Table2["Network stack"] != No || p.Table2["System libraries"] != No {
			t.Errorf("%s network/syslib should be ✗", p.Name)
		}
		if p.Table2["Scheduler"] != Yes || p.Table2["Memory management"] != Yes {
			t.Errorf("%s scheduler/mm should be ✓", p.Name)
		}
	}
	// Table 2 spot checks.
	if byName["Hyperkernel"].Table2["Filesystem"] != Partial {
		t.Error("Hyperkernel filesystem should be (✓)")
	}
	if byName["Verve"].Table2["Complex drivers"] != Yes {
		t.Error("Verve drivers should be ✓")
	}
	if byName["seL4"].Table2["Threads and synchronization"] != No {
		t.Error("seL4 threads should be ✗")
	}
	if byName["CertiKOS"].Table2["Threads and synchronization"] != Yes {
		t.Error("CertiKOS threads should be ✓")
	}
}

func TestDerivedColumn(t *testing.T) {
	r := NewRegistry()
	r.AddComponent(Component{Table2Row: "Scheduler", Package: "internal/sched", Checked: true})
	r.AddComponent(Component{Table2Row: "Network stack", Package: "internal/netstack", Checked: true})
	r.AddComponent(Component{Table2Row: "Complex drivers", Package: "internal/dev", Checked: false})
	r.SetTable1("Specification refinement", Yes)
	r.SetTable1("Security properties", Partial)

	p := r.Derive("vnros")
	if p.Table2["Scheduler"] != Yes {
		t.Error("checked component should derive ✓")
	}
	if p.Table2["Complex drivers"] != Partial {
		t.Error("unchecked component should derive (✓)")
	}
	if p.Table2["Filesystem"] != No {
		t.Error("unregistered component should derive ✗")
	}
	if p.Table1["Specification refinement"] != Yes || p.Table1["Security properties"] != Partial {
		t.Error("table1 claims not applied")
	}
	if p.Table1["Multi-processor support"] != No {
		t.Error("unclaimed table1 property should default to ✗")
	}
}

func TestCheckedDominatesPartial(t *testing.T) {
	r := NewRegistry()
	r.AddComponent(Component{Table2Row: "Filesystem", Package: "a", Checked: false})
	r.AddComponent(Component{Table2Row: "Filesystem", Package: "b", Checked: true})
	if r.Derive("x").Table2["Filesystem"] != Yes {
		t.Error("Yes should dominate Partial")
	}
}

func TestRenderIncludesAllColumns(t *testing.T) {
	r := NewRegistry()
	r.AddComponent(Component{Table2Row: "Scheduler", Package: "internal/sched", Checked: true})
	self := r.Derive("vnros")
	t1 := RenderTable1(self)
	t2 := RenderTable2(self)
	for _, want := range []string{"seL4", "Verve", "Hyperkernel", "CertiKOS", "seKVM+VRM", "vnros"} {
		if !strings.Contains(t1, want) || !strings.Contains(t2, want) {
			t.Errorf("missing column %q", want)
		}
	}
	for _, row := range Table1Properties {
		if !strings.Contains(t1, row) {
			t.Errorf("table1 missing row %q", row)
		}
	}
	for _, row := range Table2Components {
		if !strings.Contains(t2, row) {
			t.Errorf("table2 missing row %q", row)
		}
	}
}

func TestComponentsSorted(t *testing.T) {
	r := NewRegistry()
	r.AddComponent(Component{Table2Row: "Z", Package: "z"})
	r.AddComponent(Component{Table2Row: "A", Package: "b"})
	r.AddComponent(Component{Table2Row: "A", Package: "a"})
	cs := r.Components()
	if cs[0].Package != "a" || cs[1].Package != "b" || cs[2].Table2Row != "Z" {
		t.Fatalf("order = %+v", cs)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 109})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
