package relwork

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the comparison-table VCs: the
// literature transcription matches the paper's cells (spot-checked
// against the printed tables), the derivation rules are monotone, and
// the renderer includes every row and column.
func RegisterObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "relwork", Name: "table1-matches-paper", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				byName := map[string]Project{}
				for _, p := range Published() {
					byName[p.Name] = p
				}
				// The cells the paper's argument hinges on.
				checks := []struct {
					proj, prop string
					want       Mark
				}{
					{"seL4", "Multi-processor support", No},
					{"Verve", "Security properties", No},
					{"Hyperkernel", "Security properties", Yes},
					{"CertiKOS", "Security properties", Partial},
					{"CertiKOS", "Multi-processor support", Yes},
					{"seKVM+VRM", "Multi-processor support", Yes},
				}
				for _, c := range checks {
					if got := byName[c.proj].Table1[c.prop]; got != c.want {
						return fmt.Errorf("%s/%s = %v, paper says %v", c.proj, c.prop, got, c.want)
					}
				}
				for _, p := range Published() {
					if p.Table1["Process-centric spec"] != No {
						return fmt.Errorf("%s claims a process-centric spec; the paper's Table 1 has none", p.Name)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "relwork", Name: "table2-matches-paper", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				byName := map[string]Project{}
				for _, p := range Published() {
					byName[p.Name] = p
				}
				checks := []struct {
					proj, comp string
					want       Mark
				}{
					{"Hyperkernel", "Filesystem", Partial},
					{"Verve", "Complex drivers", Yes},
					{"seKVM+VRM", "Complex drivers", Yes},
					{"CertiKOS", "Threads and synchronization", Yes},
					{"Verve", "Threads and synchronization", Yes},
					{"Verve", "Process management", No},
				}
				for _, c := range checks {
					if got := byName[c.proj].Table2[c.comp]; got != c.want {
						return fmt.Errorf("%s/%s = %v, paper says %v", c.proj, c.comp, got, c.want)
					}
				}
				for _, p := range Published() {
					if p.Table2["Network stack"] != No || p.Table2["System libraries"] != No {
						return fmt.Errorf("%s: paper's Table 2 has ✗ for network/syslibs everywhere", p.Name)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "relwork", Name: "derivation-monotone", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// Adding components never lowers a mark; Checked
				// dominates unchecked.
				for trial := 0; trial < 100; trial++ {
					reg := NewRegistry()
					rows := Table2Components
					var added []Component
					prev := reg.Derive("x")
					for i := 0; i < 10; i++ {
						c := Component{
							Table2Row: rows[r.Intn(len(rows))],
							Package:   fmt.Sprintf("pkg%d", i),
							Checked:   r.Intn(2) == 0,
						}
						reg.AddComponent(c)
						added = append(added, c)
						cur := reg.Derive("x")
						for _, row := range rows {
							if cur.Table2[row] < prev.Table2[row] {
								return fmt.Errorf("mark for %q decreased after adding %+v", row, c)
							}
						}
						prev = cur
					}
					_ = added
				}
				return nil
			}},
		verifier.Obligation{Module: "relwork", Name: "render-complete", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				reg := NewRegistry()
				reg.AddComponent(Component{Table2Row: "Scheduler", Package: "x", Checked: true})
				self := reg.Derive("self-test")
				t1 := RenderTable1(self)
				t2 := RenderTable2(self)
				for _, col := range []string{"seL4", "Verve", "Hyperkernel", "CertiKOS", "seKVM+VRM", "self-test"} {
					if !strings.Contains(t1, col) || !strings.Contains(t2, col) {
						return fmt.Errorf("renderer dropped column %q", col)
					}
				}
				for _, row := range Table1Properties {
					if !strings.Contains(t1, row) {
						return fmt.Errorf("table 1 missing row %q", row)
					}
				}
				for _, row := range Table2Components {
					if !strings.Contains(t2, row) {
						return fmt.Errorf("table 2 missing row %q", row)
					}
				}
				return nil
			}},
	)
}
