// Package relwork reproduces the paper's §2 comparison tables:
//
//	Table 1 — Comparison of OS verification projects
//	Table 2 — Verified OS components
//
// The literature columns are data transcribed from the paper. The
// vnros column is NOT hand-written: it is derived from the component
// registry that internal/core populates and from the VC ledger, so the
// table row this repository claims for itself is computed from what is
// actually built and checked.
package relwork

import (
	"fmt"
	"sort"
	"strings"
)

// Mark is a table cell.
type Mark int

// Cell values, matching the paper's ✓ / (✓) / ✗ notation.
const (
	No Mark = iota
	Partial
	Yes
)

func (m Mark) String() string {
	switch m {
	case Yes:
		return "Y"
	case Partial:
		return "(Y)"
	default:
		return "-"
	}
}

// Table1Properties are the rows of Table 1.
var Table1Properties = []string{
	"Kernel memory safety",
	"Specification refinement",
	"Security properties",
	"Multi-processor support",
	"Process-centric spec",
}

// Table2Components are the rows of Table 2 (the §1 component list).
var Table2Components = []string{
	"Scheduler",
	"Memory management",
	"Filesystem",
	"Complex drivers",
	"Process management",
	"Threads and synchronization",
	"Network stack",
	"System libraries",
}

// Project is one column of the tables.
type Project struct {
	Name   string
	Table1 map[string]Mark
	Table2 map[string]Mark
}

// Published returns the literature columns exactly as the paper prints
// them (Tables 1 and 2).
func Published() []Project {
	return []Project{
		{
			Name: "seL4",
			Table1: map[string]Mark{
				"Kernel memory safety":     Yes,
				"Specification refinement": Yes,
				"Security properties":      Yes,
				"Multi-processor support":  No,
				"Process-centric spec":     No,
			},
			Table2: map[string]Mark{
				"Scheduler":                   Yes,
				"Memory management":           Yes,
				"Filesystem":                  No,
				"Complex drivers":             No,
				"Process management":          Yes,
				"Threads and synchronization": No,
				"Network stack":               No,
				"System libraries":            No,
			},
		},
		{
			Name: "Verve",
			Table1: map[string]Mark{
				"Kernel memory safety":     Yes,
				"Specification refinement": Yes,
				"Security properties":      No,
				"Multi-processor support":  No,
				"Process-centric spec":     No,
			},
			Table2: map[string]Mark{
				"Scheduler":                   Yes,
				"Memory management":           Yes,
				"Filesystem":                  No,
				"Complex drivers":             Yes,
				"Process management":          No,
				"Threads and synchronization": Yes,
				"Network stack":               No,
				"System libraries":            No,
			},
		},
		{
			Name: "Hyperkernel",
			Table1: map[string]Mark{
				"Kernel memory safety":     Yes,
				"Specification refinement": Yes,
				"Security properties":      Yes,
				"Multi-processor support":  No,
				"Process-centric spec":     No,
			},
			Table2: map[string]Mark{
				"Scheduler":                   Yes,
				"Memory management":           Yes,
				"Filesystem":                  Partial,
				"Complex drivers":             No,
				"Process management":          Yes,
				"Threads and synchronization": No,
				"Network stack":               No,
				"System libraries":            No,
			},
		},
		{
			Name: "CertiKOS",
			Table1: map[string]Mark{
				"Kernel memory safety":     Yes,
				"Specification refinement": Yes,
				"Security properties":      Partial,
				"Multi-processor support":  Yes,
				"Process-centric spec":     No,
			},
			Table2: map[string]Mark{
				"Scheduler":                   Yes,
				"Memory management":           Yes,
				"Filesystem":                  No,
				"Complex drivers":             No,
				"Process management":          Yes,
				"Threads and synchronization": Yes,
				"Network stack":               No,
				"System libraries":            No,
			},
		},
		{
			Name: "seKVM+VRM",
			Table1: map[string]Mark{
				"Kernel memory safety":     Yes,
				"Specification refinement": Yes,
				"Security properties":      Yes,
				"Multi-processor support":  Yes,
				"Process-centric spec":     No,
			},
			Table2: map[string]Mark{
				"Scheduler":                   Yes,
				"Memory management":           Yes,
				"Filesystem":                  No,
				"Complex drivers":             Yes,
				"Process management":          Yes,
				"Threads and synchronization": No,
				"Network stack":               No,
				"System libraries":            No,
			},
		},
	}
}

// Component is a self-reported vnros component for the derived column.
type Component struct {
	// Table2Row is the Table 2 row this component contributes to.
	Table2Row string
	// Package is the implementing package (documentation).
	Package string
	// Checked reports whether the component registers VC obligations
	// (our criterion for a ✓ vs a (✓)).
	Checked bool
}

// Registry accumulates the components internal/core wires up.
type Registry struct {
	comps []Component
	// table1 overrides derived Table 1 marks (e.g. security: the paper
	// itself defers isolation properties, so core registers Partial).
	table1 map[string]Mark
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{table1: make(map[string]Mark)} }

// AddComponent records a built component.
func (r *Registry) AddComponent(c Component) { r.comps = append(r.comps, c) }

// SetTable1 records a Table 1 property claim.
func (r *Registry) SetTable1(property string, m Mark) { r.table1[property] = m }

// Derive computes the vnros column from the registry.
func (r *Registry) Derive(name string) Project {
	p := Project{Name: name, Table1: map[string]Mark{}, Table2: map[string]Mark{}}
	for _, row := range Table2Components {
		p.Table2[row] = No
	}
	for _, c := range r.comps {
		cur := p.Table2[c.Table2Row]
		m := Partial
		if c.Checked {
			m = Yes
		}
		if m > cur {
			p.Table2[c.Table2Row] = m
		}
	}
	for _, prop := range Table1Properties {
		p.Table1[prop] = No
	}
	for prop, m := range r.table1 {
		p.Table1[prop] = m
	}
	return p
}

// RenderTable1 renders the Table 1 matrix (published + extra columns).
func RenderTable1(extra ...Project) string {
	return render("Table 1: Comparison of OS verification projects",
		Table1Properties, func(p Project) map[string]Mark { return p.Table1 }, extra)
}

// RenderTable2 renders the Table 2 matrix.
func RenderTable2(extra ...Project) string {
	return render("Table 2: Verified OS components",
		Table2Components, func(p Project) map[string]Mark { return p.Table2 }, extra)
}

func render(title string, rows []string, sel func(Project) map[string]Mark, extra []Project) string {
	projects := append(Published(), extra...)
	var b strings.Builder
	b.WriteString(title + "\n")
	width := 0
	for _, r := range rows {
		if len(r) > width {
			width = len(r)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, p := range projects {
		fmt.Fprintf(&b, "%12s", p.Name)
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s", width+2, row)
		for _, p := range projects {
			fmt.Fprintf(&b, "%12s", sel(p)[row])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Components returns the registered components sorted by row then
// package (for the DESIGN/EXPERIMENTS inventory dump).
func (r *Registry) Components() []Component {
	out := make([]Component, len(r.comps))
	copy(out, r.comps)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table2Row != out[j].Table2Row {
			return out[i].Table2Row < out[j].Table2Row
		}
		return out[i].Package < out[j].Package
	})
	return out
}
