package fs

// This file is the filesystem's side of page-cache coherence: the hook
// through which a cache (internal/pcache) learns that file data it may
// hold has changed. Like the journal hook it is defined here — fs says
// *when* data visibility changes — while the cache itself lives in
// internal/pcache, so the two packages compose without an import cycle.
//
// Invalidation is published *after* the mutation is applied, while the
// mutating op still holds the combiner on the data-owning replica. A
// concurrent cached read that misses the kill linearizes before the
// write; one that sees it refills from the post-write state. The cache
// additionally version-stamps fills so a fill that raced the write
// cannot insert stale bytes (see pcache's package comment).

// Invalidator receives data-visibility events from an FS instance:
// byte ranges whose contents changed, and inodes whose cached pages
// are dead wholesale (final unlink).
type Invalidator interface {
	// InvalidateRange reports that bytes [lo, hi) of ino changed.
	InvalidateRange(ino Ino, lo, hi uint64)
	// InvalidateIno reports that every cached page of ino is dead.
	InvalidateIno(ino Ino)
}

// SetInvalidator attaches (or detaches, with nil) the invalidation
// sink. Unlike the journal, on a replicated kernel *every* replica's FS
// must carry the sink: whichever replica's combiner applies a write
// first must kill cached pages before any reader can observe the new
// bytes through that replica. Invalidation is idempotent, so R replicas
// publishing the same kill is correct (the cache counts each, which is
// why pcache.invalidations is an apply-side metric).
func (f *FS) SetInvalidator(inv Invalidator) { f.inv = inv }

// invalidateRange forwards a data-range kill to the attached sink.
func (f *FS) invalidateRange(ino Ino, lo, hi uint64) {
	if f.inv != nil {
		f.inv.InvalidateRange(ino, lo, hi)
	}
}

// invalidateIno forwards a whole-inode kill to the attached sink.
func (f *FS) invalidateIno(ino Ino) {
	if f.inv != nil {
		f.inv.InvalidateIno(ino)
	}
}
