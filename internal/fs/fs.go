// Package fs implements the in-memory filesystem of the simulated OS —
// the "filesystem (persistence, sharing)" component from the paper's §1
// list, with the §3 read_spec example implemented literally in
// fs_spec.go and checked against this implementation.
//
// The filesystem is a sequential data structure (inode table + directory
// tree + open-file table); the kernel replicates it with NR (§4.1).
// Persistence is provided by snapshotting into a block store
// (persist.go) over the marshal wire format.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/verified-os/vnros/internal/obs"
)

// Ino is an inode number.
type Ino uint64

// RootIno is the root directory's inode number.
const RootIno Ino = 1

// Kind distinguishes inode types.
type Kind uint8

// Inode kinds.
const (
	KindFile Kind = iota
	KindDir
)

func (k Kind) String() string {
	if k == KindDir {
		return "dir"
	}
	return "file"
}

// Errors (errno analogs).
var (
	ErrNotExist    = errors.New("fs: no such file or directory")
	ErrExist       = errors.New("fs: file exists")
	ErrNotDir      = errors.New("fs: not a directory")
	ErrIsDir       = errors.New("fs: is a directory")
	ErrNotEmpty    = errors.New("fs: directory not empty")
	ErrInval       = errors.New("fs: invalid argument")
	ErrNameTooLong = errors.New("fs: name too long")
)

// MaxNameLen bounds a single path component.
const MaxNameLen = 255

// Inode is one filesystem object.
type Inode struct {
	Ino      Ino
	Kind     Kind
	Data     []byte         // file contents
	Children map[string]Ino // directory entries
	Nlink    int
}

// FS is the filesystem state. It is a sequential structure: no internal
// locking (NR or the kernel lock discipline provides exclusion).
type FS struct {
	inodes map[Ino]*Inode
	next   Ino

	// obsShard stripes this instance's kstat updates (one FS per
	// kernel replica; fs.* kstats are apply-side, counted once per
	// replica per logged op).
	obsShard uint32

	// jrn, when set, receives every successful mutation (journal.go).
	jrn Journal

	// inv, when set, receives data-visibility events for the page
	// cache (inval.go).
	inv Invalidator
}

// New returns a filesystem containing only the root directory.
func New() *FS {
	f := &FS{inodes: make(map[Ino]*Inode), next: RootIno + 1, obsShard: obs.NextShard()}
	f.inodes[RootIno] = &Inode{Ino: RootIno, Kind: KindDir, Children: make(map[string]Ino), Nlink: 1}
	return f
}

// get returns the inode or ErrNotExist.
func (f *FS) get(ino Ino) (*Inode, error) {
	n := f.inodes[ino]
	if n == nil {
		return nil, fmt.Errorf("%w: inode %d", ErrNotExist, ino)
	}
	return n, nil
}

// SplitPath normalizes an absolute path into components, resolving "."
// and "..".
func SplitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: path %q not absolute", ErrInval, path)
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(comps) > 0 {
				comps = comps[:len(comps)-1]
			}
		default:
			if len(c) > MaxNameLen {
				return nil, fmt.Errorf("%w: %q", ErrNameTooLong, c)
			}
			comps = append(comps, c)
		}
	}
	return comps, nil
}

// Lookup resolves an absolute path to an inode number.
func (f *FS) Lookup(path string) (Ino, error) {
	comps, err := SplitPath(path)
	if err != nil {
		return 0, err
	}
	cur := RootIno
	for _, c := range comps {
		n, err := f.get(cur)
		if err != nil {
			return 0, err
		}
		if n.Kind != KindDir {
			return 0, fmt.Errorf("%w: %q", ErrNotDir, c)
		}
		child, ok := n.Children[c]
		if !ok {
			return 0, fmt.Errorf("%w: %q in path %q", ErrNotExist, c, path)
		}
		cur = child
	}
	return cur, nil
}

// lookupParent resolves the parent directory of path and the final
// component name.
func (f *FS) lookupParent(path string) (*Inode, string, error) {
	comps, err := SplitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(comps) == 0 {
		return nil, "", fmt.Errorf("%w: cannot operate on root", ErrInval)
	}
	cur := RootIno
	for _, c := range comps[:len(comps)-1] {
		n, err := f.get(cur)
		if err != nil {
			return nil, "", err
		}
		if n.Kind != KindDir {
			return nil, "", fmt.Errorf("%w: %q", ErrNotDir, c)
		}
		child, ok := n.Children[c]
		if !ok {
			return nil, "", fmt.Errorf("%w: %q", ErrNotExist, c)
		}
		cur = child
	}
	parent, err := f.get(cur)
	if err != nil {
		return nil, "", err
	}
	if parent.Kind != KindDir {
		return nil, "", fmt.Errorf("%w: parent of %q", ErrNotDir, path)
	}
	return parent, comps[len(comps)-1], nil
}

// Create makes a new empty file, failing if the name exists.
func (f *FS) Create(path string) (Ino, error) {
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return 0, err
	}
	if _, ok := parent.Children[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrExist, path)
	}
	ino := f.next
	f.next++
	f.inodes[ino] = &Inode{Ino: ino, Kind: KindFile, Nlink: 1}
	parent.Children[name] = ino
	f.metaOp(ino)
	f.record(Mutation{Kind: MutCreate, Path: path})
	return ino, nil
}

// metaOp records one namespace mutation in the kstats.
func (f *FS) metaOp(ino Ino) {
	obs.FSMetaOps.Add(f.obsShard, 1)
	obs.KernelTrace.Emit(obs.KindFSMeta, uint64(f.obsShard), uint64(ino))
}

// Mkdir makes a new directory.
func (f *FS) Mkdir(path string) (Ino, error) {
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return 0, err
	}
	if _, ok := parent.Children[name]; ok {
		return 0, fmt.Errorf("%w: %q", ErrExist, path)
	}
	ino := f.next
	f.next++
	f.inodes[ino] = &Inode{Ino: ino, Kind: KindDir, Children: make(map[string]Ino), Nlink: 1}
	parent.Children[name] = ino
	f.metaOp(ino)
	f.record(Mutation{Kind: MutMkdir, Path: path})
	return ino, nil
}

// Unlink removes a file (not a directory).
func (f *FS) Unlink(path string) error {
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.Children[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	n, err := f.get(ino)
	if err != nil {
		return err
	}
	if n.Kind == KindDir {
		return fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	delete(parent.Children, name)
	n.Nlink--
	if n.Nlink <= 0 {
		delete(f.inodes, ino)
		// The inode is gone; its cached pages are dead weight (inode
		// numbers are never reused, so they are harmless but useless).
		f.invalidateIno(ino)
	}
	f.metaOp(ino)
	f.record(Mutation{Kind: MutUnlink, Path: path})
	return nil
}

// Rmdir removes an empty directory.
func (f *FS) Rmdir(path string) error {
	parent, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.Children[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	n, err := f.get(ino)
	if err != nil {
		return err
	}
	if n.Kind != KindDir {
		return fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	if len(n.Children) != 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	delete(parent.Children, name)
	delete(f.inodes, ino)
	f.metaOp(ino)
	f.record(Mutation{Kind: MutRmdir, Path: path})
	return nil
}

// Link creates a hard link newpath -> the file at oldpath.
func (f *FS) Link(oldpath, newpath string) error {
	ino, err := f.Lookup(oldpath)
	if err != nil {
		return err
	}
	n, err := f.get(ino)
	if err != nil {
		return err
	}
	if n.Kind == KindDir {
		return fmt.Errorf("%w: cannot hard-link directory", ErrIsDir)
	}
	parent, name, err := f.lookupParent(newpath)
	if err != nil {
		return err
	}
	if _, ok := parent.Children[name]; ok {
		return fmt.Errorf("%w: %q", ErrExist, newpath)
	}
	parent.Children[name] = ino
	n.Nlink++
	f.metaOp(ino)
	f.record(Mutation{Kind: MutLink, Path: oldpath, Path2: newpath})
	return nil
}

// Rename moves oldpath to newpath (replacing an existing file there,
// POSIX-style, but never replacing a directory).
func (f *FS) Rename(oldpath, newpath string) error {
	op, oname, err := f.lookupParent(oldpath)
	if err != nil {
		return err
	}
	ino, ok := op.Children[oname]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldpath)
	}
	np, nname, err := f.lookupParent(newpath)
	if err != nil {
		return err
	}
	if existing, ok := np.Children[nname]; ok {
		if existing == ino {
			return nil
		}
		en, err := f.get(existing)
		if err != nil {
			return err
		}
		if en.Kind == KindDir {
			return fmt.Errorf("%w: %q", ErrIsDir, newpath)
		}
		en.Nlink--
		if en.Nlink <= 0 {
			delete(f.inodes, existing)
			f.invalidateIno(existing)
		}
	}
	// Moving a directory under itself would detach a subtree; compare
	// normalized components so "." and ".." cannot smuggle a cycle in.
	if n, _ := f.get(ino); n != nil && n.Kind == KindDir {
		oc, _ := SplitPath(oldpath)
		nc, _ := SplitPath(newpath)
		if len(nc) > len(oc) {
			prefix := true
			for i := range oc {
				if nc[i] != oc[i] {
					prefix = false
					break
				}
			}
			if prefix {
				return fmt.Errorf("%w: cannot move directory under itself", ErrInval)
			}
		}
	}
	np.Children[nname] = ino
	delete(op.Children, oname)
	f.metaOp(ino)
	f.record(Mutation{Kind: MutRename, Path: oldpath, Path2: newpath})
	return nil
}

// Stat describes an inode.
type Stat struct {
	Ino   Ino
	Kind  Kind
	Size  uint64
	Nlink int
}

// StatPath stats the object at path.
func (f *FS) StatPath(path string) (Stat, error) {
	ino, err := f.Lookup(path)
	if err != nil {
		return Stat{}, err
	}
	return f.StatIno(ino)
}

// StatIno stats an inode.
func (f *FS) StatIno(ino Ino) (Stat, error) {
	n, err := f.get(ino)
	if err != nil {
		return Stat{}, err
	}
	return Stat{Ino: n.Ino, Kind: n.Kind, Size: uint64(len(n.Data)), Nlink: n.Nlink}, nil
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name string
	Ino  Ino
	Kind Kind
}

// ReadDir lists a directory in name order.
func (f *FS) ReadDir(path string) ([]DirEntry, error) {
	ino, err := f.Lookup(path)
	if err != nil {
		return nil, err
	}
	n, err := f.get(ino)
	if err != nil {
		return nil, err
	}
	if n.Kind != KindDir {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	out := make([]DirEntry, 0, len(n.Children))
	for name, ci := range n.Children {
		c, err := f.get(ci)
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{Name: name, Ino: ci, Kind: c.Kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadAt reads up to len(p) bytes from the file at offset off,
// returning the count (0 at or past EOF).
func (f *FS) ReadAt(ino Ino, off uint64, p []byte) (int, error) {
	t0 := obs.Start()
	// Record the latency on every outcome: error returns (bad inode,
	// directory read) are part of the read path's latency distribution,
	// and skipping them would make error-heavy workloads look faster
	// than they are.
	defer obs.FSReadLatency.Since(f.obsShard, t0)
	n, err := f.get(ino)
	if err != nil {
		return 0, err
	}
	if n.Kind != KindFile {
		return 0, fmt.Errorf("%w: inode %d", ErrIsDir, ino)
	}
	if off >= uint64(len(n.Data)) {
		return 0, nil
	}
	return copy(p, n.Data[off:]), nil
}

// WriteAt writes p at offset off, zero-filling any gap (sparse writes
// materialize zeroes, as POSIX requires readers to observe).
func (f *FS) WriteAt(ino Ino, off uint64, p []byte) (int, error) {
	t0 := obs.Start()
	n, err := f.get(ino)
	if err != nil {
		return 0, err
	}
	if n.Kind != KindFile {
		return 0, fmt.Errorf("%w: inode %d", ErrIsDir, ino)
	}
	oldSize := uint64(len(n.Data))
	end := off + uint64(len(p))
	if end > oldSize {
		grown := make([]byte, end)
		copy(grown, n.Data)
		n.Data = grown
	}
	copy(n.Data[off:end], p)
	obs.FSWriteLatency.Since(f.obsShard, t0)
	f.record(Mutation{Kind: MutWrite, Ino: ino, Off: off, Data: p})
	// Kill cached pages across the whole changed window: not just
	// [off, end) but also the sparse gap (oldSize, off) that this write
	// materialized as zeroes — a cached short page there used to read as
	// EOF and now must not.
	lo := off
	if oldSize < lo {
		lo = oldSize
	}
	f.invalidateRange(ino, lo, end)
	return len(p), nil
}

// Truncate sets the file size, zero-extending or discarding.
func (f *FS) Truncate(ino Ino, size uint64) error {
	n, err := f.get(ino)
	if err != nil {
		return err
	}
	if n.Kind != KindFile {
		return fmt.Errorf("%w: inode %d", ErrIsDir, ino)
	}
	oldSize := uint64(len(n.Data))
	switch {
	case size < oldSize:
		n.Data = n.Data[:size]
	case size > oldSize:
		grown := make([]byte, size)
		copy(grown, n.Data)
		n.Data = grown
	}
	f.record(Mutation{Kind: MutTruncate, Ino: ino, Size: size})
	if size != oldSize {
		lo, hi := size, oldSize
		if lo > hi {
			lo, hi = hi, lo
		}
		f.invalidateRange(ino, lo, hi)
	}
	return nil
}

// NumInodes returns the number of live inodes.
func (f *FS) NumInodes() int { return len(f.inodes) }

// CheckInvariant validates structural consistency: every child points
// at a live inode; every inode (except root) is referenced by exactly
// Nlink directory entries; directories are a tree (each dir has exactly
// one parent reference and no cycles); no orphans.
func (f *FS) CheckInvariant() error {
	refs := make(map[Ino]int)
	dirRefs := make(map[Ino]int)
	for ino, n := range f.inodes {
		if n.Ino != ino {
			return fmt.Errorf("fs: inode %d records number %d", ino, n.Ino)
		}
		if n.Kind == KindDir && n.Children == nil {
			return fmt.Errorf("fs: dir %d has nil children", ino)
		}
		for name, ci := range n.Children {
			if name == "" || strings.Contains(name, "/") {
				return fmt.Errorf("fs: dir %d has bad entry name %q", ino, name)
			}
			c := f.inodes[ci]
			if c == nil {
				return fmt.Errorf("fs: dir %d entry %q dangles to %d", ino, name, ci)
			}
			refs[ci]++
			if c.Kind == KindDir {
				dirRefs[ci]++
			}
		}
	}
	for ino, n := range f.inodes {
		if ino == RootIno {
			continue
		}
		if n.Kind == KindDir {
			if dirRefs[ino] != 1 {
				return fmt.Errorf("fs: dir %d has %d parents", ino, dirRefs[ino])
			}
		} else if refs[ino] != n.Nlink {
			return fmt.Errorf("fs: file %d nlink %d but %d references", ino, n.Nlink, refs[ino])
		}
		if refs[ino] == 0 {
			return fmt.Errorf("fs: inode %d orphaned", ino)
		}
	}
	// Reachability (tree-ness) from root.
	seen := map[Ino]bool{RootIno: true}
	var walk func(Ino) error
	walk = func(ino Ino) error {
		n := f.inodes[ino]
		for _, ci := range n.Children {
			c := f.inodes[ci]
			if c.Kind == KindDir {
				if seen[ci] {
					return fmt.Errorf("fs: directory cycle at %d", ci)
				}
				seen[ci] = true
				if err := walk(ci); err != nil {
					return err
				}
			} else {
				seen[ci] = true
			}
		}
		return nil
	}
	if err := walk(RootIno); err != nil {
		return err
	}
	for ino := range f.inodes {
		if !seen[ino] {
			return fmt.Errorf("fs: inode %d unreachable from root", ino)
		}
	}
	return nil
}
