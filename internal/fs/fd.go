package fs

import (
	"errors"
	"fmt"
)

// FD is a file descriptor.
type FD uint64

// Open flags.
const (
	ORdOnly = 1 << iota
	OWrOnly
	ORdWr
	OCreate
	OTrunc
	OAppend
)

// Errors for the descriptor layer.
var (
	ErrBadFD      = errors.New("fs: bad file descriptor")
	ErrNotLocked  = errors.New("fs: descriptor not locked for syscall")
	ErrPermission = errors.New("fs: descriptor not opened for this operation")
)

// OpenFile is the kernel state behind one descriptor — the fields the
// paper's read_spec state machine exposes: the file, the cursor, and
// the per-descriptor lock that discharges the §3 data-race-freedom
// obligation (the syscall layer locks the descriptor for the duration
// of each call).
type OpenFile struct {
	Ino    Ino
	Offset uint64
	Flags  int
	Locked bool
}

// FDTable maps descriptors to open files. Like FS it is sequential.
type FDTable struct {
	fs   *FS
	open map[FD]*OpenFile
	next FD
}

// NewFDTable creates an empty table over fs.
func NewFDTable(fs *FS) *FDTable {
	return &FDTable{fs: fs, open: make(map[FD]*OpenFile), next: 3} // 0-2 reserved
}

// FS returns the underlying filesystem.
func (t *FDTable) FS() *FS { return t.fs }

// Open opens path with flags, creating the file when OCreate is set.
func (t *FDTable) Open(path string, flags int) (FD, error) {
	ino, err := t.fs.Lookup(path)
	if err != nil {
		if flags&OCreate == 0 {
			return 0, err
		}
		ino, err = t.fs.Create(path)
		if err != nil {
			return 0, err
		}
	}
	st, err := t.fs.StatIno(ino)
	if err != nil {
		return 0, err
	}
	if st.Kind == KindDir && flags&(OWrOnly|ORdWr|OTrunc|OAppend) != 0 {
		return 0, fmt.Errorf("%w: cannot open directory for writing", ErrIsDir)
	}
	if flags&OTrunc != 0 {
		if err := t.fs.Truncate(ino, 0); err != nil {
			return 0, err
		}
	}
	fd := t.next
	t.next++
	t.open[fd] = &OpenFile{Ino: ino, Flags: flags}
	return fd, nil
}

// Get returns the open file for fd.
func (t *FDTable) Get(fd FD) (*OpenFile, error) {
	of := t.open[fd]
	if of == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	return of, nil
}

// Lock marks the descriptor as held by an in-flight syscall; the
// read/write paths require it (the read_spec precondition
// `pre.files[fd].locked`).
func (t *FDTable) Lock(fd FD) error {
	of, err := t.Get(fd)
	if err != nil {
		return err
	}
	if of.Locked {
		return fmt.Errorf("fs: descriptor %d already locked", fd)
	}
	of.Locked = true
	return nil
}

// Unlock releases the descriptor.
func (t *FDTable) Unlock(fd FD) error {
	of, err := t.Get(fd)
	if err != nil {
		return err
	}
	if !of.Locked {
		return fmt.Errorf("%w: %d", ErrNotLocked, fd)
	}
	of.Locked = false
	return nil
}

// Read implements the paper's read syscall semantics: read_len =
// min(len(buffer), size - offset) bytes from the current offset, then
// advance the offset. The descriptor must be locked.
func (t *FDTable) Read(fd FD, buffer []byte) (uint64, error) {
	of, err := t.Get(fd)
	if err != nil {
		return 0, err
	}
	if !of.Locked {
		return 0, fmt.Errorf("%w: read(%d)", ErrNotLocked, fd)
	}
	if of.Flags&OWrOnly != 0 {
		return 0, fmt.Errorf("%w: read on write-only fd", ErrPermission)
	}
	n, err := t.fs.ReadAt(of.Ino, of.Offset, buffer)
	if err != nil {
		return 0, err
	}
	of.Offset += uint64(n)
	return uint64(n), nil
}

// Write writes buffer at the current offset (or EOF with OAppend) and
// advances it. The descriptor must be locked.
func (t *FDTable) Write(fd FD, buffer []byte) (uint64, error) {
	of, err := t.Get(fd)
	if err != nil {
		return 0, err
	}
	if !of.Locked {
		return 0, fmt.Errorf("%w: write(%d)", ErrNotLocked, fd)
	}
	if of.Flags&(OWrOnly|ORdWr|OAppend) == 0 {
		return 0, fmt.Errorf("%w: write on read-only fd", ErrPermission)
	}
	if of.Flags&OAppend != 0 {
		st, err := t.fs.StatIno(of.Ino)
		if err != nil {
			return 0, err
		}
		of.Offset = st.Size
	}
	n, err := t.fs.WriteAt(of.Ino, of.Offset, buffer)
	if err != nil {
		return 0, err
	}
	of.Offset += uint64(n)
	return uint64(n), nil
}

// Whence values for Seek.
const (
	SeekSet = iota
	SeekCur
	SeekEnd
)

// Seek repositions the descriptor's offset.
func (t *FDTable) Seek(fd FD, off int64, whence int) (uint64, error) {
	of, err := t.Get(fd)
	if err != nil {
		return 0, err
	}
	var base uint64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = of.Offset
	case SeekEnd:
		st, err := t.fs.StatIno(of.Ino)
		if err != nil {
			return 0, err
		}
		base = st.Size
	default:
		return 0, fmt.Errorf("%w: whence %d", ErrInval, whence)
	}
	n := int64(base) + off
	if n < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrInval)
	}
	of.Offset = uint64(n)
	return of.Offset, nil
}

// Close releases the descriptor.
func (t *FDTable) Close(fd FD) error {
	if _, ok := t.open[fd]; !ok {
		return fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	delete(t.open, fd)
	return nil
}

// OpenCount returns the number of live descriptors.
func (t *FDTable) OpenCount() int { return len(t.open) }
