package fs

import (
	"errors"
	"fmt"
	"sort"

	"github.com/verified-os/vnros/internal/marshal"
)

// BlockStore is the persistence substrate: a disk of fixed-size blocks.
// internal/dev's disk driver implements it over the simulated disk
// device; MemBlockStore implements it in memory for tests.
type BlockStore interface {
	BlockSize() int
	NumBlocks() uint64
	ReadBlock(i uint64, p []byte) error
	WriteBlock(i uint64, p []byte) error
}

// Persistence errors.
var (
	ErrTooBig     = errors.New("fs: snapshot exceeds device capacity")
	ErrBadImage   = errors.New("fs: corrupt filesystem image")
	ErrNoSnapshot = errors.New("fs: device holds no snapshot")

	// Block-access errors, shared by every BlockStore implementation
	// (MemBlockStore here, the disk driver in internal/dev, the
	// journal's views in internal/wal): a block index past the device
	// and a buffer that is not exactly one block are programming
	// errors surfaced as typed values, never silently tolerated.
	ErrBlockRange = errors.New("fs: block index out of range")
	ErrBlockSize  = errors.New("fs: buffer length != block size")
)

// snapshotMagic identifies a valid image header.
const snapshotMagic = 0x76_6e_72_6f_73_66_73_31 // "vnrosfs1"

// Save serializes the filesystem into the block store as one atomic
// snapshot using A/B slots: the payload is written into the slot NOT
// referenced by the current header, and the header (with checksum and
// slot pointer) is written last. A crash at any point leaves the
// previous snapshot fully intact and loadable; a torn header or payload
// is detected by magic/checksum. Journaled crash consistency between
// snapshots is provided by internal/wal, which checkpoints through
// SaveStamped.
func Save(f *FS, d BlockStore) error { return SaveStamped(f, d, 0) }

// SaveStamped is Save with a caller-owned stamp recorded in the header.
// internal/wal stores the journal sequence number the snapshot covers,
// making the snapshot header the checkpoint's single commit point:
// recovery reads the stamp back via LoadStamped and replays only the
// journal records after it. Images written by Save carry stamp 0, and
// pre-stamp images read back as stamp 0 (the header block's padding
// was already zero).
func SaveStamped(f *FS, d BlockStore, stamp uint64) error {
	e := marshal.NewEncoder(nil)
	// Deterministic inode order for reproducible images.
	inos := make([]Ino, 0, len(f.inodes))
	for ino := range f.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	e.U64(uint64(f.next))
	e.U64(uint64(len(inos)))
	for _, ino := range inos {
		n := f.inodes[ino]
		e.U64(uint64(n.Ino))
		e.U8(uint8(n.Kind))
		e.U64(uint64(n.Nlink))
		e.BytesField(n.Data)
		names := make([]string, 0, len(n.Children))
		for name := range n.Children {
			names = append(names, name)
		}
		sort.Strings(names)
		e.U64(uint64(len(names)))
		for _, name := range names {
			e.String(name)
			e.U64(uint64(n.Children[name]))
		}
	}
	payload := e.Bytes()

	bs := d.BlockSize()
	blocks := (len(payload) + bs - 1) / bs
	// A snapshot needs the header block plus two payload slots; anything
	// smaller is a geometry error, typed so callers slicing a shared
	// device into journal regions (internal/walshard) can bounds-check
	// uniformly. The guard also keeps slotCap's unsigned subtraction from
	// underflowing on a zero-block store.
	if d.NumBlocks() < 3 {
		return fmt.Errorf("%w: snapshot store has %d blocks, need >= 3", ErrBlockRange, d.NumBlocks())
	}
	slotCap := (d.NumBlocks() - 1) / 2 // blocks per A/B slot
	if uint64(blocks) > slotCap {
		return fmt.Errorf("%w (%w): %d bytes into %d-block slots", ErrTooBig, ErrBlockRange, len(payload), slotCap)
	}
	// Pick the slot the current header does NOT point at.
	slot := uint64(0)
	if cur, err := readHeader(d); err == nil {
		slot = 1 - cur.slot
	}
	base := 1 + slot*slotCap
	buf := make([]byte, bs)
	for i := 0; i < blocks; i++ {
		lo := i * bs
		hi := lo + bs
		if hi > len(payload) {
			hi = len(payload)
		}
		copy(buf, payload[lo:hi])
		for j := hi - lo; j < bs; j++ {
			buf[j] = 0
		}
		if err := d.WriteBlock(base+uint64(i), buf); err != nil {
			return err
		}
	}
	// Header: magic, slot, length, checksum, stamp — written last (the
	// commit point).
	h := marshal.NewEncoder(nil)
	h.U64(snapshotMagic).U64(slot).U64(uint64(len(payload))).U64(fletcher64(payload)).U64(stamp)
	hb := make([]byte, bs)
	copy(hb, h.Bytes())
	return d.WriteBlock(0, hb)
}

// header is the decoded snapshot header.
type header struct {
	slot   uint64
	length uint64
	sum    uint64
	stamp  uint64
}

func readHeader(d BlockStore) (header, error) {
	bs := d.BlockSize()
	hb := make([]byte, bs)
	if err := d.ReadBlock(0, hb); err != nil {
		return header{}, err
	}
	h := marshal.NewDecoder(hb[:40])
	magic, slot, length, sum, stamp := h.U64(), h.U64(), h.U64(), h.U64(), h.U64()
	if h.Err() != nil || magic != snapshotMagic || slot > 1 {
		return header{}, ErrNoSnapshot
	}
	return header{slot: slot, length: length, sum: sum, stamp: stamp}, nil
}

// Load reconstructs a filesystem from the block store.
func Load(d BlockStore) (*FS, error) {
	f, _, err := LoadStamped(d)
	return f, err
}

// LoadStamped is Load returning the header stamp as well (the journal
// sequence number a wal checkpoint recorded; see SaveStamped).
func LoadStamped(d BlockStore) (*FS, uint64, error) {
	bs := d.BlockSize()
	if d.NumBlocks() < 3 {
		return nil, 0, fmt.Errorf("%w: snapshot store has %d blocks, need >= 3", ErrBlockRange, d.NumBlocks())
	}
	hd, err := readHeader(d)
	if err != nil {
		return nil, 0, err
	}
	length, sum := hd.length, hd.sum
	blocks := (int(length) + bs - 1) / bs
	slotCap := (d.NumBlocks() - 1) / 2
	if uint64(blocks) > slotCap {
		return nil, 0, fmt.Errorf("%w (%w): header claims %d bytes", ErrBadImage, ErrBlockRange, length)
	}
	base := 1 + hd.slot*slotCap
	payload := make([]byte, blocks*bs)
	for i := 0; i < blocks; i++ {
		if err := d.ReadBlock(base+uint64(i), payload[i*bs:(i+1)*bs]); err != nil {
			return nil, 0, err
		}
	}
	payload = payload[:length]
	if fletcher64(payload) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadImage)
	}

	dec := marshal.NewDecoder(payload)
	f := &FS{inodes: make(map[Ino]*Inode)}
	f.next = Ino(dec.U64())
	count := dec.U64()
	if dec.Err() != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadImage, dec.Err())
	}
	for i := uint64(0); i < count; i++ {
		n := &Inode{
			Ino:   Ino(dec.U64()),
			Kind:  Kind(dec.U8()),
			Nlink: int(dec.U64()),
			Data:  dec.BytesField(),
		}
		nc := dec.U64()
		if dec.Err() != nil {
			return nil, 0, fmt.Errorf("%w: inode %d: %v", ErrBadImage, i, dec.Err())
		}
		if n.Kind == KindDir {
			n.Children = make(map[string]Ino, nc)
		} else if nc != 0 {
			return nil, 0, fmt.Errorf("%w: file with children", ErrBadImage)
		}
		for j := uint64(0); j < nc; j++ {
			name := dec.String()
			child := Ino(dec.U64())
			if dec.Err() != nil {
				return nil, 0, fmt.Errorf("%w: dirent: %v", ErrBadImage, dec.Err())
			}
			n.Children[name] = child
		}
		if _, dup := f.inodes[n.Ino]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate inode %d", ErrBadImage, n.Ino)
		}
		f.inodes[n.Ino] = n
	}
	if err := dec.Finish(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	if _, ok := f.inodes[RootIno]; !ok {
		return nil, 0, fmt.Errorf("%w: no root inode", ErrBadImage)
	}
	if err := f.CheckInvariant(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	return f, hd.stamp, nil
}

// Equal reports whether two filesystems have identical observable
// state (used by the persistence round-trip obligation).
func Equal(a, b *FS) bool {
	if len(a.inodes) != len(b.inodes) || a.next != b.next {
		return false
	}
	for ino, n := range a.inodes {
		m := b.inodes[ino]
		if m == nil || m.Kind != n.Kind || m.Nlink != n.Nlink ||
			string(m.Data) != string(n.Data) || len(m.Children) != len(n.Children) {
			return false
		}
		for name, ci := range n.Children {
			if m.Children[name] != ci {
				return false
			}
		}
	}
	return true
}

// fletcher64 is a simple position-dependent checksum for snapshot
// integrity (not cryptographic; the threat model is torn writes).
func fletcher64(p []byte) uint64 {
	var a, b uint64 = 1, 0
	for _, c := range p {
		a = (a + uint64(c)) % 0xffffffff
		b = (b + a) % 0xffffffff
	}
	return b<<32 | a
}

// MemBlockStore is an in-memory BlockStore for tests and the quickstart
// example.
type MemBlockStore struct {
	bs     int
	blocks [][]byte
}

// NewMemBlockStore creates a store with n blocks of size bs.
func NewMemBlockStore(bs int, n uint64) *MemBlockStore {
	m := &MemBlockStore{bs: bs, blocks: make([][]byte, n)}
	return m
}

// BlockSize implements BlockStore.
func (m *MemBlockStore) BlockSize() int { return m.bs }

// NumBlocks implements BlockStore.
func (m *MemBlockStore) NumBlocks() uint64 { return uint64(len(m.blocks)) }

// CheckBlockAccess validates a block index and buffer length against a
// store's geometry, returning the typed block-access errors. Every
// BlockStore implementation (here, internal/dev, internal/wal) guards
// its entry points with it so the whole storage stack rejects malformed
// accesses identically.
func CheckBlockAccess(d BlockStore, op string, i uint64, p []byte) error {
	if i >= d.NumBlocks() {
		return fmt.Errorf("%w: %s block %d of %d", ErrBlockRange, op, i, d.NumBlocks())
	}
	if len(p) != d.BlockSize() {
		return fmt.Errorf("%w: %s block %d with %d bytes, block size %d",
			ErrBlockSize, op, i, len(p), d.BlockSize())
	}
	return nil
}

// ReadBlock implements BlockStore.
func (m *MemBlockStore) ReadBlock(i uint64, p []byte) error {
	if err := CheckBlockAccess(m, "read", i, p); err != nil {
		return err
	}
	if m.blocks[i] == nil {
		for j := range p {
			p[j] = 0
		}
		return nil
	}
	copy(p, m.blocks[i])
	return nil
}

// WriteBlock implements BlockStore.
func (m *MemBlockStore) WriteBlock(i uint64, p []byte) error {
	if err := CheckBlockAccess(m, "write", i, p); err != nil {
		return err
	}
	if m.blocks[i] == nil {
		m.blocks[i] = make([]byte, m.bs)
	}
	copy(m.blocks[i], p)
	return nil
}
