package fs

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the filesystem verification conditions:
// the paper's read_spec (plus write/seek specs) checked against the
// implementation on randomized traces, structural invariants, and the
// persistence round trip.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	registerEvenMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "fs", Name: "read-spec-refinement", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return checkRWSpecTrace(r, 600) }},
		verifier.Obligation{Module: "fs", Name: "tree-invariant-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error { return checkTreeInvariant(r, 800) }},
		verifier.Obligation{Module: "fs", Name: "persist-round-trip", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				f := randomFS(r, 200)
				d := NewMemBlockStore(512, 65536)
				if err := Save(f, d); err != nil {
					return err
				}
				g2, err := Load(d)
				if err != nil {
					return err
				}
				if !Equal(f, g2) {
					return fmt.Errorf("loaded filesystem differs from saved")
				}
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "persist-detects-corruption", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				f := randomFS(r, 50)
				d := NewMemBlockStore(512, 4096)
				if err := Save(f, d); err != nil {
					return err
				}
				// Flip one payload byte.
				blk := make([]byte, 512)
				if err := d.ReadBlock(1, blk); err != nil {
					return err
				}
				blk[r.Intn(512)] ^= 0x40
				if err := d.WriteBlock(1, blk); err != nil {
					return err
				}
				if _, err := Load(d); err == nil {
					return fmt.Errorf("corrupt image loaded successfully")
				}
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "torn-save-keeps-old-snapshot", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Save image A; then perform a save of image B that
				// "crashes" before the header write. Load must return A.
				fa := randomFS(r, 30)
				d := NewMemBlockStore(512, 65536)
				if err := Save(fa, d); err != nil {
					return err
				}
				fb := randomFS(r, 60)
				torn := &tornStore{BlockStore: d, failHeader: true}
				if err := Save(fb, torn); err == nil {
					return fmt.Errorf("torn save reported success")
				}
				// B's payload went to the other A/B slot and the header
				// was never flipped, so A must load back intact.
				got, err := Load(d)
				if err != nil {
					return fmt.Errorf("load after torn save: %w", err)
				}
				if !Equal(fa, got) {
					return fmt.Errorf("torn save clobbered the previous snapshot")
				}
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "fd-lock-required", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewFDTable(New())
				fd, err := t.Open("/f", OCreate|ORdWr)
				if err != nil {
					return err
				}
				if _, err := t.Read(fd, make([]byte, 4)); err == nil {
					return fmt.Errorf("read without descriptor lock succeeded")
				}
				if _, err := t.Write(fd, []byte("x")); err == nil {
					return fmt.Errorf("write without descriptor lock succeeded")
				}
				return nil
			}},
	)
}

// tornStore fails the header write (block 0), simulating a crash after
// payload blocks but before the commit point.
type tornStore struct {
	BlockStore
	failHeader bool
}

func (t *tornStore) WriteBlock(i uint64, p []byte) error {
	if t.failHeader && i == 0 {
		return fmt.Errorf("simulated crash before header write")
	}
	return t.BlockStore.WriteBlock(i, p)
}

// randomFS builds a filesystem with random structure and contents.
func randomFS(r *rand.Rand, ops int) *FS {
	f := New()
	dirs := []string{"/"}
	files := []string{}
	for i := 0; i < ops; i++ {
		switch r.Intn(6) {
		case 0:
			d := dirs[r.Intn(len(dirs))]
			p := fmt.Sprintf("%s/d%d", d, i)
			if _, err := f.Mkdir(p); err == nil {
				dirs = append(dirs, p)
			}
		case 1, 2:
			d := dirs[r.Intn(len(dirs))]
			p := fmt.Sprintf("%s/f%d", d, i)
			if ino, err := f.Create(p); err == nil {
				files = append(files, p)
				data := make([]byte, r.Intn(2000))
				r.Read(data)
				_, _ = f.WriteAt(ino, uint64(r.Intn(100)), data)
			}
		case 3:
			if len(files) > 0 {
				j := r.Intn(len(files))
				if err := f.Unlink(files[j]); err == nil {
					files = append(files[:j], files[j+1:]...)
				}
			}
		case 4:
			if len(files) > 0 {
				src := files[r.Intn(len(files))]
				p := fmt.Sprintf("/l%d", i)
				if err := f.Link(src, p); err == nil {
					files = append(files, p)
				}
			}
		case 5:
			if len(files) > 0 {
				j := r.Intn(len(files))
				p := fmt.Sprintf("/r%d", i)
				if err := f.Rename(files[j], p); err == nil {
					files[j] = p
				}
			}
		}
	}
	return f
}

// checkTreeInvariant runs randomFS-style workloads and validates the
// invariant continuously.
func checkTreeInvariant(r *rand.Rand, ops int) error {
	f := randomFS(r, ops)
	return f.CheckInvariant()
}

// checkRWSpecTrace drives the FD layer with random reads, writes and
// seeks, checking every transition against the §3 spec relations via
// the abstraction function.
func checkRWSpecTrace(r *rand.Rand, ops int) error {
	t := NewFDTable(New())
	var fds []FD
	for i := 0; i < 4; i++ {
		fd, err := t.Open(fmt.Sprintf("/file%d", i), OCreate|ORdWr)
		if err != nil {
			return err
		}
		fds = append(fds, fd)
	}
	for i := 0; i < ops; i++ {
		fd := fds[r.Intn(len(fds))]
		if err := t.Lock(fd); err != nil {
			return err
		}
		pre := AbstractFDs(t)
		switch r.Intn(3) {
		case 0:
			buf := make([]byte, r.Intn(64))
			n, err := t.Read(fd, buf)
			if err != nil {
				return fmt.Errorf("op %d read: %w", i, err)
			}
			post := AbstractFDs(t)
			if err := ReadSpec(pre, post, fd, uint64(len(buf)), buf, n); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		case 1:
			data := make([]byte, r.Intn(64))
			r.Read(data)
			n, err := t.Write(fd, data)
			if err != nil {
				return fmt.Errorf("op %d write: %w", i, err)
			}
			post := AbstractFDs(t)
			if err := WriteSpec(pre, post, fd, data, n); err != nil {
				return fmt.Errorf("op %d: %w", i, err)
			}
		default:
			off := int64(r.Intn(200)) - 50
			whence := r.Intn(3)
			res, err := t.Seek(fd, off, whence)
			if err == nil {
				post := AbstractFDs(t)
				if err := SeekSpec(pre, post, fd, off, whence, res); err != nil {
					return fmt.Errorf("op %d: %w", i, err)
				}
			}
		}
		if err := t.Unlock(fd); err != nil {
			return err
		}
	}
	return nil
}
