package fs

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations is the third filesystem wave: open-flag
// semantics (OTrunc, OAppend, OCreate idempotence), sparse-write
// zero-fill, and descriptor independence (two descriptors on one file
// keep independent cursors over shared contents).
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "fs", Name: "open-flag-semantics", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewFDTable(New())
				fd, err := t.Open("/f", OCreate|ORdWr)
				if err != nil {
					return err
				}
				_ = t.Lock(fd)
				if _, err := t.Write(fd, []byte("0123456789")); err != nil {
					return err
				}
				_ = t.Unlock(fd)
				// OCreate on an existing file opens it (no truncation).
				fd2, err := t.Open("/f", OCreate|ORdWr)
				if err != nil {
					return err
				}
				st, err := t.FS().StatPath("/f")
				if err != nil || st.Size != 10 {
					return fmt.Errorf("OCreate truncated existing file: size %d", st.Size)
				}
				// OTrunc empties it.
				if _, err := t.Open("/f", ORdWr|OTrunc); err != nil {
					return err
				}
				st, _ = t.FS().StatPath("/f")
				if st.Size != 0 {
					return fmt.Errorf("OTrunc left %d bytes", st.Size)
				}
				// OAppend writes always land at EOF regardless of cursor.
				fd3, err := t.Open("/f", OWrOnly|OAppend)
				if err != nil {
					return err
				}
				_ = t.Lock(fd3)
				if _, err := t.Write(fd3, []byte("aa")); err != nil {
					return err
				}
				_ = t.Unlock(fd3)
				if _, err := t.Seek(fd3, 0, SeekSet); err != nil {
					return err
				}
				_ = t.Lock(fd3)
				if _, err := t.Write(fd3, []byte("bb")); err != nil {
					return err
				}
				_ = t.Unlock(fd3)
				st, _ = t.FS().StatPath("/f")
				if st.Size != 4 {
					return fmt.Errorf("append after seek overwrote: size %d, want 4", st.Size)
				}
				_ = fd2
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "sparse-write-zero-fill", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				f := New()
				ino, err := f.Create("/sparse")
				if err != nil {
					return err
				}
				gap := uint64(100 + r.Intn(5000))
				if _, err := f.WriteAt(ino, gap, []byte("tail")); err != nil {
					return err
				}
				buf := make([]byte, gap)
				n, err := f.ReadAt(ino, 0, buf)
				if err != nil || uint64(n) != gap {
					return fmt.Errorf("gap read = %d, %v", n, err)
				}
				for i, b := range buf {
					if b != 0 {
						return fmt.Errorf("gap byte %d = %#x, want 0", i, b)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "descriptors-independent-cursors", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewFDTable(New())
				a, err := t.Open("/shared", OCreate|ORdWr)
				if err != nil {
					return err
				}
				b, err := t.Open("/shared", ORdWr)
				if err != nil {
					return err
				}
				_ = t.Lock(a)
				if _, err := t.Write(a, []byte("abcdefgh")); err != nil {
					return err
				}
				_ = t.Unlock(a)
				// b's cursor is still 0; reading from b sees the bytes a
				// wrote, from the start.
				_ = t.Lock(b)
				buf := make([]byte, 4)
				n, err := t.Read(b, buf)
				_ = t.Unlock(b)
				if err != nil || n != 4 || string(buf) != "abcd" {
					return fmt.Errorf("b read = %q/%d, %v", buf, n, err)
				}
				// a's cursor is unaffected by b's read.
				of, err := t.Get(a)
				if err != nil || of.Offset != 8 {
					return fmt.Errorf("a offset = %d, want 8", of.Offset)
				}
				return nil
			}},
	)
}
