package fs

import (
	"bytes"
	"fmt"
)

// This file is the §3 client-application contract for the file system,
// centered on the paper's read_spec example, transcribed from the
// paper's Verus into executable Go:
//
//	spec fn read_spec(pre: State, post: State, fd: usize,
//	                  buffer: Seq<u8>, read_len: usize)
//	{ pre.files[fd].locked
//	  && read_len == min(buffer.len(), pre.files[fd].size - pre.files[fd].offset)
//	  && buffer[0 .. read_len] == pre.files[fd].contents[
//	         pre.files[fd].offset .. (pre.files[fd].offset + read_len)]
//	  && post.files[fd].offset == pre.files[fd].offset + read_len }
//
// SpecState is the abstract "State" — the per-descriptor view a client
// application reasons about — and ReadSpec/WriteSpec/SeekSpec are the
// transition relations. AbstractFDs computes the abstraction of a real
// FDTable, and the obligations check every implementation step against
// the relation, exactly as the `ensures` clause of the paper's read
// wrapper demands.

// SpecFile is the abstract view of one descriptor. Ino identifies the
// underlying file so checkers can tell when two descriptors alias the
// same contents; the transition relations themselves never inspect it.
// Append mirrors the descriptor's OAppend flag: write_spec resolves the
// effective write offset at EOF for such descriptors, exactly as the
// implementation does.
type SpecFile struct {
	Contents []byte
	Offset   uint64
	Locked   bool
	Append   bool
	Ino      Ino
}

// Size returns the abstract file size.
func (s SpecFile) Size() uint64 { return uint64(len(s.Contents)) }

// SpecState is the abstract system state from the client's perspective.
type SpecState struct {
	Files map[FD]SpecFile
}

// CloneSpec deep-copies the state.
func (s SpecState) CloneSpec() SpecState {
	out := SpecState{Files: make(map[FD]SpecFile, len(s.Files))}
	for fd, f := range s.Files {
		c := make([]byte, len(f.Contents))
		copy(c, f.Contents)
		out.Files[fd] = SpecFile{Contents: c, Offset: f.Offset, Locked: f.Locked, Append: f.Append, Ino: f.Ino}
	}
	return out
}

// ReadSpec is the paper's read_spec: it relates pre and post states for
// a read of readLen bytes into a buffer of the given length, returning
// nil when the transition is allowed.
func ReadSpec(pre, post SpecState, fd FD, bufferLen uint64, gotBuffer []byte, readLen uint64) error {
	pf, ok := pre.Files[fd]
	if !ok {
		return fmt.Errorf("read_spec: fd %d not open in pre", fd)
	}
	if !pf.Locked {
		return fmt.Errorf("read_spec: pre.files[%d].locked is false", fd)
	}
	want := pf.Size() - pf.Offset
	if pf.Offset >= pf.Size() {
		want = 0
	}
	if bufferLen < want {
		want = bufferLen
	}
	if readLen != want {
		return fmt.Errorf("read_spec: read_len %d != min(buffer.len=%d, size-offset=%d)",
			readLen, bufferLen, pf.Size()-min64(pf.Offset, pf.Size()))
	}
	// Fast path: the whole-segment comparison is the relation; the byte
	// loop only runs on mismatch to name the offending index.
	// readLen > 0 implies offset+readLen <= size, so the slice is in
	// bounds (readLen == 0 can coincide with an offset beyond EOF).
	if readLen > 0 && !bytes.Equal(gotBuffer[:readLen], pf.Contents[pf.Offset:pf.Offset+readLen]) {
		for i := uint64(0); i < readLen; i++ {
			if gotBuffer[i] != pf.Contents[pf.Offset+i] {
				return fmt.Errorf("read_spec: buffer[%d] = %#x != contents[%d] = %#x",
					i, gotBuffer[i], pf.Offset+i, pf.Contents[pf.Offset+i])
			}
		}
	}
	qf, ok := post.Files[fd]
	if !ok {
		return fmt.Errorf("read_spec: fd %d not open in post", fd)
	}
	if qf.Offset != pf.Offset+readLen {
		return fmt.Errorf("read_spec: post offset %d != pre offset %d + read_len %d",
			qf.Offset, pf.Offset, readLen)
	}
	return nil
}

// WriteSpec relates pre and post for a write: the written bytes appear
// in contents at the effective offset — the pre offset, or EOF when the
// descriptor carries OAppend (zero-filling any gap) — the offset
// advances to the end of the written segment, everything else is
// unchanged.
func WriteSpec(pre, post SpecState, fd FD, data []byte, wrote uint64) error {
	pf, ok := pre.Files[fd]
	if !ok {
		return fmt.Errorf("write_spec: fd %d not open in pre", fd)
	}
	if !pf.Locked {
		return fmt.Errorf("write_spec: pre.files[%d].locked is false", fd)
	}
	if wrote != uint64(len(data)) {
		return fmt.Errorf("write_spec: wrote %d != len(data) %d", wrote, len(data))
	}
	qf, ok := post.Files[fd]
	if !ok {
		return fmt.Errorf("write_spec: fd %d not open in post", fd)
	}
	wOff := pf.Offset
	if pf.Append {
		wOff = pf.Size() // append resolves the write offset at EOF
	}
	wantSize := pf.Size()
	if wOff+wrote > wantSize {
		wantSize = wOff + wrote
	}
	if qf.Size() != wantSize {
		return fmt.Errorf("write_spec: post size %d != %d", qf.Size(), wantSize)
	}
	if !writeSpecContentsOK(pf, qf, wOff, data, wrote) {
		// Slow path names the first offending index.
		for i := uint64(0); i < qf.Size(); i++ {
			var want byte
			switch {
			case i >= wOff && i < wOff+wrote:
				want = data[i-wOff]
			case i < pf.Size():
				want = pf.Contents[i]
			default:
				want = 0 // gap beyond old EOF zero-fills
			}
			if qf.Contents[i] != want {
				return fmt.Errorf("write_spec: post contents[%d] = %#x, want %#x", i, qf.Contents[i], want)
			}
		}
	}
	if qf.Offset != wOff+wrote {
		return fmt.Errorf("write_spec: post offset %d != %d", qf.Offset, wOff+wrote)
	}
	return nil
}

// writeSpecContentsOK is the segment form of WriteSpec's contents
// clause: prefix preserved, any gap beyond old EOF zero-filled, the
// written data at the effective offset wOff, suffix preserved. The
// caller has already established wrote == len(data) and post size ==
// the expected size, so every slice below is in bounds.
func writeSpecContentsOK(pf, qf SpecFile, wOff uint64, data []byte, wrote uint64) bool {
	cut := min64(wOff, pf.Size())
	if !bytes.Equal(qf.Contents[:cut], pf.Contents[:cut]) {
		return false
	}
	for _, b := range qf.Contents[cut:wOff] { // gap beyond old EOF
		if b != 0 {
			return false
		}
	}
	end := wOff + wrote
	if !bytes.Equal(qf.Contents[wOff:end], data) {
		return false
	}
	if end >= qf.Size() {
		return true
	}
	// A tail implies the write ended inside the old contents, so
	// qf.Size() == pf.Size() here.
	return bytes.Equal(qf.Contents[end:], pf.Contents[end:qf.Size()])
}

// SeekSpec relates pre and post for a seek.
func SeekSpec(pre, post SpecState, fd FD, off int64, whence int, result uint64) error {
	pf, ok := pre.Files[fd]
	if !ok {
		return fmt.Errorf("seek_spec: fd %d not open", fd)
	}
	var base uint64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = pf.Offset
	case SeekEnd:
		base = pf.Size()
	default:
		return fmt.Errorf("seek_spec: bad whence %d", whence)
	}
	want := int64(base) + off
	if want < 0 {
		return fmt.Errorf("seek_spec: negative target accepted")
	}
	if result != uint64(want) {
		return fmt.Errorf("seek_spec: result %d != %d", result, want)
	}
	if qf := post.Files[fd]; qf.Offset != uint64(want) {
		return fmt.Errorf("seek_spec: post offset %d != %d", qf.Offset, want)
	}
	return nil
}

// AbstractFDs computes the abstraction of an FDTable: the paper's
// `view()` function from runtime values to the mathematical State.
func AbstractFDs(t *FDTable) SpecState {
	out := SpecState{Files: make(map[FD]SpecFile, len(t.open))}
	for fd, of := range t.open {
		n := t.fs.inodes[of.Ino]
		var contents []byte
		if n != nil {
			contents = make([]byte, len(n.Data))
			copy(contents, n.Data)
		}
		out.Files[fd] = SpecFile{Contents: contents, Offset: of.Offset, Locked: of.Locked,
			Append: of.Flags&OAppend != 0, Ino: of.Ino}
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
