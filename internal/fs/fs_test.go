package fs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/verifier"
)

func TestCreateLookupUnlink(t *testing.T) {
	f := New()
	ino, err := f.Create("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Lookup("/hello.txt")
	if err != nil || got != ino {
		t.Fatalf("Lookup = %d, %v", got, err)
	}
	if _, err := f.Create("/hello.txt"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := f.Unlink("/hello.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup("/hello.txt"); !errors.Is(err, ErrNotExist) {
		t.Errorf("lookup after unlink: %v", err)
	}
	if f.NumInodes() != 1 {
		t.Errorf("inodes = %d, want 1 (root)", f.NumInodes())
	}
}

func TestMkdirTree(t *testing.T) {
	f := New()
	if _, err := f.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create("/a/b/c.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mkdir("/missing/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir under missing: %v", err)
	}
	if _, err := f.Create("/a/b/c.txt/d"); !errors.Is(err, ErrNotDir) {
		t.Errorf("create under file: %v", err)
	}
	st, err := f.StatPath("/a/b")
	if err != nil || st.Kind != KindDir {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	if err := f.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPathNormalization(t *testing.T) {
	f := New()
	if _, err := f.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	ino, err := f.Create("/a/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/a/f", "//a//f", "/a/./f", "/a/b/../f", "/../a/f"} {
		got, err := f.Lookup(p)
		if err != nil || got != ino {
			t.Errorf("Lookup(%q) = %d, %v", p, got, err)
		}
	}
	if _, err := f.Lookup("relative"); !errors.Is(err, ErrInval) {
		t.Errorf("relative path: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	f := New()
	if _, err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rmdir non-empty: %v", err)
	}
	if err := f.Unlink("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("unlink dir: %v", err)
	}
	if err := f.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestHardLinks(t *testing.T) {
	f := New()
	ino, err := f.Create("/orig")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ino, 0, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	if err := f.Link("/orig", "/alias"); err != nil {
		t.Fatal(err)
	}
	st, _ := f.StatPath("/alias")
	if st.Ino != ino || st.Nlink != 2 {
		t.Fatalf("alias stat = %+v", st)
	}
	if err := f.Unlink("/orig"); err != nil {
		t.Fatal(err)
	}
	// Data still reachable through the alias.
	buf := make([]byte, 6)
	if _, err := f.ReadAt(ino, 0, buf); err != nil || string(buf) != "shared" {
		t.Fatalf("read after unlink = %q, %v", buf, err)
	}
	if err := f.Unlink("/alias"); err != nil {
		t.Fatal(err)
	}
	if f.NumInodes() != 1 {
		t.Errorf("inode leaked: %d", f.NumInodes())
	}
}

func TestRename(t *testing.T) {
	f := New()
	if _, err := f.Create("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Lookup("/a"); !errors.Is(err, ErrNotExist) {
		t.Error("old name survived rename")
	}
	if _, err := f.Lookup("/d/b"); err != nil {
		t.Error("new name missing")
	}
	// Replacing an existing file.
	ino, _ := f.Create("/victim")
	_, _ = f.WriteAt(ino, 0, []byte("bye"))
	if err := f.Rename("/d/b", "/victim"); err != nil {
		t.Fatal(err)
	}
	if f.NumInodes() != 3 { // root, /d, the renamed file
		t.Errorf("inodes = %d", f.NumInodes())
	}
	// Directory cycle rejected.
	if _, err := f.Mkdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("/d", "/d/sub/evil"); !errors.Is(err, ErrInval) {
		t.Errorf("cycle rename: %v", err)
	}
	if err := f.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteAt(t *testing.T) {
	f := New()
	ino, _ := f.Create("/f")
	if _, err := f.WriteAt(ino, 5, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	st, _ := f.StatIno(ino)
	if st.Size != 8 {
		t.Fatalf("size = %d", st.Size)
	}
	buf := make([]byte, 8)
	n, err := f.ReadAt(ino, 0, buf)
	if err != nil || n != 8 {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0, 0, 0, 'a', 'b', 'c'}) {
		t.Fatalf("sparse gap not zero-filled: %v", buf)
	}
	if n, _ := f.ReadAt(ino, 100, buf); n != 0 {
		t.Errorf("read past EOF = %d", n)
	}
	if err := f.Truncate(ino, 2); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.StatIno(ino); st.Size != 2 {
		t.Errorf("size after truncate = %d", st.Size)
	}
	if err := f.Truncate(ino, 10); err != nil {
		t.Fatal(err)
	}
	buf = make([]byte, 10)
	_, _ = f.ReadAt(ino, 0, buf)
	for i := 2; i < 10; i++ {
		if buf[i] != 0 {
			t.Fatalf("truncate-extend byte %d = %#x", i, buf[i])
		}
	}
}

func TestReadDirSorted(t *testing.T) {
	f := New()
	for _, name := range []string{"/zeta", "/alpha", "/mid"} {
		if _, err := f.Create(name); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := f.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "alpha" || ents[2].Name != "zeta" {
		t.Fatalf("entries = %+v", ents)
	}
	if _, err := f.ReadDir("/alpha"); !errors.Is(err, ErrNotDir) {
		t.Errorf("readdir of file: %v", err)
	}
}

func TestFDLifecycle(t *testing.T) {
	tb := NewFDTable(New())
	fd, err := tb.Open("/f", OCreate|ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Lock(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Write(fd, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Seek(fd, 0, SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	n, err := tb.Read(fd, buf)
	if err != nil || n != 5 || string(buf) != "hello" {
		t.Fatalf("read = %d %q %v", n, buf, err)
	}
	if err := tb.Unlock(fd); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(fd); !errors.Is(err, ErrBadFD) {
		t.Errorf("double close: %v", err)
	}
}

func TestFDModes(t *testing.T) {
	tb := NewFDTable(New())
	ro, err := tb.Open("/f", OCreate)
	if err != nil {
		t.Fatal(err)
	}
	_ = tb.Lock(ro)
	if _, err := tb.Write(ro, []byte("x")); !errors.Is(err, ErrPermission) {
		t.Errorf("write on ro fd: %v", err)
	}
	wo, _ := tb.Open("/f", OWrOnly)
	_ = tb.Lock(wo)
	if _, err := tb.Read(wo, make([]byte, 1)); !errors.Is(err, ErrPermission) {
		t.Errorf("read on wo fd: %v", err)
	}
	// Append mode always writes at EOF.
	ap, _ := tb.Open("/f", OWrOnly|OAppend)
	_ = tb.Lock(ap)
	if _, err := tb.Write(ap, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Write(ap, []byte("def")); err != nil {
		t.Fatal(err)
	}
	st, _ := tb.FS().StatPath("/f")
	if st.Size != 6 {
		t.Fatalf("append size = %d", st.Size)
	}
}

func TestReadSpecHoldsOnImplementation(t *testing.T) {
	tb := NewFDTable(New())
	fd, _ := tb.Open("/f", OCreate|ORdWr)
	_ = tb.Lock(fd)
	_, _ = tb.Write(fd, []byte("The quick brown fox"))
	_, _ = tb.Seek(fd, 4, SeekSet)

	pre := AbstractFDs(tb)
	buf := make([]byte, 5)
	n, err := tb.Read(fd, buf)
	if err != nil {
		t.Fatal(err)
	}
	post := AbstractFDs(tb)
	if err := ReadSpec(pre, post, fd, uint64(len(buf)), buf, n); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "quick" {
		t.Fatalf("buf = %q", buf)
	}
	// Short read at EOF: spec still must hold.
	_, _ = tb.Seek(fd, -3, SeekEnd)
	pre = AbstractFDs(tb)
	buf = make([]byte, 10)
	n, _ = tb.Read(fd, buf)
	post = AbstractFDs(tb)
	if n != 3 {
		t.Fatalf("short read = %d", n)
	}
	if err := ReadSpec(pre, post, fd, 10, buf, n); err != nil {
		t.Fatal(err)
	}
}

func TestReadSpecRejectsWrongBehavior(t *testing.T) {
	pre := SpecState{Files: map[FD]SpecFile{3: {Contents: []byte("abcdef"), Offset: 2, Locked: true}}}
	post := pre.CloneSpec()
	f := post.Files[3]
	f.Offset = 4
	post.Files[3] = f
	// Correct: read 2 bytes "cd".
	if err := ReadSpec(pre, post, 3, 2, []byte("cd"), 2); err != nil {
		t.Fatal(err)
	}
	// Wrong data.
	if err := ReadSpec(pre, post, 3, 2, []byte("xx"), 2); err == nil {
		t.Error("wrong buffer accepted")
	}
	// Wrong length.
	if err := ReadSpec(pre, post, 3, 2, []byte("cd"), 1); err == nil {
		t.Error("wrong read_len accepted")
	}
	// Unlocked precondition.
	pre2 := pre.CloneSpec()
	f2 := pre2.Files[3]
	f2.Locked = false
	pre2.Files[3] = f2
	if err := ReadSpec(pre2, post, 3, 2, []byte("cd"), 2); err == nil {
		t.Error("unlocked pre accepted")
	}
	// Stale post offset.
	post2 := pre.CloneSpec()
	if err := ReadSpec(pre, post2, 3, 2, []byte("cd"), 2); err == nil {
		t.Error("unadvanced offset accepted")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	f := randomFS(rand.New(rand.NewSource(3)), 150)
	d := NewMemBlockStore(512, 65536)
	if err := Save(f, d); err != nil {
		t.Fatal(err)
	}
	g, err := Load(d)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(f, g) {
		t.Fatal("round trip mismatch")
	}
	if err := g.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistAlternatesSlots(t *testing.T) {
	d := NewMemBlockStore(512, 65536)
	f1 := New()
	if _, err := f1.Create("/gen1"); err != nil {
		t.Fatal(err)
	}
	if err := Save(f1, d); err != nil {
		t.Fatal(err)
	}
	f2 := New()
	if _, err := f2.Create("/gen2"); err != nil {
		t.Fatal(err)
	}
	if err := Save(f2, d); err != nil {
		t.Fatal(err)
	}
	got, err := Load(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Lookup("/gen2"); err != nil {
		t.Fatal("latest snapshot not loaded")
	}
	h, err := readHeader(d)
	if err != nil || h.slot != 1 {
		t.Fatalf("second save should land in slot 1: %+v, %v", h, err)
	}
}

func TestLoadEmptyDevice(t *testing.T) {
	d := NewMemBlockStore(512, 128)
	if _, err := Load(d); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v", err)
	}
}

func TestSaveTooBig(t *testing.T) {
	f := New()
	ino, _ := f.Create("/big")
	if _, err := f.WriteAt(ino, 0, make([]byte, 200_000)); err != nil {
		t.Fatal(err)
	}
	d := NewMemBlockStore(512, 64)
	if err := Save(f, d); !errors.Is(err, ErrTooBig) {
		t.Fatalf("err = %v", err)
	}
}

// Property: WriteAt then ReadAt at the same offset round-trips.
func TestQuickWriteReadAt(t *testing.T) {
	f := New()
	ino, _ := f.Create("/q")
	prop := func(off uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		if _, err := f.WriteAt(ino, uint64(off), data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		n, err := f.ReadAt(ino, uint64(off), got)
		return err == nil && n == len(data) && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 17})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
