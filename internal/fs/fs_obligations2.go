package fs

import (
	"fmt"
	"math/rand"
	gopath "path"
	"sort"
	"strings"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of filesystem VCs:
// path-resolution equivalence with Go's reference path algebra, a
// full-API equivalence check against a flat reference model, hard-link
// accounting, and directory-listing determinism.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "fs", Name: "path-normalization-matches-reference", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				comps := []string{"a", "b", "c", ".", "..", "", "dd"}
				for i := 0; i < 2000; i++ {
					// Random absolute path from the component pool.
					n := 1 + r.Intn(6)
					parts := make([]string, n)
					for j := range parts {
						parts[j] = comps[r.Intn(len(comps))]
					}
					p := "/" + strings.Join(parts, "/")
					got, err := SplitPath(p)
					if err != nil {
						return fmt.Errorf("SplitPath(%q): %v", p, err)
					}
					want := gopath.Clean(p)
					gotPath := "/" + strings.Join(got, "/")
					if want == "/" && gotPath == "/" {
						continue
					}
					if gotPath != want {
						return fmt.Errorf("SplitPath(%q) = %q, path.Clean = %q", p, gotPath, want)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "api-matches-flat-reference-model", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Reference model: map[path]contents plus a directory
				// set; compare outcomes of create/write/read/unlink
				// against the tree implementation.
				f := New()
				refFiles := map[string][]byte{}
				refDirs := map[string]bool{"/": true}
				names := []string{"/x", "/y", "/d/a", "/d/b", "/d/e/z"}
				_, _ = f.Mkdir("/d")
				refDirs["/d"] = true
				_, _ = f.Mkdir("/d/e")
				refDirs["/d/e"] = true
				for i := 0; i < 1500; i++ {
					p := names[r.Intn(len(names))]
					switch r.Intn(4) {
					case 0: // create
						_, err := f.Create(p)
						_, exists := refFiles[p]
						if (err == nil) == exists {
							return fmt.Errorf("create(%q) err=%v but ref exists=%t", p, err, exists)
						}
						if err == nil {
							refFiles[p] = nil
						}
					case 1: // write whole contents
						data := make([]byte, r.Intn(100))
						r.Read(data)
						ino, err := f.Lookup(p)
						if _, exists := refFiles[p]; !exists {
							if err == nil {
								return fmt.Errorf("lookup(%q) found unknown file", p)
							}
							continue
						}
						if err != nil {
							return fmt.Errorf("lookup(%q): %v", p, err)
						}
						if err := f.Truncate(ino, 0); err != nil {
							return err
						}
						if _, err := f.WriteAt(ino, 0, data); err != nil {
							return err
						}
						refFiles[p] = append([]byte(nil), data...)
					case 2: // read and compare
						ino, err := f.Lookup(p)
						want, exists := refFiles[p]
						if !exists {
							continue
						}
						if err != nil {
							return fmt.Errorf("lookup(%q): %v", p, err)
						}
						buf := make([]byte, len(want)+10)
						n, err := f.ReadAt(ino, 0, buf)
						if err != nil {
							return err
						}
						if n != len(want) || string(buf[:n]) != string(want) {
							return fmt.Errorf("read(%q) diverged from reference", p)
						}
					default: // unlink
						err := f.Unlink(p)
						_, exists := refFiles[p]
						if (err == nil) != exists {
							return fmt.Errorf("unlink(%q) err=%v, ref exists=%t", p, err, exists)
						}
						delete(refFiles, p)
					}
				}
				return f.CheckInvariant()
			}},
		verifier.Obligation{Module: "fs", Name: "hard-link-accounting", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				f := New()
				if _, err := f.Create("/base"); err != nil {
					return err
				}
				links := []string{"/base"}
				for i := 0; i < 300; i++ {
					if r.Intn(2) == 0 || len(links) == 1 {
						name := fmt.Sprintf("/l%d", i)
						if err := f.Link(links[r.Intn(len(links))], name); err != nil {
							return err
						}
						links = append(links, name)
					} else {
						j := 1 + r.Intn(len(links)-1)
						if err := f.Unlink(links[j]); err != nil {
							return err
						}
						links = append(links[:j], links[j+1:]...)
					}
					st, err := f.StatPath(links[0])
					if err != nil {
						return err
					}
					if st.Nlink != len(links) {
						return fmt.Errorf("nlink = %d, live names = %d", st.Nlink, len(links))
					}
				}
				return f.CheckInvariant()
			}},
		verifier.Obligation{Module: "fs", Name: "readdir-deterministic-sorted", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				f := New()
				var names []string
				for i := 0; i < 60; i++ {
					name := fmt.Sprintf("f%03d", r.Intn(1000))
					if _, err := f.Create("/" + name); err == nil {
						names = append(names, name)
					}
				}
				sort.Strings(names)
				ents, err := f.ReadDir("/")
				if err != nil {
					return err
				}
				if len(ents) != len(names) {
					return fmt.Errorf("readdir %d entries, want %d", len(ents), len(names))
				}
				for i := range ents {
					if ents[i].Name != names[i] {
						return fmt.Errorf("entry %d = %q, want %q (sorted)", i, ents[i].Name, names[i])
					}
				}
				// Determinism: two listings agree.
				again, err := f.ReadDir("/")
				if err != nil {
					return err
				}
				for i := range again {
					if again[i] != ents[i] {
						return fmt.Errorf("readdir not deterministic at %d", i)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "fs", Name: "rename-preserves-content-and-links", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				f := New()
				ino, err := f.Create("/a")
				if err != nil {
					return err
				}
				payload := make([]byte, 500)
				r.Read(payload)
				if _, err := f.WriteAt(ino, 0, payload); err != nil {
					return err
				}
				if err := f.Link("/a", "/alias"); err != nil {
					return err
				}
				cur := "/a"
				for i := 0; i < 50; i++ {
					next := fmt.Sprintf("/r%d", i)
					if err := f.Rename(cur, next); err != nil {
						return err
					}
					cur = next
					st, err := f.StatPath(cur)
					if err != nil {
						return err
					}
					if st.Ino != ino || st.Nlink != 2 {
						return fmt.Errorf("after rename %d: ino %d nlink %d", i, st.Ino, st.Nlink)
					}
				}
				buf := make([]byte, len(payload))
				if _, err := f.ReadAt(ino, 0, buf); err != nil {
					return err
				}
				if string(buf) != string(payload) {
					return fmt.Errorf("contents lost across renames")
				}
				return f.CheckInvariant()
			}},
		verifier.Obligation{Module: "fs", Name: "snapshot-deterministic-bytes", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error {
				// Two saves of the same state produce byte-identical
				// payloads (replicas restore bit-identically at boot).
				f := randomFS(r, 80)
				d1 := NewMemBlockStore(512, 65536)
				d2 := NewMemBlockStore(512, 65536)
				if err := Save(f, d1); err != nil {
					return err
				}
				if err := Save(f, d2); err != nil {
					return err
				}
				b1 := make([]byte, 512)
				b2 := make([]byte, 512)
				for i := uint64(0); i < 512; i++ {
					if err := d1.ReadBlock(i, b1); err != nil {
						return err
					}
					if err := d2.ReadBlock(i, b2); err != nil {
						return err
					}
					if string(b1) != string(b2) {
						return fmt.Errorf("snapshot block %d differs between saves", i)
					}
				}
				return nil
			}},
	)
}
