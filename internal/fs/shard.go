package fs

// This file is the descriptor/filesystem support for the sharded kernel
// (internal/core's §4.1 composition): when descriptor tables live on a
// process-state shard and file contents on a filesystem shard, the open
// protocol installs descriptors by inode (the namespace step already
// ran on the filesystem group), and the §3 view() abstraction gathers
// the two halves back into one SpecState.

// Attach installs a descriptor for an already-resolved inode, without
// consulting the table's own filesystem — the second step of the
// cross-shard open protocol, after the namespace shard has resolved or
// created the inode. It mirrors Open's descriptor installation exactly.
func (t *FDTable) Attach(ino Ino, flags int) FD {
	fd := t.next
	t.next++
	t.open[fd] = &OpenFile{Ino: ino, Flags: flags}
	return fd
}

// Snapshot returns a value copy of the descriptor table (fd → open-file
// state). The sharded contract viewer composes it with per-inode
// contents fetched from the owning filesystem shard.
func (t *FDTable) Snapshot() map[FD]OpenFile {
	out := make(map[FD]OpenFile, len(t.open))
	for fd, of := range t.open {
		out[fd] = *of
	}
	return out
}

// Contents returns a copy of a file's data, or ok=false if the inode
// does not exist.
func (f *FS) Contents(ino Ino) ([]byte, bool) {
	n := f.inodes[ino]
	if n == nil {
		return nil, false
	}
	out := make([]byte, len(n.Data))
	copy(out, n.Data)
	return out, true
}

// InodesWithData lists the inodes holding file contents — on a
// filesystem shard, these must all be owned by that shard (the
// shard-isolation obligation): the namespace is replicated everywhere,
// the data lives only with its owner.
func (f *FS) InodesWithData() []Ino {
	var out []Ino
	for ino, n := range f.inodes {
		if n.Kind == KindFile && len(n.Data) > 0 {
			out = append(out, ino)
		}
	}
	return out
}

// NamespaceEqual reports whether two filesystems agree on everything
// except file contents: same inode numbering, tree structure, kinds and
// link counts. Filesystem shards replicate the namespace by applying
// every namespace mutation in the same (broadcast) order, so their
// trees must match even though each shard stores data only for the
// inodes it owns.
func NamespaceEqual(a, b *FS) bool {
	if len(a.inodes) != len(b.inodes) || a.next != b.next {
		return false
	}
	for ino, n := range a.inodes {
		m := b.inodes[ino]
		if m == nil || m.Kind != n.Kind || m.Nlink != n.Nlink || len(m.Children) != len(n.Children) {
			return false
		}
		for name, ci := range n.Children {
			if m.Children[name] != ci {
				return false
			}
		}
	}
	return true
}
