package fs

import (
	"errors"
	"testing"
)

func buildFS(t *testing.T, files map[string]string) *FS {
	t.Helper()
	f := New()
	for path, content := range files {
		ino, err := f.Create(path)
		if err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		if _, err := f.WriteAt(ino, 0, []byte(content)); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	return f
}

func TestLoadTornHeader(t *testing.T) {
	d := NewMemBlockStore(512, 64)
	f := buildFS(t, map[string]string{"/a": "alpha"})
	if err := Save(f, d); err != nil {
		t.Fatal(err)
	}
	// Tear the header: corrupt the magic's bytes.
	hb := make([]byte, 512)
	if err := d.ReadBlock(0, hb); err != nil {
		t.Fatal(err)
	}
	hb[3] ^= 0xFF
	if err := d.WriteBlock(0, hb); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("load with torn header: %v, want ErrNoSnapshot", err)
	}
}

func TestLoadTornPayload(t *testing.T) {
	d := NewMemBlockStore(512, 64)
	f := buildFS(t, map[string]string{"/a": "payload under test"})
	if err := Save(f, d); err != nil {
		t.Fatal(err)
	}
	// Corrupt the first payload block of the active slot.
	hd, err := readHeader(d)
	if err != nil {
		t.Fatal(err)
	}
	slotCap := (d.NumBlocks() - 1) / 2
	base := 1 + hd.slot*slotCap
	pb := make([]byte, 512)
	if err := d.ReadBlock(base, pb); err != nil {
		t.Fatal(err)
	}
	pb[10] ^= 0x01
	if err := d.WriteBlock(base, pb); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d); !errors.Is(err, ErrBadImage) {
		t.Fatalf("load with torn payload: %v, want ErrBadImage", err)
	}
}

func TestSaveAlternatesSlots(t *testing.T) {
	d := NewMemBlockStore(512, 64)
	f := buildFS(t, map[string]string{"/a": "v1"})
	slots := make([]uint64, 0, 4)
	for i := 0; i < 4; i++ {
		if err := Save(f, d); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
		hd, err := readHeader(d)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, hd.slot)
	}
	for i := 1; i < len(slots); i++ {
		if slots[i] == slots[i-1] {
			t.Fatalf("saves %d and %d share slot %d (A/B alternation broken)", i-1, i, slots[i])
		}
	}
	// A torn save must leave the previous snapshot loadable: Save puts
	// the new payload in the OTHER slot before touching the header, so
	// scribbling over that slot (a save that crashed mid-payload) is
	// invisible to Load.
	hd, err := readHeader(d)
	if err != nil {
		t.Fatal(err)
	}
	slotCap := (d.NumBlocks() - 1) / 2
	otherBase := 1 + (1-hd.slot)*slotCap
	junk := make([]byte, 512)
	for i := range junk {
		junk[i] = 0xEE
	}
	if err := d.WriteBlock(otherBase, junk); err != nil {
		t.Fatal(err)
	}
	g, err := Load(d)
	if err != nil {
		t.Fatalf("load after torn save into inactive slot: %v", err)
	}
	if !Equal(g, f) {
		t.Fatal("previous snapshot damaged by a torn save")
	}
}

func TestSaveStampRoundTrip(t *testing.T) {
	d := NewMemBlockStore(512, 64)
	f := buildFS(t, map[string]string{"/s": "stamped"})
	if err := SaveStamped(f, d, 777); err != nil {
		t.Fatal(err)
	}
	g, stamp, err := LoadStamped(d)
	if err != nil {
		t.Fatal(err)
	}
	if stamp != 777 {
		t.Fatalf("stamp %d, want 777", stamp)
	}
	if !Equal(f, g) {
		t.Fatal("filesystem changed across stamped round trip")
	}
	// Plain Save writes stamp 0 (and pre-stamp images decode as 0).
	if err := Save(f, d); err != nil {
		t.Fatal(err)
	}
	if _, stamp, err = LoadStamped(d); err != nil || stamp != 0 {
		t.Fatalf("unstamped save read back stamp %d, %v", stamp, err)
	}
}

func TestBlockAccessErrors(t *testing.T) {
	d := NewMemBlockStore(512, 8)
	good := make([]byte, 512)
	short := make([]byte, 100)
	if err := d.WriteBlock(8, good); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("out-of-range write: %v, want ErrBlockRange", err)
	}
	if err := d.ReadBlock(9, good); !errors.Is(err, ErrBlockRange) {
		t.Fatalf("out-of-range read: %v, want ErrBlockRange", err)
	}
	if err := d.WriteBlock(0, short); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("short-buffer write: %v, want ErrBlockSize", err)
	}
	if err := d.ReadBlock(0, short); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("short-buffer read: %v, want ErrBlockSize", err)
	}
	if err := d.WriteBlock(0, good); err != nil {
		t.Fatalf("valid write rejected: %v", err)
	}
}

// TestSnapshotGeometryErrors pins the typed sentinels on SaveStamped/
// LoadStamped geometry failures, so journal-region slicers
// (internal/walshard) can errors.Is-match them uniformly.
func TestSnapshotGeometryErrors(t *testing.T) {
	f := buildFS(t, map[string]string{"/a": "alpha"})
	// Too small for header + two slots: typed range error both ways.
	for _, n := range []uint64{0, 1, 2} {
		d := NewMemBlockStore(512, n)
		if err := SaveStamped(f, d, 1); !errors.Is(err, ErrBlockRange) {
			t.Fatalf("save into %d-block store: %v, want ErrBlockRange", n, err)
		}
		if _, _, err := LoadStamped(d); !errors.Is(err, ErrBlockRange) {
			t.Fatalf("load from %d-block store: %v, want ErrBlockRange", n, err)
		}
	}
	// Payload exceeding a slot: ErrTooBig, and ErrBlockRange for uniform
	// matching.
	small := NewMemBlockStore(512, 3) // one block per slot
	big := buildFS(t, map[string]string{"/big": string(make([]byte, 4096))})
	err := SaveStamped(big, small, 1)
	if !errors.Is(err, ErrTooBig) || !errors.Is(err, ErrBlockRange) {
		t.Fatalf("oversized save: %v, want ErrTooBig and ErrBlockRange", err)
	}
	// A header claiming more payload than a slot holds: ErrBadImage and
	// ErrBlockRange.
	d := NewMemBlockStore(512, 5) // two blocks per slot
	if err := SaveStamped(f, d, 1); err != nil {
		t.Fatal(err)
	}
	hb := make([]byte, 512)
	if err := d.ReadBlock(0, hb); err != nil {
		t.Fatal(err)
	}
	// Header layout: magic, slot, length, sum, stamp (u64 each). Inflate
	// the length field past the slot capacity.
	for i, b := range []byte{0, 0, 1, 0, 0, 0, 0, 0} { // 65536 little-endian
		hb[16+i] = b
	}
	if err := d.WriteBlock(0, hb); err != nil {
		t.Fatal(err)
	}
	_, _, err = LoadStamped(d)
	if !errors.Is(err, ErrBadImage) || !errors.Is(err, ErrBlockRange) {
		t.Fatalf("inflated header: %v, want ErrBadImage and ErrBlockRange", err)
	}
}
