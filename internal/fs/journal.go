package fs

import "fmt"

// This file is the filesystem's side of write-ahead journaling: the
// logical mutation record (the unit the journal sequences and replays)
// and the hook a journal implementation attaches through. The journal
// itself — wire format, group commit, checkpointing, recovery — lives
// in internal/wal; fs only defines *what* a mutation is and how to
// re-apply one, so the two packages compose without an import cycle.
//
// Mutations are fs-level (paths and inode numbers), not syscall-level:
// descriptor tables are volatile process state that does not survive a
// crash, while inode assignment is deterministic (next-Ino counter), so
// replaying the mutation sequence from a snapshot reconstructs the
// exact inode graph the original execution built.

// MutKind enumerates the journaled mutation types.
type MutKind uint8

// Mutation kinds — one per mutating FS entry point.
const (
	MutCreate MutKind = iota + 1
	MutMkdir
	MutUnlink
	MutRmdir
	MutLink
	MutRename
	MutWrite
	MutTruncate
)

func (k MutKind) String() string {
	switch k {
	case MutCreate:
		return "create"
	case MutMkdir:
		return "mkdir"
	case MutUnlink:
		return "unlink"
	case MutRmdir:
		return "rmdir"
	case MutLink:
		return "link"
	case MutRename:
		return "rename"
	case MutWrite:
		return "write"
	case MutTruncate:
		return "truncate"
	}
	return fmt.Sprintf("mut%d", uint8(k))
}

// Mutation is one logical filesystem mutation — the replayable record
// of a successful state transition. Unused fields are zero; Data is
// borrowed (a journal must copy or encode it before returning).
type Mutation struct {
	Kind  MutKind
	Path  string
	Path2 string
	Ino   Ino
	Off   uint64
	Size  uint64
	Data  []byte
}

// Journal receives the mutation stream of an FS instance. Record is
// called after the mutation has been applied in memory, in apply order
// (on a replicated kernel, the FS carrying the journal observes ops in
// log order, so the record stream is a linearization of the workload).
type Journal interface {
	Record(m Mutation)
}

// SetJournal attaches (or detaches, with nil) the journal sink. On an
// NR-replicated kernel exactly one replica's FS carries the sink, so
// each mutation is recorded once even though every replica applies it.
// On a sharded kernel each fs shard's carrier replica gets its own sink
// (one internal/walshard journal region per shard), so the shards'
// mutation streams sequence independently; cross-shard ordering is the
// group commit coordinator's job, not the record stream's.
func (f *FS) SetJournal(j Journal) { f.jrn = j }

// record forwards a successful mutation to the attached journal.
func (f *FS) record(m Mutation) {
	if f.jrn != nil {
		f.jrn.Record(m)
	}
}

// Apply re-executes a journaled mutation — the replay half of the
// crash-recovery story. Replay must run with no journal attached (or
// the recovery would re-journal its own input).
func (f *FS) Apply(m Mutation) error {
	switch m.Kind {
	case MutCreate:
		_, err := f.Create(m.Path)
		return err
	case MutMkdir:
		_, err := f.Mkdir(m.Path)
		return err
	case MutUnlink:
		return f.Unlink(m.Path)
	case MutRmdir:
		return f.Rmdir(m.Path)
	case MutLink:
		return f.Link(m.Path, m.Path2)
	case MutRename:
		return f.Rename(m.Path, m.Path2)
	case MutWrite:
		_, err := f.WriteAt(m.Ino, m.Off, m.Data)
		return err
	case MutTruncate:
		return f.Truncate(m.Ino, m.Size)
	}
	return fmt.Errorf("%w: unknown mutation kind %d", ErrInval, m.Kind)
}
