package pcache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// The page-cache verification conditions check the epoch protocol's two
// halves in isolation (core's read-mapping-refines-copy checks the
// composed system):
//
//   - safety: a pinned reader or a live vspace mapping blocks the free
//     of every frame it could still reach, and a fill racing an
//     invalidation can never install stale bytes;
//   - liveness/conservation: once readers unpin and mappings drop, every
//     retired frame returns to the source — no frame leaks, and
//     residency stays within the configured bound under pressure.

// memFrames is the in-memory FrameSource the obligations and tests run
// against: frames are 1-based indices into a slice of page buffers, and
// the source tracks the live set so conservation is checkable.
type memFrames struct {
	mu    sync.Mutex
	pages []*[PageSize]byte
	live  map[mem.PAddr]bool
	limit int // 0 = unlimited; else max live frames (pressure simulation)

	allocs int
	frees  int
}

func newMemFrames(limit int) *memFrames {
	return &memFrames{live: make(map[mem.PAddr]bool), limit: limit}
}

func (m *memFrames) AllocFrame() (mem.PAddr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.limit > 0 && len(m.live) >= m.limit {
		return 0, errors.New("memFrames: out of frames")
	}
	m.pages = append(m.pages, new([PageSize]byte))
	f := mem.PAddr(len(m.pages)) // 1-based: 0 is never a valid frame
	m.live[f] = true
	m.allocs++
	return f, nil
}

func (m *memFrames) FreeFrame(f mem.PAddr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.live[f] {
		panic(fmt.Sprintf("memFrames: double free of %d", f))
	}
	delete(m.live, f)
	m.frees++
}

func (m *memFrames) buf(f mem.PAddr) *[PageSize]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.live[f] {
		panic(fmt.Sprintf("memFrames: access to freed frame %d", f))
	}
	return m.pages[int(f)-1]
}

func (m *memFrames) WriteFrame(f mem.PAddr, off uint64, p []byte) {
	copy(m.buf(f)[off:], p)
}

func (m *memFrames) ReadFrame(f mem.PAddr, off uint64, p []byte) {
	copy(p, m.buf(f)[off:])
}

func (m *memFrames) liveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

// constFill returns a Filler serving a fixed backing slice as the
// authoritative contents of every inode.
func constFill(contents []byte) Filler {
	return func(_ fs.Ino, off uint64, p []byte) (int, sys.Errno) {
		if off >= uint64(len(contents)) {
			return 0, sys.EOK
		}
		return copy(p, contents[off:]), sys.EOK
	}
}

// RegisterObligations registers the page-cache verification conditions.
func RegisterObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "pcache", Name: "pinned-reader-blocks-reclaim", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error { return pinnedReaderCheck(r) }},
		verifier.Obligation{Module: "pcache", Name: "mapped-frame-survives-invalidation", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error { return mappedFrameCheck(r) }},
		verifier.Obligation{Module: "pcache", Name: "stale-fill-never-installs", Kind: verifier.KindLinearizability,
			Check: func(r *rand.Rand) error { return staleFillCheck(r) }},
		verifier.Obligation{Module: "pcache", Name: "frame-conservation-under-churn", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error { return churnConservationCheck(r) }},
	)
}

// pinnedReaderCheck: a reader pinned before an invalidation blocks the
// retired frame's free until it unpins; a reader pinned after the
// invalidation does not (its epoch postdates the retirement).
func pinnedReaderCheck(r *rand.Rand) error {
	src := newMemFrames(0)
	c := New(src, 0, 0)
	contents := make([]byte, PageSize)
	r.Read(contents)
	buf := make([]byte, 16)
	if _, e := c.ReadAt(1, 0, buf, constFill(contents), 0); e != sys.EOK {
		return fmt.Errorf("fill read: %v", e)
	}

	s := c.Pin(3) // epoch observed before the invalidation
	c.InvalidateIno(1)
	c.Reclaim()
	if src.liveCount() != 1 {
		c.Unpin(s)
		return fmt.Errorf("frame freed under a pinned reader: %d live frames", src.liveCount())
	}
	// A late reader (post-invalidation epoch) must not block reclamation
	// once the early one leaves.
	late := c.Pin(7)
	c.Unpin(s)
	c.Reclaim()
	if src.liveCount() != 0 {
		c.Unpin(late)
		return fmt.Errorf("late-pinned reader blocked reclaim: %d live frames", src.liveCount())
	}
	c.Unpin(late)
	return nil
}

// mappedFrameCheck: a vspace alias (maps > 0) keeps a retired frame
// alive through invalidation and arbitrary reclaim passes; the last
// UnmapFrame releases it.
func mappedFrameCheck(r *rand.Rand) error {
	src := newMemFrames(0)
	c := New(src, 0, 0)
	contents := make([]byte, PageSize)
	r.Read(contents)
	if _, e := c.ReadAt(1, 0, make([]byte, 1), constFill(contents), 0); e != sys.EOK {
		return fmt.Errorf("fill read: %v", e)
	}
	frame, n, ok := c.MapPage(1, 0, 0)
	if !ok {
		return errors.New("MapPage missed a resident page")
	}
	if n != PageSize {
		return fmt.Errorf("mapped page reports %d valid bytes, want %d", n, PageSize)
	}
	c.InvalidateIno(1)
	for i := 0; i < 3; i++ {
		c.Reclaim()
	}
	if src.liveCount() != 1 {
		return fmt.Errorf("mapped frame freed under invalidation: %d live frames", src.liveCount())
	}
	// The snapshot must still be readable through the frame.
	got := make([]byte, PageSize)
	src.ReadFrame(frame, 0, got)
	for i := range got {
		if got[i] != contents[i] {
			return fmt.Errorf("mapped snapshot corrupted at byte %d", i)
		}
	}
	c.UnmapFrame(frame)
	c.Quiesce()
	if src.liveCount() != 0 {
		return fmt.Errorf("frame leaked after last unmap: %d live frames", src.liveCount())
	}
	if c.Owns(frame) {
		return errors.New("cache still claims ownership of an unmapped frame")
	}
	return nil
}

// staleFillCheck: an invalidation running between a fill's version read
// and its insert must win — the filled page may not enter the map, so
// the next read refills with post-invalidation bytes.
func staleFillCheck(r *rand.Rand) error {
	src := newMemFrames(0)
	c := New(src, 0, 0)
	old := make([]byte, PageSize)
	fresh := make([]byte, PageSize)
	r.Read(old)
	r.Read(fresh)

	// The filler serves the OLD bytes and then (as if a writer completed
	// while the authoritative read was in flight) invalidates the inode
	// before returning — the insert must see the version bump and decline.
	racingFill := func(ino fs.Ino, off uint64, p []byte) (int, sys.Errno) {
		n := copy(p, old[off:])
		c.InvalidateRange(ino, 0, PageSize)
		return n, sys.EOK
	}
	buf := make([]byte, 32)
	if _, e := c.ReadAt(1, 0, buf, racingFill, 0); e != sys.EOK {
		return fmt.Errorf("racing read: %v", e)
	}
	if resident, _, _ := c.Stats(); resident != 0 {
		return fmt.Errorf("stale fill installed a page: %d resident", resident)
	}
	// The next read must fill fresh and serve the new bytes.
	got := make([]byte, PageSize)
	n, e := c.ReadAt(1, 0, got, constFill(fresh), 0)
	if e != sys.EOK || n != PageSize {
		return fmt.Errorf("refill read: n=%d %v", n, e)
	}
	for i := range got {
		if got[i] != fresh[i] {
			return fmt.Errorf("refill served stale byte at %d", i)
		}
	}
	return nil
}

// churnConservationCheck drives random reads, invalidations, mappings,
// and unmappings over a frame-limited source, then checks the cache
// respected the residency bound, never leaked a frame, and never
// double-freed (memFrames panics on double free or use-after-free).
func churnConservationCheck(r *rand.Rand) error {
	const maxPages = 8
	src := newMemFrames(maxPages + 4)
	c := New(src, 0, maxPages)
	contents := make([]byte, 64*PageSize)
	r.Read(contents)
	fill := constFill(contents)

	var mappedFrames []mem.PAddr
	for i := 0; i < 2000; i++ {
		ino := fs.Ino(1 + r.Intn(3))
		pageOff := uint64(r.Intn(64)) * PageSize
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			buf := make([]byte, 1+r.Intn(2*PageSize))
			if _, e := c.ReadAt(ino, pageOff+uint64(r.Intn(PageSize)), buf, fill, i); e != sys.EOK {
				return fmt.Errorf("read: %v", e)
			}
		case 6:
			c.InvalidateRange(ino, pageOff, pageOff+uint64(1+r.Intn(PageSize)))
		case 7:
			c.InvalidateIno(ino)
		case 8:
			if f, _, ok := c.MapPage(ino, pageOff, i); ok {
				mappedFrames = append(mappedFrames, f)
			}
		case 9:
			if len(mappedFrames) > 0 {
				j := r.Intn(len(mappedFrames))
				c.UnmapFrame(mappedFrames[j])
				mappedFrames = append(mappedFrames[:j], mappedFrames[j+1:]...)
			}
		}
		if resident, _, _ := c.Stats(); resident > maxPages {
			return fmt.Errorf("residency bound violated: %d > %d", resident, maxPages)
		}
	}
	for _, f := range mappedFrames {
		c.UnmapFrame(f)
	}
	for ino := fs.Ino(1); ino <= 3; ino++ {
		c.InvalidateIno(ino)
	}
	c.Quiesce()
	if n := src.liveCount(); n != 0 {
		return fmt.Errorf("%d frames leaked after full invalidation and quiescence", n)
	}
	return nil
}
