// Package pcache is the sharded page cache behind the zero-copy read
// path: one Cache per filesystem shard, holding page-granular copies of
// file contents in frames of the shared physical memory, with
// epoch-based (RCU-style) read snapshots.
//
// The concurrency discipline, and why it is safe:
//
//   - Readers never take a lock on the hit path. Pin publishes the
//     current epoch into a per-reader slot (one padded word, scanned by
//     reclaimers), the page lookup runs against a lock-free map, the
//     bytes are copied out of the frame, and Unpin clears the slot.
//
//   - Writers invalidate in three ordered steps: bump the inode's
//     version (so in-flight fills can never install stale bytes), mark
//     the dead pages and delete them from the map, then advance the
//     global epoch and retire the frames under that epoch.
//
//   - Reclamation frees a retired frame only once no pinned reader
//     holds an epoch older than the frame's retire epoch and no vspace
//     mapping aliases it. All epoch operations are sequentially
//     consistent (sync/atomic), which gives the safety argument its
//     hinge: the map deletion happens-before the epoch advance, so a
//     reader whose pinned epoch is at or past the retire epoch observed
//     the advance — and therefore the deletion — and cannot find the
//     dead page, while a reader that pinned before it is visible to the
//     reclaimer's scan and blocks the free.
//
// Stale-fill prevention is the cache's linearizability obligation: a
// fill records the inode version before performing its authoritative
// read and installs the page only if the version is still unchanged at
// insert. A concurrent writer bumps the version before its data lands,
// so a page can only ever enter the map with bytes at least as new as
// every invalidation that completed before the insert — and a stale
// page can exist only in the window where its write has not yet
// returned, which any linearization may order either way.
package pcache

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/sys"
)

// PageSize is the cache granule: the base page of the simulated MMU, so
// a cached frame can be mapped into a vspace as-is.
const PageSize = mmu.L1PageSize

// maxReaders is the number of per-reader pin slots. Pins are transient
// (one lock-free read each), so slots are shared by hint hashing rather
// than owned; 128 padded slots keep false sharing away at any core
// count the simulated machine uses.
const maxReaders = 128

// DefaultMaxPages bounds a cache's resident pages before eviction.
const DefaultMaxPages = 1024

// FrameSource allocates and frees the physical frames the cache stores
// pages in. core adapts its shared data-frame allocator; tests use a
// simple in-memory source. AllocFrame may fail under memory pressure —
// the cache then evicts and retries, and finally serves without caching.
type FrameSource interface {
	AllocFrame() (mem.PAddr, error)
	FreeFrame(f mem.PAddr)
	// WriteFrame / ReadFrame access the frame's backing bytes.
	WriteFrame(f mem.PAddr, off uint64, p []byte)
	ReadFrame(f mem.PAddr, off uint64, p []byte)
}

// Filler performs the authoritative read that backs a cache miss: read
// up to len(p) bytes of ino at off, returning the count. It runs
// replica-locally (nr.ExecuteRead) on the inode's owner shard. Reads
// beyond EOF return 0, not an error, mirroring fs.ReadAt.
type Filler func(ino fs.Ino, off uint64, p []byte) (int, sys.Errno)

// pageKey addresses one cached page.
type pageKey struct {
	ino  fs.Ino
	page uint64 // byte offset / PageSize
}

// page is one resident cache page. Immutable after insertion except for
// the lifecycle fields: dead flips once under invalidation, maps counts
// live vspace aliases of the frame.
type page struct {
	frame mem.PAddr
	// n is the number of valid bytes in the frame ([0, PageSize]); the
	// tail of a short (EOF) page is zeroed at fill.
	n    uint32
	dead atomic.Bool
	maps atomic.Int64
}

// slot is one padded reader-pin slot: 0 when idle, otherwise the epoch
// the reader observed at Pin.
type slot struct {
	epoch atomic.Uint64
	_     [56]byte // pad to a cache line
}

// retired is a frame awaiting epoch quiescence.
type retired struct {
	p     *page
	epoch uint64 // the epoch advanced by the invalidation that killed it
}

// Cache is one shard's page cache.
type Cache struct {
	frames FrameSource
	// shard is the obs slot counters record under (the owning fs
	// shard's slot, or 0 on the monolith).
	shard uint64
	// maxPages bounds residency; eviction is FIFO over insert order.
	maxPages int

	// epoch is the global read epoch. Starts at 1 so a zero slot always
	// means "idle".
	epoch atomic.Uint64

	// readers are the pin slots.
	readers [maxReaders]slot

	// pages is the lock-free lookup: pageKey -> *page.
	pages sync.Map

	// mu guards the write-side bookkeeping below. It is never taken on
	// the read hit path.
	mu sync.Mutex
	// versions is the per-inode fill validation counter.
	versions map[fs.Ino]uint64
	// fifo is the eviction order of resident keys (may contain stale
	// entries for pages already invalidated; eviction skips those).
	fifo []pageKey
	// retiredQ holds dead pages whose frames await quiescence.
	retiredQ []retired
	// mapped indexes live vspace aliases: frame -> page, including
	// pages already invalidated (orphans) whose frame must survive
	// until the last PreadUnmap.
	mapped map[mem.PAddr]*page
}

// New creates a cache over the given frame source. shardSlot is the obs
// shard slot its counters record under; maxPages ≤ 0 selects the
// default bound.
func New(frames FrameSource, shardSlot uint64, maxPages int) *Cache {
	if maxPages <= 0 {
		maxPages = DefaultMaxPages
	}
	c := &Cache{
		frames:   frames,
		shard:    shardSlot,
		maxPages: maxPages,
		versions: make(map[fs.Ino]uint64),
		mapped:   make(map[mem.PAddr]*page),
	}
	c.epoch.Store(1)
	return c
}

// Pin enters a read-side critical section: it publishes the current
// epoch into a reader slot and returns the slot index for Unpin. hint
// spreads concurrent readers across slots (the caller's core number).
func (c *Cache) Pin(hint int) int {
	e := c.epoch.Load()
	i := hint % maxReaders
	if i < 0 {
		i += maxReaders
	}
	for {
		if c.readers[i].epoch.CompareAndSwap(0, e) {
			return i
		}
		i = (i + 1) % maxReaders
	}
}

// Unpin leaves the read-side critical section entered at slot i.
func (c *Cache) Unpin(i int) { c.readers[i].epoch.Store(0) }

// minPinned returns the smallest epoch any pinned reader holds, or 0
// when no reader is pinned.
func (c *Cache) minPinned() uint64 {
	min := uint64(0)
	for i := range c.readers {
		if e := c.readers[i].epoch.Load(); e != 0 && (min == 0 || e < min) {
			min = e
		}
	}
	return min
}

// ReadAt serves a positioned read of ino through the cache: cache-hit
// pages are copied out lock-free under an epoch pin; missing pages are
// filled from the authoritative read and inserted (version-validated).
// It returns the byte count (0 at EOF), mirroring fs.ReadAt semantics.
//
// A read spanning multiple pages assembles per-page, so under a racing
// writer it can observe a mix of pre- and post-write pages — the same
// page-wise atomicity Linux gives concurrent pread/write; each page is
// individually consistent and the §3 contract is checked per
// linearizable page transition.
func (c *Cache) ReadAt(ino fs.Ino, off uint64, p []byte, fill Filler, hint int) (int, sys.Errno) {
	total := 0
	for total < len(p) {
		pos := off + uint64(total)
		want := PageSize - pos%PageSize
		if rem := uint64(len(p) - total); rem < want {
			want = rem
		}
		n, e := c.readPage(ino, pos, p[total:total+int(want)], fill, hint)
		if e != sys.EOK {
			return total, e
		}
		total += n
		if uint64(n) < want {
			break // EOF inside this page
		}
	}
	return total, sys.EOK
}

// readPage serves the single-page slice of a read starting at pos,
// returning how many bytes it produced (bounded by the page boundary
// and EOF).
func (c *Cache) readPage(ino fs.Ino, pos uint64, p []byte, fill Filler, hint int) (int, sys.Errno) {
	key := pageKey{ino: ino, page: pos / PageSize}
	in := pos % PageSize
	want := PageSize - in
	if uint64(len(p)) < want {
		want = uint64(len(p))
	}

	// Fast path: pin, lock-free lookup, copy, unpin.
	s := c.Pin(hint)
	if v, ok := c.pages.Load(key); ok {
		pg := v.(*page)
		if !pg.dead.Load() {
			n := 0
			if uint64(pg.n) > in {
				avail := uint64(pg.n) - in
				if avail < want {
					n = int(avail)
				} else {
					n = int(want)
				}
				c.frames.ReadFrame(pg.frame, in, p[:n])
			}
			c.Unpin(s)
			obs.PCacheHits.Add(uint32(c.shard), 1)
			return n, sys.EOK
		}
	}
	c.Unpin(s)
	obs.PCacheMisses.Add(uint32(c.shard), 1)

	// Miss: record the inode version, perform the authoritative read of
	// the whole page, then insert only if no invalidation raced us.
	v0 := c.version(ino)
	var buf [PageSize]byte
	pageOff := key.page * PageSize
	n, e := fill(ino, pageOff, buf[:])
	if e != sys.EOK {
		return 0, e
	}
	c.tryInsert(key, v0, buf[:], n)

	// Serve the authoritative bytes regardless of whether the insert
	// stuck — the fill is correct by construction.
	if uint64(n) <= in {
		return 0, sys.EOK
	}
	avail := uint64(n) - in
	if avail > want {
		avail = want
	}
	copy(p[:avail], buf[in:in+avail])
	return int(avail), sys.EOK
}

// version returns the inode's current fill-validation version.
func (c *Cache) version(ino fs.Ino) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.versions[ino]
}

// tryInsert installs a filled page if no invalidation of the inode ran
// since v0 was read. Frame allocation failure evicts once and retries;
// if memory is still tight the page is simply not cached.
func (c *Cache) tryInsert(key pageKey, v0 uint64, data []byte, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.versions[key.ino] != v0 {
		return // an invalidation raced the fill; its bytes may be stale
	}
	if _, ok := c.pages.Load(key); ok {
		return // another fill won
	}
	for len(c.fifo) >= c.maxPages {
		if !c.evictOneLocked() {
			break
		}
	}
	frame, err := c.frames.AllocFrame()
	if err != nil {
		// Memory pressure: evict the oldest resident page and retry once;
		// on repeated failure serve uncached.
		if c.evictOneLocked() {
			frame, err = c.frames.AllocFrame()
		}
		if err != nil {
			return
		}
	}
	// Zero the tail so a mapped short page never leaks another file's
	// bytes, then install.
	for i := n; i < len(data); i++ {
		data[i] = 0
	}
	c.frames.WriteFrame(frame, 0, data)
	pg := &page{frame: frame, n: uint32(n)}
	c.pages.Store(key, pg)
	c.fifo = append(c.fifo, key)
	c.reclaimLocked()
}

// evictOneLocked removes the oldest resident, unmapped page, retiring
// its frame under a fresh epoch. Caller holds mu. Returns whether a
// page was evicted. The scan is bounded by the queue length at entry so
// a cache whose every page is pinned by a mapping terminates (and
// declines to evict).
func (c *Cache) evictOneLocked() bool {
	for scan := len(c.fifo); scan > 0 && len(c.fifo) > 0; scan-- {
		key := c.fifo[0]
		c.fifo = c.fifo[1:]
		v, ok := c.pages.Load(key)
		if !ok {
			continue // already invalidated
		}
		pg := v.(*page)
		if pg.maps.Load() > 0 {
			// Mapped pages are pinned by the alias; push to the back.
			c.fifo = append(c.fifo, key)
			continue
		}
		pg.dead.Store(true)
		c.pages.Delete(key)
		e := c.epoch.Add(1)
		c.retiredQ = append(c.retiredQ, retired{p: pg, epoch: e})
		obs.PCacheEvictions.Add(uint32(c.shard), 1)
		c.reclaimLocked()
		return true
	}
	return false
}

// InvalidateRange kills every cached page of ino overlapping
// [lo, hi) and bumps the inode version. Writers call it after the
// authoritative mutation applied (WriteAt with its affected range,
// Truncate with the EOF movement range).
func (c *Cache) InvalidateRange(ino fs.Ino, lo, hi uint64) {
	if hi <= lo {
		// A zero-length mutation still bumps the version: an in-flight
		// fill may have read a pre-mutation snapshot.
		c.bumpVersion(ino)
		return
	}
	c.invalidate(ino, lo/PageSize, (hi-1)/PageSize)
}

// InvalidateIno kills every cached page of ino (unlink, rename-replace).
func (c *Cache) InvalidateIno(ino fs.Ino) {
	c.invalidate(ino, 0, ^uint64(0))
}

func (c *Cache) bumpVersion(ino fs.Ino) {
	c.mu.Lock()
	c.versions[ino]++
	c.mu.Unlock()
}

// invalidate is the write-side protocol: version bump first (fills
// in flight validate against it), then kill pages, then advance the
// epoch and retire.
func (c *Cache) invalidate(ino fs.Ino, firstPage, lastPage uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.versions[ino]++
	var dead []*page
	c.pages.Range(func(k, v any) bool {
		key := k.(pageKey)
		if key.ino != ino || key.page < firstPage || key.page > lastPage {
			return true
		}
		pg := v.(*page)
		pg.dead.Store(true)
		c.pages.Delete(key)
		dead = append(dead, pg)
		return true
	})
	if len(dead) == 0 {
		return
	}
	// One epoch advance covers the whole batch: the map deletions above
	// happen-before it, so any reader pinning the new epoch misses.
	e := c.epoch.Add(1)
	for _, pg := range dead {
		c.retiredQ = append(c.retiredQ, retired{p: pg, epoch: e})
	}
	obs.PCacheInvalidations.Add(uint32(c.shard), uint64(len(dead)))
	c.reclaimLocked()
}

// reclaimLocked frees retired frames that reached quiescence: no pinned
// reader holds an epoch older than the retire epoch, and no vspace
// mapping aliases the frame. A reader pinned at exactly the retire
// epoch is safe to ignore: it observed the epoch advance, which
// happens-after the map deletion, so it cannot have found the dead
// page. Caller holds mu.
func (c *Cache) reclaimLocked() {
	if len(c.retiredQ) == 0 {
		return
	}
	min := c.minPinned()
	kept := c.retiredQ[:0]
	for _, r := range c.retiredQ {
		// min == 0 means no reader is pinned at all.
		quiesced := min == 0 || min >= r.epoch
		if quiesced && r.p.maps.Load() == 0 {
			c.frames.FreeFrame(r.p.frame)
			continue
		}
		kept = append(kept, r)
	}
	c.retiredQ = kept
}

// Reclaim runs one reclamation pass (invalidators run it inline; this
// export lets tests and the unmap path drive it).
func (c *Cache) Reclaim() {
	c.mu.Lock()
	c.reclaimLocked()
	c.mu.Unlock()
}

// Quiesce spins until every retired frame has been reclaimed — test
// support for the epoch protocol's liveness half.
func (c *Cache) Quiesce() {
	for {
		c.mu.Lock()
		n := len(c.retiredQ)
		c.reclaimLocked()
		c.mu.Unlock()
		if n == 0 {
			return
		}
		runtime.Gosched()
	}
}

// MapPage pins the resident page covering the page-aligned offset off
// for a vspace mapping, returning its frame and valid byte count. The
// maps count is taken under the epoch pin, so an invalidation that
// races the lookup either kills the page before the pin (miss) or sees
// maps > 0 and keeps the frame alive until UnmapFrame. ok is false on a
// cache miss or when the page died.
func (c *Cache) MapPage(ino fs.Ino, off uint64, hint int) (frame mem.PAddr, n uint32, ok bool) {
	if off%PageSize != 0 {
		return 0, 0, false
	}
	key := pageKey{ino: ino, page: off / PageSize}
	s := c.Pin(hint)
	defer c.Unpin(s)
	v, loaded := c.pages.Load(key)
	if !loaded {
		return 0, 0, false
	}
	pg := v.(*page)
	pg.maps.Add(1)
	if pg.dead.Load() {
		// The invalidation may already have passed its maps check; back
		// out rather than hand out a mapping of a dying frame.
		pg.maps.Add(-1)
		return 0, 0, false
	}
	c.mu.Lock()
	c.mapped[pg.frame] = pg
	c.mu.Unlock()
	obs.PCacheHits.Add(uint32(c.shard), 1)
	return pg.frame, pg.n, true
}

// UnmapFrame releases one vspace alias of frame (from PreadUnmap or
// process exit). When the page was invalidated while mapped, the drop
// to zero maps lets reclamation free the frame.
func (c *Cache) UnmapFrame(frame mem.PAddr) {
	c.mu.Lock()
	pg := c.mapped[frame]
	if pg != nil {
		if pg.maps.Add(-1) == 0 {
			delete(c.mapped, frame)
		}
	}
	c.reclaimLocked()
	c.mu.Unlock()
}

// Owns reports whether frame is a cache-owned frame with live mappings
// — the exit path uses it to route frames to UnmapFrame vs the
// allocator.
func (c *Cache) Owns(frame mem.PAddr) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mapped[frame] != nil
}

// Stats reports residency for tests and tools.
func (c *Cache) Stats() (resident, retiredN, mappedN int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pages.Range(func(any, any) bool { resident++; return true })
	return resident, len(c.retiredQ), len(c.mapped)
}
