package pcache

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

func TestObligationsPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 41})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}

func TestReadAtShapes(t *testing.T) {
	src := newMemFrames(0)
	c := New(src, 0, 0)
	contents := make([]byte, 2*PageSize+100)
	rand.New(rand.NewSource(1)).Read(contents)
	fill := constFill(contents)

	cases := []struct{ off, ln int }{
		{0, 10},                        // inside page 0
		{PageSize - 5, 10},             // straddles pages 0/1
		{PageSize, PageSize},           // exactly page 1
		{0, len(contents)},             // whole file
		{len(contents) - 3, 50},        // tail, short read
		{len(contents), 10},            // at EOF
		{len(contents) + PageSize, 10}, // beyond EOF
		{2 * PageSize, PageSize},       // last partial page
	}
	for _, tc := range cases {
		buf := make([]byte, tc.ln)
		n, e := c.ReadAt(7, uint64(tc.off), buf, fill, 0)
		if e != sys.EOK {
			t.Fatalf("ReadAt(off=%d,len=%d): %v", tc.off, tc.ln, e)
		}
		want := 0
		if tc.off < len(contents) {
			want = len(contents) - tc.off
			if want > tc.ln {
				want = tc.ln
			}
		}
		if n != want {
			t.Fatalf("ReadAt(off=%d,len=%d) = %d bytes, want %d", tc.off, tc.ln, n, want)
		}
		if n > 0 && !bytes.Equal(buf[:n], contents[tc.off:tc.off+n]) {
			t.Fatalf("ReadAt(off=%d,len=%d) bytes diverge", tc.off, tc.ln)
		}
	}
	// Everything above EOF cached as an empty (n=0) page; a repeat read
	// of cached pages must hit, not refill.
	resident, _, _ := c.Stats()
	if resident == 0 {
		t.Fatal("no pages resident after reads")
	}
}

// TestReaderPinnedAcrossInvalidation is the epoch edge case: a reader
// that pinned before an invalidation keeps the dead page's frame alive
// (and readable) until it unpins, even while new readers already see the
// new bytes.
func TestReaderPinnedAcrossInvalidation(t *testing.T) {
	src := newMemFrames(0)
	c := New(src, 0, 0)
	old := bytes.Repeat([]byte{0xAA}, PageSize)
	fresh := bytes.Repeat([]byte{0x55}, PageSize)

	if _, e := c.ReadAt(1, 0, make([]byte, 1), constFill(old), 0); e != sys.EOK {
		t.Fatalf("fill: %v", e)
	}
	var frame mem.PAddr
	if v, ok := c.pages.Load(pageKey{ino: 1, page: 0}); ok {
		frame = v.(*page).frame
	} else {
		t.Fatal("page not resident after fill")
	}

	s := c.Pin(0)
	c.InvalidateIno(1) // write completed; reclaim runs inline
	if src.liveCount() != 1 {
		t.Fatalf("frame freed under pinned reader: %d live", src.liveCount())
	}
	// The pinned reader's view of the frame is still the old snapshot.
	got := make([]byte, PageSize)
	src.ReadFrame(frame, 0, got)
	if !bytes.Equal(got, old) {
		t.Fatal("snapshot corrupted while pinned")
	}
	// A new reader misses (page deleted) and refills with fresh bytes.
	buf := make([]byte, PageSize)
	if n, e := c.ReadAt(1, 0, buf, constFill(fresh), 1); e != sys.EOK || n != PageSize {
		t.Fatalf("refill read: n=%d %v", n, e)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("post-invalidation read served stale bytes")
	}
	c.Unpin(s)
	c.Quiesce()
	if got, want := src.liveCount(), 1; got != want { // only the refilled page remains
		t.Fatalf("after unpin+quiesce: %d live frames, want %d", got, want)
	}
}

// TestEvictionUnderMemoryPressure starves the frame source and checks
// the cache evicts to make room, skips mapped pages, and degrades to
// serving uncached rather than failing.
func TestEvictionUnderMemoryPressure(t *testing.T) {
	const limit = 4
	src := newMemFrames(limit)
	c := New(src, 0, 64) // residency bound above the frame limit: pressure drives eviction
	contents := make([]byte, 32*PageSize)
	rand.New(rand.NewSource(2)).Read(contents)
	fill := constFill(contents)

	// Map one page so eviction must skip it.
	if _, e := c.ReadAt(1, 0, make([]byte, 1), fill, 0); e != sys.EOK {
		t.Fatalf("fill: %v", e)
	}
	frame, _, ok := c.MapPage(1, 0, 0)
	if !ok {
		t.Fatal("MapPage missed")
	}

	// Touch far more pages than there are frames: every read must still
	// return correct bytes.
	for i := 0; i < 32; i++ {
		off := uint64(i) * PageSize
		buf := make([]byte, PageSize)
		n, e := c.ReadAt(1, off, buf, fill, i)
		if e != sys.EOK || n != PageSize {
			t.Fatalf("read page %d under pressure: n=%d %v", i, n, e)
		}
		if !bytes.Equal(buf, contents[off:off+PageSize]) {
			t.Fatalf("page %d bytes diverge under pressure", i)
		}
		if src.liveCount() > limit {
			t.Fatalf("cache exceeded frame limit: %d > %d", src.liveCount(), limit)
		}
	}
	// The mapped page survived every eviction pass.
	if !c.Owns(frame) {
		t.Fatal("mapped page was evicted")
	}
	got := make([]byte, PageSize)
	src.ReadFrame(frame, 0, got)
	if !bytes.Equal(got, contents[:PageSize]) {
		t.Fatal("mapped page corrupted by eviction churn")
	}
	c.UnmapFrame(frame)
	c.InvalidateIno(1)
	c.Quiesce()
	if src.liveCount() != 0 {
		t.Fatalf("%d frames leaked", src.liveCount())
	}
}

// TestMappedReadStress races epoch-pinned reads and page mappings
// against concurrent writers (invalidations modeling WriteAt/Truncate)
// — run under -race this exercises the pin/invalidate/reclaim fences.
func TestMappedReadStress(t *testing.T) {
	src := newMemFrames(0)
	c := New(src, 0, 32)

	// Mutable backing store: writers flip the generation byte, readers
	// must always observe a page that is uniformly one generation.
	var mu sync.Mutex
	backing := make([]byte, 8*PageSize)
	fill := func(_ fs.Ino, off uint64, p []byte) (int, sys.Errno) {
		mu.Lock()
		defer mu.Unlock()
		if off >= uint64(len(backing)) {
			return 0, sys.EOK
		}
		return copy(p, backing[off:]), sys.EOK
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 16)

	// Writers: bump a page's generation, then invalidate it — the
	// cache-order a real WriteAt follows (mutation applies, then the
	// invalidator hook runs before the write returns).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for gen := byte(1); ; gen++ {
				select {
				case <-stop:
					return
				default:
				}
				pg := uint64(r.Intn(8))
				mu.Lock()
				for i := uint64(0); i < PageSize; i++ {
					backing[pg*PageSize+i] = gen
				}
				mu.Unlock()
				if r.Intn(4) == 0 {
					c.InvalidateIno(1) // truncate-shaped: kill everything
				} else {
					c.InvalidateRange(1, pg*PageSize, (pg+1)*PageSize)
				}
			}
		}(w)
	}
	// Readers: copy out pages and check uniformity (page-wise atomicity:
	// a page is never a torn mix of generations).
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(200 + rd)))
			buf := make([]byte, PageSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg := uint64(r.Intn(8))
				n, e := c.ReadAt(1, pg*PageSize, buf, fill, rd)
				if e != sys.EOK || n != PageSize {
					fail <- "read failed under stress"
					return
				}
				for i := 1; i < n; i++ {
					if buf[i] != buf[0] {
						fail <- "torn page observed"
						return
					}
				}
			}
		}(rd)
	}
	// Mappers: pin pages into "vspaces", verify the snapshot stays
	// uniform even after invalidation, then unpin.
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(300 + m)))
			buf := make([]byte, PageSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg := uint64(r.Intn(8))
				frame, n, ok := c.MapPage(1, pg*PageSize, m)
				if !ok {
					// populate and retry next round
					_, _ = c.ReadAt(1, pg*PageSize, buf[:1], fill, m)
					continue
				}
				src.ReadFrame(frame, 0, buf[:n])
				for i := 1; i < int(n); i++ {
					if buf[i] != buf[0] {
						fail <- "torn mapped snapshot"
						break
					}
				}
				c.UnmapFrame(frame)
			}
		}(m)
	}

	for i := 0; i < 2000; i++ {
		select {
		case msg := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(msg)
		default:
		}
		c.Reclaim()
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	c.InvalidateIno(1)
	c.Quiesce()
	if src.liveCount() != 0 {
		t.Fatalf("%d frames leaked after stress", src.liveCount())
	}
}

// TestBeyondEOFPageIsCachedEmpty: a read past EOF caches an n=0 page
// (negative caching) and MapPage hands it out with zero valid bytes.
func TestBeyondEOFPageIsCachedEmpty(t *testing.T) {
	src := newMemFrames(0)
	c := New(src, 0, 0)
	contents := make([]byte, 100)
	fill := constFill(contents)

	buf := make([]byte, 10)
	if n, e := c.ReadAt(1, 4*PageSize, buf, fill, 0); e != sys.EOK || n != 0 {
		t.Fatalf("beyond-EOF read: n=%d %v", n, e)
	}
	frame, n, ok := c.MapPage(1, 4*PageSize, 0)
	if !ok {
		t.Fatal("beyond-EOF page not cached")
	}
	if n != 0 {
		t.Fatalf("beyond-EOF page valid bytes = %d, want 0", n)
	}
	c.UnmapFrame(frame)
	c.InvalidateIno(1)
	c.Quiesce()
	if src.liveCount() != 0 {
		t.Fatalf("%d frames leaked", src.liveCount())
	}
}
