package mm

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the memory-management verification
// conditions: buddy structural invariants under randomized workloads,
// conservation (alloc/free round trips restore full coverage), NCache
// zeroing and ownership, and VSpace disjointness.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "mm", Name: "buddy-invariant-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				b, err := NewBuddy(pm, 0, 1024)
				if err != nil {
					return err
				}
				var live []mem.PAddr
				for i := 0; i < 3000; i++ {
					if r.Intn(2) == 0 || len(live) == 0 {
						a, err := b.AllocOrder(r.Intn(4))
						if err == nil {
							live = append(live, a)
						}
					} else {
						j := r.Intn(len(live))
						if err := b.Free(live[j]); err != nil {
							return err
						}
						live = append(live[:j], live[j+1:]...)
					}
					if i%100 == 0 {
						if err := b.CheckInvariant(); err != nil {
							return err
						}
					}
				}
				return b.CheckInvariant()
			}},
		verifier.Obligation{Module: "mm", Name: "buddy-conservation", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				b, err := NewBuddy(pm, 0x10000, 512)
				if err != nil {
					return err
				}
				var live []mem.PAddr
				for i := 0; i < 200; i++ {
					if a, err := b.AllocOrder(r.Intn(3)); err == nil {
						live = append(live, a)
					}
				}
				for _, a := range live {
					if err := b.Free(a); err != nil {
						return err
					}
				}
				st := b.Stats()
				if st.AllocatedFrames != 0 {
					return fmt.Errorf("leaked %d frames", st.AllocatedFrames)
				}
				// Full merge: the initial carving of 512 frames is one
				// order-9 block... 512 = 2^9 but MaxOrder is 15 so one
				// block of order 9 exists iff start alignment allows;
				// start index 0 is aligned, so expect exactly 1 block.
				if st.FreeBlocks != 1 {
					return fmt.Errorf("coalescing incomplete: %d free blocks, want 1", st.FreeBlocks)
				}
				return b.CheckInvariant()
			}},
		verifier.Obligation{Module: "mm", Name: "buddy-double-free-rejected", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				pm := mem.New(16 << 20)
				b, err := NewBuddy(pm, 0, 64)
				if err != nil {
					return err
				}
				a, err := b.AllocOrder(0)
				if err != nil {
					return err
				}
				if err := b.Free(a); err != nil {
					return err
				}
				if err := b.Free(a); err == nil {
					return fmt.Errorf("double free accepted")
				}
				if err := b.Free(0x123000); err == nil {
					return fmt.Errorf("foreign free accepted")
				}
				return nil
			}},
		verifier.Obligation{Module: "mm", Name: "ncache-zeroes-frames", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				pm := mem.New(16 << 20)
				b, err := NewBuddy(pm, 0, 256)
				if err != nil {
					return err
				}
				c := NewNCache(pm, b, 16)
				f, err := c.AllocFrame()
				if err != nil {
					return err
				}
				// Dirty it, free it, re-alloc until we see it again.
				if err := pm.Write64(f, 0xdead); err != nil {
					return err
				}
				if err := c.FreeFrame(f); err != nil {
					return err
				}
				for i := 0; i < 64; i++ {
					g, err := c.AllocFrame()
					if err != nil {
						return err
					}
					v, err := pm.Read64(g)
					if err != nil {
						return err
					}
					if v != 0 {
						return fmt.Errorf("frame %v handed out dirty (%#x)", g, v)
					}
					if g == f {
						return nil
					}
				}
				return nil // reuse not observed; zeroing held everywhere we looked
			}},
		verifier.Obligation{Module: "mm", Name: "vspace-disjoint-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				v, err := NewVSpace(0x1000_0000, 0x2000_0000)
				if err != nil {
					return err
				}
				var bases []mmu.VAddr
				for i := 0; i < 1000; i++ {
					if r.Intn(3) != 0 || len(bases) == 0 {
						length := uint64(1+r.Intn(8)) * mmu.L1PageSize
						if base, err := v.Reserve(length, "t"); err == nil {
							bases = append(bases, base)
						}
					} else {
						j := r.Intn(len(bases))
						if _, err := v.Release(bases[j]); err != nil {
							return err
						}
						bases = append(bases[:j], bases[j+1:]...)
					}
					if err := v.CheckInvariant(); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "mm", Name: "vspace-lookup-consistent", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				v, err := NewVSpace(0, 0x100_0000)
				if err != nil {
					return err
				}
				if err := v.ReserveAt(0x10000, 0x4000, "a"); err != nil {
					return err
				}
				if err := v.ReserveAt(0x20000, 0x1000, "b"); err != nil {
					return err
				}
				for _, tc := range []struct {
					va  mmu.VAddr
					tag string
					ok  bool
				}{
					{0x10000, "a", true}, {0x13fff, "a", true}, {0x14000, "", false},
					{0x20000, "b", true}, {0x20fff, "b", true}, {0x21000, "", false},
					{0x0, "", false},
				} {
					got, ok := v.Lookup(tc.va)
					if ok != tc.ok || (ok && got.Tag != tc.tag) {
						return fmt.Errorf("Lookup(%v) = (%+v, %t)", tc.va, got, ok)
					}
				}
				return nil
			}},
	)
}
