package mm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/verifier"
)

func newBuddy(t *testing.T, frames uint64) *Buddy {
	t.Helper()
	pm := mem.New(mem.PAddr(frames+16) * mem.PageSize)
	b, err := NewBuddy(pm, 0, frames)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuddyAllocFreeSingle(t *testing.T) {
	b := newBuddy(t, 64)
	a, err := b.AllocOrder(0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsPageAligned() {
		t.Fatal("unaligned frame")
	}
	if st := b.Stats(); st.AllocatedFrames != 1 {
		t.Fatalf("allocated = %d", st.AllocatedFrames)
	}
	if err := b.Free(a); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.AllocatedFrames != 0 || st.FreeBlocks != 1 {
		t.Fatalf("stats after free = %+v", st)
	}
}

func TestBuddyOrderAlignment(t *testing.T) {
	b := newBuddy(t, 256)
	for order := 0; order <= 5; order++ {
		a, err := b.AllocOrder(order)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(a)%(uint64(mem.PageSize)<<order) != 0 {
			t.Errorf("order %d block at %v not size-aligned", order, a)
		}
	}
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddySplitsAndMerges(t *testing.T) {
	b := newBuddy(t, 16) // one order-4 block
	var frames []mem.PAddr
	for i := 0; i < 16; i++ {
		a, err := b.AllocOrder(0)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, a)
	}
	if _, err := b.AllocOrder(0); !errors.Is(err, ErrNoMemory) {
		t.Fatal("17th alloc from 16 frames succeeded")
	}
	for _, a := range frames {
		if err := b.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.FreeBlocks != 1 {
		t.Fatalf("frames did not remerge: %d blocks", st.FreeBlocks)
	}
}

func TestBuddyNonPowerOfTwoRange(t *testing.T) {
	b := newBuddy(t, 100) // 64 + 32 + 4
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.TotalFrames != 100 {
		t.Fatalf("total = %d", st.TotalFrames)
	}
	// All 100 frames allocatable.
	n := 0
	for {
		if _, err := b.AllocOrder(0); err != nil {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("allocated %d frames from 100-frame range", n)
	}
}

func TestBuddyBadOrder(t *testing.T) {
	b := newBuddy(t, 64)
	if _, err := b.AllocOrder(-1); !errors.Is(err, ErrBadOrder) {
		t.Error("negative order accepted")
	}
	if _, err := b.AllocOrder(MaxOrder + 1); !errors.Is(err, ErrBadOrder) {
		t.Error("oversized order accepted")
	}
}

// Property: random alloc/free sequences preserve the invariant and
// never hand out overlapping blocks.
func TestQuickBuddyNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pm := mem.New(64 << 20)
		b, err := NewBuddy(pm, 0x8000, 256)
		if err != nil {
			return false
		}
		type block struct {
			base  mem.PAddr
			order int
		}
		var live []block
		for i := 0; i < 300; i++ {
			if r.Intn(2) == 0 || len(live) == 0 {
				o := r.Intn(3)
				if a, err := b.AllocOrder(o); err == nil {
					live = append(live, block{a, o})
				}
			} else {
				j := r.Intn(len(live))
				if b.Free(live[j].base) != nil {
					return false
				}
				live = append(live[:j], live[j+1:]...)
			}
		}
		// Overlap check across live blocks.
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				iEnd := live[i].base + mem.PAddr(mem.PageSize<<live[i].order)
				jEnd := live[j].base + mem.PAddr(mem.PageSize<<live[j].order)
				if live[i].base < jEnd && live[j].base < iEnd {
					return false
				}
			}
		}
		return b.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNCacheBatching(t *testing.T) {
	pm := mem.New(16 << 20)
	b, err := NewBuddy(pm, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNCache(pm, b, 16)
	var frames []mem.PAddr
	for i := 0; i < 8; i++ {
		f, err := c.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	refills, _ := c.RefillSpillCounts()
	if refills != 1 {
		t.Fatalf("refills = %d, want 1 (batched)", refills)
	}
	for _, f := range frames {
		if err := c.FreeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d", c.Outstanding())
	}
	if err := c.FreeFrame(frames[0]); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestNCacheSpillsToBuddy(t *testing.T) {
	pm := mem.New(16 << 20)
	b, err := NewBuddy(pm, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	c := NewNCache(pm, b, 8)
	var frames []mem.PAddr
	for i := 0; i < 40; i++ {
		f, err := c.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		if err := c.FreeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	_, spills := c.RefillSpillCounts()
	if spills == 0 {
		t.Fatal("no spills despite 40 frees into cap-8 cache")
	}
	if c.CacheLen() > 8 {
		t.Fatalf("cache overfull: %d", c.CacheLen())
	}
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestVSpaceReserveRelease(t *testing.T) {
	v, err := NewVSpace(0x1000_0000, 0x1100_0000)
	if err != nil {
		t.Fatal(err)
	}
	a, err := v.Reserve(0x10000, "heap")
	if err != nil {
		t.Fatal(err)
	}
	if a != 0x1000_0000 {
		t.Fatalf("first fit = %v", a)
	}
	b, err := v.Reserve(0x4000, "stack")
	if err != nil {
		t.Fatal(err)
	}
	if b != 0x1001_0000 {
		t.Fatalf("second fit = %v", b)
	}
	if _, err := v.Release(a); err != nil {
		t.Fatal(err)
	}
	// The freed hole is reused first-fit.
	cAddr, err := v.Reserve(0x8000, "mmap")
	if err != nil {
		t.Fatal(err)
	}
	if cAddr != a {
		t.Fatalf("hole not reused: %v", cAddr)
	}
}

func TestVSpaceExplicitOverlap(t *testing.T) {
	v, err := NewVSpace(0, 0x100_0000)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.ReserveAt(0x10000, 0x10000, "a"); err != nil {
		t.Fatal(err)
	}
	if err := v.ReserveAt(0x18000, 0x10000, "b"); !errors.Is(err, ErrVSpaceOverlap) {
		t.Fatalf("overlap accepted: %v", err)
	}
	if err := v.ReserveAt(0x8000, 0x10000, "c"); !errors.Is(err, ErrVSpaceOverlap) {
		t.Fatalf("overlap (tail) accepted: %v", err)
	}
	if err := v.ReserveAt(0x20000, 0x10000, "d"); err != nil {
		t.Fatalf("adjacent rejected: %v", err)
	}
}

func TestVSpaceExhaustion(t *testing.T) {
	v, err := NewVSpace(0, 4*mmu.L1PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Reserve(5*mmu.L1PageSize, "big"); !errors.Is(err, ErrVSpaceFull) {
		t.Fatalf("oversized reserve: %v", err)
	}
	if _, err := v.Reserve(4*mmu.L1PageSize, "exact"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Reserve(mmu.L1PageSize, "more"); !errors.Is(err, ErrVSpaceFull) {
		t.Fatalf("reserve in full space: %v", err)
	}
}

func TestVSpaceBadArgs(t *testing.T) {
	if _, err := NewVSpace(0x123, 0x10000); err == nil {
		t.Error("unaligned lo accepted")
	}
	if _, err := NewVSpace(0x2000, 0x1000); err == nil {
		t.Error("inverted range accepted")
	}
	v, _ := NewVSpace(0, 0x100000)
	if _, err := v.Reserve(0, "zero"); err == nil {
		t.Error("zero-length reserve accepted")
	}
	if _, err := v.Release(0x5000); err == nil {
		t.Error("release of nothing accepted")
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 99})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
