package mm

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of memory-management VCs:
// buddy worst-case fragmentation recovery, order-alignment guarantees,
// NCache ownership discipline under churn, and VSpace first-fit
// determinism.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "mm", Name: "buddy-fragmentation-recovery", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Worst case: allocate all singles, free every other one
				// (maximal fragmentation), free the rest — the allocator
				// must recoalesce to a single block.
				pm := mem.New(64 << 20)
				b, err := NewBuddy(pm, 0, 256)
				if err != nil {
					return err
				}
				var all []mem.PAddr
				for {
					a, err := b.AllocOrder(0)
					if err != nil {
						break
					}
					all = append(all, a)
				}
				if len(all) != 256 {
					return fmt.Errorf("allocated %d of 256", len(all))
				}
				for i := 0; i < len(all); i += 2 {
					if err := b.Free(all[i]); err != nil {
						return err
					}
				}
				// Maximal fragmentation: no order-1 block can exist.
				if _, err := b.AllocOrder(1); err == nil {
					return fmt.Errorf("order-1 alloc succeeded under maximal fragmentation")
				}
				for i := 1; i < len(all); i += 2 {
					if err := b.Free(all[i]); err != nil {
						return err
					}
				}
				st := b.Stats()
				if st.FreeBlocks != 1 || st.AllocatedFrames != 0 {
					return fmt.Errorf("recovery incomplete: %+v", st)
				}
				return b.CheckInvariant()
			}},
		verifier.Obligation{Module: "mm", Name: "buddy-order-alignment", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				pm := mem.New(64 << 20)
				start := mem.PAddr(uint64(r.Intn(16)) * mem.PageSize * 1024)
				b, err := NewBuddy(pm, start, 1024)
				if err != nil {
					return err
				}
				for i := 0; i < 300; i++ {
					o := r.Intn(6)
					a, err := b.AllocOrder(o)
					if err != nil {
						continue
					}
					if uint64(a-start)%(uint64(mem.PageSize)<<o) != 0 {
						return fmt.Errorf("order-%d block at %v not size-aligned from base %v", o, a, start)
					}
				}
				return b.CheckInvariant()
			}},
		verifier.Obligation{Module: "mm", Name: "ncache-ownership-discipline", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				pm := mem.New(32 << 20)
				b, err := NewBuddy(pm, 0, 1024)
				if err != nil {
					return err
				}
				c := NewNCache(pm, b, 32)
				handed := map[mem.PAddr]bool{}
				var live []mem.PAddr
				for i := 0; i < 2000; i++ {
					if r.Intn(2) == 0 {
						f, err := c.AllocFrame()
						if err != nil {
							continue
						}
						if handed[f] {
							return fmt.Errorf("frame %v handed out twice", f)
						}
						handed[f] = true
						live = append(live, f)
					} else if len(live) > 0 {
						j := r.Intn(len(live))
						if err := c.FreeFrame(live[j]); err != nil {
							return err
						}
						delete(handed, live[j])
						live = append(live[:j], live[j+1:]...)
					}
				}
				if c.Outstanding() != len(live) {
					return fmt.Errorf("outstanding %d != live %d", c.Outstanding(), len(live))
				}
				for _, f := range live {
					if err := c.FreeFrame(f); err != nil {
						return err
					}
				}
				return b.CheckInvariant()
			}},
		verifier.Obligation{Module: "mm", Name: "vspace-first-fit-deterministic", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Two VSpaces fed the same reserve/release sequence give
				// identical placements (the NR determinism requirement
				// for replicated kernels).
				v1, err := NewVSpace(0x1000_0000, 0x3000_0000)
				if err != nil {
					return err
				}
				v2, err := NewVSpace(0x1000_0000, 0x3000_0000)
				if err != nil {
					return err
				}
				var bases []mmu.VAddr
				for i := 0; i < 500; i++ {
					if r.Intn(3) > 0 || len(bases) == 0 {
						length := uint64(1+r.Intn(16)) * mmu.L1PageSize
						a1, e1 := v1.Reserve(length, "x")
						a2, e2 := v2.Reserve(length, "x")
						if (e1 == nil) != (e2 == nil) || a1 != a2 {
							return fmt.Errorf("placement diverged at op %d: %v vs %v", i, a1, a2)
						}
						if e1 == nil {
							bases = append(bases, a1)
						}
					} else {
						j := r.Intn(len(bases))
						if _, err := v1.Release(bases[j]); err != nil {
							return err
						}
						if _, err := v2.Release(bases[j]); err != nil {
							return err
						}
						bases = append(bases[:j], bases[j+1:]...)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "mm", Name: "vspace-reuses-released-holes", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				v, err := NewVSpace(0, 64*mmu.L1PageSize)
				if err != nil {
					return err
				}
				// Fill completely, release a random region, and check the
				// next equal-size reservation lands exactly in the hole.
				var regions []mmu.VAddr
				for {
					a, err := v.Reserve(2*mmu.L1PageSize, "fill")
					if err != nil {
						break
					}
					regions = append(regions, a)
				}
				if len(regions) != 32 {
					return fmt.Errorf("filled %d regions, want 32", len(regions))
				}
				j := r.Intn(len(regions))
				if _, err := v.Release(regions[j]); err != nil {
					return err
				}
				got, err := v.Reserve(2*mmu.L1PageSize, "reuse")
				if err != nil {
					return err
				}
				if got != regions[j] {
					return fmt.Errorf("hole at %v not reused (got %v)", regions[j], got)
				}
				return v.CheckInvariant()
			}},
	)
}
