package mm

import (
	"errors"
	"fmt"
	"sort"

	"github.com/verified-os/vnros/internal/hw/mmu"
)

// VSpace manages a process's virtual address-space layout: which ranges
// are reserved (and for what), independent of the page-table bits. This
// is the "address space management logic" the paper notes prior verified
// kernels push to user space unverified (§2); here it is a first-class
// component with its own invariants.
type VSpace struct {
	lo, hi  mmu.VAddr // managed range [lo, hi)
	regions []Region  // sorted by Base, non-overlapping
}

// Region is one reserved virtual range.
type Region struct {
	Base mmu.VAddr
	Len  uint64
	Tag  string // e.g. "heap", "stack", "mmap", "text"
}

// End returns one past the region's last byte.
func (r Region) End() mmu.VAddr { return r.Base + mmu.VAddr(r.Len) }

// Errors returned by VSpace.
var (
	// ErrVSpaceFull reports no free range of the requested size.
	ErrVSpaceFull = errors.New("mm: no free virtual range")
	// ErrVSpaceOverlap reports an explicit reservation overlapping an
	// existing region.
	ErrVSpaceOverlap = errors.New("mm: virtual range overlaps reservation")
	// ErrVSpaceBadRange reports an unmanaged or malformed range.
	ErrVSpaceBadRange = errors.New("mm: bad virtual range")
)

// NewVSpace manages [lo, hi). Both bounds must be page aligned and
// canonical.
func NewVSpace(lo, hi mmu.VAddr) (*VSpace, error) {
	if uint64(lo)%mmu.L1PageSize != 0 || uint64(hi)%mmu.L1PageSize != 0 || lo >= hi {
		return nil, fmt.Errorf("%w: [%v, %v)", ErrVSpaceBadRange, lo, hi)
	}
	if !lo.IsCanonical() || !(hi - 1).IsCanonical() {
		return nil, fmt.Errorf("%w: non-canonical bounds", ErrVSpaceBadRange)
	}
	return &VSpace{lo: lo, hi: hi}, nil
}

// insertAt returns the index where a region with the given base would
// be inserted.
func (v *VSpace) insertAt(base mmu.VAddr) int {
	return sort.Search(len(v.regions), func(i int) bool { return v.regions[i].Base >= base })
}

// ReserveAt reserves the explicit range [base, base+length).
func (v *VSpace) ReserveAt(base mmu.VAddr, length uint64, tag string) error {
	if length == 0 || uint64(base)%mmu.L1PageSize != 0 || length%mmu.L1PageSize != 0 {
		return fmt.Errorf("%w: base %v len %#x", ErrVSpaceBadRange, base, length)
	}
	if base < v.lo || base+mmu.VAddr(length) > v.hi {
		return fmt.Errorf("%w: outside managed range", ErrVSpaceBadRange)
	}
	i := v.insertAt(base)
	if i > 0 && v.regions[i-1].End() > base {
		return fmt.Errorf("%w: with %q at %v", ErrVSpaceOverlap, v.regions[i-1].Tag, v.regions[i-1].Base)
	}
	if i < len(v.regions) && v.regions[i].Base < base+mmu.VAddr(length) {
		return fmt.Errorf("%w: with %q at %v", ErrVSpaceOverlap, v.regions[i].Tag, v.regions[i].Base)
	}
	v.regions = append(v.regions, Region{})
	copy(v.regions[i+1:], v.regions[i:])
	v.regions[i] = Region{Base: base, Len: length, Tag: tag}
	return nil
}

// Reserve finds and reserves a free range of the given length (first
// fit), returning its base.
func (v *VSpace) Reserve(length uint64, tag string) (mmu.VAddr, error) {
	if length == 0 || length%mmu.L1PageSize != 0 {
		return 0, fmt.Errorf("%w: len %#x", ErrVSpaceBadRange, length)
	}
	prev := v.lo
	for _, r := range v.regions {
		if uint64(r.Base-prev) >= length {
			if err := v.ReserveAt(prev, length, tag); err != nil {
				return 0, err
			}
			return prev, nil
		}
		prev = r.End()
	}
	if uint64(v.hi-prev) >= length {
		if err := v.ReserveAt(prev, length, tag); err != nil {
			return 0, err
		}
		return prev, nil
	}
	return 0, fmt.Errorf("%w: %#x bytes", ErrVSpaceFull, length)
}

// Release removes the reservation whose base is base.
func (v *VSpace) Release(base mmu.VAddr) (Region, error) {
	i := v.insertAt(base)
	if i >= len(v.regions) || v.regions[i].Base != base {
		return Region{}, fmt.Errorf("%w: no reservation at %v", ErrVSpaceBadRange, base)
	}
	r := v.regions[i]
	v.regions = append(v.regions[:i], v.regions[i+1:]...)
	return r, nil
}

// Lookup returns the region containing va.
func (v *VSpace) Lookup(va mmu.VAddr) (Region, bool) {
	i := v.insertAt(va)
	if i < len(v.regions) && v.regions[i].Base == va {
		return v.regions[i], true
	}
	if i > 0 && v.regions[i-1].End() > va {
		return v.regions[i-1], true
	}
	return Region{}, false
}

// Regions returns a copy of the reservation list.
func (v *VSpace) Regions() []Region {
	out := make([]Region, len(v.regions))
	copy(out, v.regions)
	return out
}

// CheckInvariant validates ordering, alignment, bounds and disjointness.
func (v *VSpace) CheckInvariant() error {
	prev := v.lo
	for i, r := range v.regions {
		if r.Len == 0 || uint64(r.Base)%mmu.L1PageSize != 0 || r.Len%mmu.L1PageSize != 0 {
			return fmt.Errorf("mm: region %d malformed: %+v", i, r)
		}
		if r.Base < prev {
			return fmt.Errorf("mm: region %d overlaps predecessor", i)
		}
		if r.End() > v.hi {
			return fmt.Errorf("mm: region %d exceeds managed range", i)
		}
		prev = r.End()
	}
	return nil
}
