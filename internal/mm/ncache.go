package mm

import (
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
)

// NCache is the NrOS-style per-node frame cache: a small stack of
// single frames refilled from (and spilled to) the buddy allocator in
// batches. It implements pt.FrameSource (zeroed single frames) and is
// what each kernel replica hands to its page tables and slab-style
// consumers. Like Buddy, it is sequential; NR provides the concurrency.
type NCache struct {
	buddy *Buddy
	m     *mem.PhysMem
	cap   int
	cache []mem.PAddr

	// grabbed tracks frames handed out, so FreeFrame can reject foreign
	// addresses (a cheap memory-safety obligation).
	grabbed map[mem.PAddr]bool

	refills, spills uint64
}

// DefaultNCacheCap is the default cache capacity (matching NrOS's
// per-node 4 KiB caches order of magnitude, scaled down).
const DefaultNCacheCap = 64

// NewNCache wraps a buddy allocator.
func NewNCache(m *mem.PhysMem, buddy *Buddy, capacity int) *NCache {
	if capacity <= 0 {
		capacity = DefaultNCacheCap
	}
	return &NCache{buddy: buddy, m: m, cap: capacity, grabbed: make(map[mem.PAddr]bool)}
}

// AllocFrame implements pt.FrameSource: returns a zeroed 4 KiB frame.
func (c *NCache) AllocFrame() (mem.PAddr, error) {
	if len(c.cache) == 0 {
		// Refill half the capacity in one buddy pass.
		c.refills++
		for i := 0; i < c.cap/2; i++ {
			f, err := c.buddy.AllocOrder(0)
			if err != nil {
				if i == 0 {
					return 0, err
				}
				break
			}
			c.cache = append(c.cache, f)
		}
	}
	f := c.cache[len(c.cache)-1]
	c.cache = c.cache[:len(c.cache)-1]
	if err := c.m.ZeroFrame(f); err != nil {
		return 0, err
	}
	c.grabbed[f] = true
	return f, nil
}

// FreeFrame implements pt.FrameSource.
func (c *NCache) FreeFrame(f mem.PAddr) error {
	if !c.grabbed[f] {
		return fmt.Errorf("%w: frame %v not allocated from this cache", ErrBadFree, f)
	}
	delete(c.grabbed, f)
	if len(c.cache) >= c.cap {
		// Spill the cache's older half back to the buddy. The spill
		// list must be copied out before compacting: both slices share
		// the backing array, and the in-place copy would overwrite the
		// spill entries with the kept ones (freeing frames that are
		// still in the cache — a double-handout bug the
		// mm:ncache-ownership-discipline VC catches).
		c.spills++
		spill := append([]mem.PAddr(nil), c.cache[:c.cap/2]...)
		c.cache = append(c.cache[:0], c.cache[c.cap/2:]...)
		for _, s := range spill {
			if err := c.buddy.Free(s); err != nil {
				return err
			}
		}
	}
	c.cache = append(c.cache, f)
	return nil
}

// Outstanding returns the number of frames handed out and not returned.
func (c *NCache) Outstanding() int { return len(c.grabbed) }

// CacheLen returns the number of frames parked in the cache.
func (c *NCache) CacheLen() int { return len(c.cache) }

// RefillSpillCounts reports refill/spill batch counts (for tests).
func (c *NCache) RefillSpillCounts() (refills, spills uint64) { return c.refills, c.spills }
