// Package mm implements physical and virtual memory management: a buddy
// frame allocator with per-node caches (the NrOS NCache design) and a
// virtual address-space region manager. These are the "memory
// management (physical memory, page tables)" components from the
// paper's §1 list; page tables themselves live in internal/pt and pull
// their table frames from this package through pt.FrameSource.
package mm

import (
	"errors"
	"fmt"

	"github.com/verified-os/vnros/internal/hw/mem"
)

// MaxOrder is the largest buddy block: 2^MaxOrder frames (128 MiB with
// 4 KiB frames at order 15).
const MaxOrder = 15

// Errors returned by the allocators.
var (
	// ErrNoMemory reports allocation failure.
	ErrNoMemory = errors.New("mm: out of physical memory")
	// ErrBadFree reports freeing a frame that is not allocated or not
	// owned by this allocator.
	ErrBadFree = errors.New("mm: bad free")
	// ErrBadOrder reports an order outside [0, MaxOrder].
	ErrBadOrder = errors.New("mm: bad order")
)

// Buddy is a binary-buddy allocator over the frame range
// [start, start+frames*PageSize). It is not safe for concurrent use;
// the kernel replicates or shards it via NR, and per-core NCaches batch
// requests in front of it.
type Buddy struct {
	m     *mem.PhysMem
	start mem.PAddr
	nf    uint64 // total frames

	// free[o] holds the frame indices (relative to start) of free
	// blocks of order o.
	free [MaxOrder + 1][]uint64
	// state tracks each block start index -> allocated order+1 (0 =
	// not an allocated block start). Used to validate frees and to
	// locate buddies.
	alloc map[uint64]uint8
	// freeSet mirrors membership of free lists for O(1) buddy lookup:
	// index -> order+1.
	freeSet map[uint64]uint8

	allocated uint64 // frames currently allocated
}

// NewBuddy creates a buddy allocator over frames frames starting at the
// page-aligned address start. The range is carved greedily into maximal
// aligned blocks.
func NewBuddy(m *mem.PhysMem, start mem.PAddr, frames uint64) (*Buddy, error) {
	if !start.IsPageAligned() {
		return nil, fmt.Errorf("mm: start %v not page aligned", start)
	}
	b := &Buddy{
		m: m, start: start, nf: frames,
		alloc:   make(map[uint64]uint8),
		freeSet: make(map[uint64]uint8),
	}
	idx := uint64(0)
	for idx < frames {
		o := MaxOrder
		for o > 0 && (idx%(1<<o) != 0 || idx+(1<<o) > frames) {
			o--
		}
		b.pushFree(idx, o)
		idx += 1 << o
	}
	return b, nil
}

func (b *Buddy) pushFree(idx uint64, order int) {
	b.free[order] = append(b.free[order], idx)
	b.freeSet[idx] = uint8(order) + 1
}

func (b *Buddy) popFree(order int) (uint64, bool) {
	l := b.free[order]
	if len(l) == 0 {
		return 0, false
	}
	idx := l[len(l)-1]
	b.free[order] = l[:len(l)-1]
	delete(b.freeSet, idx)
	return idx, true
}

// removeFree removes a specific block from its free list (buddy merge).
func (b *Buddy) removeFree(idx uint64, order int) bool {
	if got, ok := b.freeSet[idx]; !ok || int(got)-1 != order {
		return false
	}
	l := b.free[order]
	for i := range l {
		if l[i] == idx {
			l[i] = l[len(l)-1]
			b.free[order] = l[:len(l)-1]
			delete(b.freeSet, idx)
			return true
		}
	}
	return false
}

// AllocOrder allocates a block of 2^order contiguous frames and returns
// its base address. The block is not zeroed (callers that hand frames
// to the page table must zero them; NCache does).
func (b *Buddy) AllocOrder(order int) (mem.PAddr, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("%w: %d", ErrBadOrder, order)
	}
	return b.allocFrom(order)
}

// allocFrom finds the smallest free order >= order, splits down, and
// returns the base.
func (b *Buddy) allocFrom(order int) (mem.PAddr, error) {
	src := -1
	for o := order; o <= MaxOrder; o++ {
		if len(b.free[o]) > 0 {
			src = o
			break
		}
	}
	if src < 0 {
		return 0, fmt.Errorf("%w: order %d", ErrNoMemory, order)
	}
	idx, _ := b.popFree(src)
	// Split down, returning the high halves to the free lists.
	for o := src; o > order; o-- {
		half := idx + (1 << (o - 1))
		b.pushFree(half, o-1)
	}
	b.alloc[idx] = uint8(order) + 1
	b.allocated += 1 << order
	return b.start + mem.PAddr(idx)*mem.PageSize, nil
}

// Free releases a block previously returned by AllocOrder, merging
// buddies greedily.
func (b *Buddy) Free(addr mem.PAddr) error {
	if addr < b.start || !addr.IsPageAligned() {
		return fmt.Errorf("%w: %v", ErrBadFree, addr)
	}
	idx := uint64(addr-b.start) / mem.PageSize
	rec, ok := b.alloc[idx]
	if !ok {
		return fmt.Errorf("%w: %v not an allocated block", ErrBadFree, addr)
	}
	order := int(rec) - 1
	delete(b.alloc, idx)
	b.allocated -= 1 << order

	for order < MaxOrder {
		buddy := idx ^ (1 << order)
		if buddy+(1<<order) > b.nf || !b.removeFree(buddy, order) {
			break
		}
		if buddy < idx {
			idx = buddy
		}
		order++
	}
	b.pushFree(idx, order)
	return nil
}

// Stats reports allocator occupancy.
type Stats struct {
	TotalFrames     uint64
	AllocatedFrames uint64
	FreeBlocks      int
}

// Stats returns current occupancy.
func (b *Buddy) Stats() Stats {
	blocks := 0
	for o := 0; o <= MaxOrder; o++ {
		blocks += len(b.free[o])
	}
	return Stats{TotalFrames: b.nf, AllocatedFrames: b.allocated, FreeBlocks: blocks}
}

// CheckInvariant validates the allocator's structural invariants:
// free/allocated blocks are disjoint, aligned to their order, in range,
// and together cover exactly the managed range; and no two free buddies
// of the same order coexist unmerged... the last is a liveness property
// of Free and is checked opportunistically.
func (b *Buddy) CheckInvariant() error {
	covered := make(map[uint64]bool, b.nf)
	mark := func(idx uint64, order int, kind string) error {
		if idx%(1<<order) != 0 {
			return fmt.Errorf("mm: %s block %d misaligned for order %d", kind, idx, order)
		}
		if idx+(1<<order) > b.nf {
			return fmt.Errorf("mm: %s block %d order %d out of range", kind, idx, order)
		}
		for i := idx; i < idx+(1<<order); i++ {
			if covered[i] {
				return fmt.Errorf("mm: frame %d covered twice", i)
			}
			covered[i] = true
		}
		return nil
	}
	for o := 0; o <= MaxOrder; o++ {
		for _, idx := range b.free[o] {
			if err := mark(idx, o, "free"); err != nil {
				return err
			}
			if got, ok := b.freeSet[idx]; !ok || int(got)-1 != o {
				return fmt.Errorf("mm: freeSet out of sync at %d", idx)
			}
		}
	}
	for idx, rec := range b.alloc {
		if err := mark(idx, int(rec)-1, "allocated"); err != nil {
			return err
		}
	}
	if uint64(len(covered)) != b.nf {
		return fmt.Errorf("mm: coverage %d != %d frames", len(covered), b.nf)
	}
	return nil
}
