// Package proc implements process management — "process management
// (spawning, waiting, signals, killing)" from the paper's §1 list.
//
// The process table is a sequential structure (NR-replicable like the
// scheduler): processes form a tree rooted at init (PID 1); exit turns
// a process into a zombie holding its status; wait reaps zombie
// children; orphans are reparented to init; signals are delivered to a
// per-process pending set, with SIGKILL forcing termination.
package proc

import (
	"errors"
	"fmt"
	"sort"
)

// PID is a process identifier.
type PID uint64

// InitPID is the root of the process tree.
const InitPID PID = 1

// Signal numbers (the subset the simulated OS uses).
type Signal uint8

// Signals.
const (
	SIGKILL Signal = 9
	SIGTERM Signal = 15
	SIGUSR1 Signal = 10
	SIGCHLD Signal = 17
)

// State is a process's lifecycle state.
type State uint8

// Process states.
const (
	StateRunning State = iota
	StateZombie
)

func (s State) String() string {
	if s == StateZombie {
		return "zombie"
	}
	return "running"
}

// Errors.
var (
	ErrNoProcess  = errors.New("proc: no such process")
	ErrNoChildren = errors.New("proc: no children to wait for")
	ErrWouldBlock = errors.New("proc: wait would block")
	ErrZombie     = errors.New("proc: process is a zombie")
	ErrInit       = errors.New("proc: operation not permitted on init")
)

// Process is one process-table entry.
type Process struct {
	PID      PID
	Parent   PID
	State    State
	ExitCode int
	Children map[PID]bool
	Pending  map[Signal]bool // pending signals
	Name     string
}

// Table is the process table.
type Table struct {
	procs map[PID]*Process
	next  PID
}

// NewTable creates a table containing only init.
func NewTable() *Table {
	t := &Table{procs: make(map[PID]*Process), next: InitPID + 1}
	t.procs[InitPID] = &Process{
		PID: InitPID, Parent: 0, Children: make(map[PID]bool),
		Pending: make(map[Signal]bool), Name: "init",
	}
	return t
}

func (t *Table) get(pid PID) (*Process, error) {
	p := t.procs[pid]
	if p == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	return p, nil
}

// Spawn creates a child of parent and returns its PID.
func (t *Table) Spawn(parent PID, name string) (PID, error) {
	pp, err := t.get(parent)
	if err != nil {
		return 0, err
	}
	if pp.State == StateZombie {
		return 0, fmt.Errorf("%w: parent %d", ErrZombie, parent)
	}
	pid := t.next
	t.next++
	t.procs[pid] = &Process{
		PID: pid, Parent: parent, Children: make(map[PID]bool),
		Pending: make(map[Signal]bool), Name: name,
	}
	pp.Children[pid] = true
	return pid, nil
}

// Exit terminates a process: it becomes a zombie holding code, its
// children are reparented to init, and the parent gets SIGCHLD.
func (t *Table) Exit(pid PID, code int) error {
	if pid == InitPID {
		return fmt.Errorf("%w: exit", ErrInit)
	}
	p, err := t.get(pid)
	if err != nil {
		return err
	}
	if p.State == StateZombie {
		return fmt.Errorf("%w: %d", ErrZombie, pid)
	}
	p.State = StateZombie
	p.ExitCode = code
	// Reparent live children (and zombie children awaiting reap) to init.
	initP := t.procs[InitPID]
	for c := range p.Children {
		cp := t.procs[c]
		cp.Parent = InitPID
		initP.Children[c] = true
	}
	p.Children = make(map[PID]bool)
	// Notify the parent.
	if pp := t.procs[p.Parent]; pp != nil && pp.State == StateRunning {
		pp.Pending[SIGCHLD] = true
	}
	return nil
}

// WaitResult describes a reaped child.
type WaitResult struct {
	PID      PID
	ExitCode int
}

// Wait reaps one zombie child of parent (lowest PID first, for
// determinism under NR). It returns ErrWouldBlock if children exist but
// none has exited, and ErrNoChildren if there are none.
func (t *Table) Wait(parent PID) (WaitResult, error) {
	pp, err := t.get(parent)
	if err != nil {
		return WaitResult{}, err
	}
	if len(pp.Children) == 0 {
		return WaitResult{}, fmt.Errorf("%w: parent %d", ErrNoChildren, parent)
	}
	var zombies []PID
	for c := range pp.Children {
		if t.procs[c].State == StateZombie {
			zombies = append(zombies, c)
		}
	}
	if len(zombies) == 0 {
		return WaitResult{}, fmt.Errorf("%w: parent %d", ErrWouldBlock, parent)
	}
	sort.Slice(zombies, func(i, j int) bool { return zombies[i] < zombies[j] })
	c := zombies[0]
	code := t.procs[c].ExitCode
	delete(pp.Children, c)
	delete(t.procs, c)
	return WaitResult{PID: c, ExitCode: code}, nil
}

// Kill delivers a signal. SIGKILL terminates the target immediately
// (exit code 128+9); other signals are left pending for the target to
// consume.
func (t *Table) Kill(pid PID, sig Signal) error {
	p, err := t.get(pid)
	if err != nil {
		return err
	}
	if p.State == StateZombie {
		return fmt.Errorf("%w: %d", ErrZombie, pid)
	}
	if sig == SIGKILL {
		if pid == InitPID {
			return fmt.Errorf("%w: kill -9", ErrInit)
		}
		return t.Exit(pid, 128+int(SIGKILL))
	}
	p.Pending[sig] = true
	return nil
}

// TakeSignal consumes one pending signal (lowest number first),
// returning false if none is pending.
func (t *Table) TakeSignal(pid PID) (Signal, bool, error) {
	p, err := t.get(pid)
	if err != nil {
		return 0, false, err
	}
	if len(p.Pending) == 0 {
		return 0, false, nil
	}
	sigs := make([]Signal, 0, len(p.Pending))
	for s := range p.Pending {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	delete(p.Pending, sigs[0])
	return sigs[0], true, nil
}

// Get returns a copy of the process entry.
func (t *Table) Get(pid PID) (Process, error) {
	p, err := t.get(pid)
	if err != nil {
		return Process{}, err
	}
	cp := *p
	cp.Children = make(map[PID]bool, len(p.Children))
	for c := range p.Children {
		cp.Children[c] = true
	}
	cp.Pending = make(map[Signal]bool, len(p.Pending))
	for s := range p.Pending {
		cp.Pending[s] = true
	}
	return cp, nil
}

// Len returns the number of live entries (including zombies).
func (t *Table) Len() int { return len(t.procs) }

// PIDs returns all PIDs in ascending order.
func (t *Table) PIDs() []PID {
	out := make([]PID, 0, len(t.procs))
	for pid := range t.procs {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInvariant validates the process tree: parent links and child
// sets agree; every process except init has a live parent entry; PIDs
// are unique by construction; zombies have no children (reparented on
// exit); init never exits.
func (t *Table) CheckInvariant() error {
	if p := t.procs[InitPID]; p == nil || p.State != StateRunning {
		return fmt.Errorf("proc: init missing or dead")
	}
	for pid, p := range t.procs {
		if p.PID != pid {
			return fmt.Errorf("proc: entry %d records pid %d", pid, p.PID)
		}
		if pid != InitPID {
			pp := t.procs[p.Parent]
			if pp == nil {
				return fmt.Errorf("proc: %d has dangling parent %d", pid, p.Parent)
			}
			if !pp.Children[pid] {
				return fmt.Errorf("proc: %d missing from parent %d's children", pid, p.Parent)
			}
		}
		if p.State == StateZombie && len(p.Children) != 0 {
			return fmt.Errorf("proc: zombie %d still has children", pid)
		}
		for c := range p.Children {
			cp := t.procs[c]
			if cp == nil {
				return fmt.Errorf("proc: %d lists dead child %d", pid, c)
			}
			if cp.Parent != pid {
				return fmt.Errorf("proc: child %d of %d claims parent %d", c, pid, cp.Parent)
			}
		}
	}
	return nil
}
