package proc

import (
	"errors"
	"testing"

	"github.com/verified-os/vnros/internal/verifier"
)

func TestSpawnTree(t *testing.T) {
	tb := NewTable()
	a, err := tb.Spawn(InitPID, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.Spawn(a, "b")
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := tb.Get(a)
	if !pa.Children[b] || pa.Parent != InitPID || pa.Name != "a" {
		t.Fatalf("a = %+v", pa)
	}
	if _, err := tb.Spawn(999, "x"); !errors.Is(err, ErrNoProcess) {
		t.Errorf("spawn from missing: %v", err)
	}
	if err := tb.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestExitWaitFlow(t *testing.T) {
	tb := NewTable()
	a, _ := tb.Spawn(InitPID, "a")
	if _, err := tb.Wait(InitPID); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("wait before exit: %v", err)
	}
	if err := tb.Exit(a, 42); err != nil {
		t.Fatal(err)
	}
	pa, _ := tb.Get(a)
	if pa.State != StateZombie || pa.ExitCode != 42 {
		t.Fatalf("zombie = %+v", pa)
	}
	// Parent got SIGCHLD.
	pi, _ := tb.Get(InitPID)
	if !pi.Pending[SIGCHLD] {
		t.Error("no SIGCHLD pending on parent")
	}
	res, err := tb.Wait(InitPID)
	if err != nil || res.PID != a || res.ExitCode != 42 {
		t.Fatalf("wait = %+v, %v", res, err)
	}
	if _, err := tb.Get(a); !errors.Is(err, ErrNoProcess) {
		t.Error("zombie survived reaping")
	}
}

func TestDoubleExitRejected(t *testing.T) {
	tb := NewTable()
	a, _ := tb.Spawn(InitPID, "a")
	_ = tb.Exit(a, 0)
	if err := tb.Exit(a, 1); !errors.Is(err, ErrZombie) {
		t.Errorf("double exit: %v", err)
	}
	if _, err := tb.Spawn(a, "child-of-zombie"); !errors.Is(err, ErrZombie) {
		t.Errorf("spawn from zombie: %v", err)
	}
	if err := tb.Kill(a, SIGTERM); !errors.Is(err, ErrZombie) {
		t.Errorf("signal zombie: %v", err)
	}
}

func TestInitProtected(t *testing.T) {
	tb := NewTable()
	if err := tb.Exit(InitPID, 0); !errors.Is(err, ErrInit) {
		t.Errorf("init exit: %v", err)
	}
	if err := tb.Kill(InitPID, SIGKILL); !errors.Is(err, ErrInit) {
		t.Errorf("init kill -9: %v", err)
	}
	// Non-fatal signals to init are fine.
	if err := tb.Kill(InitPID, SIGUSR1); err != nil {
		t.Errorf("init SIGUSR1: %v", err)
	}
}

func TestWaitReapsLowestPIDFirst(t *testing.T) {
	tb := NewTable()
	a, _ := tb.Spawn(InitPID, "a")
	b, _ := tb.Spawn(InitPID, "b")
	_ = tb.Exit(b, 2)
	_ = tb.Exit(a, 1)
	res, _ := tb.Wait(InitPID)
	if res.PID != a {
		t.Fatalf("reaped %d first, want %d", res.PID, a)
	}
	res, _ = tb.Wait(InitPID)
	if res.PID != b {
		t.Fatalf("reaped %d second", res.PID)
	}
}

func TestPIDsSorted(t *testing.T) {
	tb := NewTable()
	_, _ = tb.Spawn(InitPID, "a")
	_, _ = tb.Spawn(InitPID, "b")
	pids := tb.PIDs()
	if len(pids) != 3 || pids[0] != InitPID {
		t.Fatalf("pids = %v", pids)
	}
	for i := 1; i < len(pids); i++ {
		if pids[i] <= pids[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestObligationsAllPass(t *testing.T) {
	g := &verifier.Registry{}
	RegisterObligations(g)
	rep := g.Run(verifier.Options{Seed: 31})
	for _, f := range rep.Failed() {
		t.Errorf("VC %s failed: %v", f.Obligation.ID(), f.Err)
	}
}
