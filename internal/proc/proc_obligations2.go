package proc

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of process-management VCs:
// exit-code fidelity through deep trees, SIGCHLD delivery, wait-order
// determinism, zombie-state immutability, and signal conservation.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "proc", Name: "exit-codes-survive-reparenting", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				// Build a chain init -> a -> b -> c; kill the middle;
				// the grandchildren's exit codes must still reach init.
				t := NewTable()
				a, _ := t.Spawn(InitPID, "a")
				b, _ := t.Spawn(a, "b")
				c, _ := t.Spawn(b, "c")
				codeB, codeC := r.Intn(250), r.Intn(250)
				if err := t.Exit(a, 1); err != nil {
					return err
				}
				if err := t.Exit(b, codeB); err != nil {
					return err
				}
				if err := t.Exit(c, codeC); err != nil {
					return err
				}
				got := map[PID]int{}
				for i := 0; i < 3; i++ {
					res, err := t.Wait(InitPID)
					if err != nil {
						return fmt.Errorf("wait %d: %w", i, err)
					}
					got[res.PID] = res.ExitCode
				}
				if got[b] != codeB || got[c] != codeC || got[a] != 1 {
					return fmt.Errorf("codes = %v, want a=1 b=%d c=%d", got, codeB, codeC)
				}
				return t.CheckInvariant()
			}},
		verifier.Obligation{Module: "proc", Name: "sigchld-on-every-exit", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				parent, _ := t.Spawn(InitPID, "parent")
				for i := 0; i < 20; i++ {
					kid, err := t.Spawn(parent, "kid")
					if err != nil {
						return err
					}
					if err := t.Exit(kid, 0); err != nil {
						return err
					}
					sig, ok, err := t.TakeSignal(parent)
					if err != nil || !ok || sig != SIGCHLD {
						return fmt.Errorf("exit %d: signal = %v %t %v", i, sig, ok, err)
					}
					if _, err := t.Wait(parent); err != nil {
						return err
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "proc", Name: "wait-order-deterministic", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				// Two tables fed the same spawn/exit sequence reap in
				// the same order (the NR determinism requirement).
				t1, t2 := NewTable(), NewTable()
				var pids []PID
				for i := 0; i < 30; i++ {
					p1, e1 := t1.Spawn(InitPID, "x")
					p2, e2 := t2.Spawn(InitPID, "x")
					if e1 != nil || e2 != nil || p1 != p2 {
						return fmt.Errorf("spawn diverged: %v/%v %v/%v", p1, e1, p2, e2)
					}
					pids = append(pids, p1)
				}
				perm := r.Perm(len(pids))
				for _, j := range perm {
					if err := t1.Exit(pids[j], j); err != nil {
						return err
					}
					if err := t2.Exit(pids[j], j); err != nil {
						return err
					}
				}
				for i := 0; i < len(pids); i++ {
					r1, e1 := t1.Wait(InitPID)
					r2, e2 := t2.Wait(InitPID)
					if e1 != nil || e2 != nil || r1 != r2 {
						return fmt.Errorf("wait %d diverged: %+v/%v %+v/%v", i, r1, e1, r2, e2)
					}
				}
				return nil
			}},
		verifier.Obligation{Module: "proc", Name: "zombie-state-immutable", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				pid, _ := t.Spawn(InitPID, "z")
				code := r.Intn(256)
				if err := t.Exit(pid, code); err != nil {
					return err
				}
				// Nothing may change a zombie except Wait.
				if err := t.Exit(pid, code+1); !errors.Is(err, ErrZombie) {
					return fmt.Errorf("re-exit: %v", err)
				}
				if err := t.Kill(pid, SIGTERM); !errors.Is(err, ErrZombie) {
					return fmt.Errorf("signal zombie: %v", err)
				}
				if err := t.Kill(pid, SIGKILL); !errors.Is(err, ErrZombie) {
					return fmt.Errorf("SIGKILL zombie: %v", err)
				}
				if _, err := t.Spawn(pid, "child"); !errors.Is(err, ErrZombie) {
					return fmt.Errorf("spawn from zombie: %v", err)
				}
				p, err := t.Get(pid)
				if err != nil || p.ExitCode != code {
					return fmt.Errorf("exit code mutated: %+v, %v", p, err)
				}
				return nil
			}},
		verifier.Obligation{Module: "proc", Name: "signal-conservation", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// Distinct pending signals are a set: delivering the same
				// signal twice then taking yields it once; distinct
				// signals all arrive.
				t := NewTable()
				pid, _ := t.Spawn(InitPID, "s")
				sigs := []Signal{SIGTERM, SIGUSR1, SIGCHLD}
				for _, s := range sigs {
					for i := 0; i < 1+r.Intn(3); i++ {
						if err := t.Kill(pid, s); err != nil {
							return err
						}
					}
				}
				got := map[Signal]int{}
				for {
					s, ok, err := t.TakeSignal(pid)
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					got[s]++
				}
				for _, s := range sigs {
					if got[s] != 1 {
						return fmt.Errorf("signal %d delivered %d times, want 1 (set semantics)", s, got[s])
					}
				}
				return nil
			}},
	)
}
