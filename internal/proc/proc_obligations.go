package proc

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/verifier"
)

// RegisterObligations registers the process-management verification
// conditions: tree invariants under random lifecycles, zombie-reap
// accounting, orphan reparenting, and signal semantics.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	g.Register(
		verifier.Obligation{Module: "proc", Name: "tree-invariant-random", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				live := []PID{InitPID}
				for i := 0; i < 3000; i++ {
					switch r.Intn(4) {
					case 0, 1:
						parent := live[r.Intn(len(live))]
						if pid, err := t.Spawn(parent, fmt.Sprintf("p%d", i)); err == nil {
							live = append(live, pid)
						}
					case 2:
						if len(live) > 1 {
							j := 1 + r.Intn(len(live)-1)
							if err := t.Exit(live[j], r.Intn(256)); err == nil {
								live = append(live[:j], live[j+1:]...)
							}
						}
					case 3:
						parent := live[r.Intn(len(live))]
						_, _ = t.Wait(parent)
					}
					if i%100 == 0 {
						if err := t.CheckInvariant(); err != nil {
							return fmt.Errorf("iter %d: %w", i, err)
						}
					}
				}
				return t.CheckInvariant()
			}},
		verifier.Obligation{Module: "proc", Name: "no-zombie-leak-after-wait", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				var kids []PID
				for i := 0; i < 50; i++ {
					pid, err := t.Spawn(InitPID, "w")
					if err != nil {
						return err
					}
					kids = append(kids, pid)
				}
				for _, pid := range kids {
					if err := t.Exit(pid, int(pid)); err != nil {
						return err
					}
				}
				got := map[PID]int{}
				for range kids {
					res, err := t.Wait(InitPID)
					if err != nil {
						return err
					}
					got[res.PID] = res.ExitCode
				}
				for _, pid := range kids {
					if got[pid] != int(pid) {
						return fmt.Errorf("exit code for %d = %d", pid, got[pid])
					}
				}
				if t.Len() != 1 {
					return fmt.Errorf("%d entries after reaping all, want 1", t.Len())
				}
				if _, err := t.Wait(InitPID); !errors.Is(err, ErrNoChildren) {
					return fmt.Errorf("wait with no children: %v", err)
				}
				return nil
			}},
		verifier.Obligation{Module: "proc", Name: "orphans-reparent-to-init", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				mid, _ := t.Spawn(InitPID, "mid")
				grand, _ := t.Spawn(mid, "grand")
				if err := t.Exit(mid, 0); err != nil {
					return err
				}
				g2, err := t.Get(grand)
				if err != nil {
					return err
				}
				if g2.Parent != InitPID {
					return fmt.Errorf("orphan parent = %d", g2.Parent)
				}
				// init can wait for both: mid (zombie) now, grand later.
				res, err := t.Wait(InitPID)
				if err != nil || res.PID != mid {
					return fmt.Errorf("wait = %+v, %v", res, err)
				}
				if err := t.Exit(grand, 7); err != nil {
					return err
				}
				res, err = t.Wait(InitPID)
				if err != nil || res.PID != grand || res.ExitCode != 7 {
					return fmt.Errorf("wait grand = %+v, %v", res, err)
				}
				return t.CheckInvariant()
			}},
		verifier.Obligation{Module: "proc", Name: "signal-semantics", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				pid, _ := t.Spawn(InitPID, "victim")
				if err := t.Kill(pid, SIGTERM); err != nil {
					return err
				}
				if err := t.Kill(pid, SIGUSR1); err != nil {
					return err
				}
				// Pending signals consumed lowest-first.
				s, ok, err := t.TakeSignal(pid)
				if err != nil || !ok || s != SIGUSR1 {
					return fmt.Errorf("take 1 = %v %t %v", s, ok, err)
				}
				s, ok, _ = t.TakeSignal(pid)
				if !ok || s != SIGTERM {
					return fmt.Errorf("take 2 = %v %t", s, ok)
				}
				if _, ok, _ := t.TakeSignal(pid); ok {
					return fmt.Errorf("phantom signal")
				}
				// SIGKILL terminates immediately.
				if err := t.Kill(pid, SIGKILL); err != nil {
					return err
				}
				p, _ := t.Get(pid)
				if p.State != StateZombie || p.ExitCode != 128+int(SIGKILL) {
					return fmt.Errorf("after SIGKILL: %+v", p)
				}
				// init is immune to SIGKILL.
				if err := t.Kill(InitPID, SIGKILL); !errors.Is(err, ErrInit) {
					return fmt.Errorf("kill init: %v", err)
				}
				return nil
			}},
		verifier.Obligation{Module: "proc", Name: "pid-uniqueness", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				t := NewTable()
				seen := map[PID]bool{InitPID: true}
				for i := 0; i < 500; i++ {
					pid, err := t.Spawn(InitPID, "u")
					if err != nil {
						return err
					}
					if seen[pid] {
						return fmt.Errorf("pid %d reused", pid)
					}
					seen[pid] = true
					if r.Intn(2) == 0 {
						_ = t.Exit(pid, 0)
						_, _ = t.Wait(InitPID)
					}
				}
				return nil
			}},
	)
}
