package core

import (
	"errors"
	"time"

	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sched"
	"github.com/verified-os/vnros/internal/sys"
)

// This file is the networked syscall path: the composition of the
// replicated socket *table* (internal/sys/socktab.go — which sockets
// exist, which ports they hold, the port-uniqueness invariant) with the
// device half of networking (NIC transmit, interrupt-fed receive
// queues), which stays core-local like every other device.
//
// The split follows the determinism line, not the subsystem line:
//
//   - Bind, send and close are *logged* transitions. The one
//     non-deterministic input — the ephemeral port — is resolved
//     device-side before the bind is logged (the same idiom mmap uses
//     for data frames), so replaying the log on any replica rebuilds an
//     identical table. On a sharded kernel the table op runs on the
//     process shard owning the PID, with the global port namespace
//     pinned to process shard 0 (acquire → bind → release on unwind,
//     mirroring the spawn/exit tree-vs-resources ordering).
//   - Receive stays device-local: the queue is fed by interrupts, which
//     are not log entries. A blocking receive parks on a per-socket
//     wait queue rung by the stack's delivery doorbell — a
//     completion-style wakeup instead of a poll loop — with a pump
//     goroutine draining the interrupt controller while anyone is
//     parked (otherwise a parked core's pending IRQs would starve:
//     interrupt delivery normally rides syscall entry).

// devSock pairs a process's device socket with the wait queue its
// blocking receivers park on. The doorbell → Wake wiring is installed
// at bind time, before the socket is published.
type devSock struct {
	sock *netstack.Socket
	wq   *sched.WaitQueue
}

func (s *System) installSock(pid proc.PID, id uint64, sock *netstack.Socket) {
	ds := &devSock{sock: sock, wq: sched.NewWaitQueue()}
	sock.SetDoorbell(ds.wq.Wake)
	s.sockMu.Lock()
	if s.sockets[pid] == nil {
		s.sockets[pid] = make(map[uint64]*devSock)
	}
	s.sockets[pid][id] = ds
	s.sockMu.Unlock()
}

func (s *System) devSockOf(pid proc.PID, id uint64) (*devSock, sys.Errno) {
	s.sockMu.Lock()
	defer s.sockMu.Unlock()
	ds := s.sockets[pid][id]
	if ds == nil {
		return nil, sys.EBADF
	}
	return ds, sys.EOK
}

func (s *System) removeSock(pid proc.PID, id uint64) *devSock {
	s.sockMu.Lock()
	defer s.sockMu.Unlock()
	ds := s.sockets[pid][id]
	delete(s.sockets[pid], id)
	if len(s.sockets[pid]) == 0 {
		delete(s.sockets, pid)
	}
	return ds
}

// sockTabWrite runs one socket-table op through the replicated kernel:
// the monolithic combiner, or the process shard owning the PID.
func (h *handler) sockTabWrite(op sys.WriteOp) sys.Resp {
	if !h.s.sharded() {
		return h.execute(op)
	}
	h.ctxMu.Lock()
	defer h.ctxMu.Unlock()
	return h.procExecOn(h.s.ProcShardOf(op.PID), op)
}

// sockOp serves the four wire-level socket syscalls.
func (s *System) sockOp(h *handler, op sys.WriteOp) sys.Resp {
	switch op.Num {
	case sys.NumSockBind:
		return s.sockBind(h, op)
	case sys.NumSockSend:
		return s.sockSend(h, op)
	case sys.NumSockRecv:
		return s.sockRecv(h, op)
	case sys.NumSockClose:
		return s.sockClose(h, op)
	}
	return sys.Resp{Errno: sys.ENOSYS}
}

// sockBind: device first (resolving the concrete port — ephemeral binds
// pick one here — and creating the receive queue), then the logged
// table transition that assigns the socket id. Either half failing
// unwinds the other, so table and device never disagree about which
// ports are bound.
func (s *System) sockBind(h *handler, op sys.WriteOp) sys.Resp {
	sock, err := s.Net.BindBudget(op.Port, int(op.Word))
	if err != nil {
		return sys.Resp{Errno: sys.ErrnoFromError(err)}
	}
	port := sock.Port()
	top := sys.WriteOp{Num: sys.NumSockTabBind, PID: op.PID, Port: port, Word: op.Word}
	var tr sys.Resp
	if s.sharded() {
		ps := s.ProcShardOf(op.PID)
		h.ctxMu.Lock()
		// Port-uniqueness is global; the namespace lives on process
		// shard 0 (like the process tree). Acquire there, then log the
		// bind on the owner shard, releasing the reservation if the
		// bind fails — the spawn protocol's tree-then-resources shape.
		ar := h.procExecOn(0, sys.WriteOp{Num: sys.NumSockPortAcquire, PID: op.PID, Port: port})
		if ar.Errno != sys.EOK {
			h.ctxMu.Unlock()
			_ = sock.Close()
			return ar
		}
		tr = h.procExecOn(ps, top)
		if tr.Errno != sys.EOK {
			_ = h.procExecOn(0, sys.WriteOp{Num: sys.NumSockPortRelease, PID: op.PID, Port: port})
		}
		h.ctxMu.Unlock()
	} else {
		tr = h.execute(top)
	}
	if tr.Errno != sys.EOK {
		_ = sock.Close()
		return tr
	}
	s.installSock(op.PID, tr.Val, sock)
	obs.NetSockBinds.Add(uint32(h.core), 1)
	return sys.Resp{Errno: sys.EOK, Val: tr.Val}
}

// sockSend: the logged table op is the verdict (ownership check, size
// check, accepted byte count — like the write path); the device
// transmit follows it. Past the logged acceptance the datagram is
// fire-and-forget: a socket torn down between verdict and transmit is
// indistinguishable from frame loss, which UDP semantics already admit.
func (s *System) sockSend(h *handler, op sys.WriteOp) sys.Resp {
	tr := h.sockTabWrite(sys.WriteOp{
		Num: sys.NumSockTabSend, PID: op.PID, Sock: op.Sock, Len: uint64(len(op.Data)),
	})
	if tr.Errno != sys.EOK {
		return tr
	}
	if ds, e := s.devSockOf(op.PID, op.Sock); e == sys.EOK {
		_ = ds.sock.SendTo(netstack.Addr(op.Addr), op.Port, op.Data)
	}
	return sys.Resp{Errno: sys.EOK, Val: tr.Val}
}

// sockRecv serves receive entirely device-side. Non-blocking returns
// EAGAIN on an empty queue; with sys.SockRecvBlock set the caller parks
// on the socket's wait queue until the delivery doorbell (or close)
// rings it. The prepare → re-check → park sequence is the futex
// lost-wakeup discipline: a doorbell between the ticket and the park
// advances the sequence, so Wait returns instead of sleeping through it.
func (s *System) sockRecv(h *handler, op sys.WriteOp) sys.Resp {
	ds, e := s.devSockOf(op.PID, op.Sock)
	if e != sys.EOK {
		return sys.Resp{Errno: e}
	}
	block := op.Flags&sys.SockRecvBlock != 0
	for {
		// Drain pending interrupts before concluding the queue is
		// empty: the calling core always, the rest only when the
		// controller reports pending work somewhere.
		s.Dispatcher.Poll(h.core)
		if s.Dispatcher.HasPending() {
			for c := 0; c < s.cfg.Cores; c++ {
				s.Dispatcher.Poll(c)
			}
		}
		r, err := ds.sock.TryRecv()
		if err == nil {
			return sys.Resp{Errno: sys.EOK, Val: uint64(r.From), TID: sched.TID(r.FromPort), Data: r.Payload}
		}
		if !errors.Is(err, netstack.ErrWouldBlock) || !block {
			return sys.Resp{Errno: sys.ErrnoFromError(err)}
		}
		ticket := ds.wq.Prepare()
		if r, err = ds.sock.TryRecv(); err == nil {
			return sys.Resp{Errno: sys.EOK, Val: uint64(r.From), TID: sched.TID(r.FromPort), Data: r.Payload}
		} else if !errors.Is(err, netstack.ErrWouldBlock) {
			return sys.Resp{Errno: sys.ErrnoFromError(err)}
		}
		obs.NetRecvParks.Add(uint32(h.core), 1)
		s.netPumpAdd()
		ds.wq.Wait(ticket)
		s.netPumpDone()
		obs.NetRecvWakes.Add(uint32(h.core), 1)
	}
}

// sockClose: the table transition is the authoritative verdict — a
// double close finds the entry already gone and fails EBADF without
// touching anything, so it can never tear down a successor socket that
// reused the port. On success the device socket is closed (idempotent,
// ringing the doorbell so parked receivers wake into EBADF) and, on a
// sharded kernel, the port's namespace reservation is released.
func (s *System) sockClose(h *handler, op sys.WriteOp) sys.Resp {
	top := sys.WriteOp{Num: sys.NumSockTabClose, PID: op.PID, Sock: op.Sock}
	var tr sys.Resp
	if s.sharded() {
		h.ctxMu.Lock()
		tr = h.procExecOn(s.ProcShardOf(op.PID), top)
		if tr.Errno == sys.EOK {
			_ = h.procExecOn(0, sys.WriteOp{Num: sys.NumSockPortRelease, PID: op.PID, Port: uint16(tr.Val)})
		}
		h.ctxMu.Unlock()
	} else {
		tr = h.execute(top)
	}
	if tr.Errno != sys.EOK {
		return tr
	}
	if ds := s.removeSock(op.PID, op.Sock); ds != nil {
		_ = ds.sock.Close()
	}
	obs.NetSockCloses.Add(uint32(h.core), 1)
	return sys.Resp{Errno: sys.EOK, Val: tr.Val}
}

// ---- the receive pump ----

// netPumpAdd registers a parked receiver and ensures the pump runs.
func (s *System) netPumpAdd() {
	s.pumpMu.Lock()
	s.pumpWaiters++
	if !s.pumpRunning {
		s.pumpRunning = true
		go s.netPump()
	}
	s.pumpMu.Unlock()
}

func (s *System) netPumpDone() {
	s.pumpMu.Lock()
	s.pumpWaiters--
	s.pumpMu.Unlock()
}

// netPump drains the interrupt controller while receivers are parked.
// Interrupt delivery normally rides syscall entry; a core parked inside
// a blocking receive makes no syscalls, and the frame that would wake
// it may sit as a pending IRQ on any core. The pump polls every core
// until the last waiter unparks, then exits.
func (s *System) netPump() {
	for {
		s.pumpMu.Lock()
		active := s.pumpWaiters > 0
		if !active {
			s.pumpRunning = false
		}
		s.pumpMu.Unlock()
		if !active {
			return
		}
		for c := 0; c < s.cfg.Cores; c++ {
			s.Dispatcher.Poll(c)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// ---- batched socket ops ----

// sockBatchOp threads one submitted socket entry through the batch's
// three passes: the device pre-pass (bind resolution), the table pass
// (one ExecuteBatch alongside the batch's file ops — on a sharded
// kernel one ExecuteBatchOn round on the PID's process shard), and the
// device post-pass (transmit, receive, teardown) in submission order.
type sockBatchOp struct {
	i    int              // completion index
	op   sys.WriteOp      // the submitted wire op
	dev  *netstack.Socket // pre-bound device socket (bind only)
	port uint16           // device-resolved port (bind only)
	tab  sys.Resp         // table verdict
	skip bool             // completed early (device bind or acquire failure)
}

// tableOp is the logged half of a wire socket op (recv has none).
func (so *sockBatchOp) tableOp() sys.WriteOp {
	switch so.op.Num {
	case sys.NumSockBind:
		return sys.WriteOp{Num: sys.NumSockTabBind, PID: so.op.PID, Port: so.port, Word: so.op.Word}
	case sys.NumSockSend:
		return sys.WriteOp{Num: sys.NumSockTabSend, PID: so.op.PID, Sock: so.op.Sock, Len: uint64(len(so.op.Data))}
	default: // NumSockClose
		return sys.WriteOp{Num: sys.NumSockTabClose, PID: so.op.PID, Sock: so.op.Sock}
	}
}

// sockBatchDevBind is the device pre-pass: resolve each submitted
// bind's concrete port against the stack before anything is logged, so
// the table ops that enter the combiner batch are fully deterministic.
func (h *handler) sockBatchDevBind(sops []*sockBatchOp, comps []sys.Completion) {
	for _, so := range sops {
		if so.op.Num != sys.NumSockBind {
			continue
		}
		sock, err := h.s.Net.BindBudget(so.op.Port, int(so.op.Word))
		if err != nil {
			comps[so.i] = sys.Completion{Op: sys.NumSockBind, Errno: sys.ErrnoFromError(err)}
			so.skip = true
			continue
		}
		so.dev, so.port = sock, sock.Port()
	}
}

// sockBatchTableSharded runs the batch's socket-table half on a sharded
// kernel in three combiner rounds, none per-op (the caller holds
// ctxMu): port acquires on shard 0, the table run on the submitting
// PID's shard (every op of a batch carries the same PID), and the
// namespace releases owed by failed binds and successful closes.
func (h *handler) sockBatchTableSharded(sops []*sockBatchOp, comps []sys.Completion) {
	s := h.s
	var acq []sys.WriteOp
	var acqSo []*sockBatchOp
	for _, so := range sops {
		if so.skip || so.op.Num != sys.NumSockBind {
			continue
		}
		acq = append(acq, sys.WriteOp{Num: sys.NumSockPortAcquire, PID: so.op.PID, Port: so.port})
		acqSo = append(acqSo, so)
	}
	if len(acq) > 0 {
		for j, r := range h.procCtx.ExecuteBatchOn(0, acq) {
			if r.Errno != sys.EOK {
				so := acqSo[j]
				_ = so.dev.Close()
				comps[so.i] = sys.Completion{Op: sys.NumSockBind, Errno: r.Errno}
				so.skip = true
			}
		}
	}

	var run []sys.WriteOp
	var runSo []*sockBatchOp
	shard := 0
	for _, so := range sops {
		if so.skip || so.op.Num == sys.NumSockRecv {
			continue
		}
		shard = s.ProcShardOf(so.op.PID)
		run = append(run, so.tableOp())
		runSo = append(runSo, so)
	}
	if len(run) > 0 {
		for j, r := range h.procCtx.ExecuteBatchOn(shard, run) {
			runSo[j].tab = r
		}
	}

	var rel []sys.WriteOp
	for _, so := range runSo {
		switch {
		case so.op.Num == sys.NumSockBind && so.tab.Errno != sys.EOK:
			rel = append(rel, sys.WriteOp{Num: sys.NumSockPortRelease, PID: so.op.PID, Port: so.port})
		case so.op.Num == sys.NumSockClose && so.tab.Errno == sys.EOK:
			rel = append(rel, sys.WriteOp{Num: sys.NumSockPortRelease, PID: so.op.PID, Port: uint16(so.tab.Val)})
		}
	}
	if len(rel) > 0 {
		_ = h.procCtx.ExecuteBatchOn(0, rel)
	}
}

// sockBatchPost is the device post-pass, in submission order: publish
// bound sockets (or unwind a bind whose table half failed), transmit
// accepted sends, serve non-blocking receives, and tear down closed
// sockets. Completions carry the wire op number and the documented Val
// shapes (bind → id, send → accepted count, recv → (from<<16)|fromPort,
// close → released port).
func (h *handler) sockBatchPost(sops []*sockBatchOp, comps []sys.Completion) {
	s := h.s
	for _, so := range sops {
		if so.skip {
			continue
		}
		switch so.op.Num {
		case sys.NumSockBind:
			if so.tab.Errno != sys.EOK {
				_ = so.dev.Close()
				comps[so.i] = sys.Completion{Op: sys.NumSockBind, Errno: so.tab.Errno}
				continue
			}
			s.installSock(so.op.PID, so.tab.Val, so.dev)
			obs.NetSockBinds.Add(uint32(h.core), 1)
			comps[so.i] = sys.Completion{Op: sys.NumSockBind, Errno: sys.EOK, Val: so.tab.Val}

		case sys.NumSockSend:
			if so.tab.Errno != sys.EOK {
				comps[so.i] = sys.Completion{Op: sys.NumSockSend, Errno: so.tab.Errno}
				continue
			}
			if ds, e := s.devSockOf(so.op.PID, so.op.Sock); e == sys.EOK {
				_ = ds.sock.SendTo(netstack.Addr(so.op.Addr), so.op.Port, so.op.Data)
			}
			comps[so.i] = sys.Completion{Op: sys.NumSockSend, Errno: sys.EOK, Val: so.tab.Val}

		case sys.NumSockRecv:
			// Batch entries never block: an empty queue completes EAGAIN.
			r := s.sockRecv(h, so.op)
			c := sys.Completion{Op: sys.NumSockRecv, Errno: r.Errno}
			if r.Errno == sys.EOK {
				c.Val = r.Val<<16 | uint64(uint16(r.TID))
				c.Data = r.Data
			}
			comps[so.i] = c

		case sys.NumSockClose:
			if so.tab.Errno != sys.EOK {
				comps[so.i] = sys.Completion{Op: sys.NumSockClose, Errno: so.tab.Errno}
				continue
			}
			if ds := s.removeSock(so.op.PID, so.op.Sock); ds != nil {
				_ = ds.sock.Close()
			}
			obs.NetSockCloses.Add(uint32(h.core), 1)
			comps[so.i] = sys.Completion{Op: sys.NumSockClose, Errno: sys.EOK, Val: so.tab.Val}
		}
	}
}
