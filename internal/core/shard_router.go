package core

import (
	"runtime"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
)

// This file is the cross-shard router: the composition layer that turns
// one user syscall into an ordered sequence of single-shard transitions
// when the kernel state machine is partitioned across NR instances
// (§4.1). The shard-key map:
//
//   - Per-process state (descriptor table, vspace, page table) lives on
//     process shard ShardOf(PID).
//   - The process tree and the run queue live on process shard 0 — they
//     are global relations (parent/child, ready set), not keyed state.
//   - The filesystem namespace (directory tree, inode numbering, link
//     counts) is replicated on every filesystem shard by broadcasting
//     namespace mutations in ascending shard order under nsMu; file
//     contents live only on filesystem shard ShardOf(Ino).
//
// Cross-shard ordering rules (each rule keeps a half-done protocol
// observationally equivalent to some single-kernel state):
//
//   - Open: namespace first (resolve/create on the fs group), descriptor
//     install second (proc shard). A crash between the two leaves a
//     created file with no descriptor — the state after a plain creat.
//   - Read/Write: FDLock on the proc shard (capturing ino/offset/flags
//     and excluding concurrent users of the descriptor), then the data
//     op on the inode's owner shard, then FDUnlock publishing the new
//     absolute offset. A locked descriptor makes concurrent syscalls
//     retry (EAGAIN from the shard, spun here with Gosched), which is
//     the sharded equivalent of the monolithic combiner's serialization.
//   - Append: the owner shard resolves EOF at apply time (NumFsWriteAt
//     reads its own authoritative size), so two appends racing through
//     different descriptors still serialize on the owner's log.
//   - Spawn: process tree first (allocate the child PID on shard 0),
//     resources second (NumProcAttach on the child's shard); on attach
//     failure NumProcUnspawn rolls the tree entry back.
//   - Exit/SIGKILL: resources first (NumProcDetach on the victim's
//     shard), tree transition last — once a waiter observes the zombie
//     on shard 0, the resources are already gone, matching the
//     monolithic kernel's atomic teardown for every tree observer.

// sharded reports whether this system booted with a partitioned kernel.
func (s *System) sharded() bool { return s.procNR != nil }

// Sharded is the exported probe (obligations, tools).
func (s *System) Sharded() bool { return s.sharded() }

// NumShards returns the shard count per group (0 when monolithic).
func (s *System) NumShards() int {
	if !s.sharded() {
		return 0
	}
	return s.procNR.NumShards()
}

// ProcShardOf returns the process shard owning a PID.
func (s *System) ProcShardOf(pid proc.PID) int { return s.procNR.ShardOf(uint64(pid)) }

// FsShardOf returns the filesystem shard owning an inode.
func (s *System) FsShardOf(ino fs.Ino) int { return s.fsNR.ShardOf(uint64(ino)) }

// InspectProcShard runs f against one replica of one process shard,
// synced to that shard's log tail (obligations and tools).
func (s *System) InspectProcShard(shard, replica int, f func(*sys.Kernel)) {
	s.procNR.Shard(shard).Replica(replica).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		f(d.(*sys.Kernel))
	})
}

// InspectFsShard runs f against one replica of one filesystem shard.
func (s *System) InspectFsShard(shard, replica int, f func(*sys.Kernel)) {
	s.fsNR.Shard(shard).Replica(replica).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
		f(d.(*sys.Kernel))
	})
}

// fsPathShard picks the filesystem shard that serves a read-only
// namespace op for a path. Any shard holds the full namespace; hashing
// the path spreads lookup load across the group.
func (s *System) fsPathShard(path string) int {
	h := uint64(14695981039346656037) // FNV-1a
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= 1099511628211
	}
	return s.fsNR.ShardOf(h)
}

// ---- shard-addressed execution (ctxMu held by the callers below) ----

func (h *handler) procExecOn(shard int, op sys.WriteOp) sys.Resp {
	t0 := obs.Start()
	r := h.procCtx.ExecuteOn(shard, op)
	obs.ShardOps.Observe(obs.ProcShardSlot(shard), uint32(h.core), t0)
	return r
}

func (h *handler) procReadOn(shard int, op sys.ReadOp) sys.Resp {
	t0 := obs.Start()
	r := h.procCtx.ExecuteReadOn(shard, op)
	obs.ShardOps.Observe(obs.ProcShardSlot(shard), uint32(h.core), t0)
	return r
}

func (h *handler) fsExecOn(shard int, op sys.WriteOp) sys.Resp {
	t0 := obs.Start()
	r := h.fsCtx.ExecuteOn(shard, op)
	obs.ShardOps.Observe(obs.FsShardSlot(shard), uint32(h.core), t0)
	return r
}

func (h *handler) fsReadOn(shard int, op sys.ReadOp) sys.Resp {
	t0 := obs.Start()
	r := h.fsCtx.ExecuteReadOn(shard, op)
	obs.ShardOps.Observe(obs.FsShardSlot(shard), uint32(h.core), t0)
	return r
}

// nsBroadcast applies a namespace mutation to every filesystem shard in
// ascending order under nsMu — the single total order that keeps the
// replicated namespaces identical (including deterministic inode
// numbering: every allocation runs on every shard in the same order).
// Namespace ops fail atomically, so a shard-0 failure means no shard
// mutated and the broadcast stops there with the common verdict.
func (h *handler) nsBroadcast(op sys.WriteOp) sys.Resp {
	s := h.s
	s.nsMu.Lock()
	defer s.nsMu.Unlock()
	var resp sys.Resp
	for i := 0; i < s.fsNR.NumShards(); i++ {
		r := h.fsExecOn(i, op)
		if i == 0 {
			resp = r
			if r.Errno != sys.EOK {
				return resp
			}
		}
	}
	return resp
}

// recordShardGauges refreshes the per-shard log-tail and apply-lag
// gauges against this handler's replica. Cheap (a handful of atomics)
// and skipped entirely while stats are off.
func (s *System) recordShardGauges(rep int) {
	if !obs.Enabled() {
		return
	}
	for i := 0; i < s.procNR.NumShards(); i++ {
		tail := s.procNR.Shard(i).Tail()
		applied := s.procNR.Shard(i).Replica(rep).Applied()
		obs.ShardLogTail[obs.ProcShardSlot(i)].Set(tail)
		obs.ShardApplyLag[obs.ProcShardSlot(i)].Set(tail - applied)
	}
	for i := 0; i < s.fsNR.NumShards(); i++ {
		tail := s.fsNR.Shard(i).Tail()
		applied := s.fsNR.Shard(i).Replica(rep).Applied()
		obs.ShardLogTail[obs.FsShardSlot(i)].Set(tail)
		obs.ShardApplyLag[obs.FsShardSlot(i)].Set(tail - applied)
	}
}

// ---- top-level sharded dispatch ----

// shardWriteSyscall is the sharded counterpart of the monolithic
// execute() path: core-side pre/post work (mmap frame attach, freed
// frame return, local process cleanup) around the routed dispatch.
func (h *handler) shardWriteSyscall(op sys.WriteOp) (resp sys.Resp) {
	s := h.s
	if op.Num == sys.NumMMap {
		if op.Size == 0 || op.Size%mmu.L1PageSize != 0 {
			return sys.Resp{Errno: sys.EINVAL}
		}
		frames, err := s.allocDataFrames(op.Size / mmu.L1PageSize)
		if err != nil {
			return sys.Resp{Errno: sys.ENOMEM}
		}
		op.Frames = frames
		h.ctxMu.Lock()
		resp = h.shardWrite(op)
		h.ctxMu.Unlock()
		if resp.Errno != sys.EOK {
			s.freeDataFrames(frames)
		}
		s.recordShardGauges(s.replicaOf(h.core))
		return resp
	}

	h.ctxMu.Lock()
	resp = h.shardWrite(op)
	h.ctxMu.Unlock()
	if resp.Errno == sys.EOK && len(resp.Freed) > 0 {
		s.freeDataFrames(resp.Freed)
	}
	if resp.Errno == sys.EOK && len(resp.Unpinned) > 0 {
		s.unpinFrames(resp.Unpinned)
	}
	if op.Num == sys.NumExit && resp.Errno == sys.EOK {
		s.cleanupProcessLocal(op.PID)
	}
	if op.Num == sys.NumKill && op.Sig == proc.SIGKILL && resp.Errno == sys.EOK {
		s.cleanupProcessLocal(op.Target)
	}
	s.recordShardGauges(s.replicaOf(h.core))
	return resp
}

// shardWrite routes one mutating syscall per the shard-key map
// (ctxMu held).
func (h *handler) shardWrite(op sys.WriteOp) sys.Resp {
	s := h.s
	switch sys.ClassifyWrite(op.Num) {
	case sys.TargetProcKey:
		return h.procExecOn(s.ProcShardOf(op.PID), op)
	case sys.TargetProcTree:
		return h.procExecOn(0, op)
	case sys.TargetFsNS:
		return h.nsBroadcast(op)
	}
	switch op.Num {
	case sys.NumOpen:
		return h.shardOpen(op)
	case sys.NumRead:
		return h.shardReadData(op)
	case sys.NumWrite:
		return h.shardWriteData(op)
	case sys.NumSeek:
		return h.shardSeek(op)
	case sys.NumTruncate:
		return h.shardTruncate(op)
	case sys.NumSpawn:
		return h.shardSpawn(op)
	case sys.NumExit:
		return h.shardExit(op)
	case sys.NumKill:
		return h.shardKill(op)
	}
	return sys.Resp{Errno: sys.ENOSYS}
}

// shardReadDispatch routes one read-only syscall (takes ctxMu itself).
func (h *handler) shardReadDispatch(op sys.ReadOp) sys.Resp {
	s := h.s
	h.ctxMu.Lock()
	defer func() { h.ctxMu.Unlock(); s.recordShardGauges(s.replicaOf(h.core)) }()
	switch sys.ClassifyRead(op.Num) {
	case sys.TargetProcKey:
		return h.procReadOn(s.ProcShardOf(op.PID), op)
	case sys.TargetProcTree:
		return h.procReadOn(0, op)
	case sys.TargetFsPath:
		return h.fsReadOn(s.fsPathShard(op.Path), op)
	}
	// NumStat: resolve the path on a namespace replica, stat the data
	// owner (only the owner's size is authoritative).
	lr := h.fsReadOn(s.fsPathShard(op.Path), sys.ReadOp{Num: sys.NumFsLookup, PID: op.PID, Path: op.Path})
	if lr.Errno != sys.EOK {
		return lr
	}
	return h.fsReadOn(s.FsShardOf(lr.Ino), sys.ReadOp{Num: sys.NumFsStatIno, PID: op.PID, Ino: lr.Ino})
}

// ---- cross-shard protocols ----

// fdLock acquires a descriptor on the proc shard, retrying while a
// concurrent protocol holds it. The response carries ino/offset/flags.
func (h *handler) fdLock(procShard int, pid proc.PID, fd fs.FD) sys.Resp {
	for {
		lk := h.procExecOn(procShard, sys.WriteOp{Num: sys.NumFDLock, PID: pid, FD: fd})
		if lk.Errno != sys.EAGAIN {
			return lk
		}
		runtime.Gosched()
	}
}

func (h *handler) fdUnlock(procShard int, pid proc.PID, fd fs.FD, off uint64) {
	_ = h.procExecOn(procShard, sys.WriteOp{Num: sys.NumFDUnlock, PID: pid, FD: fd, Len: off})
}

// shardOpen: flags check (pure), descriptor-table existence (proc
// shard), resolve or create (fs group), kind/truncate on the owner,
// descriptor install (proc shard). Mirrors FDTable.Open's order, so the
// errno priorities match the monolithic kernel.
func (h *handler) shardOpen(op sys.WriteOp) sys.Resp {
	s := h.s
	if e := sys.OpenFlag(op.Flags).Validate(); e != sys.EOK {
		return sys.Resp{Errno: e}
	}
	ps := s.ProcShardOf(op.PID)
	if r := h.procReadOn(ps, sys.ReadOp{Num: sys.NumProcHasTable, PID: op.PID}); r.Errno != sys.EOK {
		return r
	}
	var ino fs.Ino
	lr := h.fsReadOn(s.fsPathShard(op.Path), sys.ReadOp{Num: sys.NumFsLookup, PID: op.PID, Path: op.Path})
	switch {
	case lr.Errno == sys.EOK:
		ino = lr.Ino
	case lr.Errno == sys.ENOENT && op.Flags&fs.OCreate != 0:
		cr := h.nsBroadcast(sys.WriteOp{Num: sys.NumFsCreate, PID: op.PID, Path: op.Path})
		if cr.Errno == sys.EEXIST {
			// Lost a create race since the lookup; adopt the winner.
			lr = h.fsReadOn(s.fsPathShard(op.Path), sys.ReadOp{Num: sys.NumFsLookup, PID: op.PID, Path: op.Path})
			if lr.Errno != sys.EOK {
				return lr
			}
			ino = lr.Ino
		} else if cr.Errno != sys.EOK {
			return cr
		} else {
			ino = cr.Ino
		}
	default:
		return lr
	}
	owner := s.FsShardOf(ino)
	st := h.fsReadOn(owner, sys.ReadOp{Num: sys.NumFsStatIno, PID: op.PID, Ino: ino})
	if st.Errno != sys.EOK {
		return st
	}
	if st.Stat.Kind == fs.KindDir && op.Flags&(fs.OWrOnly|fs.ORdWr|fs.OTrunc|fs.OAppend) != 0 {
		return sys.Resp{Errno: sys.EISDIR}
	}
	if op.Flags&fs.OTrunc != 0 {
		if tr := h.fsExecOn(owner, sys.WriteOp{Num: sys.NumFsTruncate, PID: op.PID, Ino: ino, Len: 0}); tr.Errno != sys.EOK {
			return tr
		}
	}
	return h.procExecOn(ps, sys.WriteOp{Num: sys.NumFDOpen, PID: op.PID, Ino: ino, Flags: op.Flags})
}

// shardReadData: NumRead = FDLock → owner ReadAt → FDUnlock(new offset).
func (h *handler) shardReadData(op sys.WriteOp) sys.Resp {
	s := h.s
	ps := s.ProcShardOf(op.PID)
	lk := h.fdLock(ps, op.PID, op.FD)
	if lk.Errno != sys.EOK {
		return lk
	}
	ino, off, flags := lk.Ino, lk.Off, int(lk.Val)
	if flags&fs.OWrOnly != 0 {
		h.fdUnlock(ps, op.PID, op.FD, off)
		return sys.Resp{Errno: sys.EPERM}
	}
	r := h.fsReadOn(s.FsShardOf(ino), sys.ReadOp{Num: sys.NumFsReadAt, PID: op.PID, Ino: ino, Off: off, Len: op.Len})
	if r.Errno != sys.EOK {
		h.fdUnlock(ps, op.PID, op.FD, off)
		return r
	}
	h.fdUnlock(ps, op.PID, op.FD, off+r.Val)
	return sys.Resp{Errno: sys.EOK, Val: r.Val, Data: r.Data}
}

// shardWriteData: NumWrite = FDLock → owner WriteAt (append-aware) →
// FDUnlock(owner-computed cursor).
func (h *handler) shardWriteData(op sys.WriteOp) sys.Resp {
	s := h.s
	ps := s.ProcShardOf(op.PID)
	lk := h.fdLock(ps, op.PID, op.FD)
	if lk.Errno != sys.EOK {
		return lk
	}
	ino, off, flags := lk.Ino, lk.Off, int(lk.Val)
	if flags&(fs.OWrOnly|fs.ORdWr|fs.OAppend) == 0 {
		h.fdUnlock(ps, op.PID, op.FD, off)
		return sys.Resp{Errno: sys.EPERM}
	}
	w := h.fsExecOn(s.FsShardOf(ino), sys.WriteOp{
		Num: sys.NumFsWriteAt, PID: op.PID, Ino: ino,
		Off: int64(off), Flags: uint64(flags), Data: op.Data,
	})
	if w.Errno != sys.EOK {
		h.fdUnlock(ps, op.PID, op.FD, off)
		return w
	}
	h.fdUnlock(ps, op.PID, op.FD, w.Off)
	return sys.Resp{Errno: sys.EOK, Val: w.Val}
}

// shardSeek: SeekEnd prefetches the owner's size; the proc shard then
// revalidates the descriptor and repositions atomically.
func (h *handler) shardSeek(op sys.WriteOp) sys.Resp {
	s := h.s
	ps := s.ProcShardOf(op.PID)
	var size uint64
	if op.Whence == fs.SeekEnd {
		g := h.procReadOn(ps, sys.ReadOp{Num: sys.NumFDGet, PID: op.PID, FD: op.FD})
		if g.Errno != sys.EOK {
			return g
		}
		st := h.fsReadOn(s.FsShardOf(g.Ino), sys.ReadOp{Num: sys.NumFsStatIno, PID: op.PID, Ino: g.Ino})
		if st.Errno != sys.EOK {
			return st
		}
		size = st.Val
	}
	return h.procExecOn(ps, sys.WriteOp{
		Num: sys.NumFDSeek, PID: op.PID, FD: op.FD,
		Whence: op.Whence, Off: op.Off, Size: size,
	})
}

// shardTruncate: resolve the descriptor's inode, truncate on the owner.
func (h *handler) shardTruncate(op sys.WriteOp) sys.Resp {
	s := h.s
	g := h.procReadOn(s.ProcShardOf(op.PID), sys.ReadOp{Num: sys.NumFDGet, PID: op.PID, FD: op.FD})
	if g.Errno != sys.EOK {
		return g
	}
	return h.fsExecOn(s.FsShardOf(g.Ino), sys.WriteOp{Num: sys.NumFsTruncate, PID: op.PID, Ino: g.Ino, Len: op.Len})
}

// shardSpawn: tree first (shard 0 allocates the PID), resources second
// (the child's shard), with tree rollback when the attach fails.
func (h *handler) shardSpawn(op sys.WriteOp) sys.Resp {
	s := h.s
	tr := h.procExecOn(0, sys.WriteOp{Num: sys.NumProcSpawn, PID: op.PID, Name: op.Name})
	if tr.Errno != sys.EOK {
		return tr
	}
	child := proc.PID(tr.Val)
	at := h.procExecOn(s.ProcShardOf(child), sys.WriteOp{Num: sys.NumProcAttach, PID: op.PID, Target: child})
	if at.Errno != sys.EOK {
		_ = h.procExecOn(0, sys.WriteOp{Num: sys.NumProcUnspawn, PID: op.PID, Target: child})
		return at
	}
	return sys.Resp{Errno: sys.EOK, Val: uint64(child)}
}

// shardExit: resources first (victim's shard), tree last (shard 0) —
// see the ordering rules at the top of the file. op.PID is the victim.
func (h *handler) shardExit(op sys.WriteOp) sys.Resp {
	s := h.s
	dt := h.procExecOn(s.ProcShardOf(op.PID), sys.WriteOp{Num: sys.NumProcDetach, PID: op.PID, Target: op.PID})
	if dt.Errno != sys.EOK {
		return dt
	}
	// The detach freed the victim's socket-table entries; release their
	// global port-namespace reservations on shard 0 so the ports are
	// immediately bindable by other processes.
	for _, p := range dt.Ports {
		_ = h.procExecOn(0, sys.WriteOp{Num: sys.NumSockPortRelease, PID: op.PID, Port: p})
	}
	tr := h.procExecOn(0, sys.WriteOp{Num: sys.NumProcExit, PID: op.PID, Code: op.Code})
	if tr.Errno != sys.EOK {
		return tr
	}
	return sys.Resp{Errno: sys.EOK, Freed: dt.Freed, Unpinned: dt.Unpinned}
}

// shardKill: SIGKILL composes as the victim's exit; other signals are a
// tree-only transition on shard 0.
func (h *handler) shardKill(op sys.WriteOp) sys.Resp {
	if op.Sig == proc.SIGKILL {
		if op.Target == proc.InitPID {
			return sys.Resp{Errno: sys.EPERM}
		}
		victim := op
		victim.PID = op.Target
		victim.Code = 128 + int(proc.SIGKILL)
		return h.shardExit(victim)
	}
	return h.procExecOn(0, op)
}
