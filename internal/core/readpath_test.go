package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/obs"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/sys"
)

// TestPreadServesFromCache checks the perf claim behind the read path:
// the first pread of a page misses and fills, repeats hit — visible in
// both the cache's residency and the pcache.hit counter.
func TestPreadServesFromCache(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s, err := Boot(Config{Cores: 2, Shards: shards, MemBytes: 256 << 20})
			if err != nil {
				t.Fatal(err)
			}
			initSys, err := s.Init()
			if err != nil {
				t.Fatal(err)
			}
			contents := bytes.Repeat([]byte{7}, 2*pcache.PageSize)
			fd, e := initSys.Open("/hot.dat", fs.OCreate|fs.ORdWr)
			if e != sys.EOK {
				t.Fatalf("open: %v", e)
			}
			if _, e := initSys.Write(fd, contents); e != sys.EOK {
				t.Fatalf("write: %v", e)
			}

			obs.Enable()
			defer obs.Disable()
			hits0 := obs.PCacheHits.Load()
			misses0 := obs.PCacheMisses.Load()
			buf := make([]byte, pcache.PageSize)
			for i := 0; i < 8; i++ {
				if n, e := initSys.Pread(fd, buf, 0); e != sys.EOK || n != uint64(len(buf)) {
					t.Fatalf("pread %d: n=%d %v", i, n, e)
				}
				if !bytes.Equal(buf, contents[:len(buf)]) {
					t.Fatalf("pread %d bytes diverge", i)
				}
			}
			if hits := obs.PCacheHits.Load() - hits0; hits < 7 {
				t.Errorf("pcache.hit = %d after 8 preads of one page, want >= 7", hits)
			}
			if misses := obs.PCacheMisses.Load() - misses0; misses < 1 {
				t.Errorf("pcache.miss = %d, want >= 1 (first read fills)", misses)
			}

			// A write through the logged path invalidates; the next pread
			// misses and refills with the new bytes.
			if _, e := initSys.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
				t.Fatalf("seek: %v", e)
			}
			fresh := bytes.Repeat([]byte{9}, pcache.PageSize)
			if _, e := initSys.Write(fd, fresh); e != sys.EOK {
				t.Fatalf("overwrite: %v", e)
			}
			misses1 := obs.PCacheMisses.Load()
			if n, e := initSys.Pread(fd, buf, 0); e != sys.EOK || n != uint64(len(buf)) {
				t.Fatalf("pread after write: n=%d %v", n, e)
			}
			if !bytes.Equal(buf, fresh) {
				t.Fatal("pread after write served stale bytes")
			}
			if obs.PCacheMisses.Load() == misses1 {
				t.Error("pread after invalidation did not miss")
			}
			if e := initSys.Close(fd); e != sys.EOK {
				t.Fatalf("close: %v", e)
			}
			if err := initSys.ContractErr(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPreadErrnos covers the error surface: bad descriptor, write-only
// descriptor, misaligned map offset, and unmap of a non-mapping VA.
func TestPreadErrnos(t *testing.T) {
	s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		t.Fatal(err)
	}
	if _, e := initSys.Pread(9999, make([]byte, 4), 0); e != sys.EBADF {
		t.Errorf("pread bad fd: %v, want EBADF", e)
	}
	fd, e := initSys.Open("/wr.dat", fs.OCreate|fs.OWrOnly)
	if e != sys.EOK {
		t.Fatalf("open: %v", e)
	}
	if _, e := initSys.Pread(fd, make([]byte, 4), 0); e != sys.EPERM {
		t.Errorf("pread write-only fd: %v, want EPERM", e)
	}
	if _, _, e := initSys.PreadMap(fd, 0); e != sys.EPERM {
		t.Errorf("pread_map write-only fd: %v, want EPERM", e)
	}
	if e := initSys.Close(fd); e != sys.EOK {
		t.Fatalf("close: %v", e)
	}
	fd, e = initSys.Open("/rd.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		t.Fatalf("open rd: %v", e)
	}
	if _, e := initSys.Write(fd, []byte("hello")); e != sys.EOK {
		t.Fatalf("write: %v", e)
	}
	if _, _, e := initSys.PreadMap(fd, 13); e != sys.EINVAL {
		t.Errorf("pread_map misaligned: %v, want EINVAL", e)
	}
	// Unmap of a VA that is not a pread mapping needs a process with a
	// vspace (init has none — that path is ESRCH before the VA check).
	errs := make(chan error, 1)
	if _, err := s.Run(initSys, "unmapper", func(p *Process) int {
		if e := p.Sys.PreadUnmap(0xdead000); e != sys.EINVAL {
			errs <- fmt.Errorf("pread_unmap of unmapped VA: %v, want EINVAL", e)
		} else {
			errs <- nil
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Error(err)
	}
	s.WaitAll()
	if _, e := initSys.Wait(); e != sys.EOK {
		t.Fatalf("wait: %v", e)
	}
}

// TestBatchPreadObservesBatchWrites checks the ring contract: a pread
// submitted in a batch is served after the whole logged run, so it
// observes writes later in the same batch.
func TestBatchPreadObservesBatchWrites(t *testing.T) {
	s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	initSys, err := s.Init()
	if err != nil {
		t.Fatal(err)
	}
	fd, e := initSys.Open("/b.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		t.Fatalf("open: %v", e)
	}
	payload := []byte("batched-bytes")
	comps, e := initSys.SubmitWait([]sys.Op{
		sys.OpWrite(fd, payload),
		sys.OpPread(fd, uint64(len(payload)), 0),
	})
	if e != sys.EOK {
		t.Fatalf("batch: %v", e)
	}
	if comps[1].Errno != sys.EOK {
		t.Fatalf("batched pread: %v", comps[1].Errno)
	}
	if !bytes.Equal(comps[1].Data, payload) {
		t.Fatalf("batched pread = %q, want %q (must observe the batch's write)", comps[1].Data, payload)
	}
}
