package core

import (
	"fmt"
	"sync"

	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/ulib"
)

// SpawnHandle spawns a child of parent and returns a syscall handle for
// it without starting a program goroutine — used by library-level
// harnesses that drive the process themselves.
func (s *System) SpawnHandle(parent *sys.Sys, name string) (*sys.Sys, error) {
	pid, e := parent.Spawn(name)
	if e != sys.EOK {
		return nil, fmt.Errorf("core: spawn %q: %v", name, e)
	}
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	return sys.NewSys(pid, h), nil
}

// NewThreadHandle returns an additional syscall handle for an existing
// process — a second thread sharing its address space, pinned to the
// next core round-robin.
func (s *System) NewThreadHandle(of *sys.Sys) (*sys.Sys, error) {
	h, err := s.newHandler()
	if err != nil {
		return nil, err
	}
	return sys.NewSys(of.PID(), h), nil
}

// ulibEnv implements ulib.Env: each NewProcess boots a dedicated small
// system, so repeated verification runs never exhaust NR thread slots.
type ulibEnv struct {
	mu      sync.Mutex
	systems map[*sys.Sys]*System
}

func newUlibEnv() *ulibEnv {
	return &ulibEnv{systems: make(map[*sys.Sys]*System)}
}

// NewProcess implements ulib.Env.
func (e *ulibEnv) NewProcess() (*sys.Sys, error) {
	system, err := Boot(Config{Cores: 4, MemBytes: 256 << 20})
	if err != nil {
		return nil, err
	}
	initSys, err := system.Init()
	if err != nil {
		return nil, err
	}
	h, err := system.SpawnHandle(initSys, "ulib-proc")
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.systems[h] = system
	e.mu.Unlock()
	return h, nil
}

// NewThread implements ulib.Env.
func (e *ulibEnv) NewThread(of *sys.Sys) (*sys.Sys, error) {
	e.mu.Lock()
	system := e.systems[of]
	e.mu.Unlock()
	if system == nil {
		return nil, fmt.Errorf("core: unknown process handle")
	}
	return system.NewThreadHandle(of)
}

var _ ulib.Env = (*ulibEnv)(nil)
