package core

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/dev"
	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/machine"
	"github.com/verified-os/vnros/internal/hw/mem"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/lin"
	"github.com/verified-os/vnros/internal/marshal"
	"github.com/verified-os/vnros/internal/mm"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/pcache"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/pt"
	"github.com/verified-os/vnros/internal/relwork"
	"github.com/verified-os/vnros/internal/sched"
	"github.com/verified-os/vnros/internal/spec/sm"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/ulib"
	"github.com/verified-os/vnros/internal/usr"
	"github.com/verified-os/vnros/internal/verifier"
	"github.com/verified-os/vnros/internal/wal"
	"github.com/verified-os/vnros/internal/walshard"
)

// RegisterAllObligations registers every module's verification
// conditions plus the whole-system ones below — the full VC set behind
// Figure 1a and the cmd/vnros-verify report.
func RegisterAllObligations(g *verifier.Registry) {
	mem.RegisterObligations(g)
	mmu.RegisterObligations(g)
	machine.RegisterObligations(g)
	sm.RegisterObligations(g)
	lin.RegisterObligations(g)
	nr.RegisterObligations(g)
	pt.RegisterObligations(g)
	mm.RegisterObligations(g)
	marshal.RegisterObligations(g)
	fs.RegisterObligations(g)
	sched.RegisterObligations(g)
	proc.RegisterObligations(g)
	dev.RegisterObligations(g)
	netstack.RegisterObligations(g)
	usr.RegisterObligations(g)
	sys.RegisterObligations(g)
	pcache.RegisterObligations(g)
	ulib.RegisterObligations(g, newUlibEnv())
	wal.RegisterObligations(g)
	walshard.RegisterObligations(g)
	relwork.RegisterObligations(g)
	verifier.RegisterObligations(g)
	RegisterObligations(g)
}

// RegisterObligations registers the composed-system verification
// conditions: the end-to-end refinement story of §4.4 — concurrent user
// programs drive the full stack, the per-syscall contract holds, the
// kernel replicas agree, and the structural invariants survive.
func RegisterObligations(g *verifier.Registry) {
	registerMoreObligations(g)
	registerEvenMoreObligations(g)
	registerShardObligations(g)
	registerNetObligations(g)
	registerRingWaitObligations(g)
	registerPCacheObligations(g)
	g.Register(
		verifier.Obligation{Module: "core", Name: "end-to-end-contract-holds", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return endToEndWorkload(r, 2, 3) }},
		verifier.Obligation{Module: "core", Name: "replicas-agree-multicore", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error { return endToEndWorkload(r, 16, 4) }},
		verifier.Obligation{Module: "core", Name: "persistence-across-reboot", Kind: verifier.KindRoundTrip,
			Check: func(r *rand.Rand) error { return rebootWorkload(r) }},
		verifier.Obligation{Module: "core", Name: "wal-crash-recovery-end-to-end", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error { return walCrashWorkload(r) }},
		verifier.Obligation{Module: "core", Name: "futex-mutex-cross-process-memory", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error { return futexWorkload(r) }},
	)
}

// endToEndWorkload boots a system and runs concurrent user programs
// doing file, process, and memory syscalls, then checks the contract,
// replica agreement, and invariants.
func endToEndWorkload(r *rand.Rand, cores, procs int) error {
	s, err := Boot(Config{Cores: cores, MemBytes: 256 << 20})
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	if e := initSys.Mkdir("/tmp"); e != sys.EOK {
		return fmt.Errorf("mkdir: %v", e)
	}
	errs := make(chan error, procs)
	for i := 0; i < procs; i++ {
		i := i
		seed := r.Int63()
		_, err := s.Run(initSys, fmt.Sprintf("worker%d", i), func(p *Process) int {
			if err := workerBody(p, i, seed); err != nil {
				errs <- err
				return 1
			}
			errs <- nil
			return 0
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < procs; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	s.WaitAll()
	// Reap the children.
	for i := 0; i < procs; i++ {
		if _, e := initSys.Wait(); e != sys.EOK {
			return fmt.Errorf("wait %d: %v", i, e)
		}
	}
	if err := initSys.ContractErr(); err != nil {
		return err
	}
	if err := s.CheckReplicaAgreement(); err != nil {
		return err
	}
	return s.CheckKernelInvariants()
}

// workerBody is the random per-process workload.
func workerBody(p *Process, idx int, seed int64) error {
	r := rand.New(rand.NewSource(seed))
	path := fmt.Sprintf("/tmp/w%d", idx)
	fd, e := p.Sys.Open(path, fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		return fmt.Errorf("open: %v", e)
	}
	// Memory: map, fill, verify.
	base, e := p.Sys.MMap(2 * 4096)
	if e != sys.EOK {
		return fmt.Errorf("mmap: %v", e)
	}
	blob := make([]byte, 5000)
	r.Read(blob)
	if e := p.Sys.MemWrite(base, blob); e != sys.EOK {
		return fmt.Errorf("memwrite: %v", e)
	}
	for i := 0; i < 30; i++ {
		data := make([]byte, r.Intn(200))
		r.Read(data)
		if _, e := p.Sys.Write(fd, data); e != sys.EOK {
			return fmt.Errorf("write: %v", e)
		}
		if _, e := p.Sys.Seek(fd, 0, fs.SeekSet); e != sys.EOK {
			return fmt.Errorf("seek: %v", e)
		}
		if _, e := p.Sys.Read(fd, make([]byte, r.Intn(300))); e != sys.EOK {
			return fmt.Errorf("read: %v", e)
		}
	}
	got := make([]byte, len(blob))
	if e := p.Sys.MemRead(base, got); e != sys.EOK {
		return fmt.Errorf("memread: %v", e)
	}
	for i := range got {
		if got[i] != blob[i] {
			return fmt.Errorf("user memory corrupted at %d", i)
		}
	}
	if e := p.Sys.MUnmap(base); e != sys.EOK {
		return fmt.Errorf("munmap: %v", e)
	}
	if e := p.Sys.Close(fd); e != sys.EOK {
		return fmt.Errorf("close: %v", e)
	}
	return p.Sys.ContractErr()
}

// rebootWorkload writes files, snapshots to disk, "reboots" into a new
// system over the same disk contents, and verifies the files.
func rebootWorkload(r *rand.Rand) error {
	s1, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
	if err != nil {
		return err
	}
	init1, err := s1.Init()
	if err != nil {
		return err
	}
	payload := make([]byte, 4000)
	r.Read(payload)
	fd, e := init1.Open("/persistent.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		return fmt.Errorf("open: %v", e)
	}
	if _, e := init1.Write(fd, payload); e != sys.EOK {
		return fmt.Errorf("write: %v", e)
	}
	if e := init1.Close(fd); e != sys.EOK {
		return fmt.Errorf("close: %v", e)
	}
	if err := s1.SaveFS(); err != nil {
		return err
	}

	// "Move the disk" into a new machine and boot from it.
	s3, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, RestoreFS: true, BootDisk: s1.BlockDev})
	if err != nil {
		return err
	}
	init3, err := s3.Init()
	if err != nil {
		return err
	}
	fd3, e := init3.Open("/persistent.dat", fs.ORdOnly)
	if e != sys.EOK {
		return fmt.Errorf("open after reboot: %v", e)
	}
	got := make([]byte, len(payload))
	if n, e := init3.Read(fd3, got); e != sys.EOK || int(n) != len(payload) {
		return fmt.Errorf("read after reboot: %d, %v", n, e)
	}
	for i := range got {
		if got[i] != payload[i] {
			return fmt.Errorf("persisted data corrupted at %d", i)
		}
	}
	return nil
}

// walCrashWorkload is the composed-system crash story: a journaled
// system runs file mutations, Syncs some of them, then "loses power"
// (the System is simply abandoned — no SaveFS). A new system boots from
// the same disk and must see every synced mutation (journal replay),
// while never observing a torn state. The final write after the last
// Sync is allowed to survive or vanish; the contract only promises the
// prefix.
func walCrashWorkload(r *rand.Rand) error {
	s1, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, WAL: true})
	if err != nil {
		return err
	}
	init1, err := s1.Init()
	if err != nil {
		return err
	}
	synced := make(map[string][]byte)
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/f%d", i)
		payload := make([]byte, 100+r.Intn(2000))
		r.Read(payload)
		fd, e := init1.Open(path, fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			return fmt.Errorf("open %s: %v", path, e)
		}
		if _, e := init1.Write(fd, payload); e != sys.EOK {
			return fmt.Errorf("write %s: %v", path, e)
		}
		if e := init1.Close(fd); e != sys.EOK {
			return fmt.Errorf("close %s: %v", path, e)
		}
		if e := init1.Sync(); e != sys.EOK {
			return fmt.Errorf("sync %d: %v", i, e)
		}
		synced[path] = payload
	}
	// One unsynced straggler: may or may not survive the crash, but the
	// synced set must.
	if fd, e := init1.Open("/unsynced", fs.OCreate|fs.ORdWr); e == sys.EOK {
		_, _ = init1.Write(fd, []byte("straggler"))
		_ = init1.Close(fd)
	}
	// Crash: no SaveFS, no shutdown. Boot a second system from the
	// frozen disk and recover through the journal.
	s2, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, WAL: true, RestoreFS: true, BootDisk: s1.BlockDev})
	if err != nil {
		return err
	}
	init2, err := s2.Init()
	if err != nil {
		return err
	}
	for path, payload := range synced {
		fd, e := init2.Open(path, fs.ORdOnly)
		if e != sys.EOK {
			return fmt.Errorf("after crash: open %s: %v (synced mutation lost)", path, e)
		}
		got := make([]byte, len(payload))
		if n, e := init2.Read(fd, got); e != sys.EOK || int(n) != len(payload) {
			return fmt.Errorf("after crash: read %s: %d bytes, %v", path, n, e)
		}
		for i := range got {
			if got[i] != payload[i] {
				return fmt.Errorf("after crash: %s corrupted at byte %d", path, i)
			}
		}
		if e := init2.Close(fd); e != sys.EOK {
			return fmt.Errorf("after crash: close %s: %v", path, e)
		}
	}
	if err := s2.CheckReplicaAgreement(); err != nil {
		return err
	}
	return s2.CheckKernelInvariants()
}

// futexWorkload runs two threads of one process contending on a
// futex-word mutex living in the process's mapped memory, checking
// mutual exclusion of a critical section that increments a file-backed
// counter.
func futexWorkload(r *rand.Rand) error {
	s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	_, err = s.Run(initSys, "locker", func(p *Process) int {
		done <- futexBody(p)
		return 0
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	s.WaitAll()
	return nil
}

// futexBody exercises FutexWait/FutexWake directly: a waiter parks on a
// word until the main flow flips it and wakes.
func futexBody(p *Process) error {
	base, e := p.Sys.MMap(4096)
	if e != sys.EOK {
		return fmt.Errorf("mmap: %v", e)
	}
	// Word starts at 0.
	waiterDone := make(chan sys.Errno, 1)
	go func() {
		// Waits while *word == 0.
		waiterDone <- p.Sys.FutexWait(base, 0)
	}()
	// Wait with wrong expectation returns EAGAIN immediately.
	if e := p.Sys.FutexWait(base, 7); e != sys.EAGAIN {
		return fmt.Errorf("stale futex wait: %v", e)
	}
	// Flip the word, then wake until the waiter is released (it may not
	// have parked yet; retry as a real unlock path would).
	if e := p.Sys.MemWrite(base, []byte{1, 0, 0, 0}); e != sys.EOK {
		return fmt.Errorf("memwrite: %v", e)
	}
	for {
		select {
		case we := <-waiterDone:
			if we != sys.EOK && we != sys.EAGAIN {
				return fmt.Errorf("waiter: %v", we)
			}
			return nil
		default:
			if _, e := p.Sys.FutexWake(base, 1); e != sys.EOK {
				return fmt.Errorf("wake: %v", e)
			}
		}
	}
}
