package core

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/hw/mmu"
	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerMoreObligations is the second wave of whole-system VCs:
// cross-machine networking under the full stack, SIGKILL resource
// reclamation, data-frame conservation across process lifecycles, and
// the derived Table 1/2 self-row staying backed by real components.
func registerMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "core", Name: "cross-machine-request-response", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				wire := netstack.NewNetwork()
				sa, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, NICAddr: 0xA, Network: wire})
				if err != nil {
					return err
				}
				sb, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, NICAddr: 0xB, Network: wire})
				if err != nil {
					return err
				}
				initA, err := sa.Init()
				if err != nil {
					return err
				}
				initB, err := sb.Init()
				if err != nil {
					return err
				}
				ready := make(chan sys.SockID, 1)
				serverErr := make(chan error, 1)
				const rounds = 20
				_, err = sb.Run(initB, "echo", func(p *Process) int {
					sock, e := p.Sys.SockBind(4000)
					if e != sys.EOK {
						ready <- 0
						serverErr <- fmt.Errorf("bind: %v", e)
						return 1
					}
					ready <- sock
					for i := 0; i < rounds; i++ {
						payload, from, port, e := p.Sys.SockRecvBlocking(sock)
						if e != sys.EOK {
							serverErr <- fmt.Errorf("recv: %v", e)
							return 1
						}
						if _, e := p.Sys.SockSend(sock, from, port, payload); e != sys.EOK {
							serverErr <- fmt.Errorf("send: %v", e)
							return 1
						}
					}
					serverErr <- nil
					return 0
				})
				if err != nil {
					return err
				}
				if <-ready == 0 {
					return <-serverErr
				}
				clientErr := make(chan error, 1)
				seed := r.Int63()
				_, err = sa.Run(initA, "client", func(p *Process) int {
					rr := rand.New(rand.NewSource(seed))
					sock, e := p.Sys.SockBind(0)
					if e != sys.EOK {
						clientErr <- fmt.Errorf("client bind: %v", e)
						return 1
					}
					for i := 0; i < rounds; i++ {
						msg := make([]byte, 1+rr.Intn(200))
						rr.Read(msg)
						if _, e := p.Sys.SockSend(sock, 0xB, 4000, msg); e != sys.EOK {
							clientErr <- fmt.Errorf("client send: %v", e)
							return 1
						}
						echo, _, _, e := p.Sys.SockRecvBlocking(sock)
						if e != sys.EOK {
							clientErr <- fmt.Errorf("client recv: %v", e)
							return 1
						}
						if string(echo) != string(msg) {
							clientErr <- fmt.Errorf("round %d echoed wrong payload", i)
							return 1
						}
					}
					clientErr <- nil
					return 0
				})
				if err != nil {
					return err
				}
				if err := <-clientErr; err != nil {
					return err
				}
				if err := <-serverErr; err != nil {
					return err
				}
				sa.WaitAll()
				sb.WaitAll()
				return nil
			}},
		verifier.Obligation{Module: "core", Name: "data-frame-conservation", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				// After any sequence of mmap/munmap/exit across many
				// processes, the shared frame pool returns to its boot
				// occupancy — no physical page leaks.
				s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
				if err != nil {
					return err
				}
				initSys, err := s.Init()
				if err != nil {
					return err
				}
				baseline := s.dataAlloc.Stats().AllocatedFrames
				const procs = 5
				errs := make(chan error, procs)
				for i := 0; i < procs; i++ {
					seed := r.Int63()
					_, err := s.Run(initSys, "mapper", func(p *Process) int {
						rr := rand.New(rand.NewSource(seed))
						var bases []uint64
						for j := 0; j < 20; j++ {
							if rr.Intn(2) == 0 || len(bases) == 0 {
								va, e := p.Sys.MMap(uint64(1+rr.Intn(4)) * 4096)
								if e == sys.EOK {
									bases = append(bases, uint64(va))
								}
							} else {
								k := rr.Intn(len(bases))
								if e := p.Sys.MUnmap(mmu.VAddr(bases[k])); e != sys.EOK {
									errs <- fmt.Errorf("munmap: %v", e)
									return 1
								}
								bases = append(bases[:k], bases[k+1:]...)
							}
						}
						// Leave the rest mapped: exit must reclaim them.
						errs <- nil
						return 0
					})
					if err != nil {
						return err
					}
				}
				for i := 0; i < procs; i++ {
					if err := <-errs; err != nil {
						return err
					}
				}
				s.WaitAll()
				for i := 0; i < procs; i++ {
					if _, e := initSys.Wait(); e != sys.EOK {
						return fmt.Errorf("wait: %v", e)
					}
				}
				if got := s.dataAlloc.Stats().AllocatedFrames; got != baseline {
					return fmt.Errorf("frame pool: %d allocated after teardown, baseline %d", got, baseline)
				}
				return nil
			}},
		verifier.Obligation{Module: "core", Name: "sigkill-reclaims-everything", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
				if err != nil {
					return err
				}
				initSys, err := s.Init()
				if err != nil {
					return err
				}
				baseline := s.dataAlloc.Stats().AllocatedFrames
				started := make(chan proc.PID, 1)
				parked := make(chan sys.Errno, 1)
				_, err = s.Run(initSys, "victim", func(p *Process) int {
					if _, e := p.Sys.SockBind(7777); e != sys.EOK {
						started <- 0
						return 1
					}
					base, e := p.Sys.MMap(8 * 4096)
					if e != sys.EOK {
						started <- 0
						return 1
					}
					started <- p.PID
					parked <- p.Sys.FutexWait(base, 0)
					return 0
				})
				if err != nil {
					return err
				}
				pid := <-started
				if pid == 0 {
					return fmt.Errorf("victim setup failed")
				}
				if e := initSys.Kill(pid, proc.SIGKILL); e != sys.EOK {
					return fmt.Errorf("kill: %v", e)
				}
				<-parked
				s.WaitAll()
				if _, e := initSys.Wait(); e != sys.EOK {
					return fmt.Errorf("wait: %v", e)
				}
				if got := s.dataAlloc.Stats().AllocatedFrames; got != baseline {
					return fmt.Errorf("SIGKILL leaked %d frames", got-baseline)
				}
				if _, err := s.Net.Bind(7777); err != nil {
					return fmt.Errorf("port not reclaimed: %v", err)
				}
				return nil
			}},
		verifier.Obligation{Module: "core", Name: "table-self-row-backed-by-components", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
				if err != nil {
					return err
				}
				self := s.Components.Derive("vnros")
				for _, row := range []string{"Scheduler", "Memory management", "Filesystem",
					"Complex drivers", "Process management", "Threads and synchronization",
					"Network stack", "System libraries"} {
					if self.Table2[row] == 0 { // relwork.No
						return fmt.Errorf("derived row %q is ✗ — component registry out of sync", row)
					}
				}
				// The fs write path really exists behind the claim.
				initSys, err := s.Init()
				if err != nil {
					return err
				}
				fd, e := initSys.Open("/claimcheck", fs.OCreate|fs.ORdWr)
				if e != sys.EOK {
					return fmt.Errorf("claimed filesystem cannot open: %v", e)
				}
				if _, e := initSys.Write(fd, []byte("backed")); e != sys.EOK {
					return fmt.Errorf("claimed filesystem cannot write: %v", e)
				}
				return initSys.ContractErr()
			}},
	)
}
