package core

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/proc"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerEvenMoreObligations: console ordering through the driver
// stack, filesystem visibility across processes on different replicas,
// contract checking active on every Run'd process, and wait/exit code
// plumbing through the full boundary.
func registerEvenMoreObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "core", Name: "console-output-ordered", Kind: verifier.KindSafety,
			Check: func(r *rand.Rand) error {
				s, err := Boot(Config{Cores: 1, MemBytes: 256 << 20})
				if err != nil {
					return err
				}
				var want strings.Builder
				for i := 0; i < 100; i++ {
					line := fmt.Sprintf("line %d/%x\n", i, r.Uint32())
					s.Printf("%s", line)
					want.WriteString(line)
				}
				if got := s.ConsoleOutput(); got != want.String() {
					return fmt.Errorf("console transcript diverged (%d vs %d bytes)",
						len(got), want.Len())
				}
				return nil
			}},
		verifier.Obligation{Module: "core", Name: "fs-visible-across-replicas", Kind: verifier.KindLinearizability,
			Check: func(r *rand.Rand) error {
				// A file created by a process on replica 0 is immediately
				// visible to a process on replica 1 (NR read fence), for
				// every one of a series of files.
				s, err := Boot(Config{Cores: 28, MemBytes: 256 << 20}) // 2 replicas
				if err != nil {
					return err
				}
				if s.NumReplicas() != 2 {
					return fmt.Errorf("expected 2 replicas, got %d", s.NumReplicas())
				}
				initSys, err := s.Init()
				if err != nil {
					return err
				}
				writerDone := make(chan sys.Errno, 1)
				readerDone := make(chan error, 1)
				next := make(chan string, 1)
				// Writer lands on one core/replica, reader on another
				// (round-robin placement).
				if _, err := s.Run(initSys, "writer", func(p *Process) int {
					for i := 0; i < 20; i++ {
						path := fmt.Sprintf("/file%d", i)
						if _, e := p.Sys.Open(path, fs.OCreate); e != sys.EOK {
							writerDone <- e
							return 1
						}
						next <- path
					}
					close(next)
					writerDone <- sys.EOK
					return 0
				}); err != nil {
					return err
				}
				if _, err := s.Run(initSys, "reader", func(p *Process) int {
					for path := range next {
						if _, e := p.Sys.Stat(path); e != sys.EOK {
							readerDone <- fmt.Errorf("stat %s after create returned %v", path, e)
							return 1
						}
					}
					readerDone <- nil
					return 0
				}); err != nil {
					return err
				}
				if e := <-writerDone; e != sys.EOK {
					return fmt.Errorf("writer: %v", e)
				}
				if err := <-readerDone; err != nil {
					return err
				}
				s.WaitAll()
				return s.CheckReplicaAgreement()
			}},
		verifier.Obligation{Module: "core", Name: "exit-codes-cross-boundary", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20})
				if err != nil {
					return err
				}
				initSys, err := s.Init()
				if err != nil {
					return err
				}
				codes := map[proc.PID]int{}
				for i := 0; i < 8; i++ {
					code := r.Intn(200)
					p, err := s.Run(initSys, fmt.Sprintf("c%d", i), func(p *Process) int {
						return code
					})
					if err != nil {
						return err
					}
					codes[p.PID] = code
				}
				s.WaitAll()
				for i := 0; i < 8; i++ {
					res, e := initSys.Wait()
					if e != sys.EOK {
						return fmt.Errorf("wait %d: %v", i, e)
					}
					if want, ok := codes[res.PID]; !ok || res.ExitCode != want {
						return fmt.Errorf("pid %d exit code %d, want %d", res.PID, res.ExitCode, want)
					}
					delete(codes, res.PID)
				}
				return nil
			}},
	)
}
