package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/verified-os/vnros/internal/fs"
	"github.com/verified-os/vnros/internal/sys"
)

// TestShardedWALSyncAndRecovery is the composed-system story for the
// per-shard WAL: a sharded, journaled system runs file syscalls and
// Syncs them (a cross-shard group-commit round), "loses power" (the
// System is abandoned), and a second sharded system boots from the
// same disk — every synced file must come back on every shard, and the
// replicas must agree.
func TestShardedWALSyncAndRecovery(t *testing.T) {
	s1, err := Boot(Config{Cores: 4, Shards: 2, WAL: true, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	init1, err := s1.Init()
	if err != nil {
		t.Fatal(err)
	}

	want := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/f%d", i)
		payload := bytes.Repeat([]byte{byte('a' + i)}, 600+137*i)
		fd, e := init1.Open(path, fs.OCreate|fs.ORdWr)
		if e != sys.EOK {
			t.Fatalf("open %s: %v", path, e)
		}
		if _, e := init1.Write(fd, payload); e != sys.EOK {
			t.Fatalf("write %s: %v", path, e)
		}
		if e := init1.Close(fd); e != sys.EOK {
			t.Fatalf("close %s: %v", path, e)
		}
		want[path] = payload
	}
	if e := init1.Sync(); e != sys.EOK {
		t.Fatalf("sync: %v", e)
	}
	// An unsynced straggler may survive or vanish; the synced set must
	// survive.
	if fd, e := init1.Open("/straggler", fs.OCreate|fs.ORdWr); e == sys.EOK {
		_, _ = init1.Write(fd, []byte("unsynced"))
		_ = init1.Close(fd)
	}

	// Crash: no SaveFS, no shutdown. Boot a second sharded system from
	// the same disk.
	s2, err := Boot(Config{Cores: 4, Shards: 2, WAL: true, RestoreFS: true,
		BootDisk: s1.BlockDev, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	init2, err := s2.Init()
	if err != nil {
		t.Fatal(err)
	}
	for path, payload := range want {
		fd, e := init2.Open(path, fs.ORdOnly)
		if e != sys.EOK {
			t.Fatalf("open %s after recovery: %v", path, e)
		}
		got := make([]byte, len(payload))
		if n, e := init2.Read(fd, got); e != sys.EOK || int(n) != len(payload) {
			t.Fatalf("read %s after recovery: %d, %v", path, n, e)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("%s corrupted across sharded recovery", path)
		}
		_ = init2.Close(fd)
	}
	if err := s2.CheckReplicaAgreement(); err != nil {
		t.Fatal(err)
	}
	if err := init2.ContractErr(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedBatchSync covers the ring path: OpSync markers in a
// sharded batch complete EOK (one cross-shard round for the whole
// batch) and the batch's writes are durable.
func TestShardedBatchSync(t *testing.T) {
	s1, err := Boot(Config{Cores: 4, Shards: 2, WAL: true, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	init1, err := s1.Init()
	if err != nil {
		t.Fatal(err)
	}
	fd, e := init1.Open("/ring.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		t.Fatalf("open: %v", e)
	}
	payload := []byte("ring-synced payload")
	comps, e := init1.SubmitWait([]sys.Op{
		sys.OpWrite(fd, payload),
		sys.OpSync(),
	})
	if e != sys.EOK {
		t.Fatalf("batch: %v", e)
	}
	for i, c := range comps {
		if c.Errno != sys.EOK {
			t.Fatalf("completion %d: %v", i, c.Errno)
		}
	}

	s2, err := Boot(Config{Cores: 4, Shards: 2, WAL: true, RestoreFS: true,
		BootDisk: s1.BlockDev, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	init2, err := s2.Init()
	if err != nil {
		t.Fatal(err)
	}
	fd2, e := init2.Open("/ring.dat", fs.ORdOnly)
	if e != sys.EOK {
		t.Fatalf("open after recovery: %v", e)
	}
	got := make([]byte, len(payload))
	if n, e := init2.Read(fd2, got); e != sys.EOK || int(n) != len(payload) {
		t.Fatalf("read after recovery: %d, %v", n, e)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ring-synced payload corrupted across recovery")
	}
}

// TestShardedSaveFS: SaveFS on a sharded journaled system checkpoints
// every shard; a reboot restores the state without replaying records.
func TestShardedSaveFS(t *testing.T) {
	s1, err := Boot(Config{Cores: 2, Shards: 2, WAL: true, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	init1, err := s1.Init()
	if err != nil {
		t.Fatal(err)
	}
	fd, e := init1.Open("/saved.dat", fs.OCreate|fs.ORdWr)
	if e != sys.EOK {
		t.Fatalf("open: %v", e)
	}
	if _, e := init1.Write(fd, []byte("checkpointed")); e != sys.EOK {
		t.Fatalf("write: %v", e)
	}
	if e := init1.Close(fd); e != sys.EOK {
		t.Fatalf("close: %v", e)
	}
	if err := s1.SaveFS(); err != nil {
		t.Fatal(err)
	}

	s2, err := Boot(Config{Cores: 2, Shards: 2, WAL: true, RestoreFS: true,
		BootDisk: s1.BlockDev, MemBytes: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	init2, err := s2.Init()
	if err != nil {
		t.Fatal(err)
	}
	fd2, e := init2.Open("/saved.dat", fs.ORdOnly)
	if e != sys.EOK {
		t.Fatalf("open after reboot: %v", e)
	}
	got := make([]byte, len("checkpointed"))
	if n, e := init2.Read(fd2, got); e != sys.EOK || int(n) != len(got) {
		t.Fatalf("read after reboot: %d, %v", n, e)
	}
	if string(got) != "checkpointed" {
		t.Fatalf("restored %q", got)
	}
}
