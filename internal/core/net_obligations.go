package core

import (
	"fmt"
	"math/rand"

	"github.com/verified-os/vnros/internal/netstack"
	"github.com/verified-os/vnros/internal/nr"
	"github.com/verified-os/vnros/internal/sys"
	"github.com/verified-os/vnros/internal/verifier"
)

// registerNetObligations: the networked-syscall-path VCs. The socket
// state machine — bind → bound → closed, port uniqueness, no delivery
// after close — is now replicated kernel state (the socket table), so
// it gets the same treatment as the file path: a refinement check that
// replays random syscall sequences against a per-connection spec
// machine, and an agreement check between the logged table and the
// device stack. Both run monolithic and sharded: the sharded run also
// exercises the acquire/bind/release namespace protocol on process
// shard 0.
func registerNetObligations(g *verifier.Registry) {
	g.Register(
		verifier.Obligation{Module: "core", Name: "socket-refines-connection-spec", Kind: verifier.KindRefinement,
			Check: func(r *rand.Rand) error {
				if err := sockSpecRun(r, 0); err != nil {
					return fmt.Errorf("monolithic: %w", err)
				}
				return sockSpecRunErr(sockSpecRun(r, 2), "sharded")
			}},
		verifier.Obligation{Module: "core", Name: "socket-table-matches-device", Kind: verifier.KindInvariant,
			Check: func(r *rand.Rand) error {
				if err := sockTableAgreementRun(r, 0); err != nil {
					return fmt.Errorf("monolithic: %w", err)
				}
				return sockSpecRunErr(sockTableAgreementRun(r, 2), "sharded")
			}},
	)
}

func sockSpecRunErr(err error, mode string) error {
	if err != nil {
		return fmt.Errorf("%s: %w", mode, err)
	}
	return nil
}

// sockSpecRun drives one process through a random socket-op sequence,
// checking every completion against the per-connection spec machine:
//
//	unbound --bind(free port)--> bound --close--> closed
//
// with EADDRINUSE on a taken port, EBADF on any op after close (no
// delivery, no send, no second close), EINVAL on an oversized payload,
// and the accepted send count equal to the payload length. Sends target
// an unattached peer address, so an open socket's queue stays empty and
// non-blocking receive must report EAGAIN — never data that the spec
// says cannot exist.
func sockSpecRun(r *rand.Rand, shards int) error {
	cfg := Config{Cores: 2, MemBytes: 256 << 20, Shards: shards}
	s, err := Boot(cfg)
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	seed := r.Int63()
	done := make(chan error, 1)
	_, err = s.Run(initSys, "sockspec", func(p *Process) int {
		rr := rand.New(rand.NewSource(seed))
		type mSock struct {
			id   sys.SockID
			port uint16 // 0 for ephemeral (outside the model's port range)
			open bool
		}
		var socks []*mSock
		bound := make(map[uint16]bool) // model: fixed-range ports in use
		fail := func(f string, a ...any) int {
			done <- fmt.Errorf(f, a...)
			return 1
		}
		pick := func() *mSock {
			if len(socks) == 0 {
				return nil
			}
			return socks[rr.Intn(len(socks))]
		}
		for i := 0; i < 150; i++ {
			switch rr.Intn(6) {
			case 0: // bind a port from a small contended range
				port := uint16(5000 + rr.Intn(6))
				id, e := p.Sys.SockBind(sys.Port(port))
				if bound[port] {
					if e != sys.EADDRINUSE {
						return fail("op %d: bind taken port %d: got %v, spec EADDRINUSE", i, port, e)
					}
					continue
				}
				if e != sys.EOK {
					return fail("op %d: bind free port %d: %v", i, port, e)
				}
				bound[port] = true
				socks = append(socks, &mSock{id: id, port: port, open: true})
			case 1: // ephemeral bind
				id, e := p.Sys.SockBind(0)
				if e != sys.EOK {
					return fail("op %d: ephemeral bind: %v", i, e)
				}
				socks = append(socks, &mSock{id: id, open: true})
			case 2: // send to an unattached peer
				m := pick()
				if m == nil {
					continue
				}
				payload := make([]byte, 1+rr.Intn(64))
				n, e := p.Sys.SockSend(m.id, 0xDEAD, 9, payload)
				if !m.open {
					if e != sys.EBADF {
						return fail("op %d: send on closed socket: got %v, spec EBADF", i, e)
					}
					continue
				}
				if e != sys.EOK {
					return fail("op %d: send: %v", i, e)
				}
				if n != uint64(len(payload)) {
					return fail("op %d: send accepted %d of %d bytes", i, n, len(payload))
				}
			case 3: // oversized send
				m := pick()
				if m == nil || !m.open {
					continue
				}
				big := make([]byte, netstack.MaxPayload+1)
				if _, e := p.Sys.SockSend(m.id, 0xDEAD, 9, big); e != sys.EINVAL {
					return fail("op %d: oversized send: got %v, spec EINVAL", i, e)
				}
			case 4: // non-blocking receive
				m := pick()
				if m == nil {
					continue
				}
				_, _, _, e := p.Sys.SockRecv(m.id)
				want := sys.EAGAIN // open and empty: nothing is addressed to us
				if !m.open {
					want = sys.EBADF // no delivery after close
				}
				if e != want {
					return fail("op %d: recv (open=%v): got %v, spec %v", i, m.open, e, want)
				}
			case 5: // close (possibly a double close)
				m := pick()
				if m == nil {
					continue
				}
				e := p.Sys.SockClose(m.id)
				if !m.open {
					if e != sys.EBADF {
						return fail("op %d: double close: got %v, spec EBADF", i, e)
					}
					continue
				}
				if e != sys.EOK {
					return fail("op %d: close: %v", i, e)
				}
				m.open = false
				if m.port != 0 {
					delete(bound, m.port) // the port is bindable again
				}
			}
		}
		// Endpoint: every port the model says is free really rebinds.
		for port := uint16(5000); port < 5006; port++ {
			if bound[port] {
				continue
			}
			id, e := p.Sys.SockBind(sys.Port(port))
			if e != sys.EOK {
				return fail("endpoint: freed port %d does not rebind: %v", port, e)
			}
			if e := p.Sys.SockClose(id); e != sys.EOK {
				return fail("endpoint: close: %v", e)
			}
		}
		done <- nil
		return 0
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}
	s.WaitAll()
	return nil
}

// sockTableAgreementRun checks that the replicated socket table and the
// device stack agree on the bound-port set after a random bind/close
// history — the §3 view() agreement across the table/device cut, and on
// a sharded kernel across every process shard's slice of the table.
func sockTableAgreementRun(r *rand.Rand, shards int) error {
	s, err := Boot(Config{Cores: 2, MemBytes: 256 << 20, Shards: shards})
	if err != nil {
		return err
	}
	initSys, err := s.Init()
	if err != nil {
		return err
	}
	seed := r.Int63()
	done := make(chan error, 1)
	release := make(chan struct{})
	_, err = s.Run(initSys, "tabagree", func(p *Process) int {
		rr := rand.New(rand.NewSource(seed))
		open := make(map[sys.SockID]bool)
		var ids []sys.SockID
		for i := 0; i < 80; i++ {
			if rr.Intn(3) != 0 || len(ids) == 0 {
				id, e := p.Sys.SockBind(0)
				if e != sys.EOK {
					done <- fmt.Errorf("bind: %v", e)
					return 1
				}
				open[id] = true
				ids = append(ids, id)
			} else {
				id := ids[rr.Intn(len(ids))]
				e := p.Sys.SockClose(id)
				if open[id] != (e == sys.EOK) {
					done <- fmt.Errorf("close %d: open=%v errno=%v", id, open[id], e)
					return 1
				}
				open[id] = false
			}
		}
		done <- nil
		<-release // hold the sockets open until the views are compared
		return 0
	})
	if err != nil {
		return err
	}
	if err := <-done; err != nil {
		close(release)
		return err
	}
	defer close(release)

	// Collect the table's port set from the replicated state (synced to
	// each log's tail by Inspect).
	tablePorts := make(map[uint16]bool)
	collect := func(k *sys.Kernel) {
		for port := range k.ViewSockTab(0).Ports {
			tablePorts[port] = true
		}
	}
	if s.Sharded() {
		for i := 0; i < s.NumShards(); i++ {
			s.InspectProcShard(i, 0, collect)
		}
	} else {
		s.nr.Replica(0).Inspect(func(d nr.DataStructure[sys.ReadOp, sys.WriteOp, sys.Resp]) {
			collect(d.(*sys.Kernel))
		})
	}
	devPorts := make(map[uint16]bool)
	for _, port := range s.Net.BoundPorts() {
		devPorts[port] = true
	}
	for port := range tablePorts {
		if !devPorts[port] {
			return fmt.Errorf("port %d in the table but not bound on the device", port)
		}
	}
	for port := range devPorts {
		if !tablePorts[port] {
			return fmt.Errorf("port %d bound on the device but absent from the table", port)
		}
	}
	return nil
}
